package compactrouting

import (
	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
)

// RestoreNetwork rebinds a Network from an already-built graph and
// metric oracle — the snapshot load path (internal/snapshot), which
// restores the oracle (dense matrices decoded from disk, or a fresh
// lazy cache over the decoded graph) instead of re-running the
// O(n² log n) APSP.
func RestoreNetwork(g *graph.Graph, a metric.Distancer) *Network {
	return &Network{g: g, dist: a}
}

// Edges returns the network's undirected edge list in canonical order
// (ascending (u, v), u < v) — the form NewNetwork accepts and the
// snapshot format stores.
func (nw *Network) Edges() []EdgeSpec {
	out := make([]EdgeSpec, 0, nw.g.M())
	for u := 0; u < nw.g.N(); u++ {
		for _, e := range nw.g.Neighbors(u) {
			if u < e.To {
				out = append(out, EdgeSpec{U: u, V: e.To, Weight: e.Weight})
			}
		}
	}
	return out
}
