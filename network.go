package compactrouting

import (
	"fmt"

	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
)

// EdgeSpec describes one undirected edge for NewNetwork.
type EdgeSpec struct {
	U, V   int
	Weight float64
}

// Network is a preprocessed network: the graph plus its shortest-path
// metric oracle. All scheme constructors hang off it, so the O(n²)
// all-pairs computation is shared.
type Network struct {
	g    *graph.Graph
	apsp *metric.APSP
}

// NewNetwork builds a network from an explicit edge list. The graph
// must be connected, with positive finite weights, no self-loops.
func NewNetwork(n int, edges []EdgeSpec) (*Network, error) {
	b := graph.NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e.U, e.V, e.Weight); err != nil {
			return nil, err
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

func wrap(g *graph.Graph) *Network {
	return &Network{g: g, apsp: metric.NewAPSP(g)}
}

// N returns the number of nodes.
func (nw *Network) N() int { return nw.g.N() }

// M returns the number of edges.
func (nw *Network) M() int { return nw.g.M() }

// Dist returns the shortest-path distance between two nodes.
func (nw *Network) Dist(u, v int) float64 { return nw.apsp.Dist(u, v) }

// Diameter returns the largest pairwise distance.
func (nw *Network) Diameter() float64 { return nw.apsp.Diameter() }

// NormalizedDiameter returns Delta, the ratio of the largest to the
// smallest pairwise distance.
func (nw *Network) NormalizedDiameter() float64 { return nw.apsp.NormalizedDiameter() }

// DoublingDimension estimates the metric's doubling dimension by
// greedy half-radius covers over sampled balls (samples <= 0 sweeps
// every node). The estimate alpha' satisfies alpha <= alpha' <=
// 2*alpha for the true dimension alpha.
func (nw *Network) DoublingDimension(samples int, seed int64) float64 {
	return metric.EstimateDoublingDimension(nw.apsp, samples, seed)
}

// GridNetwork returns the rows x cols unit grid.
func GridNetwork(rows, cols int) (*Network, error) {
	g, err := graph.Grid(rows, cols)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// GridWithHolesNetwork returns the largest component of a grid with
// each cell deleted with probability holeProb: the paper's canonical
// doubling-but-not-growth-bounded family.
func GridWithHolesNetwork(rows, cols int, holeProb float64, seed int64) (*Network, error) {
	g, _, err := graph.GridWithHoles(rows, cols, holeProb, seed)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// RandomGeometricNetwork returns the largest component of a random
// geometric graph on n points with the given connection radius,
// weights scaled so the minimum edge weight is 1.
func RandomGeometricNetwork(n int, radius float64, seed int64) (*Network, error) {
	g, _, err := graph.RandomGeometric(n, radius, seed)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// PathNetwork returns a path with uniform edge weight.
func PathNetwork(n int, weight float64) (*Network, error) {
	g, err := graph.Path(n, weight)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// RingNetwork returns the unit-weight n-cycle.
func RingNetwork(n int) (*Network, error) {
	g, err := graph.Ring(n)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// ExponentialPathNetwork returns a path whose i-th edge weighs base^i:
// a line metric whose normalized diameter is exponential in n — the
// family separating scale-free from non-scale-free schemes.
func ExponentialPathNetwork(n int, base float64) (*Network, error) {
	g, err := graph.ExponentialPath(n, base)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// ExponentialStarNetwork returns a star of k arms whose j-th arm has
// edges of weight base^j.
func ExponentialStarNetwork(n, k int, base float64) (*Network, error) {
	g, err := graph.ExponentialStar(n, k, base)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// Validate sanity-checks an externally supplied pair list against the
// network size.
func (nw *Network) Validate(pairs [][2]int) error {
	for _, p := range pairs {
		if p[0] < 0 || p[0] >= nw.g.N() || p[1] < 0 || p[1] >= nw.g.N() {
			return fmt.Errorf("compactrouting: pair %v out of range [0, %d)", p, nw.g.N())
		}
	}
	return nil
}
