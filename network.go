package compactrouting

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
)

// EdgeSpec describes one undirected edge for NewNetwork.
type EdgeSpec struct {
	U, V   int
	Weight float64
}

// Network is a preprocessed network: the graph plus its shortest-path
// metric oracle. All scheme constructors hang off it, so the O(n²)
// all-pairs computation is shared.
type Network struct {
	g    *graph.Graph
	apsp *metric.APSP
}

// NewNetwork builds a network from an explicit edge list. The graph
// must be connected, with positive finite weights, no self-loops.
func NewNetwork(n int, edges []EdgeSpec) (*Network, error) {
	b := graph.NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e.U, e.V, e.Weight); err != nil {
			return nil, err
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

func wrap(g *graph.Graph) *Network {
	return &Network{g: g, apsp: metric.NewAPSP(g)}
}

// Graph returns the underlying graph. The returned value is shared and
// must be treated as read-only; serving layers (internal/server) use it
// to drive step functions without rebuilding adjacency.
func (nw *Network) Graph() *graph.Graph { return nw.g }

// APSP returns the shortest-path metric oracle. Shared, read-only after
// construction — safe for concurrent Dist queries.
func (nw *Network) APSP() *metric.APSP { return nw.apsp }

// N returns the number of nodes.
func (nw *Network) N() int { return nw.g.N() }

// M returns the number of edges.
func (nw *Network) M() int { return nw.g.M() }

// Dist returns the shortest-path distance between two nodes.
func (nw *Network) Dist(u, v int) float64 { return nw.apsp.Dist(u, v) }

// Diameter returns the largest pairwise distance.
func (nw *Network) Diameter() float64 { return nw.apsp.Diameter() }

// NormalizedDiameter returns Delta, the ratio of the largest to the
// smallest pairwise distance.
func (nw *Network) NormalizedDiameter() float64 { return nw.apsp.NormalizedDiameter() }

// DoublingDimension estimates the metric's doubling dimension by
// greedy half-radius covers over sampled balls (samples <= 0 sweeps
// every node). The estimate alpha' satisfies alpha <= alpha' <=
// 2*alpha for the true dimension alpha.
func (nw *Network) DoublingDimension(samples int, seed int64) float64 {
	return metric.EstimateDoublingDimension(nw.apsp, samples, seed)
}

// GridNetwork returns the rows x cols unit grid.
func GridNetwork(rows, cols int) (*Network, error) {
	g, err := graph.Grid(rows, cols)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// GridWithHolesNetwork returns the largest component of a grid with
// each cell deleted with probability holeProb: the paper's canonical
// doubling-but-not-growth-bounded family.
func GridWithHolesNetwork(rows, cols int, holeProb float64, seed int64) (*Network, error) {
	g, _, err := graph.GridWithHoles(rows, cols, holeProb, seed)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// RandomGeometricNetwork returns the largest component of a random
// geometric graph on n points with the given connection radius,
// weights scaled so the minimum edge weight is 1.
func RandomGeometricNetwork(n int, radius float64, seed int64) (*Network, error) {
	g, _, err := graph.RandomGeometric(n, radius, seed)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// PathNetwork returns a path with uniform edge weight.
func PathNetwork(n int, weight float64) (*Network, error) {
	g, err := graph.Path(n, weight)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// RingNetwork returns the unit-weight n-cycle.
func RingNetwork(n int) (*Network, error) {
	g, err := graph.Ring(n)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// ExponentialPathNetwork returns a path whose i-th edge weighs base^i:
// a line metric whose normalized diameter is exponential in n — the
// family separating scale-free from non-scale-free schemes.
func ExponentialPathNetwork(n int, base float64) (*Network, error) {
	g, err := graph.ExponentialPath(n, base)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// ExponentialStarNetwork returns a star of k arms whose j-th arm has
// edges of weight base^j.
func ExponentialStarNetwork(n, k int, base float64) (*Network, error) {
	g, err := graph.ExponentialStar(n, k, base)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// ReadNetwork parses the plain edge-list format emitted by
// cmd/graphgen: an "n <count>" header line followed by one "u v weight"
// line per undirected edge. Blank lines and lines starting with '#' are
// skipped. The graph must be connected.
func ReadNetwork(r io.Reader) (*Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var b *graph.Builder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if b == nil {
			var n int
			if _, err := fmt.Sscanf(text, "n %d", &n); err != nil {
				return nil, fmt.Errorf("compactrouting: line %d: want \"n <count>\" header, got %q", line, text)
			}
			b = graph.NewBuilder(n)
			continue
		}
		var u, v int
		var w float64
		if _, err := fmt.Sscanf(text, "%d %d %g", &u, &v, &w); err != nil {
			return nil, fmt.Errorf("compactrouting: line %d: bad edge %q: %w", line, text, err)
		}
		if err := b.AddEdge(u, v, w); err != nil {
			return nil, fmt.Errorf("compactrouting: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("compactrouting: empty network stream")
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// Validate sanity-checks an externally supplied pair list against the
// network size.
func (nw *Network) Validate(pairs [][2]int) error {
	for _, p := range pairs {
		if p[0] < 0 || p[0] >= nw.g.N() || p[1] < 0 || p[1] >= nw.g.N() {
			return fmt.Errorf("compactrouting: pair %v out of range [0, %d)", p, nw.g.N())
		}
	}
	return nil
}
