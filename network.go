package compactrouting

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"

	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
)

// EdgeSpec describes one undirected edge for NewNetwork.
type EdgeSpec struct {
	U, V   int
	Weight float64
}

// Backend names a distance backend a Network can be preprocessed on.
// The two backends answer every metric query bit-identically (see
// internal/metric's equivalence suite); they differ only in cost:
// dense pays O(n²) memory up front for O(1) queries, lazy computes
// truncated Dijkstra rows on demand in a bounded cache.
type Backend string

const (
	// BackendDense runs Dijkstra from every node at construction and
	// stores the full n×n matrices.
	BackendDense Backend = "dense"
	// BackendLazy answers queries from per-source truncated Dijkstra
	// rows cached in a bounded LRU — o(n²) memory for ball-local
	// construction patterns, which is what the schemes execute.
	BackendLazy Backend = "lazy"
)

// ParseBackend validates a backend flag value; "" selects dense.
func ParseBackend(s string) (Backend, error) {
	switch Backend(s) {
	case "", BackendDense:
		return BackendDense, nil
	case BackendLazy:
		return BackendLazy, nil
	default:
		return "", fmt.Errorf("compactrouting: unknown backend %q (want dense|lazy)", s)
	}
}

// newOracle compiles the named backend for g.
func (b Backend) newOracle(g *graph.Graph) (metric.Distancer, error) {
	switch b {
	case "", BackendDense:
		return metric.NewAPSP(g), nil
	case BackendLazy:
		return metric.NewLazyOracle(g), nil
	default:
		return nil, fmt.Errorf("compactrouting: unknown backend %q (want dense|lazy)", string(b))
	}
}

// Network is a preprocessed network: the graph plus its shortest-path
// metric oracle. All scheme constructors hang off it, so the metric
// preprocessing (the dense matrix, or the lazy backend's row cache) is
// shared.
type Network struct {
	g    *graph.Graph
	dist metric.Distancer
}

// NewNetwork builds a network from an explicit edge list on the dense
// backend. The graph must be connected, with positive finite weights,
// no self-loops.
func NewNetwork(n int, edges []EdgeSpec) (*Network, error) {
	return NewNetworkOn(n, edges, BackendDense)
}

// NewNetworkOn is NewNetwork on an explicit distance backend.
func NewNetworkOn(n int, edges []EdgeSpec, backend Backend) (*Network, error) {
	b := graph.NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e.U, e.V, e.Weight); err != nil {
			return nil, err
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return wrapOn(g, backend)
}

func wrap(g *graph.Graph) *Network {
	return &Network{g: g, dist: metric.NewAPSP(g)}
}

func wrapOn(g *graph.Graph, backend Backend) (*Network, error) {
	a, err := backend.newOracle(g)
	if err != nil {
		return nil, err
	}
	return &Network{g: g, dist: a}, nil
}

// Graph returns the underlying graph. The returned value is shared and
// must be treated as read-only; serving layers (internal/server) use it
// to drive step functions without rebuilding adjacency.
func (nw *Network) Graph() *graph.Graph { return nw.g }

// Distancer returns the shortest-path metric oracle. Shared, safe for
// concurrent queries (the dense backend is immutable; the lazy backend
// locks internally).
func (nw *Network) Distancer() metric.Distancer { return nw.dist }

// Backend reports which distance backend the network was preprocessed
// on.
func (nw *Network) Backend() Backend {
	if _, ok := nw.dist.(*metric.APSP); ok {
		return BackendDense
	}
	return BackendLazy
}

// N returns the number of nodes.
func (nw *Network) N() int { return nw.g.N() }

// M returns the number of edges.
func (nw *Network) M() int { return nw.g.M() }

// Dist returns the shortest-path distance between two nodes.
func (nw *Network) Dist(u, v int) float64 { return nw.dist.Dist(u, v) }

// Diameter returns the largest pairwise distance on the dense backend.
// On the lazy backend the exact diameter would cost a full Dijkstra
// per node, so it returns the eccentricity of node 0 instead — a lower
// bound within a factor 2 of the diameter, and the same covering
// radius the scheme constructors anchor their hierarchies on.
func (nw *Network) Diameter() float64 {
	if a, ok := nw.dist.(*metric.APSP); ok {
		return a.Diameter()
	}
	return nw.dist.Eccentricity(0)
}

// NormalizedDiameter returns Delta, the ratio of the largest to the
// smallest pairwise distance (with Diameter's lazy-backend caveat).
func (nw *Network) NormalizedDiameter() float64 {
	if nw.g.N() < 2 {
		return 1
	}
	return nw.Diameter() / nw.dist.MinPairDistance()
}

// DoublingDimension estimates the metric's doubling dimension by
// greedy half-radius covers over sampled balls (samples <= 0 sweeps
// every node). The estimate alpha' satisfies alpha <= alpha' <=
// 2*alpha for the true dimension alpha.
func (nw *Network) DoublingDimension(samples int, seed int64) float64 {
	return metric.EstimateDoublingDimension(nw.dist, samples, seed)
}

// GenerateNetwork builds a named workload family on an explicit
// backend — the switchboard behind routed's -graph/-backend flags.
// Kinds: geometric, grid, grid-holes, ring, exp-path, power-law.
func GenerateNetwork(kind string, n int, seed int64, backend Backend) (*Network, error) {
	var (
		g   *graph.Graph
		err error
	)
	switch kind {
	case "geometric":
		radius := 1.8 * math.Sqrt(math.Log(float64(n))/float64(n))
		g, _, err = graph.RandomGeometric(n, radius, seed)
	case "grid":
		side := int(math.Ceil(math.Sqrt(float64(n))))
		g, err = graph.Grid(side, side)
	case "grid-holes":
		side := int(math.Ceil(math.Sqrt(float64(n))))
		g, _, err = graph.GridWithHoles(side, side, 0.25, seed)
	case "ring":
		g, err = graph.Ring(n)
	case "exp-path":
		g, err = graph.ExponentialPath(n, 4)
	case "power-law":
		g, err = graph.PowerLaw(n, 2, 1024, seed)
	default:
		return nil, fmt.Errorf("compactrouting: unknown graph kind %q", kind)
	}
	if err != nil {
		return nil, err
	}
	return wrapOn(g, backend)
}

// GridNetwork returns the rows x cols unit grid.
func GridNetwork(rows, cols int) (*Network, error) {
	g, err := graph.Grid(rows, cols)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// GridWithHolesNetwork returns the largest component of a grid with
// each cell deleted with probability holeProb: the paper's canonical
// doubling-but-not-growth-bounded family.
func GridWithHolesNetwork(rows, cols int, holeProb float64, seed int64) (*Network, error) {
	g, _, err := graph.GridWithHoles(rows, cols, holeProb, seed)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// RandomGeometricNetwork returns the largest component of a random
// geometric graph on n points with the given connection radius,
// weights scaled so the minimum edge weight is 1.
func RandomGeometricNetwork(n int, radius float64, seed int64) (*Network, error) {
	g, _, err := graph.RandomGeometric(n, radius, seed)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// PathNetwork returns a path with uniform edge weight.
func PathNetwork(n int, weight float64) (*Network, error) {
	g, err := graph.Path(n, weight)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// RingNetwork returns the unit-weight n-cycle.
func RingNetwork(n int) (*Network, error) {
	g, err := graph.Ring(n)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// ExponentialPathNetwork returns a path whose i-th edge weighs base^i:
// a line metric whose normalized diameter is exponential in n — the
// family separating scale-free from non-scale-free schemes.
func ExponentialPathNetwork(n int, base float64) (*Network, error) {
	g, err := graph.ExponentialPath(n, base)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// ExponentialStarNetwork returns a star of k arms whose j-th arm has
// edges of weight base^j.
func ExponentialStarNetwork(n, k int, base float64) (*Network, error) {
	g, err := graph.ExponentialStar(n, k, base)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// ReadNetwork parses the plain edge-list format emitted by
// cmd/graphgen: an "n <count>" header line followed by one "u v weight"
// line per undirected edge. Blank lines and lines starting with '#' are
// skipped. The graph must be connected. The network is preprocessed on
// the dense backend; ReadNetworkOn selects one.
func ReadNetwork(r io.Reader) (*Network, error) {
	return ReadNetworkOn(r, BackendDense)
}

// ReadNetworkOn is ReadNetwork on an explicit distance backend.
func ReadNetworkOn(r io.Reader, backend Backend) (*Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var b *graph.Builder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if b == nil {
			var n int
			if _, err := fmt.Sscanf(text, "n %d", &n); err != nil {
				return nil, fmt.Errorf("compactrouting: line %d: want \"n <count>\" header, got %q", line, text)
			}
			b = graph.NewBuilder(n)
			continue
		}
		var u, v int
		var w float64
		if _, err := fmt.Sscanf(text, "%d %d %g", &u, &v, &w); err != nil {
			return nil, fmt.Errorf("compactrouting: line %d: bad edge %q: %w", line, text, err)
		}
		if err := b.AddEdge(u, v, w); err != nil {
			return nil, fmt.Errorf("compactrouting: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("compactrouting: empty network stream")
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return wrapOn(g, backend)
}

// Validate sanity-checks an externally supplied pair list against the
// network size.
func (nw *Network) Validate(pairs [][2]int) error {
	for _, p := range pairs {
		if p[0] < 0 || p[0] >= nw.g.N() || p[1] < 0 || p[1] >= nw.g.N() {
			return fmt.Errorf("compactrouting: pair %v out of range [0, %d)", p, nw.g.N())
		}
	}
	return nil
}
