// Command routed is the serving daemon: it builds (or loads) a network
// once, compiles the configured routing schemes, and answers route and
// stretch queries over HTTP/JSON until stopped — the
// preprocess-once/query-many split compact routing schemes exist for.
//
// Usage:
//
//	routed -addr :8080 -graph geometric -n 256 -schemes simple-labeled,full-table
//	routed -load net.txt -cache 65536
//	routed -listen-tcp :8081               # binary frame protocol next to HTTP
//	routed -snapshot tables.snap           # load tables if present, else build+save
//	routed -chaos 0.05 -chaos-retries 4    # inject 5% per-hop loss, retry
//	routed -pprof localhost:6060           # net/http/pprof debug listener
//
// With -listen-tcp, the engine also serves the length-prefixed binary
// frame protocol (internal/frame): batched route queries, no JSON, no
// per-query allocation — see cmd/routeload for a client and DESIGN.md
// §Serving plane for the wire format. Both protocols share one engine,
// one cache, and one /metrics block.
//
// With -snapshot, startup is load-and-serve: if the file exists, the
// graph, oracle, and every scheme's tables are restored from it without
// running any scheme constructor; if it does not, routed builds as
// usual and writes the snapshot for the next restart. Version-skewed or
// corrupt snapshots are rejected with an explicit error.
//
// With -chaos, every served route runs through internal/faultsim: hops
// are dropped with the given probability, the source retries with
// exponential backoff, the route cache is bypassed, and /metrics gains
// drop/retry/failed-delivery counters — graceful degradation end to end.
//
// Endpoints (see README "Serving mode" for examples):
//
//	POST /route        {"scheme":"simple-labeled","src":0,"dst":5}  (+ ?trace=1 for the hop log)
//	POST /route/batch  {"scheme":"full-table","pairs":[[0,5],[3,9]]}
//	GET  /schemes      table/label bit accounting per scheme
//	GET  /metrics      counters, latency histograms, cache hit rate
//	POST /reload       {"seed":7} — regenerate the graph, drop the cache
//	GET  /healthz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // debug handlers for the -pprof listener
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"compactrouting"
	"compactrouting/internal/server"
	"compactrouting/internal/snapshot"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		tcpAddr = flag.String("listen-tcp", "", "also serve the binary frame protocol on this TCP address (empty disables)")
		snapP   = flag.String("snapshot", "", "table snapshot path: load it if present, else build and save it (empty disables)")
		kind    = flag.String("graph", "geometric", "generated workload: geometric|grid|grid-holes|ring|exp-path|power-law")
		backend = flag.String("backend", "dense", "distance backend for preprocessing: dense (up-front APSP matrix) or lazy (on-demand truncated Dijkstra rows; no n\u00b2 memory)")
		n       = flag.Int("n", 256, "target network size for generated graphs")
		seed    = flag.Int64("seed", 1, "generator / naming seed")
		eps     = flag.Float64("eps", 0.25, "stretch parameter epsilon (clamped per scheme)")
		schemes = flag.String("schemes", strings.Join(server.SchemeNames, ","), "comma-separated schemes to compile")
		load    = flag.String("load", "", "load an edge-list file (graphgen format) instead of generating")
		cache   = flag.Int("cache", 1<<16, "route cache capacity in entries (0 disables)")
		workers = flag.Int("workers", 0, "batch worker pool size (0 = GOMAXPROCS)")
		pprofA  = flag.String("pprof", "", "serve net/http/pprof on this separate debug address (e.g. localhost:6060); empty disables")

		chaosLoss    = flag.Float64("chaos", 0, "per-hop packet-loss probability to inject on served routes (0 disables fault injection)")
		chaosSeed    = flag.Int64("chaos-seed", 0, "seed for the fault draws (0 = -seed)")
		chaosRetries = flag.Int("chaos-retries", 0, "max transmissions per query under -chaos (0 = faultsim default)")

		traceSample = flag.Int("trace-sample", 0, "run every Nth route query traced and fold the per-phase decomposition into /metrics (0 disables sampling)")
		traceCap    = flag.Int("trace-cap", 0, "max hop records per ?trace=1 response (0 = default 512, negative = unlimited)")
	)
	flag.Parse()
	var chaos *server.ChaosParams
	if *chaosLoss > 0 {
		chaos = &server.ChaosParams{Loss: *chaosLoss, Seed: *chaosSeed, MaxAttempts: *chaosRetries}
	}
	be, err := compactrouting.ParseBackend(*backend)
	if err != nil {
		fmt.Fprintln(os.Stderr, "routed:", err)
		os.Exit(1)
	}
	if err := run(*addr, *tcpAddr, *snapP, *kind, *n, *seed, *eps, *schemes, *load, be, *cache, *workers, *pprofA, chaos, *traceSample, *traceCap); err != nil {
		fmt.Fprintln(os.Stderr, "routed:", err)
		os.Exit(1)
	}
}

// buildFunc returns the network constructor the engine calls at startup
// and on every /reload.
func buildFunc(kind string, n int, load string, backend compactrouting.Backend) func(seed int64) (*compactrouting.Network, error) {
	if load != "" {
		// The first call is the startup build; /reload would only
		// re-read the same file (new namings, same graph), so reject it
		// rather than bump the generation for an identical network.
		// Build is called once in server.New and then only under the
		// engine's reload mutex, so the flag needs no synchronization.
		loaded := false
		return func(int64) (*compactrouting.Network, error) {
			if loaded {
				return nil, fmt.Errorf("reload is not supported with -load %s: restart routed to pick up file changes", load)
			}
			f, err := os.Open(load)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			nw, err := compactrouting.ReadNetworkOn(f, backend)
			if err == nil {
				loaded = true
			}
			return nw, err
		}
	}
	return func(seed int64) (*compactrouting.Network, error) {
		return compactrouting.GenerateNetwork(kind, n, seed, backend)
	}
}

// newEngine builds the engine, preferring a snapshot restore when
// snapPath names an existing file; on a fresh build with snapPath set,
// the compiled tables are saved for the next restart.
func newEngine(cfg server.Config, snapPath string) (*server.Engine, error) {
	if snapPath != "" {
		if f, err := snapshot.Load(snapPath); err == nil {
			eng, rerr := server.NewFromSnapshot(cfg, f)
			if rerr != nil {
				return nil, fmt.Errorf("snapshot %s: %w", snapPath, rerr)
			}
			log.Printf("routed: restored engine from snapshot %s (generation %d, no scheme rebuilt)", snapPath, f.Generation)
			return eng, nil
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("snapshot %s: %w", snapPath, err)
		}
	}
	eng, err := server.New(cfg)
	if err != nil {
		return nil, err
	}
	if snapPath != "" {
		f, err := eng.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("snapshot %s: %w", snapPath, err)
		}
		if err := snapshot.Save(snapPath, f); err != nil {
			return nil, fmt.Errorf("snapshot %s: %w", snapPath, err)
		}
		log.Printf("routed: wrote table snapshot %s", snapPath)
	}
	return eng, nil
}

func run(addr, tcpAddr, snapPath, kind string, n int, seed int64, eps float64, schemes, load string, backend compactrouting.Backend, cache, workers int, pprofAddr string, chaos *server.ChaosParams, traceSample, traceCap int) error {
	start := time.Now()
	eng, err := newEngine(server.Config{
		Build:        buildFunc(kind, n, load, backend),
		Seed:         seed,
		Eps:          eps,
		Schemes:      strings.Split(schemes, ","),
		CacheEntries: cache,
		Workers:      workers,
		Chaos:        chaos,
		TraceSample:  traceSample,
		TraceHopCap:  traceCap,
	}, snapPath)
	if err != nil {
		return err
	}
	gi := eng.Graph()
	log.Printf("routed: serving n=%d m=%d network on %s (built in %v)", gi.Nodes, gi.Edges, addr, time.Since(start).Round(time.Millisecond))
	if chaos != nil {
		log.Printf("routed: CHAOS MODE — injecting %.1f%% per-hop loss (route cache bypassed, drops/retries on /metrics)", 100*chaos.Loss)
	}
	if traceSample > 0 {
		log.Printf("routed: tracing every %d-th route query (per-phase decomposition on /metrics)", traceSample)
	}
	for _, si := range eng.Schemes() {
		log.Printf("routed: scheme %-28s %s, label %d bits, tables max %d / mean %.0f bits (compiled in %.0f ms)",
			si.Name, si.Kind, si.LabelBits, si.TableMaxBits, si.TableMeanBits, si.BuildMillis)
	}

	if pprofAddr != "" {
		// The pprof handlers live on their own listener (and the default
		// mux, which the API server never uses) so profiling exposure is
		// separable from serving traffic.
		// joined by process lifetime: the debug listener serves until exit
		// by design, like net/http/pprof's own examples.
		go func() {
			log.Printf("routed: pprof debug listener on http://%s/debug/pprof/", pprofAddr)
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				log.Printf("routed: pprof listener: %v", err)
			}
		}()
	}

	srv := &http.Server{Addr: addr, Handler: eng.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	var tcp *server.TCPServer
	tcpErrc := make(chan error, 1)
	if tcpAddr != "" {
		ln, err := net.Listen("tcp", tcpAddr)
		if err != nil {
			return fmt.Errorf("listen-tcp %s: %w", tcpAddr, err)
		}
		tcp = server.NewTCPServer(eng)
		log.Printf("routed: binary frame protocol on %s", ln.Addr())
		go func() { tcpErrc <- tcp.Serve(ln) }()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case err := <-tcpErrc:
		return err
	case s := <-sig:
		log.Printf("routed: %v, draining", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if tcp != nil {
			// Drain in-flight TCP frames first: handlers finish the frame
			// they are serving, then exit; the deadline force-closes
			// stragglers.
			if err := tcp.Shutdown(ctx); err != nil {
				return err
			}
			if err := <-tcpErrc; !errors.Is(err, server.ErrTCPServerClosed) {
				return err
			}
		}
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
