// Command graphgen emits the repository's generator graphs as a plain
// edge list ("u v weight" per line, preceded by a "n <count>" header) —
// handy for inspecting workloads or feeding them to other tools.
//
// Usage:
//
//	graphgen -kind grid -n 64
//	graphgen -kind geometric -n 256 -seed 7 > net.txt
//
// Kinds: grid, grid-holes, geometric, path, exp-path, exp-star, ring,
// random-tree, power-law, fractal, lower-bound.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"

	"compactrouting/internal/graph"
	"compactrouting/internal/lowerbound"
)

func main() {
	var (
		kind = flag.String("kind", "geometric", "graph family")
		n    = flag.Int("n", 256, "target size")
		seed = flag.Int64("seed", 1, "random seed")
		base = flag.Float64("base", 4, "weight base for exponential families")
		hole = flag.Float64("holes", 0.25, "hole probability for grid-holes")
		p    = flag.Int("p", 4, "lower-bound tree doublings")
		q    = flag.Int("q", 2, "lower-bound tree weights per doubling")
		maxw = flag.Float64("maxw", 1024, "max edge weight for power-law (log-uniform in [1, maxw])")
	)
	flag.Parse()
	g, err := build(*kind, *n, *seed, *base, *hole, *p, *q, *maxw)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "n %d\n", g.N())
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Neighbors(u) {
			if u < e.To {
				fmt.Fprintf(w, "%d %d %g\n", u, e.To, e.Weight)
			}
		}
	}
}

func build(kind string, n int, seed int64, base, hole float64, p, q int, maxw float64) (*graph.Graph, error) {
	switch kind {
	case "grid":
		side := int(math.Ceil(math.Sqrt(float64(n))))
		return graph.Grid(side, side)
	case "grid-holes":
		side := int(math.Ceil(math.Sqrt(float64(n))))
		g, _, err := graph.GridWithHoles(side, side, hole, seed)
		return g, err
	case "geometric":
		radius := 1.8 * math.Sqrt(math.Log(float64(n))/float64(n))
		g, _, err := graph.RandomGeometric(n, radius, seed)
		return g, err
	case "path":
		return graph.Path(n, 1)
	case "exp-path":
		return graph.ExponentialPath(n, base)
	case "exp-star":
		return graph.ExponentialStar(n, 3, base)
	case "ring":
		return graph.Ring(n)
	case "random-tree":
		return graph.RandomTree(n, 4, seed)
	case "power-law":
		return graph.PowerLaw(n, 2, maxw, seed)
	case "fractal":
		branch := 4
		levels := 1
		for pow := branch; pow < n; pow *= branch {
			levels++
		}
		return graph.Fractal(levels, branch, base)
	case "lower-bound":
		t, err := lowerbound.Build(lowerbound.Params{P: p, Q: q}, n)
		if err != nil {
			return nil, err
		}
		return t.G, nil
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}
