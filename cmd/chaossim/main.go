// Command chaossim runs the resilience experiment: it injects lossy
// links, failed edges, latency and retries (internal/faultsim) into
// every routing scheme and reports how delivery rate and stretch
// degrade, full-table baseline against the paper's compact schemes.
//
// Usage:
//
//	chaossim                                  # text tables, default sweep
//	chaossim -loss 0,0.1,0.3 -fail 0,0.2      # custom sweep axes
//	chaossim -json BENCH_chaossim.json        # machine-readable records
//
// The sweep is seed-deterministic: the same flags and -seed produce a
// byte-identical -json file (asserted by `make check`), because every
// fault draw is a pure hash of (seed, delivery, attempt, hop) and no
// wall-clock value is recorded.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"compactrouting/internal/exp"
	"compactrouting/internal/faultsim"
)

func main() {
	var (
		kind     = flag.String("graph", "geometric", "workload graph: geometric|grid-holes|exp-path")
		n        = flag.Int("n", 128, "target network size")
		eps      = flag.Float64("eps", 0.25, "stretch parameter epsilon (clamped per scheme)")
		pairs    = flag.Int("pairs", 300, "routed source-destination pairs per cell (0 = all pairs)")
		seed     = flag.Int64("seed", 1, "seed for generators, namings, sampling and fault draws")
		loss     = flag.String("loss", "0,0.02,0.05,0.1,0.2", "comma-separated per-hop loss probabilities to sweep")
		fail     = flag.String("fail", "0,0.05,0.1", "comma-separated fractions of edges to delete")
		retries  = flag.Int("retries", faultsim.DefaultReliability.MaxAttempts, "max transmissions per delivery (1 = no retry)")
		backoff  = flag.Float64("backoff", faultsim.DefaultReliability.BaseBackoff, "base retry backoff in virtual time (doubles per retry)")
		maxBack  = flag.Float64("maxbackoff", faultsim.DefaultReliability.MaxBackoff, "backoff cap (0 = uncapped)")
		jitter   = flag.Float64("jitter", faultsim.DefaultReliability.Jitter, "backoff jitter fraction")
		deadline = flag.Float64("deadline", 0, "per-delivery virtual-time deadline (0 = none)")
		latency  = flag.Float64("latency", 1, "virtual time per hop")
		jsonP    = flag.String("json", "", "write machine-readable records to this path instead of text tables")
	)
	flag.Parse()
	cfg := exp.ChaosConfig{
		Rel: faultsim.Reliability{
			MaxAttempts: *retries,
			BaseBackoff: *backoff,
			MaxBackoff:  *maxBack,
			Jitter:      *jitter,
			Deadline:    *deadline,
		},
		HopLatency: *latency,
	}
	var err error
	if cfg.LossRates, err = parseFloats(*loss); err != nil {
		fatal(fmt.Errorf("-loss: %w", err))
	}
	if cfg.FailFracs, err = parseFloats(*fail); err != nil {
		fatal(fmt.Errorf("-fail: %w", err))
	}
	if err := run(*kind, *n, *eps, *pairs, *seed, cfg, *jsonP); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chaossim:", err)
	os.Exit(1)
}

func parseFloats(csv string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(csv, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func buildEnv(kind string, n int, seed int64) (*exp.Env, error) {
	switch kind {
	case "geometric":
		return exp.GeometricEnv(n, seed)
	case "grid-holes":
		side := 1
		for side*side < n {
			side++
		}
		return exp.GridHolesEnv(side, seed)
	case "exp-path":
		return exp.ExpPathEnv(n, 4)
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}

func run(kind string, n int, eps float64, pairs int, seed int64, cfg exp.ChaosConfig, jsonPath string) error {
	env, err := buildEnv(kind, n, seed)
	if err != nil {
		return err
	}
	if jsonPath == "" {
		return exp.Resilience(os.Stdout, env, cfg, eps, pairs, seed)
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	if err := exp.WriteChaosJSON(f, env, cfg, eps, pairs, seed); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("chaossim: wrote %s (%s, eps=%v, %d pairs, %d loss x %d fail cells)\n",
		jsonPath, env.Name, eps, pairs, len(cfg.LossRates), len(cfg.FailFracs))
	return nil
}
