package main

import (
	"math"
	"strings"
	"testing"
)

// TestCheckStretchBoundViolationFails is the regression test for the
// bug where routesim exited zero on stretch-bound violations for
// labeled schemes: the unified check must reject any stretch above the
// bound, whatever the scheme.
func TestCheckStretchBoundViolationFails(t *testing.T) {
	err := checkStretchBound("simple-labeled", 1, []float64{1.0, 1.2, 3.7}, 3.0)
	if err == nil {
		t.Fatal("stretch 3.7 against bound 3.0 must fail the run")
	}
	if !strings.Contains(err.Error(), "STRETCH BOUND VIOLATED") {
		t.Fatalf("violation error should be loud, got: %v", err)
	}
	if !strings.Contains(err.Error(), "3.700") {
		t.Fatalf("violation error should report the worst stretch, got: %v", err)
	}
}

func TestCheckStretchBoundWithinBoundPasses(t *testing.T) {
	if err := checkStretchBound("full-table", 1, []float64{1.0, 1.0}, 1); err != nil {
		t.Fatalf("optimal routes must pass the bound-1 check: %v", err)
	}
	// Accumulated float error just past the bound stays within slack.
	if err := checkStretchBound("full-table", 1, []float64{1 + 1e-12}, 1); err != nil {
		t.Fatalf("float slack must absorb 1e-12: %v", err)
	}
	// An infinite bound (single-tree) passes vacuously.
	if err := checkStretchBound("single-tree", 1, []float64{250}, math.Inf(1)); err != nil {
		t.Fatalf("unbounded scheme must never violate: %v", err)
	}
}

// TestRunEnforcesBoundEndToEnd drives the full pipeline on a small
// network for every scheme and both distance backends: each run must
// deliver all packets, pass the sequential cross-check, and satisfy
// its own analytical stretch bound.
func TestRunEnforcesBoundEndToEnd(t *testing.T) {
	for _, scheme := range []string{
		"simple-labeled",
		"scale-free-labeled",
		"name-independent",
		"scale-free-name-independent",
		"full-table",
		"single-tree",
	} {
		for _, backend := range []string{"dense", "lazy"} {
			scheme, backend := scheme, backend
			t.Run(scheme+"/"+backend, func(t *testing.T) {
				t.Parallel()
				if err := run(64, 200, scheme, 3, 0.25, backend); err != nil {
					t.Fatalf("run(%s, %s): %v", scheme, backend, err)
				}
			})
		}
	}
}
