// Command routesim runs a routing scheme under the concurrent
// message-passing simulator (internal/sim): every node is a goroutine,
// every hop a message, and forwarding decisions are pure functions of
// (local table, packet header). It reports delivery statistics and
// cross-checks a sample against the sequential router.
//
// Usage:
//
//	routesim -n 300 -packets 2000 -scheme simple-labeled
//
// Schemes: simple-labeled, scale-free-labeled, name-independent,
// scale-free-name-independent, full-table, single-tree.
//
// -backend selects the distance backend the scheme is built on: dense
// (full APSP matrices) or lazy (on-demand truncated Dijkstra rows).
// Both yield byte-identical tables and therefore identical walks.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"compactrouting/internal/baseline"
	"compactrouting/internal/core"
	"compactrouting/internal/graph"
	"compactrouting/internal/labeled"
	"compactrouting/internal/metric"
	"compactrouting/internal/nameind"
	"compactrouting/internal/sim"
)

func main() {
	var (
		n       = flag.Int("n", 300, "target network size")
		packets = flag.Int("packets", 2000, "concurrent deliveries")
		scheme  = flag.String("scheme", "simple-labeled", "simple-labeled|scale-free-labeled|name-independent|scale-free-name-independent|full-table|single-tree")
		seed    = flag.Int64("seed", 1, "random seed")
		eps     = flag.Float64("eps", 0.5, "epsilon for the labeled scheme")
		backend = flag.String("backend", "dense", "distance backend: dense|lazy")
	)
	flag.Parse()
	if err := run(*n, *packets, *scheme, *seed, *eps, *backend); err != nil {
		fmt.Fprintln(os.Stderr, "routesim:", err)
		os.Exit(1)
	}
}

func run(n, packets int, scheme string, seed int64, eps float64, backend string) error {
	radius := 1.8 * math.Sqrt(math.Log(float64(n))/float64(n))
	g, _, err := graph.RandomGeometric(n, radius, seed)
	if err != nil {
		return err
	}
	var a metric.Distancer
	switch backend {
	case "", "dense":
		a = metric.NewAPSP(g)
	case "lazy":
		a = metric.NewLazyOracle(g)
	default:
		return fmt.Errorf("unknown backend %q (want dense or lazy)", backend)
	}
	fmt.Printf("network: n=%d m=%d, %d concurrent packets, scheme %s\n", g.N(), g.M(), packets, scheme)

	pairs := core.SamplePairs(g.N(), packets, seed+1)
	deliveries := make([]sim.Delivery, len(pairs))

	// seqRoute replays pair i through the scheme's own sequential
	// driver; the concurrent walk must match it hop for hop.
	var seqRoute func(i int) (*core.Route, error)

	// bound is the scheme's analytical stretch guarantee; every scheme
	// sets it (full-table routes optimally, single-tree's distortion is
	// unbounded) so the violation check below covers labeled and
	// name-independent paths alike.
	bound := math.Inf(1)

	var results []sim.Result
	start := time.Now()
	switch scheme {
	case "simple-labeled":
		s, err := labeled.NewSimple(g, a, eps)
		if err != nil {
			return err
		}
		for i, p := range pairs {
			deliveries[i] = sim.Delivery{Src: p[0], Dst: s.LabelOf(p[1])}
		}
		bound = s.StretchBound()
		results = sim.Run[labeled.SimpleHeader](g, sim.SimpleLabeledRouter{S: s}, deliveries, 0)
		seqRoute = func(i int) (*core.Route, error) {
			return s.RouteToLabel(pairs[i][0], s.LabelOf(pairs[i][1]))
		}
	case "scale-free-labeled":
		se := eps
		if se > 0.25 {
			se = 0.25
		}
		s, err := labeled.NewScaleFree(g, a, se)
		if err != nil {
			return err
		}
		for i, p := range pairs {
			deliveries[i] = sim.Delivery{Src: p[0], Dst: s.LabelOf(p[1])}
		}
		bound = s.StretchBound()
		results = sim.Run[labeled.SFHeader](g, sim.ScaleFreeLabeledRouter{S: s}, deliveries, 64*g.N())
		seqRoute = func(i int) (*core.Route, error) {
			return s.RouteToLabel(pairs[i][0], s.LabelOf(pairs[i][1]))
		}
	case "name-independent":
		ne := eps
		if ne > 1.0/3 {
			ne = 0.25
		}
		under, err := labeled.NewSimple(g, a, ne)
		if err != nil {
			return err
		}
		nm := nameind.RandomNaming(g.N(), seed+2)
		s, err := nameind.NewSimple(g, a, nm, under, ne)
		if err != nil {
			return err
		}
		for i, p := range pairs {
			deliveries[i] = sim.Delivery{Src: p[0], Dst: nm.NameOf(p[1])}
		}
		bound = s.StretchBound()
		results = sim.Run[nameind.NIHeader](g, sim.NameIndependentRouter{S: s}, deliveries, 256*g.N())
		seqRoute = func(i int) (*core.Route, error) {
			return s.RouteToName(pairs[i][0], nm.NameOf(pairs[i][1]))
		}
	case "scale-free-name-independent":
		ne := eps
		if ne > 0.25 {
			ne = 0.25
		}
		under, err := labeled.NewScaleFree(g, a, ne)
		if err != nil {
			return err
		}
		nm := nameind.RandomNaming(g.N(), seed+2)
		s, err := nameind.NewScaleFree(g, a, nm, under, ne)
		if err != nil {
			return err
		}
		for i, p := range pairs {
			deliveries[i] = sim.Delivery{Src: p[0], Dst: nm.NameOf(p[1])}
		}
		bound = s.StretchBound()
		results = sim.Run[nameind.SFNIHeader](g, sim.ScaleFreeNameIndependentRouter{S: s}, deliveries, 512*g.N())
		seqRoute = func(i int) (*core.Route, error) {
			return s.RouteToName(pairs[i][0], nm.NameOf(pairs[i][1]))
		}
	case "full-table":
		s := baseline.NewFullTable(g, a)
		for i, p := range pairs {
			deliveries[i] = sim.Delivery{Src: p[0], Dst: p[1]}
		}
		bound = 1
		results = sim.Run[baseline.Destination](g, sim.FullTableRouter{S: s}, deliveries, 0)
		seqRoute = func(i int) (*core.Route, error) {
			return s.RouteToLabel(pairs[i][0], pairs[i][1])
		}
	case "single-tree":
		s, err := baseline.NewSingleTree(g, 0)
		if err != nil {
			return err
		}
		for i, p := range pairs {
			deliveries[i] = sim.Delivery{Src: p[0], Dst: p[1]}
		}
		results = sim.Run[baseline.TreeHeader](g, sim.SingleTreeRouter{S: s}, deliveries, 0)
		seqRoute = func(i int) (*core.Route, error) {
			return s.RouteToLabel(pairs[i][0], pairs[i][1])
		}
	default:
		return fmt.Errorf("unknown scheme %q", scheme)
	}
	elapsed := time.Since(start)

	var stretches []float64
	hops, maxHdr, failures := 0, 0, 0
	for i, res := range results {
		if res.Err != nil {
			if failures == 0 {
				fmt.Fprintf(os.Stderr, "routesim: FIRST FAILURE scheme=%s seed=%d pair=(%d,%d): %v\n",
					scheme, seed, pairs[i][0], pairs[i][1], res.Err)
			}
			failures++
			continue
		}
		d := a.Dist(pairs[i][0], pairs[i][1])
		if d > 0 {
			stretches = append(stretches, res.Cost/d)
		}
		hops += len(res.Path) - 1
		if res.MaxHeaderBits > maxHdr {
			maxHdr = res.MaxHeaderBits
		}
	}
	if failures > 0 {
		return fmt.Errorf("scheme=%s seed=%d: %d of %d deliveries failed", scheme, seed, failures, len(results))
	}

	// Unified stretch-bound check: a delivered route whose stretch
	// exceeds the scheme's analytical guarantee is a correctness bug, so
	// the run must exit nonzero — for labeled and name-independent
	// schemes alike (historically only the latter were checked).
	if err := checkStretchBound(scheme, seed, stretches, bound); err != nil {
		return err
	}

	// Cross-check a sample of the concurrent walks against the
	// sequential router: the two drive the SAME step functions, so any
	// divergence means hidden shared state leaked between hops.
	checked := len(results)
	if checked > 200 {
		checked = 200
	}
	for i := 0; i < checked; i++ {
		seq, err := seqRoute(i)
		if err != nil {
			return fmt.Errorf("cross-check scheme=%s seed=%d pair=(%d,%d): sequential router failed: %w",
				scheme, seed, pairs[i][0], pairs[i][1], err)
		}
		if diverged(results[i].Path, seq.Path) {
			return fmt.Errorf("cross-check DIVERGED scheme=%s seed=%d pair=(%d,%d): concurrent path %v vs sequential %v",
				scheme, seed, pairs[i][0], pairs[i][1], results[i].Path, seq.Path)
		}
	}
	sort.Float64s(stretches)
	mean := 0.0
	for _, s := range stretches {
		mean += s
	}
	mean /= float64(len(stretches))
	fmt.Printf("delivered %d packets over %d node-goroutines in %v (%.0f hops/ms)\n",
		len(results), g.N(), elapsed.Round(time.Millisecond),
		float64(hops)/float64(elapsed.Milliseconds()+1))
	fmt.Printf("stretch: max %.3f, mean %.3f, p99 %.3f (bound %.3f) | max header %d bits\n",
		stretches[len(stretches)-1], mean,
		stretches[int(math.Ceil(0.99*float64(len(stretches))))-1], bound, maxHdr)
	fmt.Printf("cross-check: %d/%d walks identical to the sequential router\n", checked, len(results))
	return nil
}

// checkStretchBound fails the run when any delivered stretch exceeds
// the scheme's analytical bound (with the same float-accumulation slack
// the scheme packages' tests use). An infinite bound (single-tree)
// passes vacuously.
func checkStretchBound(scheme string, seed int64, stretches []float64, bound float64) error {
	const slack = 1e-9
	viol, worst := 0, 0.0
	for _, s := range stretches {
		if s > bound+slack {
			viol++
			if s > worst {
				worst = s
			}
		}
	}
	if viol > 0 {
		return fmt.Errorf("STRETCH BOUND VIOLATED scheme=%s seed=%d: %d of %d routes exceed %.3f (worst %.3f)",
			scheme, seed, viol, len(stretches), bound, worst)
	}
	return nil
}

// diverged reports whether the two walks differ anywhere.
func diverged(sim, seq []int) bool {
	if len(sim) != len(seq) {
		return true
	}
	for k := range sim {
		if sim[k] != seq[k] {
			return true
		}
	}
	return false
}
