// Command distsim runs the in-network construction experiment (E14):
// it builds this repository's routing substrates by CONGEST-style
// message passing (internal/dist) instead of the omniscient APSP
// oracle, and reports the construction cost — rounds, messages, total
// and per-message bits — next to the size and routed stretch of the
// tables the protocol produced, plus a byte-level equality verdict
// against the oracle compiler.
//
// Usage:
//
//	distsim                                   # text table, n = 64,256,1024
//	distsim -graph grid-holes -n 100,400      # other families and sizes
//	distsim -loss 0.2                         # construct over lossy links
//	distsim -json BENCH_distsim.json          # machine-readable records
//
// The run is seed-deterministic: the same flags and -seed produce a
// byte-identical -json file (asserted by `make check`), because message
// delivery is serialized in sender-id order, fault draws are pure
// hashes, and no wall-clock value is recorded.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"compactrouting/internal/exp"
)

func main() {
	var (
		kind    = flag.String("graph", "geometric", "workload graph: geometric|grid-holes|random-tree")
		ns      = flag.String("n", "64,256,1024", "comma-separated target network sizes")
		eps     = flag.Float64("eps", 0.25, "stretch parameter epsilon for the simple scheme")
		pairs   = flag.Int("pairs", 200, "routed source-destination pairs per record (0 = all pairs)")
		seed    = flag.Int64("seed", 1, "seed for generators, pair sampling and fault draws")
		schemes = flag.String("scheme", "both", "what to construct: tree|simple|both")
		maxBits = flag.Int("maxmsgbits", 0, "CONGEST per-message bit bound (0 = engine default)")
		loss    = flag.Float64("loss", 0, "per-transmission drop probability during construction")
		jsonP   = flag.String("json", "", "write machine-readable records to this path instead of a text table")
	)
	flag.Parse()
	sizes, err := parseInts(*ns)
	if err != nil {
		fatal(fmt.Errorf("-n: %w", err))
	}
	opt := exp.DistOpts{
		Eps:        *eps,
		Pairs:      *pairs,
		Seed:       *seed,
		MaxMsgBits: *maxBits,
		Loss:       *loss,
	}
	switch *schemes {
	case "both":
		opt.Schemes = []string{"tree", "simple"}
	case "tree", "simple":
		opt.Schemes = []string{*schemes}
	default:
		fatal(fmt.Errorf("-scheme: unknown value %q (want tree|simple|both)", *schemes))
	}
	if err := run(*kind, sizes, *seed, opt, *jsonP); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "distsim:", err)
	os.Exit(1)
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func buildEnv(kind string, n int, seed int64) (*exp.Env, error) {
	switch kind {
	case "geometric":
		return exp.GeometricEnv(n, seed)
	case "grid-holes":
		side := 1
		for side*side < n {
			side++
		}
		return exp.GridHolesEnv(side, seed)
	case "random-tree":
		return exp.RandomTreeEnv(n, seed)
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}

func run(kind string, sizes []int, seed int64, opt exp.DistOpts, jsonPath string) error {
	var records []exp.DistRecord
	for _, n := range sizes {
		env, err := buildEnv(kind, n, seed)
		if err != nil {
			return err
		}
		recs, err := exp.DistConstruct(env, opt)
		if err != nil {
			return err
		}
		records = append(records, recs...)
	}
	if jsonPath == "" {
		return exp.DistReport(os.Stdout, records)
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	if err := exp.WriteDistJSON(f, records); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("distsim: wrote %s (%s, %d sizes x %d schemes, eps=%v, loss=%v)\n",
		jsonPath, kind, len(sizes), len(opt.Schemes), opt.Eps, opt.Loss)
	return nil
}
