// Command routeload is the serving plane's load generator: it drives
// route queries at a routed engine over both protocols — HTTP/JSON and
// the binary frame protocol (internal/frame) — and reports sustained
// QPS with p50/p99/p999 latency per protocol, plus the TCP-over-HTTP
// speedup. By default it self-hosts: the engine is built in-process and
// served on loopback listeners, so one invocation measures both planes
// against the exact same tables.
//
// Usage:
//
//	routeload -graph geometric -n 256 -scheme full-table -duration 2s -json
//	routeload -tcp 127.0.0.1:8081 -conns 8 -batch 32     # external server, TCP only
//	routeload -http 127.0.0.1:8080 -rate 5000            # open loop at 5k QPS
//	routeload -json -timing=false                        # deterministic: counts and
//	                                                     # route sums only, no clocks
//
// Modes:
//
//   - Closed loop (default): every connection issues its next operation
//     as soon as the previous one completes, for -duration.
//   - Open loop (-rate N): operations are paced at N ops/sec spread
//     across -conns connections, exposing queueing latency.
//   - Deterministic (-timing=false): every connection walks its static
//     share of the pair set exactly -iters times; the output carries
//     only counts and route-shape sums, so two runs are byte-identical
//     (the `make check` routeload-determinism gate double-runs this).
//
// An HTTP operation is one POST /route query; a TCP operation is one
// route frame batching -batch queries. Latency percentiles are per
// operation.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	"compactrouting"
	"compactrouting/internal/bits"
	"compactrouting/internal/frame"
	"compactrouting/internal/server"
)

func main() {
	var (
		httpAddr = flag.String("http", "", "HTTP server address (empty = self-host in-process)")
		tcpAddr  = flag.String("tcp", "", "frame-protocol server address (empty = self-host in-process)")
		kind     = flag.String("graph", "geometric", "self-host workload: geometric|grid|ring")
		n        = flag.Int("n", 256, "self-host network size")
		seed     = flag.Int64("seed", 1, "graph / pair-generation seed")
		eps      = flag.Float64("eps", 0.25, "self-host stretch parameter")
		scheme   = flag.String("scheme", "full-table", "scheme to query")
		cache    = flag.Int("cache", 1<<16, "self-host route cache entries (0 disables)")
		pairs    = flag.Int("pairs", 512, "distinct (src,dst) pairs in the query set")
		conns    = flag.Int("conns", 4, "concurrent connections per protocol")
		batch    = flag.Int("batch", 16, "route queries per TCP frame")
		duration = flag.Duration("duration", 2*time.Second, "closed/open loop run length per protocol")
		rate     = flag.Float64("rate", 0, "open-loop target ops/sec across all connections (0 = closed loop)")
		iters    = flag.Int("iters", 50, "deterministic mode: passes over each connection's pair share")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON")
		timing   = flag.Bool("timing", true, "measure QPS and latency; -timing=false runs the deterministic fixed-work mode")
	)
	flag.Parse()
	if err := run(config{
		HTTPAddr: *httpAddr, TCPAddr: *tcpAddr,
		Graph: *kind, N: *n, Seed: *seed, Eps: *eps, Scheme: *scheme, Cache: *cache,
		Pairs: *pairs, Conns: *conns, Batch: *batch,
		Duration: *duration, Rate: *rate, Iters: *iters,
		JSON: *jsonOut, Timing: *timing,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "routeload:", err)
		os.Exit(1)
	}
}

type config struct {
	HTTPAddr, TCPAddr string
	Graph             string
	N                 int
	Seed              int64
	Eps               float64
	Scheme            string
	Cache             int
	Pairs             int
	Conns             int
	Batch             int
	Duration          time.Duration
	Rate              float64
	Iters             int
	JSON              bool
	Timing            bool
}

// reportConfig is the config echo in the JSON report (stable fields
// only: no durations in deterministic mode).
type reportConfig struct {
	Graph     string  `json:"graph,omitempty"`
	N         int     `json:"n"`
	Seed      int64   `json:"seed"`
	Scheme    string  `json:"scheme"`
	Pairs     int     `json:"pairs"`
	Conns     int     `json:"conns"`
	Batch     int     `json:"batch"`
	Mode      string  `json:"mode"`
	DurationS float64 `json:"duration_s,omitempty"`
	RateOps   float64 `json:"rate_ops,omitempty"`
	Iters     int     `json:"iters,omitempty"`
}

// protoResult is one protocol's aggregate. In deterministic mode the
// timing fields are zero and omitted, leaving only fields that are a
// pure function of the engine and the pair set.
type protoResult struct {
	Queries    int     `json:"queries"`
	Errors     int     `json:"errors"`
	HopsTotal  int64   `json:"hops_total"`
	CostSum    float64 `json:"cost_sum"`
	OptimalSum float64 `json:"optimal_sum"`
	Seconds    float64 `json:"seconds,omitempty"`
	QPS        float64 `json:"qps,omitempty"`
	MeanUS     float64 `json:"mean_us,omitempty"`
	P50us      float64 `json:"p50_us,omitempty"`
	P99us      float64 `json:"p99_us,omitempty"`
	P999us     float64 `json:"p999_us,omitempty"`
}

type report struct {
	Config     reportConfig `json:"config"`
	HTTP       *protoResult `json:"http,omitempty"`
	TCP        *protoResult `json:"tcp,omitempty"`
	TCPSpeedup float64      `json:"tcp_speedup,omitempty"`
}

type pair struct{ src, dst int }

// opStats is one operation's contribution; per-connection accumulation
// is strictly sequential and connections are combined in id order, so
// the float sums are deterministic.
type opStats struct {
	queries, errors int
	hops            int64
	cost, optimal   float64
}

func (a *opStats) add(b opStats) {
	a.queries += b.queries
	a.errors += b.errors
	a.hops += b.hops
	a.cost += b.cost
	a.optimal += b.optimal
}

// client issues one operation over a slice of the pair set.
type client interface {
	op(ps []pair) (opStats, error)
	close()
}

func run(cfg config) error {
	selfHost := cfg.HTTPAddr == "" && cfg.TCPAddr == ""
	var cleanup []func()
	defer func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}()

	nNodes := cfg.N
	if selfHost {
		eng, err := buildEngine(cfg)
		if err != nil {
			return err
		}
		hln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: eng.Handler()}
		// joined by srv.Close in the cleanup list: Serve returns once the
		// listener closes, before the process exits.
		go srv.Serve(hln)
		cleanup = append(cleanup, func() { srv.Close() })
		cfg.HTTPAddr = hln.Addr().String()

		tln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		tsrv := server.NewTCPServer(eng)
		// joined by tln.Close in the cleanup list: the accept loop exits
		// when its listener closes.
		go tsrv.Serve(tln)
		cleanup = append(cleanup, func() { tln.Close() })
		cfg.TCPAddr = tln.Addr().String()
		nNodes = eng.Graph().Nodes
	}

	// Resolve the scheme index and node count from whichever server is
	// being driven (the frame protocol addresses schemes by index).
	schemeIdx := -1
	if cfg.TCPAddr != "" {
		var err error
		nNodes, schemeIdx, err = tcpDiscover(cfg.TCPAddr, cfg.Scheme)
		if err != nil {
			return err
		}
	} else if !selfHost {
		var err error
		nNodes, err = httpDiscover(cfg.HTTPAddr, cfg.Scheme)
		if err != nil {
			return err
		}
	}
	if nNodes <= 1 {
		return fmt.Errorf("need a network with at least 2 nodes, have %d", nNodes)
	}

	ps := makePairs(cfg.Pairs, nNodes, cfg.Seed)
	rep := report{Config: reportConfig{
		Graph: cfg.Graph, N: nNodes, Seed: cfg.Seed, Scheme: cfg.Scheme,
		Pairs: cfg.Pairs, Conns: cfg.Conns, Batch: cfg.Batch,
	}}
	switch {
	case !cfg.Timing:
		rep.Config.Mode = "deterministic"
		rep.Config.Iters = cfg.Iters
	case cfg.Rate > 0:
		rep.Config.Mode = "open"
		rep.Config.DurationS = cfg.Duration.Seconds()
		rep.Config.RateOps = cfg.Rate
	default:
		rep.Config.Mode = "closed"
		rep.Config.DurationS = cfg.Duration.Seconds()
	}
	if !selfHost {
		rep.Config.Graph = ""
	}

	if cfg.HTTPAddr != "" {
		res, err := runProtocol(cfg, ps, 1, func() (client, error) {
			return newHTTPClient(cfg.HTTPAddr, cfg.Scheme), nil
		})
		if err != nil {
			return fmt.Errorf("http: %w", err)
		}
		rep.HTTP = res
	}
	if cfg.TCPAddr != "" {
		res, err := runProtocol(cfg, ps, cfg.Batch, func() (client, error) {
			return newTCPClient(cfg.TCPAddr, schemeIdx)
		})
		if err != nil {
			return fmt.Errorf("tcp: %w", err)
		}
		rep.TCP = res
	}
	if cfg.Timing && rep.HTTP != nil && rep.TCP != nil && rep.HTTP.QPS > 0 {
		rep.TCPSpeedup = rep.TCP.QPS / rep.HTTP.QPS
	}
	return emit(rep, cfg.JSON)
}

func buildEngine(cfg config) (*server.Engine, error) {
	return server.New(server.Config{
		Build: func(seed int64) (*compactrouting.Network, error) {
			switch cfg.Graph {
			case "geometric":
				radius := 1.8 * math.Sqrt(math.Log(float64(cfg.N))/float64(cfg.N))
				return compactrouting.RandomGeometricNetwork(cfg.N, radius, seed)
			case "grid":
				side := int(math.Ceil(math.Sqrt(float64(cfg.N))))
				return compactrouting.GridNetwork(side, side)
			case "ring":
				return compactrouting.RingNetwork(cfg.N)
			default:
				return nil, fmt.Errorf("unknown graph kind %q", cfg.Graph)
			}
		},
		Seed:         cfg.Seed,
		Eps:          cfg.Eps,
		Schemes:      []string{cfg.Scheme},
		CacheEntries: cfg.Cache,
	})
}

func makePairs(count, n int, seed int64) []pair {
	rng := rand.New(rand.NewSource(seed + 1))
	ps := make([]pair, count)
	for i := range ps {
		src := rng.Intn(n)
		dst := rng.Intn(n)
		for dst == src {
			dst = rng.Intn(n)
		}
		ps[i] = pair{src, dst}
	}
	return ps
}

// runProtocol drives one protocol with cfg.Conns connections, each
// consuming `per` pairs per operation.
func runProtocol(cfg config, ps []pair, per int, dial func() (client, error)) (*protoResult, error) {
	conns := cfg.Conns
	if conns <= 0 {
		conns = 1
	}
	clients := make([]client, conns)
	for i := range clients {
		c, err := dial()
		if err != nil {
			return nil, err
		}
		clients[i] = c
		defer c.close()
	}

	stats := make([]opStats, conns)
	errs := make([]error, conns)
	lats := make([][]int64, conns)
	done := make(chan int, conns)

	// Each connection owns a static contiguous share of the pair set.
	share := func(id int) []pair {
		lo := id * len(ps) / conns
		hi := (id + 1) * len(ps) / conns
		if hi <= lo {
			return ps // degenerate split: more conns than pairs
		}
		return ps[lo:hi]
	}

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var interval time.Duration
	if cfg.Timing && cfg.Rate > 0 {
		interval = time.Duration(float64(conns) / cfg.Rate * float64(time.Second))
	}
	for id := 0; id < conns; id++ {
		go func(id int) {
			defer func() { done <- id }()
			mine := share(id)
			c := clients[id]
			if !cfg.Timing {
				for it := 0; it < cfg.Iters; it++ {
					for off := 0; off < len(mine); off += per {
						end := off + per
						if end > len(mine) {
							end = len(mine)
						}
						st, err := c.op(mine[off:end])
						if err != nil {
							errs[id] = err
							return
						}
						stats[id].add(st)
					}
				}
				return
			}
			next := start
			for off := 0; ; off += per {
				if off >= len(mine) {
					off = 0
				}
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval)
				}
				if time.Now().After(deadline) {
					return
				}
				end := off + per
				if end > len(mine) {
					end = len(mine)
				}
				t0 := time.Now()
				st, err := c.op(mine[off:end])
				if err != nil {
					errs[id] = err
					return
				}
				lats[id] = append(lats[id], time.Since(t0).Microseconds())
				stats[id].add(st)
			}
		}(id)
	}
	for i := 0; i < conns; i++ {
		<-done
	}
	elapsed := time.Since(start)

	var total opStats
	for id := 0; id < conns; id++ { // combine in id order: deterministic float sums
		if errs[id] != nil {
			return nil, errs[id]
		}
		total.add(stats[id])
	}
	res := &protoResult{
		Queries:    total.queries,
		Errors:     total.errors,
		HopsTotal:  total.hops,
		CostSum:    total.cost,
		OptimalSum: total.optimal,
	}
	if cfg.Timing {
		var all []int64
		for _, l := range lats {
			all = append(all, l...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		res.Seconds = elapsed.Seconds()
		if res.Seconds > 0 {
			res.QPS = float64(total.queries) / res.Seconds
		}
		if len(all) > 0 {
			var sum int64
			for _, v := range all {
				sum += v
			}
			res.MeanUS = float64(sum) / float64(len(all))
			res.P50us = percentile(all, 0.50)
			res.P99us = percentile(all, 0.99)
			res.P999us = percentile(all, 0.999)
		}
	}
	return res, nil
}

func percentile(sorted []int64, q float64) float64 {
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx])
}

// ---- HTTP client ----

type httpClient struct {
	c      *http.Client
	url    string
	scheme string
	buf    bytes.Buffer
}

func newHTTPClient(addr, scheme string) *httpClient {
	return &httpClient{
		c:      &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 1}},
		url:    "http://" + addr + "/route",
		scheme: scheme,
	}
}

func (h *httpClient) op(ps []pair) (opStats, error) {
	var st opStats
	for _, p := range ps {
		h.buf.Reset()
		fmt.Fprintf(&h.buf, `{"scheme":%q,"src":%d,"dst":%d,"omit_path":true}`, h.scheme, p.src, p.dst)
		resp, err := h.c.Post(h.url, "application/json", &h.buf)
		if err != nil {
			return st, err
		}
		var out struct {
			Hops    int     `json:"hops"`
			Cost    float64 `json:"cost"`
			Optimal float64 `json:"optimal"`
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			st.queries++
			st.errors++
			continue
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			resp.Body.Close()
			return st, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		st.queries++
		st.hops += int64(out.Hops)
		st.cost += out.Cost
		st.optimal += out.Optimal
	}
	return st, nil
}

func (h *httpClient) close() { h.c.CloseIdleConnections() }

func httpDiscover(addr, scheme string) (n int, err error) {
	resp, err := http.Get("http://" + addr + "/schemes")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var out struct {
		Graph struct {
			Nodes int `json:"nodes"`
		} `json:"graph"`
		Schemes []struct {
			Name string `json:"name"`
		} `json:"schemes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	for _, s := range out.Schemes {
		if s.Name == scheme {
			return out.Graph.Nodes, nil
		}
	}
	return 0, fmt.Errorf("server does not serve scheme %q", scheme)
}

// ---- TCP (frame protocol) client ----

type tcpClient struct {
	conn      net.Conn
	br        *bufio.Reader
	w         bits.Writer
	rd        bits.Reader
	out       []byte
	hdr       [frame.HeaderSize]byte
	payload   []byte
	req       frame.RouteRequest
	resp      frame.RouteResponse
	schemeIdx int
	reqID     uint64
}

func newTCPClient(addr string, schemeIdx int) (*tcpClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpClient{
		conn:      conn,
		br:        bufio.NewReaderSize(conn, 32<<10),
		schemeIdx: schemeIdx,
	}, nil
}

// roundTrip writes one frame built by encode and reads one response
// frame back, returning its header and payload (valid until next call).
func (t *tcpClient) roundTrip(typ frame.Type, encode func(*bits.Writer)) (frame.Header, []byte, error) {
	t.reqID++
	t.w.Reset()
	if encode != nil {
		encode(&t.w)
	}
	var err error
	t.out, err = frame.AppendFrame(t.out[:0], typ, t.reqID, t.w.Bytes())
	if err != nil {
		return frame.Header{}, nil, err
	}
	if _, err := t.conn.Write(t.out); err != nil {
		return frame.Header{}, nil, err
	}
	if _, err := io.ReadFull(t.br, t.hdr[:]); err != nil {
		return frame.Header{}, nil, err
	}
	h, err := frame.ParseHeader(t.hdr[:])
	if err != nil {
		return frame.Header{}, nil, err
	}
	if int(h.PayloadLen) > cap(t.payload) {
		t.payload = make([]byte, h.PayloadLen)
	}
	t.payload = t.payload[:h.PayloadLen]
	if _, err := io.ReadFull(t.br, t.payload); err != nil {
		return frame.Header{}, nil, err
	}
	if h.Type == frame.TypeError {
		msg, derr := frame.DecodeError(t.payload, &t.rd)
		if derr != nil {
			return h, nil, derr
		}
		return h, nil, fmt.Errorf("server error: %s", msg)
	}
	return h, t.payload, nil
}

func (t *tcpClient) op(ps []pair) (opStats, error) {
	var st opStats
	t.req.Scheme = t.schemeIdx
	t.req.Pairs = t.req.Pairs[:0]
	for _, p := range ps {
		t.req.Pairs = append(t.req.Pairs, frame.Pair{Src: int32(p.src), Dst: int32(p.dst)})
	}
	h, payload, err := t.roundTrip(frame.TypeRouteRequest, t.req.Encode)
	if err != nil {
		return st, err
	}
	if h.Type != frame.TypeRouteResponse {
		return st, fmt.Errorf("unexpected frame type %d", h.Type)
	}
	if err := t.resp.DecodeInto(payload, &t.rd); err != nil {
		return st, err
	}
	if len(t.resp.Results) != len(ps) {
		return st, fmt.Errorf("got %d results for %d pairs", len(t.resp.Results), len(ps))
	}
	for i := range t.resp.Results {
		r := &t.resp.Results[i]
		st.queries++
		if r.Status != frame.StatusOK {
			st.errors++
			continue
		}
		st.hops += int64(r.Hops)
		st.cost += r.Cost
		st.optimal += r.Optimal
	}
	return st, nil
}

func (t *tcpClient) close() { t.conn.Close() }

// tcpDiscover resolves the network size and the scheme's compile-order
// index via a TypeSchemesRequest frame.
func tcpDiscover(addr, scheme string) (n, schemeIdx int, err error) {
	c, err := newTCPClient(addr, 0)
	if err != nil {
		return 0, 0, err
	}
	defer c.close()
	h, payload, err := c.roundTrip(frame.TypeSchemesRequest, nil)
	if err != nil {
		return 0, 0, err
	}
	if h.Type != frame.TypeSchemesResponse {
		return 0, 0, fmt.Errorf("unexpected frame type %d", h.Type)
	}
	var sr frame.SchemesResponse
	if err := sr.DecodeInto(payload, &c.rd); err != nil {
		return 0, 0, err
	}
	for i, name := range sr.Names {
		if name == scheme {
			return sr.N, i, nil
		}
	}
	return 0, 0, fmt.Errorf("server does not serve scheme %q (has %v)", scheme, sr.Names)
}

func emit(rep report, asJSON bool) error {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("routeload: scheme=%s n=%d pairs=%d conns=%d batch=%d mode=%s\n",
		rep.Config.Scheme, rep.Config.N, rep.Config.Pairs, rep.Config.Conns, rep.Config.Batch, rep.Config.Mode)
	show := func(name string, r *protoResult) {
		if r == nil {
			return
		}
		if r.Seconds > 0 {
			fmt.Printf("  %-5s %9.0f qps   p50 %6.0fµs  p99 %6.0fµs  p99.9 %6.0fµs   (%d queries, %d errors)\n",
				name, r.QPS, r.P50us, r.P99us, r.P999us, r.Queries, r.Errors)
		} else {
			fmt.Printf("  %-5s %d queries, %d errors, %d total hops, cost sum %.6f, optimal sum %.6f\n",
				name, r.Queries, r.Errors, r.HopsTotal, r.CostSum, r.OptimalSum)
		}
	}
	show("http", rep.HTTP)
	show("tcp", rep.TCP)
	if rep.TCPSpeedup > 0 {
		fmt.Printf("  tcp/http speedup: %.1fx\n", rep.TCPSpeedup)
	}
	return nil
}
