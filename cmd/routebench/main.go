// Command routebench regenerates the paper's tables and figures from
// live runs of the routing schemes (see DESIGN.md for the experiment
// index).
//
// Usage:
//
//	routebench -exp all                     # everything, default sizes
//	routebench -exp table1 -n 512 -eps 0.2  # one experiment, custom size
//	routebench -json BENCH_routebench.json  # machine-readable bench sweep
//	routebench -exp apspfree -json BENCH_apspfree.json -timing=false
//
// Experiments: table1, table2, fig1, fig2, fig3, storage, epsilon,
// apspfree, all.
//
// -backend selects the distance backend the experiment env is compiled
// on: dense (the up-front APSP matrix) or lazy (on-demand truncated
// Dijkstra rows in a bounded cache). The two are byte-equivalent, so
// every result is identical; only build cost and memory change. -exp
// apspfree runs the E16 scaling family (the Krioukov–Fall–Yang
// stretch-CDF reproduction on power-law graphs), which rides the lazy
// backend past the dense backend's n² wall — sizes set by -sizes.
//
// With -json, the text experiments are skipped; instead every scheme is
// benchmarked on the -graph workload and one JSON record per scheme
// (stretch percentiles and histogram, table bits, per-phase build wall
// times, ns/query) is written to the given path, so benchmark
// trajectories can be compared across commits. -trace evaluates through
// the traced simulator adapters and adds the per-phase detour
// decomposition to every record. -timing=false zeroes the wall-clock
// fields, making the file a pure function of the flags (`make check`
// double-runs it, traced, and diffs). -cpuprofile captures a CPU
// profile of the whole build+sweep (`make profile`).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"compactrouting/internal/exp"
)

func main() {
	var (
		which   = flag.String("exp", "all", "experiment: table1|table2|fig1|fig2|fig3|storage|epsilon|ablation|overhead|dimension|oracle|apspfree|all")
		n       = flag.Int("n", 256, "target network size")
		eps     = flag.Float64("eps", 0.25, "stretch parameter epsilon")
		pairs   = flag.Int("pairs", 1000, "routed source-destination pairs per experiment (0 = all pairs)")
		seed    = flag.Int64("seed", 1, "random seed for generators, namings and sampling")
		graph   = flag.String("graph", "geometric", "workload graph: geometric|grid-holes|exp-path|unit-path|power-law")
		backend = flag.String("backend", "dense", "distance backend: dense (up-front APSP matrix) or lazy (on-demand truncated Dijkstra rows); byte-identical results either way")
		sizes   = flag.String("sizes", "", "with -exp apspfree: comma-separated graph sizes overriding the default ladder")
		jsonP   = flag.String("json", "", "write a machine-readable bench sweep to this path and exit")
		traced  = flag.Bool("trace", false, "with -json, evaluate through the traced simulator adapters and add the per-phase detour decomposition to every record")
		timing  = flag.Bool("timing", true, "record wall-clock fields (apsp_ms, build_ms, total_ms, ns_per_query) in -json records; false makes the output seed-deterministic")
		profile = flag.String("cpuprofile", "", "write a CPU profile of the full build+sweep to this path")
	)
	flag.Parse()
	if *profile != "" {
		f, err := os.Create(*profile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "routebench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "routebench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Printf("routebench: wrote CPU profile to %s\n", *profile)
		}()
	}
	if *which == "apspfree" {
		if *jsonP == "" {
			fmt.Fprintln(os.Stderr, "routebench: -exp apspfree writes JSON; pass -json PATH")
			os.Exit(1)
		}
		if err := runAPSPFree(*jsonP, *sizes, *eps, *pairs, *seed, *timing); err != nil {
			fmt.Fprintln(os.Stderr, "routebench:", err)
			os.Exit(1)
		}
		return
	}
	if *jsonP != "" {
		if err := runJSON(*jsonP, *n, *eps, *pairs, *seed, *graph, *backend, *timing, *traced); err != nil {
			fmt.Fprintln(os.Stderr, "routebench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*which, *n, *eps, *pairs, *seed, *graph, *backend); err != nil {
		fmt.Fprintln(os.Stderr, "routebench:", err)
		os.Exit(1)
	}
}

// runAPSPFree writes the E16 APSP-free scaling family (the KFY
// stretch-CDF reproduction on power-law graphs; see internal/exp).
func runAPSPFree(path, sizes string, eps float64, pairs int, seed int64, timing bool) error {
	opt := exp.APSPFreeOpts{Eps: eps, Pairs: pairs, Seed: seed, Timing: timing}
	if sizes != "" {
		for _, s := range strings.Split(sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return fmt.Errorf("bad -sizes entry %q: %w", s, err)
			}
			opt.Sizes = append(opt.Sizes, n)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := exp.WriteAPSPFreeJSON(f, opt); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("routebench: wrote %s (apspfree, eps=%v, %d pairs)\n", path, eps, pairs)
	return nil
}

// runJSON benchmarks every scheme on the workload and writes the
// records to path, reporting the build pipeline's per-phase wall time.
func runJSON(path string, n int, eps float64, pairs int, seed int64, graphKind, backend string, timing, traced bool) error {
	start := time.Now()
	env, err := exp.EnvOn(graphKind, n, seed, backend)
	if err != nil {
		return err
	}
	apspMS := float64(time.Since(start).Microseconds()) / 1000
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	opt := exp.BenchOpts{Eps: eps, Pairs: pairs, Seed: seed, Timing: timing, ApspMS: apspMS, Trace: traced}
	sweepStart := time.Now()
	if err := exp.WriteBenchJSON(f, env, opt); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("routebench: wrote %s (%s, n=%d, eps=%v, %d pairs)\n", path, env.Name, env.G.N(), eps, pairs)
	if timing {
		fmt.Printf("routebench: phases: apsp %.0f ms, schemes+sweep %.0f ms, total %.0f ms\n",
			apspMS, float64(time.Since(sweepStart).Microseconds())/1000,
			float64(time.Since(start).Microseconds())/1000)
	}
	return nil
}

func run(which string, n int, eps float64, pairs int, seed int64, graphKind, backend string) error {
	w := os.Stdout
	needEnv := map[string]bool{"table1": true, "table2": true, "fig1": true, "fig2": true, "epsilon": true, "ablation": true, "overhead": true, "oracle": true, "all": true}
	var env *exp.Env
	if needEnv[which] {
		var err error
		env, err = exp.EnvOn(graphKind, n, seed, backend)
		if err != nil {
			return err
		}
	}
	sep := func() { fmt.Fprintln(w, strings.Repeat("-", 100)) }
	runOne := func(name string) error {
		switch name {
		case "table1":
			return exp.Table1(w, env, eps, pairs, seed)
		case "table2":
			return exp.Table2(w, env, eps, pairs, seed)
		case "fig1":
			return exp.Fig1(w, env, eps, pairs, seed)
		case "fig2":
			return exp.Fig2(w, env, eps, pairs, seed)
		case "fig3":
			return exp.Fig3(w, pairs, seed)
		case "storage":
			return exp.Storage(w, []int{32, 64, 128}, 4, seed)
		case "epsilon":
			return exp.Epsilon(w, env, pairs, seed)
		case "ablation":
			return exp.Ablation(w, env, pairs, seed)
		case "overhead":
			return exp.Overhead(w, env, eps, pairs, seed)
		case "dimension":
			return exp.Dimension(w, eps, pairs, seed)
		case "oracle":
			return exp.OracleSweep(w, env, pairs, seed)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}
	if which == "all" {
		for _, name := range []string{"table1", "table2", "fig1", "fig2", "fig3", "storage", "epsilon", "ablation", "overhead", "dimension", "oracle"} {
			if err := runOne(name); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			if name == "fig2" {
				// Phase B of Algorithm 5 only triggers on metrics with
				// empty annuli; rerun the anatomy on one.
				expoEnv, err := exp.ExpPathEnv(128, 4)
				if err != nil {
					return err
				}
				if err := exp.Fig2(w, expoEnv, eps, pairs, seed); err != nil {
					return fmt.Errorf("fig2/exp-path: %w", err)
				}
			}
			sep()
		}
		return nil
	}
	return runOne(which)
}
