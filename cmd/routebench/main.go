// Command routebench regenerates the paper's tables and figures from
// live runs of the routing schemes (see DESIGN.md for the experiment
// index).
//
// Usage:
//
//	routebench -exp all                     # everything, default sizes
//	routebench -exp table1 -n 512 -eps 0.2  # one experiment, custom size
//	routebench -json BENCH_routebench.json  # machine-readable bench sweep
//
// Experiments: table1, table2, fig1, fig2, fig3, storage, epsilon, all.
//
// With -json, the text experiments are skipped; instead every scheme is
// benchmarked on the -graph workload and one JSON record per scheme
// (stretch percentiles, table bits, ns/query) is written to the given
// path, so benchmark trajectories can be compared across commits.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"compactrouting/internal/exp"
)

func main() {
	var (
		which = flag.String("exp", "all", "experiment: table1|table2|fig1|fig2|fig3|storage|epsilon|ablation|overhead|dimension|oracle|all")
		n     = flag.Int("n", 256, "target network size")
		eps   = flag.Float64("eps", 0.25, "stretch parameter epsilon")
		pairs = flag.Int("pairs", 1000, "routed source-destination pairs per experiment (0 = all pairs)")
		seed  = flag.Int64("seed", 1, "random seed for generators, namings and sampling")
		graph = flag.String("graph", "geometric", "workload graph: geometric|grid-holes|exp-path")
		jsonP = flag.String("json", "", "write a machine-readable bench sweep to this path and exit")
	)
	flag.Parse()
	if *jsonP != "" {
		if err := runJSON(*jsonP, *n, *eps, *pairs, *seed, *graph); err != nil {
			fmt.Fprintln(os.Stderr, "routebench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*which, *n, *eps, *pairs, *seed, *graph); err != nil {
		fmt.Fprintln(os.Stderr, "routebench:", err)
		os.Exit(1)
	}
}

// runJSON benchmarks every scheme on the workload and writes the
// records to path.
func runJSON(path string, n int, eps float64, pairs int, seed int64, graphKind string) error {
	env, err := buildEnv(graphKind, n, seed)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := exp.WriteBenchJSON(f, env, eps, pairs, seed); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("routebench: wrote %s (%s, n=%d, eps=%v, %d pairs)\n", path, env.Name, env.G.N(), eps, pairs)
	return nil
}

func buildEnv(kind string, n int, seed int64) (*exp.Env, error) {
	switch kind {
	case "geometric":
		return exp.GeometricEnv(n, seed)
	case "grid-holes":
		side := 1
		for side*side < n {
			side++
		}
		return exp.GridHolesEnv(side, seed)
	case "exp-path":
		return exp.ExpPathEnv(n, 4)
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}

func run(which string, n int, eps float64, pairs int, seed int64, graphKind string) error {
	w := os.Stdout
	needEnv := map[string]bool{"table1": true, "table2": true, "fig1": true, "fig2": true, "epsilon": true, "ablation": true, "overhead": true, "oracle": true, "all": true}
	var env *exp.Env
	if needEnv[which] {
		var err error
		env, err = buildEnv(graphKind, n, seed)
		if err != nil {
			return err
		}
	}
	sep := func() { fmt.Fprintln(w, strings.Repeat("-", 100)) }
	runOne := func(name string) error {
		switch name {
		case "table1":
			return exp.Table1(w, env, eps, pairs, seed)
		case "table2":
			return exp.Table2(w, env, eps, pairs, seed)
		case "fig1":
			return exp.Fig1(w, env, eps, pairs, seed)
		case "fig2":
			return exp.Fig2(w, env, eps, pairs, seed)
		case "fig3":
			return exp.Fig3(w, pairs, seed)
		case "storage":
			return exp.Storage(w, []int{32, 64, 128}, 4, seed)
		case "epsilon":
			return exp.Epsilon(w, env, pairs, seed)
		case "ablation":
			return exp.Ablation(w, env, pairs, seed)
		case "overhead":
			return exp.Overhead(w, env, eps, pairs, seed)
		case "dimension":
			return exp.Dimension(w, eps, pairs, seed)
		case "oracle":
			return exp.OracleSweep(w, env, pairs, seed)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}
	if which == "all" {
		for _, name := range []string{"table1", "table2", "fig1", "fig2", "fig3", "storage", "epsilon", "ablation", "overhead", "dimension", "oracle"} {
			if err := runOne(name); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			if name == "fig2" {
				// Phase B of Algorithm 5 only triggers on metrics with
				// empty annuli; rerun the anatomy on one.
				expoEnv, err := exp.ExpPathEnv(128, 4)
				if err != nil {
					return err
				}
				if err := exp.Fig2(w, expoEnv, eps, pairs, seed); err != nil {
					return fmt.Errorf("fig2/exp-path: %w", err)
				}
			}
			sep()
		}
		return nil
	}
	return runOne(which)
}
