// Command determinlint runs the repository's custom static-analysis
// suite (internal/lint): vet-style analyzers that enforce the
// determinism and concurrency contracts — no unordered map iteration
// feeding deterministic output, no wall clock or global rand in seeded
// paths, index-owned writes inside par bodies, mutex annotations on
// guarded fields, and no exact float equality in stretch accounting.
//
// Usage:
//
//	determinlint [-run analyzer[,analyzer]] [-list] [module-dir]
//
// It exits 0 on a clean tree, 1 with file:line:col diagnostics when
// any analyzer finds a violation, and 2 on load errors. `make lint`
// runs it over the module as part of `make check`.
package main

import (
	"os"

	"compactrouting/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
