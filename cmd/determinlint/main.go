// Command determinlint runs the repository's custom static-analysis
// suite (internal/lint): vet-style analyzers that enforce the
// determinism, performance, and concurrency contracts. Nine rules:
//
//   - maprange: no unordered map iteration feeding deterministic output
//   - wallclock: no wall clock or global rand in seeded paths
//   - parbody: index-owned writes inside par bodies
//   - guardedfield: mutex annotations on guarded struct fields
//   - floateq: no exact float equality in stretch accounting
//   - hotpath: //determinlint:hotpath functions are transitively
//     allocation-free
//   - codecpair: bit-codec encoders have a decode counterpart, a
//     Bits() size accountant, and a same-package round-trip/fuzz pin
//   - goleak: every go statement shows a join, a cancel tie, or a
//     `// joined by <what>` note
//   - lockorder: no cycles in the mutex acquisition graph, no
//     surprise locking calls made while a lock is held
//
// Usage:
//
//	determinlint [-rules analyzer[,analyzer]] [-list] [-timing] [-maxwall duration] [module-dir]
//
// -rules (alias -run) selects a subset; -timing prints per-analyzer
// wall time and finding counts to stderr; -maxwall fails the run when
// load+analysis exceeds the budget. It exits 0 on a clean tree, 1 with
// file:line:col diagnostics when any analyzer finds a violation, and 2
// on usage/load errors or a -maxwall overrun. `make lint` runs it over
// the module as part of `make check`.
package main

import (
	"os"

	"compactrouting/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
