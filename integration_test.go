package compactrouting

// Cross-scheme integration tests at the public API: every scheme on
// every workload family, delivery and stretch invariants, and a
// larger-scale run guarded by -short.

import (
	"testing"
	"testing/quick"
)

// workloads returns one small network per generator family.
func workloads(t *testing.T) map[string]*Network {
	t.Helper()
	out := map[string]*Network{}
	var err error
	if out["grid"], err = GridNetwork(8, 8); err != nil {
		t.Fatal(err)
	}
	if out["grid-holes"], err = GridWithHolesNetwork(10, 10, 0.25, 2); err != nil {
		t.Fatal(err)
	}
	if out["geometric"], err = RandomGeometricNetwork(100, 0.25, 3); err != nil {
		t.Fatal(err)
	}
	if out["ring"], err = RingNetwork(48); err != nil {
		t.Fatal(err)
	}
	if out["exp-path"], err = ExponentialPathNetwork(40, 4); err != nil {
		t.Fatal(err)
	}
	if out["exp-star"], err = ExponentialStarNetwork(46, 3, 5); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAllSchemesAllWorkloads(t *testing.T) {
	for name, nw := range workloads(t) {
		nw := nw
		t.Run(name, func(t *testing.T) {
			pairs := SamplePairs(nw.N(), 200, 9)
			fl, err := nw.NewScaleFreeLabeled(0.25)
			if err != nil {
				t.Fatal(err)
			}
			sl, err := nw.NewSimpleLabeled(0.5)
			if err != nil {
				t.Fatal(err)
			}
			fn, err := nw.NewScaleFreeNameIndependent(0.25, nil)
			if err != nil {
				t.Fatal(err)
			}
			sn, err := nw.NewSimpleNameIndependent(0.25, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, l := range []*Labeled{fl, sl} {
				st, err := l.Evaluate(pairs)
				if err != nil {
					t.Fatalf("%s: %v", l.Name(), err)
				}
				if st.Max > 3.1 { // 1+O(eps) with generous slack
					t.Errorf("%s stretch %.3f on %s", l.Name(), st.Max, name)
				}
				if st.Fallbacks != 0 {
					t.Errorf("%s used %d fallbacks on %s", l.Name(), st.Fallbacks, name)
				}
			}
			for _, s := range []*NameIndependent{fn, sn} {
				st, err := s.Evaluate(pairs)
				if err != nil {
					t.Fatalf("%s: %v", s.Name(), err)
				}
				if st.Max > 14 { // 9+O(eps) with slack for eps=0.25 constants
					t.Errorf("%s stretch %.3f on %s", s.Name(), st.Max, name)
				}
			}
		})
	}
}

func TestQuickDeliveryInvariant(t *testing.T) {
	// Over random seeds: the scale-free name-independent scheme always
	// delivers to the correct node and never beats the metric.
	f := func(seed int64, a, b uint8) bool {
		nw, err := RandomGeometricNetwork(50+int(uint16(seed)%40), 0.3, seed)
		if err != nil {
			return true
		}
		s, err := nw.NewScaleFreeNameIndependent(0.25, nil)
		if err != nil {
			return false
		}
		u, v := int(a)%nw.N(), int(b)%nw.N()
		r, err := s.Route(u, s.NameOf(v))
		if err != nil {
			return false
		}
		return r.Dst == v && r.Cost >= nw.Dist(u, v)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestMediumScale(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale run skipped in -short mode")
	}
	nw, err := RandomGeometricNetwork(700, 0.09, 11)
	if err != nil {
		t.Fatal(err)
	}
	if nw.N() < 500 {
		t.Fatalf("component too small: %d", nw.N())
	}
	pairs := SamplePairs(nw.N(), 1500, 13)
	fl, err := nw.NewScaleFreeLabeled(0.25)
	if err != nil {
		t.Fatal(err)
	}
	st, err := fl.Evaluate(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Max > 3.1 || st.Fallbacks != 0 {
		t.Fatalf("labeled at n=%d: %+v", nw.N(), st)
	}
	fn, err := nw.NewScaleFreeNameIndependent(0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	nst, err := fn.Evaluate(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if nst.Max > 14 {
		t.Fatalf("nameind at n=%d: %+v", nw.N(), nst)
	}
	t.Logf("n=%d: labeled max %.3f mean %.3f | nameind max %.3f mean %.3f, tables max %d bits",
		nw.N(), st.Max, st.Mean, nst.Max, nst.Mean, fn.Tables().MaxBits)
}
