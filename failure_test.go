package compactrouting

// Failure-injection tests at the public API: every malformed input
// must surface as an error, never a panic or a wrong delivery.

import (
	"strings"
	"testing"
)

func TestBadSourcesError(t *testing.T) {
	nw, err := RandomGeometricNetwork(60, 0.25, 41)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := nw.NewSimpleLabeled(0.5)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := nw.NewScaleFreeLabeled(0.25)
	if err != nil {
		t.Fatal(err)
	}
	ftL, ftN := nw.NewFullTable()
	st, err := nw.NewSingleTree(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []*Labeled{sl, fl, ftL, st} {
		for _, src := range []int{-1, nw.N(), 1 << 20} {
			if _, err := l.Route(src, 0); err == nil {
				t.Errorf("%s: source %d accepted", l.Name(), src)
			}
		}
		for _, dst := range []int{-1, nw.N()} {
			if _, err := l.Route(0, dst); err == nil {
				t.Errorf("%s: label %d accepted", l.Name(), dst)
			}
		}
	}
	sn, err := nw.NewSimpleNameIndependent(0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := nw.NewScaleFreeNameIndependent(0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*NameIndependent{sn, fn, ftN} {
		for _, src := range []int{-1, nw.N()} {
			if _, err := s.Route(src, s.NameOf(0)); err == nil {
				t.Errorf("%s: source %d accepted", s.Name(), src)
			}
		}
		if _, err := s.Route(0, -7); err == nil {
			t.Errorf("%s: negative name accepted", s.Name())
		}
	}
	// Unknown sparse name.
	if _, err := fn.Route(0, 1<<30); err == nil ||
		!strings.Contains(err.Error(), "unknown name") {
		t.Errorf("unknown name: err = %v", err)
	}
}

func TestConstructorValidation(t *testing.T) {
	nw, err := RandomGeometricNetwork(40, 0.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.NewSimpleLabeled(0.9); err == nil {
		t.Error("simple labeled eps=0.9 accepted")
	}
	if _, err := nw.NewScaleFreeLabeled(0.3); err == nil {
		t.Error("scale-free labeled eps=0.3 accepted")
	}
	if _, err := nw.NewSimpleNameIndependent(0.5, nil); err == nil {
		t.Error("simple nameind eps=0.5 accepted")
	}
	if _, err := nw.NewScaleFreeNameIndependent(0.3, nil); err == nil {
		t.Error("scale-free nameind eps=0.3 accepted")
	}
	// Naming with duplicates / negatives / wrong length.
	if _, err := nw.NewSimpleNameIndependent(0.25, make([]int, nw.N())); err == nil {
		t.Error("all-zero naming accepted")
	}
	if _, err := nw.NewSimpleNameIndependent(0.25, []int{1, 2, 3}); err == nil {
		t.Error("short naming accepted")
	}
	neg := make([]int, nw.N())
	for i := range neg {
		neg[i] = i
	}
	neg[3] = -1
	if _, err := nw.NewSimpleNameIndependent(0.25, neg); err == nil {
		t.Error("negative name accepted")
	}
}

func TestSparseNamesHelper(t *testing.T) {
	names, err := SparseNames(100, 1<<40, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, name := range names {
		if name < 0 || seen[name] {
			t.Fatalf("bad sparse name %d", name)
		}
		seen[name] = true
	}
	if _, err := SparseNames(100, 10, 1); err == nil {
		t.Fatal("tiny space accepted")
	}
}

func TestSelfRoutesAcrossSchemes(t *testing.T) {
	nw, err := GridWithHolesNetwork(8, 8, 0.2, 43)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := nw.NewScaleFreeLabeled(0.25)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := nw.NewScaleFreeNameIndependent(0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < nw.N(); v++ {
		r, err := fl.Route(v, fl.Label(v))
		if err != nil || r.Cost != 0 {
			t.Fatalf("labeled self route at %d: %v, cost %v", v, err, r.Cost)
		}
		r, err = fn.Route(v, fn.NameOf(v))
		if err != nil || r.Cost != 0 {
			t.Fatalf("nameind self route at %d: %v, cost %v", v, err, r.Cost)
		}
	}
}
