# Tier-1 verification for this repository: `make check` is what CI and
# every PR must keep green (see ROADMAP.md).

GO ?= go

.PHONY: check fmt vet build test race bench serve

check: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Machine-readable benchmark sweep (writes BENCH_routebench.json).
bench:
	$(GO) run ./cmd/routebench -json BENCH_routebench.json

# Run the serving daemon on a default workload.
serve:
	$(GO) run ./cmd/routed -addr :8080
