# Tier-1 verification for this repository: `make check` is what CI and
# every PR must keep green (see ROADMAP.md).

GO ?= go

.PHONY: check fmt vet build test race bench serve chaos-determinism

# The gate: vet, build and -race cover every package (./...), including
# internal/faultsim and cmd/chaossim; chaos-determinism asserts the
# fault injector's seed guarantee end to end.
check: fmt vet build race chaos-determinism

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Machine-readable benchmark sweeps (write BENCH_*.json).
bench:
	$(GO) run ./cmd/routebench -json BENCH_routebench.json
	$(GO) run ./cmd/chaossim -json BENCH_chaossim.json

# chaossim must be seed-deterministic: the same seed produces a
# byte-identical JSON sweep. Run a small sweep twice and diff.
chaos-determinism:
	@tmp1=$$(mktemp) && tmp2=$$(mktemp) && \
	$(GO) run ./cmd/chaossim -n 48 -pairs 60 -loss 0,0.1 -fail 0,0.1 -seed 11 -json $$tmp1 >/dev/null && \
	$(GO) run ./cmd/chaossim -n 48 -pairs 60 -loss 0,0.1 -fail 0,0.1 -seed 11 -json $$tmp2 >/dev/null && \
	{ cmp -s $$tmp1 $$tmp2 || { echo "chaossim -json is not seed-deterministic"; rm -f $$tmp1 $$tmp2; exit 1; }; } && \
	rm -f $$tmp1 $$tmp2 && echo "chaossim determinism: ok"

# Run the serving daemon on a default workload.
serve:
	$(GO) run ./cmd/routed -addr :8080
