# Tier-1 verification for this repository: `make check` is what CI and
# every PR must keep green (see ROADMAP.md).

GO ?= go

.PHONY: check fmt vet build test race lint fuzz-corpus-lint bench serve profile chaos-determinism routebench-determinism routebench-lazy-determinism distsim-determinism routeload-determinism fuzz-smoke

# The gate: vet, build and -race cover every package (./...), including
# internal/faultsim and cmd/chaossim; lint runs the repo's own static
# analyzers (determinism and concurrency contracts, see DESIGN.md
# §Static analysis); fuzz-corpus-lint requires every fuzz target to
# ship a seed corpus; the determinism targets assert that the parallel
# build pipeline and the fault injector's seed guarantee produce
# byte-identical JSON across runs; fuzz-smoke gives every wire codec a
# short fuzz burst on top of its checked-in seed corpus.
check: fmt vet lint fuzz-corpus-lint build race chaos-determinism routebench-determinism routebench-lazy-determinism distsim-determinism routeload-determinism fuzz-smoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The repo's own static-analysis suite (cmd/determinlint): maprange,
# wallclock, parbody, guardedfield, floateq, hotpath, codecpair,
# goleak, lockorder. Run one analyzer with
# `go run ./cmd/determinlint -rules <name>`. -timing prints per-rule
# wall time and finding counts; -maxwall caps the total analysis time
# so the gate fails loudly if the suite regresses into minutes.
lint:
	$(GO) run ./cmd/determinlint -timing -maxwall 120s

# Every Fuzz* target must check in a seed corpus under
# testdata/fuzz/<FuzzName> in its package: an empty corpus means the
# fuzz-smoke burst explores from nothing and the codec's interesting
# shapes are not pinned in review.
fuzz-corpus-lint:
	@bad=0; \
	for f in $$(grep -rln --include='*_test.go' '^func Fuzz' internal cmd); do \
		dir=$$(dirname $$f); \
		for target in $$(sed -n 's/^func \(Fuzz[A-Za-z0-9_]*\)(.*/\1/p' $$f); do \
			corpus="$$dir/testdata/fuzz/$$target"; \
			if [ ! -d "$$corpus" ] || [ -z "$$(ls -A $$corpus 2>/dev/null)" ]; then \
				echo "$$f: $$target has no seed corpus in $$corpus"; bad=1; \
			fi; \
		done; \
	done; \
	[ $$bad -eq 0 ] && echo "fuzz corpora: ok" || exit 1

# Machine-readable benchmark sweeps (write BENCH_*.json).
bench:
	$(GO) run ./cmd/routebench -json BENCH_routebench.json
	$(GO) run ./cmd/chaossim -json BENCH_chaossim.json
	$(GO) run ./cmd/distsim -json BENCH_distsim.json
	$(GO) run ./cmd/routeload -json -duration 3s -conns 4 -batch 16 > BENCH_routeload.json

# chaossim must be seed-deterministic: the same seed produces a
# byte-identical JSON sweep. Run a small sweep twice and diff.
chaos-determinism:
	@tmp1=$$(mktemp) && tmp2=$$(mktemp) && \
	$(GO) run ./cmd/chaossim -n 48 -pairs 60 -loss 0,0.1 -fail 0,0.1 -seed 11 -json $$tmp1 >/dev/null && \
	$(GO) run ./cmd/chaossim -n 48 -pairs 60 -loss 0,0.1 -fail 0,0.1 -seed 11 -json $$tmp2 >/dev/null && \
	{ cmp -s $$tmp1 $$tmp2 || { echo "chaossim -json is not seed-deterministic"; rm -f $$tmp1 $$tmp2; exit 1; }; } && \
	rm -f $$tmp1 $$tmp2 && echo "chaossim determinism: ok"

# The bench sweep now builds schemes and routes cells in parallel
# (internal/par); with -timing=false the JSON must still be a pure
# function of the flags — including the traced sweep's stretch
# histograms and per-phase decomposition (-trace). Run a small sweep
# twice and diff.
routebench-determinism:
	@tmp1=$$(mktemp) && tmp2=$$(mktemp) && \
	$(GO) run ./cmd/routebench -json $$tmp1 -n 48 -pairs 60 -seed 11 -timing=false -trace >/dev/null && \
	$(GO) run ./cmd/routebench -json $$tmp2 -n 48 -pairs 60 -seed 11 -timing=false -trace >/dev/null && \
	{ cmp -s $$tmp1 $$tmp2 || { echo "routebench -json is not deterministic"; rm -f $$tmp1 $$tmp2; exit 1; }; } && \
	rm -f $$tmp1 $$tmp2 && echo "routebench determinism: ok"

# Same gate on the lazy backend: its answers come from truncated
# Dijkstra rows derived on demand behind a shared LRU, so the JSON
# must be byte-stable across runs regardless of query arrival order,
# cache evictions, or the prefetch workers' schedule. Run twice and
# diff, on the power-law family the backend exists for.
routebench-lazy-determinism:
	@tmp1=$$(mktemp) && tmp2=$$(mktemp) && \
	$(GO) run ./cmd/routebench -json $$tmp1 -backend lazy -graph power-law -n 48 -pairs 60 -seed 11 -timing=false -trace >/dev/null && \
	$(GO) run ./cmd/routebench -json $$tmp2 -backend lazy -graph power-law -n 48 -pairs 60 -seed 11 -timing=false -trace >/dev/null && \
	{ cmp -s $$tmp1 $$tmp2 || { echo "routebench -json -backend=lazy is not deterministic"; rm -f $$tmp1 $$tmp2; exit 1; }; } && \
	rm -f $$tmp1 $$tmp2 && echo "routebench lazy determinism: ok"

# The in-network construction must be seed-deterministic: engine
# delivery is serialized in sender-id order and fault draws are pure
# hashes, so the same flags produce a byte-identical JSON file — at
# every GOMAXPROCS and under loss. Run a small lossy sweep twice and
# diff.
distsim-determinism:
	@tmp1=$$(mktemp) && tmp2=$$(mktemp) && \
	$(GO) run ./cmd/distsim -n 48,96 -pairs 60 -loss 0.1 -seed 11 -json $$tmp1 >/dev/null && \
	$(GO) run ./cmd/distsim -n 48,96 -pairs 60 -loss 0.1 -seed 11 -json $$tmp2 >/dev/null && \
	{ cmp -s $$tmp1 $$tmp2 || { echo "distsim -json is not seed-deterministic"; rm -f $$tmp1 $$tmp2; exit 1; }; } && \
	rm -f $$tmp1 $$tmp2 && echo "distsim determinism: ok"

# routeload's deterministic mode must be a pure function of the flags:
# with -timing=false every connection does fixed work over a static pair
# share and the report carries only counts and route-shape sums, so two
# runs over both protocols are byte-identical. Run twice and diff.
routeload-determinism:
	@tmp1=$$(mktemp) && tmp2=$$(mktemp) && \
	$(GO) run ./cmd/routeload -n 48 -pairs 60 -seed 11 -iters 5 -json -timing=false > $$tmp1 && \
	$(GO) run ./cmd/routeload -n 48 -pairs 60 -seed 11 -iters 5 -json -timing=false > $$tmp2 && \
	{ cmp -s $$tmp1 $$tmp2 || { echo "routeload -json is not deterministic"; rm -f $$tmp1 $$tmp2; exit 1; }; } && \
	rm -f $$tmp1 $$tmp2 && echo "routeload determinism: ok"

# ~10s total: each codec fuzzer runs briefly from its seed corpus
# (testdata/fuzz; regenerate with REGEN_FUZZ_CORPUS=1 go test
# ./internal/... -run TestRegenFuzzCorpus). A fuzzer accepts exactly
# one -fuzz target per invocation, hence the loop.
fuzz-smoke:
	@for spec in \
		"./internal/labeled FuzzDecodeSimpleHeader" \
		"./internal/labeled FuzzDecodeSFHeader" \
		"./internal/nameind FuzzDecodeNIHeader" \
		"./internal/nameind FuzzDecodeSFNIHeader" \
		"./internal/baseline FuzzDecodeDestination" \
		"./internal/baseline FuzzDecodeTreeHeader" \
		"./internal/trace FuzzTraceCodec" \
		"./internal/dist FuzzDecodeMsg" \
		"./internal/frame FuzzDecodeFrame" \
		"./internal/snapshot FuzzDecodeSnapshot" \
		"./internal/metric FuzzLazyBall"; do \
		set -- $$spec; \
		$(GO) test $$1 -run '^$$' -fuzz "^$$2$$$$" -fuzztime 1s >/dev/null || \
			{ echo "fuzz-smoke failed: $$2"; exit 1; }; \
	done && echo "fuzz smoke: ok"

# Capture a CPU profile of a full build+sweep (APSP, all scheme tables,
# routed pairs) and print the hottest frames. Inspect interactively with
# `go tool pprof cpu.prof`.
profile:
	$(GO) run ./cmd/routebench -json /tmp/routebench_profile.json -n 512 -cpuprofile cpu.prof
	$(GO) tool pprof -top -nodecount 15 cpu.prof

# Run the serving daemon on a default workload.
serve:
	$(GO) run ./cmd/routed -addr :8080
