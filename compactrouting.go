// Package compactrouting is a Go implementation of the compact routing
// schemes of Konjevod, Richa and Xia for networks of low doubling
// dimension ("Optimal-stretch name-independent compact routing in
// doubling metrics", PODC 2006, and "Optimal scale-free compact routing
// schemes in doubling networks", SODA 2007).
//
// Given a connected weighted undirected graph, the package compiles
// per-node routing tables of polylogarithmic size and simulates packet
// delivery where every forwarding decision is local — a function of the
// current node's table and the packet header only. Four schemes are
// provided:
//
//   - SimpleLabeled: (1+O(eps))-stretch labeled routing with
//     ceil(log n)-bit labels; table sizes carry a log(Delta) factor.
//   - ScaleFreeLabeled (Theorem 1.2): same guarantees with tables
//     independent of the normalized diameter Delta.
//   - SimpleNameIndependent (Theorem 1.4): (9+O(eps))-stretch routing
//     to arbitrary original node names; log(Delta)-factor tables.
//   - ScaleFreeNameIndependent (Theorem 1.1): same stretch,
//     Delta-independent tables — asymptotically optimal stretch by the
//     paper's Theorem 1.3 lower bound, reproduced in the experiments.
//
// Plus two baselines (FullTable, SingleTree) bracketing the
// space/stretch trade-off. All table, label, and header sizes are
// measured in bits of an actual serialization, so the experiment
// harness (cmd/routebench) can reproduce the paper's tables.
package compactrouting

import (
	"fmt"

	"compactrouting/internal/baseline"
	"compactrouting/internal/core"
	"compactrouting/internal/labeled"
	"compactrouting/internal/nameind"
	"compactrouting/internal/oracle"
	"compactrouting/internal/tz"
)

// Route is the trace of one simulated delivery.
type Route struct {
	// Src and Dst are the endpoints.
	Src, Dst int
	// Path is the physical walk taken (consecutive entries are edges).
	Path []int
	// Cost is the summed edge weight of Path.
	Cost float64
	// MaxHeaderBits is the largest packet header used en route.
	MaxHeaderBits int
	// Fallback reports whether a safety-net path was taken instead of
	// the analyzed one (never happens within the schemes' parameter
	// ranges on doubling networks).
	Fallback bool
}

// Stretch returns Cost relative to the shortest-path distance.
func (r *Route) Stretch(optimal float64) float64 {
	if optimal == 0 {
		return 1
	}
	return r.Cost / optimal
}

func fromCoreRoute(r *core.Route) *Route {
	return &Route{
		Src: r.Src, Dst: r.Dst, Path: r.Path, Cost: r.Cost,
		MaxHeaderBits: r.MaxHeaderBits, Fallback: r.Fallback,
	}
}

// Stats summarizes stretch over a set of routed pairs.
type Stats struct {
	Count     int
	Max       float64
	Mean      float64
	P50       float64
	P95       float64
	P99       float64
	MaxHeader int
	Fallbacks int
}

func fromCoreStats(s core.StretchStats) Stats {
	return Stats{
		Count: s.Count, Max: s.Max, Mean: s.Mean,
		P50: s.P50, P95: s.P95, P99: s.P99,
		MaxHeader: s.MaxHeader, Fallbacks: s.Fallbacks,
	}
}

// TableStats summarizes per-node routing-table sizes.
type TableStats struct {
	MaxBits   int
	MeanBits  float64
	TotalBits int
}

// Labeled is a compiled labeled routing scheme.
type Labeled struct {
	s core.LabeledScheme
	n int
	d core.DistOracle
}

// Name identifies the scheme.
func (l *Labeled) Name() string { return l.s.SchemeName() }

// Label returns v's routing label (an integer in [0, n)).
func (l *Labeled) Label(v int) int { return l.s.LabelOf(v) }

// Route delivers a packet from src to the node labeled label.
func (l *Labeled) Route(src, label int) (*Route, error) {
	r, err := l.s.RouteToLabel(src, label)
	if err != nil {
		return nil, err
	}
	return fromCoreRoute(r), nil
}

// TableBits returns v's routing table size in bits.
func (l *Labeled) TableBits(v int) int { return l.s.TableBits(v) }

// Tables summarizes table sizes over all nodes.
func (l *Labeled) Tables() TableStats {
	st := core.Tables(l.s.TableBits, l.n)
	return TableStats{MaxBits: st.MaxBits, MeanBits: st.MeanBits, TotalBits: st.TotalBits}
}

// Evaluate routes the pairs (or all ordered pairs when pairs is nil)
// and summarizes stretch.
func (l *Labeled) Evaluate(pairs [][2]int) (Stats, error) {
	if pairs == nil {
		pairs = core.AllPairs(l.n)
	}
	st, err := core.EvaluateLabeled(l.s, l.d, pairs)
	if err != nil {
		return Stats{}, err
	}
	return fromCoreStats(st), nil
}

// NameIndependent is a compiled name-independent routing scheme.
type NameIndependent struct {
	s core.NameIndependentScheme
	n int
	d core.DistOracle
}

// Name identifies the scheme.
func (s *NameIndependent) Name() string { return s.s.SchemeName() }

// NameOf returns v's original name.
func (s *NameIndependent) NameOf(v int) int { return s.s.NameOf(v) }

// Route delivers a packet from src to the node with the given original
// name.
func (s *NameIndependent) Route(src, name int) (*Route, error) {
	r, err := s.s.RouteToName(src, name)
	if err != nil {
		return nil, err
	}
	return fromCoreRoute(r), nil
}

// TableBits returns v's routing table size in bits.
func (s *NameIndependent) TableBits(v int) int { return s.s.TableBits(v) }

// Tables summarizes table sizes over all nodes.
func (s *NameIndependent) Tables() TableStats {
	st := core.Tables(s.s.TableBits, s.n)
	return TableStats{MaxBits: st.MaxBits, MeanBits: st.MeanBits, TotalBits: st.TotalBits}
}

// Evaluate routes the pairs (or all ordered pairs when pairs is nil)
// by destination name and summarizes stretch.
func (s *NameIndependent) Evaluate(pairs [][2]int) (Stats, error) {
	if pairs == nil {
		pairs = core.AllPairs(s.n)
	}
	st, err := core.EvaluateNameIndependent(s.s, s.d, pairs)
	if err != nil {
		return Stats{}, err
	}
	return fromCoreStats(st), nil
}

// NewSimpleLabeled compiles the simple (1+O(eps))-stretch labeled
// scheme (the paper's Lemma 3.1 substrate). eps must be in (0, 0.5].
func (nw *Network) NewSimpleLabeled(eps float64) (*Labeled, error) {
	s, err := labeled.NewSimple(nw.g, nw.dist, eps)
	if err != nil {
		return nil, err
	}
	return &Labeled{s: s, n: nw.g.N(), d: nw.dist}, nil
}

// NewScaleFreeLabeled compiles the Theorem 1.2 scale-free labeled
// scheme. eps must be in (0, 0.25].
func (nw *Network) NewScaleFreeLabeled(eps float64) (*Labeled, error) {
	s, err := labeled.NewScaleFree(nw.g, nw.dist, eps)
	if err != nil {
		return nil, err
	}
	return &Labeled{s: s, n: nw.g.N(), d: nw.dist}, nil
}

// NewSimpleNameIndependent compiles the Theorem 1.4 scheme. names
// assigns the arbitrary original node names — any distinct non-negative
// integers, including sparse DHT-style identifiers; pass nil for a
// seeded random permutation. eps must be in (0, 1/3].
func (nw *Network) NewSimpleNameIndependent(eps float64, names []int) (*NameIndependent, error) {
	nm, err := nw.naming(names)
	if err != nil {
		return nil, err
	}
	under, err := labeled.NewSimple(nw.g, nw.dist, eps)
	if err != nil {
		return nil, err
	}
	s, err := nameind.NewSimple(nw.g, nw.dist, nm, under, eps)
	if err != nil {
		return nil, err
	}
	return &NameIndependent{s: s, n: nw.g.N(), d: nw.dist}, nil
}

// NewScaleFreeNameIndependent compiles the Theorem 1.1 scheme — the
// paper's headline result. eps must be in (0, 0.25].
func (nw *Network) NewScaleFreeNameIndependent(eps float64, names []int) (*NameIndependent, error) {
	nm, err := nw.naming(names)
	if err != nil {
		return nil, err
	}
	under, err := labeled.NewScaleFree(nw.g, nw.dist, eps)
	if err != nil {
		return nil, err
	}
	s, err := nameind.NewScaleFree(nw.g, nw.dist, nm, under, eps)
	if err != nil {
		return nil, err
	}
	return &NameIndependent{s: s, n: nw.g.N(), d: nw.dist}, nil
}

func (nw *Network) naming(names []int) (*nameind.Naming, error) {
	if names == nil {
		return nameind.RandomNaming(nw.g.N(), 1), nil
	}
	return nameind.NewNaming(names)
}

// NewFullTable compiles the stretch-1, Theta(n log n)-bits-per-node
// baseline. It implements both models; the returned pair shares state.
func (nw *Network) NewFullTable() (*Labeled, *NameIndependent) {
	s := baseline.NewFullTable(nw.g, nw.dist)
	return &Labeled{s: s, n: nw.g.N(), d: nw.dist},
		&NameIndependent{s: s, n: nw.g.N(), d: nw.dist}
}

// NewSingleTree compiles the single-spanning-tree baseline rooted at
// root: compact tables, unbounded worst-case stretch.
func (nw *Network) NewSingleTree(root int) (*Labeled, error) {
	if root < 0 || root >= nw.g.N() {
		return nil, fmt.Errorf("compactrouting: root %d out of range", root)
	}
	s, err := baseline.NewSingleTree(nw.g, root)
	if err != nil {
		return nil, err
	}
	return &Labeled{s: s, n: nw.g.N(), d: nw.dist}, nil
}

// AllPairs enumerates every ordered pair of distinct nodes — the
// exhaustive evaluation workload.
func AllPairs(n int) [][2]int { return core.AllPairs(n) }

// SamplePairs deterministically samples count ordered pairs of
// distinct nodes.
func SamplePairs(n, count int, seed int64) [][2]int {
	return core.SamplePairs(n, count, seed)
}

// SparseNames draws n distinct names uniformly from [0, space) — the
// DHT setting where node identifiers are hashes much larger than n.
func SparseNames(n int, space, seed int64) ([]int, error) {
	nm, err := nameind.SparseRandomNaming(n, space, seed)
	if err != nil {
		return nil, err
	}
	out := make([]int, n)
	for v := 0; v < n; v++ {
		out[v] = nm.NameOf(v)
	}
	return out, nil
}

// NewThorupZwick compiles the Thorup–Zwick stretch-3 compact routing
// scheme for general graphs (the paper's reference [29], k=2) — the
// general-graph comparator: stretch exactly 3 with ~O(sqrt(n log n))
// tables, versus (1+eps) with polylog tables on doubling networks.
func (nw *Network) NewThorupZwick(sampleFactor float64, seed int64) (*Labeled, error) {
	s, err := tz.New(nw.g, nw.dist, sampleFactor, seed)
	if err != nil {
		return nil, err
	}
	return &Labeled{s: s, n: nw.g.N(), d: nw.dist}, nil
}

// DistanceOracle is a compiled Thorup–Zwick approximate distance
// oracle (stretch 2k-1 on any graph).
type DistanceOracle struct {
	o *oracle.Oracle
	n int
}

// NewDistanceOracle builds a stretch-(2k-1) distance oracle — the
// general-graph space/stretch reference the doubling schemes escape.
func (nw *Network) NewDistanceOracle(k int, seed int64) (*DistanceOracle, error) {
	o, err := oracle.New(nw.dist, k, seed)
	if err != nil {
		return nil, err
	}
	return &DistanceOracle{o: o, n: nw.g.N()}, nil
}

// Query estimates d(u, v) within a factor of 2k-1.
func (d *DistanceOracle) Query(u, v int) (float64, error) { return d.o.Query(u, v) }

// StretchBound returns 2k-1.
func (d *DistanceOracle) StretchBound() float64 { return d.o.StretchBound() }

// TableBits returns v's storage in bits.
func (d *DistanceOracle) TableBits(v int) int { return d.o.TableBits(v) }
