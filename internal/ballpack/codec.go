package ballpack

import (
	"fmt"
	"math"

	"compactrouting/internal/bits"
	"compactrouting/internal/metric"
)

// Encode serializes the packing — every level's greedy ball selection
// plus the per-node covering witnesses — into w, so a restore replays
// neither the greedy election nor the witness search.
func (p *Packing) Encode(w *bits.Writer) {
	w.WriteUvarint(uint64(len(p.Balls)))
	for j := range p.Balls {
		w.WriteUvarint(uint64(len(p.Balls[j])))
		for k := range p.Balls[j] {
			b := &p.Balls[j][k]
			w.WriteUvarint(uint64(b.Center))
			w.WriteBits(math.Float64bits(b.Radius), 64)
			w.WriteUvarint(uint64(len(b.Members)))
			for _, m := range b.Members {
				w.WriteUvarint(uint64(m))
			}
		}
		for _, wi := range p.witness[j] {
			w.WriteUvarint(uint64(wi))
		}
	}
}

// Bits returns the exact encoded size of the packing in bits,
// mirroring Encode term by term.
func (p *Packing) Bits() int {
	n := bits.UvarintLen(uint64(len(p.Balls)))
	for j := range p.Balls {
		n += bits.UvarintLen(uint64(len(p.Balls[j])))
		for k := range p.Balls[j] {
			b := &p.Balls[j][k]
			n += bits.UvarintLen(uint64(b.Center)) + 64 + bits.UvarintLen(uint64(len(b.Members)))
			for _, m := range b.Members {
				n += bits.UvarintLen(uint64(m))
			}
		}
		for _, wi := range p.witness[j] {
			n += bits.UvarintLen(uint64(wi))
		}
	}
	return n
}

// Decode reads a packing written by Encode, rebinding it to the given
// oracle. Malformed input is rejected with an error, never a panic.
func Decode(r *bits.Reader, a metric.Distancer) (*Packing, error) {
	n := a.N()
	nj, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if nj < 1 || nj > 66 {
		return nil, fmt.Errorf("ballpack: decoded %d levels out of range", nj)
	}
	p := &Packing{
		a:       a,
		Balls:   make([][]Ball, nj),
		witness: make([][]int32, nj),
	}
	for j := range p.Balls {
		cnt, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		if cnt > uint64(n) {
			return nil, fmt.Errorf("ballpack: level %d has %d balls, want <= %d", j, cnt, n)
		}
		balls := make([]Ball, cnt)
		for k := range balls {
			c, err := r.ReadUvarint()
			if err != nil {
				return nil, err
			}
			if c >= uint64(n) {
				return nil, fmt.Errorf("ballpack: level %d ball %d center out of range", j, k)
			}
			rb, err := r.ReadBits(64)
			if err != nil {
				return nil, err
			}
			radius := math.Float64frombits(rb)
			if math.IsNaN(radius) || radius < 0 {
				return nil, fmt.Errorf("ballpack: level %d ball %d radius invalid", j, k)
			}
			mc, err := r.ReadUvarint()
			if err != nil {
				return nil, err
			}
			if mc < 1 || mc > uint64(n) {
				return nil, fmt.Errorf("ballpack: level %d ball %d has %d members", j, k, mc)
			}
			members := make([]int32, mc)
			for i := range members {
				m, err := r.ReadUvarint()
				if err != nil {
					return nil, err
				}
				if m >= uint64(n) {
					return nil, fmt.Errorf("ballpack: level %d ball %d member out of range", j, k)
				}
				members[i] = int32(m)
			}
			balls[k] = Ball{Center: int(c), Radius: radius, Members: members}
		}
		p.Balls[j] = balls
		wit := make([]int32, n)
		for u := range wit {
			wi, err := r.ReadUvarint()
			if err != nil {
				return nil, err
			}
			if wi >= uint64(len(balls)) {
				return nil, fmt.Errorf("ballpack: level %d witness of node %d out of range", j, u)
			}
			wit[u] = int32(wi)
		}
		p.witness[j] = wit
	}
	return p, nil
}
