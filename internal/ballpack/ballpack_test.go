package ballpack

import (
	"testing"

	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
)

func geoAPSP(t *testing.T, n int, seed int64) *metric.APSP {
	t.Helper()
	g, _, err := graph.RandomGeometric(n, 0.2, seed)
	if err != nil {
		t.Fatal(err)
	}
	return metric.NewAPSP(g)
}

func TestPackingProperty1(t *testing.T) {
	a := geoAPSP(t, 150, 1)
	p := New(a)
	for j := 0; j <= p.MaxJ(); j++ {
		for _, b := range p.Balls[j] {
			if len(b.Members) < p.Size(j) {
				t.Fatalf("level %d ball at %d has %d members, want >= %d",
					j, b.Center, len(b.Members), p.Size(j))
			}
			// Members must be exactly the metric ball.
			for _, v := range b.Members {
				if a.Dist(b.Center, int(v)) > b.Radius {
					t.Fatalf("member %d outside ball (%d, %v)", v, b.Center, b.Radius)
				}
			}
			if got := a.BallSize(b.Center, b.Radius); got != len(b.Members) {
				t.Fatalf("ball (%d,%v): %d members vs metric ball size %d",
					b.Center, b.Radius, len(b.Members), got)
			}
		}
	}
}

func TestPackingDisjoint(t *testing.T) {
	a := geoAPSP(t, 150, 2)
	p := New(a)
	for j := 0; j <= p.MaxJ(); j++ {
		seen := make(map[int32]int)
		for k, b := range p.Balls[j] {
			for _, v := range b.Members {
				if prev, dup := seen[v]; dup {
					t.Fatalf("level %d: node %d in balls %d and %d", j, v, prev, k)
				}
				seen[v] = k
			}
		}
	}
}

func TestPackingMaximal(t *testing.T) {
	// Maximality: every candidate ball B_u(r_u(j)) intersects some
	// selected ball (or is itself selected).
	a := geoAPSP(t, 120, 3)
	p := New(a)
	for j := 0; j <= p.MaxJ(); j++ {
		covered := make([]bool, a.N())
		for _, b := range p.Balls[j] {
			for _, v := range b.Members {
				covered[v] = true
			}
		}
		for u := 0; u < a.N(); u++ {
			ru := a.RadiusOfSize(u, p.Size(j))
			hit := false
			for _, v := range a.Ball(u, ru) {
				if covered[v] {
					hit = true
					break
				}
			}
			if !hit {
				t.Fatalf("level %d: ball around %d disjoint from packing (not maximal)", j, u)
			}
		}
	}
}

func TestPackingProperty2Witness(t *testing.T) {
	a := geoAPSP(t, 150, 4)
	p := New(a)
	for j := 0; j <= p.MaxJ(); j++ {
		for u := 0; u < a.N(); u++ {
			b := p.WitnessBall(j, u)
			ru := a.RadiusOfSize(u, p.Size(j))
			if b.Radius > ru {
				t.Fatalf("witness of %d at level %d has radius %v > r_u=%v",
					u, j, b.Radius, ru)
			}
			if d := a.Dist(u, b.Center); d > 2*ru {
				t.Fatalf("witness of %d at level %d at distance %v > 2*r_u=%v",
					u, j, d, 2*ru)
			}
		}
	}
}

func TestPackingLevelZeroSingletons(t *testing.T) {
	a := geoAPSP(t, 60, 5)
	p := New(a)
	if len(p.Balls[0]) != a.N() {
		t.Fatalf("level 0 has %d balls, want %d singletons", len(p.Balls[0]), a.N())
	}
	for _, b := range p.Balls[0] {
		if len(b.Members) != 1 || int(b.Members[0]) != b.Center || b.Radius != 0 {
			t.Fatalf("level 0 ball not a singleton: %+v", b)
		}
	}
}

func TestPackingTopLevelCount(t *testing.T) {
	a := geoAPSP(t, 130, 6)
	p := New(a)
	top := p.MaxJ()
	if 1<<top < a.N() || (top > 0 && 1<<(top-1) >= a.N()) {
		t.Fatalf("MaxJ = %d for n = %d, want ceil(log2 n)", top, a.N())
	}
	if len(p.Balls[top]) != 1 {
		t.Fatalf("top level has %d balls, want 1", len(p.Balls[top]))
	}
	// Level j balls have >= Size(j) members and are disjoint, so there
	// are at most n/Size(j) of them.
	for j := 0; j <= top; j++ {
		if len(p.Balls[j]) > a.N()/p.Size(j) {
			t.Fatalf("level %d has %d balls > n/size = %d",
				j, len(p.Balls[j]), a.N()/p.Size(j))
		}
		if len(p.Balls[j]) == 0 {
			t.Fatalf("level %d empty", j)
		}
	}
}

func TestBallContains(t *testing.T) {
	a := geoAPSP(t, 80, 7)
	p := New(a)
	j := p.MaxJ() / 2
	for _, b := range p.Balls[j] {
		member := make(map[int]bool, len(b.Members))
		for _, v := range b.Members {
			member[int(v)] = true
		}
		for v := 0; v < a.N(); v++ {
			if b.Contains(v) != member[v] {
				t.Fatalf("Contains(%d) = %v, want %v", v, b.Contains(v), member[v])
			}
		}
	}
}

func TestPackingGreedyOrder(t *testing.T) {
	// Balls appear in non-decreasing radius order: the greedy invariant
	// Property 2's proof relies on.
	a := geoAPSP(t, 100, 8)
	p := New(a)
	for j := 0; j <= p.MaxJ(); j++ {
		for k := 1; k < len(p.Balls[j]); k++ {
			if p.Balls[j][k].Radius < p.Balls[j][k-1].Radius {
				t.Fatalf("level %d balls out of radius order at %d", j, k)
			}
		}
	}
}

func TestPackingOnGrid(t *testing.T) {
	g, err := graph.Grid(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	a := metric.NewAPSP(g)
	p := New(a)
	if p.MaxJ() != 6 { // n = 64
		t.Fatalf("MaxJ = %d, want 6", p.MaxJ())
	}
	if len(p.Balls[6]) != 1 {
		t.Fatalf("top level should be a single ball, got %d", len(p.Balls[6]))
	}
}
