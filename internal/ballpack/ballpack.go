// Package ballpack implements the Packing Lemma (Lemma 2.3): for each
// size exponent j ∈ [log n], a maximal set ℬ_j of pairwise-disjoint
// balls of size 2^j, greedily selected in order of increasing radius, so
// that every node u has a nearby packing ball — one with center c,
// radius r_c(j) <= r_u(j) and d(u,c) <= 2·r_u(j) (Property 2).
//
// Ball packings are what make the paper's schemes scale-free: the
// r-net hierarchy has O(log Δ) levels, but the packing hierarchy has
// only O(log n) levels, and it is indexed by how many nodes a ball
// holds rather than how wide it is.
//
// This package is bound by the repo's deterministic ruleset: its
// outputs must be a pure function of explicit seeds (determinlint
// enforces the source-level contract; see DESIGN.md §Static analysis).
//
//determinlint:deterministic
package ballpack

import (
	"sort"

	"compactrouting/internal/metric"
)

// Ball is one packing ball: the metric ball of radius Radius around
// Center. Its size is at least 2^j (exactly 2^j unless distance ties
// make the metric ball strictly larger than the canonical size-2^j
// ball; the paper assumes ties away).
type Ball struct {
	Center  int
	Radius  float64
	Members []int32 // nodes of B_Center(Radius), ascending id
}

// Packing holds ℬ_j for every j ∈ [log n] together with each node's
// covering witness.
type Packing struct {
	a metric.Distancer
	// Balls[j] is ℬ_j, in greedy selection order (increasing radius).
	Balls [][]Ball
	// witness[j][u] indexes into Balls[j]: the ball whose center c has
	// r_c(j) <= r_u(j) and d(u,c) <= 2 r_u(j), minimizing d(u,c) (ties
	// by center id) — the ball Property 2 promises.
	witness [][]int32
}

// New builds the packing for all levels j = 0..ceil(log2 n). Level
// sizes are min(2^j, n), so the top level is a single ball covering the
// whole graph — the safety net the schemes' lookups bottom out in.
func New(a metric.Distancer) *Packing {
	n := a.N()
	maxJ := 0
	for 1<<maxJ < n {
		maxJ++
	}
	p := &Packing{
		a:       a,
		Balls:   make([][]Ball, maxJ+1),
		witness: make([][]int32, maxJ+1),
	}
	for j := 0; j <= maxJ; j++ {
		p.Balls[j] = buildLevel(a, p.Size(j))
		p.witness[j] = buildWitnesses(a, p.Balls[j], p.Size(j))
	}
	return p
}

// MaxJ returns the largest level index (ceil(log2 n)).
func (p *Packing) MaxJ() int { return len(p.Balls) - 1 }

// Size returns the ball size of level j, min(2^j, n), clamping j to the
// available range.
func (p *Packing) Size(j int) int {
	if j < 0 {
		return 1
	}
	n := p.a.N()
	if j >= 63 || 1<<j > n {
		return n
	}
	return 1 << j
}

// Witness returns the index within Balls[j] of node u's covering ball
// (Property 2 of Lemma 2.3).
func (p *Packing) Witness(j, u int) int { return int(p.witness[j][u]) }

// WitnessBall returns node u's covering ball at level j.
func (p *Packing) WitnessBall(j, u int) *Ball {
	return &p.Balls[j][p.witness[j][u]]
}

func buildLevel(a metric.Distancer, size int) []Ball {
	return BuildLevelOrdered(a, size, true)
}

// BuildLevelOrdered builds a maximal set of disjoint size-|size| balls,
// selecting candidates either in increasing radius — the order Lemma
// 2.3's Property 2 depends on — or in increasing center id (the
// ablation baseline, which loses the witness guarantee).
func BuildLevelOrdered(a metric.Distancer, size int, byRadius bool) []Ball {
	n := a.N()
	type cand struct {
		center int
		radius float64
	}
	cands := make([]cand, n)
	for u := 0; u < n; u++ {
		cands[u] = cand{center: u, radius: a.RadiusOfSize(u, size)}
	}
	if byRadius {
		sort.Slice(cands, func(i, j int) bool {
			//determinlint:allow floateq deliberate exact tie-break: equal radii come bit-identical from the same oracle matrix, and ties fall through to center id
			if cands[i].radius != cands[j].radius {
				return cands[i].radius < cands[j].radius
			}
			return cands[i].center < cands[j].center
		})
	}
	covered := make([]bool, n)
	var out []Ball
	members := make([]int, 0, size)
	for _, c := range cands {
		members = members[:0]
		ok := true
		for _, v := range a.Ball(c.center, c.radius) {
			if covered[v] {
				ok = false
				break
			}
			members = append(members, v)
		}
		if !ok {
			continue
		}
		b := Ball{Center: c.center, Radius: c.radius, Members: make([]int32, len(members))}
		for i, v := range members {
			covered[v] = true
			b.Members[i] = int32(v)
		}
		sort.Slice(b.Members, func(i, j int) bool { return b.Members[i] < b.Members[j] })
		out = append(out, b)
	}
	return out
}

func buildWitnesses(a metric.Distancer, balls []Ball, size int) []int32 {
	n := a.N()
	w := make([]int32, n)
	for u := 0; u < n; u++ {
		ru := a.RadiusOfSize(u, size)
		best := int32(-1)
		bestD := 0.0
		for k := range balls {
			b := &balls[k]
			if b.Radius > ru {
				continue
			}
			d := a.Dist(u, b.Center)
			if d > 2*ru {
				continue
			}
			//determinlint:allow floateq deliberate exact tie-break: equal distances come bit-identical from the same oracle matrix, and ties resolve by least center id
			if best < 0 || d < bestD || (d == bestD && b.Center < balls[best].Center) {
				best = int32(k)
				bestD = d
			}
		}
		if best < 0 {
			// Lemma 2.3 guarantees a witness exists; reaching this
			// would mean the greedy construction is broken.
			panic("ballpack: no covering witness — packing construction violated Lemma 2.3")
		}
		w[u] = best
	}
	return w
}

// Contains reports whether node v is a member of the ball.
func (b *Ball) Contains(v int) bool {
	i := sort.Search(len(b.Members), func(i int) bool { return b.Members[i] >= int32(v) })
	return i < len(b.Members) && b.Members[i] == int32(v)
}

// WitnessQuality evaluates Lemma 2.3's Property 2 against an arbitrary
// ball set: the fraction of nodes u that have some ball with radius
// <= r_u and center within 2*r_u, and the mean and max normalized
// witness distance d(u, c)/(2 r_u) among nodes that have one (nodes
// with r_u = 0 count as satisfied at distance 0). Used by the packing-
// order ablation: radius-order selection guarantees okFrac == 1.
func WitnessQuality(a metric.Distancer, balls []Ball, size int) (okFrac, meanRatio, maxRatio float64) {
	n := a.N()
	okCount := 0
	for u := 0; u < n; u++ {
		ru := a.RadiusOfSize(u, size)
		best := -1.0
		for k := range balls {
			b := &balls[k]
			if b.Radius > ru {
				continue
			}
			if d := a.Dist(u, b.Center); d <= 2*ru {
				ratio := 0.0
				if ru > 0 {
					ratio = d / (2 * ru)
				}
				if best < 0 || ratio < best {
					best = ratio
				}
			}
		}
		if best >= 0 {
			okCount++
			meanRatio += best
			if best > maxRatio {
				maxRatio = best
			}
		}
	}
	if okCount > 0 {
		meanRatio /= float64(okCount)
	}
	return float64(okCount) / float64(n), meanRatio, maxRatio
}
