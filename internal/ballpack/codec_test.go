package ballpack

import (
	"bytes"
	"testing"

	"compactrouting/internal/bits"
)

// TestCodecRoundTrip pins the packing codec: Encode → Decode → Encode
// must reproduce the stream bit for bit, and Bits must predict the
// encoded length exactly.
func TestCodecRoundTrip(t *testing.T) {
	a := geoAPSP(t, 120, 4)
	p := New(a)
	var w bits.Writer
	p.Encode(&w)
	if w.Len() != p.Bits() {
		t.Fatalf("encoded %d bits, Bits() says %d", w.Len(), p.Bits())
	}
	r := bits.NewReader(w.Bytes(), w.Len())
	p2, err := Decode(r, a)
	if err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bits left after decode", r.Remaining())
	}
	var w2 bits.Writer
	p2.Encode(&w2)
	if w2.Len() != w.Len() || !bytes.Equal(w2.Bytes(), w.Bytes()) {
		t.Fatalf("re-encode differs: %d bits vs %d", w2.Len(), w.Len())
	}
}
