package ballpack

import (
	"testing"
	"testing/quick"

	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
)

// TestQuickPackingInvariants: over random graphs and levels, packing
// balls are disjoint, at least size-many strong, and every node has a
// Property 2 witness.
func TestQuickPackingInvariants(t *testing.T) {
	f := func(seed int64, jRaw uint8) bool {
		g, _, err := graph.RandomGeometric(40+int(uint16(seed)%60), 0.3, seed)
		if err != nil {
			return true
		}
		a := metric.NewAPSP(g)
		p := New(a)
		j := int(jRaw) % (p.MaxJ() + 1)
		size := p.Size(j)
		seen := map[int32]bool{}
		for _, b := range p.Balls[j] {
			if len(b.Members) < size {
				return false
			}
			for _, v := range b.Members {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		for u := 0; u < a.N(); u++ {
			b := p.WitnessBall(j, u)
			ru := a.RadiusOfSize(u, size)
			if b.Radius > ru || a.Dist(u, b.Center) > 2*ru {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRadiusOrderAlwaysCovers: the radius-greedy selection (the
// lemma's order) always yields full Property 2 coverage, on any graph.
func TestQuickRadiusOrderAlwaysCovers(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		g, _, err := graph.RandomGeometric(40+int(uint16(seed)%40), 0.3, seed)
		if err != nil {
			return true
		}
		a := metric.NewAPSP(g)
		size := 1 + int(sizeRaw)%a.N()
		balls := BuildLevelOrdered(a, size, true)
		ok, _, maxRatio := WitnessQuality(a, balls, size)
		return ok == 1 && maxRatio <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
