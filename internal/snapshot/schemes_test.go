package snapshot_test

import (
	"bytes"
	"testing"

	"compactrouting/internal/bits"
	"compactrouting/internal/graph"
	"compactrouting/internal/labeled"
	"compactrouting/internal/metric"
	"compactrouting/internal/snapshot"
)

// TestEncodeSchemeRoundTrip pins the per-scheme blob codec directly
// (the engine round-trip tests cover it end to end): EncodeScheme →
// DecodeScheme → EncodeScheme must reproduce the blob bit for bit.
func TestEncodeSchemeRoundTrip(t *testing.T) {
	g, _, err := graph.RandomGeometric(60, 0.25, 11)
	if err != nil {
		t.Fatal(err)
	}
	a := metric.NewAPSP(g)
	s, err := labeled.NewSimple(g, a, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var w bits.Writer
	if err := snapshot.EncodeScheme(&w, "simple-labeled", s); err != nil {
		t.Fatal(err)
	}
	r := bits.NewReader(w.Bytes(), w.Len())
	impl, err := snapshot.DecodeScheme(r, "simple-labeled", g, a)
	if err != nil {
		t.Fatal(err)
	}
	restored, ok := impl.(*labeled.Simple)
	if !ok {
		t.Fatalf("decoded %T, want *labeled.Simple", impl)
	}
	var w2 bits.Writer
	if err := snapshot.EncodeScheme(&w2, "simple-labeled", restored); err != nil {
		t.Fatal(err)
	}
	if w2.Len() != w.Len() || !bytes.Equal(w2.Bytes(), w.Bytes()) {
		t.Fatalf("re-encode differs: %d bits vs %d", w2.Len(), w.Len())
	}
}

// TestEncodeSchemeRejectsBadInput pins the adapter's error paths:
// unknown scheme names and mismatched implementations must fail, not
// write a half-formed blob.
func TestEncodeSchemeRejectsBadInput(t *testing.T) {
	var w bits.Writer
	if err := snapshot.EncodeScheme(&w, "no-such-scheme", nil); err == nil {
		t.Fatal("unknown scheme name accepted")
	}
	if err := snapshot.EncodeScheme(&w, "simple-labeled", 42); err == nil {
		t.Fatal("mismatched implementation accepted")
	}
	if w.Len() != 0 {
		t.Fatalf("failed encodes wrote %d bits", w.Len())
	}
}
