package snapshot

import (
	"fmt"

	"compactrouting/internal/baseline"
	"compactrouting/internal/bits"
	"compactrouting/internal/graph"
	"compactrouting/internal/labeled"
	"compactrouting/internal/metric"
	"compactrouting/internal/nameind"
)

// EncodeScheme serializes one compiled scheme under its engine name
// (internal/server's SchemeNames). Name-independent schemes embed
// their underlying labeled scheme first, so one blob restores the
// whole stack.
func EncodeScheme(w *bits.Writer, name string, impl any) error {
	switch name {
	case "simple-labeled":
		s, ok := impl.(*labeled.Simple)
		if !ok {
			return badImpl(name, impl)
		}
		s.EncodeSnapshot(w)
	case "scale-free-labeled":
		s, ok := impl.(*labeled.ScaleFree)
		if !ok {
			return badImpl(name, impl)
		}
		s.EncodeSnapshot(w)
	case "name-independent":
		s, ok := impl.(*nameind.Simple)
		if !ok {
			return badImpl(name, impl)
		}
		under, ok := s.UnderlyingScheme().(*labeled.Simple)
		if !ok {
			return fmt.Errorf("snapshot: %s built on %T, want *labeled.Simple", name, s.UnderlyingScheme())
		}
		under.EncodeSnapshot(w)
		s.EncodeSnapshot(w)
	case "scale-free-name-independent":
		s, ok := impl.(*nameind.ScaleFree)
		if !ok {
			return badImpl(name, impl)
		}
		under, ok := s.UnderlyingScheme().(*labeled.ScaleFree)
		if !ok {
			return fmt.Errorf("snapshot: %s built on %T, want *labeled.ScaleFree", name, s.UnderlyingScheme())
		}
		under.EncodeSnapshot(w)
		s.EncodeSnapshot(w)
	case "full-table":
		s, ok := impl.(*baseline.FullTable)
		if !ok {
			return badImpl(name, impl)
		}
		s.EncodeSnapshot(w)
	case "single-tree":
		s, ok := impl.(*baseline.SingleTree)
		if !ok {
			return badImpl(name, impl)
		}
		s.EncodeSnapshot(w)
	default:
		return fmt.Errorf("snapshot: unknown scheme %q", name)
	}
	return nil
}

func badImpl(name string, impl any) error {
	return fmt.Errorf("snapshot: scheme %q has implementation %T", name, impl)
}

// DecodeScheme restores one scheme from its blob stream against an
// already-rebuilt graph and oracle. No counted scheme constructor runs:
// every path goes through the Restore* codecs.
func DecodeScheme(r *bits.Reader, name string, g *graph.Graph, a metric.Distancer) (any, error) {
	switch name {
	case "simple-labeled":
		return labeled.RestoreSimple(r, g, a)
	case "scale-free-labeled":
		return labeled.RestoreScaleFree(r, g, a)
	case "name-independent":
		under, err := labeled.RestoreSimple(r, g, a)
		if err != nil {
			return nil, err
		}
		return nameind.RestoreSimple(r, g, a, under)
	case "scale-free-name-independent":
		under, err := labeled.RestoreScaleFree(r, g, a)
		if err != nil {
			return nil, err
		}
		return nameind.RestoreScaleFree(r, g, a, under)
	case "full-table":
		return baseline.RestoreFullTable(g, a), nil
	case "single-tree":
		return baseline.RestoreSingleTree(r, g)
	default:
		return nil, fmt.Errorf("snapshot: unknown scheme %q", name)
	}
}
