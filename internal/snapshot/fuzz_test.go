package snapshot_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"compactrouting"
	"compactrouting/internal/bits"
	"compactrouting/internal/snapshot"
)

// corpusSnapshots: one full six-scheme engine snapshot plus minimal
// hand-built files (no schemes, single node) to seed the boundary paths.
func corpusSnapshots(t testing.TB) [][]byte {
	full := encodedSnapshot(t)
	single := &snapshot.File{
		Seed: 1, Eps: 0.25, N: 1,
		Dist: []float64{0}, NextHop: []int32{-1},
	}
	sd, err := single.Encode()
	if err != nil {
		t.Fatal(err)
	}
	pair := &snapshot.File{
		Seed: 2, Eps: 0.5, Generation: 3, N: 2,
		Edges:   []compactrouting.EdgeSpec{{U: 0, V: 1, Weight: 1.5}},
		Dist:    []float64{0, 1.5, 1.5, 0},
		NextHop: []int32{-1, 1, 0, -1},
	}
	pd, err := pair.Encode()
	if err != nil {
		t.Fatal(err)
	}
	lazy := &snapshot.File{
		Seed: 2, Eps: 0.5, Backend: "lazy", Generation: 3, N: 2,
		Edges: []compactrouting.EdgeSpec{{U: 0, V: 1, Weight: 1.5}},
	}
	ld, err := lazy.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return [][]byte{full, sd, pd, ld}
}

// TestRegenFuzzCorpus rewrites the checked-in seed corpus. Regenerate:
//
//	REGEN_FUZZ_CORPUS=1 go test ./internal/... -run TestRegenFuzzCorpus
func TestRegenFuzzCorpus(t *testing.T) {
	if os.Getenv("REGEN_FUZZ_CORPUS") == "" {
		t.Skip("set REGEN_FUZZ_CORPUS=1 to rewrite testdata/fuzz seed corpora")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeSnapshot")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, data := range corpusSnapshots(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%03d", i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzDecodeSnapshot: arbitrary bytes either fail Decode with an error
// (never a panic) or yield a file that re-encodes byte-identically and
// survives the full restore path — network rebuild plus every scheme
// blob through DecodeScheme — without panicking.
func FuzzDecodeSnapshot(f *testing.F) {
	for _, data := range corpusSnapshots(f) {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := snapshot.Decode(data)
		if err != nil {
			return
		}
		out, err := file.Encode()
		if err != nil {
			t.Fatalf("decoded file fails to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("decode→encode not a fixpoint: %d bytes in, %d out", len(data), len(out))
		}
		nw, err := file.Network()
		if err != nil {
			return
		}
		for _, sb := range file.Schemes {
			r := bits.NewReader(sb.Data, sb.Bits)
			if _, err := snapshot.DecodeScheme(r, sb.Name, nw.Graph(), nw.Distancer()); err != nil {
				continue
			}
		}
	})
}
