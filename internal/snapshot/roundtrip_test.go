package snapshot_test

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"compactrouting"
	"compactrouting/internal/server"
	"compactrouting/internal/snapshot"
)

// buildEngine compiles the given schemes on a small deterministic grid.
func buildEngine(t testing.TB, schemes []string) *server.Engine {
	t.Helper()
	eng, err := server.New(server.Config{
		Build: func(int64) (*compactrouting.Network, error) {
			return compactrouting.GridNetwork(5, 5)
		},
		Seed:    3,
		Eps:     0.25,
		Schemes: schemes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// encodedSnapshot builds an engine over all six schemes and returns its
// serialized snapshot.
func encodedSnapshot(t testing.TB) []byte {
	t.Helper()
	eng := buildEngine(t, server.SchemeNames)
	f, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	data, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRoundTripAllSchemes is the save→load byte-equality check for all
// six scheme adapters: a restored engine must re-serialize to the exact
// bytes it was loaded from — same tables, bit for bit.
func TestRoundTripAllSchemes(t *testing.T) {
	data := encodedSnapshot(t)
	f, err := snapshot.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Schemes) != len(server.SchemeNames) {
		t.Fatalf("decoded %d schemes, want %d", len(f.Schemes), len(server.SchemeNames))
	}
	eng2, err := server.NewFromSnapshot(server.Config{}, f)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := eng2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	data2, err := f2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("restored engine re-encodes to %d bytes != original %d bytes", len(data2), len(data))
	}
}

// TestRestoredEngineAnswersEqually pins query equivalence: the restored
// engine must serve byte-for-byte the same route answers as the engine
// that built the tables.
func TestRestoredEngineAnswersEqually(t *testing.T) {
	eng := buildEngine(t, server.SchemeNames)
	f, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := server.NewFromSnapshot(server.Config{}, f)
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]int{{0, 24}, {3, 17}, {12, 12}, {24, 1}, {7, 20}}
	for _, name := range server.SchemeNames {
		for _, p := range pairs {
			want, err1 := eng.Route(name, p[0], p[1])
			got, err2 := eng2.Route(name, p[0], p[1])
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s %v: errors diverge: %v vs %v", name, p, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if want.Cost != got.Cost || want.Hops != got.Hops || want.MaxHeaderBits != got.MaxHeaderBits {
				t.Fatalf("%s %v: original %+v, restored %+v", name, p, want, got)
			}
		}
	}
}

func TestSaveLoad(t *testing.T) {
	eng := buildEngine(t, []string{"full-table", "simple-labeled"})
	f, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tables.snap")
	if err := snapshot.Save(path, f); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	got, err := snapshot.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := f.Encode()
	have, _ := got.Encode()
	if !bytes.Equal(want, have) {
		t.Fatal("loaded snapshot re-encodes differently")
	}
}

// refix recomputes the trailing checksum after a mutation, so the test
// reaches the validation layer behind the CRC.
func refix(data []byte) []byte {
	binary.BigEndian.PutUint32(data[len(data)-4:],
		crc32.ChecksumIEEE(data[:len(data)-4]))
	return data
}

func TestDecodeRejectsTruncation(t *testing.T) {
	data := encodedSnapshot(t)
	for _, cut := range []int{0, 3, 5, 9, len(data) / 2, len(data) - 1} {
		if _, err := snapshot.Decode(data[:cut]); err == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", cut, len(data))
		}
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	data := encodedSnapshot(t)
	data[0] = 'X'
	if _, err := snapshot.Decode(refix(data)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("got %v, want bad-magic error", err)
	}
}

func TestDecodeRejectsVersionSkew(t *testing.T) {
	data := encodedSnapshot(t)
	binary.BigEndian.PutUint16(data[4:6], snapshot.Version+1)
	_, err := snapshot.Decode(refix(data))
	if err == nil || !strings.Contains(err.Error(), "format version") {
		t.Fatalf("got %v, want explicit version-skew error", err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	data := encodedSnapshot(t)
	data[len(data)/2] ^= 0x40
	_, err := snapshot.Decode(data)
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("got %v, want checksum error", err)
	}
}

func TestLoadRejectsCorruptFile(t *testing.T) {
	data := encodedSnapshot(t)
	data[len(data)/3] ^= 0x01
	path := filepath.Join(t.TempDir(), "corrupt.snap")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.Load(path); err == nil {
		t.Fatal("corrupt snapshot loaded")
	}
}
