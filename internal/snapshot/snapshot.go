// Package snapshot is the versioned on-disk table-snapshot format of
// the serving plane: everything a routed process needs to answer its
// first query — graph, metric oracle, and every compiled scheme's
// tables — without invoking a single scheme constructor.
//
// File layout:
//
//	offset  size  field
//	0       4     magic "CRSN"
//	4       2     format version, big endian (Version)
//	6       ...   payload (one internal/bits stream, below)
//	end-4   4     CRC32-IEEE over everything before it, big endian
//
// Payload stream: seed (64b) · eps (float64 bits) · backend byte
// (0 = dense, 1 = lazy) · generation (uvarint) · n (uvarint) · edge
// count + (u, v, weight) triples · on the dense backend only, the APSP
// dist matrix (n² float64s) and next-hop matrix (n² uvarints, -1
// stored as 0) · scheme count + per scheme its name and one
// length-prefixed blob holding the scheme codec output (the labeled /
// nameind / baseline EncodeSnapshot wire formats). Lazy-backend
// snapshots carry no matrices: the oracle is rebuilt as an empty
// bounded row cache over the decoded graph, so the scheme tables still
// restore without a single constructor run (the tables are in the
// blobs, not the oracle).
//
// Loads reject version skew at the 2-byte version field (never by
// misparsing), corruption at the checksum, and truncation at every
// length-checked read; FuzzDecodeSnapshot drives Decode plus the full
// scheme-restore path on arbitrary bytes.
//
// This package is bound by the repo's deterministic ruleset: its
// outputs must be a pure function of explicit inputs (determinlint
// enforces the source-level contract; see DESIGN.md §Static analysis).
//
//determinlint:deterministic
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"compactrouting"
	"compactrouting/internal/bits"
	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
)

// Format constants.
const (
	// Version is the snapshot format version this build reads and
	// writes. Any other on-disk version is rejected with ErrVersionSkew.
	// Version 2 added the backend byte and made the matrices
	// dense-backend-only.
	Version = 2
	// maxN bounds the decoded network size (the payload length checks
	// below square it, so the bound also keeps the arithmetic far from
	// overflow).
	maxN = 1 << 20
	// maxSchemes / maxNameLen bound the scheme directory.
	maxSchemes  = 64
	maxNameLen  = 128
	headerBytes = 6
	crcBytes    = 4
)

var magic = [4]byte{'C', 'R', 'S', 'N'}

// SchemeBlob is one scheme's serialized tables: the engine's scheme
// name plus the raw EncodeSnapshot bit stream.
type SchemeBlob struct {
	Name string
	Data []byte
	Bits int
}

// File is a decoded snapshot.
type File struct {
	Seed int64
	Eps  float64
	// Backend is the distance backend the engine was serving on:
	// "dense" (matrices present) or "lazy" (no matrices; the oracle is
	// rebuilt as an empty row cache). Empty encodes as dense.
	Backend    string
	Generation uint64
	N          int
	Edges      []compactrouting.EdgeSpec
	// Dist and NextHop are the dense backend's matrices; nil on lazy.
	Dist    []float64
	NextHop []int32
	Schemes []SchemeBlob
}

// Encode serializes the snapshot to its on-disk byte form, checksum
// included.
func (f *File) Encode() ([]byte, error) {
	if f.N < 1 || f.N > maxN {
		return nil, fmt.Errorf("snapshot: n=%d out of [1, %d]", f.N, maxN)
	}
	var backend byte
	switch f.Backend {
	case "", "dense":
		if len(f.Dist) != f.N*f.N || len(f.NextHop) != f.N*f.N {
			return nil, fmt.Errorf("snapshot: matrices sized %d/%d, want %d", len(f.Dist), len(f.NextHop), f.N*f.N)
		}
	case "lazy":
		backend = 1
		if len(f.Dist) != 0 || len(f.NextHop) != 0 {
			return nil, fmt.Errorf("snapshot: lazy backend carries no matrices (got %d/%d entries)", len(f.Dist), len(f.NextHop))
		}
	default:
		return nil, fmt.Errorf("snapshot: unknown backend %q", f.Backend)
	}
	if len(f.Schemes) > maxSchemes {
		return nil, fmt.Errorf("snapshot: %d schemes exceed cap %d", len(f.Schemes), maxSchemes)
	}
	w := &bits.Writer{}
	w.WriteBits(uint64(f.Seed), 64)
	w.WriteBits(math.Float64bits(f.Eps), 64)
	w.WriteBits(uint64(backend), 8)
	w.WriteUvarint(f.Generation)
	w.WriteUvarint(uint64(f.N))
	w.WriteUvarint(uint64(len(f.Edges)))
	for _, e := range f.Edges {
		w.WriteUvarint(uint64(e.U))
		w.WriteUvarint(uint64(e.V))
		w.WriteBits(math.Float64bits(e.Weight), 64)
	}
	if backend == 0 {
		for _, d := range f.Dist {
			w.WriteBits(math.Float64bits(d), 64)
		}
		for _, h := range f.NextHop {
			w.WriteUvarint(uint64(h + 1))
		}
	}
	w.WriteUvarint(uint64(len(f.Schemes)))
	for _, sb := range f.Schemes {
		if len(sb.Name) == 0 || len(sb.Name) > maxNameLen {
			return nil, fmt.Errorf("snapshot: bad scheme name %q", sb.Name)
		}
		w.WriteUvarint(uint64(len(sb.Name)))
		for i := 0; i < len(sb.Name); i++ {
			w.WriteBits(uint64(sb.Name[i]), 8)
		}
		w.WriteBlob(sb.Data, sb.Bits)
	}
	body := w.Bytes()
	out := make([]byte, 0, headerBytes+len(body)+crcBytes)
	out = append(out, magic[:]...)
	out = binary.BigEndian.AppendUint16(out, Version)
	out = append(out, body...)
	return binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(out)), nil
}

// Decode parses and validates an on-disk snapshot: magic, version,
// checksum, then every length- and range-checked payload field.
func Decode(data []byte) (*File, error) {
	if len(data) < headerBytes+crcBytes {
		return nil, fmt.Errorf("snapshot: truncated file: %d bytes", len(data))
	}
	if [4]byte(data[:4]) != magic {
		return nil, fmt.Errorf("snapshot: bad magic %q", data[:4])
	}
	if v := binary.BigEndian.Uint16(data[4:6]); v != Version {
		return nil, fmt.Errorf("snapshot: format version %d, this build reads %d: rebuild the snapshot", v, Version)
	}
	stored := binary.BigEndian.Uint32(data[len(data)-crcBytes:])
	if got := crc32.ChecksumIEEE(data[:len(data)-crcBytes]); got != stored {
		return nil, fmt.Errorf("snapshot: checksum mismatch (file %08x, computed %08x): corrupt snapshot", stored, got)
	}
	payload := data[headerBytes : len(data)-crcBytes]
	r := bits.NewReader(payload, 8*len(payload))
	f := &File{}
	seed, err := r.ReadBits(64)
	if err != nil {
		return nil, err
	}
	f.Seed = int64(seed)
	eb, err := r.ReadBits(64)
	if err != nil {
		return nil, err
	}
	f.Eps = math.Float64frombits(eb)
	bk, err := r.ReadBits(8)
	if err != nil {
		return nil, err
	}
	switch bk {
	case 0:
		f.Backend = "dense"
	case 1:
		f.Backend = "lazy"
	default:
		return nil, fmt.Errorf("snapshot: unknown backend byte %d", bk)
	}
	if f.Generation, err = r.ReadUvarint(); err != nil {
		return nil, err
	}
	n, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if n < 1 || n > maxN {
		return nil, fmt.Errorf("snapshot: n=%d out of [1, %d]", n, maxN)
	}
	f.N = int(n)
	m, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	// An edge costs at least two 8-bit uvarints plus a 64-bit weight.
	// (Divide, never multiply: a hostile count must not overflow.)
	if m > uint64(r.Remaining())/80 {
		return nil, fmt.Errorf("snapshot: edge count %d exceeds payload", m)
	}
	f.Edges = make([]compactrouting.EdgeSpec, m)
	for i := range f.Edges {
		u, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		v, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		if u >= n || v >= n {
			return nil, fmt.Errorf("snapshot: edge %d endpoint out of range", i)
		}
		wb, err := r.ReadBits(64)
		if err != nil {
			return nil, err
		}
		f.Edges[i] = compactrouting.EdgeSpec{U: int(u), V: int(v), Weight: math.Float64frombits(wb)}
	}
	if bk == 0 {
		if n*n*64 > uint64(r.Remaining()) {
			return nil, fmt.Errorf("snapshot: dist matrix exceeds payload")
		}
		f.Dist = make([]float64, n*n)
		for i := range f.Dist {
			db, err := r.ReadBits(64)
			if err != nil {
				return nil, err
			}
			f.Dist[i] = math.Float64frombits(db)
		}
		f.NextHop = make([]int32, n*n)
		for i := range f.NextHop {
			h, err := r.ReadUvarint()
			if err != nil {
				return nil, err
			}
			if h > n {
				return nil, fmt.Errorf("snapshot: next hop %d out of range", h)
			}
			f.NextHop[i] = int32(h) - 1
		}
	}
	sc, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if sc > maxSchemes {
		return nil, fmt.Errorf("snapshot: %d schemes exceed cap %d", sc, maxSchemes)
	}
	f.Schemes = make([]SchemeBlob, 0, sc)
	seen := make(map[string]bool, sc)
	for i := uint64(0); i < sc; i++ {
		nl, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		if nl == 0 || nl > maxNameLen || nl*8 > uint64(r.Remaining()) {
			return nil, fmt.Errorf("snapshot: bad scheme name length %d", nl)
		}
		nameBuf := make([]byte, nl)
		for j := range nameBuf {
			b, err := r.ReadBits(8)
			if err != nil {
				return nil, err
			}
			nameBuf[j] = byte(b)
		}
		name := string(nameBuf)
		if seen[name] {
			return nil, fmt.Errorf("snapshot: duplicate scheme %q", name)
		}
		seen[name] = true
		blob, nbit, err := r.ReadBlob()
		if err != nil {
			return nil, fmt.Errorf("snapshot: scheme %q blob: %w", name, err)
		}
		f.Schemes = append(f.Schemes, SchemeBlob{Name: name, Data: blob, Bits: nbit})
	}
	if rem := r.Remaining(); rem >= 8 {
		return nil, fmt.Errorf("snapshot: %d trailing payload bits", rem)
	}
	for r.Remaining() > 0 {
		b, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		if b {
			return nil, fmt.Errorf("snapshot: non-zero padding bit")
		}
	}
	return f, nil
}

// Save writes the snapshot to path (atomically via a sibling temp file,
// so a crash mid-write never leaves a half snapshot behind).
func Save(path string, f *File) error {
	data, err := f.Encode()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads and decodes a snapshot from path.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %s: %w", path, err)
	}
	return f, nil
}

// Network rebuilds the served network from the snapshot: the graph via
// the validating Builder, and the metric oracle without a Dijkstra
// re-run — RestoreAPSP over the stored matrices on the dense backend,
// or a fresh empty row cache on the lazy backend (whose whole point is
// that the oracle holds no precomputed state worth serializing).
func (f *File) Network() (*compactrouting.Network, error) {
	b := graph.NewBuilder(f.N)
	for _, e := range f.Edges {
		if err := b.AddEdge(e.U, e.V, e.Weight); err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	var a metric.Distancer
	if f.Backend == "lazy" {
		a = metric.NewLazyOracle(g)
	} else {
		a, err = metric.RestoreAPSP(f.N, f.Dist, f.NextHop)
		if err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
	}
	return compactrouting.RestoreNetwork(g, a), nil
}
