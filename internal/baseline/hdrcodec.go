package baseline

import (
	"fmt"

	"compactrouting/internal/bits"
	"compactrouting/internal/trace"
	"compactrouting/internal/treeroute"
)

// Wire codecs and trace-phase classification for the baseline headers.

// TracePhase classifies full-table hops as direct shortest-path moves.
func (d Destination) TracePhase() trace.Phase { return trace.PhaseDirect }

// TracePhase classifies single-tree hops as tree-routing moves.
func (h TreeHeader) TracePhase() trace.Phase { return trace.PhaseTree }

// Encode serializes the header; the emitted size equals Bits().
func (d Destination) Encode(w *bits.Writer) {
	w.WriteUvarint(uint64(d))
}

// DecodeDestination reads a header written by Destination.Encode.
func DecodeDestination(r *bits.Reader) (Destination, error) {
	v, err := r.ReadUvarint()
	if err != nil {
		return 0, err
	}
	if v > 1<<31-1 {
		return 0, fmt.Errorf("baseline: destination %d overflows int32", v)
	}
	return Destination(v), nil
}

// Encode serializes the header; the emitted size equals Bits().
func (h TreeHeader) Encode(w *bits.Writer) {
	h.L.Encode(w)
}

// DecodeTreeHeader reads a header written by TreeHeader.Encode.
func DecodeTreeHeader(r *bits.Reader) (TreeHeader, error) {
	l, err := treeroute.DecodeLabel(r)
	if err != nil {
		return TreeHeader{}, err
	}
	return TreeHeader{L: l}, nil
}
