package baseline

import (
	"math"
	"testing"

	"compactrouting/internal/core"
	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
)

func fixtures(t *testing.T) (*graph.Graph, *metric.APSP) {
	t.Helper()
	g, _, err := graph.RandomGeometric(100, 0.2, 11)
	if err != nil {
		t.Fatal(err)
	}
	return g, metric.NewAPSP(g)
}

func TestFullTableStretchExactlyOne(t *testing.T) {
	g, a := fixtures(t)
	s := NewFullTable(g, a)
	stats, err := core.EvaluateLabeled(s, a, core.AllPairs(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Max > 1+1e-9 {
		t.Fatalf("full table stretch %v != 1", stats.Max)
	}
	// Name-independent interface agrees.
	nstats, err := core.EvaluateNameIndependent(s, a, core.SamplePairs(g.N(), 200, 1))
	if err != nil {
		t.Fatal(err)
	}
	if nstats.Max > 1+1e-9 {
		t.Fatalf("name-independent stretch %v != 1", nstats.Max)
	}
}

func TestFullTableTableSize(t *testing.T) {
	g, a := fixtures(t)
	s := NewFullTable(g, a)
	want := (g.N() - 1) * 7 // ceil(log2 100) = 7
	if s.TableBits(0) != want {
		t.Fatalf("TableBits = %d, want %d", s.TableBits(0), want)
	}
}

func TestFullTableBadDestination(t *testing.T) {
	g, a := fixtures(t)
	s := NewFullTable(g, a)
	if _, err := s.RouteToLabel(0, -1); err == nil {
		t.Fatal("negative destination accepted")
	}
	if _, err := s.RouteToLabel(0, g.N()); err == nil {
		t.Fatal("oversized destination accepted")
	}
}

func TestSingleTreeDelivers(t *testing.T) {
	g, a := fixtures(t)
	s, err := NewSingleTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := core.EvaluateLabeled(s, a, core.AllPairs(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	// Tree routing is optimal IN THE TREE, so stretch >= 1 always and
	// can be large; just require delivery happened and stretch finite.
	if stats.Max < 1-1e-9 || math.IsInf(stats.Max, 0) {
		t.Fatalf("tree stretch %v out of range", stats.Max)
	}
}

func TestSingleTreeCompactTables(t *testing.T) {
	g, _ := fixtures(t)
	s, err := NewSingleTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	full := NewFullTable(g, metric.NewAPSP(g))
	st := core.Tables(s.TableBits, g.N())
	ft := core.Tables(full.TableBits, g.N())
	if st.MaxBits >= ft.MaxBits {
		t.Fatalf("single-tree tables (%d) not smaller than full tables (%d)",
			st.MaxBits, ft.MaxBits)
	}
}

func TestSingleTreeWorstCaseStretchOnRing(t *testing.T) {
	// On a ring, tree routing around the broken edge forces stretch up
	// to ~n-1: the canonical compact-but-bad-stretch example.
	g, err := graph.Ring(32)
	if err != nil {
		t.Fatal(err)
	}
	a := metric.NewAPSP(g)
	s, err := NewSingleTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := core.EvaluateLabeled(s, a, core.AllPairs(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Max < 10 {
		t.Fatalf("expected large stretch on ring, got %v", stats.Max)
	}
}

func TestFullTableSteps(t *testing.T) {
	g, a := fixtures(t)
	s := NewFullTable(g, a)
	h, err := s.PrepareHeader(9)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bits() <= 0 {
		t.Fatal("empty header")
	}
	w := 0
	for steps := 0; ; steps++ {
		if steps > g.N() {
			t.Fatal("step loop")
		}
		next, nh, arrived, err := s.Step(w, h)
		if err != nil {
			t.Fatal(err)
		}
		if arrived {
			break
		}
		w, h = next, nh
	}
	if w != 9 {
		t.Fatalf("stepped to %d, want 9", w)
	}
	if _, err := s.PrepareHeader(-1); err == nil {
		t.Fatal("bad destination accepted")
	}
}

func TestSingleTreeSteps(t *testing.T) {
	g, _ := fixtures(t)
	s, err := NewSingleTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.PrepareHeader(5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bits() <= 0 {
		t.Fatal("empty header")
	}
	w := 17
	for steps := 0; ; steps++ {
		if steps > g.N() {
			t.Fatal("step loop")
		}
		next, nh, arrived, err := s.Step(w, h)
		if err != nil {
			t.Fatal(err)
		}
		if arrived {
			break
		}
		w, h = next, nh
	}
	if w != 5 {
		t.Fatalf("stepped to %d, want 5", w)
	}
	if _, err := s.PrepareHeader(g.N()); err == nil {
		t.Fatal("bad destination accepted")
	}
}

func TestSchemeNamesAndLabels(t *testing.T) {
	g, a := fixtures(t)
	ft := NewFullTable(g, a)
	st, err := NewSingleTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ft.SchemeName() == "" || st.SchemeName() == "" {
		t.Fatal("missing scheme names")
	}
	if ft.LabelOf(3) != 3 || ft.NameOf(3) != 3 || st.LabelOf(4) != 4 || st.NameOf(4) != 4 {
		t.Fatal("identity labels broken")
	}
	if _, err := st.RouteToName(0, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := ft.RouteToName(0, 5); err != nil {
		t.Fatal(err)
	}
}
