package baseline

import (
	"compactrouting/internal/bits"
	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
	"compactrouting/internal/treeroute"
)

// Snapshot codecs for the baselines. Both restores are struct-literal
// rebinds (FullTable's table IS the oracle matrix; SingleTree decodes
// its compiled tree scheme) — neither calls a counted constructor.

// EncodeSnapshot writes FullTable's serialized state, which is empty:
// the scheme is fully determined by the graph and oracle it rebinds to.
func (s *FullTable) EncodeSnapshot(w *bits.Writer) {}

// RestoreFullTable rebinds a FullTable to the given graph and oracle.
func RestoreFullTable(g *graph.Graph, a metric.Distancer) *FullTable {
	return &FullTable{g: g, a: a, idBits: bits.UintBits(g.N())}
}

// EncodeSnapshot writes SingleTree's compiled tree-routing scheme.
func (s *SingleTree) EncodeSnapshot(w *bits.Writer) {
	treeroute.EncodeScheme(w, s.scheme, s.g.N())
}

// RestoreSingleTree rebuilds a SingleTree from an EncodeSnapshot
// stream without re-running Dijkstra or the tree compile.
func RestoreSingleTree(r *bits.Reader, g *graph.Graph) (*SingleTree, error) {
	sch, err := treeroute.DecodeScheme(r, g.N())
	if err != nil {
		return nil, err
	}
	return &SingleTree{g: g, scheme: sch, idBits: bits.UintBits(g.N())}, nil
}
