// Package baseline implements the two trivial extremes every compact
// routing result is measured against:
//
//   - FullTable: classic shortest-path routing — every node stores a
//     next hop for all n destinations. Stretch exactly 1, Theta(n log n)
//     bits per node: optimal paths, non-compact tables.
//
//   - SingleTree: route along one global shortest-path tree using the
//     tree-routing substrate. O(log² n) bits per node, but stretch up
//     to the tree's distortion (unbounded in the worst case): compact
//     tables, poor paths.
//
// Both work as labeled AND name-independent schemes (their tables are
// indexed by original names directly, so names are labels).
package baseline

import (
	"fmt"

	"compactrouting/internal/bits"
	"compactrouting/internal/core"
	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
	"compactrouting/internal/treeroute"
)

// FullTable is the stretch-1 full-routing-table scheme.
type FullTable struct {
	g      *graph.Graph
	a      metric.Distancer
	idBits int
}

var (
	_ core.LabeledScheme         = (*FullTable)(nil)
	_ core.NameIndependentScheme = (*FullTable)(nil)
)

// NewFullTable compiles the scheme (the APSP matrix is its table).
func NewFullTable(g *graph.Graph, a metric.Distancer) *FullTable {
	core.NoteSchemeBuild()
	return &FullTable{g: g, a: a, idBits: bits.UintBits(g.N())}
}

// SchemeName implements the scheme interfaces.
func (s *FullTable) SchemeName() string { return "baseline/full-table" }

// LabelOf returns v itself: the scheme needs no designer labels.
func (s *FullTable) LabelOf(v int) int { return v }

// NameOf returns v itself (identity naming; the scheme is trivially
// name-independent since its table covers every destination).
func (s *FullTable) NameOf(v int) int { return v }

// TableBits returns n-1 next-hop entries of ceil(log n) bits.
func (s *FullTable) TableBits(v int) int { return (s.g.N() - 1) * s.idBits }

// RouteToLabel walks the shortest path using per-node next hops.
func (s *FullTable) RouteToLabel(src, label int) (*core.Route, error) {
	if src < 0 || src >= s.g.N() {
		return nil, fmt.Errorf("baseline: source %d out of range", src)
	}
	if label < 0 || label >= s.g.N() {
		return nil, fmt.Errorf("baseline: destination %d out of range", label)
	}
	tr := core.NewTrace(s.g, src)
	tr.Header(s.idBits)
	for tr.At() != label {
		if err := tr.Hop(s.a.NextHop(tr.At(), label)); err != nil {
			return nil, err
		}
	}
	return tr.Finish(label)
}

// RouteToName is RouteToLabel under the identity naming.
func (s *FullTable) RouteToName(src, name int) (*core.Route, error) {
	return s.RouteToLabel(src, name)
}

// SingleTree routes along one global shortest-path tree.
type SingleTree struct {
	g      *graph.Graph
	scheme *treeroute.Scheme
	idBits int
}

var (
	_ core.LabeledScheme         = (*SingleTree)(nil)
	_ core.NameIndependentScheme = (*SingleTree)(nil)
)

// NewSingleTree compiles the scheme over the shortest-path tree rooted
// at root.
func NewSingleTree(g *graph.Graph, root int) (*SingleTree, error) {
	core.NoteSchemeBuild()
	spt := metric.Dijkstra(g, root)
	parent := make([]int, g.N())
	copy(parent, spt.Parent)
	parent[root] = -1
	sch, err := treeroute.New(parent, root)
	if err != nil {
		return nil, err
	}
	return &SingleTree{g: g, scheme: sch, idBits: bits.UintBits(g.N())}, nil
}

// SchemeName implements the scheme interfaces.
func (s *SingleTree) SchemeName() string { return "baseline/single-tree" }

// LabelOf returns v (each node keeps the tree labels of all n nodes
// indexed by id would defeat the point; instead the conversion from id
// to tree label happens at the source, which stores the mapping — we
// charge that to the source's table).
func (s *SingleTree) LabelOf(v int) int { return v }

// NameOf returns v (identity naming).
func (s *SingleTree) NameOf(v int) int { return v }

// TableBits charges each node its tree-routing table plus its own tree
// label (sources attach the destination's label via the id->label map
// counted below as n label entries shared across the network; per node
// that amortizes to one label).
func (s *SingleTree) TableBits(v int) int {
	return s.scheme.TableBits(v) + s.scheme.LabelBits(v)
}

// RouteToLabel routes along the tree.
func (s *SingleTree) RouteToLabel(src, label int) (*core.Route, error) {
	if src < 0 || src >= s.g.N() {
		return nil, fmt.Errorf("baseline: source %d out of range", src)
	}
	if label < 0 || label >= s.g.N() {
		return nil, fmt.Errorf("baseline: destination %d out of range", label)
	}
	tr := core.NewTrace(s.g, src)
	l := s.scheme.Label(label)
	tr.Header(l.Bits())
	path, err := s.scheme.Route(src, l)
	if err != nil {
		return nil, err
	}
	if err := tr.Walk(path); err != nil {
		return nil, err
	}
	return tr.Finish(label)
}

// RouteToName is RouteToLabel under the identity naming.
func (s *SingleTree) RouteToName(src, name int) (*core.Route, error) {
	return s.RouteToLabel(src, name)
}
