package baseline_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"compactrouting/internal/baseline"
	"compactrouting/internal/bits"
	"compactrouting/internal/sim"
)

// encodedSeeds encodes a stride-spaced sample of harvested headers,
// giving the fuzzers a corpus of real wire forms to mutate.
func encodedSeeds[H sim.Header](hs []H, max int) [][]byte {
	stride := len(hs) / max
	if stride < 1 {
		stride = 1
	}
	var out [][]byte
	for i := 0; i < len(hs) && len(out) < max; i += stride {
		var w bits.Writer
		any(hs[i]).(interface{ Encode(*bits.Writer) }).Encode(&w)
		out = append(out, append([]byte(nil), w.Bytes()...))
	}
	return out
}

// writeFuzzCorpus rewrites testdata/fuzz/<name> in Go's corpus format.
func writeFuzzCorpus(t testing.TB, name string, seeds [][]byte) {
	dir := filepath.Join("testdata", "fuzz", name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%03d", i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func destinationSeeds(tb testing.TB) [][]byte {
	g, a, pairs := codecFixture(tb)
	s := baseline.NewFullTable(g, a)
	return encodedSeeds(harvest(tb, sim.FullTableRouter{S: s}, pairs[:16], 8*g.N()), 6)
}

func treeHeaderSeeds(tb testing.TB) [][]byte {
	g, _, pairs := codecFixture(tb)
	s, err := baseline.NewSingleTree(g, 0)
	if err != nil {
		tb.Fatal(err)
	}
	return encodedSeeds(harvest(tb, sim.SingleTreeRouter{S: s}, pairs[:16], 8*g.N()), 8)
}

// TestRegenFuzzCorpus rewrites the checked-in seed corpora from live
// headers. Regenerate with:
//
//	REGEN_FUZZ_CORPUS=1 go test ./internal/... -run TestRegenFuzzCorpus
func TestRegenFuzzCorpus(t *testing.T) {
	if os.Getenv("REGEN_FUZZ_CORPUS") == "" {
		t.Skip("set REGEN_FUZZ_CORPUS=1 to rewrite testdata/fuzz seed corpora")
	}
	writeFuzzCorpus(t, "FuzzDecodeDestination", destinationSeeds(t))
	writeFuzzCorpus(t, "FuzzDecodeTreeHeader", treeHeaderSeeds(t))
}

// fuzzHeaderCodec: arbitrary bytes either fail to decode or yield a
// header whose re-encoding is exactly Bits() wide and decodes back to
// itself. Must never panic or over-allocate on hostile input.
func fuzzHeaderCodec[H sim.Header](t *testing.T, data []byte, decode func(*bits.Reader) (H, error)) {
	h, err := decode(bits.NewReader(data, 8*len(data)))
	if err != nil {
		return
	}
	var w bits.Writer
	any(h).(interface{ Encode(*bits.Writer) }).Encode(&w)
	if w.Len() != h.Bits() {
		t.Fatalf("decoded header %+v re-encodes to %d bits, Bits() promises %d", h, w.Len(), h.Bits())
	}
	r := bits.NewReader(w.Bytes(), w.Len())
	got, err := decode(r)
	if err != nil {
		t.Fatalf("re-decode of %+v: %v", h, err)
	}
	if !reflect.DeepEqual(got, h) || r.Remaining() != 0 {
		t.Fatalf("re-decode: got %+v (%d bits left), want %+v", got, r.Remaining(), h)
	}
}

func FuzzDecodeDestination(f *testing.F) {
	for _, s := range destinationSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzHeaderCodec(t, data, baseline.DecodeDestination)
	})
}

func FuzzDecodeTreeHeader(f *testing.F) {
	for _, s := range treeHeaderSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzHeaderCodec(t, data, baseline.DecodeTreeHeader)
	})
}
