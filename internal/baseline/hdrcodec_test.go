package baseline_test

import (
	"reflect"
	"testing"

	"compactrouting/internal/baseline"
	"compactrouting/internal/bits"
	"compactrouting/internal/core"
	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
	"compactrouting/internal/sim"
)

// harvest collects every header that appears on real walks so the codec
// invariants are checked against what the schemes actually emit.
func harvest[H sim.Header](t testing.TB, r sim.Router[H], pairs [][2]int, maxHops int) []H {
	t.Helper()
	var out []H
	for _, p := range pairs {
		h, err := r.Prepare(p[1])
		if err != nil {
			t.Fatalf("Prepare(%d): %v", p[1], err)
		}
		out = append(out, h)
		at := p[0]
		for hops := 0; ; hops++ {
			if hops > maxHops {
				t.Fatalf("pair (%d,%d) exceeded %d hops", p[0], p[1], maxHops)
			}
			next, nh, arrived, err := r.Step(at, h)
			if err != nil {
				t.Fatalf("Step at %d: %v", at, err)
			}
			if arrived {
				break
			}
			out = append(out, nh)
			at, h = next, nh
		}
	}
	return out
}

// checkCodec pins Writer.Len() == Bits() and a clean decode round trip.
func checkCodec[H sim.Header](t testing.TB, hs []H, decode func(*bits.Reader) (H, error)) {
	t.Helper()
	if len(hs) == 0 {
		t.Fatal("no headers harvested")
	}
	for _, h := range hs {
		var w bits.Writer
		any(h).(interface{ Encode(*bits.Writer) }).Encode(&w)
		if w.Len() != h.Bits() {
			t.Fatalf("header %+v: encoded to %d bits, Bits() promises %d", h, w.Len(), h.Bits())
		}
		r := bits.NewReader(w.Bytes(), w.Len())
		got, err := decode(r)
		if err != nil {
			t.Fatalf("decode %+v: %v", h, err)
		}
		if !reflect.DeepEqual(got, h) {
			t.Fatalf("round trip: got %+v, want %+v", got, h)
		}
		if r.Remaining() != 0 {
			t.Fatalf("decode of %+v left %d bits unread", h, r.Remaining())
		}
	}
}

func codecFixture(t testing.TB) (*graph.Graph, *metric.APSP, [][2]int) {
	t.Helper()
	g, _, err := graph.RandomGeometric(72, 0.25, 4)
	if err != nil {
		t.Fatal(err)
	}
	return g, metric.NewAPSP(g), core.SamplePairs(g.N(), 64, 5)
}

func TestDestinationCodecMatchesBits(t *testing.T) {
	g, a, pairs := codecFixture(t)
	s := baseline.NewFullTable(g, a)
	hs := harvest(t, sim.FullTableRouter{S: s}, pairs, 8*g.N())
	checkCodec(t, hs, baseline.DecodeDestination)
}

func TestTreeHeaderCodecMatchesBits(t *testing.T) {
	g, a, pairs := codecFixture(t)
	_ = a
	s, err := baseline.NewSingleTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	hs := harvest(t, sim.SingleTreeRouter{S: s}, pairs, 8*g.N())
	checkCodec(t, hs, baseline.DecodeTreeHeader)
}
