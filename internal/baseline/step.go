package baseline

import (
	"fmt"

	"compactrouting/internal/bits"
	"compactrouting/internal/treeroute"
)

// Destination is the full-table scheme's packet header: just the
// destination id.
type Destination int32

// Bits returns the header size.
func (d Destination) Bits() int { return bits.UvarintLen(uint64(d)) }

// PrepareHeader returns the initial header for a delivery to dst.
func (s *FullTable) PrepareHeader(dst int) (Destination, error) {
	if dst < 0 || dst >= s.g.N() {
		return 0, fmt.Errorf("baseline: destination %d out of range", dst)
	}
	return Destination(dst), nil
}

// Step performs one local full-table forwarding decision.
func (s *FullTable) Step(node int, h Destination) (int, Destination, bool, error) {
	if node == int(h) {
		return 0, h, true, nil
	}
	return s.a.NextHop(node, int(h)), h, false, nil
}

// TreeHeader is the single-tree scheme's packet header: the
// destination's tree-routing label.
type TreeHeader struct {
	L treeroute.Label
}

// Bits returns the header size.
func (h TreeHeader) Bits() int { return h.L.Bits() }

// PrepareHeader returns the initial header for a delivery to dst.
func (s *SingleTree) PrepareHeader(dst int) (TreeHeader, error) {
	if dst < 0 || dst >= s.g.N() {
		return TreeHeader{}, fmt.Errorf("baseline: destination %d out of range", dst)
	}
	return TreeHeader{L: s.scheme.Label(dst)}, nil
}

// Step performs one local tree-routing decision.
func (s *SingleTree) Step(node int, h TreeHeader) (int, TreeHeader, bool, error) {
	next, arrived, err := s.scheme.NextHop(node, h.L)
	return next, h, arrived, err
}
