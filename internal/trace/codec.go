package trace

import (
	"errors"
	"fmt"
	"math"

	"compactrouting/internal/bits"
)

// codecVersion is the trace wire-format version; Decode rejects
// streams with any other version so format changes fail loudly.
const codecVersion = 1

// minHopBits is the smallest possible encoded hop: two 1-group
// uvarints (From, To+1), the phase field, a 1-group uvarint
// (HeaderBits) and the fixed 64-bit distance. Decode uses it to bound
// hop counts before allocating.
const minHopBits = 8 + 8 + phaseBits + 8 + 64

// phaseBits is the fixed width of the phase field (NumPhases <= 8).
const phaseBits = 3

// ErrCorrupt is wrapped by Decode errors caused by a malformed stream
// (as opposed to a short one, which surfaces bits.ErrOutOfData).
var ErrCorrupt = errors.New("trace: corrupt stream")

// Encode serializes the trace. The format is versioned and
// self-delimiting: uvarint version, Src, Dst+1, PrepBits, Attempts,
// Drops, hop count, then per hop From, To+1, a fixed-width phase,
// HeaderBits and the raw IEEE-754 bits of Dist.
func (t *Trace) Encode(w *bits.Writer) {
	w.WriteUvarint(codecVersion)
	w.WriteUvarint(uint64(t.Src))
	w.WriteUvarint(uint64(t.Dst + 1))
	w.WriteUvarint(uint64(t.PrepBits))
	w.WriteUvarint(uint64(t.Attempts))
	w.WriteUvarint(uint64(t.Drops))
	w.WriteUvarint(uint64(len(t.Hops)))
	for i := range t.Hops {
		h := &t.Hops[i]
		w.WriteUvarint(uint64(h.From))
		w.WriteUvarint(uint64(h.To + 1))
		w.WriteBits(uint64(h.Phase), phaseBits)
		w.WriteUvarint(uint64(h.HeaderBits))
		w.WriteBits(math.Float64bits(h.Dist), 64)
	}
}

// Bits returns the exact encoded size of the trace in bits, mirroring
// Encode term by term (before Marshal's byte-boundary padding).
func (t *Trace) Bits() int {
	n := bits.UvarintLen(codecVersion) +
		bits.UvarintLen(uint64(t.Src)) +
		bits.UvarintLen(uint64(t.Dst+1)) +
		bits.UvarintLen(uint64(t.PrepBits)) +
		bits.UvarintLen(uint64(t.Attempts)) +
		bits.UvarintLen(uint64(t.Drops)) +
		bits.UvarintLen(uint64(len(t.Hops)))
	for i := range t.Hops {
		h := &t.Hops[i]
		n += bits.UvarintLen(uint64(h.From)) + bits.UvarintLen(uint64(h.To+1)) +
			phaseBits + bits.UvarintLen(uint64(h.HeaderBits)) + 64
	}
	return n
}

// Marshal returns the byte form of the trace (Encode padded with zero
// bits to a byte boundary).
func (t *Trace) Marshal() []byte {
	var w bits.Writer
	t.Encode(&w)
	return w.Bytes()
}

func decodeID(r *bits.Reader, field string, min int32) (int32, error) {
	v, err := r.ReadUvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt32 {
		return 0, fmt.Errorf("%w: %s %d overflows int32", ErrCorrupt, field, v)
	}
	id := int32(v)
	if field == "dst" || field == "to" {
		id-- // encoded shifted by one so -1 (undelivered) round-trips
	}
	if id < min {
		return 0, fmt.Errorf("%w: %s %d below %d", ErrCorrupt, field, id, min)
	}
	return id, nil
}

// Decode reads a trace written by Encode, validating every field: the
// version must match, ids must fit int32, phases must be in range, and
// distances must be finite and non-negative. The hop count is checked
// against the reader's remaining bits before the hop slice is
// allocated, so hostile counts cannot force large allocations.
func Decode(r *bits.Reader) (*Trace, error) {
	ver, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if ver != codecVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrCorrupt, ver, codecVersion)
	}
	t := &Trace{}
	if t.Src, err = decodeID(r, "src", 0); err != nil {
		return nil, err
	}
	if t.Dst, err = decodeID(r, "dst", -1); err != nil {
		return nil, err
	}
	if t.PrepBits, err = decodeID(r, "prep_bits", 0); err != nil {
		return nil, err
	}
	if t.Attempts, err = decodeID(r, "attempts", 0); err != nil {
		return nil, err
	}
	if t.Drops, err = decodeID(r, "drops", 0); err != nil {
		return nil, err
	}
	cnt, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if cnt*minHopBits > uint64(r.Remaining()) {
		return nil, fmt.Errorf("%w: hop count %d exceeds stream", ErrCorrupt, cnt)
	}
	t.Hops = make([]Hop, cnt)
	for i := range t.Hops {
		h := &t.Hops[i]
		if h.From, err = decodeID(r, "from", 0); err != nil {
			return nil, err
		}
		if h.To, err = decodeID(r, "to", 0); err != nil {
			return nil, err
		}
		p, err := r.ReadBits(phaseBits)
		if err != nil {
			return nil, err
		}
		if int(p) >= NumPhases {
			return nil, fmt.Errorf("%w: phase %d out of range", ErrCorrupt, p)
		}
		h.Phase = Phase(p)
		if h.HeaderBits, err = decodeID(r, "header_bits", 0); err != nil {
			return nil, err
		}
		db, err := r.ReadBits(64)
		if err != nil {
			return nil, err
		}
		d := math.Float64frombits(db)
		if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
			return nil, fmt.Errorf("%w: hop %d distance %v invalid", ErrCorrupt, i, d)
		}
		h.Dist = d
	}
	return t, nil
}

// Unmarshal decodes a trace from its Marshal byte form. Trailing
// padding bits (at most 7, from the byte-boundary pad) must be zero;
// anything longer is rejected as trailing garbage.
func Unmarshal(buf []byte) (*Trace, error) {
	r := bits.NewReader(buf, 8*len(buf))
	t, err := Decode(r)
	if err != nil {
		return nil, err
	}
	if r.Remaining() >= 8 {
		return nil, fmt.Errorf("%w: %d trailing bits", ErrCorrupt, r.Remaining())
	}
	for r.Remaining() > 0 {
		b, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		if b {
			return nil, fmt.Errorf("%w: nonzero padding", ErrCorrupt)
		}
	}
	return t, nil
}
