package trace

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func corpusTraces() []*Trace {
	return []*Trace{
		sampleTrace(),
		{Src: 0, Dst: -1, PrepBits: 0},
		{Src: 7, Dst: 7, PrepBits: 12},
		{Src: 1, Dst: 2, Hops: []Hop{{From: 1, To: 2}}},
		{Src: 2, Dst: 5, PrepBits: 200, Attempts: 3, Drops: 2, Hops: []Hop{
			{From: 2, To: 9, Phase: PhaseZoom, HeaderBits: 4000, Dist: 0.001},
			{From: 9, To: 5, Phase: PhaseFallback, HeaderBits: 1, Dist: 1e9},
		}},
	}
}

// TestRegenFuzzCorpus rewrites the checked-in seed corpus from
// canonical marshals. Regenerate with:
//
//	REGEN_FUZZ_CORPUS=1 go test ./internal/... -run TestRegenFuzzCorpus
func TestRegenFuzzCorpus(t *testing.T) {
	if os.Getenv("REGEN_FUZZ_CORPUS") == "" {
		t.Skip("set REGEN_FUZZ_CORPUS=1 to rewrite testdata/fuzz seed corpora")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzTraceCodec")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, tr := range corpusTraces() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", tr.Marshal())
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%03d", i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzTraceCodec: arbitrary bytes either fail Unmarshal (without
// panicking or allocating unboundedly — the hop-count guard) or decode
// to a trace whose re-marshal is a canonical fixed point.
func FuzzTraceCodec(f *testing.F) {
	for _, tr := range corpusTraces() {
		f.Add(tr.Marshal())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Unmarshal(data)
		if err != nil {
			return
		}
		buf := tr.Marshal()
		got, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("re-unmarshal of %+v: %v", tr, err)
		}
		if !reflect.DeepEqual(got, tr) {
			t.Fatalf("re-unmarshal: got %+v, want %+v", got, tr)
		}
		if !bytes.Equal(got.Marshal(), buf) {
			t.Fatalf("marshal is not a fixed point for %+v", tr)
		}
	})
}
