package trace_test

// Property sweep for the tracing layer: across seeded doubling
// workloads (paths, rings, holed grids, random geometric), every traced
// route of every scheme must
//
//   - satisfy the scheme's analytical stretch bound,
//   - carry hop records whose walk matches Result.Path edge for edge
//     and whose distances sum BIT-IDENTICALLY to Result.Cost,
//   - replay byte-for-byte on a second run, and
//   - produce the same bytes from the concurrent simulator (RunTraced)
//     as from the sequential driver, at GOMAXPROCS 1 and 8.
//
// The sweep covers >= 20 seeds x 3 sizes and routes >= 1000 pairs per
// scheme (asserted at the end, so the coverage floor cannot silently
// erode).

import (
	"bytes"
	"fmt"
	"math"
	"runtime"
	"testing"

	"compactrouting/internal/core"
	"compactrouting/internal/graph"
	"compactrouting/internal/labeled"
	"compactrouting/internal/metric"
	"compactrouting/internal/nameind"
	"compactrouting/internal/sim"
	"compactrouting/internal/trace"
)

// harness erases a scheme's header type behind closures so the sweep
// can treat all four schemes uniformly. Destinations are NODE ids; addr
// translates to the scheme's address space (label or name).
type harness struct {
	bound float64
	route func(src, dst int, tr *trace.Trace) sim.Result
	// runAll drives the pairs through the concurrent simulator with one
	// trace per delivery.
	runAll func(pairs [][2]int, traces []*trace.Trace) []sim.Result
}

func bindHarness[H sim.Header](g *graph.Graph, r sim.Router[H], addr func(int) int, maxHops int, bound float64) harness {
	return harness{
		bound: bound,
		route: func(src, dst int, tr *trace.Trace) sim.Result {
			return sim.RouteOnceTraced(g, r, src, addr(dst), maxHops, tr)
		},
		runAll: func(pairs [][2]int, traces []*trace.Trace) []sim.Result {
			ds := make([]sim.Delivery, len(pairs))
			for i, p := range pairs {
				ds[i] = sim.Delivery{Src: p[0], Dst: addr(p[1])}
			}
			return sim.RunTraced(g, r, ds, maxHops, traces)
		},
	}
}

var propertySchemes = []string{
	"simple-labeled",
	"scale-free-labeled",
	"name-independent",
	"scale-free-name-independent",
}

// buildHarness compiles one scheme over the graph with the hop budgets
// cmd/routesim and internal/server use.
func buildHarness(scheme string, g *graph.Graph, a *metric.APSP, seed int64) (harness, error) {
	n := g.N()
	const eps = 0.25
	switch scheme {
	case "simple-labeled":
		s, err := labeled.NewSimple(g, a, eps)
		if err != nil {
			return harness{}, err
		}
		return bindHarness(g, sim.SimpleLabeledRouter{S: s}, s.LabelOf, 0, s.StretchBound()), nil
	case "scale-free-labeled":
		s, err := labeled.NewScaleFree(g, a, eps)
		if err != nil {
			return harness{}, err
		}
		return bindHarness(g, sim.ScaleFreeLabeledRouter{S: s}, s.LabelOf, 64*n, s.StretchBound()), nil
	case "name-independent":
		under, err := labeled.NewSimple(g, a, eps)
		if err != nil {
			return harness{}, err
		}
		nm := nameind.RandomNaming(n, seed+2)
		s, err := nameind.NewSimple(g, a, nm, under, eps)
		if err != nil {
			return harness{}, err
		}
		return bindHarness(g, sim.NameIndependentRouter{S: s}, nm.NameOf, 256*n, s.StretchBound()), nil
	case "scale-free-name-independent":
		under, err := labeled.NewScaleFree(g, a, eps)
		if err != nil {
			return harness{}, err
		}
		nm := nameind.RandomNaming(n, seed+2)
		s, err := nameind.NewScaleFree(g, a, nm, under, eps)
		if err != nil {
			return harness{}, err
		}
		return bindHarness(g, sim.ScaleFreeNameIndependentRouter{S: s}, nm.NameOf, 512*n, s.StretchBound()), nil
	}
	return harness{}, fmt.Errorf("unknown scheme %q", scheme)
}

var propertyFamilies = []string{"path", "ring", "grid-holes", "geometric"}

func buildGraph(t *testing.T, family string, n int, seed int64) (*graph.Graph, *metric.APSP) {
	t.Helper()
	var (
		g   *graph.Graph
		err error
	)
	switch family {
	case "path":
		g, err = graph.Path(n, 1)
	case "ring":
		g, err = graph.Ring(n)
	case "grid-holes":
		side := 1
		for side*side < n {
			side++
		}
		g, _, err = graph.GridWithHoles(side, side, 0.2, seed)
	case "geometric":
		radius := 1.8 * math.Sqrt(math.Log(float64(n))/float64(n))
		g, _, err = graph.RandomGeometric(n, radius, seed)
	default:
		t.Fatalf("unknown family %q", family)
	}
	if err != nil {
		t.Fatalf("build %s n=%d seed=%d: %v", family, n, seed, err)
	}
	return g, metric.NewAPSP(g)
}

// checkTraced verifies every per-route property for one traced result.
func checkTraced(t *testing.T, ctx string, g *graph.Graph, a *metric.APSP, src, dst int, bound float64, res sim.Result, tr *trace.Trace) {
	t.Helper()
	if res.Err != nil {
		t.Fatalf("%s: route failed: %v", ctx, res.Err)
	}
	// Stretch bound (the acceptance criterion: zero violations).
	if d := a.Dist(src, dst); d > 0 {
		if s := res.Cost / d; s > bound+1e-9 {
			t.Fatalf("%s: stretch %.4f exceeds bound %.4f", ctx, s, bound)
		}
	}
	// The traced walk IS the result's walk.
	if int(tr.Src) != src || int(tr.Dst) != res.Dst {
		t.Fatalf("%s: trace endpoints (%d,%d) != result (%d,%d)", ctx, tr.Src, tr.Dst, src, res.Dst)
	}
	if len(tr.Hops) != len(res.Path)-1 {
		t.Fatalf("%s: %d hop records for a %d-hop walk", ctx, len(tr.Hops), len(res.Path)-1)
	}
	for i, h := range tr.Hops {
		if int(h.From) != res.Path[i] || int(h.To) != res.Path[i+1] {
			t.Fatalf("%s: hop %d records %d->%d, path says %d->%d", ctx, i, h.From, h.To, res.Path[i], res.Path[i+1])
		}
		if w, ok := g.EdgeWeight(int(h.From), int(h.To)); !ok || w != h.Dist {
			t.Fatalf("%s: hop %d distance %v != edge weight (%v, %v)", ctx, i, h.Dist, w, ok)
		}
		if int(h.Phase) >= trace.NumPhases {
			t.Fatalf("%s: hop %d phase %d out of range", ctx, i, h.Phase)
		}
	}
	// Per-hop distances sum EXACTLY (bit-identically) to Result.Cost:
	// both are accumulated in walk order.
	if math.Float64bits(tr.Cost()) != math.Float64bits(res.Cost) {
		t.Fatalf("%s: trace cost %v (bits %x) != result cost %v (bits %x)",
			ctx, tr.Cost(), math.Float64bits(tr.Cost()), res.Cost, math.Float64bits(res.Cost))
	}
	if tr.MaxHeaderBits() != res.MaxHeaderBits {
		t.Fatalf("%s: trace max header %d != result %d", ctx, tr.MaxHeaderBits(), res.MaxHeaderBits)
	}
}

// TestTracePropertySweep is the main sweep: 20 seeds x 3 sizes over the
// four doubling families, all four schemes, with every per-route
// property checked and replay byte-determinism spot-checked.
func TestTracePropertySweep(t *testing.T) {
	const (
		numSeeds      = 20
		pairsPerGraph = 18
		minPairs      = 1000 // acceptance floor per scheme
	)
	sizes := []int{24, 48, 80}
	routed := make(map[string]int)
	for seedIdx := 0; seedIdx < numSeeds; seedIdx++ {
		seed := int64(seedIdx + 1)
		family := propertyFamilies[seedIdx%len(propertyFamilies)]
		for _, size := range sizes {
			g, a := buildGraph(t, family, size, seed)
			pairs := core.SamplePairs(g.N(), pairsPerGraph, seed*31+int64(size))
			for _, scheme := range propertySchemes {
				h, err := buildHarness(scheme, g, a, seed)
				if err != nil {
					t.Fatalf("%s on %s n=%d seed=%d: %v", scheme, family, size, seed, err)
				}
				tr := &trace.Trace{}
				replay := &trace.Trace{}
				for i, p := range pairs {
					ctx := fmt.Sprintf("%s %s n=%d seed=%d pair=(%d,%d)", scheme, family, g.N(), seed, p[0], p[1])
					res := h.route(p[0], p[1], tr)
					checkTraced(t, ctx, g, a, p[0], p[1], h.bound, res, tr)
					routed[scheme]++
					// Replay determinism: the first pairs of every cell
					// re-route and must marshal to identical bytes.
					if i < 4 {
						h.route(p[0], p[1], replay)
						if !bytes.Equal(tr.Marshal(), replay.Marshal()) {
							t.Fatalf("%s: replay produced different bytes", ctx)
						}
					}
				}
			}
		}
	}
	for _, scheme := range propertySchemes {
		if routed[scheme] < minPairs {
			t.Fatalf("sweep routed only %d pairs for %s, want >= %d", routed[scheme], scheme, minPairs)
		}
	}
}

// TestTraceBytesAcrossGOMAXPROCS pins the concurrency contract: the
// concurrent simulator's traces are byte-identical to the sequential
// driver's, whether the runtime schedules on 1 or 8 CPUs.
func TestTraceBytesAcrossGOMAXPROCS(t *testing.T) {
	g, a := buildGraph(t, "geometric", 64, 5)
	pairs := core.SamplePairs(g.N(), 32, 7)
	for _, scheme := range propertySchemes {
		h, err := buildHarness(scheme, g, a, 5)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		// Sequential reference bytes.
		want := make([][]byte, len(pairs))
		for i, p := range pairs {
			tr := &trace.Trace{}
			if res := h.route(p[0], p[1], tr); res.Err != nil {
				t.Fatalf("%s pair (%d,%d): %v", scheme, p[0], p[1], res.Err)
			}
			want[i] = tr.Marshal()
		}
		for _, procs := range []int{1, 8} {
			old := runtime.GOMAXPROCS(procs)
			traces := make([]*trace.Trace, len(pairs))
			for i := range traces {
				traces[i] = &trace.Trace{}
			}
			results := h.runAll(pairs, traces)
			runtime.GOMAXPROCS(old)
			for i := range pairs {
				if results[i].Err != nil {
					t.Fatalf("%s GOMAXPROCS=%d pair (%d,%d): %v", scheme, procs, pairs[i][0], pairs[i][1], results[i].Err)
				}
				if !bytes.Equal(traces[i].Marshal(), want[i]) {
					t.Fatalf("%s GOMAXPROCS=%d pair (%d,%d): concurrent trace bytes differ from sequential",
						scheme, procs, pairs[i][0], pairs[i][1])
				}
			}
		}
	}
}

// TestTraceSparseRunTraced pins the traces-with-nil-entries contract:
// RunTraced accepts a traces slice where only some deliveries are
// traced, and the untraced ones still route correctly.
func TestTraceSparseRunTraced(t *testing.T) {
	g, a := buildGraph(t, "grid-holes", 48, 3)
	h, err := buildHarness("simple-labeled", g, a, 3)
	if err != nil {
		t.Fatal(err)
	}
	pairs := core.SamplePairs(g.N(), 10, 11)
	traces := make([]*trace.Trace, len(pairs))
	for i := range traces {
		if i%2 == 0 {
			traces[i] = &trace.Trace{}
		}
	}
	results := h.runAll(pairs, traces)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("pair %d: %v", i, res.Err)
		}
		if i%2 == 0 {
			if len(traces[i].Hops) != len(res.Path)-1 {
				t.Fatalf("pair %d: traced %d hops, walked %d", i, len(traces[i].Hops), len(res.Path)-1)
			}
		} else if traces[i] != nil {
			t.Fatalf("pair %d: trace appeared from nowhere", i)
		}
	}
}
