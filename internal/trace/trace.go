// Package trace is the execution-trace layer of the repository: a
// structured, deterministic record of every forwarding decision a
// routed packet makes. Each trace is a sequence of hop records — node
// ids, the scheme phase that produced the hop (ring/ball hit, tree
// walk, search-tree round trip, zoom climb, final labeled leg,
// fallback), the header size carried over the hop, and the hop's edge
// weight — plus a per-route summary that decomposes stretch into those
// phases.
//
// The layer is zero-overhead when disabled: internal/sim and
// internal/faultsim thread an optional *Trace through their step loops
// and skip every trace instruction when it is nil (pinned by an
// allocation test in internal/sim). When enabled, a trace is a pure
// function of (scheme tables, src, dst): byte-for-byte identical
// across runs and GOMAXPROCS settings, which the property suite in
// this package asserts for every scheme.
//
// This package is bound by the repo's deterministic ruleset: its
// outputs must be a pure function of explicit seeds (determinlint
// enforces the source-level contract; see DESIGN.md §Static analysis).
//
//determinlint:deterministic
package trace

import "math"

// Phase classifies one hop's role in a scheme's decision structure.
// The zero value PhaseDirect is the default for headers that do not
// classify themselves.
type Phase uint8

const (
	// PhaseDirect: a direct analyzed hop — a ring/ball hit of the
	// labeled schemes, or a shortest-path hop of the baselines.
	PhaseDirect Phase = iota
	// PhaseTree: tree-routing toward a cell center or delegated ball
	// (the "cluster climb" legs).
	PhaseTree
	// PhaseSearch: a search-tree round trip (name or label resolution).
	PhaseSearch
	// PhaseZoom: climbing the zooming sequence to the next net ancestor.
	PhaseZoom
	// PhaseFinal: the final labeled leg to the destination.
	PhaseFinal
	// PhaseFallback: hops taken on a scheme's safety net rather than
	// its analyzed path.
	PhaseFallback

	// NumPhases is the number of distinct phases.
	NumPhases = int(PhaseFallback) + 1
)

// phaseNames indexes Phase values; keep in sync with the constants.
var phaseNames = [NumPhases]string{
	"direct", "tree", "search", "zoom", "final", "fallback",
}

// String returns the phase's wire name ("direct", "tree", ...).
func (p Phase) String() string {
	if int(p) < NumPhases {
		return phaseNames[p]
	}
	return "invalid"
}

// Phased is implemented by packet headers that classify the hops they
// ride; internal/sim consults it per traced hop. Headers without it
// trace as PhaseDirect.
type Phased interface {
	TracePhase() Phase
}

// Hop is one traced forwarding decision: the packet moved From -> To
// (a graph edge of weight Dist) carrying HeaderBits bits, in the given
// scheme phase.
type Hop struct {
	From, To   int32
	Phase      Phase
	HeaderBits int32
	Dist       float64
}

// Trace is the deterministic record of one routed delivery. A Trace is
// reusable: Begin resets it in place, so serving layers can keep one
// per worker and avoid per-request allocation after warm-up.
type Trace struct {
	Src, Dst int32 // Dst is -1 until arrival
	// PrepBits is the header size as prepared at the source (the
	// largest header en route is max(PrepBits, per-hop HeaderBits)).
	PrepBits int32
	Hops     []Hop
	// Attempts and Drops report the reliability layer's work when the
	// delivery ran under fault injection (zero otherwise); Hops then
	// records the final attempt's walk.
	Attempts int32
	Drops    int32
}

// Begin resets the trace in place for a new delivery from src whose
// prepared header is prepBits bits.
func (t *Trace) Begin(src, prepBits int32) {
	t.Src, t.Dst, t.PrepBits = src, -1, prepBits
	t.Hops = t.Hops[:0]
	t.Attempts, t.Drops = 0, 0
}

// Cost returns the summed hop distances. The hops are accumulated in
// walk order, so the sum is bit-identical to the step loop's own
// running cost.
func (t *Trace) Cost() float64 {
	c := 0.0
	for i := range t.Hops {
		c += t.Hops[i].Dist
	}
	return c
}

// MaxHeaderBits returns the largest header observed en route.
func (t *Trace) MaxHeaderBits() int {
	max := int(t.PrepBits)
	for i := range t.Hops {
		if b := int(t.Hops[i].HeaderBits); b > max {
			max = b
		}
	}
	return max
}

// PhaseStat is the per-phase slice of a route: how many hops and how
// much cost the phase consumed. Phases appear in enum order.
type PhaseStat struct {
	Phase string  `json:"phase"`
	Hops  int     `json:"hops"`
	Cost  float64 `json:"cost"`
}

// Summary is the per-route rollup: total cost and stretch, the largest
// header, and the detour decomposition by phase.
type Summary struct {
	Hops          int         `json:"hops"`
	Cost          float64     `json:"cost"`
	Optimal       float64     `json:"optimal"`
	Stretch       float64     `json:"stretch"`
	MaxHeaderBits int         `json:"max_header_bits"`
	Phases        []PhaseStat `json:"phases"`
	Attempts      int         `json:"attempts,omitempty"`
	Drops         int         `json:"drops,omitempty"`
}

// Summarize rolls the trace up against the optimal distance (stretch
// is 1 for zero-distance self-routes).
func (t *Trace) Summarize(optimal float64) Summary {
	var hops [NumPhases]int
	var cost [NumPhases]float64
	total := 0.0
	for i := range t.Hops {
		p := t.Hops[i].Phase
		if int(p) >= NumPhases {
			p = PhaseDirect
		}
		hops[p]++
		cost[p] += t.Hops[i].Dist
		total += t.Hops[i].Dist
	}
	s := Summary{
		Hops:          len(t.Hops),
		Cost:          total,
		Optimal:       optimal,
		Stretch:       1,
		MaxHeaderBits: t.MaxHeaderBits(),
		Attempts:      int(t.Attempts),
		Drops:         int(t.Drops),
	}
	if optimal > 0 {
		s.Stretch = total / optimal
	}
	for p := 0; p < NumPhases; p++ {
		if hops[p] > 0 {
			s.Phases = append(s.Phases, PhaseStat{Phase: Phase(p).String(), Hops: hops[p], Cost: cost[p]})
		}
	}
	return s
}

// WireHop is the JSON form of one hop.
type WireHop struct {
	From       int     `json:"from"`
	To         int     `json:"to"`
	Phase      string  `json:"phase"`
	HeaderBits int     `json:"header_bits"`
	Dist       float64 `json:"dist"`
}

// Wire is the JSON form of a trace, capped for transport: at most
// maxHops hop records are echoed, with Truncated set and TotalHops
// preserving the real length when the cap bites. The summary fields
// always cover the full walk.
type Wire struct {
	Src       int       `json:"src"`
	Dst       int       `json:"dst"`
	TotalHops int       `json:"total_hops"`
	Truncated bool      `json:"truncated,omitempty"`
	Hops      []WireHop `json:"hops"`
	Summary   Summary   `json:"summary"`
}

// ToWire converts the trace for a JSON response, truncating the hop
// log at maxHops records (<= 0 means no cap).
func (t *Trace) ToWire(optimal float64, maxHops int) *Wire {
	w := &Wire{
		Src:       int(t.Src),
		Dst:       int(t.Dst),
		TotalHops: len(t.Hops),
		Summary:   t.Summarize(optimal),
	}
	hops := t.Hops
	if maxHops > 0 && len(hops) > maxHops {
		hops = hops[:maxHops]
		w.Truncated = true
	}
	w.Hops = make([]WireHop, len(hops))
	for i := range hops {
		w.Hops[i] = WireHop{
			From:       int(hops[i].From),
			To:         int(hops[i].To),
			Phase:      hops[i].Phase.String(),
			HeaderBits: int(hops[i].HeaderBits),
			Dist:       hops[i].Dist,
		}
	}
	return w
}

// StretchBucketEdges are the shared stretch-histogram bucket upper
// bounds (inclusive), used by the serving layer's /metrics and by
// routebench -json so the two distributions are comparable. The last
// bucket is unbounded. 9.5 sits just above the 9+ε name-independent
// guarantee, so bound violations land in the overflow bucket.
var StretchBucketEdges = []float64{
	1.0, 1.05, 1.1, 1.25, 1.5, 2, 2.5, 3, 4, 5, 7, 9.5,
}

// StretchBucket returns the bucket index for a stretch value
// (len(StretchBucketEdges) for the overflow bucket).
func StretchBucket(s float64) int {
	for i, ub := range StretchBucketEdges {
		if s <= ub {
			return i
		}
	}
	return len(StretchBucketEdges)
}

// StretchHistogram counts stretches into the shared buckets; the
// returned slice has len(StretchBucketEdges)+1 entries, the last being
// the unbounded overflow bucket.
func StretchHistogram(stretches []float64) []int {
	counts := make([]int, len(StretchBucketEdges)+1)
	for _, s := range stretches {
		if math.IsNaN(s) {
			continue
		}
		counts[StretchBucket(s)]++
	}
	return counts
}
