package trace

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"

	"compactrouting/internal/bits"
)

func sampleTrace() *Trace {
	return &Trace{
		Src: 3, Dst: 9, PrepBits: 40,
		Hops: []Hop{
			{From: 3, To: 5, Phase: PhaseDirect, HeaderBits: 40, Dist: 1.25},
			{From: 5, To: 7, Phase: PhaseTree, HeaderBits: 52, Dist: 0.5},
			{From: 7, To: 8, Phase: PhaseSearch, HeaderBits: 61, Dist: 2},
			{From: 8, To: 9, Phase: PhaseFinal, HeaderBits: 33, Dist: 0.25},
		},
		Attempts: 2, Drops: 1,
	}
}

func TestBeginResetsInPlace(t *testing.T) {
	tr := sampleTrace()
	hops := tr.Hops
	tr.Begin(11, 17)
	if tr.Src != 11 || tr.Dst != -1 || tr.PrepBits != 17 {
		t.Fatalf("Begin left %+v", tr)
	}
	if len(tr.Hops) != 0 || tr.Attempts != 0 || tr.Drops != 0 {
		t.Fatalf("Begin did not clear hops/attempts: %+v", tr)
	}
	// The hop backing array is reused, not reallocated.
	tr.Hops = append(tr.Hops, Hop{From: 11, To: 12, Dist: 1})
	if &tr.Hops[0] != &hops[:1][0] {
		t.Fatal("Begin reallocated the hop slice")
	}
}

func TestCostAndMaxHeaderBits(t *testing.T) {
	tr := sampleTrace()
	if got, want := tr.Cost(), 1.25+0.5+2+0.25; got != want {
		t.Fatalf("Cost() = %v, want %v", got, want)
	}
	if got := tr.MaxHeaderBits(); got != 61 {
		t.Fatalf("MaxHeaderBits() = %d, want 61", got)
	}
	// PrepBits dominates when every hop shrinks the header.
	small := &Trace{PrepBits: 99, Hops: []Hop{{HeaderBits: 10}}}
	if got := small.MaxHeaderBits(); got != 99 {
		t.Fatalf("MaxHeaderBits() = %d, want PrepBits 99", got)
	}
}

func TestSummarize(t *testing.T) {
	tr := sampleTrace()
	s := tr.Summarize(2.0)
	if s.Hops != 4 || s.Cost != 4.0 || s.Optimal != 2.0 || s.Stretch != 2.0 {
		t.Fatalf("summary totals wrong: %+v", s)
	}
	if s.MaxHeaderBits != 61 || s.Attempts != 2 || s.Drops != 1 {
		t.Fatalf("summary accounting wrong: %+v", s)
	}
	want := []PhaseStat{
		{Phase: "direct", Hops: 1, Cost: 1.25},
		{Phase: "tree", Hops: 1, Cost: 0.5},
		{Phase: "search", Hops: 1, Cost: 2},
		{Phase: "final", Hops: 1, Cost: 0.25},
	}
	if !reflect.DeepEqual(s.Phases, want) {
		t.Fatalf("phases = %+v, want %+v", s.Phases, want)
	}
	// Zero-distance self-routes report stretch 1, not NaN/Inf.
	if s := (&Trace{Src: 4, Dst: 4}).Summarize(0); s.Stretch != 1 {
		t.Fatalf("self-route stretch = %v, want 1", s.Stretch)
	}
}

func TestToWireTruncation(t *testing.T) {
	tr := sampleTrace()
	w := tr.ToWire(2.0, 2)
	if !w.Truncated || w.TotalHops != 4 || len(w.Hops) != 2 {
		t.Fatalf("cap=2 wire: truncated=%v total=%d hops=%d", w.Truncated, w.TotalHops, len(w.Hops))
	}
	// The summary still covers the full walk.
	if w.Summary.Hops != 4 || w.Summary.Cost != 4.0 {
		t.Fatalf("truncated wire summary lost hops: %+v", w.Summary)
	}
	if w.Hops[0].Phase != "direct" || w.Hops[1].Phase != "tree" {
		t.Fatalf("wire hops misordered: %+v", w.Hops)
	}
	// No cap (<= 0) echoes everything.
	if w := tr.ToWire(2.0, 0); w.Truncated || len(w.Hops) != 4 {
		t.Fatalf("uncapped wire truncated: %+v", w)
	}
	if w := tr.ToWire(2.0, 100); w.Truncated || len(w.Hops) != 4 {
		t.Fatalf("loose cap truncated: %+v", w)
	}
}

func TestPhaseString(t *testing.T) {
	want := []string{"direct", "tree", "search", "zoom", "final", "fallback"}
	for p := 0; p < NumPhases; p++ {
		if Phase(p).String() != want[p] {
			t.Fatalf("Phase(%d).String() = %q, want %q", p, Phase(p), want[p])
		}
	}
	if Phase(NumPhases).String() != "invalid" {
		t.Fatalf("out-of-range phase String() = %q", Phase(NumPhases))
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, tr := range []*Trace{
		sampleTrace(),
		{Src: 0, Dst: -1, PrepBits: 0},                  // failed Prepare: no hops, undelivered
		{Src: 7, Dst: 7, PrepBits: 12},                  // self-route
		{Src: 1, Dst: 2, Hops: []Hop{{From: 1, To: 2}}}, // zero-weight hop
	} {
		buf := tr.Marshal()
		// Marshal pads Encode's stream to a byte boundary, so Bits()
		// predicts the byte length up to 7 padding bits.
		if n := tr.Bits(); (n+7)/8 != len(buf) {
			t.Fatalf("Bits() = %d predicts %d bytes, Marshal wrote %d", n, (n+7)/8, len(buf))
		}
		got, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("Unmarshal(%+v): %v", tr, err)
		}
		// reflect.DeepEqual distinguishes nil from empty hop slices; the
		// codec normalizes both to empty.
		want := *tr
		if want.Hops == nil {
			want.Hops = []Hop{}
		}
		if !reflect.DeepEqual(got, &want) {
			t.Fatalf("round trip: got %+v, want %+v", got, &want)
		}
		// Re-marshal is byte-identical (the codec is canonical).
		if !bytes.Equal(got.Marshal(), buf) {
			t.Fatalf("re-marshal differs for %+v", tr)
		}
	}
}

func TestDecodeRejectsCorruptStreams(t *testing.T) {
	good := sampleTrace().Marshal()

	corrupt := func(name string, mutate func() []byte) {
		t.Run(name, func(t *testing.T) {
			if _, err := Unmarshal(mutate()); err == nil {
				t.Fatal("corrupt stream decoded cleanly")
			}
		})
	}
	corrupt("bad-version", func() []byte {
		var w bits.Writer
		w.WriteUvarint(codecVersion + 1)
		return w.Bytes()
	})
	corrupt("truncated", func() []byte { return good[:len(good)/2] })
	corrupt("empty", func() []byte { return nil })
	corrupt("trailing-garbage", func() []byte { return append(append([]byte{}, good...), 0xFF, 0xFF) })
	corrupt("hostile-hop-count", func() []byte {
		var w bits.Writer
		w.WriteUvarint(codecVersion)
		for i := 0; i < 5; i++ {
			w.WriteUvarint(0) // src, dst+1... all zero (dst = -1)
		}
		w.WriteUvarint(1 << 40) // hop count far beyond the stream
		return w.Bytes()
	})
	corrupt("phase-out-of-range", func() []byte {
		tr := &Trace{Src: 1, Dst: 2, Hops: []Hop{{From: 1, To: 2, Dist: 1}}}
		var w bits.Writer
		w.WriteUvarint(codecVersion)
		w.WriteUvarint(uint64(tr.Src))
		w.WriteUvarint(uint64(tr.Dst + 1))
		w.WriteUvarint(0) // prep
		w.WriteUvarint(0) // attempts
		w.WriteUvarint(0) // drops
		w.WriteUvarint(1)
		w.WriteUvarint(1)                         // from
		w.WriteUvarint(3)                         // to+1
		w.WriteBits(uint64(NumPhases), phaseBits) // invalid phase
		w.WriteUvarint(0)
		w.WriteBits(math.Float64bits(1), 64)
		return w.Bytes()
	})
	corrupt("nan-distance", func() []byte {
		var w bits.Writer
		w.WriteUvarint(codecVersion)
		w.WriteUvarint(1)
		w.WriteUvarint(3)
		w.WriteUvarint(0)
		w.WriteUvarint(0)
		w.WriteUvarint(0)
		w.WriteUvarint(1)
		w.WriteUvarint(1)
		w.WriteUvarint(3)
		w.WriteBits(0, phaseBits)
		w.WriteUvarint(0)
		w.WriteBits(math.Float64bits(math.NaN()), 64)
		return w.Bytes()
	})
	corrupt("negative-distance", func() []byte {
		var w bits.Writer
		w.WriteUvarint(codecVersion)
		w.WriteUvarint(1)
		w.WriteUvarint(3)
		w.WriteUvarint(0)
		w.WriteUvarint(0)
		w.WriteUvarint(0)
		w.WriteUvarint(1)
		w.WriteUvarint(1)
		w.WriteUvarint(3)
		w.WriteBits(0, phaseBits)
		w.WriteUvarint(0)
		w.WriteBits(math.Float64bits(-1), 64)
		return w.Bytes()
	})

	// Corrupt streams surface ErrCorrupt (distinguishable from short
	// reads) for the cases that are structurally wrong rather than short.
	var w bits.Writer
	w.WriteUvarint(codecVersion + 3)
	if _, err := Unmarshal(w.Bytes()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("version mismatch should wrap ErrCorrupt, got %v", err)
	}
}

func TestStretchBuckets(t *testing.T) {
	if got := StretchBucket(1.0); got != 0 {
		t.Fatalf("StretchBucket(1.0) = %d, want 0", got)
	}
	if got := StretchBucket(9.4); got != len(StretchBucketEdges)-1 {
		t.Fatalf("StretchBucket(9.4) = %d, want last finite bucket", got)
	}
	// A 9+eps violation lands in the overflow bucket.
	if got := StretchBucket(9.6); got != len(StretchBucketEdges) {
		t.Fatalf("StretchBucket(9.6) = %d, want overflow %d", got, len(StretchBucketEdges))
	}
	h := StretchHistogram([]float64{1, 1.04, 2.2, 100, math.NaN()})
	if len(h) != len(StretchBucketEdges)+1 {
		t.Fatalf("histogram has %d buckets, want %d", len(h), len(StretchBucketEdges)+1)
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 4 {
		t.Fatalf("histogram counted %d values, want 4 (NaN skipped)", total)
	}
	if h[len(h)-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", h[len(h)-1])
	}
}
