package server

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// cacheKey identifies one route query. gen is the engine state
// generation the route was computed against: reload advances the
// generation, making every old entry unreachable (they age out of the
// LRU instead of requiring a stop-the-world purge), and a slow query
// that finishes against the old state can never poison the new one.
type cacheKey struct {
	scheme   string
	src, dst int
	gen      uint64
}

// routeCache is a sharded LRU over completed route results. Shards keep
// lock contention off the hot path when many clients hit the cache
// concurrently; each shard holds its own lock, map and recency list.
type routeCache struct {
	shards  []*cacheShard
	mask    uint64
	hits    atomic.Uint64 // guarded by atomic
	misses  atomic.Uint64 // guarded by atomic
	evicted atomic.Uint64 // guarded by atomic
}

type cacheShard struct {
	mu  sync.Mutex
	cap int                        // guarded by mu
	ll  *list.List                 // guarded by mu; front = most recent
	m   map[cacheKey]*list.Element // guarded by mu
}

type cacheEntry struct {
	key cacheKey
	val *RouteResult
}

const cacheShards = 16 // power of two

// newRouteCache builds a cache bounded at capacity entries total.
// capacity <= 0 disables caching (every lookup misses). Capacities
// below cacheShards get fewer shards (the largest power of two not
// exceeding capacity) so the shards*per bound never exceeds capacity.
func newRouteCache(capacity int) *routeCache {
	shards := cacheShards
	for capacity > 0 && shards > capacity {
		shards /= 2
	}
	c := &routeCache{shards: make([]*cacheShard, shards), mask: uint64(shards - 1)}
	per := capacity / shards
	for i := range c.shards {
		c.shards[i] = &cacheShard{cap: per, ll: list.New(), m: make(map[cacheKey]*list.Element)}
	}
	return c
}

// hash mixes the key fields; FNV-1a over the scheme name plus the
// endpoint coordinates is plenty for shard selection.
func (c *routeCache) hash(k cacheKey) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k.scheme); i++ {
		h = (h ^ uint64(k.scheme[i])) * 1099511628211
	}
	h = (h ^ uint64(k.src)) * 1099511628211
	h = (h ^ uint64(k.dst)) * 1099511628211
	h = (h ^ k.gen) * 1099511628211
	return h
}

// Get returns the cached result for the key at the given generation.
func (c *routeCache) Get(scheme string, src, dst int, gen uint64) (*RouteResult, bool) {
	k := cacheKey{scheme: scheme, src: src, dst: dst, gen: gen}
	s := c.shards[c.hash(k)&c.mask]
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[k]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	s.ll.MoveToFront(el)
	c.hits.Add(1)
	// Read val under the lock: Put overwrites it in place when the key
	// already exists, so reading after Unlock would race. The counters
	// are atomics and ride inside the critical section, like liteCache.
	return el.Value.(*cacheEntry).val, true
}

// Put stores a result under the given generation, evicting the least
// recently used entry of the shard when full.
func (c *routeCache) Put(scheme string, src, dst int, gen uint64, v *RouteResult) {
	k := cacheKey{scheme: scheme, src: src, dst: dst, gen: gen}
	s := c.shards[c.hash(k)&c.mask]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cap <= 0 {
		return
	}
	if el, ok := s.m[k]; ok {
		el.Value.(*cacheEntry).val = v
		s.ll.MoveToFront(el)
		return
	}
	s.m[k] = s.ll.PushFront(&cacheEntry{key: k, val: v})
	if s.ll.Len() > s.cap {
		old := s.ll.Back()
		s.ll.Remove(old)
		delete(s.m, old.Value.(*cacheEntry).key)
		c.evicted.Add(1)
	}
}

// Len returns the total resident entries (including not-yet-evicted
// stale generations).
func (c *routeCache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats reports cumulative counters.
func (c *routeCache) Stats() (hits, misses, evicted uint64, size int) {
	return c.hits.Load(), c.misses.Load(), c.evicted.Load(), c.Len()
}
