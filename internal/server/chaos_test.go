package server

import (
	"net/http/httptest"
	"testing"
)

func newChaosEngine(t testing.TB, p *ChaosParams, cacheEntries int) *Engine {
	t.Helper()
	eng, err := New(Config{
		Build:        geometricBuild(80),
		Seed:         1,
		Eps:          0.25,
		Schemes:      []string{"full-table", "simple-labeled"},
		CacheEntries: cacheEntries,
		Chaos:        p,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestChaosZeroLossMatchesPlainRoute pins that the chaos path runs the
// same step functions: with loss 0 every query delivers first try with
// the exact walk the plain engine serves.
func TestChaosZeroLossMatchesPlainRoute(t *testing.T) {
	plain := newTestEngine(t, []string{"full-table"}, 0)
	chaotic := newChaosEngine(t, &ChaosParams{Loss: 0}, 0)
	for dst := 1; dst < 20; dst++ {
		want, err := plain.Route("full-table", 0, dst)
		if err != nil {
			t.Fatal(err)
		}
		got, err := chaotic.Route("full-table", 0, dst)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cost != want.Cost || got.Hops != want.Hops || got.Stretch != want.Stretch {
			t.Fatalf("dst %d: chaos (cost %v, hops %d) vs plain (cost %v, hops %d)",
				dst, got.Cost, got.Hops, want.Cost, want.Hops)
		}
		if got.Attempts != 1 || got.Drops != 0 {
			t.Fatalf("dst %d: zero-loss chaos reported attempts=%d drops=%d", dst, got.Attempts, got.Drops)
		}
	}
}

// TestChaosRetriesAndCounters drives enough queries through a lossy
// engine that drops and retries must both occur, and checks the
// /metrics counters and that the cache is bypassed.
func TestChaosRetriesAndCounters(t *testing.T) {
	eng := newChaosEngine(t, &ChaosParams{Loss: 0.3, Seed: 7}, 1024)
	delivered := 0
	for i := 0; i < 200; i++ {
		dst := 1 + i%40
		res, err := eng.Route("simple-labeled", 0, dst)
		if err == nil {
			delivered++
			if res.Cached {
				t.Fatal("chaos route served from cache")
			}
		}
	}
	if delivered == 0 {
		t.Fatal("no deliveries at 30% loss with retries")
	}
	snap := eng.Metrics()
	if !snap.Chaos.Enabled || snap.Chaos.Loss != 0.3 {
		t.Fatalf("chaos snapshot not populated: %+v", snap.Chaos)
	}
	if snap.Chaos.Drops == 0 || snap.Chaos.Retries == 0 {
		t.Fatalf("no drops/retries recorded at 30%% loss: %+v", snap.Chaos)
	}
	if snap.Cache.Hits != 0 || snap.Cache.Misses != 0 {
		t.Fatalf("chaos routes touched the cache: %+v", snap.Cache)
	}
}

// TestChaosFailedDeliveriesSurface forces total loss: every query must
// fail with an explicit error (not a panic, not a bogus path) and be
// counted.
func TestChaosFailedDeliveriesSurface(t *testing.T) {
	eng := newChaosEngine(t, &ChaosParams{Loss: 1, MaxAttempts: 3}, 0)
	for i := 0; i < 10; i++ {
		if _, err := eng.Route("full-table", 0, 1+i); err == nil {
			t.Fatal("delivered across loss-1 links")
		}
	}
	snap := eng.Metrics()
	if snap.Chaos.FailedDeliveries != 10 {
		t.Fatalf("failed deliveries %d, want 10", snap.Chaos.FailedDeliveries)
	}
	if snap.Chaos.Drops != 30 {
		t.Fatalf("drops %d, want 30 (10 queries x 3 attempts)", snap.Chaos.Drops)
	}
}

// TestChaosOverHTTP exercises the full daemon path: a lossy engine
// behind the HTTP handler still answers /route, and /metrics exposes
// the chaos counters.
func TestChaosOverHTTP(t *testing.T) {
	eng := newChaosEngine(t, &ChaosParams{Loss: 0.2, Seed: 3}, 0)
	srv := httptest.NewServer(eng.Handler())
	defer srv.Close()

	okCount, failCount := 0, 0
	for i := 0; i < 100; i++ {
		var out RouteResult
		code := postJSON(t, srv.URL+"/route", RouteRequest{Scheme: "full-table", Src: i % 30, Dst: (i + 7) % 30}, &out)
		switch code {
		case 200:
			okCount++
		case 422:
			failCount++
		default:
			t.Fatalf("unexpected status %d", code)
		}
	}
	if okCount == 0 {
		t.Fatal("no successful deliveries at 20% loss")
	}
	var snap MetricsSnapshot
	if code := getJSON(t, srv.URL+"/metrics", &snap); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if !snap.Chaos.Enabled {
		t.Fatal("chaos not reported enabled on /metrics")
	}
	if snap.Chaos.Drops == 0 {
		t.Fatal("no drops on /metrics at 20% loss")
	}
	if int(snap.Chaos.FailedDeliveries) != failCount {
		t.Fatalf("failed deliveries %d on /metrics, saw %d 422s", snap.Chaos.FailedDeliveries, failCount)
	}
}
