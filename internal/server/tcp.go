package server

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"compactrouting/internal/bits"
	"compactrouting/internal/frame"
)

// ErrTCPServerClosed is returned by Serve once Shutdown has been
// initiated and the accept loop has stopped.
var ErrTCPServerClosed = errors.New("server: tcp server closed")

const (
	// drainPollInterval bounds how long an idle connection handler can go
	// without noticing Shutdown: header reads run under this deadline and
	// re-check the draining flag on timeout. bufio keeps partially read
	// bytes across the timeout, so no frame prefix is ever lost.
	drainPollInterval = 500 * time.Millisecond
	// frameIOTimeout bounds reading the remainder of a frame whose header
	// has arrived, and writing a response.
	frameIOTimeout = 30 * time.Second
	// connReadBufSize sizes the per-connection buffered reader.
	connReadBufSize = 32 << 10
)

// TCPServer serves the binary frame protocol (internal/frame) on raw
// TCP connections against the same Engine the HTTP handlers use, so
// both protocols share one route cache, one generation counter, and one
// metrics block. Each connection gets a goroutine that decodes frames
// into reused buffers and answers through Engine.RouteLite.
type TCPServer struct {
	e        *Engine
	mu       sync.Mutex
	ln       net.Listener          // guarded by mu
	conns    map[net.Conn]struct{} // guarded by mu
	draining atomic.Bool           // guarded by atomic
	wg       sync.WaitGroup
}

// NewTCPServer wraps an engine with a frame-protocol listener.
func NewTCPServer(e *Engine) *TCPServer {
	return &TCPServer{e: e, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on ln until Shutdown, returning
// ErrTCPServerClosed on a clean stop.
func (s *TCPServer) Serve(ln net.Listener) error {
	if !s.bind(ln) {
		ln.Close()
		return ErrTCPServerClosed
	}
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return ErrTCPServerClosed
			}
			return err
		}
		s.track(c)
		s.wg.Add(1)
		go s.handleConn(c)
	}
}

// bind stores the listener, refusing when the server is already
// draining.
func (s *TCPServer) bind(ln net.Listener) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.ln = ln
	return true
}

// track registers a live connection; untrack removes it.
func (s *TCPServer) track(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conns[c] = struct{}{}
}

func (s *TCPServer) untrack(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, c)
}

// closeListener closes the bound listener, if Serve got that far.
func (s *TCPServer) closeListener() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
}

// closeConns force-closes every live connection.
func (s *TCPServer) closeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.conns {
		c.Close()
	}
}

// Shutdown drains the server: the listener closes immediately, handlers
// finish the frame they are serving (they observe the draining flag
// between frames, within drainPollInterval), and Shutdown returns when
// every handler has exited. If ctx expires first, remaining connections
// are force-closed and their handlers reaped before returning ctx's
// error.
func (s *TCPServer) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.closeListener()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.closeConns()
		<-done
		return ctx.Err()
	}
}

func (s *TCPServer) handleConn(c net.Conn) {
	s.e.met.tcpConns.Add(1)
	defer func() {
		s.untrack(c)
		c.Close()
		s.e.met.tcpConns.Add(-1)
		s.wg.Done()
	}()

	// Per-connection reusable state: after warm-up, a route frame is
	// served without allocating (the same decode→route→encode cycle
	// TestFramedRoutePathAllocs pins at 0 allocs/op).
	br := bufio.NewReaderSize(c, connReadBufSize)
	var (
		payload []byte
		rd      bits.Reader
		w       bits.Writer
		req     frame.RouteRequest
		resp    frame.RouteResponse
		out     []byte
	)

	for {
		if s.draining.Load() {
			return
		}
		c.SetReadDeadline(time.Now().Add(drainPollInterval))
		hdr, err := br.Peek(frame.HeaderSize)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue // re-check draining; buffered bytes are preserved
			}
			if errors.Is(err, io.EOF) && br.Buffered() == 0 {
				return // clean close between frames
			}
			s.e.met.tcpBadFrames.Add(1)
			return
		}
		h, err := frame.ParseHeader(hdr)
		if err != nil {
			s.e.met.tcpBadFrames.Add(1)
			out = s.writeError(c, &w, out, 0, err.Error())
			return
		}
		br.Discard(frame.HeaderSize)
		c.SetReadDeadline(time.Now().Add(frameIOTimeout))
		if int(h.PayloadLen) > cap(payload) {
			payload = make([]byte, h.PayloadLen)
		}
		payload = payload[:h.PayloadLen]
		if _, err := io.ReadFull(br, payload); err != nil {
			s.e.met.tcpBadFrames.Add(1)
			return
		}

		start := time.Now()
		switch h.Type {
		case frame.TypeSchemesRequest:
			sw := s.e.SchemesWire()
			w.Reset()
			sw.Encode(&w)
			out, err = frame.AppendFrame(out[:0], frame.TypeSchemesResponse, h.RequestID, w.Bytes())
		case frame.TypeRouteRequest:
			if derr := req.DecodeInto(payload, &rd); derr != nil {
				s.e.met.tcpBadFrames.Add(1)
				out = s.writeError(c, &w, out, h.RequestID, derr.Error())
				return
			}
			resp.Results = resp.Results[:0]
			for _, p := range req.Pairs {
				res := s.e.RouteLite(req.Scheme, int(p.Src), int(p.Dst))
				if res.Status != frame.StatusOK {
					s.e.met.tcpErrors.Add(1)
				}
				resp.Results = append(resp.Results, res)
			}
			s.e.met.tcpRoutes.Add(uint64(len(req.Pairs)))
			w.Reset()
			resp.Encode(&w)
			out, err = frame.AppendFrame(out[:0], frame.TypeRouteResponse, h.RequestID, w.Bytes())
		default:
			// The client sent a server-to-client frame type.
			s.e.met.tcpBadFrames.Add(1)
			out = s.writeError(c, &w, out, h.RequestID, "frame: unexpected frame type from client")
			return
		}
		if err != nil {
			s.e.met.tcpBadFrames.Add(1)
			out = s.writeError(c, &w, out, h.RequestID, err.Error())
			return
		}
		c.SetWriteDeadline(time.Now().Add(frameIOTimeout))
		if _, err := c.Write(out); err != nil {
			return
		}
		s.e.met.tcpFrames.Add(1)
		s.e.met.tcpLatency.Observe(time.Since(start))
	}
}

// writeError best-effort sends a TypeError frame before the connection
// closes; the (possibly regrown) output buffer is returned for reuse.
func (s *TCPServer) writeError(c net.Conn, w *bits.Writer, out []byte, reqID uint64, msg string) []byte {
	w.Reset()
	frame.EncodeError(w, msg)
	b, err := frame.AppendFrame(out[:0], frame.TypeError, reqID, w.Bytes())
	if err != nil {
		return out
	}
	c.SetWriteDeadline(time.Now().Add(frameIOTimeout))
	c.Write(b)
	return b
}
