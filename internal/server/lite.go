package server

import (
	"time"

	"compactrouting/internal/frame"
)

// RouteLite answers one binary-plane query: scheme addressed by compile
// order index, result as a wire shape (no path). The happy path — slot
// cache hit or sim.RouteLite miss — performs zero heap allocations;
// TestFramedRoutePathAllocs pins the full decode→route→encode cycle at
// 0 allocs/op for both outcomes. Latency and route-shape observations
// land in the same metrics block the HTTP handlers feed, so /metrics
// aggregates both protocols.
//
// When the engine runs with fault injection or trace sampling, the
// query falls back to the full route path (allocating) so chaos draws
// and sampled traces stay globally consistent across protocols.
//
//determinlint:hotpath
func (e *Engine) RouteLite(schemeIdx, src, dst int) frame.RouteResult {
	st := e.st.Load()
	if schemeIdx < 0 || schemeIdx >= len(st.list) {
		e.met.routeErrors.Add(1)
		return frame.RouteResult{Status: frame.StatusBadScheme}
	}
	n := st.nw.N()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		e.met.routeErrors.Add(1)
		return frame.RouteResult{Status: frame.StatusBadPair}
	}
	name := st.order[schemeIdx]
	if e.chaos != nil || e.traceSample > 0 {
		//determinlint:allow hotpath the chaos/trace fallback is the documented allocating path: it runs only when fault injection or sampling is enabled, never in the pinned zero-alloc configuration
		full, err := e.route(name, src, dst, false)
		if err != nil {
			e.met.routeErrors.Add(1)
			return frame.RouteResult{Status: frame.StatusRouteFailed}
		}
		return frame.RouteResult{
			Status:        frame.StatusOK,
			Cached:        full.Cached,
			Hops:          int32(full.Hops),
			MaxHeaderBits: int32(full.MaxHeaderBits),
			Cost:          full.Cost,
			Optimal:       full.Optimal,
		}
	}
	start := time.Now()
	if e.lite != nil {
		if res, ok := e.lite.get(schemeIdx, src, dst, st.gen); ok {
			res.Cached = true
			e.met.routeLatency.Observe(time.Since(start))
			e.met.routeLatencyHit.Observe(time.Since(start))
			return res
		}
	}
	lr := st.list[schemeIdx].runLite(src, dst)
	if lr.Err != nil {
		e.met.routeErrors.Add(1)
		return frame.RouteResult{Status: frame.StatusRouteFailed}
	}
	opt := st.nw.Dist(src, dst)
	res := frame.RouteResult{
		Status:        frame.StatusOK,
		Hops:          int32(lr.Hops),
		MaxHeaderBits: int32(lr.MaxHeaderBits),
		Cost:          lr.Cost,
		Optimal:       opt,
	}
	e.met.observeRoute(name, stretch(lr.Cost, opt), lr.Hops, lr.MaxHeaderBits)
	if e.lite != nil {
		e.lite.put(schemeIdx, src, dst, st.gen, res)
	}
	e.met.routeLatency.Observe(time.Since(start))
	e.met.routeLatencyMiss.Observe(time.Since(start))
	return res
}

// SchemesWire describes the engine for a TypeSchemesResponse frame.
func (e *Engine) SchemesWire() frame.SchemesResponse {
	st := e.st.Load()
	return frame.SchemesResponse{
		N:          st.nw.N(),
		Generation: st.gen,
		Names:      append([]string(nil), st.order...),
	}
}
