package server

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"compactrouting"
	"compactrouting/internal/bits"
	"compactrouting/internal/core"
	"compactrouting/internal/frame"
)

func tcpTestEngine(t testing.TB, cacheEntries int, schemes ...string) *Engine {
	t.Helper()
	if len(schemes) == 0 {
		schemes = []string{"full-table", "simple-labeled"}
	}
	eng, err := New(Config{
		Build: func(int64) (*compactrouting.Network, error) {
			return compactrouting.GridNetwork(5, 5)
		},
		Seed:         3,
		Eps:          0.25,
		Schemes:      schemes,
		CacheEntries: cacheEntries,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// startTCP serves the frame protocol on a loopback listener and returns
// the address, the server, and the Serve goroutine's error channel.
func startTCP(t testing.TB, eng *Engine) (string, *TCPServer, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewTCPServer(eng)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	return ln.Addr().String(), srv, errc
}

type testConn struct {
	c  net.Conn
	id uint64
}

func dialFrame(t testing.TB, addr string) *testConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return &testConn{c: c}
}

// roundTrip sends one frame and reads one response frame back.
func (tc *testConn) roundTrip(t testing.TB, typ frame.Type, enc func(*bits.Writer)) (frame.Header, []byte) {
	t.Helper()
	tc.id++
	var w bits.Writer
	if enc != nil {
		enc(&w)
	}
	buf, err := frame.AppendFrame(nil, typ, tc.id, w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.c.Write(buf); err != nil {
		t.Fatal(err)
	}
	return tc.readFrame(t)
}

func (tc *testConn) readFrame(t testing.TB) (frame.Header, []byte) {
	t.Helper()
	var hdr [frame.HeaderSize]byte
	tc.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(tc.c, hdr[:]); err != nil {
		t.Fatal(err)
	}
	h, err := frame.ParseHeader(hdr[:])
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, h.PayloadLen)
	if _, err := io.ReadFull(tc.c, payload); err != nil {
		t.Fatal(err)
	}
	return h, payload
}

func TestTCPServeSchemesAndRoutes(t *testing.T) {
	eng := tcpTestEngine(t, 1<<10)
	addr, srv, _ := startTCP(t, eng)
	defer srv.Shutdown(context.Background())

	tc := dialFrame(t, addr)
	defer tc.c.Close()

	h, payload := tc.roundTrip(t, frame.TypeSchemesRequest, nil)
	if h.Type != frame.TypeSchemesResponse || h.RequestID != tc.id {
		t.Fatalf("header %+v", h)
	}
	var sr frame.SchemesResponse
	var rd bits.Reader
	if err := sr.DecodeInto(payload, &rd); err != nil {
		t.Fatal(err)
	}
	if sr.N != 25 || len(sr.Names) != 2 || sr.Names[0] != "full-table" {
		t.Fatalf("schemes %+v", sr)
	}

	req := frame.RouteRequest{Scheme: 0, Pairs: []frame.Pair{{Src: 0, Dst: 24}, {Src: 3, Dst: 3}, {Src: 0, Dst: 99}}}
	h, payload = tc.roundTrip(t, frame.TypeRouteRequest, req.Encode)
	if h.Type != frame.TypeRouteResponse {
		t.Fatalf("header %+v", h)
	}
	var resp frame.RouteResponse
	if err := resp.DecodeInto(payload, &rd); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("%d results", len(resp.Results))
	}
	if resp.Results[0].Status != frame.StatusOK || resp.Results[0].Cost <= 0 {
		t.Fatalf("result 0: %+v", resp.Results[0])
	}
	full, err := eng.Route("full-table", 0, 24)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Cost != full.Cost || int(resp.Results[0].Hops) != full.Hops {
		t.Fatalf("tcp %+v diverges from http-path %+v", resp.Results[0], full)
	}
	if resp.Results[2].Status != frame.StatusBadPair {
		t.Fatalf("result 2: %+v", resp.Results[2])
	}

	// Both protocols share the metrics block: the TCP counters moved.
	m := eng.Metrics()
	if m.TCP.Frames != 2 || m.TCP.Routes != 3 || m.TCP.RouteErrors != 1 {
		t.Fatalf("tcp metrics %+v", m.TCP)
	}
}

func TestTCPRejectsBadFrames(t *testing.T) {
	eng := tcpTestEngine(t, 0)
	addr, srv, _ := startTCP(t, eng)
	defer srv.Shutdown(context.Background())

	tc := dialFrame(t, addr)
	defer tc.c.Close()
	if _, err := tc.c.Write([]byte("XXXXXXXXXXXXXXXXXXXX")); err != nil {
		t.Fatal(err)
	}
	h, payload := tc.readFrame(t)
	if h.Type != frame.TypeError {
		t.Fatalf("got %+v, want error frame", h)
	}
	var rd bits.Reader
	if msg, err := frame.DecodeError(payload, &rd); err != nil || msg == "" {
		t.Fatalf("error payload %q, %v", msg, err)
	}
	// The server closes the connection after a protocol error.
	var one [1]byte
	tc.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := tc.c.Read(one[:]); err != io.EOF {
		t.Fatalf("connection still open after bad frame: %v", err)
	}
	if eng.Metrics().TCP.BadFrames == 0 {
		t.Fatal("bad frame not counted")
	}
}

// TestTCPShutdownDrains is the graceful-drain regression test: a frame
// in flight when Shutdown begins must still receive its complete
// response, the connection must then close, and Serve must return
// ErrTCPServerClosed.
func TestTCPShutdownDrains(t *testing.T) {
	eng := tcpTestEngine(t, 1<<10)
	addr, srv, errc := startTCP(t, eng)

	tc := dialFrame(t, addr)
	defer tc.c.Close()
	// Sanity round trip so the handler loop is live.
	tc.roundTrip(t, frame.TypeSchemesRequest, nil)

	// Queue a large batch, then shut down while it is (likely) being
	// served. The drain contract: the full response arrives regardless.
	req := frame.RouteRequest{Scheme: 0}
	for s := 0; s < 25; s++ {
		for d := 0; d < 25; d++ {
			req.Pairs = append(req.Pairs, frame.Pair{Src: int32(s), Dst: int32(d)})
		}
	}
	tc.id++
	var w bits.Writer
	req.Encode(&w)
	buf, err := frame.AppendFrame(nil, frame.TypeRouteRequest, tc.id, w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.c.Write(buf); err != nil {
		t.Fatal(err)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	h, payload := tc.readFrame(t)
	if h.Type != frame.TypeRouteResponse || h.RequestID != tc.id {
		t.Fatalf("drained response header %+v", h)
	}
	var resp frame.RouteResponse
	var rd bits.Reader
	if err := resp.DecodeInto(payload, &rd); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(req.Pairs) {
		t.Fatalf("drained %d results, want %d", len(resp.Results), len(req.Pairs))
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-errc; !errors.Is(err, ErrTCPServerClosed) {
		t.Fatalf("Serve returned %v", err)
	}
	// The drained connection is closed by the server.
	var one [1]byte
	tc.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := tc.c.Read(one[:]); err != io.EOF {
		t.Fatalf("connection open after drain: %v", err)
	}
	// New connections are refused.
	if c, err := net.Dial("tcp", addr); err == nil {
		c.Close()
		t.Fatal("listener still accepting after Shutdown")
	}
}

// TestSnapshotColdStartNoConstructors pins the load-and-serve
// guarantee: building an engine from a snapshot and serving its first
// queries — over both planes — must not invoke any scheme constructor.
func TestSnapshotColdStartNoConstructors(t *testing.T) {
	eng := tcpTestEngine(t, 1<<10, "full-table", "simple-labeled", "scale-free-labeled",
		"name-independent", "scale-free-name-independent", "single-tree")
	f, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	before := core.SchemeBuilds()
	eng2, err := NewFromSnapshot(Config{}, f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Schemes {
		if res := eng2.RouteLite(i, 0, 24); res.Status != frame.StatusOK {
			t.Fatalf("scheme %d first query: %+v", i, res)
		}
	}
	for _, sb := range f.Schemes {
		if _, err := eng2.Route(sb.Name, 1, 23); err != nil {
			t.Fatalf("scheme %s: %v", sb.Name, err)
		}
	}
	if after := core.SchemeBuilds(); after != before {
		t.Fatalf("cold start ran %d scheme constructors", after-before)
	}
}
