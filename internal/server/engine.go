// Package server is the serving layer of the repository: it compiles a
// set of routing schemes over one network ONCE and then answers
// route/stretch queries concurrently, the preprocessing/query split
// compact routing is designed around.
//
// The package is layered (see DESIGN.md §server architecture):
//
//	handlers (HTTP/JSON)  ->  Engine (schemes, worker pool)  ->  route cache (sharded LRU)
//	                                 |
//	                          sim.RouteOnce over sim.Router adapters
//
// Every scheme is driven through its internal/sim Router adapter — the
// same pure (table, header) step functions validated by the concurrent
// simulator — so a served route is byte-identical to the scheme's
// analyzed walk. The engine is race-clean: scheme tables are immutable
// after compilation, per-query state lives in the packet header, and
// reload swaps the whole immutable state atomically.
package server

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"compactrouting"
	"compactrouting/internal/baseline"
	"compactrouting/internal/bits"
	"compactrouting/internal/core"
	"compactrouting/internal/faultsim"
	"compactrouting/internal/graph"
	"compactrouting/internal/labeled"
	"compactrouting/internal/metric"
	"compactrouting/internal/nameind"
	"compactrouting/internal/par"
	"compactrouting/internal/sim"
)

// SchemeNames are the schemes the engine can compile, in report order.
var SchemeNames = []string{
	"simple-labeled",
	"scale-free-labeled",
	"name-independent",
	"scale-free-name-independent",
	"full-table",
	"single-tree",
}

// Config parameterizes an Engine.
type Config struct {
	// Build constructs the network for a given seed; called at startup
	// and again on every reload. Required.
	Build func(seed int64) (*compactrouting.Network, error)
	// Seed is the initial Build seed (also salts the name-independent
	// namings).
	Seed int64
	// Eps is the stretch parameter; clamped per scheme to its analyzed
	// range. Zero selects 0.25.
	Eps float64
	// Schemes to compile; nil compiles all of SchemeNames.
	Schemes []string
	// CacheEntries bounds the route cache (<= 0 disables caching).
	CacheEntries int
	// Workers bounds the batch fan-out pool; <= 0 uses GOMAXPROCS.
	Workers int
	// Chaos, when non-nil, injects per-hop packet loss into every served
	// route (with source-side retries) so the daemon's degradation under
	// faults can be observed live on /metrics.
	Chaos *ChaosParams
}

// ChaosParams configures the daemon's fault injection (routed -chaos).
type ChaosParams struct {
	// Loss is the per-hop drop probability in [0, 1].
	Loss float64
	// Seed keys the deterministic fault draws (0 uses Config.Seed).
	Seed int64
	// MaxAttempts bounds transmissions per query; <= 0 uses the
	// faultsim default policy's attempts.
	MaxAttempts int
}

// chaosRuntime is the compiled injection state shared by every scheme.
type chaosRuntime struct {
	in  *faultsim.Injector
	rel faultsim.Reliability
	seq atomic.Uint64 // per-query delivery ids: each query gets fresh draws
}

func newChaosRuntime(p *ChaosParams, fallbackSeed int64) *chaosRuntime {
	if p == nil {
		return nil
	}
	seed := p.Seed
	if seed == 0 {
		seed = fallbackSeed
	}
	rel := faultsim.DefaultReliability
	if p.MaxAttempts > 0 {
		rel.MaxAttempts = p.MaxAttempts
	}
	return &chaosRuntime{
		in:  faultsim.NewInjector(faultsim.FaultPlan{Seed: seed, Loss: p.Loss}),
		rel: rel,
	}
}

// RouteResult is one answered route query. Cached is set per response;
// all other fields are immutable once computed and may be shared
// between responses via the cache.
type RouteResult struct {
	Scheme        string  `json:"scheme"`
	Src           int     `json:"src"`
	Dst           int     `json:"dst"`
	Path          []int   `json:"path,omitempty"`
	Hops          int     `json:"hops"`
	Cost          float64 `json:"cost"`
	Optimal       float64 `json:"optimal"`
	Stretch       float64 `json:"stretch"`
	MaxHeaderBits int     `json:"max_header_bits"`
	Cached        bool    `json:"cached"`
	// Attempts and Drops report the reliability layer's work when the
	// engine runs with fault injection (zero otherwise).
	Attempts int `json:"attempts,omitempty"`
	Drops    int `json:"drops,omitempty"`
}

// SchemeInfo is the GET /schemes accounting for one compiled scheme,
// with sizes in bits of the actual serialization (internal/bits).
type SchemeInfo struct {
	Name          string  `json:"name"`
	Kind          string  `json:"kind"` // labeled | name-independent | baseline
	LabelBits     int     `json:"label_bits"`
	TableMaxBits  int     `json:"table_max_bits"`
	TableMeanBits float64 `json:"table_mean_bits"`
	TableTotal    int     `json:"table_total_bits"`
	BuildMillis   float64 `json:"build_ms"`
}

// GraphInfo describes the currently served network.
type GraphInfo struct {
	Nodes              int     `json:"nodes"`
	Edges              int     `json:"edges"`
	Seed               int64   `json:"seed"`
	Generation         uint64  `json:"generation"`
	Diameter           float64 `json:"diameter"`
	NormalizedDiameter float64 `json:"normalized_diameter"`
}

// scheme is one compiled scheme plus its type-erased query runners.
type scheme struct {
	info SchemeInfo
	run  func(src, dst int) sim.Result
	// chaos runs the same step functions under fault injection; nil
	// unless the engine was configured with ChaosParams.
	chaos func(src, dst int, id uint64) faultsim.Result
}

// state is the engine's immutable-after-build world; reload builds a
// fresh one and swaps the pointer.
type state struct {
	nw      *compactrouting.Network
	seed    int64
	gen     uint64
	schemes map[string]*scheme
	order   []string
}

// Engine owns the compiled schemes, the route cache and the metrics.
// All methods are safe for concurrent use.
type Engine struct {
	cfg     Config
	cache   *routeCache
	met     *metrics
	workers int
	chaos   *chaosRuntime // nil when fault injection is off
	st      atomic.Pointer[state]
	reload  sync.Mutex // serializes Reload, not queries
}

// New builds the network via cfg.Build(cfg.Seed) and compiles the
// configured schemes.
func New(cfg Config) (*Engine, error) {
	if cfg.Build == nil {
		return nil, fmt.Errorf("server: Config.Build is required")
	}
	if cfg.Eps == 0 {
		cfg.Eps = 0.25
	}
	if len(cfg.Schemes) == 0 {
		cfg.Schemes = SchemeNames
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		cfg:     cfg,
		cache:   newRouteCache(cfg.CacheEntries),
		met:     newMetrics(),
		workers: workers,
		chaos:   newChaosRuntime(cfg.Chaos, cfg.Seed),
	}
	st, err := e.build(cfg.Seed, 0)
	if err != nil {
		return nil, err
	}
	e.st.Store(st)
	return e, nil
}

// build constructs a full state: network plus every configured scheme.
func (e *Engine) build(seed int64, gen uint64) (*state, error) {
	nw, err := e.cfg.Build(seed)
	if err != nil {
		return nil, fmt.Errorf("server: build network: %w", err)
	}
	st := &state{nw: nw, seed: seed, gen: gen, schemes: make(map[string]*scheme)}
	// Schemes compile independently (shared graph/oracle are read-only),
	// so the whole set builds in parallel on startup and /reload; the
	// ordered MapErr keeps compile order — and any error — identical to
	// the serial loop it replaced.
	compiled, err := par.MapErr(len(e.cfg.Schemes), func(i int) (*scheme, error) {
		name := e.cfg.Schemes[i]
		s, err := compileScheme(name, nw.Graph(), nw.APSP(), e.cfg.Eps, seed, e.chaos)
		if err != nil {
			return nil, fmt.Errorf("server: compile %s: %w", name, err)
		}
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range e.cfg.Schemes {
		st.schemes[name] = compiled[i]
		st.order = append(st.order, name)
	}
	return st, nil
}

// bind wraps a generic Router into the engine's uniform runners. addr
// translates a destination NODE id into the scheme's address space (a
// label or an original name), so every scheme serves the same API. The
// second runner drives the identical step functions through
// faultsim.Deliver and is nil when chaos is off.
func bind[H sim.Header](g *graph.Graph, r sim.Router[H], addr func(int) int, maxHops int, ch *chaosRuntime) (func(int, int) sim.Result, func(int, int, uint64) faultsim.Result) {
	run := func(src, dst int) sim.Result {
		return sim.RouteOnce(g, r, src, addr(dst), maxHops)
	}
	if ch == nil {
		return run, nil
	}
	return run, func(src, dst int, id uint64) faultsim.Result {
		return faultsim.Deliver(g, r, src, addr(dst), maxHops, ch.in, ch.rel, id)
	}
}

func clamp(eps, hi float64) float64 {
	if eps > hi {
		return hi
	}
	return eps
}

// compileScheme builds one scheme and its adapter-backed runners. The
// hop budgets mirror cmd/routesim's per-scheme limits.
func compileScheme(name string, g *graph.Graph, a *metric.APSP, eps float64, seed int64, ch *chaosRuntime) (*scheme, error) {
	n := g.N()
	start := time.Now()
	var (
		run       func(int, int) sim.Result
		chaos     func(int, int, uint64) faultsim.Result
		kind      string
		labelBits int
		tableBits func(int) int
	)
	switch name {
	case "simple-labeled":
		s, err := labeled.NewSimple(g, a, clamp(eps, 0.5))
		if err != nil {
			return nil, err
		}
		run, chaos = bind(g, sim.SimpleLabeledRouter{S: s}, s.LabelOf, 0, ch)
		kind, labelBits, tableBits = "labeled", bits.UintBits(n), s.TableBits
	case "scale-free-labeled":
		s, err := labeled.NewScaleFree(g, a, clamp(eps, 0.25))
		if err != nil {
			return nil, err
		}
		run, chaos = bind(g, sim.ScaleFreeLabeledRouter{S: s}, s.LabelOf, 64*n, ch)
		kind, labelBits, tableBits = "labeled", bits.UintBits(n), s.TableBits
	case "name-independent":
		ne := clamp(eps, 1.0/3)
		under, err := labeled.NewSimple(g, a, ne)
		if err != nil {
			return nil, err
		}
		nm := nameind.RandomNaming(n, seed+2)
		s, err := nameind.NewSimple(g, a, nm, under, ne)
		if err != nil {
			return nil, err
		}
		run, chaos = bind(g, sim.NameIndependentRouter{S: s}, nm.NameOf, 256*n, ch)
		kind, labelBits, tableBits = "name-independent", bits.UintBits(nm.MaxName()+1), s.TableBits
	case "scale-free-name-independent":
		ne := clamp(eps, 0.25)
		under, err := labeled.NewScaleFree(g, a, ne)
		if err != nil {
			return nil, err
		}
		nm := nameind.RandomNaming(n, seed+2)
		s, err := nameind.NewScaleFree(g, a, nm, under, ne)
		if err != nil {
			return nil, err
		}
		run, chaos = bind(g, sim.ScaleFreeNameIndependentRouter{S: s}, nm.NameOf, 512*n, ch)
		kind, labelBits, tableBits = "name-independent", bits.UintBits(nm.MaxName()+1), s.TableBits
	case "full-table":
		s := baseline.NewFullTable(g, a)
		run, chaos = bind(g, sim.FullTableRouter{S: s}, func(v int) int { return v }, 0, ch)
		kind, labelBits, tableBits = "baseline", bits.UintBits(n), s.TableBits
	case "single-tree":
		s, err := baseline.NewSingleTree(g, 0)
		if err != nil {
			return nil, err
		}
		run, chaos = bind(g, sim.SingleTreeRouter{S: s}, func(v int) int { return v }, 0, ch)
		kind, labelBits, tableBits = "baseline", bits.UintBits(n), s.TableBits
	default:
		return nil, fmt.Errorf("unknown scheme %q (have %v)", name, SchemeNames)
	}
	tb := core.Tables(tableBits, n)
	return &scheme{
		info: SchemeInfo{
			Name:          name,
			Kind:          kind,
			LabelBits:     labelBits,
			TableMaxBits:  tb.MaxBits,
			TableMeanBits: tb.MeanBits,
			TableTotal:    tb.TotalBits,
			BuildMillis:   float64(time.Since(start).Microseconds()) / 1000,
		},
		run:   run,
		chaos: chaos,
	}, nil
}

// Route answers one query, consulting the cache first. The result is
// returned by value so callers may set Cached without racing the cached
// copy; Path is shared and must not be mutated.
func (e *Engine) Route(schemeName string, src, dst int) (RouteResult, error) {
	st := e.st.Load()
	s, ok := st.schemes[schemeName]
	if !ok {
		return RouteResult{}, fmt.Errorf("unknown scheme %q (have %v)", schemeName, st.order)
	}
	n := st.nw.N()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return RouteResult{}, fmt.Errorf("pair (%d, %d) out of range [0, %d)", src, dst, n)
	}
	if e.chaos != nil {
		return e.routeChaos(st, s, schemeName, src, dst)
	}
	if v, ok := e.cache.Get(schemeName, src, dst, st.gen); ok {
		out := *v
		out.Cached = true
		return out, nil
	}
	res := s.run(src, dst)
	if res.Err != nil {
		return RouteResult{}, fmt.Errorf("route %d -> %d: %w", src, dst, res.Err)
	}
	opt := st.nw.Dist(src, dst)
	out := &RouteResult{
		Scheme:        schemeName,
		Src:           src,
		Dst:           dst,
		Path:          res.Path,
		Hops:          len(res.Path) - 1,
		Cost:          res.Cost,
		Optimal:       opt,
		Stretch:       stretch(res.Cost, opt),
		MaxHeaderBits: res.MaxHeaderBits,
	}
	e.cache.Put(schemeName, src, dst, st.gen, out)
	return *out, nil
}

// routeChaos serves one query through the fault injector. Chaos routes
// bypass the cache entirely: every query draws its own faults (a fresh
// delivery id), so two queries for the same pair legitimately differ in
// attempts, drops, and even outcome.
func (e *Engine) routeChaos(st *state, s *scheme, schemeName string, src, dst int) (RouteResult, error) {
	id := e.chaos.seq.Add(1)
	res := s.chaos(src, dst, id)
	e.met.chaosDrops.Add(uint64(res.Drops))
	if res.Attempts > 1 {
		e.met.chaosRetries.Add(uint64(res.Attempts - 1))
	}
	if !res.Delivered {
		e.met.chaosFailed.Add(1)
		if res.Sim.Err != nil {
			return RouteResult{}, fmt.Errorf("route %d -> %d: %w", src, dst, res.Sim.Err)
		}
		return RouteResult{}, fmt.Errorf("route %d -> %d: delivery failed after %d attempts (%d packets dropped)",
			src, dst, res.Attempts, res.Drops)
	}
	opt := st.nw.Dist(src, dst)
	return RouteResult{
		Scheme:        schemeName,
		Src:           src,
		Dst:           dst,
		Path:          res.Sim.Path,
		Hops:          len(res.Sim.Path) - 1,
		Cost:          res.Sim.Cost,
		Optimal:       opt,
		Stretch:       stretch(res.Sim.Cost, opt),
		MaxHeaderBits: res.Sim.MaxHeaderBits,
		Attempts:      res.Attempts,
		Drops:         res.Drops,
	}, nil
}

func stretch(cost, opt float64) float64 {
	if opt == 0 {
		return 1
	}
	return cost / opt
}

// BatchSummary aggregates one RouteBatch call.
type BatchSummary struct {
	Count       int     `json:"count"`
	Errors      int     `json:"errors"`
	CacheHits   int     `json:"cache_hits"`
	TotalHops   int     `json:"total_hops"`
	MeanStretch float64 `json:"mean_stretch"`
	MaxStretch  float64 `json:"max_stretch"`
}

// RouteBatch fans the pairs out over the bounded worker pool and
// returns per-pair results (index-aligned with pairs; failed queries
// have an empty Scheme and count as summary errors).
func (e *Engine) RouteBatch(schemeName string, pairs [][2]int) ([]RouteResult, BatchSummary) {
	results := make([]RouteResult, len(pairs))
	errs := make([]error, len(pairs))
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := e.workers
	if workers > len(pairs) {
		workers = len(pairs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pairs) {
					return
				}
				results[i], errs[i] = e.Route(schemeName, pairs[i][0], pairs[i][1])
			}
		}()
	}
	wg.Wait()

	var sum BatchSummary
	sum.Count = len(pairs)
	var stretchSum float64
	routed := 0
	for i := range results {
		if errs[i] != nil {
			sum.Errors++
			continue
		}
		routed++
		if results[i].Cached {
			sum.CacheHits++
		}
		sum.TotalHops += results[i].Hops
		stretchSum += results[i].Stretch
		if results[i].Stretch > sum.MaxStretch {
			sum.MaxStretch = results[i].Stretch
		}
	}
	if routed > 0 {
		sum.MeanStretch = stretchSum / float64(routed)
	}
	return results, sum
}

// Reload rebuilds the network with the given seed, recompiles every
// scheme and atomically swaps the serving state. The new state carries
// a new generation, which invalidates every cached route: cache keys
// include the generation, so entries computed against the old graph
// are unreachable and age out under LRU pressure. In-flight queries
// finish against the old state.
func (e *Engine) Reload(seed int64) error {
	e.reload.Lock()
	defer e.reload.Unlock()
	old := e.st.Load()
	st, err := e.build(seed, old.gen+1)
	if err != nil {
		return err
	}
	e.st.Store(st)
	e.met.reloads.Add(1)
	return nil
}

// Graph describes the current network.
func (e *Engine) Graph() GraphInfo {
	st := e.st.Load()
	return GraphInfo{
		Nodes:              st.nw.N(),
		Edges:              st.nw.M(),
		Seed:               st.seed,
		Generation:         st.gen,
		Diameter:           st.nw.Diameter(),
		NormalizedDiameter: st.nw.NormalizedDiameter(),
	}
}

// Schemes lists the compiled schemes' accounting in compile order.
func (e *Engine) Schemes() []SchemeInfo {
	st := e.st.Load()
	out := make([]SchemeInfo, 0, len(st.order))
	for _, name := range st.order {
		out = append(out, st.schemes[name].info)
	}
	return out
}

// Metrics snapshots the live counters.
func (e *Engine) Metrics() MetricsSnapshot {
	st := e.st.Load()
	snap := e.met.snapshot(e.cache)
	if e.chaos != nil {
		snap.Chaos.Enabled = true
		snap.Chaos.Loss = e.chaos.in.Plan().Loss
		snap.Chaos.MaxAttempts = e.chaos.rel.MaxAttempts
	}
	snap.Generation = st.gen
	snap.Schemes = append([]string(nil), st.order...)
	sort.Strings(snap.Schemes)
	return snap
}
