// Package server is the serving layer of the repository: it compiles a
// set of routing schemes over one network ONCE and then answers
// route/stretch queries concurrently, the preprocessing/query split
// compact routing is designed around.
//
// The package is layered (see DESIGN.md §server architecture):
//
//	handlers (HTTP/JSON)  ->  Engine (schemes, worker pool)  ->  route cache (sharded LRU)
//	                                 |
//	                          sim.RouteOnce over sim.Router adapters
//
// Every scheme is driven through its internal/sim Router adapter — the
// same pure (table, header) step functions validated by the concurrent
// simulator — so a served route is byte-identical to the scheme's
// analyzed walk. The engine is race-clean: scheme tables are immutable
// after compilation, per-query state lives in the packet header, and
// reload swaps the whole immutable state atomically.
package server

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"compactrouting"
	"compactrouting/internal/baseline"
	"compactrouting/internal/bits"
	"compactrouting/internal/core"
	"compactrouting/internal/faultsim"
	"compactrouting/internal/graph"
	"compactrouting/internal/labeled"
	"compactrouting/internal/metric"
	"compactrouting/internal/nameind"
	"compactrouting/internal/par"
	"compactrouting/internal/sim"
	"compactrouting/internal/trace"
)

// SchemeNames are the schemes the engine can compile, in report order.
var SchemeNames = []string{
	"simple-labeled",
	"scale-free-labeled",
	"name-independent",
	"scale-free-name-independent",
	"full-table",
	"single-tree",
}

// Config parameterizes an Engine.
type Config struct {
	// Build constructs the network for a given seed; called at startup
	// and again on every reload. Required.
	Build func(seed int64) (*compactrouting.Network, error)
	// Seed is the initial Build seed (also salts the name-independent
	// namings).
	Seed int64
	// Eps is the stretch parameter; clamped per scheme to its analyzed
	// range. Zero selects 0.25.
	Eps float64
	// Schemes to compile; nil compiles all of SchemeNames.
	Schemes []string
	// CacheEntries bounds the route cache (<= 0 disables caching).
	CacheEntries int
	// Workers bounds the batch fan-out pool; <= 0 uses GOMAXPROCS.
	Workers int
	// Chaos, when non-nil, injects per-hop packet loss into every served
	// route (with source-side retries) so the daemon's degradation under
	// faults can be observed live on /metrics.
	Chaos *ChaosParams
	// TraceSample, when > 0, runs every Nth route query traced and folds
	// the per-phase detour decomposition into /metrics (counter-based:
	// under sequential load the sampled request set is a pure function of
	// request order). 0 disables sampling.
	TraceSample int
	// TraceHopCap bounds the hop records echoed in a ?trace=1 response
	// (the summary always covers the full walk). 0 selects
	// DefaultTraceHopCap; negative means no cap.
	TraceHopCap int
}

// DefaultTraceHopCap is the default bound on hop records per ?trace=1
// response.
const DefaultTraceHopCap = 512

// ChaosParams configures the daemon's fault injection (routed -chaos).
type ChaosParams struct {
	// Loss is the per-hop drop probability in [0, 1].
	Loss float64
	// Seed keys the deterministic fault draws (0 uses Config.Seed).
	Seed int64
	// MaxAttempts bounds transmissions per query; <= 0 uses the
	// faultsim default policy's attempts.
	MaxAttempts int
}

// chaosRuntime is the compiled injection state shared by every scheme.
type chaosRuntime struct {
	in  *faultsim.Injector
	rel faultsim.Reliability
	seq atomic.Uint64 // per-query delivery ids: each query gets fresh draws
}

func newChaosRuntime(p *ChaosParams, fallbackSeed int64) *chaosRuntime {
	if p == nil {
		return nil
	}
	seed := p.Seed
	if seed == 0 {
		seed = fallbackSeed
	}
	rel := faultsim.DefaultReliability
	if p.MaxAttempts > 0 {
		rel.MaxAttempts = p.MaxAttempts
	}
	return &chaosRuntime{
		in:  faultsim.NewInjector(faultsim.FaultPlan{Seed: seed, Loss: p.Loss}),
		rel: rel,
	}
}

// RouteResult is one answered route query. Cached is set per response;
// all other fields are immutable once computed and may be shared
// between responses via the cache.
type RouteResult struct {
	Scheme        string  `json:"scheme"`
	Src           int     `json:"src"`
	Dst           int     `json:"dst"`
	Path          []int   `json:"path,omitempty"`
	Hops          int     `json:"hops"`
	Cost          float64 `json:"cost"`
	Optimal       float64 `json:"optimal"`
	Stretch       float64 `json:"stretch"`
	MaxHeaderBits int     `json:"max_header_bits"`
	Cached        bool    `json:"cached"`
	// Attempts and Drops report the reliability layer's work when the
	// engine runs with fault injection (zero otherwise).
	Attempts int `json:"attempts,omitempty"`
	Drops    int `json:"drops,omitempty"`
	// Trace is the per-hop execution trace, present only on ?trace=1
	// queries (hop log capped by Config.TraceHopCap). Never cached.
	Trace *trace.Wire `json:"trace,omitempty"`
}

// SchemeInfo is the GET /schemes accounting for one compiled scheme,
// with sizes in bits of the actual serialization (internal/bits).
type SchemeInfo struct {
	Name          string  `json:"name"`
	Kind          string  `json:"kind"` // labeled | name-independent | baseline
	LabelBits     int     `json:"label_bits"`
	TableMaxBits  int     `json:"table_max_bits"`
	TableMeanBits float64 `json:"table_mean_bits"`
	TableTotal    int     `json:"table_total_bits"`
	BuildMillis   float64 `json:"build_ms"`
}

// GraphInfo describes the currently served network.
type GraphInfo struct {
	Nodes              int     `json:"nodes"`
	Edges              int     `json:"edges"`
	Seed               int64   `json:"seed"`
	Generation         uint64  `json:"generation"`
	Diameter           float64 `json:"diameter"`
	NormalizedDiameter float64 `json:"normalized_diameter"`
}

// scheme is one compiled scheme plus its type-erased query runners.
type scheme struct {
	info SchemeInfo
	// impl is the concrete scheme object (e.g. *labeled.Simple) the
	// runners close over; the snapshot plane serializes it.
	impl any
	run  func(src, dst int) sim.Result
	// runLite is the zero-allocation route: shape only, no path slice
	// (the binary serving plane's hot path). The hotpath annotation
	// lets RouteLite call through this indirection; the closures bound
	// here wrap sim.RouteLite, which carries its own annotation, and
	// TestFramedRoutePathAllocs pins the whole cycle at 0 allocs/op.
	//
	//determinlint:hotpath
	runLite func(src, dst int) sim.LiteResult
	// runTraced drives the identical step functions with a trace
	// attached (?trace=1 queries and 1-in-N sampling).
	runTraced func(src, dst int, tr *trace.Trace) sim.Result
	// chaos runs the same step functions under fault injection; nil
	// unless the engine was configured with ChaosParams.
	chaos       func(src, dst int, id uint64) faultsim.Result
	chaosTraced func(src, dst int, id uint64, tr *trace.Trace) faultsim.Result
}

// state is the engine's immutable-after-build world; reload builds a
// fresh one and swaps the pointer.
type state struct {
	nw      *compactrouting.Network
	seed    int64
	gen     uint64
	schemes map[string]*scheme
	order   []string
	// list aliases schemes in compile order: the binary protocol
	// addresses schemes by index, and index lookups stay off the map.
	list []*scheme
}

// Engine owns the compiled schemes, the route cache and the metrics.
// All methods are safe for concurrent use.
type Engine struct {
	cfg   Config
	cache *routeCache
	// lite is the binary plane's flat route cache: value slots, no
	// allocation on hit or miss (nil when caching is disabled).
	lite        *liteCache
	met         *metrics
	workers     int
	chaos       *chaosRuntime // nil when fault injection is off
	traceSample int           // sample every Nth route traced; 0 = off
	traceHopCap int           // hop records per ?trace=1 response; <= 0 = no cap
	traceSeq    atomic.Uint64 // route counter driving the 1-in-N sampler
	st          atomic.Pointer[state]
	reload      sync.Mutex // serializes Reload, not queries
}

// New builds the network via cfg.Build(cfg.Seed) and compiles the
// configured schemes.
func New(cfg Config) (*Engine, error) {
	if cfg.Build == nil {
		return nil, fmt.Errorf("server: Config.Build is required")
	}
	if cfg.Eps == 0 {
		cfg.Eps = 0.25
	}
	if len(cfg.Schemes) == 0 {
		cfg.Schemes = SchemeNames
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	hopCap := cfg.TraceHopCap
	if hopCap == 0 {
		hopCap = DefaultTraceHopCap
	}
	e := newEngine(cfg, workers, hopCap)
	st, err := e.build(cfg.Seed, 0)
	if err != nil {
		return nil, err
	}
	e.st.Store(st)
	return e, nil
}

// newEngine assembles the engine shell shared by New and
// NewFromSnapshot (everything but the serving state).
func newEngine(cfg Config, workers, hopCap int) *Engine {
	return &Engine{
		cfg:         cfg,
		cache:       newRouteCache(cfg.CacheEntries),
		lite:        newLiteCache(cfg.CacheEntries),
		met:         newMetrics(cfg.Schemes),
		workers:     workers,
		chaos:       newChaosRuntime(cfg.Chaos, cfg.Seed),
		traceSample: cfg.TraceSample,
		traceHopCap: hopCap,
	}
}

// build constructs a full state: network plus every configured scheme.
func (e *Engine) build(seed int64, gen uint64) (*state, error) {
	nw, err := e.cfg.Build(seed)
	if err != nil {
		return nil, fmt.Errorf("server: build network: %w", err)
	}
	st := &state{nw: nw, seed: seed, gen: gen, schemes: make(map[string]*scheme)}
	// Schemes compile independently (shared graph/oracle are read-only),
	// so the whole set builds in parallel on startup and /reload; the
	// ordered MapErr keeps compile order — and any error — identical to
	// the serial loop it replaced.
	compiled, err := par.MapErr(len(e.cfg.Schemes), func(i int) (*scheme, error) {
		name := e.cfg.Schemes[i]
		s, err := compileScheme(name, nw.Graph(), nw.Distancer(), e.cfg.Eps, seed, e.chaos)
		if err != nil {
			return nil, fmt.Errorf("server: compile %s: %w", name, err)
		}
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range e.cfg.Schemes {
		st.schemes[name] = compiled[i]
		st.order = append(st.order, name)
		st.list = append(st.list, compiled[i])
	}
	return st, nil
}

// runners is the type-erased query surface bind produces for a scheme.
type runners struct {
	run         func(src, dst int) sim.Result
	runLite     func(src, dst int) sim.LiteResult
	runTraced   func(src, dst int, tr *trace.Trace) sim.Result
	chaos       func(src, dst int, id uint64) faultsim.Result
	chaosTraced func(src, dst int, id uint64, tr *trace.Trace) faultsim.Result
}

// bind wraps a generic Router into the engine's uniform runners. addr
// translates a destination NODE id into the scheme's address space (a
// label or an original name), so every scheme serves the same API. The
// chaos runners drive the identical step functions through
// faultsim.Deliver and are nil when chaos is off. Traced and untraced
// runners share one code path (RouteOnceTraced with a nil trace is
// RouteOnce), so a traced route is byte-identical to an untraced one.
func bind[H sim.Header](g *graph.Graph, r sim.Router[H], addr func(int) int, maxHops int, ch *chaosRuntime) runners {
	rn := runners{
		run: func(src, dst int) sim.Result {
			return sim.RouteOnce(g, r, src, addr(dst), maxHops)
		},
		runLite: func(src, dst int) sim.LiteResult {
			return sim.RouteLite(g, r, src, addr(dst), maxHops)
		},
		runTraced: func(src, dst int, tr *trace.Trace) sim.Result {
			return sim.RouteOnceTraced(g, r, src, addr(dst), maxHops, tr)
		},
	}
	if ch == nil {
		return rn
	}
	rn.chaos = func(src, dst int, id uint64) faultsim.Result {
		return faultsim.Deliver(g, r, src, addr(dst), maxHops, ch.in, ch.rel, id)
	}
	rn.chaosTraced = func(src, dst int, id uint64, tr *trace.Trace) faultsim.Result {
		return faultsim.DeliverTraced(g, r, src, addr(dst), maxHops, ch.in, ch.rel, id, tr)
	}
	return rn
}

func clamp(eps, hi float64) float64 {
	if eps > hi {
		return hi
	}
	return eps
}

// compileScheme builds one scheme and its adapter-backed runners.
func compileScheme(name string, g *graph.Graph, a metric.Distancer, eps float64, seed int64, ch *chaosRuntime) (*scheme, error) {
	start := time.Now()
	impl, err := buildScheme(name, g, a, eps, seed)
	if err != nil {
		return nil, err
	}
	return finishScheme(name, impl, g, ch, float64(time.Since(start).Microseconds())/1000)
}

// buildScheme constructs one scheme implementation from scratch — the
// only place in the serving layer that invokes the (counted) scheme
// constructors. The snapshot path replaces this call with
// snapshot.DecodeScheme and shares everything after it.
func buildScheme(name string, g *graph.Graph, a metric.Distancer, eps float64, seed int64) (any, error) {
	n := g.N()
	switch name {
	case "simple-labeled":
		return labeled.NewSimple(g, a, clamp(eps, 0.5))
	case "scale-free-labeled":
		return labeled.NewScaleFree(g, a, clamp(eps, 0.25))
	case "name-independent":
		ne := clamp(eps, 1.0/3)
		under, err := labeled.NewSimple(g, a, ne)
		if err != nil {
			return nil, err
		}
		return nameind.NewSimple(g, a, nameind.RandomNaming(n, seed+2), under, ne)
	case "scale-free-name-independent":
		ne := clamp(eps, 0.25)
		under, err := labeled.NewScaleFree(g, a, ne)
		if err != nil {
			return nil, err
		}
		return nameind.NewScaleFree(g, a, nameind.RandomNaming(n, seed+2), under, ne)
	case "full-table":
		return baseline.NewFullTable(g, a), nil
	case "single-tree":
		return baseline.NewSingleTree(g, 0)
	default:
		return nil, fmt.Errorf("unknown scheme %q (have %v)", name, SchemeNames)
	}
}

// finishScheme wraps a concrete scheme implementation (freshly built or
// snapshot-restored) into its runners and accounting. The hop budgets
// mirror cmd/routesim's per-scheme limits.
func finishScheme(name string, impl any, g *graph.Graph, ch *chaosRuntime, buildMillis float64) (*scheme, error) {
	n := g.N()
	var (
		rn        runners
		kind      string
		labelBits int
		tableBits func(int) int
	)
	identity := func(v int) int { return v }
	switch s := impl.(type) {
	case *labeled.Simple:
		rn = bind(g, sim.SimpleLabeledRouter{S: s}, s.LabelOf, 0, ch)
		kind, labelBits, tableBits = "labeled", bits.UintBits(n), s.TableBits
	case *labeled.ScaleFree:
		rn = bind(g, sim.ScaleFreeLabeledRouter{S: s}, s.LabelOf, 64*n, ch)
		kind, labelBits, tableBits = "labeled", bits.UintBits(n), s.TableBits
	case *nameind.Simple:
		nm := s.Naming()
		rn = bind(g, sim.NameIndependentRouter{S: s}, nm.NameOf, 256*n, ch)
		kind, labelBits, tableBits = "name-independent", bits.UintBits(nm.MaxName()+1), s.TableBits
	case *nameind.ScaleFree:
		nm := s.Naming()
		rn = bind(g, sim.ScaleFreeNameIndependentRouter{S: s}, nm.NameOf, 512*n, ch)
		kind, labelBits, tableBits = "name-independent", bits.UintBits(nm.MaxName()+1), s.TableBits
	case *baseline.FullTable:
		rn = bind(g, sim.FullTableRouter{S: s}, identity, 0, ch)
		kind, labelBits, tableBits = "baseline", bits.UintBits(n), s.TableBits
	case *baseline.SingleTree:
		rn = bind(g, sim.SingleTreeRouter{S: s}, identity, 0, ch)
		kind, labelBits, tableBits = "baseline", bits.UintBits(n), s.TableBits
	default:
		return nil, fmt.Errorf("scheme %q has unbindable implementation %T", name, impl)
	}
	tb := core.Tables(tableBits, n)
	return &scheme{
		info: SchemeInfo{
			Name:          name,
			Kind:          kind,
			LabelBits:     labelBits,
			TableMaxBits:  tb.MaxBits,
			TableMeanBits: tb.MeanBits,
			TableTotal:    tb.TotalBits,
			BuildMillis:   buildMillis,
		},
		impl:        impl,
		run:         rn.run,
		runLite:     rn.runLite,
		runTraced:   rn.runTraced,
		chaos:       rn.chaos,
		chaosTraced: rn.chaosTraced,
	}, nil
}

// Route answers one query, consulting the cache first. The result is
// returned by value so callers may set Cached without racing the cached
// copy; Path is shared and must not be mutated.
func (e *Engine) Route(schemeName string, src, dst int) (RouteResult, error) {
	return e.route(schemeName, src, dst, false)
}

// RouteTraced answers one query with its full execution trace attached
// (RouteResult.Trace, hop log capped by Config.TraceHopCap). Traced
// queries always execute the route — the cache is read-bypassed so the
// hop log describes a real walk — but the computed result still feeds
// the cache for later untraced queries.
func (e *Engine) RouteTraced(schemeName string, src, dst int) (RouteResult, error) {
	return e.route(schemeName, src, dst, true)
}

// sampleTrace implements the deterministic 1-in-N sampler: route
// queries are numbered by an atomic counter and every Nth one runs
// traced. Under sequential load the sampled set is a pure function of
// request order (the 1st, N+1st, 2N+1st, ... queries); concurrent
// load keeps the exact 1/N rate but the assignment follows arrival
// order at the counter.
func (e *Engine) sampleTrace() bool {
	if e.traceSample <= 0 {
		return false
	}
	return (e.traceSeq.Add(1)-1)%uint64(e.traceSample) == 0
}

func (e *Engine) route(schemeName string, src, dst int, wantTrace bool) (RouteResult, error) {
	st := e.st.Load()
	s, ok := st.schemes[schemeName]
	if !ok {
		return RouteResult{}, fmt.Errorf("unknown scheme %q (have %v)", schemeName, st.order)
	}
	n := st.nw.N()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return RouteResult{}, fmt.Errorf("pair (%d, %d) out of range [0, %d)", src, dst, n)
	}
	sampled := e.sampleTrace()
	if e.chaos != nil {
		return e.routeChaos(st, s, schemeName, src, dst, wantTrace, sampled)
	}
	traced := wantTrace || sampled
	if !traced {
		if v, ok := e.cache.Get(schemeName, src, dst, st.gen); ok {
			out := *v
			out.Cached = true
			return out, nil
		}
	}
	var tr *trace.Trace
	var res sim.Result
	if traced {
		tr = &trace.Trace{}
		res = s.runTraced(src, dst, tr)
	} else {
		res = s.run(src, dst)
	}
	if res.Err != nil {
		return RouteResult{}, fmt.Errorf("route %d -> %d: %w", src, dst, res.Err)
	}
	opt := st.nw.Dist(src, dst)
	out := &RouteResult{
		Scheme:        schemeName,
		Src:           src,
		Dst:           dst,
		Path:          res.Path,
		Hops:          len(res.Path) - 1,
		Cost:          res.Cost,
		Optimal:       opt,
		Stretch:       stretch(res.Cost, opt),
		MaxHeaderBits: res.MaxHeaderBits,
	}
	e.met.observeRoute(schemeName, out.Stretch, out.Hops, out.MaxHeaderBits)
	if sampled {
		e.met.observeTrace(tr)
	}
	// The cached entry never carries a trace: cached results are shared
	// between responses, and a trace belongs to the query that asked.
	e.cache.Put(schemeName, src, dst, st.gen, out)
	ret := *out
	if wantTrace {
		ret.Trace = tr.ToWire(opt, e.traceHopCap)
	}
	return ret, nil
}

// routeChaos serves one query through the fault injector. Chaos routes
// bypass the cache entirely: every query draws its own faults (a fresh
// delivery id), so two queries for the same pair legitimately differ in
// attempts, drops, and even outcome.
func (e *Engine) routeChaos(st *state, s *scheme, schemeName string, src, dst int, wantTrace, sampled bool) (RouteResult, error) {
	id := e.chaos.seq.Add(1)
	var tr *trace.Trace
	var res faultsim.Result
	if wantTrace || sampled {
		tr = &trace.Trace{}
		res = s.chaosTraced(src, dst, id, tr)
	} else {
		res = s.chaos(src, dst, id)
	}
	e.met.chaosDrops.Add(uint64(res.Drops))
	if res.Attempts > 1 {
		e.met.chaosRetries.Add(uint64(res.Attempts - 1))
	}
	if !res.Delivered {
		e.met.chaosFailed.Add(1)
		if res.Sim.Err != nil {
			return RouteResult{}, fmt.Errorf("route %d -> %d: %w", src, dst, res.Sim.Err)
		}
		return RouteResult{}, fmt.Errorf("route %d -> %d: delivery failed after %d attempts (%d packets dropped)",
			src, dst, res.Attempts, res.Drops)
	}
	opt := st.nw.Dist(src, dst)
	out := RouteResult{
		Scheme:        schemeName,
		Src:           src,
		Dst:           dst,
		Path:          res.Sim.Path,
		Hops:          len(res.Sim.Path) - 1,
		Cost:          res.Sim.Cost,
		Optimal:       opt,
		Stretch:       stretch(res.Sim.Cost, opt),
		MaxHeaderBits: res.Sim.MaxHeaderBits,
		Attempts:      res.Attempts,
		Drops:         res.Drops,
	}
	e.met.observeRoute(schemeName, out.Stretch, out.Hops, out.MaxHeaderBits)
	if sampled {
		e.met.observeTrace(tr)
	}
	if wantTrace {
		out.Trace = tr.ToWire(opt, e.traceHopCap)
	}
	return out, nil
}

func stretch(cost, opt float64) float64 {
	if opt == 0 {
		return 1
	}
	return cost / opt
}

// BatchSummary aggregates one RouteBatch call.
type BatchSummary struct {
	Count       int     `json:"count"`
	Errors      int     `json:"errors"`
	CacheHits   int     `json:"cache_hits"`
	TotalHops   int     `json:"total_hops"`
	MeanStretch float64 `json:"mean_stretch"`
	MaxStretch  float64 `json:"max_stretch"`
}

// RouteBatch fans the pairs out over the bounded worker pool and
// returns per-pair results (index-aligned with pairs; failed queries
// have an empty Scheme and count as summary errors).
func (e *Engine) RouteBatch(schemeName string, pairs [][2]int) ([]RouteResult, BatchSummary) {
	results := make([]RouteResult, len(pairs))
	errs := make([]error, len(pairs))
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := e.workers
	if workers > len(pairs) {
		workers = len(pairs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pairs) {
					return
				}
				results[i], errs[i] = e.Route(schemeName, pairs[i][0], pairs[i][1])
			}
		}()
	}
	wg.Wait()

	var sum BatchSummary
	sum.Count = len(pairs)
	var stretchSum float64
	routed := 0
	for i := range results {
		if errs[i] != nil {
			sum.Errors++
			continue
		}
		routed++
		if results[i].Cached {
			sum.CacheHits++
		}
		sum.TotalHops += results[i].Hops
		stretchSum += results[i].Stretch
		if results[i].Stretch > sum.MaxStretch {
			sum.MaxStretch = results[i].Stretch
		}
	}
	if routed > 0 {
		sum.MeanStretch = stretchSum / float64(routed)
	}
	return results, sum
}

// Reload rebuilds the network with the given seed, recompiles every
// scheme and atomically swaps the serving state. The new state carries
// a new generation, which invalidates every cached route: cache keys
// include the generation, so entries computed against the old graph
// are unreachable and age out under LRU pressure. In-flight queries
// finish against the old state.
func (e *Engine) Reload(seed int64) error {
	e.reload.Lock()
	defer e.reload.Unlock()
	old := e.st.Load()
	st, err := e.build(seed, old.gen+1)
	if err != nil {
		return err
	}
	e.st.Store(st)
	e.met.reloads.Add(1)
	return nil
}

// Graph describes the current network.
func (e *Engine) Graph() GraphInfo {
	st := e.st.Load()
	return GraphInfo{
		Nodes:              st.nw.N(),
		Edges:              st.nw.M(),
		Seed:               st.seed,
		Generation:         st.gen,
		Diameter:           st.nw.Diameter(),
		NormalizedDiameter: st.nw.NormalizedDiameter(),
	}
}

// Schemes lists the compiled schemes' accounting in compile order.
func (e *Engine) Schemes() []SchemeInfo {
	st := e.st.Load()
	out := make([]SchemeInfo, 0, len(st.order))
	for _, name := range st.order {
		out = append(out, st.schemes[name].info)
	}
	return out
}

// Metrics snapshots the live counters.
func (e *Engine) Metrics() MetricsSnapshot {
	st := e.st.Load()
	snap := e.met.snapshot(e.cache, e.lite)
	if e.chaos != nil {
		snap.Chaos.Enabled = true
		snap.Chaos.Loss = e.chaos.in.Plan().Loss
		snap.Chaos.MaxAttempts = e.chaos.rel.MaxAttempts
	}
	snap.Generation = st.gen
	snap.Schemes = append([]string(nil), st.order...)
	sort.Strings(snap.Schemes)
	snap.Trace.SampleEvery = e.traceSample
	return snap
}
