package server

import (
	"fmt"
	"runtime"

	"compactrouting/internal/bits"
	"compactrouting/internal/metric"
	"compactrouting/internal/snapshot"
)

// Snapshot serializes the engine's current serving state — graph,
// oracle, and every compiled scheme's tables — into a snapshot.File.
// The write is taken against one atomic state load, so a concurrent
// reload cannot tear it. On the dense backend the APSP matrices ride
// along so the restore skips every Dijkstra; on the lazy backend the
// snapshot records only the backend name — its oracle is an on-demand
// cache with nothing durable to store, and the restore rebinds an
// empty one (the scheme tables, the expensive part, are in the blobs).
func (e *Engine) Snapshot() (*snapshot.File, error) {
	st := e.st.Load()
	f := &snapshot.File{
		Seed:       st.seed,
		Eps:        e.cfg.Eps,
		Backend:    string(st.nw.Backend()),
		Generation: st.gen,
		N:          st.nw.N(),
		Edges:      st.nw.Edges(),
	}
	if a, ok := st.nw.Distancer().(*metric.APSP); ok {
		f.Dist, f.NextHop = a.Matrices()
	}
	for i, name := range st.order {
		w := &bits.Writer{}
		if err := snapshot.EncodeScheme(w, name, st.list[i].impl); err != nil {
			return nil, err
		}
		f.Schemes = append(f.Schemes, snapshot.SchemeBlob{
			Name: name,
			Data: append([]byte(nil), w.Bytes()...),
			Bits: w.Len(),
		})
	}
	return f, nil
}

// NewFromSnapshot builds an engine from a decoded snapshot: the graph
// and oracle are rebound, every scheme is restored through its codec,
// and the first query is served without invoking a single scheme
// constructor (pinned by TestSnapshotColdStartNoConstructors against
// core.SchemeBuilds). cfg.Build is optional here — it is only needed
// if the engine should support /reload, which rebuilds from scratch.
func NewFromSnapshot(cfg Config, f *snapshot.File) (*Engine, error) {
	if len(f.Schemes) == 0 {
		return nil, fmt.Errorf("server: snapshot holds no schemes")
	}
	cfg.Seed = f.Seed
	cfg.Eps = f.Eps
	cfg.Schemes = make([]string, len(f.Schemes))
	for i, sb := range f.Schemes {
		cfg.Schemes[i] = sb.Name
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	hopCap := cfg.TraceHopCap
	if hopCap == 0 {
		hopCap = DefaultTraceHopCap
	}
	e := newEngine(cfg, workers, hopCap)
	nw, err := f.Network()
	if err != nil {
		return nil, err
	}
	st := &state{nw: nw, seed: f.Seed, gen: f.Generation, schemes: make(map[string]*scheme)}
	for _, sb := range f.Schemes {
		r := bits.NewReader(sb.Data, sb.Bits)
		impl, err := snapshot.DecodeScheme(r, sb.Name, nw.Graph(), nw.Distancer())
		if err != nil {
			return nil, fmt.Errorf("server: restore %s: %w", sb.Name, err)
		}
		if rem := r.Remaining(); rem != 0 {
			return nil, fmt.Errorf("server: restore %s: %d trailing blob bits", sb.Name, rem)
		}
		sch, err := finishScheme(sb.Name, impl, nw.Graph(), e.chaos, 0)
		if err != nil {
			return nil, fmt.Errorf("server: restore %s: %w", sb.Name, err)
		}
		st.schemes[sb.Name] = sch
		st.order = append(st.order, sb.Name)
		st.list = append(st.list, sch)
	}
	e.st.Store(st)
	return e, nil
}
