package server

import (
	"sync/atomic"
	"time"
)

// latencyBucketsUS are the upper bounds (microseconds, inclusive) of
// the fixed latency histogram; the last bucket is unbounded.
var latencyBucketsUS = [...]int64{
	10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000, 25000, 50000,
	100000, 250000, 500000, 1000000,
}

// histogram is a fixed-bucket latency histogram safe for concurrent
// observation.
type histogram struct {
	counts [len(latencyBucketsUS) + 1]atomic.Uint64 // guarded by atomic
	sumUS  atomic.Int64                             // guarded by atomic
	n      atomic.Uint64                            // guarded by atomic
}

func (h *histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	h.sumUS.Add(us)
	h.n.Add(1)
	for i, ub := range latencyBucketsUS {
		if us <= ub {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[len(latencyBucketsUS)].Add(1)
}

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	MeanUS  float64           `json:"mean_us"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// HistogramBucket is one cumulative-free histogram bin.
type HistogramBucket struct {
	LEus  int64  `json:"le_us"` // upper bound in microseconds; -1 = +inf
	Count uint64 `json:"count"`
}

func (h *histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.n.Load()}
	if s.Count > 0 {
		s.MeanUS = float64(h.sumUS.Load()) / float64(s.Count)
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		ub := int64(-1)
		if i < len(latencyBucketsUS) {
			ub = latencyBucketsUS[i]
		}
		s.Buckets = append(s.Buckets, HistogramBucket{LEus: ub, Count: c})
	}
	return s
}

// metrics aggregates the server's live counters. All fields are atomics
// so handler goroutines never serialize on a metrics lock.
type metrics struct {
	start        time.Time     // guarded by init
	requests     atomic.Uint64 // guarded by atomic; HTTP requests accepted
	routes       atomic.Uint64 // guarded by atomic; single route queries served
	batchRoutes  atomic.Uint64 // guarded by atomic; routes served inside batches
	routeErrors  atomic.Uint64 // guarded by atomic; route queries that failed
	badRequests  atomic.Uint64 // guarded by atomic; malformed HTTP requests
	reloads      atomic.Uint64 // guarded by atomic; graph reloads performed
	inFlight     atomic.Int64  // guarded by atomic; requests currently being served
	routeLatency histogram     // guarded by atomic; per-route latency (cache hits included)
	batchLatency histogram     // guarded by atomic; whole-batch latency
	chaosDrops   atomic.Uint64 // guarded by atomic; packets lost to injected faults
	chaosRetries atomic.Uint64 // guarded by atomic; extra transmissions the retry layer spent
	chaosFailed  atomic.Uint64 // guarded by atomic; deliveries that failed every attempt
}

// MetricsSnapshot is the GET /metrics response body.
type MetricsSnapshot struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	Requests      uint64            `json:"requests"`
	Routes        uint64            `json:"routes"`
	BatchRoutes   uint64            `json:"batch_routes"`
	RouteErrors   uint64            `json:"route_errors"`
	BadRequests   uint64            `json:"bad_requests"`
	Reloads       uint64            `json:"reloads"`
	InFlight      int64             `json:"in_flight"`
	Cache         CacheSnapshot     `json:"cache"`
	RouteLatency  HistogramSnapshot `json:"route_latency"`
	BatchLatency  HistogramSnapshot `json:"batch_latency"`
	Chaos         ChaosSnapshot     `json:"chaos"`
	Generation    uint64            `json:"generation"`
	Schemes       []string          `json:"schemes"`
}

// ChaosSnapshot reports the fault-injection counters (routed -chaos):
// what the injector destroyed and what the retry layer absorbed.
type ChaosSnapshot struct {
	Enabled          bool    `json:"enabled"`
	Loss             float64 `json:"loss,omitempty"`
	MaxAttempts      int     `json:"max_attempts,omitempty"`
	Drops            uint64  `json:"drops"`
	Retries          uint64  `json:"retries"`
	FailedDeliveries uint64  `json:"failed_deliveries"`
}

// CacheSnapshot reports the route cache counters.
type CacheSnapshot struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	Evicted uint64  `json:"evicted"`
	Size    int     `json:"size"`
	HitRate float64 `json:"hit_rate"`
}

func newMetrics() *metrics { return &metrics{start: time.Now()} }

func (m *metrics) snapshot(c *routeCache) MetricsSnapshot {
	hits, misses, evicted, size := c.Stats()
	cs := CacheSnapshot{Hits: hits, Misses: misses, Evicted: evicted, Size: size}
	if total := hits + misses; total > 0 {
		cs.HitRate = float64(hits) / float64(total)
	}
	return MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests:      m.requests.Load(),
		Routes:        m.routes.Load(),
		BatchRoutes:   m.batchRoutes.Load(),
		RouteErrors:   m.routeErrors.Load(),
		BadRequests:   m.badRequests.Load(),
		Reloads:       m.reloads.Load(),
		InFlight:      m.inFlight.Load(),
		Cache:         cs,
		RouteLatency:  m.routeLatency.Snapshot(),
		BatchLatency:  m.batchLatency.Snapshot(),
		Chaos: ChaosSnapshot{
			Drops:            m.chaosDrops.Load(),
			Retries:          m.chaosRetries.Load(),
			FailedDeliveries: m.chaosFailed.Load(),
		},
	}
}
