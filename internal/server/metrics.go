package server

import (
	"sort"
	"sync/atomic"
	"time"

	"compactrouting/internal/trace"
)

// latencyBucketsUS are the upper bounds (microseconds, inclusive) of
// the fixed latency histogram; the last bucket is unbounded.
var latencyBucketsUS = [...]int64{
	10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000, 25000, 50000,
	100000, 250000, 500000, 1000000,
}

// histogram is a fixed-bucket latency histogram safe for concurrent
// observation.
type histogram struct {
	counts [len(latencyBucketsUS) + 1]atomic.Uint64 // guarded by atomic
	sumUS  atomic.Int64                             // guarded by atomic
	n      atomic.Uint64                            // guarded by atomic
}

func (h *histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	h.sumUS.Add(us)
	h.n.Add(1)
	for i, ub := range latencyBucketsUS {
		if us <= ub {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[len(latencyBucketsUS)].Add(1)
}

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	MeanUS  float64           `json:"mean_us"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// HistogramBucket is one cumulative-free histogram bin.
type HistogramBucket struct {
	LEus  int64  `json:"le_us"` // upper bound in microseconds; -1 = +inf
	Count uint64 `json:"count"`
}

func (h *histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.n.Load()}
	if s.Count > 0 {
		s.MeanUS = float64(h.sumUS.Load()) / float64(s.Count)
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		ub := int64(-1)
		if i < len(latencyBucketsUS) {
			ub = latencyBucketsUS[i]
		}
		s.Buckets = append(s.Buckets, HistogramBucket{LEus: ub, Count: c})
	}
	return s
}

// hopBucketEdges bound the per-route hop-count histogram.
var hopBucketEdges = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// headerBitBucketEdges bound the max-header-bits histogram.
var headerBitBucketEdges = []float64{16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// valueHist is a fixed-bucket histogram over float64 observations
// (stretch, hops, header bits), safe for concurrent use. The sum is
// kept in 1e-6 units so the mean needs no float atomics.
type valueHist struct {
	edges    []float64       // guarded by init; bucket upper bounds, inclusive
	counts   []atomic.Uint64 // guarded by atomic; len(edges)+1, last unbounded
	n        atomic.Uint64   // guarded by atomic
	sumMicro atomic.Uint64   // guarded by atomic; sum of observations * 1e6
}

func newValueHist(edges []float64) *valueHist {
	return &valueHist{edges: edges, counts: make([]atomic.Uint64, len(edges)+1)}
}

func (h *valueHist) Observe(v float64) {
	h.n.Add(1)
	if v > 0 {
		h.sumMicro.Add(uint64(v * 1e6))
	}
	for i, ub := range h.edges {
		if v <= ub {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[len(h.edges)].Add(1)
}

// ValueHistogramSnapshot is the JSON form of a valueHist.
type ValueHistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Mean    float64       `json:"mean"`
	Buckets []ValueBucket `json:"buckets,omitempty"`
}

// ValueBucket is one bin; LE is the inclusive upper bound, -1 = +inf.
type ValueBucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

func (h *valueHist) Snapshot() ValueHistogramSnapshot {
	s := ValueHistogramSnapshot{Count: h.n.Load()}
	if s.Count > 0 {
		s.Mean = float64(h.sumMicro.Load()) / 1e6 / float64(s.Count)
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		ub := float64(-1)
		if i < len(h.edges) {
			ub = h.edges[i]
		}
		s.Buckets = append(s.Buckets, ValueBucket{LE: ub, Count: c})
	}
	return s
}

// metrics aggregates the server's live counters. All fields are atomics
// so handler goroutines never serialize on a metrics lock.
type metrics struct {
	start        time.Time     // guarded by init
	requests     atomic.Uint64 // guarded by atomic; HTTP requests accepted
	routes       atomic.Uint64 // guarded by atomic; single route queries served
	batchRoutes  atomic.Uint64 // guarded by atomic; routes served inside batches
	routeErrors  atomic.Uint64 // guarded by atomic; route queries that failed
	badRequests  atomic.Uint64 // guarded by atomic; malformed HTTP requests
	reloads      atomic.Uint64 // guarded by atomic; graph reloads performed
	inFlight     atomic.Int64  // guarded by atomic; requests currently being served
	routeLatency histogram     // guarded by atomic; per-route latency (cache hits included)
	batchLatency histogram     // guarded by atomic; whole-batch latency
	chaosDrops   atomic.Uint64 // guarded by atomic; packets lost to injected faults
	chaosRetries atomic.Uint64 // guarded by atomic; extra transmissions the retry layer spent
	chaosFailed  atomic.Uint64 // guarded by atomic; deliveries that failed every attempt

	routeLatencyHit  histogram // guarded by atomic; latency of cache-hit route requests
	routeLatencyMiss histogram // guarded by atomic; latency of computed route requests

	// Binary serving plane (framed TCP) counters; route-level counts
	// share routes/routeErrors above so per-scheme totals stay unified.
	tcpConns     atomic.Int64  // guarded by atomic; open TCP connections
	tcpFrames    atomic.Uint64 // guarded by atomic; frames answered
	tcpRoutes    atomic.Uint64 // guarded by atomic; route queries served over TCP
	tcpErrors    atomic.Uint64 // guarded by atomic; per-pair route failures over TCP
	tcpBadFrames atomic.Uint64 // guarded by atomic; malformed frames rejected
	tcpLatency   histogram     // guarded by atomic; whole-frame service latency

	// Route-shape histograms, fed by every computed (non-cached) route.
	// The stretch histograms use the shared trace.StretchBucketEdges so
	// /metrics and routebench -json distributions are comparable.
	traceSchemes []string              // guarded by init; sorted scheme names
	stretchHist  map[string]*valueHist // guarded by init; per-scheme stretch, fixed key set
	hopsHist     *valueHist            // guarded by init
	headerHist   *valueHist            // guarded by init

	// Sampled-trace accounting: every 1-in-N route runs traced and its
	// per-phase decomposition lands here (costs in 1e-6 units).
	tracesSampled  atomic.Uint64                  // guarded by atomic
	phaseHops      [trace.NumPhases]atomic.Uint64 // guarded by atomic
	phaseCostMicro [trace.NumPhases]atomic.Uint64 // guarded by atomic
}

// MetricsSnapshot is the GET /metrics response body.
type MetricsSnapshot struct {
	UptimeSeconds    float64              `json:"uptime_seconds"`
	Requests         uint64               `json:"requests"`
	Routes           uint64               `json:"routes"`
	BatchRoutes      uint64               `json:"batch_routes"`
	RouteErrors      uint64               `json:"route_errors"`
	BadRequests      uint64               `json:"bad_requests"`
	Reloads          uint64               `json:"reloads"`
	InFlight         int64                `json:"in_flight"`
	Cache            CacheSnapshot        `json:"cache"`
	RouteLatency     HistogramSnapshot    `json:"route_latency"`
	RouteLatencyHit  HistogramSnapshot    `json:"route_latency_hit"`
	RouteLatencyMiss HistogramSnapshot    `json:"route_latency_miss"`
	BatchLatency     HistogramSnapshot    `json:"batch_latency"`
	Trace            TraceMetricsSnapshot `json:"trace"`
	TCP              TCPSnapshot          `json:"tcp"`
	Chaos            ChaosSnapshot        `json:"chaos"`
	Generation       uint64               `json:"generation"`
	Schemes          []string             `json:"schemes"`
}

// TraceMetricsSnapshot reports the tracing-derived distributions: the
// per-scheme stretch histograms, the route-shape histograms, and the
// sampled per-phase detour decomposition.
type TraceMetricsSnapshot struct {
	SampleEvery int                    `json:"sample_every,omitempty"`
	Sampled     uint64                 `json:"sampled"`
	Stretch     []SchemeStretchHist    `json:"stretch,omitempty"`
	Hops        ValueHistogramSnapshot `json:"hops"`
	HeaderBits  ValueHistogramSnapshot `json:"header_bits"`
	Phases      []PhaseSnapshot        `json:"phases,omitempty"`
}

// SchemeStretchHist is one scheme's served-stretch distribution.
type SchemeStretchHist struct {
	Scheme string                 `json:"scheme"`
	Hist   ValueHistogramSnapshot `json:"hist"`
}

// PhaseSnapshot aggregates the sampled traces' hops and cost spent in
// one scheme phase.
type PhaseSnapshot struct {
	Phase string  `json:"phase"`
	Hops  uint64  `json:"hops"`
	Cost  float64 `json:"cost"`
}

// ChaosSnapshot reports the fault-injection counters (routed -chaos):
// what the injector destroyed and what the retry layer absorbed.
type ChaosSnapshot struct {
	Enabled          bool    `json:"enabled"`
	Loss             float64 `json:"loss,omitempty"`
	MaxAttempts      int     `json:"max_attempts,omitempty"`
	Drops            uint64  `json:"drops"`
	Retries          uint64  `json:"retries"`
	FailedDeliveries uint64  `json:"failed_deliveries"`
}

// TCPSnapshot reports the binary serving plane's counters: connection
// gauge, frame and route throughput, rejects, and per-frame latency.
type TCPSnapshot struct {
	Connections  int64             `json:"connections"`
	Frames       uint64            `json:"frames"`
	Routes       uint64            `json:"routes"`
	RouteErrors  uint64            `json:"route_errors"`
	BadFrames    uint64            `json:"bad_frames"`
	FrameLatency HistogramSnapshot `json:"frame_latency"`
}

// CacheSnapshot reports the route cache counters.
type CacheSnapshot struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	Evicted uint64  `json:"evicted"`
	Size    int     `json:"size"`
	HitRate float64 `json:"hit_rate"`
}

func newMetrics(schemes []string) *metrics {
	sorted := append([]string(nil), schemes...)
	sort.Strings(sorted)
	hist := make(map[string]*valueHist, len(sorted))
	for _, s := range sorted {
		hist[s] = newValueHist(trace.StretchBucketEdges)
	}
	return &metrics{
		start:        time.Now(),
		traceSchemes: sorted,
		stretchHist:  hist,
		hopsHist:     newValueHist(hopBucketEdges),
		headerHist:   newValueHist(headerBitBucketEdges),
	}
}

// observeRoute records one computed route's shape.
func (m *metrics) observeRoute(scheme string, stretch float64, hops, headerBits int) {
	if h, ok := m.stretchHist[scheme]; ok {
		h.Observe(stretch)
	}
	m.hopsHist.Observe(float64(hops))
	m.headerHist.Observe(float64(headerBits))
}

// observeTrace folds one sampled trace into the phase decomposition.
func (m *metrics) observeTrace(t *trace.Trace) {
	m.tracesSampled.Add(1)
	for i := range t.Hops {
		p := t.Hops[i].Phase
		if int(p) >= trace.NumPhases {
			p = trace.PhaseDirect
		}
		m.phaseHops[p].Add(1)
		m.phaseCostMicro[p].Add(uint64(t.Hops[i].Dist * 1e6))
	}
}

func (m *metrics) snapshot(c *routeCache, lite *liteCache) MetricsSnapshot {
	hits, misses, evicted, size := c.Stats()
	lh, lm := lite.stats()
	cs := CacheSnapshot{Hits: hits + lh, Misses: misses + lm, Evicted: evicted, Size: size}
	if total := hits + misses; total > 0 {
		cs.HitRate = float64(hits) / float64(total)
	}
	tm := TraceMetricsSnapshot{
		Sampled:    m.tracesSampled.Load(),
		Hops:       m.hopsHist.Snapshot(),
		HeaderBits: m.headerHist.Snapshot(),
	}
	for _, name := range m.traceSchemes {
		h := m.stretchHist[name]
		if h.n.Load() == 0 {
			continue
		}
		tm.Stretch = append(tm.Stretch, SchemeStretchHist{Scheme: name, Hist: h.Snapshot()})
	}
	for p := 0; p < trace.NumPhases; p++ {
		hops := m.phaseHops[p].Load()
		if hops == 0 {
			continue
		}
		tm.Phases = append(tm.Phases, PhaseSnapshot{
			Phase: trace.Phase(p).String(),
			Hops:  hops,
			Cost:  float64(m.phaseCostMicro[p].Load()) / 1e6,
		})
	}
	return MetricsSnapshot{
		UptimeSeconds:    time.Since(m.start).Seconds(),
		Requests:         m.requests.Load(),
		Routes:           m.routes.Load(),
		BatchRoutes:      m.batchRoutes.Load(),
		RouteErrors:      m.routeErrors.Load(),
		BadRequests:      m.badRequests.Load(),
		Reloads:          m.reloads.Load(),
		InFlight:         m.inFlight.Load(),
		Cache:            cs,
		RouteLatency:     m.routeLatency.Snapshot(),
		RouteLatencyHit:  m.routeLatencyHit.Snapshot(),
		RouteLatencyMiss: m.routeLatencyMiss.Snapshot(),
		BatchLatency:     m.batchLatency.Snapshot(),
		Trace:            tm,
		TCP: TCPSnapshot{
			Connections:  m.tcpConns.Load(),
			Frames:       m.tcpFrames.Load(),
			Routes:       m.tcpRoutes.Load(),
			RouteErrors:  m.tcpErrors.Load(),
			BadFrames:    m.tcpBadFrames.Load(),
			FrameLatency: m.tcpLatency.Snapshot(),
		},
		Chaos: ChaosSnapshot{
			Drops:            m.chaosDrops.Load(),
			Retries:          m.chaosRetries.Load(),
			FailedDeliveries: m.chaosFailed.Load(),
		},
	}
}
