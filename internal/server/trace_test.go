package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"compactrouting/internal/core"
	"compactrouting/internal/trace"
)

func newTraceEngine(t testing.TB, schemes []string, cacheEntries, sample, hopCap int) *Engine {
	t.Helper()
	eng, err := New(Config{
		Build:        geometricBuild(80),
		Seed:         1,
		Eps:          0.25,
		Schemes:      schemes,
		CacheEntries: cacheEntries,
		TraceSample:  sample,
		TraceHopCap:  hopCap,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// longPair finds a sampled pair whose route takes at least minHops hops.
func longPair(t *testing.T, eng *Engine, scheme string, minHops int) (int, int) {
	t.Helper()
	for _, p := range core.SamplePairs(eng.Graph().Nodes, 64, 7) {
		res, err := eng.Route(scheme, p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if res.Hops >= minHops {
			return p[0], p[1]
		}
	}
	t.Fatalf("no pair with >= %d hops in sample", minHops)
	return 0, 0
}

// TestTraceOverHTTPShape pins the ?trace=1 contract: the hop log is
// attached, consistent with the result's own accounting, and absent
// without the flag.
func TestTraceOverHTTPShape(t *testing.T) {
	eng := newTraceEngine(t, []string{"simple-labeled"}, 64, 0, 0)
	ts := httptest.NewServer(eng.Handler())
	defer ts.Close()
	src, dst := longPair(t, eng, "simple-labeled", 3)

	var traced RouteResult
	if code := postJSON(t, ts.URL+"/route?trace=1", RouteRequest{Scheme: "simple-labeled", Src: src, Dst: dst}, &traced); code != 200 {
		t.Fatalf("traced route status %d", code)
	}
	w := traced.Trace
	if w == nil {
		t.Fatal("?trace=1 response carries no trace")
	}
	if w.Src != src || w.Dst != dst {
		t.Fatalf("trace endpoints (%d,%d), want (%d,%d)", w.Src, w.Dst, src, dst)
	}
	if w.Truncated || w.TotalHops != traced.Hops || len(w.Hops) != traced.Hops {
		t.Fatalf("trace hop accounting %d/%d (truncated=%v), route has %d hops", len(w.Hops), w.TotalHops, w.Truncated, traced.Hops)
	}
	if w.Hops[0].From != src || w.Hops[len(w.Hops)-1].To != dst {
		t.Fatalf("hop log does not span src..dst: %+v", w.Hops)
	}
	if w.Summary.Hops != traced.Hops || w.Summary.Cost != traced.Cost || w.Summary.Stretch != traced.Stretch {
		t.Fatalf("trace summary %+v disagrees with route %+v", w.Summary, traced)
	}
	if w.Summary.MaxHeaderBits != traced.MaxHeaderBits {
		t.Fatalf("trace max header bits %d, route says %d", w.Summary.MaxHeaderBits, traced.MaxHeaderBits)
	}

	var plain RouteResult
	if code := postJSON(t, ts.URL+"/route", RouteRequest{Scheme: "simple-labeled", Src: src, Dst: dst}, &plain); code != 200 {
		t.Fatalf("plain route status %d", code)
	}
	if plain.Trace != nil {
		t.Fatal("untraced response carries a trace")
	}
	if plain.Cost != traced.Cost || plain.Hops != traced.Hops {
		t.Fatalf("tracing changed the route: %+v vs %+v", plain, traced)
	}
}

// TestTracedQueriesBypassCacheButFeedIt pins the cache interplay: a
// traced query never returns a cached (trace-less) entry, but its
// result does populate the cache for later untraced queries — and
// cached responses never carry a trace.
func TestTracedQueriesBypassCacheButFeedIt(t *testing.T) {
	eng := newTraceEngine(t, []string{"full-table"}, 64, 0, 0)
	ts := httptest.NewServer(eng.Handler())
	defer ts.Close()
	src, dst := longPair(t, eng, "full-table", 2)
	url := ts.URL + "/route"
	req := RouteRequest{Scheme: "full-table", Src: src, Dst: dst}

	var first, second, third RouteResult
	postJSON(t, url+"?trace=1", req, &first)
	postJSON(t, url+"?trace=1", req, &second)
	if first.Trace == nil || second.Trace == nil {
		t.Fatal("traced queries must always carry a hop log")
	}
	if second.Cached {
		t.Fatal("traced query served from cache")
	}
	postJSON(t, url, req, &third)
	if !third.Cached {
		t.Fatal("untraced repeat should hit the cache the traced query populated")
	}
	if third.Trace != nil {
		t.Fatal("cached result carries a trace")
	}
}

// TestTraceHopCapTruncation pins Config.TraceHopCap: the echoed hop log
// is cut at the cap with Truncated set, while the summary still covers
// the full walk.
func TestTraceHopCapTruncation(t *testing.T) {
	eng := newTraceEngine(t, []string{"simple-labeled"}, 0, 0, 2)
	src, dst := longPair(t, eng, "simple-labeled", 3)
	res, err := eng.RouteTraced("simple-labeled", src, dst)
	if err != nil {
		t.Fatal(err)
	}
	w := res.Trace
	if w == nil {
		t.Fatal("RouteTraced returned no trace")
	}
	if !w.Truncated || len(w.Hops) != 2 {
		t.Fatalf("cap=2: truncated=%v with %d hops echoed", w.Truncated, len(w.Hops))
	}
	if w.TotalHops != res.Hops || w.Summary.Hops != res.Hops {
		t.Fatalf("truncated trace lost the full-walk accounting: total=%d summary=%d route=%d", w.TotalHops, w.Summary.Hops, res.Hops)
	}
}

// TestTraceSamplingDeterministic pins the 1-in-N sampler: two engines
// built from the same config, fed the same query sequence, sample the
// same queries and accumulate identical trace metrics.
func TestTraceSamplingDeterministic(t *testing.T) {
	pairs := core.SamplePairs(80, 30, 5)
	run := func() TraceMetricsSnapshot {
		eng := newTraceEngine(t, []string{"simple-labeled"}, 64, 3, 0)
		for _, p := range pairs {
			if _, err := eng.Route("simple-labeled", p[0], p[1]); err != nil {
				t.Fatal(err)
			}
		}
		return eng.Metrics().Trace
	}
	a, b := run(), run()
	if a.Sampled != 10 {
		t.Fatalf("30 queries at 1-in-3: sampled %d, want 10", a.Sampled)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical engines diverged:\n%+v\nvs\n%+v", a, b)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("trace metrics JSON diverged:\n%s\nvs\n%s", ja, jb)
	}
}

// TestMetricsTraceBlock pins the /metrics trace section: per-scheme
// stretch histograms in sorted scheme order with the shared bucket
// edges, hop/header histograms covering every computed route, and a
// phase decomposition fed by the sampler.
func TestMetricsTraceBlock(t *testing.T) {
	eng := newTraceEngine(t, []string{"simple-labeled", "full-table"}, 0, 1, 0)
	ts := httptest.NewServer(eng.Handler())
	defer ts.Close()
	pairs := core.SamplePairs(80, 10, 9)
	for _, scheme := range []string{"full-table", "simple-labeled"} {
		for _, p := range pairs {
			var res RouteResult
			if code := postJSON(t, ts.URL+"/route", RouteRequest{Scheme: scheme, Src: p[0], Dst: p[1]}, &res); code != 200 {
				t.Fatalf("route status %d", code)
			}
		}
	}

	var snap MetricsSnapshot
	if code := getJSON(t, ts.URL+"/metrics", &snap); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	tm := snap.Trace
	if tm.SampleEvery != 1 {
		t.Fatalf("sample_every = %d, want 1", tm.SampleEvery)
	}
	if want := uint64(2 * len(pairs)); tm.Sampled != want {
		t.Fatalf("sampled = %d, want %d", tm.Sampled, want)
	}
	if len(tm.Stretch) != 2 || tm.Stretch[0].Scheme != "full-table" || tm.Stretch[1].Scheme != "simple-labeled" {
		t.Fatalf("stretch histograms not in sorted scheme order: %+v", tm.Stretch)
	}
	for _, sh := range tm.Stretch {
		if sh.Hist.Count != uint64(len(pairs)) {
			t.Fatalf("%s stretch hist counts %d routes, want %d", sh.Scheme, sh.Hist.Count, len(pairs))
		}
		last := -1.0
		for i, b := range sh.Hist.Buckets {
			if b.LE == -1 {
				if i != len(sh.Hist.Buckets)-1 {
					t.Fatalf("%s: overflow bucket not last: %+v", sh.Scheme, sh.Hist.Buckets)
				}
				continue
			}
			if b.LE <= last {
				t.Fatalf("%s: bucket edges not ascending: %+v", sh.Scheme, sh.Hist.Buckets)
			}
			last = b.LE
		}
	}
	// Full-table routes are optimal: every observation lands in the
	// lowest buckets (walk-order float summation can nudge a ratio a
	// few ulps past 1.0, so allow the second bucket too).
	for _, b := range tm.Stretch[0].Hist.Buckets {
		if b.LE == -1 || b.LE > trace.StretchBucketEdges[1] {
			t.Fatalf("full-table stretch leaked past le=%v: %+v", trace.StretchBucketEdges[1], tm.Stretch[0].Hist.Buckets)
		}
	}
	if tm.Hops.Count != uint64(2*len(pairs)) || tm.HeaderBits.Count != uint64(2*len(pairs)) {
		t.Fatalf("hop/header histograms count %d/%d, want %d each", tm.Hops.Count, tm.HeaderBits.Count, 2*len(pairs))
	}
	if len(tm.Phases) == 0 {
		t.Fatal("sampled traces produced no phase decomposition")
	}
	for _, p := range tm.Phases {
		if p.Hops == 0 {
			t.Fatalf("empty phase row %+v in decomposition", p)
		}
	}
}

// TestTraceHammer drives 64 concurrent clients mixing traced, untraced,
// and metrics requests; run under -race this pins the concurrency
// safety of the sampler, the metrics histograms, and the trace-aware
// cache path.
func TestTraceHammer(t *testing.T) {
	eng := newTraceEngine(t, []string{"simple-labeled", "full-table"}, 128, 2, 8)
	ts := httptest.NewServer(eng.Handler())
	defer ts.Close()
	n := eng.Graph().Nodes

	const clients = 64
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			schemes := []string{"simple-labeled", "full-table"}
			for i := 0; i < 25; i++ {
				src, dst := rng.Intn(n), rng.Intn(n)
				if src == dst {
					dst = (dst + 1) % n
				}
				url := ts.URL + "/route"
				wantTrace := i%3 == 0
				if wantTrace {
					url += "?trace=1"
				}
				var res RouteResult
				code := postJSON(t, url, RouteRequest{Scheme: schemes[i%2], Src: src, Dst: dst}, &res)
				if code != 200 {
					errs <- fmt.Errorf("client %d: status %d", c, code)
					return
				}
				if wantTrace && res.Trace == nil {
					errs <- fmt.Errorf("client %d: traced query %d returned no trace", c, i)
					return
				}
				if !wantTrace && res.Trace != nil {
					errs <- fmt.Errorf("client %d: untraced query %d returned a trace", c, i)
					return
				}
				if i%10 == 9 {
					var snap MetricsSnapshot
					if code := getJSON(t, ts.URL+"/metrics", &snap); code != 200 {
						errs <- fmt.Errorf("client %d: metrics status %d", c, code)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if snap := eng.Metrics(); snap.Trace.Sampled == 0 {
		t.Fatal("hammer sampled no traces at 1-in-2")
	}
}
