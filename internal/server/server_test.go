package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"compactrouting"
	"compactrouting/internal/core"
)

func geometricBuild(n int) func(seed int64) (*compactrouting.Network, error) {
	return func(seed int64) (*compactrouting.Network, error) {
		radius := 1.8 * math.Sqrt(math.Log(float64(n))/float64(n))
		return compactrouting.RandomGeometricNetwork(n, radius, seed)
	}
}

func newTestEngine(t testing.TB, schemes []string, cacheEntries int) *Engine {
	t.Helper()
	eng, err := New(Config{
		Build:        geometricBuild(80),
		Seed:         1,
		Eps:          0.25,
		Schemes:      schemes,
		CacheEntries: cacheEntries,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func postJSON(t testing.TB, url string, body, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

func getJSON(t testing.TB, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestRouteMatchesPublicAPI(t *testing.T) {
	// The engine serves the exact walk the scheme's own sequential
	// router produces: same step functions, so same path and cost.
	eng := newTestEngine(t, []string{"simple-labeled", "full-table"}, 0)
	st := eng.st.Load()
	lab, err := st.nw.NewSimpleLabeled(0.25)
	if err != nil {
		t.Fatal(err)
	}
	n := st.nw.N()
	for _, p := range core.SamplePairs(n, 100, 7) {
		got, err := eng.Route("simple-labeled", p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		want, err := lab.Route(p[0], lab.Label(p[1]))
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Path) != len(want.Path) || math.Abs(got.Cost-want.Cost) > 1e-9 {
			t.Fatalf("route %v: engine (%d hops, %v) vs sequential (%d hops, %v)",
				p, got.Hops, got.Cost, len(want.Path)-1, want.Cost)
		}
		for k := range got.Path {
			if got.Path[k] != want.Path[k] {
				t.Fatalf("route %v: paths diverge at hop %d", p, k)
			}
		}
		ft, err := eng.Route("full-table", p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ft.Stretch-1) > 1e-9 {
			t.Fatalf("full-table stretch %v != 1", ft.Stretch)
		}
	}
}

func TestCacheHitSecondQuery(t *testing.T) {
	eng := newTestEngine(t, []string{"full-table"}, 1024)
	first, err := eng.Route("full-table", 3, 40)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first query reported cached")
	}
	second, err := eng.Route("full-table", 3, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second query missed the cache")
	}
	if second.Cost != first.Cost || second.Hops != first.Hops {
		t.Fatalf("cached result differs: %+v vs %+v", second, first)
	}
	m := eng.Metrics()
	if m.Cache.Hits != 1 || m.Cache.Misses != 1 {
		t.Fatalf("cache counters hits=%d misses=%d, want 1/1", m.Cache.Hits, m.Cache.Misses)
	}
}

func TestLRUEvictionBoundsEntries(t *testing.T) {
	const capEntries = 16
	eng := newTestEngine(t, []string{"full-table"}, capEntries)
	n := eng.Graph().Nodes
	routed := 0
	for s := 0; s < n && routed < 40*capEntries; s++ {
		for d := 0; d < n && routed < 40*capEntries; d++ {
			if s == d {
				continue
			}
			if _, err := eng.Route("full-table", s, d); err != nil {
				t.Fatal(err)
			}
			routed++
		}
	}
	m := eng.Metrics()
	if m.Cache.Size > capEntries {
		t.Fatalf("cache holds %d entries, capacity %d", m.Cache.Size, capEntries)
	}
	if m.Cache.Evicted == 0 {
		t.Fatal("no evictions recorded after overfilling the cache")
	}
}

func TestReloadInvalidatesCache(t *testing.T) {
	eng := newTestEngine(t, []string{"full-table"}, 1024)
	if _, err := eng.Route("full-table", 2, 30); err != nil {
		t.Fatal(err)
	}
	r, err := eng.Route("full-table", 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Cached {
		t.Fatal("warm-up query not cached")
	}
	if err := eng.Reload(99); err != nil {
		t.Fatal(err)
	}
	if g := eng.Graph(); g.Generation != 1 || g.Seed != 99 {
		t.Fatalf("reload did not swap state: %+v", g)
	}
	r, err = eng.Route("full-table", 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cached {
		t.Fatal("cache served a pre-reload entry for the new graph")
	}
	// The route must be consistent with the NEW metric.
	if want := eng.st.Load().nw.Dist(2, 30); math.Abs(r.Optimal-want) > 1e-9 {
		t.Fatalf("post-reload Optimal %v, want %v", r.Optimal, want)
	}
}

func TestBatchOverHTTPWithRepeatHitRate(t *testing.T) {
	// Acceptance: a 1000-pair batch answers, and a repeated batch shows
	// a nonzero cache hit rate in /metrics.
	eng := newTestEngine(t, []string{"simple-labeled"}, 1<<14)
	ts := httptest.NewServer(eng.Handler())
	defer ts.Close()

	n := eng.Graph().Nodes
	pairs := core.SamplePairs(n, 1000, 11)
	req := BatchRequest{Scheme: "simple-labeled", Pairs: pairs}

	var resp BatchResponse
	if code := postJSON(t, ts.URL+"/route/batch", req, &resp); code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if resp.Summary.Count != 1000 || resp.Summary.Errors != 0 {
		t.Fatalf("batch summary %+v", resp.Summary)
	}
	if len(resp.Results) != 1000 {
		t.Fatalf("got %d results", len(resp.Results))
	}
	if resp.Summary.MeanStretch < 1-1e-9 {
		t.Fatalf("mean stretch %v < 1", resp.Summary.MeanStretch)
	}

	if code := postJSON(t, ts.URL+"/route/batch", req, &resp); code != http.StatusOK {
		t.Fatalf("repeat batch status %d", code)
	}
	if resp.Summary.CacheHits == 0 {
		t.Fatal("repeated batch produced no cache hits")
	}

	var m MetricsSnapshot
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if m.Cache.HitRate == 0 {
		t.Fatal("metrics report zero cache hit rate after repeated batch")
	}
	if m.BatchRoutes != 2000 {
		t.Fatalf("batch_routes %d, want 2000", m.BatchRoutes)
	}
}

func TestSchemesEndpointAccounting(t *testing.T) {
	eng := newTestEngine(t, []string{"simple-labeled", "full-table"}, 0)
	ts := httptest.NewServer(eng.Handler())
	defer ts.Close()

	var resp SchemesResponse
	if code := getJSON(t, ts.URL+"/schemes", &resp); code != http.StatusOK {
		t.Fatalf("schemes status %d", code)
	}
	if resp.Graph.Nodes == 0 || resp.Graph.Edges == 0 {
		t.Fatalf("graph info empty: %+v", resp.Graph)
	}
	if len(resp.Schemes) != 2 {
		t.Fatalf("got %d schemes", len(resp.Schemes))
	}
	for _, si := range resp.Schemes {
		if si.LabelBits <= 0 || si.TableMaxBits <= 0 || si.TableMeanBits <= 0 {
			t.Fatalf("empty accounting for %s: %+v", si.Name, si)
		}
	}
	// Labels are the paper's ceil(log n)-bit node labels.
	wantLabel := 0
	for 1<<wantLabel < resp.Graph.Nodes {
		wantLabel++
	}
	for _, si := range resp.Schemes {
		if si.LabelBits != wantLabel {
			t.Fatalf("%s label_bits %d, want ceil(log2 %d) = %d",
				si.Name, si.LabelBits, resp.Graph.Nodes, wantLabel)
		}
	}
}

func TestBadRequests(t *testing.T) {
	eng := newTestEngine(t, []string{"full-table"}, 0)
	ts := httptest.NewServer(eng.Handler())
	defer ts.Close()

	if code := postJSON(t, ts.URL+"/route", RouteRequest{Scheme: "nope", Src: 0, Dst: 1}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("unknown scheme: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/route", RouteRequest{Scheme: "full-table", Src: -1, Dst: 1}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("out-of-range src: status %d", code)
	}
	resp, err := http.Post(ts.URL+"/route", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", resp.StatusCode)
	}
	if code := postJSON(t, ts.URL+"/route/batch", BatchRequest{Scheme: "full-table"}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", code)
	}
	var m MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &m)
	if m.BadRequests == 0 {
		t.Fatal("bad requests not counted")
	}
}

func TestHammerConcurrentClients(t *testing.T) {
	// 64 concurrent clients against two schemes, mixing single routes,
	// batches and metrics scrapes — must be race-clean under -race.
	eng := newTestEngine(t, []string{"simple-labeled", "full-table"}, 4096)
	ts := httptest.NewServer(eng.Handler())
	defer ts.Close()

	const clients = 64
	const perClient = 30
	n := eng.Graph().Nodes
	schemes := []string{"simple-labeled", "full-table"}
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			pairs := core.SamplePairs(n, perClient, int64(c+1))
			scheme := schemes[c%len(schemes)]
			for i, p := range pairs {
				switch i % 10 {
				case 7: // periodic batch
					var resp BatchResponse
					code := postJSON(t, ts.URL+"/route/batch",
						BatchRequest{Scheme: scheme, Pairs: pairs[:8]}, &resp)
					if code != http.StatusOK || resp.Summary.Errors != 0 {
						errs <- fmt.Errorf("client %d: batch status %d summary %+v", c, code, resp.Summary)
						return
					}
				case 9: // periodic metrics scrape
					var m MetricsSnapshot
					if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
						errs <- fmt.Errorf("client %d: metrics status %d", c, code)
						return
					}
				default:
					var rr RouteResult
					code := postJSON(t, ts.URL+"/route",
						RouteRequest{Scheme: scheme, Src: p[0], Dst: p[1]}, &rr)
					if code != http.StatusOK {
						errs <- fmt.Errorf("client %d: route status %d", c, code)
						return
					}
					if rr.Stretch < 1-1e-9 {
						errs <- fmt.Errorf("client %d: stretch %v < 1", c, rr.Stretch)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	m := eng.Metrics()
	if m.InFlight != 0 {
		t.Fatalf("in-flight gauge stuck at %d", m.InFlight)
	}
	if m.Routes == 0 || m.BatchRoutes == 0 {
		t.Fatalf("hammer recorded no traffic: %+v", m)
	}
}

func TestCacheGetPutSameKeyRace(t *testing.T) {
	// Put overwrites an existing entry's val in place under the shard
	// lock; Get must read it under the same lock. Regression for a race
	// on hot keys flagged by -race.
	c := newRouteCache(64)
	c.Put("s", 1, 2, 0, &RouteResult{Hops: 1})
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				if w%2 == 0 {
					c.Put("s", 1, 2, 0, &RouteResult{Hops: i})
				} else if v, ok := c.Get("s", 1, 2, 0); !ok || v == nil {
					t.Error("hot key vanished")
					return
				}
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond)
	close(done)
	wg.Wait()
}

func TestSmallCacheCapacityBound(t *testing.T) {
	// Capacities below the shard count must still bound total entries
	// at the configured capacity (fewer shards, not a rounded-up cap).
	for _, capEntries := range []int{1, 2, 3, 5, 15} {
		c := newRouteCache(capEntries)
		for i := 0; i < 20*capEntries; i++ {
			c.Put("s", i, i+1, 0, &RouteResult{Hops: i})
		}
		if got := c.Len(); got > capEntries {
			t.Errorf("capacity %d: cache holds %d entries", capEntries, got)
		}
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	// Body limits trip before JSON decoding buffers the request.
	eng := newTestEngine(t, []string{"full-table"}, 0)
	ts := httptest.NewServer(eng.Handler())
	defer ts.Close()

	pairs := bytes.Repeat([]byte("[0,1],"), maxBatchBody/6+1)
	body := append([]byte(`{"scheme":"full-table","pairs":[`), pairs...)
	body = append(body[:len(body)-1], []byte("]}")...)
	resp, err := http.Post(ts.URL+"/route/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch body: status %d, want 400", resp.StatusCode)
	}
}

func TestHammerWithConcurrentReloads(t *testing.T) {
	// Queries racing graph reloads: every response must still be
	// internally consistent (valid stretch), and the engine race-clean.
	if testing.Short() {
		t.Skip("short mode")
	}
	eng := newTestEngine(t, []string{"full-table"}, 256)
	ts := httptest.NewServer(eng.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	reloaderDone := make(chan struct{})
	go func() {
		defer close(reloaderDone)
		for seed := int64(2); ; seed++ {
			select {
			case <-stop:
				return
			default:
			}
			if code := postJSON(t, ts.URL+"/reload", ReloadRequest{Seed: seed}, nil); code != http.StatusOK {
				t.Errorf("reload status %d", code)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var rr RouteResult
				code := postJSON(t, ts.URL+"/route",
					RouteRequest{Scheme: "full-table", Src: (c + i) % 60, Dst: (c*7 + i + 1) % 60}, &rr)
				// 422 is acceptable mid-reload (node range can shrink);
				// anything else is a bug.
				if code != http.StatusOK && code != http.StatusUnprocessableEntity {
					t.Errorf("client %d: status %d", c, code)
					return
				}
				if code == http.StatusOK && rr.Src != rr.Dst && rr.Stretch < 1-1e-9 {
					t.Errorf("client %d: stretch %v < 1", c, rr.Stretch)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	<-reloaderDone
	if eng.Metrics().Reloads == 0 {
		t.Fatal("no reloads happened during the hammer")
	}
}
