package server

import (
	"runtime"
	"testing"
)

// TestEngineParallelBuildEquivalence: the engine compiles its scheme set
// with a parallel fan-out; everything it reports about the compiled
// schemes (bit accounting, order) must match a GOMAXPROCS=1 serial
// build. BuildMillis is wall clock and is excluded.
func TestEngineParallelBuildEquivalence(t *testing.T) {
	build := func() []SchemeInfo {
		eng := newTestEngine(t, SchemeNames, 0)
		return eng.Schemes()
	}
	old := runtime.GOMAXPROCS(1)
	serial := build()
	runtime.GOMAXPROCS(8)
	parallel := build()
	runtime.GOMAXPROCS(old)
	if len(serial) != len(parallel) {
		t.Fatalf("scheme count differs: serial %d, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		s.BuildMillis, p.BuildMillis = 0, 0
		if s != p {
			t.Fatalf("scheme %d (%s): parallel build info %+v differs from serial %+v", i, s.Name, p, s)
		}
	}
}
