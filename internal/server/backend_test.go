package server

import (
	"testing"

	"compactrouting"
	"compactrouting/internal/core"
	"compactrouting/internal/snapshot"
)

// backendEngine builds a test engine whose network is preprocessed on
// the given distance backend.
func backendEngine(t *testing.T, backend compactrouting.Backend, schemes ...string) *Engine {
	t.Helper()
	eng, err := New(Config{
		Build: func(seed int64) (*compactrouting.Network, error) {
			return compactrouting.GenerateNetwork("grid-holes", 36, seed, backend)
		},
		Seed:    5,
		Eps:     0.25,
		Schemes: schemes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestServeBackendEquivalence pins the serving-plane half of the
// dense/lazy equivalence contract: two engines over the same graph,
// one per backend, must serve identical routes — path, cost, optimal
// distance, header bits — for every pair and scheme.
func TestServeBackendEquivalence(t *testing.T) {
	schemes := []string{"simple-labeled", "scale-free-labeled", "name-independent", "full-table"}
	dense := backendEngine(t, compactrouting.BackendDense, schemes...)
	lazy := backendEngine(t, compactrouting.BackendLazy, schemes...)
	n := dense.Graph().Nodes
	if ln := lazy.Graph().Nodes; ln != n {
		t.Fatalf("backends built different graphs: %d vs %d nodes", n, ln)
	}
	for _, name := range schemes {
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst += 5 {
				dr, err := dense.Route(name, src, dst)
				if err != nil {
					t.Fatalf("dense %s %d->%d: %v", name, src, dst, err)
				}
				lr, err := lazy.Route(name, src, dst)
				if err != nil {
					t.Fatalf("lazy %s %d->%d: %v", name, src, dst, err)
				}
				if dr.Cost != lr.Cost || dr.Optimal != lr.Optimal || dr.Hops != lr.Hops ||
					dr.MaxHeaderBits != lr.MaxHeaderBits || len(dr.Path) != len(lr.Path) {
					t.Fatalf("%s %d->%d diverged: dense %+v, lazy %+v", name, src, dst, dr, lr)
				}
				for i := range dr.Path {
					if dr.Path[i] != lr.Path[i] {
						t.Fatalf("%s %d->%d path diverged at hop %d: dense %v, lazy %v",
							name, src, dst, i, dr.Path, lr.Path)
					}
				}
			}
		}
	}
}

// TestSnapshotRoundTripBothBackends is the regression test for the
// snapshot/Distancer round trip: on either backend, Snapshot →
// Encode → Decode → NewFromSnapshot must restore an engine that (a)
// runs zero scheme constructors (routed -snapshot's load-and-serve
// guarantee), and (b) serves routes identical to the engine it was
// taken from. Lazy snapshots additionally must not carry the n×n
// matrices.
func TestSnapshotRoundTripBothBackends(t *testing.T) {
	schemes := []string{"simple-labeled", "name-independent", "full-table"}
	for _, backend := range []compactrouting.Backend{compactrouting.BackendDense, compactrouting.BackendLazy} {
		t.Run(string(backend), func(t *testing.T) {
			eng := backendEngine(t, backend, schemes...)
			f, err := eng.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if f.Backend != string(backend) {
				t.Fatalf("snapshot backend = %q, want %q", f.Backend, backend)
			}
			n := eng.Graph().Nodes
			wantMat := 0
			if backend == compactrouting.BackendDense {
				wantMat = n * n
			}
			if len(f.Dist) != wantMat || len(f.NextHop) != wantMat {
				t.Fatalf("%s snapshot carries %d/%d matrix entries, want %d", backend, len(f.Dist), len(f.NextHop), wantMat)
			}
			data, err := f.Encode()
			if err != nil {
				t.Fatal(err)
			}
			f2, err := snapshot.Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			before := core.SchemeBuilds()
			eng2, err := NewFromSnapshot(Config{}, f2)
			if err != nil {
				t.Fatal(err)
			}
			if restored := eng2.Graph(); restored.Nodes != n {
				t.Fatalf("restored %d nodes, want %d", restored.Nodes, n)
			}
			for _, name := range schemes {
				for src := 0; src < n; src += 3 {
					for dst := 0; dst < n; dst += 7 {
						orig, err := eng.Route(name, src, dst)
						if err != nil {
							t.Fatalf("original %s %d->%d: %v", name, src, dst, err)
						}
						got, err := eng2.Route(name, src, dst)
						if err != nil {
							t.Fatalf("restored %s %d->%d: %v", name, src, dst, err)
						}
						if orig.Cost != got.Cost || orig.Optimal != got.Optimal || orig.Hops != got.Hops {
							t.Fatalf("%s %d->%d: restored route diverged: %+v vs %+v", name, src, dst, orig, got)
						}
					}
				}
			}
			if after := core.SchemeBuilds(); after != before {
				t.Fatalf("%s cold start ran %d scheme constructors", backend, after-before)
			}
		})
	}
}
