package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// MaxBatchPairs bounds one /route/batch request.
const MaxBatchPairs = 100000

// RouteRequest is the POST /route body.
type RouteRequest struct {
	Scheme string `json:"scheme"`
	Src    int    `json:"src"`
	Dst    int    `json:"dst"`
	// OmitPath drops the path from the response (headers and counts
	// are kept); useful for stretch-only clients.
	OmitPath bool `json:"omit_path,omitempty"`
}

// BatchRequest is the POST /route/batch body.
type BatchRequest struct {
	Scheme string   `json:"scheme"`
	Pairs  [][2]int `json:"pairs"`
	// IncludePaths adds the full path to every result (off by default:
	// a 1000-pair batch of long walks is a large response).
	IncludePaths bool `json:"include_paths,omitempty"`
}

// BatchResponse is the POST /route/batch response body.
type BatchResponse struct {
	Scheme  string        `json:"scheme"`
	Summary BatchSummary  `json:"summary"`
	Results []RouteResult `json:"results"`
}

// ReloadRequest is the POST /reload body.
type ReloadRequest struct {
	Seed int64 `json:"seed"`
}

// SchemesResponse is the GET /schemes response body.
type SchemesResponse struct {
	Graph   GraphInfo    `json:"graph"`
	Schemes []SchemeInfo `json:"schemes"`
}

// Handler returns the engine's HTTP API:
//
//	POST /route        one s->t query (?trace=1 attaches the hop log)
//	POST /route/batch  many pairs, fanned over the worker pool
//	GET  /schemes      per-scheme table/label bit accounting
//	GET  /metrics      live counters, latency/stretch histograms, cache stats
//	POST /reload       regenerate the network (new seed), drop the cache
//	GET  /healthz      liveness probe
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/route", e.instrument(e.handleRoute))
	mux.HandleFunc("/route/batch", e.instrument(e.handleBatch))
	mux.HandleFunc("/schemes", e.instrument(e.handleSchemes))
	mux.HandleFunc("/metrics", e.instrument(e.handleMetrics))
	mux.HandleFunc("/reload", e.instrument(e.handleReload))
	mux.HandleFunc("/healthz", e.instrument(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}))
	return mux
}

// instrument wraps a handler with the request counter and the in-flight
// gauge.
func (e *Engine) instrument(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		e.met.requests.Add(1)
		e.met.inFlight.Add(1)
		defer e.met.inFlight.Add(-1)
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (e *Engine) badRequest(w http.ResponseWriter, format string, args ...any) {
	e.met.badRequests.Add(1)
	writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// Request-body byte limits, enforced before JSON decoding so an
// oversized request is rejected without buffering hundreds of MB (the
// MaxBatchPairs check alone would only run after a full decode).
const (
	maxRouteBody = 1 << 20            // single-query and reload bodies
	maxBatchBody = MaxBatchPairs * 32 // ~32 bytes per encoded pair
)

func decode(w http.ResponseWriter, r *http.Request, v any, limit int64) error {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func (e *Engine) handleRoute(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		e.badRequest(w, "POST only")
		return
	}
	var req RouteRequest
	if err := decode(w, r, &req, maxRouteBody); err != nil {
		e.badRequest(w, "bad request body: %v", err)
		return
	}
	wantTrace := r.URL.Query().Get("trace") == "1"
	start := time.Now()
	var res RouteResult
	var err error
	if wantTrace {
		res, err = e.RouteTraced(req.Scheme, req.Src, req.Dst)
	} else {
		res, err = e.Route(req.Scheme, req.Src, req.Dst)
	}
	elapsed := time.Since(start)
	e.met.routeLatency.Observe(elapsed)
	e.met.routes.Add(1)
	if err != nil {
		e.met.routeErrors.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
		return
	}
	if res.Cached {
		e.met.routeLatencyHit.Observe(elapsed)
	} else {
		e.met.routeLatencyMiss.Observe(elapsed)
	}
	if req.OmitPath {
		res.Path = nil
	}
	writeJSON(w, http.StatusOK, res)
}

func (e *Engine) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		e.badRequest(w, "POST only")
		return
	}
	var req BatchRequest
	if err := decode(w, r, &req, maxBatchBody); err != nil {
		e.badRequest(w, "bad request body: %v", err)
		return
	}
	if len(req.Pairs) == 0 {
		e.badRequest(w, "empty pairs")
		return
	}
	if len(req.Pairs) > MaxBatchPairs {
		e.badRequest(w, "%d pairs exceeds limit %d", len(req.Pairs), MaxBatchPairs)
		return
	}
	start := time.Now()
	results, sum := e.RouteBatch(req.Scheme, req.Pairs)
	e.met.batchLatency.Observe(time.Since(start))
	e.met.batchRoutes.Add(uint64(len(req.Pairs)))
	e.met.routeErrors.Add(uint64(sum.Errors))
	if !req.IncludePaths {
		for i := range results {
			results[i].Path = nil
		}
	}
	writeJSON(w, http.StatusOK, BatchResponse{Scheme: req.Scheme, Summary: sum, Results: results})
}

func (e *Engine) handleSchemes(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		e.badRequest(w, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, SchemesResponse{Graph: e.Graph(), Schemes: e.Schemes()})
}

func (e *Engine) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		e.badRequest(w, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, e.Metrics())
}

func (e *Engine) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		e.badRequest(w, "POST only")
		return
	}
	var req ReloadRequest
	if err := decode(w, r, &req, maxRouteBody); err != nil {
		e.badRequest(w, "bad request body: %v", err)
		return
	}
	start := time.Now()
	if err := e.Reload(req.Seed); err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"graph":     e.Graph(),
		"reload_ms": float64(time.Since(start).Microseconds()) / 1000,
	})
}
