package server

import (
	"testing"

	"compactrouting/internal/core"
)

// BenchmarkServerRouteCached measures the hot path when every query is
// a cache hit: one map lookup plus a struct copy, no step-function
// walk.
func BenchmarkServerRouteCached(b *testing.B) {
	eng := newTestEngine(b, []string{"simple-labeled"}, 1<<14)
	n := eng.Graph().Nodes
	pairs := core.SamplePairs(n, 256, 3)
	for _, p := range pairs { // warm the cache
		if _, err := eng.Route("simple-labeled", p[0], p[1]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			p := pairs[i%len(pairs)]
			i++
			r, err := eng.Route("simple-labeled", p[0], p[1])
			if err != nil {
				b.Fatal(err)
			}
			if !r.Cached {
				b.Fatal("expected cache hit")
			}
		}
	})
}

// BenchmarkServerRouteUncached measures the same queries with caching
// disabled: every query walks the scheme's step function hop by hop.
func BenchmarkServerRouteUncached(b *testing.B) {
	eng := newTestEngine(b, []string{"simple-labeled"}, 0)
	n := eng.Graph().Nodes
	pairs := core.SamplePairs(n, 256, 3)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			p := pairs[i%len(pairs)]
			i++
			if _, err := eng.Route("simple-labeled", p[0], p[1]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
