package server

import (
	"testing"

	"compactrouting/internal/bits"
	"compactrouting/internal/frame"
)

// framedCycle is the serving plane's hot path exactly as handleConn
// runs it: decode a route-request payload into reused state, answer
// every pair through RouteLite, encode the response, and frame it into
// a reused output buffer.
type framedCycle struct {
	rd      bits.Reader
	w       bits.Writer
	req     frame.RouteRequest
	resp    frame.RouteResponse
	out     []byte
	payload []byte
}

func newFramedCycle(t testing.TB, pairs []frame.Pair) *framedCycle {
	t.Helper()
	fc := &framedCycle{}
	var w bits.Writer
	(&frame.RouteRequest{Scheme: 0, Pairs: pairs}).Encode(&w)
	fc.payload = append([]byte(nil), w.Bytes()...)
	return fc
}

func (fc *framedCycle) run(t testing.TB, eng *Engine) {
	if err := fc.req.DecodeInto(fc.payload, &fc.rd); err != nil {
		t.Fatal(err)
	}
	fc.resp.Results = fc.resp.Results[:0]
	for _, p := range fc.req.Pairs {
		res := eng.RouteLite(fc.req.Scheme, int(p.Src), int(p.Dst))
		if res.Status != frame.StatusOK {
			t.Fatalf("pair %+v: %+v", p, res)
		}
		fc.resp.Results = append(fc.resp.Results, res)
	}
	fc.w.Reset()
	fc.resp.Encode(&fc.w)
	var err error
	fc.out, err = frame.AppendFrame(fc.out[:0], frame.TypeRouteResponse, 1, fc.w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
}

// TestFramedRoutePathAllocs pins the framed batch route path —
// decode→route→encode — at zero heap allocations per cycle, on the
// cache-hit path AND the cache-miss path, for both a baseline and a
// labeled scheme. AllocsPerRun's warm-up invocation grows the reusable
// buffers and primes the hit-path cache; after that, every cycle must
// touch only preallocated memory.
func TestFramedRoutePathAllocs(t *testing.T) {
	pairs := []frame.Pair{{Src: 0, Dst: 24}, {Src: 3, Dst: 17}, {Src: 24, Dst: 1}, {Src: 7, Dst: 20}}
	for _, scheme := range []string{"full-table", "simple-labeled"} {
		// Hit path: caching on; after warm-up every query is a slot hit.
		hitEng := tcpTestEngine(t, 1<<10, scheme)
		hit := newFramedCycle(t, pairs)
		if n := testing.AllocsPerRun(200, func() { hit.run(t, hitEng) }); n != 0 {
			t.Errorf("%s cache-hit framed cycle: %.1f allocs/op, want 0", scheme, n)
		}

		// Miss path: caching disabled; every query routes from scratch.
		missEng := tcpTestEngine(t, 0, scheme)
		miss := newFramedCycle(t, pairs)
		if n := testing.AllocsPerRun(200, func() { miss.run(t, missEng) }); n != 0 {
			t.Errorf("%s cache-miss framed cycle: %.1f allocs/op, want 0", scheme, n)
		}
	}
}
