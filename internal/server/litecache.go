package server

import (
	"sync"
	"sync/atomic"

	"compactrouting/internal/frame"
)

// liteCache is the binary serving plane's route cache: a flat,
// direct-mapped slot array holding route shapes by value. Unlike the
// sharded LRU (cache.go), whose Put allocates a list element per
// insert, every liteCache operation — hit, miss, overwrite — touches
// only preallocated memory, which is what lets the framed batch route
// path pin 0 allocs/op. The hash selects a slot; the slot stores the
// full key and is compared explicitly, so colliding queries simply
// overwrite each other (direct-mapped eviction).
type liteCache struct {
	slots []liteSlot
	mask  uint64
	hits  atomic.Uint64 // guarded by atomic
	miss  atomic.Uint64 // guarded by atomic
}

type liteSlot struct {
	mu     sync.Mutex
	full   bool              // guarded by mu
	scheme int32             // guarded by mu
	src    int32             // guarded by mu
	dst    int32             // guarded by mu
	gen    uint64            // guarded by mu
	res    frame.RouteResult // guarded by mu
}

// newLiteCache sizes the slot array to the largest power of two not
// exceeding entries (minimum 1); entries <= 0 disables the cache.
func newLiteCache(entries int) *liteCache {
	if entries <= 0 {
		return nil
	}
	n := 1
	for n*2 <= entries {
		n *= 2
	}
	return &liteCache{slots: make([]liteSlot, n), mask: uint64(n - 1)}
}

// hash mixes the key fields (FNV-1a, like the LRU's shard hash).
func liteHash(scheme, src, dst int, gen uint64) uint64 {
	h := uint64(14695981039346656037)
	h = (h ^ uint64(scheme)) * 1099511628211
	h = (h ^ uint64(src)) * 1099511628211
	h = (h ^ uint64(dst)) * 1099511628211
	h = (h ^ gen) * 1099511628211
	return h
}

// get returns the cached shape for the key at the given generation.
// The counter updates ride inside the critical section: they are
// atomics, and the deferred unlock keeps the lock/unlock pairing
// syntactically checkable (lockorder) on this hot function.
//
//determinlint:hotpath
func (c *liteCache) get(scheme, src, dst int, gen uint64) (frame.RouteResult, bool) {
	s := &c.slots[liteHash(scheme, src, dst, gen)&c.mask]
	s.mu.Lock()
	defer s.mu.Unlock()
	if !(s.full && s.scheme == int32(scheme) && s.src == int32(src) && s.dst == int32(dst) && s.gen == gen) {
		c.miss.Add(1)
		return frame.RouteResult{}, false
	}
	c.hits.Add(1)
	return s.res, true
}

// put stores a shape, overwriting whatever occupied the slot.
//
//determinlint:hotpath
func (c *liteCache) put(scheme, src, dst int, gen uint64, res frame.RouteResult) {
	s := &c.slots[liteHash(scheme, src, dst, gen)&c.mask]
	s.mu.Lock()
	defer s.mu.Unlock()
	s.full = true
	s.scheme, s.src, s.dst = int32(scheme), int32(src), int32(dst)
	s.gen = gen
	s.res = res
}

// stats reports cumulative hit/miss counters (zeros when disabled).
func (c *liteCache) stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.miss.Load()
}
