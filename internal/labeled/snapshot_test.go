package labeled

import (
	"bytes"
	"testing"

	"compactrouting/internal/bits"
)

// TestSnapshotRoundTripSimple pins the Simple snapshot codec:
// EncodeSnapshot → RestoreSimple → EncodeSnapshot must reproduce the
// stream bit for bit (the save→load→save byte-identity the snapshot
// plane depends on).
func TestSnapshotRoundTripSimple(t *testing.T) {
	f := geoFixture(t, 80, 41)
	s, err := NewSimple(f.g, f.a, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var w bits.Writer
	s.EncodeSnapshot(&w)
	r := bits.NewReader(w.Bytes(), w.Len())
	s2, err := RestoreSimple(r, f.g, f.a)
	if err != nil {
		t.Fatal(err)
	}
	var w2 bits.Writer
	s2.EncodeSnapshot(&w2)
	if w2.Len() != w.Len() || !bytes.Equal(w2.Bytes(), w.Bytes()) {
		t.Fatalf("re-encode differs: %d bits vs %d", w2.Len(), w.Len())
	}
}

// TestSnapshotRoundTripScaleFree is the same pin for the scale-free
// scheme's snapshot codec.
func TestSnapshotRoundTripScaleFree(t *testing.T) {
	f := geoFixture(t, 80, 42)
	s, err := NewScaleFree(f.g, f.a, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	var w bits.Writer
	s.EncodeSnapshot(&w)
	r := bits.NewReader(w.Bytes(), w.Len())
	s2, err := RestoreScaleFree(r, f.g, f.a)
	if err != nil {
		t.Fatal(err)
	}
	var w2 bits.Writer
	s2.EncodeSnapshot(&w2)
	if w2.Len() != w.Len() || !bytes.Equal(w2.Bytes(), w.Bytes()) {
		t.Fatalf("re-encode differs: %d bits vs %d", w2.Len(), w.Len())
	}
}
