package labeled

import (
	"fmt"

	"compactrouting/internal/bits"
	"compactrouting/internal/core"
	"compactrouting/internal/graph"
)

// TableEntry is one ring record of a Simple table in its wire order:
// the net point X, the netting-tree range [Lo, Hi] of (X, level), the
// next hop toward X, and the far flag. It exists so constructors
// outside this package — the distributed builder in internal/dist —
// can emit tables through EncodeSimpleTable.
type TableEntry struct {
	X, Lo, Hi, Next int32
	Far             bool
}

// EncodeSimpleTable serializes one node's Simple table from raw ring
// levels (levels[i] lists the level-i entries in ascending X). Layout:
// uvarint level count, the node's own label (idBits wide), then per
// level a uvarint entry count and fixed-width entries (x, lo, hi, next
// as idBits fields, plus the far flag). (*Simple).EncodeTable delegates
// here, so a table built in-network from the same rings is
// byte-identical to the oracle's.
func EncodeSimpleTable(idBits int, selfLabel int32, levels [][]TableEntry) ([]byte, int) {
	var w bits.Writer
	w.WriteUvarint(uint64(len(levels)))
	w.WriteBits(uint64(selfLabel), idBits)
	for _, ring := range levels {
		w.WriteUvarint(uint64(len(ring)))
		for _, e := range ring {
			w.WriteBits(uint64(e.X), idBits)
			w.WriteBits(uint64(e.Lo), idBits)
			w.WriteBits(uint64(e.Hi), idBits)
			w.WriteBits(uint64(e.Next), idBits)
			w.WriteBit(e.Far)
		}
	}
	return w.Bytes(), w.Len()
}

// EncodeTable serializes node v's routing table. The encoded length in
// bits is exactly TableBits(v) — the number the experiments report —
// so the space claims are backed by a real byte layout, not an
// estimate. See EncodeSimpleTable for the layout.
func (s *Simple) EncodeTable(v int) ([]byte, int) {
	levels := make([][]TableEntry, len(s.rings[v]))
	for i, ring := range s.rings[v] {
		lv := make([]TableEntry, len(ring))
		for k, e := range ring {
			lv[k] = TableEntry{X: e.x, Lo: e.lo, Hi: e.hi, Next: e.next, Far: e.far}
		}
		levels[i] = lv
	}
	return EncodeSimpleTable(s.idBits, int32(s.nt.Label(v)), levels)
}

// DecodedSimple is a simple-labeled-scheme router reconstructed purely
// from encoded per-node tables: it shares nothing with the compiling
// scheme except the physical graph. Routing through it and through the
// original must produce identical paths — the round-trip test that
// keeps the codec and the table accounting honest.
type DecodedSimple struct {
	g         *graph.Graph
	idBits    int
	selfLabel []int32
	rings     [][][]ringEntry
	// nodeOfLabel is rebuilt from the self labels (used only to
	// validate arrival, as the destination itself would).
	nodeOfLabel []int32
}

// DecodeSimple parses the tables produced by EncodeTable for all n
// nodes (tables[v] with sizes[v] valid bits).
func DecodeSimple(g *graph.Graph, tables [][]byte, sizes []int) (*DecodedSimple, error) {
	n := g.N()
	if len(tables) != n || len(sizes) != n {
		return nil, fmt.Errorf("labeled: got %d tables for %d nodes", len(tables), n)
	}
	d := &DecodedSimple{
		g:           g,
		idBits:      bits.UintBits(n),
		selfLabel:   make([]int32, n),
		rings:       make([][][]ringEntry, n),
		nodeOfLabel: make([]int32, n),
	}
	for i := range d.nodeOfLabel {
		d.nodeOfLabel[i] = -1
	}
	for v := 0; v < n; v++ {
		r := bits.NewReader(tables[v], sizes[v])
		levels, err := r.ReadUvarint()
		if err != nil {
			return nil, fmt.Errorf("labeled: table %d: %w", v, err)
		}
		self, err := r.ReadBits(d.idBits)
		if err != nil {
			return nil, fmt.Errorf("labeled: table %d: %w", v, err)
		}
		d.selfLabel[v] = int32(self)
		if self >= uint64(n) || d.nodeOfLabel[self] != -1 {
			return nil, fmt.Errorf("labeled: table %d: label %d invalid or duplicated", v, self)
		}
		d.nodeOfLabel[self] = int32(v)
		d.rings[v] = make([][]ringEntry, levels)
		for l := range d.rings[v] {
			count, err := r.ReadUvarint()
			if err != nil {
				return nil, fmt.Errorf("labeled: table %d level %d: %w", v, l, err)
			}
			ring := make([]ringEntry, count)
			for k := range ring {
				var e ringEntry
				for _, dst := range []*int32{&e.x, &e.lo, &e.hi, &e.next} {
					f, err := r.ReadBits(d.idBits)
					if err != nil {
						return nil, fmt.Errorf("labeled: table %d level %d entry %d: %w", v, l, k, err)
					}
					*dst = int32(f)
				}
				far, err := r.ReadBit()
				if err != nil {
					return nil, fmt.Errorf("labeled: table %d level %d entry %d: %w", v, l, k, err)
				}
				e.far = far
				ring[k] = e
			}
			d.rings[v][l] = ring
		}
		if r.Remaining() != 0 {
			return nil, fmt.Errorf("labeled: table %d has %d trailing bits", v, r.Remaining())
		}
	}
	return d, nil
}

// Step performs one forwarding decision from decoded state only.
func (d *DecodedSimple) Step(w int, h SimpleHeader) (int, SimpleHeader, bool, error) {
	label := int(h.Label)
	if int(d.selfLabel[w]) == label {
		return 0, h, true, nil
	}
	if h.Target < 0 || int(h.Target) == w {
		acquired := false
		for i, ring := range d.rings[w] {
			if e := findEntry(ring, label); e != nil {
				if int(e.x) == w {
					return 0, h, false, fmt.Errorf("labeled: decoded self target at %d level %d", w, i)
				}
				h.Target, h.Level = e.x, int32(i)
				acquired = true
				break
			}
		}
		if !acquired {
			return 0, h, false, fmt.Errorf("labeled: decoded node %d has no ring hit for label %d", w, label)
		}
	}
	e := findEntry(d.rings[w][h.Level], label)
	if e == nil || e.x != h.Target {
		return 0, h, false, fmt.Errorf("labeled: decoded relay %d lost target %d", w, h.Target)
	}
	return int(e.next), h, false, nil
}

// RouteToLabel delivers a packet using decoded tables only.
func (d *DecodedSimple) RouteToLabel(src, label int) (*core.Route, error) {
	if label < 0 || label >= d.g.N() {
		return nil, fmt.Errorf("labeled: label %d out of range", label)
	}
	tr := core.NewTrace(d.g, src)
	h := SimpleHeader{Label: int32(label), Target: -1}
	maxSteps := 8 * d.g.N() * len(d.rings[src])
	for step := 0; ; step++ {
		if step > maxSteps {
			return nil, fmt.Errorf("labeled: decoded routing loop to label %d", label)
		}
		next, nh, arrived, err := d.Step(tr.At(), h)
		if err != nil {
			return nil, err
		}
		if arrived {
			return tr.Finish(int(d.nodeOfLabel[label]))
		}
		tr.Header(nh.Bits())
		if err := tr.Hop(next); err != nil {
			return nil, err
		}
		h = nh
	}
}
