package labeled

import (
	"compactrouting/internal/core"
	"fmt"
)

// Phase5Trace decomposes one Algorithm 5 delivery into the legs of
// Figure 2 and Lemma 4.7's accounting, including the Claim 4.6 window
// around the phase-B handoff.
type Phase5Trace struct {
	Src, Dst int
	// PhaseAHops and PhaseACost cover the walk u_0 -> u_t.
	PhaseAHops int
	PhaseACost float64
	// Direct reports a delivery that ended with a level-0 ring hit
	// (x = destination), skipping phase B entirely.
	Direct bool
	// Stopping state at u_t (only when !Direct):
	IT          int     // i_t, the minimal hit level at u_t
	J           int     // packing level j of line 7
	UT          int     // u_t
	Center      int     // Voronoi center c
	CenterCost  float64 // routing cost u_t -> c
	CenterDist  float64 // d(u_t, c)
	BallRadius  float64 // r_c(j)
	SearchCost  float64 // SearchTree II round trip
	FinalCost   float64 // c -> v on T_c(j)
	RUj, RUj1   float64 // r_{u_t}(j), r_{u_t}(j+1)
	DistUTtoDst float64 // d(u_t, v)
	// Claim46Holds verifies r_{u_t}(j)/(3 eps) < d(u_t,v) < r_{u_t}(j+1)/5.
	Claim46Holds bool
	TotalCost    float64
	Optimal      float64
}

// Stretch returns the explained route's stretch.
func (p *Phase5Trace) Stretch() float64 {
	if p.Optimal == 0 {
		return 1
	}
	return p.TotalCost / p.Optimal
}

// Explain routes from src to the node labeled label like RouteToLabel,
// recording the Figure 2 anatomy. It fails on routes that would need
// the safety-net fallback (none arise within the scheme's parameter
// range).
func (s *ScaleFree) Explain(src, label int) (*Phase5Trace, error) {
	if src < 0 || src >= s.g.N() {
		return nil, fmt.Errorf("labeled: source %d out of range", src)
	}
	if label < 0 || label >= s.g.N() {
		return nil, fmt.Errorf("labeled: label %d out of range", label)
	}
	dst := s.nt.NodeOfLabel(label)
	rec := &Phase5Trace{Src: src, Dst: dst}
	tr := core.NewTrace(s.g, src)
	prev := s.h.TopLevel() + 1
	maxSteps := 4 * s.g.N() * (s.h.TopLevel() + 2)
	for step := 0; ; step++ {
		if step > maxSteps {
			return nil, fmt.Errorf("labeled: no progress routing to label %d", label)
		}
		u := tr.At()
		if s.nt.Label(u) == label {
			rec.Direct = true
			break
		}
		lv, e, found := s.minimalHitR(u, label)
		direct := found && lv.i == 0
		if found && lv.i <= prev && (e.far || direct) && int(e.x) != u {
			prev = lv.i
			if err := tr.Hop(int(e.next)); err != nil {
				return nil, err
			}
			rec.PhaseAHops++
			continue
		}
		if !found {
			return nil, fmt.Errorf("labeled: explain: no ring hit at %d (outside analyzed range)", u)
		}
		rec.PhaseACost = tr.Cost()
		rec.IT, rec.J, rec.UT = lv.i, lv.j, u
		cl := s.cells[lv.j][s.ownerBall[lv.j][u]]
		rec.Center = cl.center
		rec.CenterDist = s.a.Dist(u, cl.center)
		rec.BallRadius = s.pk.Balls[lv.j][s.ownerBall[lv.j][u]].Radius
		rec.RUj = s.a.RadiusOfSize(u, s.pk.Size(lv.j))
		rec.RUj1 = s.a.RadiusOfSize(u, s.pk.Size(lv.j+1))
		rec.DistUTtoDst = s.a.Dist(u, dst)
		rec.Claim46Holds = rec.RUj/(3*s.eps) < rec.DistUTtoDst &&
			(lv.j == s.pk.MaxJ() || rec.DistUTtoDst < rec.RUj1/5)
		// Route to the center.
		path, err := cl.tree.Route(u, cl.tree.Label(cl.center))
		if err != nil {
			return nil, err
		}
		if err := tr.Walk(path); err != nil {
			return nil, err
		}
		rec.CenterCost = tr.Cost() - rec.PhaseACost
		// Search.
		before := tr.Cost()
		data, fnd, trail := cl.st.Search(label)
		for k := 0; k+1 < len(trail); k++ {
			phys, err := cl.rz.Walk(trail[k], trail[k+1])
			if err != nil {
				return nil, err
			}
			if err := tr.Walk(phys); err != nil {
				return nil, err
			}
		}
		for k := len(trail) - 1; k > 0; k-- {
			phys, err := cl.rz.Walk(trail[k], trail[k-1])
			if err != nil {
				return nil, err
			}
			if err := tr.Walk(phys); err != nil {
				return nil, err
			}
		}
		rec.SearchCost = tr.Cost() - before
		if !fnd {
			return nil, fmt.Errorf("labeled: explain: search failed at (j=%d, c=%d) — outside analyzed range", lv.j, cl.center)
		}
		before = tr.Cost()
		path, err = cl.tree.Route(cl.center, data)
		if err != nil {
			return nil, err
		}
		if err := tr.Walk(path); err != nil {
			return nil, err
		}
		rec.FinalCost = tr.Cost() - before
		break
	}
	if tr.At() != dst {
		return nil, fmt.Errorf("labeled: explain ended at %d, want %d", tr.At(), dst)
	}
	if rec.Direct {
		rec.PhaseACost = tr.Cost()
	}
	rec.TotalCost = tr.Cost()
	rec.Optimal = s.a.Dist(src, dst)
	return rec, nil
}

// HeaderBitsEstimate returns the scheme's worst-case header size over
// a set of sampled routes (for reports).
func (s *ScaleFree) HeaderBitsEstimate(pairs [][2]int) (int, error) {
	max := 0
	for _, p := range pairs {
		r, err := s.RouteToLabel(p[0], s.nt.Label(p[1]))
		if err != nil {
			return 0, err
		}
		if r.MaxHeaderBits > max {
			max = r.MaxHeaderBits
		}
	}
	return max, nil
}
