package labeled_test

import (
	"reflect"
	"testing"

	"compactrouting/internal/bits"
	"compactrouting/internal/core"
	"compactrouting/internal/graph"
	"compactrouting/internal/labeled"
	"compactrouting/internal/metric"
	"compactrouting/internal/sim"
)

// harvest collects every header that appears on real walks — the
// Prepare output and each Step rewrite — so the codec invariants are
// checked against the field combinations the schemes actually emit,
// not hand-built samples.
func harvest[H sim.Header](t testing.TB, r sim.Router[H], addr func(int) int, pairs [][2]int, maxHops int) []H {
	t.Helper()
	var out []H
	for _, p := range pairs {
		h, err := r.Prepare(addr(p[1]))
		if err != nil {
			t.Fatalf("Prepare(%d): %v", p[1], err)
		}
		out = append(out, h)
		at := p[0]
		for hops := 0; ; hops++ {
			if hops > maxHops {
				t.Fatalf("pair (%d,%d) exceeded %d hops", p[0], p[1], maxHops)
			}
			next, nh, arrived, err := r.Step(at, h)
			if err != nil {
				t.Fatalf("Step at %d: %v", at, err)
			}
			if arrived {
				break
			}
			out = append(out, nh)
			at, h = next, nh
		}
	}
	return out
}

// checkCodec pins the two codec invariants for each harvested header:
// the encoder emits exactly Bits() bits (so the bit accounting the
// experiments report is the real wire size), and decoding those bits
// reproduces the header with nothing left over.
func checkCodec[H sim.Header](t testing.TB, hs []H, decode func(*bits.Reader) (H, error)) {
	t.Helper()
	if len(hs) == 0 {
		t.Fatal("no headers harvested")
	}
	for _, h := range hs {
		var w bits.Writer
		any(h).(interface{ Encode(*bits.Writer) }).Encode(&w)
		if w.Len() != h.Bits() {
			t.Fatalf("header %+v: encoded to %d bits, Bits() promises %d", h, w.Len(), h.Bits())
		}
		r := bits.NewReader(w.Bytes(), w.Len())
		got, err := decode(r)
		if err != nil {
			t.Fatalf("decode %+v: %v", h, err)
		}
		if !reflect.DeepEqual(got, h) {
			t.Fatalf("round trip: got %+v, want %+v", got, h)
		}
		if r.Remaining() != 0 {
			t.Fatalf("decode of %+v left %d bits unread", h, r.Remaining())
		}
	}
}

func codecFixture(t testing.TB) (*graph.Graph, *metric.APSP, [][2]int) {
	t.Helper()
	g, _, err := graph.RandomGeometric(72, 0.25, 4)
	if err != nil {
		t.Fatal(err)
	}
	return g, metric.NewAPSP(g), core.SamplePairs(g.N(), 64, 5)
}

func TestSimpleHeaderCodecMatchesBits(t *testing.T) {
	g, a, pairs := codecFixture(t)
	s, err := labeled.NewSimple(g, a, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	hs := harvest(t, sim.SimpleLabeledRouter{S: s}, s.LabelOf, pairs, 8*g.N())
	checkCodec(t, hs, labeled.DecodeSimpleHeader)
}

func TestSFHeaderCodecMatchesBits(t *testing.T) {
	g, a, pairs := codecFixture(t)
	s, err := labeled.NewScaleFree(g, a, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	hs := harvest(t, sim.ScaleFreeLabeledRouter{S: s}, s.LabelOf, pairs, 64*g.N())
	checkCodec(t, hs, labeled.DecodeSFHeader)
}
