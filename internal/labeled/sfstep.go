package labeled

import (
	"fmt"

	"compactrouting/internal/bits"
	"compactrouting/internal/treeroute"
)

// SFPhase tags the routing state of a scale-free labeled packet.
type SFPhase uint8

// Algorithm 5's phases as carried in the packet header.
const (
	// SFPhaseA: ring-cascade walking (lines 1-6).
	SFPhaseA SFPhase = iota
	// SFPhaseToCenter: tree-routing to the Voronoi center (line 8).
	SFPhaseToCenter
	// SFPhaseSearchDown: descending the Search Tree II (line 9).
	SFPhaseSearchDown
	// SFPhaseSearchUp: returning to the center with the result.
	SFPhaseSearchUp
	// SFPhaseFinal: tree-routing from the center to the destination
	// (line 10).
	SFPhaseFinal
)

// SFHeader is the packet header of the scale-free labeled scheme,
// factored for per-node stepping: destination label, phase tag, and
// the per-phase state (previous ring level, active packing level,
// current virtual search-tree target, the found local label).
type SFHeader struct {
	Label    int32
	Phase    SFPhase
	Prev     int32 // phase A: i_{k-1}
	J        int32 // active packing level
	VTarget  int32 // search phases: the tree node being walked toward
	Found    bool
	Fallback bool
	// CenterLabel routes to the active cell's center; Data is the
	// retrieved local label of the destination.
	CenterLabel treeroute.PortLabel
	Data        treeroute.PortLabel
}

// Bits returns the header's encoded size: label + tag + the state of
// the active phase.
func (h SFHeader) Bits() int {
	n := 3 + bits.UvarintLen(uint64(h.Label)) + 2 // tag + flags
	switch h.Phase {
	case SFPhaseA:
		n += bits.UvarintLen(uint64(h.Prev))
	case SFPhaseToCenter:
		n += bits.UvarintLen(uint64(h.J)) + h.CenterLabel.Bits()
	case SFPhaseSearchDown, SFPhaseSearchUp:
		n += bits.UvarintLen(uint64(h.J)) + bits.UvarintLen(uint64(h.VTarget+1))
		if h.Found {
			n += h.Data.Bits()
		}
	case SFPhaseFinal:
		n += bits.UvarintLen(uint64(h.J)) + h.Data.Bits()
	}
	return n
}

// PrepareHeader returns the initial header for a delivery to label.
func (s *ScaleFree) PrepareHeader(label int) (SFHeader, error) {
	if label < 0 || label >= s.g.N() {
		return SFHeader{}, fmt.Errorf("labeled: label %d out of range", label)
	}
	return SFHeader{Label: int32(label), Phase: SFPhaseA, Prev: int32(s.h.TopLevel() + 1)}, nil
}

// Step performs one forwarding decision of Algorithm 5 at node w,
// consulting only w's compiled state and the header. (During search
// phases the walk between virtual tree nodes consults the APSP next
// hops, which stand in for the Lemma 4.3 next-hop entries stored at
// the intermediate nodes.) Multiple phase transitions may resolve
// locally before a hop is emitted.
func (s *ScaleFree) Step(w int, h SFHeader) (next int, nh SFHeader, arrived bool, err error) {
	label := int(h.Label)
	for guard := 0; guard < 8; guard++ {
		switch h.Phase {
		case SFPhaseA:
			if s.nt.Label(w) == label {
				return 0, h, true, nil
			}
			lv, e, found := s.minimalHitR(w, label)
			direct := found && lv.i == 0
			if found && lv.i <= int(h.Prev) && (e.far || direct) && int(e.x) != w {
				h.Prev = int32(lv.i)
				return int(e.next), h, false, nil
			}
			j := s.pk.MaxJ()
			if found {
				j = lv.j
			} else {
				h.Fallback = true
			}
			h = s.enterCell(w, h, j)
		case SFPhaseToCenter:
			cl := s.cells[h.J][s.ownerBall[h.J][w]]
			if w == cl.center {
				h.Phase = SFPhaseSearchDown
				h.VTarget = int32(w)
				continue
			}
			hop, arrivedCtr, err := cl.tree.NextHop(w, h.CenterLabel)
			if err != nil {
				return 0, h, false, err
			}
			if arrivedCtr {
				h.Phase = SFPhaseSearchDown
				h.VTarget = int32(w)
				continue
			}
			return hop, h, false, nil
		case SFPhaseSearchDown:
			if w != int(h.VTarget) {
				return s.walkToward(w, h)
			}
			cl := s.cells[h.J][s.ownerBall[h.J][w]]
			nd := cl.st.Nodes[w]
			descended := false
			for _, c := range nd.Children {
				if !c.Empty && c.Lo <= label && label <= c.Hi {
					h.VTarget = int32(c.ID)
					descended = true
					break
				}
			}
			if descended {
				if w == int(h.VTarget) {
					return 0, h, false, fmt.Errorf("labeled: search self-loop at %d", w)
				}
				return s.walkToward(w, h)
			}
			for _, p := range nd.Pairs {
				if p.Key == label {
					h.Found = true
					h.Data = p.Data
					break
				}
			}
			h.Phase = SFPhaseSearchUp
			if w == cl.center {
				h = s.leaveSearch(w, h)
				continue
			}
			h.VTarget = int32(nd.Parent)
			return s.walkToward(w, h)
		case SFPhaseSearchUp:
			if w != int(h.VTarget) {
				return s.walkToward(w, h)
			}
			cl := s.cells[h.J][s.ownerBall[h.J][w]]
			if w == cl.center {
				h = s.leaveSearch(w, h)
				continue
			}
			h.VTarget = int32(cl.st.Nodes[w].Parent)
			return s.walkToward(w, h)
		case SFPhaseFinal:
			cl := s.cells[h.J][s.ownerBall[h.J][w]]
			hop, done, err := cl.tree.NextHop(w, h.Data)
			if err != nil {
				return 0, h, false, err
			}
			if done {
				if s.nt.Label(w) != label {
					return 0, h, false, fmt.Errorf("labeled: final phase ended at %d, wrong node", w)
				}
				return 0, h, true, nil
			}
			return hop, h, false, nil
		}
	}
	return 0, h, false, fmt.Errorf("labeled: step at %d did not converge", w)
}

// enterCell transitions to phase B at packing level j: w stores its
// cell's center label l(c; c, j).
func (s *ScaleFree) enterCell(w int, h SFHeader, j int) SFHeader {
	cl := s.cells[j][s.ownerBall[j][w]]
	h.Phase = SFPhaseToCenter
	h.J = int32(j)
	h.CenterLabel = cl.tree.Label(cl.center)
	h.Found = false
	h.Data = treeroute.PortLabel{}
	return h
}

// leaveSearch resolves the end of a search round trip at the center:
// found -> final tree route; not found -> fall back to the top-level
// cell (whose search tree indexes every node).
func (s *ScaleFree) leaveSearch(w int, h SFHeader) SFHeader {
	if h.Found {
		h.Phase = SFPhaseFinal
		return h
	}
	h.Fallback = true
	return s.enterCell(w, h, s.pk.MaxJ())
}

// walkToward emits the next physical hop toward the virtual search
// target, via the realizer (tail trees) or the canonical shortest path.
func (s *ScaleFree) walkToward(w int, h SFHeader) (int, SFHeader, bool, error) {
	cl := s.cells[h.J][s.ownerBall[h.J][w]]
	hop, err := cl.rz.NextHopToward(w, int(h.VTarget))
	if err != nil {
		return 0, h, false, err
	}
	return hop, h, false, nil
}
