package labeled

import (
	"math"
	"testing"

	"compactrouting/internal/core"
	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
)

type fixture struct {
	g *graph.Graph
	a *metric.APSP
}

func geoFixture(t *testing.T, n int, seed int64) fixture {
	t.Helper()
	g, _, err := graph.RandomGeometric(n, 0.2, seed)
	if err != nil {
		t.Fatal(err)
	}
	return fixture{g: g, a: metric.NewAPSP(g)}
}

func holesFixture(t *testing.T, side int, seed int64) fixture {
	t.Helper()
	g, _, err := graph.GridWithHoles(side, side, 0.25, seed)
	if err != nil {
		t.Fatal(err)
	}
	return fixture{g: g, a: metric.NewAPSP(g)}
}

func checkLabeledAllPairs(t *testing.T, s core.LabeledScheme, f fixture, stretchBound float64) core.StretchStats {
	t.Helper()
	stats, err := core.EvaluateLabeled(s, f.a, core.AllPairs(f.g.N()))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Max > stretchBound {
		t.Fatalf("%s: max stretch %.3f exceeds bound %.3f", s.SchemeName(), stats.Max, stretchBound)
	}
	return stats
}

func TestSimpleDeliversAllPairsGeometric(t *testing.T) {
	f := geoFixture(t, 120, 1)
	s, err := NewSimple(f.g, f.a, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	stats := checkLabeledAllPairs(t, s, f, s.StretchBound()+1e-9)
	if stats.Fallbacks != 0 {
		t.Fatalf("simple scheme has no fallback path, got %d", stats.Fallbacks)
	}
}

func TestSimpleDeliversAllPairsHoles(t *testing.T) {
	f := holesFixture(t, 12, 3)
	s, err := NewSimple(f.g, f.a, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	checkLabeledAllPairs(t, s, f, s.StretchBound()+1e-9)
}

func TestSimpleLabelsArePermutation(t *testing.T) {
	f := geoFixture(t, 90, 2)
	s, err := NewSimple(f.g, f.a, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, f.g.N())
	for v := 0; v < f.g.N(); v++ {
		l := s.LabelOf(v)
		if l < 0 || l >= f.g.N() || seen[l] {
			t.Fatalf("bad label %d for %d", l, v)
		}
		seen[l] = true
		if s.NodeOfLabel(l) != v {
			t.Fatalf("NodeOfLabel(%d) = %d, want %d", l, s.NodeOfLabel(l), v)
		}
	}
}

func TestSimpleRejectsBadEps(t *testing.T) {
	f := geoFixture(t, 30, 4)
	for _, eps := range []float64{0, -1, 0.6, 2} {
		if _, err := NewSimple(f.g, f.a, eps); err == nil {
			t.Fatalf("eps=%v accepted", eps)
		}
	}
}

func TestSimpleRejectsBadLabel(t *testing.T) {
	f := geoFixture(t, 30, 5)
	s, err := NewSimple(f.g, f.a, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RouteToLabel(0, -1); err == nil {
		t.Fatal("negative label accepted")
	}
	if _, err := s.RouteToLabel(0, f.g.N()); err == nil {
		t.Fatal("oversized label accepted")
	}
}

func TestSimpleSelfRoute(t *testing.T) {
	f := geoFixture(t, 40, 6)
	s, err := NewSimple(f.g, f.a, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.RouteToLabel(7, s.LabelOf(7))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 0 || len(r.Path) != 1 {
		t.Fatalf("self route = %+v", r)
	}
}

func TestSimpleTableGrowsWithDelta(t *testing.T) {
	// The simple scheme's tables carry a log(Delta) factor: an
	// exponential-diameter path must need more bits per node than a
	// unit path of the same size.
	unit, err := graph.Path(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	expo, err := graph.ExponentialPath(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	su, err := NewSimple(unit, metric.NewAPSP(unit), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewSimple(expo, metric.NewAPSP(expo), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	tu := core.Tables(su.TableBits, 64)
	te := core.Tables(se.TableBits, 64)
	if te.MaxBits <= tu.MaxBits {
		t.Fatalf("exponential-diameter tables (%d) not larger than unit (%d)",
			te.MaxBits, tu.MaxBits)
	}
}

func TestScaleFreeDeliversAllPairsGeometric(t *testing.T) {
	f := geoFixture(t, 120, 7)
	s, err := NewScaleFree(f.g, f.a, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// Analytical bound ~ 1 + O(eps) with a constant near 20 (Lemma 4.7
	// worst case); actual routes are far better.
	stats := checkLabeledAllPairs(t, s, f, 1+25*0.25)
	if stats.Fallbacks != 0 {
		t.Fatalf("scale-free labeled used %d fallbacks on a doubling graph", stats.Fallbacks)
	}
	t.Logf("scale-free labeled: max=%.3f mean=%.3f p99=%.3f hdr=%db",
		stats.Max, stats.Mean, stats.P99, stats.MaxHeader)
}

func TestScaleFreeDeliversAllPairsHoles(t *testing.T) {
	f := holesFixture(t, 11, 8)
	s, err := NewScaleFree(f.g, f.a, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	stats := checkLabeledAllPairs(t, s, f, 1+25*0.2)
	if stats.Fallbacks != 0 {
		t.Fatalf("fallbacks: %d", stats.Fallbacks)
	}
}

func TestScaleFreeOnExponentialStar(t *testing.T) {
	// The scale-free scheme must deliver on exponential-diameter
	// metrics, the case it exists for.
	g, err := graph.ExponentialStar(60, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := fixture{g: g, a: metric.NewAPSP(g)}
	s, err := NewScaleFree(f.g, f.a, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	checkLabeledAllPairs(t, s, f, 1+25*0.25)
}

func TestScaleFreeScaleFreedom(t *testing.T) {
	// Core claim of Theorem 1.2: storage must NOT grow with Delta.
	// Compare table bits on a unit-weight path vs an exponential path
	// of the same node count: the ratio must stay modest even though
	// Delta explodes from 63 to 4^62.
	unit, err := graph.Path(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	expo, err := graph.ExponentialPath(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	su, err := NewScaleFree(unit, metric.NewAPSP(unit), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewScaleFree(expo, metric.NewAPSP(expo), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	tu := core.Tables(su.TableBits, 64)
	te := core.Tables(se.TableBits, 64)
	// log2(Delta) grows by a factor of ~21 (6 -> 124); scale-free
	// storage should grow by far less than that.
	if ratio := float64(te.MaxBits) / float64(tu.MaxBits); ratio > 4 {
		t.Fatalf("scale-free tables grew %.1fx with Delta (unit=%d expo=%d)",
			ratio, tu.MaxBits, te.MaxBits)
	}
}

func TestScaleFreeRejectsBadEps(t *testing.T) {
	f := geoFixture(t, 30, 9)
	for _, eps := range []float64{0, -0.1, 0.3, 1} {
		if _, err := NewScaleFree(f.g, f.a, eps); err == nil {
			t.Fatalf("eps=%v accepted", eps)
		}
	}
}

func TestScaleFreeHeaderPolylog(t *testing.T) {
	f := geoFixture(t, 150, 10)
	s, err := NewScaleFree(f.g, f.a, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := core.EvaluateLabeled(s, f.a, core.SamplePairs(f.g.N(), 500, 1))
	if err != nil {
		t.Fatal(err)
	}
	logn := math.Log2(float64(f.g.N()))
	if float64(stats.MaxHeader) > 6*logn*logn {
		t.Fatalf("header %d bits > 6 log^2 n = %.0f", stats.MaxHeader, 6*logn*logn)
	}
}

func TestScaleFreeExponentialPathStretch(t *testing.T) {
	g, err := graph.ExponentialPath(48, 8)
	if err != nil {
		t.Fatal(err)
	}
	f := fixture{g: g, a: metric.NewAPSP(g)}
	s, err := NewScaleFree(f.g, f.a, 0.125)
	if err != nil {
		t.Fatal(err)
	}
	checkLabeledAllPairs(t, s, f, 1+25*0.125)
}

func TestSimpleVsOptimalPathCost(t *testing.T) {
	// On a path graph the simple scheme should route at stretch exactly
	// 1 (the only simple path is the shortest path).
	g, err := graph.Path(32, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := fixture{g: g, a: metric.NewAPSP(g)}
	s, err := NewSimple(f.g, f.a, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	stats := checkLabeledAllPairs(t, s, f, 1+1e-9)
	if stats.Max > 1+1e-9 {
		t.Fatalf("path stretch %v != 1", stats.Max)
	}
}
