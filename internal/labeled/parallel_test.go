package labeled

import (
	"reflect"
	"runtime"
	"testing"
)

// withGOMAXPROCS runs f under the given GOMAXPROCS and restores the old
// value. GOMAXPROCS=1 forces internal/par onto its serial reference
// schedule; a value above the machine's CPU count still exercises the
// work-stealing path (goroutines interleave even on one core).
func withGOMAXPROCS(n int, f func()) {
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	f()
}

// TestSimpleParallelEquivalence asserts the hard determinism constraint
// of the parallel build pipeline: the compiled tables are bit-identical
// to a GOMAXPROCS=1 serial build.
func TestSimpleParallelEquivalence(t *testing.T) {
	f := geoFixture(t, 96, 7)
	var serial, parallel *Simple
	withGOMAXPROCS(1, func() {
		s, err := NewSimple(f.g, f.a, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		serial = s
	})
	withGOMAXPROCS(8, func() {
		s, err := NewSimple(f.g, f.a, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		parallel = s
	})
	if !reflect.DeepEqual(serial.rings, parallel.rings) {
		t.Fatal("parallel build produced different ring tables than serial build")
	}
	if !reflect.DeepEqual(serial.tblBit, parallel.tblBit) {
		t.Fatal("parallel build produced different table bit accounting than serial build")
	}
	for v := 0; v < f.g.N(); v++ {
		sb, sn := serial.EncodeTable(v)
		pb, pn := parallel.EncodeTable(v)
		if sn != pn || !reflect.DeepEqual(sb, pb) {
			t.Fatalf("node %d: encoded table differs between serial and parallel build", v)
		}
	}
}

func TestScaleFreeParallelEquivalence(t *testing.T) {
	f := geoFixture(t, 96, 7)
	var serial, parallel *ScaleFree
	withGOMAXPROCS(1, func() {
		s, err := NewScaleFree(f.g, f.a, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		serial = s
	})
	withGOMAXPROCS(8, func() {
		s, err := NewScaleFree(f.g, f.a, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		parallel = s
	})
	if !reflect.DeepEqual(serial.levels, parallel.levels) {
		t.Fatal("parallel build produced different stored levels than serial build")
	}
	if !reflect.DeepEqual(serial.ownerBall, parallel.ownerBall) {
		t.Fatal("parallel build produced different Voronoi owners than serial build")
	}
	if !reflect.DeepEqual(serial.tblBits, parallel.tblBits) {
		t.Fatal("parallel build produced different table bit accounting than serial build")
	}
	// The cell machinery holds trees and search structures; compare the
	// full deep structure level by level for a sharper failure message.
	for j := range serial.cells {
		if !reflect.DeepEqual(serial.cells[j], parallel.cells[j]) {
			t.Fatalf("packing level %d: parallel cells differ from serial cells", j)
		}
	}
}
