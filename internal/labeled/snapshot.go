package labeled

import (
	"fmt"
	"math"

	"compactrouting/internal/ballpack"
	"compactrouting/internal/bits"
	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
	"compactrouting/internal/rnet"
	"compactrouting/internal/searchtree"
	"compactrouting/internal/treeroute"
)

// Snapshot codecs for the labeled schemes (internal/snapshot embeds
// these blobs per served scheme). The serialized state is the election
// output — hierarchy levels, packing, per-node encoded tables, cell
// trees — so a restore is a linear decode plus cheap derived lookups
// (netting tree, positions), never a constructor re-run: the scheme
// constructors are counted by core.NoteSchemeBuild and the snapshot
// cold-start test pins that a restore leaves the counter untouched.

// EncodeSnapshot serializes the Simple scheme: parameters, the
// hierarchy election, and every node's wire table (the same blobs
// EncodeTable emits, embedded verbatim so save→load→save is
// byte-identical).
func (s *Simple) EncodeSnapshot(w *bits.Writer) {
	w.WriteBits(math.Float64bits(s.eps), 64)
	w.WriteBits(math.Float64bits(s.ringFactor), 64)
	rnet.EncodeHierarchy(w, s.h)
	for v := 0; v < s.g.N(); v++ {
		tbl, nbit := s.EncodeTable(v)
		w.WriteBlob(tbl, nbit)
	}
}

// RestoreSimple rebuilds a Simple scheme from an EncodeSnapshot stream
// without re-running the constructor: the hierarchy is decoded, the
// netting tree re-derived, and each node's rings parsed back from its
// wire table. Table bit accounting is the blob length, exactly as the
// constructor computes it.
func RestoreSimple(r *bits.Reader, g *graph.Graph, a metric.Distancer) (*Simple, error) {
	eb, err := r.ReadBits(64)
	if err != nil {
		return nil, err
	}
	fb, err := r.ReadBits(64)
	if err != nil {
		return nil, err
	}
	eps, factor := math.Float64frombits(eb), math.Float64frombits(fb)
	if !(eps > 0 && eps <= 0.5) {
		return nil, fmt.Errorf("labeled: restored eps %v out of (0, 0.5]", eps)
	}
	if !(factor >= 1) || math.IsInf(factor, 0) {
		return nil, fmt.Errorf("labeled: restored ring factor %v below 1", factor)
	}
	h, err := rnet.DecodeHierarchy(r, a)
	if err != nil {
		return nil, err
	}
	nt := rnet.NewNettingTree(h)
	n := g.N()
	s := &Simple{
		g: g, a: a, h: h, nt: nt, eps: eps,
		ringFactor: factor,
		name:       "labeled/simple",
		rings:      make([][][]ringEntry, n),
		tblBit:     make([]int, n),
		idBits:     bits.UintBits(n),
	}
	for v := 0; v < n; v++ {
		tbl, nbit, err := r.ReadBlob()
		if err != nil {
			return nil, fmt.Errorf("labeled: table %d: %w", v, err)
		}
		self, rings, err := parseSimpleTable(tbl, nbit, s.idBits, n)
		if err != nil {
			return nil, fmt.Errorf("labeled: table %d: %w", v, err)
		}
		if int(self) != nt.Label(v) {
			return nil, fmt.Errorf("labeled: table %d self label %d != netting-tree label %d", v, self, nt.Label(v))
		}
		if len(rings) != h.TopLevel()+1 {
			return nil, fmt.Errorf("labeled: table %d has %d levels, hierarchy has %d", v, len(rings), h.TopLevel()+1)
		}
		s.rings[v] = rings
		s.tblBit[v] = nbit
	}
	return s, nil
}

// parseSimpleTable parses one EncodeTable blob back into ring levels.
func parseSimpleTable(tbl []byte, nbit, idBits, n int) (int32, [][]ringEntry, error) {
	r := bits.NewReader(tbl, nbit)
	levels, err := r.ReadUvarint()
	if err != nil {
		return 0, nil, err
	}
	if levels > uint64(nbit) {
		return 0, nil, fmt.Errorf("level count %d exceeds stream", levels)
	}
	self, err := r.ReadBits(idBits)
	if err != nil {
		return 0, nil, err
	}
	if self >= uint64(n) {
		return 0, nil, fmt.Errorf("self label %d out of range", self)
	}
	rings := make([][]ringEntry, levels)
	for l := range rings {
		count, err := r.ReadUvarint()
		if err != nil {
			return 0, nil, err
		}
		if count*uint64(ringBits(idBits)) > uint64(r.Remaining()) {
			return 0, nil, fmt.Errorf("level %d entry count %d exceeds stream", l, count)
		}
		ring := make([]ringEntry, count)
		for k := range ring {
			var e ringEntry
			for _, dst := range []*int32{&e.x, &e.lo, &e.hi, &e.next} {
				f, err := r.ReadBits(idBits)
				if err != nil {
					return 0, nil, err
				}
				*dst = int32(f)
			}
			far, err := r.ReadBit()
			if err != nil {
				return 0, nil, err
			}
			e.far = far
			ring[k] = e
		}
		rings[l] = ring
	}
	if r.Remaining() != 0 {
		return 0, nil, fmt.Errorf("%d trailing bits", r.Remaining())
	}
	return int32(self), rings, nil
}

// EncodeSnapshot serializes the ScaleFree scheme: parameters, the
// hierarchy and packing elections, the stored ring levels R(v), the
// Voronoi ownership, every cell's port tree / search tree / realizer,
// and the storage accounting verbatim.
func (s *ScaleFree) EncodeSnapshot(w *bits.Writer) {
	n := s.g.N()
	w.WriteBits(math.Float64bits(s.eps), 64)
	rnet.EncodeHierarchy(w, s.h)
	s.pk.Encode(w)
	for v := 0; v < n; v++ {
		w.WriteUvarint(uint64(len(s.levels[v])))
		for _, lv := range s.levels[v] {
			w.WriteUvarint(uint64(lv.i))
			w.WriteUvarint(uint64(lv.j))
			w.WriteUvarint(uint64(len(lv.entries)))
			for _, e := range lv.entries {
				w.WriteUvarint(uint64(e.x))
				w.WriteUvarint(uint64(e.lo))
				w.WriteUvarint(uint64(e.hi))
				w.WriteUvarint(uint64(e.next))
				w.WriteBit(e.far)
			}
		}
	}
	for j := range s.ownerBall {
		for v := 0; v < n; v++ {
			w.WriteUvarint(uint64(s.ownerBall[j][v]))
		}
	}
	for j := range s.cells {
		for _, cl := range s.cells[j] {
			w.WriteUvarint(uint64(cl.center))
			treeroute.EncodePortScheme(w, cl.tree, n)
			searchtree.EncodeTree(w, cl.st, func(w *bits.Writer, l treeroute.PortLabel) { l.Encode(w) })
			searchtree.EncodeRealizer(w, cl.rz, cl.st, n)
		}
	}
	for v := 0; v < n; v++ {
		w.WriteUvarint(uint64(s.tblBits[v]))
	}
}

// RestoreScaleFree rebuilds a ScaleFree scheme from an EncodeSnapshot
// stream: hierarchy, packing, rings and cells are decoded, the netting
// tree is re-derived, and the storage accounting is taken verbatim.
func RestoreScaleFree(r *bits.Reader, g *graph.Graph, a metric.Distancer) (*ScaleFree, error) {
	n := g.N()
	eb, err := r.ReadBits(64)
	if err != nil {
		return nil, err
	}
	eps := math.Float64frombits(eb)
	if !(eps > 0 && eps <= 0.25) {
		return nil, fmt.Errorf("labeled: restored eps %v out of (0, 0.25]", eps)
	}
	h, err := rnet.DecodeHierarchy(r, a)
	if err != nil {
		return nil, err
	}
	pk, err := ballpack.Decode(r, a)
	if err != nil {
		return nil, err
	}
	s := &ScaleFree{
		g: g, a: a, h: h,
		nt:     rnet.NewNettingTree(h),
		pk:     pk,
		eps:    eps,
		idBits: bits.UintBits(n),
	}
	s.levels = make([][]sfLevel, n)
	for v := 0; v < n; v++ {
		cnt, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		if cnt > uint64(h.TopLevel()+1) {
			return nil, fmt.Errorf("labeled: node %d stores %d levels", v, cnt)
		}
		lvs := make([]sfLevel, cnt)
		for li := range lvs {
			iv, err := r.ReadUvarint()
			if err != nil {
				return nil, err
			}
			jv, err := r.ReadUvarint()
			if err != nil {
				return nil, err
			}
			if iv > uint64(h.TopLevel()) || jv > uint64(pk.MaxJ()) {
				return nil, fmt.Errorf("labeled: node %d level (%d,%d) out of range", v, iv, jv)
			}
			ec, err := r.ReadUvarint()
			if err != nil {
				return nil, err
			}
			if ec*33 > uint64(r.Remaining()) {
				return nil, fmt.Errorf("labeled: node %d ring count %d exceeds stream", v, ec)
			}
			entries := make([]ringEntry, ec)
			for k := range entries {
				var e ringEntry
				for _, dst := range []*int32{&e.x, &e.lo, &e.hi, &e.next} {
					f, err := r.ReadUvarint()
					if err != nil {
						return nil, err
					}
					if f >= uint64(n) {
						return nil, fmt.Errorf("labeled: node %d ring id out of range", v)
					}
					*dst = int32(f)
				}
				far, err := r.ReadBit()
				if err != nil {
					return nil, err
				}
				e.far = far
				entries[k] = e
			}
			lvs[li] = sfLevel{i: int(iv), j: int(jv), entries: entries}
		}
		s.levels[v] = lvs
	}
	maxJ := pk.MaxJ()
	s.ownerBall = make([][]int32, maxJ+1)
	for j := 0; j <= maxJ; j++ {
		s.ownerBall[j] = make([]int32, n)
		for v := 0; v < n; v++ {
			o, err := r.ReadUvarint()
			if err != nil {
				return nil, err
			}
			if o >= uint64(len(pk.Balls[j])) {
				return nil, fmt.Errorf("labeled: owner ball (%d,%d) out of range", j, v)
			}
			s.ownerBall[j][v] = int32(o)
		}
	}
	s.cells = make([][]*cell, maxJ+1)
	for j := 0; j <= maxJ; j++ {
		s.cells[j] = make([]*cell, len(pk.Balls[j]))
		for k := range s.cells[j] {
			cv, err := r.ReadUvarint()
			if err != nil {
				return nil, err
			}
			if cv >= uint64(n) {
				return nil, fmt.Errorf("labeled: cell (%d,%d) center out of range", j, k)
			}
			tree, err := treeroute.DecodePortScheme(r, n)
			if err != nil {
				return nil, fmt.Errorf("labeled: cell (%d,%d) tree: %w", j, k, err)
			}
			st, err := searchtree.DecodeTree(r, n, func(r *bits.Reader) (treeroute.PortLabel, error) {
				return treeroute.DecodePortLabel(r)
			})
			if err != nil {
				return nil, fmt.Errorf("labeled: cell (%d,%d) search tree: %w", j, k, err)
			}
			rz, err := searchtree.DecodeRealizer(r, a, st)
			if err != nil {
				return nil, fmt.Errorf("labeled: cell (%d,%d) realizer: %w", j, k, err)
			}
			s.cells[j][k] = &cell{center: int(cv), tree: tree, st: st, rz: rz}
		}
	}
	s.tblBits = make([]int, n)
	for v := 0; v < n; v++ {
		b, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		s.tblBits[v] = int(b)
	}
	return s, nil
}
