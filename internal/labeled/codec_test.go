package labeled

import (
	"testing"

	"compactrouting/internal/core"
)

func TestEncodeTableMatchesTableBits(t *testing.T) {
	f := geoFixture(t, 100, 31)
	s, err := NewSimple(f.g, f.a, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < f.g.N(); v++ {
		_, n := s.EncodeTable(v)
		if n != s.TableBits(v) {
			t.Fatalf("node %d: encoded %d bits, TableBits says %d", v, n, s.TableBits(v))
		}
	}
}

func TestDecodedSchemeRoutesIdentically(t *testing.T) {
	f := geoFixture(t, 90, 32)
	s, err := NewSimple(f.g, f.a, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	tables := make([][]byte, f.g.N())
	sizes := make([]int, f.g.N())
	for v := range tables {
		tables[v], sizes[v] = s.EncodeTable(v)
	}
	d, err := DecodeSimple(f.g, tables, sizes)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range core.SamplePairs(f.g.N(), 400, 5) {
		orig, err := s.RouteToLabel(p[0], s.LabelOf(p[1]))
		if err != nil {
			t.Fatal(err)
		}
		dec, err := d.RouteToLabel(p[0], s.LabelOf(p[1]))
		if err != nil {
			t.Fatal(err)
		}
		if len(orig.Path) != len(dec.Path) {
			t.Fatalf("pair %v: path lengths differ (%d vs %d)", p, len(orig.Path), len(dec.Path))
		}
		for k := range orig.Path {
			if orig.Path[k] != dec.Path[k] {
				t.Fatalf("pair %v: paths diverge at hop %d", p, k)
			}
		}
	}
}

func TestDecodeSimpleRejectsCorruption(t *testing.T) {
	f := geoFixture(t, 40, 33)
	s, err := NewSimple(f.g, f.a, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	tables := make([][]byte, f.g.N())
	sizes := make([]int, f.g.N())
	for v := range tables {
		tables[v], sizes[v] = s.EncodeTable(v)
	}
	// Wrong table count.
	if _, err := DecodeSimple(f.g, tables[:10], sizes[:10]); err == nil {
		t.Fatal("short table set accepted")
	}
	// Truncated table.
	badSizes := make([]int, len(sizes))
	copy(badSizes, sizes)
	badSizes[0] = sizes[0] / 2
	if _, err := DecodeSimple(f.g, tables, badSizes); err == nil {
		t.Fatal("truncated table accepted")
	}
	// Duplicate self label: copy node 1's table over node 0's.
	dup := make([][]byte, len(tables))
	copy(dup, tables)
	dup[0] = tables[1]
	dupSizes := make([]int, len(sizes))
	copy(dupSizes, sizes)
	dupSizes[0] = sizes[1]
	if _, err := DecodeSimple(f.g, dup, dupSizes); err == nil {
		t.Fatal("duplicate self label accepted")
	}
}
