package labeled

import (
	"fmt"

	"compactrouting/internal/bits"
)

// SimpleHeader is the packet header of the simple labeled scheme,
// factored out so the scheme can run as a pure per-node step function
// (e.g. under the message-passing simulator in internal/sim): the
// destination label, the current intermediate net point x = v(i), and
// its level. Target < 0 means "no target acquired".
type SimpleHeader struct {
	Label  int32
	Target int32
	Level  int32
}

// Bits returns the header's encoded size: two node ids, a level, and a
// 2-bit phase tag (matching headerBits).
func (h SimpleHeader) Bits() int {
	n := 2 + bits.UvarintLen(uint64(h.Level))
	n += bits.UvarintLen(uint64(h.Label))
	n += bits.UvarintLen(uint64(h.Target + 1))
	return n
}

// PrepareHeader returns the initial header for a delivery to the node
// labeled label.
func (s *Simple) PrepareHeader(label int) (SimpleHeader, error) {
	if label < 0 || label >= s.g.N() {
		return SimpleHeader{}, fmt.Errorf("labeled: label %d out of range", label)
	}
	return SimpleHeader{Label: int32(label), Target: -1}, nil
}

// Step performs one forwarding decision at node w, reading only w's
// routing table and the header. It returns the neighbor to forward to
// and the updated header, or arrived == true when w is the
// destination.
func (s *Simple) Step(w int, h SimpleHeader) (next int, nh SimpleHeader, arrived bool, err error) {
	label := int(h.Label)
	if s.nt.Label(w) == label {
		return 0, h, true, nil
	}
	if h.Target < 0 || int(h.Target) == w {
		// (Re)acquire: minimal hit level at w.
		i, e, ok := s.minimalHit(w, label)
		if !ok {
			return 0, h, false, fmt.Errorf("labeled: node %d has no ring hit for label %d", w, label)
		}
		if int(e.x) == w {
			return 0, h, false, fmt.Errorf("labeled: self target at %d level %d", w, i)
		}
		h.Target, h.Level = e.x, int32(i)
	}
	e := findEntry(s.rings[w][h.Level], label)
	if e == nil || e.x != h.Target {
		return 0, h, false, fmt.Errorf("labeled: relay %d lost target %d at level %d", w, h.Target, h.Level)
	}
	return int(e.next), h, false, nil
}
