// Package labeled implements the paper's labeled (name-dependent)
// compact routing schemes for doubling networks:
//
//   - Simple: a (1+O(eps))-stretch scheme with ceil(log n)-bit labels
//     whose tables store ring entries at every net level, so its
//     storage carries a log(Delta) factor. It plays the role of the
//     Abraham–Gavoille–Goldberg–Malkhi scheme the paper cites as
//     Lemma 3.1 and is the underlying scheme of the simple
//     name-independent scheme (Theorem 1.4).
//
//   - ScaleFree: the paper's Theorem 1.2 scheme. Tables keep ring
//     entries only at the O(log n / eps) levels R(u); everywhere else
//     routing falls through to ball-packing Voronoi cells, per-cell
//     tree routing, and Search Tree II lookups, which removes the
//     log(Delta) dependence.
//
// Node labels are the DFS leaf enumeration of the netting tree
// (Section 4.1): integers in [0, n), the minimum conceivable label.
//
// This package is bound by the repo's deterministic ruleset: its
// outputs must be a pure function of explicit seeds (determinlint
// enforces the source-level contract; see DESIGN.md §Static analysis).
//
//determinlint:deterministic
package labeled

import (
	"fmt"
	"math"
	"sort"

	"compactrouting/internal/bits"
	"compactrouting/internal/core"
	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
	"compactrouting/internal/par"
	"compactrouting/internal/rnet"
)

// ringEntry is one ring record in a node's table: the net point x, the
// netting-tree range of (x, i), the next hop toward x, and whether x is
// still "far" (Algorithm 5's line-3 distance test, precomputed as one
// bit since it only depends on the storing node).
type ringEntry struct {
	x    int32
	lo   int32
	hi   int32
	next int32
	far  bool
}

// ringBits is the encoded size of one ring entry: four ids and a flag.
func ringBits(idBits int) int { return 4*idBits + 1 }

// findEntry returns the entry whose range contains label, or nil.
func findEntry(entries []ringEntry, label int) *ringEntry {
	for k := range entries {
		if int(entries[k].lo) <= label && label <= int(entries[k].hi) {
			return &entries[k]
		}
	}
	return nil
}

// Simple is the non-scale-free (1+O(eps))-stretch labeled scheme.
type Simple struct {
	g   *graph.Graph
	a   metric.Distancer
	h   *rnet.Hierarchy
	nt  *rnet.NettingTree
	eps float64
	// ringFactor scales ring radii (see NewSimpleRingFactor).
	ringFactor float64
	name       string
	// rings[v][i] is X_i(v) with ring radius ringFactor*Radius(i),
	// for every level i in [0, L].
	rings  [][][]ringEntry
	tblBit []int
	idBits int
}

var _ core.LabeledScheme = (*Simple)(nil)

// defaultRingFactor is the ring radius multiplier: X_i(u) =
// B_u(F*2^i) ∩ Y_i with F = ringFactor/eps. F = 2/eps yields stretch
// <= 1 + 4eps/(1-eps).
const defaultRingFactor = 2.0

// NewSimple compiles the scheme. Preprocessing is O(n^2 log Delta) on
// the dense backend and ball-local on the lazy one.
func NewSimple(g *graph.Graph, a metric.Distancer, eps float64) (*Simple, error) {
	return NewSimpleRingFactor(g, a, eps, defaultRingFactor)
}

// NewSimpleRingFactor compiles the scheme with an explicit ring radius
// multiplier (rings have radius factor*2^i/eps). Values below 2 shrink
// tables but weaken the stretch guarantee; it exists for the ablation
// experiments. factor must be at least 1 (below that the zooming
// ancestor may fall outside the ring and routing gets stuck).
//
// The ring build is center-first: instead of intersecting every node's
// ball with Y_i, each net point x ∈ Y_i scatters itself into the ring
// of every node of B_x(radius). Membership and next hops then read only
// center rows — Dist(x, v), and NextHop(v, x) which is column v of x's
// own tree — so the lazy backend builds |Y_i| truncated rows per level
// (prefetched in parallel) instead of one full row per node. Sweeping
// centers in ascending id appends each ring already sorted by x.
func NewSimpleRingFactor(g *graph.Graph, a metric.Distancer, eps, factor float64) (*Simple, error) {
	core.NoteSchemeBuild()
	if eps <= 0 || eps > 0.5 {
		return nil, fmt.Errorf("labeled: eps %v out of (0, 0.5]", eps)
	}
	if factor < 1 {
		return nil, fmt.Errorf("labeled: ring factor %v below 1", factor)
	}
	h := rnet.NewHierarchy(a, 0)
	nt := rnet.NewNettingTree(h)
	s := &Simple{
		g: g, a: a, h: h, nt: nt, eps: eps,
		ringFactor: factor,
		name:       "labeled/simple",
		rings:      make([][][]ringEntry, g.N()),
		tblBit:     make([]int, g.N()),
		idBits:     bits.UintBits(g.N()),
	}
	n := g.N()
	for v := 0; v < n; v++ {
		s.rings[v] = make([][]ringEntry, h.TopLevel()+1)
	}
	var scratch []int
	centers := make([]int, 0, n)
	for i := 0; i <= h.TopLevel(); i++ {
		radius := s.ringFactor * h.Radius(i) / s.eps
		centers = append(centers[:0], h.Levels[i]...)
		sort.Ints(centers)
		metric.PrefetchBalls(a, centers, radius)
		for _, x := range centers {
			rg, _ := nt.Range(x, i)
			scratch = a.AppendBall(scratch[:0], x, radius)
			for _, v := range scratch {
				next := a.NextHop(v, x)
				if next < 0 {
					next = v // x == v: the entry's hop is never followed
				}
				s.rings[v][i] = append(s.rings[v][i], ringEntry{
					x:    int32(x),
					lo:   int32(rg.Lo),
					hi:   int32(rg.Hi),
					next: int32(next),
				})
			}
		}
	}
	// The bit accounting is embarrassingly parallel: iteration v reads
	// only rings[v] and writes only tblBit[v] (see EncodeTable for the
	// layout it mirrors bit for bit).
	par.For(n, func(v int) {
		bitsHere := bits.UvarintLen(uint64(h.TopLevel()+1)) + s.idBits
		for i := 0; i <= h.TopLevel(); i++ {
			ring := s.rings[v][i]
			bitsHere += bits.UvarintLen(uint64(len(ring))) + len(ring)*ringBits(s.idBits)
		}
		s.tblBit[v] = bitsHere
	})
	return s, nil
}

// SchemeName implements core.LabeledScheme.
func (s *Simple) SchemeName() string { return s.name }

// LabelOf returns v's ceil(log n)-bit label: the netting-tree DFS leaf
// index.
func (s *Simple) LabelOf(v int) int { return s.nt.Label(v) }

// NodeOfLabel inverts LabelOf (preprocessing-side helper for tests and
// the name-independent schemes).
func (s *Simple) NodeOfLabel(l int) int { return s.nt.NodeOfLabel(l) }

// TableBits returns the routing table size of v in bits.
func (s *Simple) TableBits(v int) int { return s.tblBit[v] }

// Eps returns the scheme's stretch parameter.
func (s *Simple) Eps() float64 { return s.eps }

// minimalHit returns the lowest level whose ring at v contains the
// label's net ancestor, with the matching entry.
func (s *Simple) minimalHit(v, label int) (int, *ringEntry, bool) {
	for i := 0; i <= s.h.TopLevel(); i++ {
		if e := findEntry(s.rings[v][i], label); e != nil {
			return i, e, true
		}
	}
	return 0, nil, false
}

// RouteToLabel delivers a packet from src to the node labeled label by
// iterating the local Step function. Every forwarding decision reads
// only the current node's table and the packet header (destination
// label + current intermediate target).
func (s *Simple) RouteToLabel(src, label int) (*core.Route, error) {
	if src < 0 || src >= s.g.N() {
		return nil, fmt.Errorf("labeled: source %d out of range", src)
	}
	h, err := s.PrepareHeader(label)
	if err != nil {
		return nil, err
	}
	tr := core.NewTrace(s.g, src)
	maxSteps := 4 * s.g.N() * (s.h.TopLevel() + 2)
	for step := 0; ; step++ {
		if step > maxSteps {
			return nil, fmt.Errorf("labeled: no progress routing to label %d", label)
		}
		next, nh, arrived, err := s.Step(tr.At(), h)
		if err != nil {
			return nil, err
		}
		if arrived {
			return tr.Finish(s.nt.NodeOfLabel(label))
		}
		tr.Header(nh.Bits())
		if err := tr.Hop(next); err != nil {
			return nil, err
		}
		h = nh
	}
}

// MaxLevel exposes the hierarchy height (log Delta) for reports.
func (s *Simple) MaxLevel() int { return s.h.TopLevel() }

// Hierarchy exposes the shared net hierarchy (the name-independent
// schemes reuse it).
func (s *Simple) Hierarchy() *rnet.Hierarchy { return s.h }

// NettingTree exposes the shared netting tree.
func (s *Simple) NettingTree() *rnet.NettingTree { return s.nt }

// StretchBound returns the analytical stretch guarantee, 1+4eps/(1-eps)
// at the default ring factor 2 (generalizing to 1 + (2F)/(F/2 - 1) * eps
// -ish for factor F; smaller factors weaken it).
func (s *Simple) StretchBound() float64 {
	f := s.ringFactor
	denom := f/2 - s.eps
	if denom <= 0 {
		return math.Inf(1)
	}
	return 1 + 2*f*s.eps/denom
}

// checkFar evaluates Algorithm 5's line-3 distance test
// d(u, x) >= 2^{i-1}/eps - 2^i for a level of the given radius; it is
// precomputed into the far bit of scale-free ring entries.
func checkFar(d, radius, eps float64) bool {
	return d >= radius/(2*eps)-radius
}
