package labeled

import (
	"fmt"
	"math"

	"compactrouting/internal/ballpack"
	"compactrouting/internal/bits"
	"compactrouting/internal/core"
	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
	"compactrouting/internal/par"
	"compactrouting/internal/rnet"
	"compactrouting/internal/searchtree"
	"compactrouting/internal/treeroute"
)

// sfLevel is one stored level of R(u): the level index i, the packing
// level j(u, i) Algorithm 5 line 7 consults, and the ring entries.
type sfLevel struct {
	i       int
	j       int
	entries []ringEntry
}

// cell is the per-(j, ball) machinery of Theorem 1.2: the Voronoi cell
// V(c, j) of a packing-ball center, its shortest-path tree T_c(j) with
// a tree-routing scheme, and the Search Tree II T'(c, r_c(j)) mapping
// global labels of nodes in T_c(j) ∩ B_c(r_c(j+1)) to their local tree
// labels.
type cell struct {
	center int
	tree   *treeroute.PortScheme
	st     *searchtree.Tree[treeroute.PortLabel]
	rz     *searchtree.PathRealizer
}

// ScaleFree is the paper's Theorem 1.2 scheme: (1+O(eps)) stretch,
// ceil(log n)-bit labels, and per-node storage independent of the
// normalized diameter.
type ScaleFree struct {
	g   *graph.Graph
	a   metric.Distancer
	h   *rnet.Hierarchy
	nt  *rnet.NettingTree
	pk  *ballpack.Packing
	eps float64

	idBits int
	// levels[v] holds the rings for i ∈ R(v), ascending in i.
	levels [][]sfLevel
	// ownerBall[j][v] = index within pk.Balls[j] of the ball whose
	// Voronoi cell contains v.
	ownerBall [][]int32
	cells     [][]*cell
	tblBits   []int
}

var _ core.LabeledScheme = (*ScaleFree)(nil)

// NewScaleFree compiles the Theorem 1.2 scheme. eps must be in
// (0, 1/4]: the ring-hit guarantee at the eccentricity window of R(u)
// requires 1/eps >= 4 (routes that would escape it fall back to the
// top-level packing ball and are flagged, so delivery is total for any
// eps, but the analyzed path needs eps <= 1/4).
func NewScaleFree(g *graph.Graph, a metric.Distancer, eps float64) (*ScaleFree, error) {
	core.NoteSchemeBuild()
	if eps <= 0 || eps > 0.25 {
		return nil, fmt.Errorf("labeled: scale-free scheme needs eps in (0, 0.25], got %v", eps)
	}
	if g.N() < 2 {
		return nil, fmt.Errorf("labeled: need at least 2 nodes, got %d", g.N())
	}
	s := &ScaleFree{
		g: g, a: a,
		h:      rnet.NewHierarchy(a, 0),
		nt:     nil,
		pk:     ballpack.New(a),
		eps:    eps,
		idBits: bits.UintBits(g.N()),
	}
	s.nt = rnet.NewNettingTree(s.h)
	if err := s.buildCells(); err != nil {
		return nil, err
	}
	s.buildRings()
	s.accountStorage()
	return s, nil
}

// buildCells constructs, for every packing level j, the Voronoi
// partition of the packing centers, the per-cell shortest-path trees
// with tree routing, and the Search Tree II per ball.
func (s *ScaleFree) buildCells() error {
	n := s.g.N()
	maxJ := s.pk.MaxJ()
	s.ownerBall = make([][]int32, maxJ+1)
	s.cells = make([][]*cell, maxJ+1)
	logn := int(math.Ceil(math.Log2(float64(n))))
	if logn < 1 {
		logn = 1
	}
	for j := 0; j <= maxJ; j++ {
		balls := s.pk.Balls[j]
		centers := make([]int, len(balls))
		for k := range balls {
			centers[k] = balls[k].Center
		}
		owner, _, parent := metric.Voronoi(s.g, centers)
		s.ownerBall[j] = make([]int32, n)
		for v := 0; v < n; v++ {
			s.ownerBall[j][v] = int32(owner[v])
		}
		// Every ball's cell machinery reads only the oracle and the
		// level's Voronoi partition, so the per-ball loop parallelizes
		// with ordered output (cells[j][k] is a pure function of (j, k)).
		cells, err := par.MapErr(len(balls), func(k int) (*cell, error) {
			c := balls[k].Center
			pa := make([]int, n)
			for v := range pa {
				if owner[v] == k {
					pa[v] = parent[v]
				} else {
					pa[v] = treeroute.NotInTree
				}
			}
			pa[c] = -1
			tree, err := treeroute.NewPortScheme(pa, c)
			if err != nil {
				return nil, fmt.Errorf("labeled: cell tree (j=%d, ball=%d): %w", j, k, err)
			}
			st, err := searchtree.New[treeroute.PortLabel](s.a, c, balls[k].Radius, searchtree.Config{
				Eps:          s.eps,
				MaxLevels:    logn,
				MinNetRadius: s.h.Base(),
			})
			if err != nil {
				return nil, fmt.Errorf("labeled: search tree (j=%d, ball=%d): %w", j, k, err)
			}
			// Pairs: global label -> local tree label, for cell members
			// within B_c(r_c(j+1)).
			rNext := s.a.RadiusOfSize(c, s.pk.Size(j+1))
			var pairs []searchtree.Pair[treeroute.PortLabel]
			for _, v := range s.a.Ball(c, rNext) {
				if owner[v] == k {
					pairs = append(pairs, searchtree.Pair[treeroute.PortLabel]{
						Key:  s.nt.Label(v),
						Data: tree.Label(v),
					})
				}
			}
			st.Store(pairs)
			rz, err := searchtree.NewRealizer(s.a, st, func(sites []int) ([]int, []int) {
				ow, _, pr := metric.Voronoi(s.g, sites)
				return ow, pr
			})
			if err != nil {
				return nil, fmt.Errorf("labeled: realizer (j=%d, ball=%d): %w", j, k, err)
			}
			return &cell{center: c, tree: tree, st: st, rz: rz}, nil
		})
		if err != nil {
			return err
		}
		s.cells[j] = cells
	}
	return nil
}

// buildRings computes R(v) and the ring entries for every node.
//
// R(v) = { i : exists j with (eps/6) r_v(j) <= Radius(i) <= r_v(j) }
// (Section 4.1), where r_v(j) is the radius of the ball of size
// min(2^j, n) around v. |R(v)| = O(log n * log(1/eps)) levels.
func (s *ScaleFree) buildRings() {
	n := s.g.N()
	L := s.h.TopLevel()
	maxJ := s.pk.MaxJ()
	s.levels = make([][]sfLevel, n)
	// Node v's stored levels depend only on the oracle and the shared
	// hierarchy/packing; iteration v writes levels[v] alone.
	par.For(n, func(v int) {
		var scratch []int // ball buffer reused across the node's levels
		rv := make([]float64, maxJ+1)
		for j := 0; j <= maxJ; j++ {
			rv[j] = s.a.RadiusOfSize(v, s.pk.Size(j))
		}
		inR := make([]bool, L+1)
		for j := 0; j <= maxJ; j++ {
			if rv[j] <= 0 {
				continue
			}
			// Levels i with (eps/6) r_v(j) <= base*2^i <= r_v(j).
			lo := int(math.Ceil(math.Log2(s.eps * rv[j] / 6 / s.h.Base())))
			hi := int(math.Floor(math.Log2(rv[j] / s.h.Base())))
			if lo < 0 {
				lo = 0
			}
			if hi > L {
				hi = L
			}
			for i := lo; i <= hi; i++ {
				inR[i] = true
			}
		}
		for i := 0; i <= L; i++ {
			if !inR[i] {
				continue
			}
			// j(v, i): the largest j with r_v(j) <= Radius(i).
			ji := 0
			for j := 0; j <= maxJ; j++ {
				if rv[j] <= s.h.Radius(i) {
					ji = j
				}
			}
			s.levels[v] = append(s.levels[v], sfLevel{
				i:       i,
				j:       ji,
				entries: s.ringEntriesAt(v, i, &scratch),
			})
		}
	})
}

// ringEntriesAt builds X_i(v) = B_v(Radius(i)/eps) ∩ Y_i with the far
// bit of Algorithm 5's line-3 test. scratch is a reusable ball buffer
// owned by the calling goroutine.
func (s *ScaleFree) ringEntriesAt(v, i int, scratch *[]int) []ringEntry {
	radius := s.h.Radius(i) / s.eps
	*scratch = s.a.AppendBall((*scratch)[:0], v, radius)
	var out []ringEntry
	for _, x := range *scratch {
		if !s.h.InLevel(x, i) {
			continue
		}
		rg, _ := s.nt.Range(x, i)
		next := s.a.NextHop(v, x)
		if next < 0 {
			next = v
		}
		out = append(out, ringEntry{
			x:    int32(x),
			lo:   int32(rg.Lo),
			hi:   int32(rg.Hi),
			next: int32(next),
			far:  checkFar(s.a.Dist(v, x), s.h.Radius(i), s.eps),
		})
	}
	return out
}

// accountStorage totals per-node table bits across every structure.
func (s *ScaleFree) accountStorage() {
	n := s.g.N()
	s.tblBits = make([]int, n)
	// The per-node pass reads only the (now immutable) cells and rings
	// and writes tblBits[v]; the cross-node search-tree residency pass
	// below stays serial because it scatters into arbitrary entries.
	par.For(n, func(v int) {
		b := s.idBits // own label
		for _, lv := range s.levels[v] {
			b += bits.UvarintLen(uint64(lv.i)) + bits.UvarintLen(uint64(lv.j))
			b += bits.UvarintLen(uint64(len(lv.entries)))
			b += len(lv.entries) * ringBits(s.idBits)
		}
		for j := range s.cells {
			cl := s.cells[j][s.ownerBall[j][v]]
			// Link to the cell center: the center's id and its local
			// tree label l(c; c, j).
			b += s.idBits + cl.tree.Label(cl.center).Bits()
			// v's own tree-routing table in T_c(j), with the port->link
			// map charged too (conservative: the port model normally
			// treats it as link-layer state).
			b += cl.tree.TableBits(v) + cl.tree.PortMapBits(v, s.idBits)
		}
		s.tblBits[v] = b
	})
	// Search-tree residency: structure bits live at the hosting nodes.
	for j := range s.cells {
		for _, cl := range s.cells[j] {
			for _, v := range cl.st.Members {
				nd := cl.st.Nodes[v]
				b := 3 * s.idBits // parent id + own subtree range
				b += len(nd.Children) * 3 * s.idBits
				for _, p := range nd.Pairs {
					b += s.idBits + p.Data.Bits()
				}
				b += cl.rz.StorageBits(v)
				s.tblBits[v] += b
			}
		}
	}
}

// SchemeName implements core.LabeledScheme.
func (s *ScaleFree) SchemeName() string { return "labeled/scale-free" }

// LabelOf returns v's ceil(log n)-bit label.
func (s *ScaleFree) LabelOf(v int) int { return s.nt.Label(v) }

// NodeOfLabel inverts LabelOf.
func (s *ScaleFree) NodeOfLabel(l int) int { return s.nt.NodeOfLabel(l) }

// TableBits returns v's total routing storage in bits.
func (s *ScaleFree) TableBits(v int) int { return s.tblBits[v] }

// Eps returns the stretch parameter.
func (s *ScaleFree) Eps() float64 { return s.eps }

// StretchBound returns the analytical stretch guarantee, Lemma 4.7's
// 1+O(eps) with its working constant (the same bound the package's
// all-pairs tests assert against).
func (s *ScaleFree) StretchBound() float64 { return 1 + 25*s.eps }

// Hierarchy exposes the shared net hierarchy.
func (s *ScaleFree) Hierarchy() *rnet.Hierarchy { return s.h }

// NettingTree exposes the shared netting tree.
func (s *ScaleFree) NettingTree() *rnet.NettingTree { return s.nt }

// Packing exposes the ball packing (used by the scale-free
// name-independent scheme, which shares it).
func (s *ScaleFree) Packing() *ballpack.Packing { return s.pk }

// minimalHitR returns the lowest-index stored level of u whose ring
// contains the label's ancestor (Algorithm 5 line 2).
func (s *ScaleFree) minimalHitR(u, label int) (*sfLevel, *ringEntry, bool) {
	for k := range s.levels[u] {
		lv := &s.levels[u][k]
		if e := findEntry(lv.entries, label); e != nil {
			return lv, e, true
		}
	}
	return nil, nil, false
}

// phaseAHeader is the header size during Algorithm 5's walking phase:
// destination label, previous level index, phase tag.
func (s *ScaleFree) phaseAHeader() int {
	return s.idBits + bits.UvarintLen(uint64(s.h.TopLevel()+1)) + 2
}

// RouteToLabel implements Algorithm 5 by iterating the local Step
// function: every forwarding decision is a function of the current
// node's compiled state and the packet header.
func (s *ScaleFree) RouteToLabel(src, label int) (*core.Route, error) {
	if src < 0 || src >= s.g.N() {
		return nil, fmt.Errorf("labeled: source %d out of range", src)
	}
	h, err := s.PrepareHeader(label)
	if err != nil {
		return nil, err
	}
	tr := core.NewTrace(s.g, src)
	maxSteps := 16 * s.g.N() * (s.h.TopLevel() + 2)
	for step := 0; ; step++ {
		if step > maxSteps {
			return nil, fmt.Errorf("labeled: no progress routing to label %d", label)
		}
		next, nh, arrived, err := s.Step(tr.At(), h)
		if err != nil {
			return nil, err
		}
		if nh.Fallback {
			tr.MarkFallback()
		}
		if arrived {
			return tr.Finish(s.nt.NodeOfLabel(label))
		}
		tr.Header(nh.Bits())
		if err := tr.Hop(next); err != nil {
			return nil, err
		}
		h = nh
	}
}
