package labeled

import (
	"fmt"

	"compactrouting/internal/bits"
	"compactrouting/internal/trace"
	"compactrouting/internal/treeroute"
)

// This file gives the labeled packet headers a real wire form. Bits()
// promises an exact encoded size; the Encode/Decode pair here is that
// encoding, and the codec tests pin Writer.Len() == Bits() so the
// bit-accounting the experiments report can never drift from what a
// serializer would actually emit. The same headers classify themselves
// for the trace layer via TracePhase.

// TracePhase classifies simple-scheme hops: every hop is a direct
// ring-hit move toward the current net point (trace.PhaseDirect).
func (h SimpleHeader) TracePhase() trace.Phase { return trace.PhaseDirect }

// TracePhase maps Algorithm 5's phases onto the trace vocabulary:
// ring-cascade hops are direct, the ride to the Voronoi center is a
// tree climb, the Search Tree II round trip is a search, and the
// center-to-destination leg is final. Hops taken after the scheme gave
// up on its analyzed cascade are fallback until the final leg.
func (h SFHeader) TracePhase() trace.Phase {
	if h.Fallback && h.Phase != SFPhaseFinal {
		return trace.PhaseFallback
	}
	switch h.Phase {
	case SFPhaseToCenter:
		return trace.PhaseTree
	case SFPhaseSearchDown, SFPhaseSearchUp:
		return trace.PhaseSearch
	case SFPhaseFinal:
		return trace.PhaseFinal
	default:
		return trace.PhaseDirect
	}
}

// simpleTagBits is the fixed tag width Bits() charges for SimpleHeader
// (reserved; written as zero).
const simpleTagBits = 2

// Encode serializes the header; the emitted size equals Bits().
func (h SimpleHeader) Encode(w *bits.Writer) {
	w.WriteBits(0, simpleTagBits)
	w.WriteUvarint(uint64(h.Level))
	w.WriteUvarint(uint64(h.Label))
	w.WriteUvarint(uint64(h.Target + 1))
}

// DecodeSimpleHeader reads a header written by SimpleHeader.Encode.
func DecodeSimpleHeader(r *bits.Reader) (SimpleHeader, error) {
	tag, err := r.ReadBits(simpleTagBits)
	if err != nil {
		return SimpleHeader{}, err
	}
	if tag != 0 {
		return SimpleHeader{}, fmt.Errorf("labeled: bad header tag %d", tag)
	}
	var h SimpleHeader
	if h.Level, err = readID(r, "level", 0); err != nil {
		return SimpleHeader{}, err
	}
	if h.Label, err = readID(r, "label", 0); err != nil {
		return SimpleHeader{}, err
	}
	if h.Target, err = readShiftedID(r, "target"); err != nil {
		return SimpleHeader{}, err
	}
	return h, nil
}

// sfPhaseBits is the phase tag width Bits() charges for SFHeader.
const sfPhaseBits = 3

// Encode serializes the header: phase tag, label, the Found/Fallback
// flags, then exactly the per-phase state Bits() accounts for.
func (h SFHeader) Encode(w *bits.Writer) {
	w.WriteBits(uint64(h.Phase), sfPhaseBits)
	w.WriteUvarint(uint64(h.Label))
	w.WriteBit(h.Found)
	w.WriteBit(h.Fallback)
	switch h.Phase {
	case SFPhaseA:
		w.WriteUvarint(uint64(h.Prev))
	case SFPhaseToCenter:
		w.WriteUvarint(uint64(h.J))
		h.CenterLabel.Encode(w)
	case SFPhaseSearchDown, SFPhaseSearchUp:
		w.WriteUvarint(uint64(h.J))
		w.WriteUvarint(uint64(h.VTarget + 1))
		if h.Found {
			h.Data.Encode(w)
		}
	case SFPhaseFinal:
		w.WriteUvarint(uint64(h.J))
		h.Data.Encode(w)
	}
}

// DecodeSFHeader reads a header written by SFHeader.Encode. Fields the
// active phase does not carry decode to their zero values, exactly as
// a fresh header would hold them.
func DecodeSFHeader(r *bits.Reader) (SFHeader, error) {
	tag, err := r.ReadBits(sfPhaseBits)
	if err != nil {
		return SFHeader{}, err
	}
	if tag > uint64(SFPhaseFinal) {
		return SFHeader{}, fmt.Errorf("labeled: bad SF phase %d", tag)
	}
	h := SFHeader{Phase: SFPhase(tag)}
	if h.Label, err = readID(r, "label", 0); err != nil {
		return SFHeader{}, err
	}
	if h.Found, err = r.ReadBit(); err != nil {
		return SFHeader{}, err
	}
	if h.Fallback, err = r.ReadBit(); err != nil {
		return SFHeader{}, err
	}
	switch h.Phase {
	case SFPhaseA:
		if h.Prev, err = readID(r, "prev", 0); err != nil {
			return SFHeader{}, err
		}
	case SFPhaseToCenter:
		if h.J, err = readID(r, "j", 0); err != nil {
			return SFHeader{}, err
		}
		if h.CenterLabel, err = treeroute.DecodePortLabel(r); err != nil {
			return SFHeader{}, err
		}
	case SFPhaseSearchDown, SFPhaseSearchUp:
		if h.J, err = readID(r, "j", 0); err != nil {
			return SFHeader{}, err
		}
		if h.VTarget, err = readShiftedID(r, "vtarget"); err != nil {
			return SFHeader{}, err
		}
		if h.Found {
			if h.Data, err = treeroute.DecodePortLabel(r); err != nil {
				return SFHeader{}, err
			}
		}
	case SFPhaseFinal:
		if h.J, err = readID(r, "j", 0); err != nil {
			return SFHeader{}, err
		}
		if h.Data, err = treeroute.DecodePortLabel(r); err != nil {
			return SFHeader{}, err
		}
	}
	return h, nil
}

// readID reads a uvarint field that must fit int32 and be >= min.
func readID(r *bits.Reader, field string, min int32) (int32, error) {
	v, err := r.ReadUvarint()
	if err != nil {
		return 0, err
	}
	if v > 1<<31-1 {
		return 0, fmt.Errorf("labeled: %s %d overflows int32", field, v)
	}
	if int32(v) < min {
		return 0, fmt.Errorf("labeled: %s %d below %d", field, int32(v), min)
	}
	return int32(v), nil
}

// readShiftedID reads a field encoded as value+1 so -1 round-trips.
func readShiftedID(r *bits.Reader, field string) (int32, error) {
	v, err := readID(r, field, 0)
	if err != nil {
		return 0, err
	}
	return v - 1, nil
}
