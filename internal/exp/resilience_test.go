package exp

import (
	"bytes"
	"strings"
	"testing"

	"compactrouting/internal/faultsim"
)

func smallChaosConfig() ChaosConfig {
	return ChaosConfig{
		LossRates:  []float64{0, 0.1},
		FailFracs:  []float64{0, 0.1},
		Rel:        faultsim.DefaultReliability,
		HopLatency: 1,
	}
}

// TestChaosSweepInvariants checks the properties BENCH_chaossim.json is
// trusted for: the fault-free cell delivers everything at stretch
// parity, and on every cell the retry layer's delivery rate is at least
// the single-shot rate (guaranteed structurally: attempt 0 shares its
// fault draws with the unretried run).
func TestChaosSweepInvariants(t *testing.T) {
	e, err := GeometricEnv(48, 5)
	if err != nil {
		t.Fatal(err)
	}
	records, err := ChaosSweep(e, smallChaosConfig(), 0.25, 80, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 5*4 { // 5 schemes x (2 loss x 2 fail)
		t.Fatalf("got %d records, want 20", len(records))
	}
	for _, r := range records {
		if r.RateRetry < r.RateNoRetry {
			t.Errorf("%s loss=%v fail=%v: retry rate %.3f below no-retry %.3f",
				r.Scheme, r.Loss, r.EdgeFailFrac, r.RateRetry, r.RateNoRetry)
		}
		if r.Loss == 0 && r.EdgeFailFrac == 0 {
			if r.RateRetry != 1 || r.RateNoRetry != 1 {
				t.Errorf("%s: fault-free cell did not deliver everything: %+v", r.Scheme, r)
			}
			if r.StretchDegradation != 1 {
				t.Errorf("%s: fault-free degradation %.3f, want 1", r.Scheme, r.StretchDegradation)
			}
		}
		if r.MeanAttempts < 1 {
			t.Errorf("%s: mean attempts %.3f < 1", r.Scheme, r.MeanAttempts)
		}
	}
}

// TestChaosJSONDeterministic is the make-check property at unit scope:
// two sweeps from the same seed serialize byte-identically.
func TestChaosJSONDeterministic(t *testing.T) {
	e, err := GeometricEnv(40, 9)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := WriteChaosJSON(&a, e, smallChaosConfig(), 0.25, 50, 9); err != nil {
		t.Fatal(err)
	}
	if err := WriteChaosJSON(&b, e, smallChaosConfig(), 0.25, 50, 9); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two chaos sweeps from the same seed differ")
	}
	if !strings.Contains(a.String(), "delivery_rate_retry") {
		t.Fatalf("JSON missing expected fields:\n%s", a.String()[:200])
	}
}

func TestResilienceTableRuns(t *testing.T) {
	e, err := GeometricEnv(40, 7)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Resilience(&sb, e, smallChaosConfig(), 0.25, 50, 7); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Resilience", "full-table", "name-independent", "delivered (retry)", "degradation"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
