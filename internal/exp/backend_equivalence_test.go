package exp

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"compactrouting/internal/bits"
	"compactrouting/internal/graph"
	"compactrouting/internal/labeled"
	"compactrouting/internal/metric"
	"compactrouting/internal/nameind"
	"compactrouting/internal/snapshot"
)

// TestSchemeBytesBackendEquivalence is the scheme half of the
// dense/lazy equivalence contract (the query half lives in
// internal/metric's TestDenseLazyEquivalence): all four paper schemes,
// built over the same graph on the dense and the lazy backend, must
// serialize byte-identically through the snapshot codecs. Byte
// equality of the encoded tables subsumes every structural property —
// centers, ring sets, tree parents, name assignments — so one compare
// pins the whole construction.
func TestSchemeBytesBackendEquivalence(t *testing.T) {
	const eps = 0.25
	for fi, fam := range []string{"grid-holes", "geometric", "power-law", "random-tree"} {
		for si, n := range []int{16, 33, 64} {
			seed := int64(1 + fi*3 + si) // distinct seed per cell
			t.Run(fmt.Sprintf("%s/n%d/seed%d", fam, n, seed), func(t *testing.T) {
				t.Parallel()
				g := equivGraph(t, fam, n, seed)
				dense := metric.NewAPSP(g)
				// Undersized cache so table construction spans evictions.
				lazy := metric.NewLazyOracleOpts(g, metric.LazyOpts{MaxEntries: 4 * g.N()})
				db := schemeBytes(t, g, dense, seed, eps)
				lb := schemeBytes(t, g, lazy, seed, eps)
				for _, name := range []string{"simple-labeled", "scale-free-labeled", "name-independent", "scale-free-name-independent"} {
					if !bytes.Equal(db[name], lb[name]) {
						t.Errorf("%s: encoded tables differ between backends (%d vs %d bytes)",
							name, len(db[name]), len(lb[name]))
					}
				}
			})
		}
	}
}

// schemeBytes builds all four schemes on the given backend and returns
// each one's snapshot-codec serialization.
func schemeBytes(t *testing.T, g *graph.Graph, a metric.Distancer, seed int64, eps float64) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	encode := func(name string, impl any) {
		w := &bits.Writer{}
		if err := snapshot.EncodeScheme(w, name, impl); err != nil {
			t.Fatalf("encode %s: %v", name, err)
		}
		out[name] = append([]byte(nil), w.Bytes()...)
	}
	simple, err := labeled.NewSimple(g, a, eps)
	if err != nil {
		t.Fatalf("simple-labeled: %v", err)
	}
	encode("simple-labeled", simple)
	sf, err := labeled.NewScaleFree(g, a, eps)
	if err != nil {
		t.Fatalf("scale-free-labeled: %v", err)
	}
	encode("scale-free-labeled", sf)
	nm := nameind.RandomNaming(g.N(), seed+2)
	ni, err := nameind.NewSimple(g, a, nm, simple, eps)
	if err != nil {
		t.Fatalf("name-independent: %v", err)
	}
	encode("name-independent", ni)
	sfni, err := nameind.NewScaleFree(g, a, nm, sf, eps)
	if err != nil {
		t.Fatalf("scale-free-name-independent: %v", err)
	}
	encode("scale-free-name-independent", sfni)
	return out
}

// equivGraph mirrors internal/metric's equivGraphs families without
// the import (metric's version is test-internal).
func equivGraph(t *testing.T, fam string, n int, seed int64) *graph.Graph {
	t.Helper()
	switch fam {
	case "grid-holes":
		side := 1
		for side*side < n {
			side++
		}
		g, _, err := graph.GridWithHoles(side, side, 0.25, seed)
		if err != nil {
			t.Fatal(err)
		}
		return g
	case "geometric":
		radius := 1.8 * math.Sqrt(math.Log(float64(n))/float64(n))
		g, _, err := graph.RandomGeometric(n, radius, seed)
		if err != nil {
			t.Fatal(err)
		}
		return g
	case "power-law":
		g, err := graph.PowerLaw(n, 2, 8, seed)
		if err != nil {
			t.Fatal(err)
		}
		return g
	case "random-tree":
		g, err := graph.RandomTree(n, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	t.Fatalf("unknown family %q", fam)
	return nil
}
