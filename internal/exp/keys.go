package exp

import "sort"

// sortedKeys returns m's keys in ascending order, so map-backed
// aggregations can feed deterministic report output. It is the one
// sanctioned map iteration in this package: the collect-then-sort
// result is independent of Go's randomized visit order.
func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	//determinlint:allow maprange keys are sorted before use, so the result is independent of iteration order
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
