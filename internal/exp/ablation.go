package exp

import (
	"fmt"
	"io"

	"compactrouting/internal/ballpack"
	"compactrouting/internal/core"
	"compactrouting/internal/labeled"
	"compactrouting/internal/metric"
	"compactrouting/internal/searchtree"
	"compactrouting/internal/treeroute"
)

// Ablation isolates the design choices DESIGN.md calls out and
// measures what each buys:
//
//  1. ring radius factor in the labeled scheme (stretch vs table bits);
//  2. greedy-by-radius packing-ball selection (Lemma 2.3's Property 2
//     survives) vs arbitrary order (witnesses get lost);
//  3. heavy-path child order in tree routing (log n light entries) vs
//     id order (labels blow up with depth);
//  4. search-tree refinement rate eps (height/cost vs node degree).
func Ablation(w io.Writer, e *Env, pairCount int, seed int64) error {
	pairs := e.Pairs(pairCount, seed)

	// (1) Ring factor.
	fmt.Fprintf(w, "Ablation on %s (n=%d, %d pairs)\n", e.Name, e.G.N(), len(pairs))
	fmt.Fprintln(w, "\n(1) labeled-simple ring radius factor F (rings = B_u(F*2^i/eps) ∩ Y_i), eps=0.25:")
	tw := newTab(w)
	fmt.Fprintln(tw, "F\tmax stretch\tmean stretch\tmax table bits\tanalytic bound")
	for _, f := range []float64{1, 1.5, 2, 3, 4} {
		s, err := labeled.NewSimpleRingFactor(e.G, e.A, 0.25, f)
		if err != nil {
			return err
		}
		st, err := core.EvaluateLabeled(s, e.A, pairs)
		if err != nil {
			// Small factors can strand packets (the zooming ancestor
			// escapes the ring): that IS the ablation's finding.
			fmt.Fprintf(tw, "%.1f\tROUTING FAILS\t-\t-\t%.3f\n", f, s.StretchBound())
			continue
		}
		tb := core.Tables(s.TableBits, e.G.N())
		fmt.Fprintf(tw, "%.1f\t%.3f\t%.3f\t%d\t%.3f\n", f, st.Max, st.Mean, tb.MaxBits, s.StretchBound())
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// (2) Packing selection order.
	fmt.Fprintln(w, "\n(2) packing-ball selection order (Lemma 2.3 Property 2 witness coverage):")
	tw = newTab(w)
	fmt.Fprintln(tw, "ball size\tby-radius: covered\tmean d/(2r)\tby-id: covered\tmean d/(2r)")
	for _, size := range []int{4, 16, 64} {
		if size > e.G.N() {
			break
		}
		radiusBalls := ballpack.BuildLevelOrdered(e.A, size, true)
		idBalls := ballpack.BuildLevelOrdered(e.A, size, false)
		okR, meanR, _ := ballpack.WitnessQuality(e.A, radiusBalls, size)
		okI, meanI, _ := ballpack.WitnessQuality(e.A, idBalls, size)
		fmt.Fprintf(tw, "%d\t%.3f\t%.3f\t%.3f\t%.3f\n", size, okR, meanR, okI, meanI)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// (3) Tree-routing child order.
	fmt.Fprintln(w, "\n(3) tree-routing child order (label sizes on the metric's shortest-path tree):")
	spt := metric.Dijkstra(e.G, 0)
	parent := make([]int, e.G.N())
	copy(parent, spt.Parent)
	parent[0] = -1
	tw = newTab(w)
	fmt.Fprintln(tw, "order\tmax label bits\tmax light entries")
	for _, ord := range []struct {
		name string
		o    treeroute.ChildOrder
	}{{"heavy-first", treeroute.HeavyFirst}, {"id-order", treeroute.IDOrder}} {
		sch, err := treeroute.NewOrdered(parent, 0, ord.o)
		if err != nil {
			return err
		}
		maxBits, maxLight := 0, 0
		for v := 0; v < e.G.N(); v++ {
			if b := sch.LabelBits(v); b > maxBits {
				maxBits = b
			}
			if l := len(sch.Label(v).Light); l > maxLight {
				maxLight = l
			}
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\n", ord.name, maxBits, maxLight)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// (4) Search-tree refinement rate.
	fmt.Fprintln(w, "\n(4) search-tree eps (net radius shrink rate) on the diameter ball:")
	tw = newTab(w)
	fmt.Fprintln(tw, "eps\theight/(radius)\tmax degree\tlevels")
	radius := metric.DiameterOf(e.A)
	for _, eps := range []float64{0.1, 0.25, 0.5, 0.9} {
		t, err := searchtree.New[int](e.A, 0, radius, searchtree.Config{
			Eps:          eps,
			MinNetRadius: e.A.MinPairDistance(),
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%.2f\t%.3f\t%d\t%d\n",
			eps, t.Height()/radius, t.MaxDegree(), len(t.Levels))
	}
	return tw.Flush()
}
