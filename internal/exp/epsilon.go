package exp

import (
	"fmt"
	"io"

	"compactrouting/internal/core"
	"compactrouting/internal/labeled"
)

// Epsilon regenerates the stretch/space trade-off in eps that all four
// theorem statements parameterize (experiment E7): for each eps, the
// measured stretch and the per-node table bits of each scheme. Stretch
// should fall and table bits rise as eps shrinks (the (1/eps)^O(alpha)
// factor).
func Epsilon(w io.Writer, e *Env, pairCount int, seed int64) error {
	pairs := e.Pairs(pairCount, seed)
	fmt.Fprintf(w, "Epsilon sweep (E7) on %s (n=%d, %d pairs)\n", e.Name, e.G.N(), len(pairs))
	tw := newTab(w)
	fmt.Fprintln(tw, "scheme\teps\tmax stretch\tmean stretch\tmax table bits\tavg table bits\tmax hdr bits")

	for _, eps := range []float64{0.1, 0.25, 0.5} {
		s, err := labeled.NewSimple(e.G, e.A, eps)
		if err != nil {
			return err
		}
		st, err := core.EvaluateLabeled(s, e.A, pairs)
		if err != nil {
			return err
		}
		tb := core.Tables(s.TableBits, e.G.N())
		fmt.Fprintf(tw, "labeled simple\t%.2f\t%.3f\t%.3f\t%d\t%.0f\t%d\n",
			eps, st.Max, st.Mean, tb.MaxBits, tb.MeanBits, st.MaxHeader)
	}
	for _, eps := range []float64{0.05, 0.1, 0.25} {
		s, err := labeled.NewScaleFree(e.G, e.A, eps)
		if err != nil {
			return err
		}
		st, err := core.EvaluateLabeled(s, e.A, pairs)
		if err != nil {
			return err
		}
		tb := core.Tables(s.TableBits, e.G.N())
		fmt.Fprintf(tw, "labeled scale-free\t%.2f\t%.3f\t%.3f\t%d\t%.0f\t%d\n",
			eps, st.Max, st.Mean, tb.MaxBits, tb.MeanBits, st.MaxHeader)
	}
	for _, eps := range []float64{0.1, 0.25, 1.0 / 3} {
		s, err := buildNameIndSimple(e, eps, seed)
		if err != nil {
			return err
		}
		st, err := core.EvaluateNameIndependent(s, e.A, pairs)
		if err != nil {
			return err
		}
		tb := core.Tables(s.TableBits, e.G.N())
		fmt.Fprintf(tw, "nameind simple\t%.2f\t%.3f\t%.3f\t%d\t%.0f\t%d\n",
			eps, st.Max, st.Mean, tb.MaxBits, tb.MeanBits, st.MaxHeader)
	}
	for _, eps := range []float64{0.1, 0.2, 0.25} {
		s, err := buildNameIndScaleFree(e, eps, seed)
		if err != nil {
			return err
		}
		st, err := core.EvaluateNameIndependent(s, e.A, pairs)
		if err != nil {
			return err
		}
		tb := core.Tables(s.TableBits, e.G.N())
		fmt.Fprintf(tw, "nameind scale-free\t%.2f\t%.3f\t%.3f\t%d\t%.0f\t%d\n",
			eps, st.Max, st.Mean, tb.MaxBits, tb.MeanBits, st.MaxHeader)
	}
	return tw.Flush()
}
