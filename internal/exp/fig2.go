package exp

import (
	"fmt"
	"io"

	"compactrouting/internal/labeled"
)

// Fig2 regenerates Figure 2 — the anatomy of a labeled Algorithm 5
// delivery — as a per-phase-B-level table: how often routes hand off at
// each packing level j, the average cost of each leg (phase A walk,
// descent to the Voronoi center, Search Tree II round trip, final tree
// route), and how often the Claim 4.6 window
// r_{u_t}(j)/(3 eps) < d(u_t, v) < r_{u_t}(j+1)/5 held.
func Fig2(w io.Writer, e *Env, eps float64, pairCount int, seed int64) error {
	s, err := labeled.NewScaleFree(e.G, e.A, minf(eps, 0.25))
	if err != nil {
		return err
	}
	pairs := e.Pairs(pairCount, seed)
	type agg struct {
		count        int
		phaseA       float64
		center       float64
		search       float64
		final        float64
		stretchSum   float64
		stretchMax   float64
		claim46Holds int
	}
	byJ := map[int]*agg{}
	direct := 0
	for _, p := range pairs {
		ex, err := s.Explain(p[0], s.LabelOf(p[1]))
		if err != nil {
			return err
		}
		if ex.Direct {
			direct++
			continue
		}
		a := byJ[ex.J]
		if a == nil {
			a = &agg{}
			byJ[ex.J] = a
		}
		a.count++
		a.phaseA += ex.PhaseACost
		a.center += ex.CenterCost
		a.search += ex.SearchCost
		a.final += ex.FinalCost
		st := ex.Stretch()
		a.stretchSum += st
		if st > a.stretchMax {
			a.stretchMax = st
		}
		if ex.Claim46Holds {
			a.claim46Holds++
		}
	}
	fmt.Fprintf(w, "Figure 2 — Algorithm 5 anatomy on %s (n=%d, eps=%v, %d pairs; %d direct phase-A deliveries)\n",
		e.Name, e.G.N(), eps, len(pairs), direct)
	js := sortedKeys(byJ)
	tw := newTab(w)
	fmt.Fprintln(tw, "phase-B level j\troutes\tavg phase A\tavg to-center\tavg search\tavg final\tavg stretch\tmax stretch\tClaim 4.6 holds")
	for _, j := range js {
		a := byJ[j]
		c := float64(a.count)
		fmt.Fprintf(tw, "%d\t%d\t%.4g\t%.4g\t%.4g\t%.4g\t%.3f\t%.3f\t%d/%d\n",
			j, a.count, a.phaseA/c, a.center/c, a.search/c, a.final/c,
			a.stretchSum/c, a.stretchMax, a.claim46Holds, a.count)
	}
	return tw.Flush()
}
