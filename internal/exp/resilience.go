package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"compactrouting/internal/baseline"
	"compactrouting/internal/faultsim"
	"compactrouting/internal/graph"
	"compactrouting/internal/par"
	"compactrouting/internal/sim"
)

// ChaosConfig parameterizes the resilience sweep (cmd/chaossim).
type ChaosConfig struct {
	// LossRates are the per-hop packet-loss probabilities swept.
	LossRates []float64
	// FailFracs are the fractions of edges taken down (permanently, from
	// virtual time 0) swept.
	FailFracs []float64
	// Rel is the retry policy compared against single-shot sends.
	Rel faultsim.Reliability
	// HopLatency is the virtual time per hop (interacts with Rel's
	// backoff and deadline).
	HopLatency float64
}

// DefaultChaosConfig returns the standard sweep written to
// BENCH_chaossim.json.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		LossRates:  []float64{0, 0.02, 0.05, 0.1, 0.2},
		FailFracs:  []float64{0, 0.05, 0.1},
		Rel:        faultsim.DefaultReliability,
		HopLatency: 1,
	}
}

// ChaosRecord is one (scheme, loss rate, failed-edge fraction) cell of
// the resilience sweep. Every field is a pure function of the inputs
// and the seed — no wall-clock — so the JSON sweep is byte-reproducible.
type ChaosRecord struct {
	Scheme             string  `json:"scheme"`
	Graph              string  `json:"graph"`
	N                  int     `json:"n"`
	M                  int     `json:"m"`
	Eps                float64 `json:"eps"`
	Seed               int64   `json:"seed"`
	Pairs              int     `json:"pairs"`
	Loss               float64 `json:"loss"`
	EdgeFailFrac       float64 `json:"edge_fail_frac"`
	FailedEdges        int     `json:"failed_edges"`
	MaxAttempts        int     `json:"max_attempts"`
	DeliveredNoRetry   int     `json:"delivered_no_retry"`
	DeliveredRetry     int     `json:"delivered_retry"`
	RateNoRetry        float64 `json:"delivery_rate_no_retry"`
	RateRetry          float64 `json:"delivery_rate_retry"`
	MeanAttempts       float64 `json:"mean_attempts"`
	TotalDrops         int     `json:"total_drops"`
	StretchFaultFree   float64 `json:"stretch_mean_fault_free"`
	StretchDelivered   float64 `json:"stretch_mean_delivered"`
	StretchDegradation float64 `json:"stretch_degradation"`
}

// chaosScheme is one scheme erased to a fault-injected deliver call
// taking a destination NODE id.
type chaosScheme struct {
	name    string
	deliver func(src, dst int, in *faultsim.Injector, rel faultsim.Reliability, id uint64) faultsim.Result
}

func chaosErase[H sim.Header](name string, g *graph.Graph, r sim.Router[H], addr func(int) int, maxHops int) chaosScheme {
	return chaosScheme{
		name: name,
		deliver: func(src, dst int, in *faultsim.Injector, rel faultsim.Reliability, id uint64) faultsim.Result {
			return faultsim.Deliver(g, r, src, addr(dst), maxHops, in, rel, id)
		},
	}
}

// chaosSchemes compiles the resilience cohort: the full-table baseline
// against the paper's labeled and name-independent schemes. The five
// schemes build in parallel; the returned order is fixed.
func chaosSchemes(e *Env, eps float64, seed int64) ([]chaosScheme, error) {
	n := e.G.N()
	self := func(v int) int { return v }
	builders := []func() (chaosScheme, error){
		func() (chaosScheme, error) {
			full := baseline.NewFullTable(e.G, e.A)
			return chaosErase("full-table", e.G, sim.FullTableRouter{S: full}, self, 0), nil
		},
		func() (chaosScheme, error) {
			simple, err := buildLabeledSimple(e, minf(eps, 0.5))
			if err != nil {
				return chaosScheme{}, err
			}
			return chaosErase("simple-labeled", e.G, sim.SimpleLabeledRouter{S: simple}, simple.LabelOf, 0), nil
		},
		func() (chaosScheme, error) {
			free, err := buildLabeledScaleFree(e, minf(eps, 0.25))
			if err != nil {
				return chaosScheme{}, err
			}
			return chaosErase("scale-free-labeled", e.G, sim.ScaleFreeLabeledRouter{S: free}, free.LabelOf, 64*n), nil
		},
		func() (chaosScheme, error) {
			ni, err := buildNameIndSimple(e, minf(eps, 1.0/3), seed)
			if err != nil {
				return chaosScheme{}, err
			}
			return chaosErase("name-independent", e.G, sim.NameIndependentRouter{S: ni}, ni.NameOf, 256*n), nil
		},
		func() (chaosScheme, error) {
			sfni, err := buildNameIndScaleFree(e, minf(eps, 0.25), seed)
			if err != nil {
				return chaosScheme{}, err
			}
			return chaosErase("scale-free-name-independent", e.G, sim.ScaleFreeNameIndependentRouter{S: sfni}, sfni.NameOf, 512*n), nil
		},
	}
	return par.MapErr(len(builders), func(i int) (chaosScheme, error) { return builders[i]() })
}

// failedEdges deterministically selects floor(frac * M) edges and takes
// them down permanently from virtual time 0 (edge deletion).
func failedEdges(g *graph.Graph, frac float64, seed int64) []faultsim.EdgeOutage {
	if frac <= 0 {
		return nil
	}
	var edges [][2]int
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Neighbors(u) {
			if u < e.To {
				edges = append(edges, [2]int{u, e.To})
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	k := int(frac * float64(len(edges)))
	out := make([]faultsim.EdgeOutage, 0, k)
	for _, e := range edges[:k] {
		out = append(out, faultsim.EdgeOutage{U: e[0], V: e[1]})
	}
	return out
}

// ChaosSweep runs the resilience experiment: for every scheme and every
// (loss rate, failed-edge fraction) cell it routes the sampled pairs
// twice — single-shot and with the retry policy — over the same fault
// draws, and reports delivery rates and the stretch of what still
// arrives relative to the scheme's fault-free stretch.
func ChaosSweep(e *Env, cfg ChaosConfig, eps float64, pairCount int, seed int64) ([]ChaosRecord, error) {
	pairs := e.Pairs(pairCount, seed)
	schemes, err := chaosSchemes(e, eps, seed)
	if err != nil {
		return nil, err
	}
	runAll := func(sc chaosScheme, in *faultsim.Injector, rel faultsim.Reliability) []faultsim.Result {
		out := make([]faultsim.Result, len(pairs))
		for i, p := range pairs {
			out[i] = sc.deliver(p[0], p[1], in, rel, uint64(i))
		}
		return out
	}
	meanStretch := func(results []faultsim.Result) float64 {
		sum, n := 0.0, 0
		for i, r := range results {
			if !r.Delivered {
				continue
			}
			opt := e.A.Dist(pairs[i][0], pairs[i][1])
			if opt == 0 {
				continue
			}
			sum += r.Sim.Cost / opt
			n++
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}

	// Fault-free baselines, one per scheme, in parallel.
	baselines := par.Map(len(schemes), func(si int) float64 {
		return meanStretch(runAll(schemes[si], faultsim.NewInjector(faultsim.FaultPlan{}), faultsim.Reliability{}))
	})
	// Every (scheme, failed-edge fraction, loss rate) cell owns its
	// injector and fault draws (a pure hash of seed/delivery/attempt/
	// hop), so the cells run in parallel and the ordered Map keeps the
	// record order — and every value — identical to the serial triple
	// loop this replaces; `make check` double-run-diffs the JSON.
	nCells := len(cfg.FailFracs) * len(cfg.LossRates)
	out := par.Map(len(schemes)*nCells, func(cell int) ChaosRecord {
		si := cell / nCells
		fi := (cell % nCells) / len(cfg.LossRates)
		li := cell % len(cfg.LossRates)
		sc, frac, loss := schemes[si], cfg.FailFracs[fi], cfg.LossRates[li]
		baseStretch := baselines[si]
		outages := failedEdges(e.G, frac, seed+int64(fi))
		plan := faultsim.FaultPlan{
			Seed:        seed + int64(1000*fi+li),
			Loss:        loss,
			HopLatency:  cfg.HopLatency,
			EdgeOutages: outages,
		}
		in := faultsim.NewInjector(plan)
		once := runAll(sc, in, faultsim.Reliability{MaxAttempts: 1})
		retried := runAll(sc, in, cfg.Rel)
		rec := ChaosRecord{
			Scheme:           sc.name,
			Graph:            e.Name,
			N:                e.G.N(),
			M:                e.G.M(),
			Eps:              eps,
			Seed:             seed,
			Pairs:            len(pairs),
			Loss:             loss,
			EdgeFailFrac:     frac,
			FailedEdges:      len(outages),
			MaxAttempts:      cfg.Rel.MaxAttempts,
			StretchFaultFree: baseStretch,
		}
		var attempts, drops int
		for i := range retried {
			if once[i].Delivered {
				rec.DeliveredNoRetry++
			}
			if retried[i].Delivered {
				rec.DeliveredRetry++
			}
			attempts += retried[i].Attempts
			drops += retried[i].Drops
		}
		rec.RateNoRetry = float64(rec.DeliveredNoRetry) / float64(len(pairs))
		rec.RateRetry = float64(rec.DeliveredRetry) / float64(len(pairs))
		rec.MeanAttempts = float64(attempts) / float64(len(pairs))
		rec.TotalDrops = drops
		rec.StretchDelivered = meanStretch(retried)
		if baseStretch > 0 && rec.StretchDelivered > 0 {
			rec.StretchDegradation = rec.StretchDelivered / baseStretch
		}
		return rec
	})
	return out, nil
}

// Resilience prints the sweep as aligned tables, one block per scheme:
// how delivery rate and stretch degrade as links get lossy and edges
// fail, and how much the retry layer claws back.
func Resilience(w io.Writer, e *Env, cfg ChaosConfig, eps float64, pairCount int, seed int64) error {
	records, err := ChaosSweep(e, cfg, eps, pairCount, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Resilience under injected faults — %s, eps=%v, %d pairs, retry policy: %d attempts\n",
		e.Name, eps, records[0].Pairs, cfg.Rel.MaxAttempts)
	tw := newTab(w)
	fmt.Fprintln(tw, "scheme\tloss\tedges down\tdelivered (1 try)\tdelivered (retry)\tmean attempts\tstretch (delivered)\tdegradation")
	last := ""
	for _, r := range records {
		name := r.Scheme
		if name == last {
			name = ""
		} else if last != "" {
			fmt.Fprintln(tw, "\t\t\t\t\t\t\t")
		}
		last = r.Scheme
		fmt.Fprintf(tw, "%s\t%.2f\t%d (%.0f%%)\t%.1f%%\t%.1f%%\t%.2f\t%.3f\t%.3fx\n",
			name, r.Loss, r.FailedEdges, 100*r.EdgeFailFrac,
			100*r.RateNoRetry, 100*r.RateRetry, r.MeanAttempts,
			r.StretchDelivered, r.StretchDegradation)
	}
	return tw.Flush()
}

// WriteChaosJSON runs ChaosSweep and writes the records as an indented
// JSON array. The output is a pure function of (env, cfg, eps, pairs,
// seed): running it twice must produce byte-identical files, which
// `make check` asserts.
func WriteChaosJSON(w io.Writer, e *Env, cfg ChaosConfig, eps float64, pairCount int, seed int64) error {
	records, err := ChaosSweep(e, cfg, eps, pairCount, seed)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}
