package exp

import (
	"fmt"
	"io"

	"compactrouting/internal/core"
	"compactrouting/internal/graph"
	"compactrouting/internal/labeled"
	"compactrouting/internal/metric"
)

// Dimension regenerates the dependence on the doubling dimension: every
// theorem charges (1/eps)^O(alpha) storage, so on fractal families with
// tunable alpha (branching 2, 4, 8 at scale 2) table sizes must grow
// with alpha while stretch stays put. Sizes are matched (~256 nodes).
func Dimension(w io.Writer, eps float64, pairCount int, seed int64) error {
	eps = minf(eps, 0.25)
	fmt.Fprintf(w, "Doubling-dimension sweep (fractal networks, eps=%v)\n", eps)
	tw := newTab(w)
	fmt.Fprintln(tw, "branch\tn\talpha (greedy est.)\tlabeled SF max bits\tnameind SF max bits\tlabeled max stretch\tnameind max stretch")
	cases := []struct {
		branch, levels int
	}{{2, 8}, {4, 4}, {8, 3}}
	for _, c := range cases {
		g, err := graph.Fractal(c.levels, c.branch, 2)
		if err != nil {
			return err
		}
		a := metric.NewAPSP(g)
		e := &Env{Name: fmt.Sprintf("fractal b=%d", c.branch), G: g, A: a}
		alpha := metric.EstimateDoublingDimension(a, 300, seed)
		lab, err := labeled.NewScaleFree(g, a, eps)
		if err != nil {
			return err
		}
		ni, err := buildNameIndScaleFree(e, eps, seed)
		if err != nil {
			return err
		}
		pairs := e.Pairs(pairCount, seed)
		ls, err := core.EvaluateLabeled(lab, a, pairs)
		if err != nil {
			return err
		}
		ns, err := core.EvaluateNameIndependent(ni, a, pairs)
		if err != nil {
			return err
		}
		lb := core.Tables(lab.TableBits, g.N())
		nb := core.Tables(ni.TableBits, g.N())
		fmt.Fprintf(tw, "%d\t%d\t%.2f\t%d\t%d\t%.3f\t%.3f\n",
			c.branch, g.N(), alpha, lb.MaxBits, nb.MaxBits, ls.Max, ns.Max)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "(table bits rise with alpha — the (1/eps)^O(alpha) factor; stretch does not.)")
	return nil
}
