package exp

import (
	"fmt"
	"io"
	"math"

	"compactrouting/internal/core"
	"compactrouting/internal/labeled"
	"compactrouting/internal/metric"
)

// Storage regenerates the space-scaling claim behind Lemmas 3.3, 3.8
// and 4.4 (experiment E6): per-node table bits of the simple
// (log Delta) and scale-free (log^3 n) schemes on a unit-weight path
// versus an exponential-weight path of the same size. On the unit path
// the two schemes are comparable; on the exponential path the simple
// schemes blow up with log(Delta) while the scale-free schemes stay
// put — the separation that makes Theorems 1.1/1.2 "scale-free".
func Storage(w io.Writer, sizes []int, base float64, seed int64) error {
	if len(sizes) == 0 {
		sizes = []int{32, 64, 128}
	}
	fmt.Fprintf(w, "Storage scaling (E6) — max table bits/node, unit path vs exponential path (weight base %v)\n", base)
	tw := newTab(w)
	fmt.Fprintln(tw, "n\tlog2(Delta) unit\tlog2(Delta) exp\tlabeled simple unit\tlabeled simple exp\tlabeled scale-free unit\tlabeled scale-free exp\tnameind simple unit\tnameind simple exp\tnameind scale-free unit\tnameind scale-free exp")
	for _, n := range sizes {
		unit, err := UnitPathEnv(n)
		if err != nil {
			return err
		}
		expo, err := ExpPathEnv(n, base)
		if err != nil {
			return err
		}
		row := []float64{
			math.Log2(metric.NormalizedDiameterOf(unit.A)),
			math.Log2(metric.NormalizedDiameterOf(expo.A)),
		}
		for _, e := range []*Env{unit, expo} {
			s, err := labeled.NewSimple(e.G, e.A, 0.25)
			if err != nil {
				return err
			}
			row = append(row, float64(core.Tables(s.TableBits, n).MaxBits))
		}
		for _, e := range []*Env{unit, expo} {
			s, err := labeled.NewScaleFree(e.G, e.A, 0.25)
			if err != nil {
				return err
			}
			row = append(row, float64(core.Tables(s.TableBits, n).MaxBits))
		}
		for _, e := range []*Env{unit, expo} {
			s, err := buildNameIndSimple(e, 0.25, seed)
			if err != nil {
				return err
			}
			row = append(row, float64(core.Tables(s.TableBits, n).MaxBits))
		}
		for _, e := range []*Env{unit, expo} {
			s, err := buildNameIndScaleFree(e, 0.25, seed)
			if err != nil {
				return err
			}
			row = append(row, float64(core.Tables(s.TableBits, n).MaxBits))
		}
		fmt.Fprintf(tw, "%d\t%.0f\t%.0f", n, row[0], row[1])
		// Reorder interleaved columns: simple unit/exp, free unit/exp, ...
		for i := 2; i < len(row); i++ {
			fmt.Fprintf(tw, "\t%.0f", row[i])
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Growth with n on a doubling family: bits per node vs log^3 n.
	fmt.Fprintln(w, "\nGrowth on geometric graphs — scale-free labeled max table bits vs log^3 n:")
	tw = newTab(w)
	fmt.Fprintln(tw, "n\tmax bits\tlog^3 n\tbits / log^3 n")
	for _, n := range sizes {
		e, err := GeometricEnv(n, seed)
		if err != nil {
			return err
		}
		s, err := labeled.NewScaleFree(e.G, e.A, 0.25)
		if err != nil {
			return err
		}
		mb := core.Tables(s.TableBits, e.G.N()).MaxBits
		l3 := math.Pow(math.Log2(float64(e.G.N())), 3)
		fmt.Fprintf(tw, "%d\t%d\t%.0f\t%.2f\n", e.G.N(), mb, l3, float64(mb)/l3)
	}
	return tw.Flush()
}
