package exp

import (
	"fmt"
	"io"

	"compactrouting/internal/core"
	"compactrouting/internal/lowerbound"
	"compactrouting/internal/metric"
)

// Fig3 regenerates Figure 3 and the Theorem 1.3 lower bound as three
// numeric series:
//
//  1. the counterexample tree's verified metric properties (node
//     count, normalized diameter vs bound, doubling dimension estimate
//     vs Lemma 5.8's bound);
//  2. the exact minimax stretch of the branch-search game on the
//     paper's weight grid, rising to 1 + 8q/(q+1) -> 9 as p and q grow
//     (the operational content of Claims 5.9-5.11);
//  3. the geometric-strategy base sweep 1 + 2b^2/(b-1), minimized at
//     b = 2 with value 9 — where the schemes' stretch constant comes
//     from;
//
// and closes the loop by running the Theorem 1.4 scheme on the tree
// itself, confirming its stretch stays below its upper bound.
func Fig3(w io.Writer, pairCount int, seed int64) error {
	fmt.Fprintln(w, "Figure 3 / Theorem 1.3 — the stretch-9 lower bound")

	// (1) Tree properties.
	params := lowerbound.Params{P: 4, Q: 2}
	n := 512
	tree, err := lowerbound.Build(params, n)
	if err != nil {
		return err
	}
	a := metric.NewAPSP(tree.G)
	alpha := metric.EstimateDoublingDimension(a, 400, seed)
	fmt.Fprintf(w, "\ncounterexample tree G(p=%d, q=%d, n=%d): Delta=%.4g (bound %.4g), doubling~%.2f (Lemma 5.8 bound log2(q+2)=%.2f; greedy estimate may reach 2x+2)\n",
		params.P, params.Q, n, a.NormalizedDiameter(), params.NormalizedDiameterBound(n),
		alpha, params.DoublingDimensionBound())

	// (2) Minimax search-game stretch vs (p, q).
	tw := newTab(w)
	fmt.Fprintln(tw, "\np\tq\tbranches\toptimal minimax stretch\tlimit 1+8q/(q+1)")
	for _, q := range []int{4, 12, 44} {
		for _, p := range []int{8, 16, 40} {
			opt, _, err := lowerbound.OptimalStretch(lowerbound.Params{P: p, Q: q}.Weights())
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%d\t%d\t%d\t%.4f\t%.4f\n", p, q, p*q, opt, 1+8*float64(q)/float64(q+1))
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// (3) Geometric base sweep.
	tw = newTab(w)
	fmt.Fprintln(tw, "\ngeometric base b\tsup stretch 1+2b^2/(b-1)")
	for _, b := range []float64{1.25, 1.5, 1.75, 2, 2.5, 3, 4} {
		fmt.Fprintf(tw, "%.2f\t%.4f\n", b, lowerbound.GeometricRatio(b))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	base, ratio := lowerbound.BestGeometricBase()
	fmt.Fprintf(w, "minimum at b=%.3f: %.4f (the 9 of Theorems 1.1/1.3)\n", base, ratio)

	// (4) Upper bound meets lower bound: Theorem 1.4 on the tree.
	env := &Env{Name: "lower-bound tree", G: tree.G, A: a}
	eps := 0.25
	s, err := buildNameIndSimple(env, eps, seed)
	if err != nil {
		return err
	}
	st, err := core.EvaluateNameIndependent(s, a, env.Pairs(pairCount, seed))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nThm 1.4 scheme on the tree (eps=%v): max stretch %.3f, mean %.3f (bound %.1f; lower bound says no compact scheme beats ~9)\n",
		eps, st.Max, st.Mean, s.StretchBound())

	// (5) Counting lemma: congruent-naming family sizes.
	fmt.Fprintf(w, "counting (Lemma 5.4): with beta=16-bit tables, c=4: log2 |L_3| >= %.0f bits of naming freedom at n=2^16\n",
		lowerbound.LogCongruentFamilySize(1<<16, 16.0, 4, 3))

	// (6) Lemmas 5.4-5.5 executed exactly on a brute-forceable star
	// (7 nodes, all 5040 namings): the congruent family sizes per
	// partition class and the ambiguous target name the adversary uses.
	partition := [][]int{{0}, {1, 2}, {3, 4, 5, 6}}
	cover := make([][]int, 7)
	for _, class := range partition {
		for _, v := range class {
			cover[v] = append([]int{0}, class...)
		}
	}
	res := lowerbound.CongruentFamilies(7, 2, partition, lowerbound.NeighborhoodConfig(cover))
	fmt.Fprintf(w, "\nexact Lemma 5.4 on a 7-node star with 2-bit tables (all 5040 namings):\n")
	for i, size := range res.FamilySizes {
		fmt.Fprintf(w, "  |L_%d| = %d (bound %.1f)\n", i, size, res.Bound[i])
	}
	if name, class, ok := lowerbound.AmbiguousName(res, partition, 7); ok {
		fmt.Fprintf(w, "  Lemma 5.5: name %d may or may not live in branch class %d — the prefix tables cannot tell\n", name, class)
	} else {
		return fmt.Errorf("exp: no ambiguous name on the demo star")
	}
	return nil
}
