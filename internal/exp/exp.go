// Package exp implements the experiment harness: each experiment
// regenerates one of the paper's tables or figures (see DESIGN.md's
// experiment index) as printed rows, from live runs of the schemes in
// this repository. cmd/routebench is the CLI front end and
// bench_test.go wraps each experiment as a benchmark.
//
// This package is bound by the repo's deterministic ruleset: its
// outputs must be a pure function of explicit seeds (determinlint
// enforces the source-level contract; see DESIGN.md §Static analysis).
//
//determinlint:deterministic
package exp

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"compactrouting/internal/core"
	"compactrouting/internal/graph"
	"compactrouting/internal/labeled"
	"compactrouting/internal/metric"
	"compactrouting/internal/nameind"
)

// Env is one benchmark network with its metric oracle. A holds
// whichever distance backend the env was built on; the two backends
// answer every Distancer query bit-identically, so experiment output
// depends on the backend only through build cost.
type Env struct {
	Name string
	G    *graph.Graph
	A    metric.Distancer
}

// BuildOracle compiles the named distance backend for g: "dense" (the
// up-front APSP matrix) or "lazy" (on-demand truncated Dijkstra rows).
func BuildOracle(g *graph.Graph, backend string) (metric.Distancer, error) {
	switch backend {
	case "", "dense":
		return metric.NewAPSP(g), nil
	case "lazy":
		return metric.NewLazyOracle(g), nil
	default:
		return nil, fmt.Errorf("exp: unknown backend %q (want dense|lazy)", backend)
	}
}

// EnvOn builds a named workload family on an explicit distance backend
// — the switchboard behind cmd/routebench's -backend flag and the
// APSP-free experiment family. Kinds: geometric, grid-holes, exp-path,
// unit-path, power-law.
func EnvOn(kind string, n int, seed int64, backend string) (*Env, error) {
	var (
		g   *graph.Graph
		err error
	)
	name := ""
	switch kind {
	case "geometric":
		radius := 1.8 * math.Sqrt(math.Log(float64(n))/float64(n))
		g, _, err = graph.RandomGeometric(n, radius, seed)
		if g != nil {
			name = fmt.Sprintf("geometric n=%d", g.N())
		}
	case "grid-holes":
		side := int(math.Ceil(math.Sqrt(float64(n))))
		g, _, err = graph.GridWithHoles(side, side, 0.25, seed)
		name = fmt.Sprintf("grid-holes %dx%d", side, side)
	case "exp-path":
		g, err = graph.ExponentialPath(n, 4)
		name = fmt.Sprintf("exp-path n=%d base=4", n)
	case "unit-path":
		g, err = graph.Path(n, 1)
		name = fmt.Sprintf("unit-path n=%d", n)
	case "power-law":
		g, err = graph.PowerLaw(n, 2, 8, seed)
		name = fmt.Sprintf("power-law n=%d", n)
	default:
		return nil, fmt.Errorf("exp: unknown graph kind %q", kind)
	}
	if err != nil {
		return nil, err
	}
	a, err := BuildOracle(g, backend)
	if err != nil {
		return nil, err
	}
	return &Env{Name: name + " (" + orName(backend) + ")", G: g, A: a}, nil
}

// orName normalizes the backend display name.
func orName(backend string) string {
	if backend == "" {
		return "dense"
	}
	return backend
}

// GridHolesEnv returns a side x side grid with 25% holes.
func GridHolesEnv(side int, seed int64) (*Env, error) {
	g, _, err := graph.GridWithHoles(side, side, 0.25, seed)
	if err != nil {
		return nil, err
	}
	return &Env{Name: fmt.Sprintf("grid-holes %dx%d", side, side), G: g, A: metric.NewAPSP(g)}, nil
}

// GeometricEnv returns a random geometric graph targeting roughly n
// nodes.
func GeometricEnv(n int, seed int64) (*Env, error) {
	radius := 1.8 * math.Sqrt(math.Log(float64(n))/float64(n)) // above the connectivity threshold
	g, _, err := graph.RandomGeometric(n, radius, seed)
	if err != nil {
		return nil, err
	}
	return &Env{Name: fmt.Sprintf("geometric n=%d", g.N()), G: g, A: metric.NewAPSP(g)}, nil
}

// ExpStarEnv returns an exponential-diameter star of k arms.
func ExpStarEnv(n, k int, base float64) (*Env, error) {
	g, err := graph.ExponentialStar(n, k, base)
	if err != nil {
		return nil, err
	}
	return &Env{Name: fmt.Sprintf("exp-star n=%d", n), G: g, A: metric.NewAPSP(g)}, nil
}

// ExpPathEnv returns an exponential-diameter path.
func ExpPathEnv(n int, base float64) (*Env, error) {
	g, err := graph.ExponentialPath(n, base)
	if err != nil {
		return nil, err
	}
	return &Env{Name: fmt.Sprintf("exp-path n=%d base=%v", n, base), G: g, A: metric.NewAPSP(g)}, nil
}

// UnitPathEnv returns a unit-weight path.
func UnitPathEnv(n int) (*Env, error) {
	g, err := graph.Path(n, 1)
	if err != nil {
		return nil, err
	}
	return &Env{Name: fmt.Sprintf("unit-path n=%d", n), G: g, A: metric.NewAPSP(g)}, nil
}

// Pairs samples routed pairs for the env.
func (e *Env) Pairs(count int, seed int64) [][2]int {
	if count <= 0 || count >= e.G.N()*(e.G.N()-1) {
		return core.AllPairs(e.G.N())
	}
	return core.SamplePairs(e.G.N(), count, seed)
}

// newTab returns a tabwriter for aligned experiment output.
func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// buildLabeledSimple compiles the Lemma 3.1 labeled scheme on env.
func buildLabeledSimple(e *Env, eps float64) (*labeled.Simple, error) {
	return labeled.NewSimple(e.G, e.A, eps)
}

// buildLabeledScaleFree compiles the Theorem 1.2 scheme on env.
func buildLabeledScaleFree(e *Env, eps float64) (*labeled.ScaleFree, error) {
	return labeled.NewScaleFree(e.G, e.A, eps)
}

// buildNameIndSimple compiles the Theorem 1.4 scheme on env.
func buildNameIndSimple(e *Env, eps float64, seed int64) (*nameind.Simple, error) {
	under, err := labeled.NewSimple(e.G, e.A, eps)
	if err != nil {
		return nil, err
	}
	return nameind.NewSimple(e.G, e.A, nameind.RandomNaming(e.G.N(), seed), under, eps)
}

// buildNameIndScaleFree compiles the Theorem 1.1 scheme on env.
func buildNameIndScaleFree(e *Env, eps float64, seed int64) (*nameind.ScaleFree, error) {
	under, err := labeled.NewScaleFree(e.G, e.A, eps)
	if err != nil {
		return nil, err
	}
	return nameind.NewScaleFree(e.G, e.A, nameind.RandomNaming(e.G.N(), seed), under, eps)
}

// logn returns ceil(log2 n) as a float for bound columns.
func logn(n int) float64 { return math.Ceil(math.Log2(float64(n))) }
