package exp

import (
	"fmt"
	"io"

	"compactrouting/internal/baseline"
	"compactrouting/internal/core"
	"compactrouting/internal/labeled"
	"compactrouting/internal/metric"
	"compactrouting/internal/tz"
)

// Table2 regenerates the paper's Table 2 — (1+eps)-stretch labeled
// routing schemes — with measured values. Rows: the simple labeled
// scheme (standing for the log(Delta)-table family of Talwar, Chan et
// al., Slivkins, and AGGM's first variant), Theorem 1.2 (scale-free),
// and the two baselines bracketing the trade-off.
func Table2(w io.Writer, e *Env, eps float64, pairCount int, seed int64) error {
	pairs := e.Pairs(pairCount, seed)
	labelBits := int(logn(e.G.N()))
	type row struct {
		name       string
		paperTable string
		paperHdr   string
		paperLbl   string
		lblBits    int
		st         core.StretchStats
		tb         core.TableStats
	}
	var rows []row

	simple, err := labeled.NewSimple(e.G, e.A, minf(eps, 0.5))
	if err != nil {
		return err
	}
	st, err := core.EvaluateLabeled(simple, e.A, pairs)
	if err != nil {
		return err
	}
	rows = append(rows, row{
		name:       "simple labeled (logD family)",
		paperTable: "(1/eps)^O(a) logD logn",
		paperHdr:   "O(log n)",
		paperLbl:   "ceil(log n)",
		lblBits:    labelBits,
		st:         st,
		tb:         core.Tables(simple.TableBits, e.G.N()),
	})

	free, err := labeled.NewScaleFree(e.G, e.A, minf(eps, 0.25))
	if err != nil {
		return err
	}
	st, err = core.EvaluateLabeled(free, e.A, pairs)
	if err != nil {
		return err
	}
	rows = append(rows, row{
		name:       "Thm 1.2 (scale-free)",
		paperTable: "(1/eps)^O(a) log^3 n",
		paperHdr:   "O(log^2n/loglogn)",
		paperLbl:   "ceil(log n)",
		lblBits:    labelBits,
		st:         st,
		tb:         core.Tables(free.TableBits, e.G.N()),
	})

	tzs, err := tz.New(e.G, e.A, 1, seed)
	if err != nil {
		return err
	}
	st, err = core.EvaluateLabeled(tzs, e.A, pairs)
	if err != nil {
		return err
	}
	maxLbl := 0
	for v := 0; v < e.G.N(); v++ {
		if b := tzs.LabelBitsOf(v); b > maxLbl {
			maxLbl = b
		}
	}
	rows = append(rows, row{
		name:       "Thorup-Zwick k=2 (general graphs)",
		paperTable: "~O(sqrt(n)) words",
		paperHdr:   "O(log n)",
		paperLbl:   "O(log n)",
		lblBits:    maxLbl,
		st:         st,
		tb:         core.Tables(tzs.TableBits, e.G.N()),
	})

	tree, err := baseline.NewSingleTree(e.G, 0)
	if err != nil {
		return err
	}
	st, err = core.EvaluateLabeled(tree, e.A, pairs)
	if err != nil {
		return err
	}
	rows = append(rows, row{
		name:       "single-tree baseline",
		paperTable: "O(log^2 n)",
		paperHdr:   "O(log^2 n)",
		paperLbl:   "O(log^2 n)",
		lblBits:    st.MaxHeader, // tree labels ride in the header
		st:         st,
		tb:         core.Tables(tree.TableBits, e.G.N()),
	})

	full := baseline.NewFullTable(e.G, e.A)
	st, err = core.EvaluateLabeled(full, e.A, pairs)
	if err != nil {
		return err
	}
	rows = append(rows, row{
		name:       "full-table baseline",
		paperTable: "Theta(n log n)",
		paperHdr:   "O(log n)",
		paperLbl:   "ceil(log n)",
		lblBits:    labelBits,
		st:         st,
		tb:         core.Tables(full.TableBits, e.G.N()),
	})

	fmt.Fprintf(w, "Table 2 — labeled schemes on %s (n=%d, eps=%v, %d pairs, Delta=%.3g)\n",
		e.Name, e.G.N(), eps, len(pairs), metric.NormalizedDiameterOf(e.A))
	tw := newTab(w)
	fmt.Fprintln(tw, "scheme\tmeas max stretch\tmeas mean\tpaper table (bits)\tmeas max (bits)\tmeas avg (bits)\tpaper hdr\tmeas hdr (bits)\tlabel (bits)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%s\t%d\t%.0f\t%s\t%d\t%d\n",
			r.name, r.st.Max, r.st.Mean,
			r.paperTable, r.tb.MaxBits, r.tb.MeanBits,
			r.paperHdr, r.st.MaxHeader, r.lblBits)
	}
	return tw.Flush()
}
