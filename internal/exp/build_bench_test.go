package exp

import (
	"fmt"
	"testing"
)

// Construction benchmarks for the four scheme compilers, at the two
// sizes the perf work targets. The env (graph + APSP oracle) is built
// outside the timer so b.N iterations measure table compilation only.
// Run with e.g.
//
//	go test ./internal/exp -bench BenchmarkBuild -benchtime 3x

func benchEnv(b *testing.B, n int) *Env {
	b.Helper()
	env, err := GeometricEnv(n, 7)
	if err != nil {
		b.Fatal(err)
	}
	return env
}

func benchSizes(b *testing.B, run func(b *testing.B, env *Env)) {
	for _, n := range []int{256, 1024} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			env := benchEnv(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			run(b, env)
		})
	}
}

func BenchmarkBuildSimpleLabeled(b *testing.B) {
	benchSizes(b, func(b *testing.B, env *Env) {
		for i := 0; i < b.N; i++ {
			if _, err := buildLabeledSimple(env, 0.25); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkBuildScaleFreeLabeled(b *testing.B) {
	benchSizes(b, func(b *testing.B, env *Env) {
		for i := 0; i < b.N; i++ {
			if _, err := buildLabeledScaleFree(env, 0.25); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkBuildNameInd(b *testing.B) {
	benchSizes(b, func(b *testing.B, env *Env) {
		for i := 0; i < b.N; i++ {
			if _, err := buildNameIndSimple(env, 0.25, 7); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkBuildScaleFreeNameInd(b *testing.B) {
	benchSizes(b, func(b *testing.B, env *Env) {
		for i := 0; i < b.N; i++ {
			if _, err := buildNameIndScaleFree(env, 0.25, 7); err != nil {
				b.Fatal(err)
			}
		}
	})
}
