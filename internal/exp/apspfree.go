package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"compactrouting/internal/core"
	"compactrouting/internal/graph"
	"compactrouting/internal/labeled"
	"compactrouting/internal/metric"
	"compactrouting/internal/tz"
)

// This file implements E16, the APSP-free scaling family
// (BENCH_apspfree.json): a reproduction of the Krioukov–Fall–Yang
// stretch-CDF experiment ("Compact routing on Internet-like graphs",
// INFOCOM 2004) on power-law graphs, except the tables are compiled on
// the lazy distance backend, so sizes run past the dense backend's n²
// memory wall. Each record carries the full stretch distribution over
// the shared trace.StretchBucketEdges buckets plus the KFY headline
// number — the fraction of routes at stretch exactly 1.
//
// At sizes where the dense matrix still fits (Opts.DenseMaxN), the
// family additionally builds the same scheme on the dense backend and
// errors unless both backends produced identical stretch and table
// statistics — the committed artifact is self-checking — and adds a
// Thorup–Zwick stretch-3 comparison row (KFY's subject scheme), which
// needs dense-style sampling and therefore stops at the wall.

// APSPFreeRecord is one (size, scheme, backend) row of the E16 sweep.
type APSPFreeRecord struct {
	Scheme  string  `json:"scheme"`
	Backend string  `json:"backend"`
	Graph   string  `json:"graph"`
	N       int     `json:"n"`
	M       int     `json:"m"`
	Eps     float64 `json:"eps"`
	Pairs   int     `json:"pairs"`
	// StretchLE1Frac is the KFY headline: the fraction of routed pairs
	// at stretch exactly 1 (first histogram bucket).
	StretchLE1Frac float64      `json:"stretch_le1_frac"`
	StretchMean    float64      `json:"stretch_mean"`
	StretchP50     float64      `json:"stretch_p50"`
	StretchP95     float64      `json:"stretch_p95"`
	StretchP99     float64      `json:"stretch_p99"`
	StretchMax     float64      `json:"stretch_max"`
	StretchHist    []HistBucket `json:"stretch_hist"`
	MaxHeaderBits  int          `json:"max_header_bits"`
	TableMaxBits   int          `json:"table_max_bits"`
	TableMeanBits  float64      `json:"table_mean_bits"`
	// CachedEntries is the lazy backend's resident row-cache size
	// (settled entries, ~20 bytes each) after build+sweep — the number
	// that replaces n² in the memory story. Zero on dense rows. It is a
	// pure function of the flags (the cache transcript is
	// deterministic), so it survives the double-run byte-diff.
	CachedEntries int `json:"cached_entries,omitempty"`
	// BuildMS is the scheme build wall time; zero unless Opts.Timing.
	BuildMS float64 `json:"build_ms,omitempty"`
}

// APSPFreeOpts parameterizes the E16 sweep.
type APSPFreeOpts struct {
	// Sizes lists the power-law graph sizes, ascending. Nil selects the
	// committed artifact's ladder up to 100k.
	Sizes []int
	// DenseMaxN bounds the sizes that also build the dense backend (the
	// byte-equality cross-check and the TZ comparison row). <= 0
	// selects 4096; the n² matrix at 100k would be 80 GB.
	DenseMaxN int
	// Eps is the scheme stretch parameter (clamped to the Simple
	// scheme's 0.5 ceiling). <= 0 selects 0.5.
	Eps float64
	// RingFactor scales ring radii (labeled.NewSimpleRingFactor).
	// Power-law metrics are far from doubling, so the default factor 2
	// would put whole-graph balls around every mid-level center; <= 0
	// selects 1, which keeps tables bounded at Internet scale.
	RingFactor float64
	// MaxW is the log-uniform edge-weight ceiling for graph.PowerLaw.
	// Spread weights pull the distance scales apart (the hierarchy gets
	// more, smaller levels); <= 0 selects 1024.
	MaxW float64
	// Pairs is the routed sample size per record; <= 0 selects 2000.
	Pairs int
	Seed  int64
	// Timing records build_ms; false keeps the JSON a pure function of
	// the options (the determinism double-run relies on that).
	Timing bool
}

func (o *APSPFreeOpts) setDefaults() {
	if len(o.Sizes) == 0 {
		o.Sizes = []int{1024, 4096, 16384, 100000}
	}
	if o.DenseMaxN <= 0 {
		o.DenseMaxN = 4096
	}
	if o.Eps <= 0 {
		o.Eps = 0.5
	}
	if o.RingFactor <= 0 {
		o.RingFactor = 1
	}
	if o.MaxW <= 0 {
		o.MaxW = 1024
	}
	if o.Pairs <= 0 {
		o.Pairs = 2000
	}
}

// apspFreeRecord folds one evaluated scheme into a record.
func apspFreeRecord(scheme, backend, name string, g *graph.Graph, eps float64, st core.StretchStats, tb core.TableStats) APSPFreeRecord {
	le1 := 0.0
	if st.Count > 0 && len(st.Hist) > 0 {
		le1 = float64(st.Hist[0]) / float64(st.Count)
	}
	return APSPFreeRecord{
		Scheme:         scheme,
		Backend:        backend,
		Graph:          name,
		N:              g.N(),
		M:              g.M(),
		Eps:            eps,
		Pairs:          st.Count,
		StretchLE1Frac: le1,
		StretchMean:    st.Mean,
		StretchP50:     st.P50,
		StretchP95:     st.P95,
		StretchP99:     st.P99,
		StretchMax:     st.Max,
		StretchHist:    histBuckets(st.Hist),
		MaxHeaderBits:  st.MaxHeader,
		TableMaxBits:   tb.MaxBits,
		TableMeanBits:  tb.MeanBits,
	}
}

// APSPFree runs the E16 sweep and returns one record per (size,
// scheme, backend) cell.
func APSPFree(opt APSPFreeOpts) ([]APSPFreeRecord, error) {
	opt.setDefaults()
	eps := minf(opt.Eps, 0.5)
	var records []APSPFreeRecord
	for _, n := range opt.Sizes {
		g, err := graph.PowerLaw(n, 2, opt.MaxW, opt.Seed)
		if err != nil {
			return nil, fmt.Errorf("apspfree n=%d: %w", n, err)
		}
		name := fmt.Sprintf("power-law n=%d maxW=%v", n, opt.MaxW)
		pairs := core.SamplePairs(g.N(), opt.Pairs, opt.Seed)

		buildSimple := func(a metric.Distancer) (core.StretchStats, core.TableStats, float64, error) {
			start := time.Now() //determinlint:allow wallclock build_ms is a timing-only field gated by opt.Timing
			s, err := labeled.NewSimpleRingFactor(g, a, eps, opt.RingFactor)
			if err != nil {
				return core.StretchStats{}, core.TableStats{}, 0, err
			}
			buildMS := float64(time.Since(start).Microseconds()) / 1000 //determinlint:allow wallclock build_ms is a timing-only field gated by opt.Timing
			st, err := core.EvaluateLabeled(s, a, pairs)
			if err != nil {
				return core.StretchStats{}, core.TableStats{}, 0, err
			}
			return st, core.Tables(s.TableBits, g.N()), buildMS, nil
		}

		lazy := metric.NewLazyOracle(g)
		st, tb, buildMS, err := buildSimple(lazy)
		if err != nil {
			return nil, fmt.Errorf("apspfree n=%d lazy: %w", n, err)
		}
		rec := apspFreeRecord("simple-labeled", "lazy", name, g, eps, st, tb)
		rec.CachedEntries = lazy.CachedEntries()
		if opt.Timing {
			rec.BuildMS = buildMS
		}
		records = append(records, rec)

		if n > opt.DenseMaxN {
			continue
		}
		dense := metric.NewAPSP(g)
		dst, dtb, dBuildMS, err := buildSimple(dense)
		if err != nil {
			return nil, fmt.Errorf("apspfree n=%d dense: %w", n, err)
		}
		drec := apspFreeRecord("simple-labeled", "dense", name, g, eps, dst, dtb)
		if opt.Timing {
			drec.BuildMS = dBuildMS
		}
		// The two backends must be byte-equivalent; a drift here means a
		// scheme build observed a query the equivalence suite missed.
		//determinlint:allow floateq deliberate exact compare: dense and lazy records must agree bit for bit, any tolerance would mask backend divergence
		if rec.StretchMean != drec.StretchMean || rec.StretchMax != drec.StretchMax ||
			//determinlint:allow floateq deliberate exact compare: dense and lazy records must agree bit for bit, any tolerance would mask backend divergence
			rec.TableMeanBits != drec.TableMeanBits || rec.TableMaxBits != drec.TableMaxBits ||
			rec.MaxHeaderBits != drec.MaxHeaderBits {
			return nil, fmt.Errorf("apspfree n=%d: dense and lazy backends disagree (lazy %+v, dense %+v)", n, rec, drec)
		}
		records = append(records, drec)

		start := time.Now() //determinlint:allow wallclock build_ms is a timing-only field gated by opt.Timing
		tzs, err := tz.New(g, dense, 1, opt.Seed)
		if err != nil {
			return nil, fmt.Errorf("apspfree n=%d tz: %w", n, err)
		}
		tzBuildMS := float64(time.Since(start).Microseconds()) / 1000 //determinlint:allow wallclock build_ms is a timing-only field gated by opt.Timing
		tst, err := core.EvaluateLabeled(tzs, dense, pairs)
		if err != nil {
			return nil, fmt.Errorf("apspfree n=%d tz: %w", n, err)
		}
		trec := apspFreeRecord(tzs.SchemeName(), "dense", name, g, eps, tst, core.Tables(tzs.TableBits, g.N()))
		if opt.Timing {
			trec.BuildMS = tzBuildMS
		}
		records = append(records, trec)
	}
	return records, nil
}

// WriteAPSPFreeJSON runs APSPFree and writes the records as an
// indented JSON array.
func WriteAPSPFreeJSON(w io.Writer, opt APSPFreeOpts) error {
	records, err := APSPFree(opt)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}
