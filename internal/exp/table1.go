package exp

import (
	"fmt"
	"io"

	"compactrouting/internal/baseline"
	"compactrouting/internal/core"
	"compactrouting/internal/metric"
)

// Table1 regenerates the paper's Table 1 — name-independent routing
// schemes — with measured values from this implementation next to the
// paper's asymptotic bounds. Rows: Theorem 1.4 (simple, log Delta
// tables), Theorem 1.1 (scale-free), and the full-table baseline as the
// non-compact foil.
func Table1(w io.Writer, e *Env, eps float64, pairCount int, seed int64) error {
	pairs := e.Pairs(pairCount, seed)
	type row struct {
		name       string
		paperSt    string
		paperTable string
		paperHdr   string
		st         core.StretchStats
		tb         core.TableStats
	}
	var rows []row

	simple, err := buildNameIndSimple(e, minf(eps, 1.0/3), seed)
	if err != nil {
		return err
	}
	st, err := core.EvaluateNameIndependent(simple, e.A, pairs)
	if err != nil {
		return err
	}
	rows = append(rows, row{
		name:       "Thm 1.4 (simple)",
		paperSt:    "9+eps",
		paperTable: "(1/eps)^O(a) logD logn",
		paperHdr:   "O(log n)",
		st:         st,
		tb:         core.Tables(simple.TableBits, e.G.N()),
	})

	free, err := buildNameIndScaleFree(e, minf(eps, 0.25), seed)
	if err != nil {
		return err
	}
	st, err = core.EvaluateNameIndependent(free, e.A, pairs)
	if err != nil {
		return err
	}
	rows = append(rows, row{
		name:       "Thm 1.1 (scale-free)",
		paperSt:    "9+eps",
		paperTable: "(1/eps)^O(a) log^3 n",
		paperHdr:   "O(log^2n/loglogn)",
		st:         st,
		tb:         core.Tables(free.TableBits, e.G.N()),
	})

	full := baseline.NewFullTable(e.G, e.A)
	st, err = core.EvaluateNameIndependent(full, e.A, pairs)
	if err != nil {
		return err
	}
	rows = append(rows, row{
		name:       "full-table baseline",
		paperSt:    "1",
		paperTable: "Theta(n log n)",
		paperHdr:   "O(log n)",
		st:         st,
		tb:         core.Tables(full.TableBits, e.G.N()),
	})

	fmt.Fprintf(w, "Table 1 — name-independent schemes on %s (n=%d, eps=%v, %d pairs, Delta=%.3g, alpha~%.1f)\n",
		e.Name, e.G.N(), eps, len(pairs), metric.NormalizedDiameterOf(e.A),
		metric.EstimateDoublingDimension(e.A, 100, seed))
	tw := newTab(w)
	fmt.Fprintln(tw, "scheme\tpaper stretch\tmeas max\tmeas mean\tpaper table (bits)\tmeas max (bits)\tmeas avg (bits)\tpaper hdr\tmeas hdr (bits)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.3f\t%s\t%d\t%.0f\t%s\t%d\n",
			r.name, r.paperSt, r.st.Max, r.st.Mean,
			r.paperTable, r.tb.MaxBits, r.tb.MeanBits,
			r.paperHdr, r.st.MaxHeader)
	}
	return tw.Flush()
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
