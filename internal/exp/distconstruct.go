package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"reflect"

	"compactrouting/internal/dist"
	"compactrouting/internal/faultsim"
	"compactrouting/internal/graph"
	"compactrouting/internal/labeled"
	"compactrouting/internal/metric"
	"compactrouting/internal/treeroute"
)

// RandomTreeEnv returns a random weighted tree (weights in (0, 4]).
func RandomTreeEnv(n int, seed int64) (*Env, error) {
	g, err := graph.RandomTree(n, 4, seed)
	if err != nil {
		return nil, err
	}
	return &Env{Name: fmt.Sprintf("random-tree n=%d", n), G: g, A: metric.NewAPSP(g)}, nil
}

// DistOpts parameterizes the distributed-construction experiment (E14).
type DistOpts struct {
	// Eps is the Simple scheme's stretch parameter.
	Eps float64
	// Pairs is the routed sample size per record (0 = all pairs).
	Pairs int
	// Seed keys pair sampling and the optional fault plan.
	Seed int64
	// Schemes selects what to build: any of "tree", "simple".
	Schemes []string
	// MaxMsgBits is the CONGEST message bound (0 = engine default).
	MaxMsgBits int
	// Loss, when positive, runs construction over a lossy link layer
	// with this per-transmission drop probability.
	Loss float64
}

// DistRecord is one (env, scheme) cell of the experiment: the
// construction cost next to the quality of what it built, plus the
// oracle-equality verdict that backs the "same tables, no oracle"
// claim.
type DistRecord struct {
	Graph  string  `json:"graph"`
	N      int     `json:"n"`
	M      int     `json:"m"`
	Scheme string  `json:"scheme"`
	Eps    float64 `json:"eps,omitempty"`
	Loss   float64 `json:"loss"`

	// Construction cost, from the engine's counters.
	Construction dist.Counters `json:"construction"`

	// What the protocol built.
	TableTotalBits int64   `json:"table_total_bits"`
	TableMaxBits   int     `json:"table_max_bits"`
	TableMeanBits  float64 `json:"table_mean_bits"`
	TopLevel       int     `json:"top_level,omitempty"`

	// OracleEqual reports whether the protocol's output is identical to
	// the oracle compiler's (byte-level for simple tables, structural
	// for the tree scheme).
	OracleEqual bool `json:"oracle_equal"`

	// Routed-sample quality over the protocol-built tables.
	Pairs       int     `json:"pairs"`
	StretchMean float64 `json:"stretch_mean"`
	StretchMax  float64 `json:"stretch_max"`
}

// DistConstruct runs the selected distributed constructions on env and
// measures cost, output size, oracle equality and routed stretch.
func DistConstruct(e *Env, opt DistOpts) ([]DistRecord, error) {
	cfg := dist.Config{MaxMsgBits: opt.MaxMsgBits}
	if opt.Loss > 0 {
		cfg.Plan = &faultsim.FaultPlan{Seed: opt.Seed, Loss: opt.Loss}
	}
	pairs := e.Pairs(opt.Pairs, opt.Seed)
	var out []DistRecord
	for _, scheme := range opt.Schemes {
		rec := DistRecord{
			Graph: e.Name, N: e.G.N(), M: e.G.M(), Scheme: scheme,
			Loss: opt.Loss, Pairs: len(pairs),
		}
		var err error
		switch scheme {
		case "tree":
			err = distTreeRecord(e, cfg, pairs, &rec)
		case "simple":
			rec.Eps = opt.Eps
			err = distSimpleRecord(e, cfg, opt.Eps, pairs, &rec)
		default:
			err = fmt.Errorf("unknown scheme %q (want tree|simple)", scheme)
		}
		if err != nil {
			return nil, fmt.Errorf("%s on %s: %w", scheme, e.Name, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// distTreeRecord builds the shortest-path-tree substrate in-network and
// routes the sample over the resulting tree scheme.
func distTreeRecord(e *Env, cfg dist.Config, pairs [][2]int, rec *DistRecord) error {
	res, err := dist.BuildTree(e.G, 0, cfg)
	if err != nil {
		return err
	}
	rec.Construction = res.Counters
	for v := 0; v < e.G.N(); v++ {
		b := res.Scheme.TableBits(v)
		rec.TableTotalBits += int64(b)
		if b > rec.TableMaxBits {
			rec.TableMaxBits = b
		}
	}
	rec.TableMeanBits = float64(rec.TableTotalBits) / float64(e.G.N())
	oracle, err := treeroute.New(metric.Dijkstra(e.G, 0).Parent, 0)
	if err != nil {
		return err
	}
	rec.OracleEqual = true
	for v := 0; v < e.G.N(); v++ {
		want, _ := oracle.Info(v)
		if !reflect.DeepEqual(res.Info[v], want) {
			rec.OracleEqual = false
			break
		}
	}
	var sum, max float64
	for _, pr := range pairs {
		path, err := res.Scheme.Route(pr[0], res.Scheme.Label(pr[1]))
		if err != nil {
			return err
		}
		var w float64
		for i := 1; i < len(path); i++ {
			ew, ok := e.G.EdgeWeight(path[i-1], path[i])
			if !ok {
				return fmt.Errorf("route hops over missing edge %d-%d", path[i-1], path[i])
			}
			w += ew
		}
		s := 1.0
		if d := e.A.Dist(pr[0], pr[1]); d > 0 {
			s = w / d
		}
		sum += s
		if s > max {
			max = s
		}
	}
	if len(pairs) > 0 {
		rec.StretchMean = sum / float64(len(pairs))
		rec.StretchMax = max
	}
	return nil
}

// distSimpleRecord builds the labeled Simple scheme in-network,
// byte-compares its tables against the oracle compiler's, and routes
// the sample through the decoded tables alone.
func distSimpleRecord(e *Env, cfg dist.Config, eps float64, pairs [][2]int, rec *DistRecord) error {
	res, err := dist.BuildSimple(e.G, eps, cfg)
	if err != nil {
		return err
	}
	rec.Construction = res.Counters
	rec.TopLevel = res.TopLevel
	for v := 0; v < e.G.N(); v++ {
		b := res.TableBits[v]
		rec.TableTotalBits += int64(b)
		if b > rec.TableMaxBits {
			rec.TableMaxBits = b
		}
	}
	rec.TableMeanBits = float64(rec.TableTotalBits) / float64(e.G.N())
	oracle, err := labeled.NewSimple(e.G, e.A, eps)
	if err != nil {
		return err
	}
	rec.OracleEqual = true
	for v := 0; v < e.G.N(); v++ {
		wantB, wantN := oracle.EncodeTable(v)
		if res.TableBits[v] != wantN || !bytes.Equal(res.Tables[v], wantB) {
			rec.OracleEqual = false
			break
		}
	}
	dec, err := labeled.DecodeSimple(e.G, res.Tables, res.TableBits)
	if err != nil {
		return err
	}
	var sum, max float64
	for _, pr := range pairs {
		rt, err := dec.RouteToLabel(pr[0], int(res.Labels[pr[1]]))
		if err != nil {
			return err
		}
		s := rt.Stretch(e.A.Dist(pr[0], pr[1]))
		sum += s
		if s > max {
			max = s
		}
	}
	if len(pairs) > 0 {
		rec.StretchMean = sum / float64(len(pairs))
		rec.StretchMax = max
	}
	return nil
}

// DistReport prints the experiment as an aligned text table.
func DistReport(w io.Writer, records []DistRecord) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "graph\tscheme\tn\trounds\tmsgs\ttotal Mbit\tmax msg\tdrops\ttbl mean\ttbl max\tstretch max\toracle")
	for _, r := range records {
		eq := "equal"
		if !r.OracleEqual {
			eq = "DIFFERS"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%.3f\t%d\t%d\t%.0f\t%d\t%.3f\t%s\n",
			r.Graph, r.Scheme, r.N, r.Construction.Rounds, r.Construction.Messages,
			float64(r.Construction.TotalBits)/1e6, r.Construction.MaxMsgBits,
			r.Construction.Drops, r.TableMeanBits, r.TableMaxBits, r.StretchMax, eq)
	}
	return tw.Flush()
}

// WriteDistJSON writes the records as indented JSON.
func WriteDistJSON(w io.Writer, records []DistRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}
