package exp

import (
	"encoding/json"
	"io"
	"time"

	"compactrouting/internal/baseline"
	"compactrouting/internal/core"
	"compactrouting/internal/par"
)

// BenchRecord is one scheme's machine-readable benchmark row, written
// by cmd/routebench -json so runs can be tracked across commits.
type BenchRecord struct {
	Scheme        string  `json:"scheme"`
	Graph         string  `json:"graph"`
	N             int     `json:"n"`
	M             int     `json:"m"`
	Eps           float64 `json:"eps"`
	Pairs         int     `json:"pairs"`
	StretchMean   float64 `json:"stretch_mean"`
	StretchP50    float64 `json:"stretch_p50"`
	StretchP95    float64 `json:"stretch_p95"`
	StretchP99    float64 `json:"stretch_p99"`
	StretchMax    float64 `json:"stretch_max"`
	MaxHeaderBits int     `json:"max_header_bits"`
	TableMaxBits  int     `json:"table_max_bits"`
	TableMeanBits float64 `json:"table_mean_bits"`
	// Build-phase wall times: ApspMS is the shared oracle build (phase
	// 1, identical on every row), BuildMS the scheme's table
	// compilation (phase 2), TotalMS their sum. All timing fields are
	// zero when BenchOpts.Timing is off.
	ApspMS     float64 `json:"apsp_ms"`
	BuildMS    float64 `json:"build_ms"`
	TotalMS    float64 `json:"total_ms"`
	NsPerQuery float64 `json:"ns_per_query"`
}

// BenchOpts parameterizes a bench sweep.
type BenchOpts struct {
	Eps   float64
	Pairs int
	Seed  int64
	// Timing records wall-clock fields (apsp_ms, build_ms, total_ms,
	// ns_per_query). With Timing false they are zeroed, which makes the
	// JSON a pure function of (env, opts) — the `make check` double-run
	// diff relies on that.
	Timing bool
	// ApspMS is the caller-measured oracle build time (the env carries
	// a prebuilt APSP, so only the caller saw that phase's clock).
	ApspMS float64
}

// benchCell is one scheme's build+evaluate job: build compiles the
// scheme and returns its table accounting plus the routing closure.
type benchCell struct {
	name  string
	build func() (tableBits func(int) int, eval func() (core.StretchStats, error), err error)
}

// benchCells lists the sweep's schemes in report order.
func benchCells(e *Env, eps float64, pairs [][2]int, seed int64) []benchCell {
	return []benchCell{
		{"simple-labeled", func() (func(int) int, func() (core.StretchStats, error), error) {
			s, err := buildLabeledSimple(e, minf(eps, 0.5))
			if err != nil {
				return nil, nil, err
			}
			return s.TableBits, func() (core.StretchStats, error) { return core.EvaluateLabeled(s, e.A, pairs) }, nil
		}},
		{"scale-free-labeled", func() (func(int) int, func() (core.StretchStats, error), error) {
			s, err := buildLabeledScaleFree(e, minf(eps, 0.25))
			if err != nil {
				return nil, nil, err
			}
			return s.TableBits, func() (core.StretchStats, error) { return core.EvaluateLabeled(s, e.A, pairs) }, nil
		}},
		{"name-independent", func() (func(int) int, func() (core.StretchStats, error), error) {
			s, err := buildNameIndSimple(e, minf(eps, 1.0/3), seed)
			if err != nil {
				return nil, nil, err
			}
			return s.TableBits, func() (core.StretchStats, error) { return core.EvaluateNameIndependent(s, e.A, pairs) }, nil
		}},
		{"scale-free-name-independent", func() (func(int) int, func() (core.StretchStats, error), error) {
			s, err := buildNameIndScaleFree(e, minf(eps, 0.25), seed)
			if err != nil {
				return nil, nil, err
			}
			return s.TableBits, func() (core.StretchStats, error) { return core.EvaluateNameIndependent(s, e.A, pairs) }, nil
		}},
		{"full-table", func() (func(int) int, func() (core.StretchStats, error), error) {
			s := baseline.NewFullTable(e.G, e.A)
			return s.TableBits, func() (core.StretchStats, error) { return core.EvaluateLabeled(s, e.A, pairs) }, nil
		}},
		{"single-tree", func() (func(int) int, func() (core.StretchStats, error), error) {
			s, err := baseline.NewSingleTree(e.G, 0)
			if err != nil {
				return nil, nil, err
			}
			return s.TableBits, func() (core.StretchStats, error) { return core.EvaluateLabeled(s, e.A, pairs) }, nil
		}},
	}
}

// Bench builds every scheme and routes the sampled pairs through it,
// returning one record per scheme with stretch percentiles and (when
// opt.Timing) per-phase wall clocks. The scheme cells run in parallel;
// record order and every non-timing field are identical to a serial
// run (asserted by the `make check` double-run diff).
func Bench(e *Env, opt BenchOpts) ([]BenchRecord, error) {
	pairs := e.Pairs(opt.Pairs, opt.Seed)
	cells := benchCells(e, opt.Eps, pairs, opt.Seed)
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	return par.MapErr(len(cells), func(i int) (BenchRecord, error) {
		// The wall-clock reads below feed the *_ms timing fields only,
		// which opt.Timing gates out of the deterministic JSON contract
		// (the `make check` double-run diff passes -timing=false).
		start := time.Now() //determinlint:allow wallclock build_ms is a timing-only field gated by opt.Timing
		tableBits, eval, err := cells[i].build()
		if err != nil {
			return BenchRecord{}, err
		}
		buildMS := ms(time.Since(start)) //determinlint:allow wallclock build_ms is a timing-only field gated by opt.Timing
		start = time.Now()               //determinlint:allow wallclock route_ms is a timing-only field gated by opt.Timing
		st, err := eval()
		if err != nil {
			return BenchRecord{}, err
		}
		elapsed := time.Since(start) //determinlint:allow wallclock route_ms is a timing-only field gated by opt.Timing
		tb := core.Tables(tableBits, e.G.N())
		rec := BenchRecord{
			Scheme:        cells[i].name,
			Graph:         e.Name,
			N:             e.G.N(),
			M:             e.G.M(),
			Eps:           opt.Eps,
			Pairs:         len(pairs),
			StretchMean:   st.Mean,
			StretchP50:    st.P50,
			StretchP95:    st.P95,
			StretchP99:    st.P99,
			StretchMax:    st.Max,
			MaxHeaderBits: st.MaxHeader,
			TableMaxBits:  tb.MaxBits,
			TableMeanBits: tb.MeanBits,
		}
		if opt.Timing {
			rec.ApspMS = opt.ApspMS
			rec.BuildMS = buildMS
			rec.TotalMS = opt.ApspMS + buildMS
			rec.NsPerQuery = float64(elapsed.Nanoseconds()) / float64(len(pairs))
		}
		return rec, nil
	})
}

// WriteBenchJSON runs Bench and writes the records as an indented JSON
// array.
func WriteBenchJSON(w io.Writer, e *Env, opt BenchOpts) error {
	records, err := Bench(e, opt)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}
