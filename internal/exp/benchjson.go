package exp

import (
	"encoding/json"
	"io"
	"time"

	"compactrouting/internal/baseline"
	"compactrouting/internal/core"
)

// BenchRecord is one scheme's machine-readable benchmark row, written
// by cmd/routebench -json so runs can be tracked across commits.
type BenchRecord struct {
	Scheme        string  `json:"scheme"`
	Graph         string  `json:"graph"`
	N             int     `json:"n"`
	M             int     `json:"m"`
	Eps           float64 `json:"eps"`
	Pairs         int     `json:"pairs"`
	StretchMean   float64 `json:"stretch_mean"`
	StretchP50    float64 `json:"stretch_p50"`
	StretchP95    float64 `json:"stretch_p95"`
	StretchP99    float64 `json:"stretch_p99"`
	StretchMax    float64 `json:"stretch_max"`
	MaxHeaderBits int     `json:"max_header_bits"`
	TableMaxBits  int     `json:"table_max_bits"`
	TableMeanBits float64 `json:"table_mean_bits"`
	BuildMS       float64 `json:"build_ms"`
	NsPerQuery    float64 `json:"ns_per_query"`
}

// Bench routes the sampled pairs through every scheme and returns one
// record per scheme with stretch percentiles and wall-clock per query.
func Bench(e *Env, eps float64, pairCount int, seed int64) ([]BenchRecord, error) {
	pairs := e.Pairs(pairCount, seed)
	var out []BenchRecord

	record := func(name string, buildMS float64, tableBits func(int) int, route func() (core.StretchStats, error)) error {
		start := time.Now()
		st, err := route()
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		tb := core.Tables(tableBits, e.G.N())
		out = append(out, BenchRecord{
			Scheme:        name,
			Graph:         e.Name,
			N:             e.G.N(),
			M:             e.G.M(),
			Eps:           eps,
			Pairs:         len(pairs),
			StretchMean:   st.Mean,
			StretchP50:    st.P50,
			StretchP95:    st.P95,
			StretchP99:    st.P99,
			StretchMax:    st.Max,
			MaxHeaderBits: st.MaxHeader,
			TableMaxBits:  tb.MaxBits,
			TableMeanBits: tb.MeanBits,
			BuildMS:       buildMS,
			NsPerQuery:    float64(elapsed.Nanoseconds()) / float64(len(pairs)),
		})
		return nil
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

	start := time.Now()
	simple, err := buildLabeledSimple(e, minf(eps, 0.5))
	if err != nil {
		return nil, err
	}
	if err := record("simple-labeled", ms(time.Since(start)), simple.TableBits, func() (core.StretchStats, error) {
		return core.EvaluateLabeled(simple, e.A, pairs)
	}); err != nil {
		return nil, err
	}

	start = time.Now()
	free, err := buildLabeledScaleFree(e, minf(eps, 0.25))
	if err != nil {
		return nil, err
	}
	if err := record("scale-free-labeled", ms(time.Since(start)), free.TableBits, func() (core.StretchStats, error) {
		return core.EvaluateLabeled(free, e.A, pairs)
	}); err != nil {
		return nil, err
	}

	start = time.Now()
	ni, err := buildNameIndSimple(e, minf(eps, 1.0/3), seed)
	if err != nil {
		return nil, err
	}
	if err := record("name-independent", ms(time.Since(start)), ni.TableBits, func() (core.StretchStats, error) {
		return core.EvaluateNameIndependent(ni, e.A, pairs)
	}); err != nil {
		return nil, err
	}

	start = time.Now()
	sfni, err := buildNameIndScaleFree(e, minf(eps, 0.25), seed)
	if err != nil {
		return nil, err
	}
	if err := record("scale-free-name-independent", ms(time.Since(start)), sfni.TableBits, func() (core.StretchStats, error) {
		return core.EvaluateNameIndependent(sfni, e.A, pairs)
	}); err != nil {
		return nil, err
	}

	start = time.Now()
	full := baseline.NewFullTable(e.G, e.A)
	if err := record("full-table", ms(time.Since(start)), full.TableBits, func() (core.StretchStats, error) {
		return core.EvaluateLabeled(full, e.A, pairs)
	}); err != nil {
		return nil, err
	}

	start = time.Now()
	tree, err := baseline.NewSingleTree(e.G, 0)
	if err != nil {
		return nil, err
	}
	if err := record("single-tree", ms(time.Since(start)), tree.TableBits, func() (core.StretchStats, error) {
		return core.EvaluateLabeled(tree, e.A, pairs)
	}); err != nil {
		return nil, err
	}

	return out, nil
}

// WriteBenchJSON runs Bench and writes the records as an indented JSON
// array.
func WriteBenchJSON(w io.Writer, e *Env, eps float64, pairCount int, seed int64) error {
	records, err := Bench(e, eps, pairCount, seed)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}
