package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"compactrouting/internal/baseline"
	"compactrouting/internal/core"
	"compactrouting/internal/par"
	"compactrouting/internal/sim"
	"compactrouting/internal/trace"
)

// BenchRecord is one scheme's machine-readable benchmark row, written
// by cmd/routebench -json so runs can be tracked across commits.
type BenchRecord struct {
	Scheme        string  `json:"scheme"`
	Graph         string  `json:"graph"`
	N             int     `json:"n"`
	M             int     `json:"m"`
	Eps           float64 `json:"eps"`
	Pairs         int     `json:"pairs"`
	StretchMean   float64 `json:"stretch_mean"`
	StretchP50    float64 `json:"stretch_p50"`
	StretchP95    float64 `json:"stretch_p95"`
	StretchP99    float64 `json:"stretch_p99"`
	StretchMax    float64 `json:"stretch_max"`
	MaxHeaderBits int     `json:"max_header_bits"`
	TableMaxBits  int     `json:"table_max_bits"`
	TableMeanBits float64 `json:"table_mean_bits"`
	// StretchHist is the stretch distribution over the shared
	// trace.StretchBucketEdges buckets (LE == -1 marks the overflow
	// bucket), so BENCH files capture the distribution, not just
	// percentiles.
	StretchHist []HistBucket `json:"stretch_hist"`
	// Phases is the per-phase detour decomposition (hops and cost spent
	// per scheme phase over all routed pairs); present only when the
	// sweep ran traced (BenchOpts.Trace).
	Phases []PhaseDecomp `json:"phases,omitempty"`
	// Build-phase wall times: ApspMS is the shared oracle build (phase
	// 1, identical on every row), BuildMS the scheme's table
	// compilation (phase 2), TotalMS their sum. All timing fields are
	// zero when BenchOpts.Timing is off.
	ApspMS     float64 `json:"apsp_ms"`
	BuildMS    float64 `json:"build_ms"`
	TotalMS    float64 `json:"total_ms"`
	NsPerQuery float64 `json:"ns_per_query"`
}

// BenchOpts parameterizes a bench sweep.
type BenchOpts struct {
	Eps   float64
	Pairs int
	Seed  int64
	// Timing records wall-clock fields (apsp_ms, build_ms, total_ms,
	// ns_per_query). With Timing false they are zeroed, which makes the
	// JSON a pure function of (env, opts) — the `make check` double-run
	// diff relies on that.
	Timing bool
	// ApspMS is the caller-measured oracle build time (the env carries
	// a prebuilt APSP, so only the caller saw that phase's clock).
	ApspMS float64
	// Trace routes the sweep through the traced simulator adapters
	// (sim.RouteOnceTraced) instead of the sequential evaluators and
	// adds the per-phase detour decomposition to every record. The two
	// paths execute identical step functions, so every other field is
	// unchanged — and with Timing off the traced JSON stays a pure
	// function of (env, opts), which the `make check` traced double-run
	// byte-diffs.
	Trace bool
}

// HistBucket is one stretch-histogram bucket: the count of routes with
// stretch <= LE (and above the previous edge). LE == -1 marks the
// overflow bucket past the last edge.
type HistBucket struct {
	LE    float64 `json:"le"`
	Count int     `json:"count"`
}

// histBuckets pairs StretchStats.Hist counts with the shared
// trace.StretchBucketEdges.
func histBuckets(hist []int) []HistBucket {
	out := make([]HistBucket, len(hist))
	for i, c := range hist {
		le := -1.0
		if i < len(trace.StretchBucketEdges) {
			le = trace.StretchBucketEdges[i]
		}
		out[i] = HistBucket{LE: le, Count: c}
	}
	return out
}

// PhaseDecomp is one phase's share of a traced sweep: how many hops
// and how much path cost the scheme spent in that phase across all
// routed pairs.
type PhaseDecomp struct {
	Phase string  `json:"phase"`
	Hops  int     `json:"hops"`
	Cost  float64 `json:"cost"`
}

// benchEval routes the sampled pairs and summarizes stretch; traced
// sweeps additionally return the per-phase decomposition (nil
// otherwise).
type benchEval func() (core.StretchStats, []PhaseDecomp, error)

// benchCell is one scheme's build+evaluate job: build compiles the
// scheme and returns its table accounting plus the routing closure.
type benchCell struct {
	name  string
	build func() (tableBits func(int) int, eval benchEval, err error)
}

// untraced adapts a core evaluator to the benchEval signature.
func untraced(eval func() (core.StretchStats, error)) benchEval {
	return func() (core.StretchStats, []PhaseDecomp, error) {
		st, err := eval()
		return st, nil, err
	}
}

// tracedEval routes every pair through the scheme's simulator adapter
// with tracing enabled and folds the hop records into the per-phase
// decomposition. The adapter drives the same step functions as the
// sequential evaluators, so the walks — and hence every stretch field —
// are identical; Fallbacks counts routes with at least one
// fallback-phase hop. maxHops mirrors the per-scheme budgets used by
// cmd/routesim and internal/server (0 selects the simulator default).
func tracedEval[H sim.Header](e *Env, r sim.Router[H], addr func(int) int, maxHops int, pairs [][2]int) benchEval {
	return func() (core.StretchStats, []PhaseDecomp, error) {
		stretches := make([]float64, 0, len(pairs))
		maxHdr, falls := 0, 0
		var hops [trace.NumPhases]int
		var cost [trace.NumPhases]float64
		tr := &trace.Trace{}
		for _, p := range pairs {
			res := sim.RouteOnceTraced(e.G, r, p[0], addr(p[1]), maxHops, tr)
			if res.Err != nil {
				return core.StretchStats{}, nil, fmt.Errorf("route %d -> %d: %w", p[0], p[1], res.Err)
			}
			opt := e.A.Dist(p[0], p[1])
			s := 1.0
			if opt > 0 {
				s = res.Cost / opt
			}
			stretches = append(stretches, s)
			if res.MaxHeaderBits > maxHdr {
				maxHdr = res.MaxHeaderBits
			}
			fell := false
			for _, h := range tr.Hops {
				hops[h.Phase]++
				cost[h.Phase] += h.Dist
				if h.Phase == trace.PhaseFallback {
					fell = true
				}
			}
			if fell {
				falls++
			}
		}
		decomp := make([]PhaseDecomp, 0, trace.NumPhases)
		for ph := 0; ph < trace.NumPhases; ph++ {
			if hops[ph] == 0 {
				continue
			}
			decomp = append(decomp, PhaseDecomp{Phase: trace.Phase(ph).String(), Hops: hops[ph], Cost: cost[ph]})
		}
		return core.SummarizeStretches(stretches, maxHdr, falls), decomp, nil
	}
}

// benchCells lists the sweep's schemes in report order. With traced
// set, evaluation runs through the simulator adapters with tracing on
// (tracedEval); otherwise through the sequential core evaluators.
func benchCells(e *Env, eps float64, pairs [][2]int, seed int64, traced bool) []benchCell {
	n := e.G.N()
	return []benchCell{
		{"simple-labeled", func() (func(int) int, benchEval, error) {
			s, err := buildLabeledSimple(e, minf(eps, 0.5))
			if err != nil {
				return nil, nil, err
			}
			if traced {
				return s.TableBits, tracedEval(e, sim.SimpleLabeledRouter{S: s}, s.LabelOf, 0, pairs), nil
			}
			return s.TableBits, untraced(func() (core.StretchStats, error) { return core.EvaluateLabeled(s, e.A, pairs) }), nil
		}},
		{"scale-free-labeled", func() (func(int) int, benchEval, error) {
			s, err := buildLabeledScaleFree(e, minf(eps, 0.25))
			if err != nil {
				return nil, nil, err
			}
			if traced {
				return s.TableBits, tracedEval(e, sim.ScaleFreeLabeledRouter{S: s}, s.LabelOf, 64*n, pairs), nil
			}
			return s.TableBits, untraced(func() (core.StretchStats, error) { return core.EvaluateLabeled(s, e.A, pairs) }), nil
		}},
		{"name-independent", func() (func(int) int, benchEval, error) {
			s, err := buildNameIndSimple(e, minf(eps, 1.0/3), seed)
			if err != nil {
				return nil, nil, err
			}
			if traced {
				return s.TableBits, tracedEval(e, sim.NameIndependentRouter{S: s}, s.NameOf, 256*n, pairs), nil
			}
			return s.TableBits, untraced(func() (core.StretchStats, error) { return core.EvaluateNameIndependent(s, e.A, pairs) }), nil
		}},
		{"scale-free-name-independent", func() (func(int) int, benchEval, error) {
			s, err := buildNameIndScaleFree(e, minf(eps, 0.25), seed)
			if err != nil {
				return nil, nil, err
			}
			if traced {
				return s.TableBits, tracedEval(e, sim.ScaleFreeNameIndependentRouter{S: s}, s.NameOf, 512*n, pairs), nil
			}
			return s.TableBits, untraced(func() (core.StretchStats, error) { return core.EvaluateNameIndependent(s, e.A, pairs) }), nil
		}},
		{"full-table", func() (func(int) int, benchEval, error) {
			s := baseline.NewFullTable(e.G, e.A)
			if traced {
				return s.TableBits, tracedEval(e, sim.FullTableRouter{S: s}, func(v int) int { return v }, 0, pairs), nil
			}
			return s.TableBits, untraced(func() (core.StretchStats, error) { return core.EvaluateLabeled(s, e.A, pairs) }), nil
		}},
		{"single-tree", func() (func(int) int, benchEval, error) {
			s, err := baseline.NewSingleTree(e.G, 0)
			if err != nil {
				return nil, nil, err
			}
			if traced {
				return s.TableBits, tracedEval(e, sim.SingleTreeRouter{S: s}, func(v int) int { return v }, 0, pairs), nil
			}
			return s.TableBits, untraced(func() (core.StretchStats, error) { return core.EvaluateLabeled(s, e.A, pairs) }), nil
		}},
	}
}

// Bench builds every scheme and routes the sampled pairs through it,
// returning one record per scheme with stretch percentiles and (when
// opt.Timing) per-phase wall clocks. The scheme cells run in parallel;
// record order and every non-timing field are identical to a serial
// run (asserted by the `make check` double-run diff).
func Bench(e *Env, opt BenchOpts) ([]BenchRecord, error) {
	pairs := e.Pairs(opt.Pairs, opt.Seed)
	cells := benchCells(e, opt.Eps, pairs, opt.Seed, opt.Trace)
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	return par.MapErr(len(cells), func(i int) (BenchRecord, error) {
		// The wall-clock reads below feed the *_ms timing fields only,
		// which opt.Timing gates out of the deterministic JSON contract
		// (the `make check` double-run diff passes -timing=false).
		start := time.Now() //determinlint:allow wallclock build_ms is a timing-only field gated by opt.Timing
		tableBits, eval, err := cells[i].build()
		if err != nil {
			return BenchRecord{}, err
		}
		buildMS := ms(time.Since(start)) //determinlint:allow wallclock build_ms is a timing-only field gated by opt.Timing
		start = time.Now()               //determinlint:allow wallclock route_ms is a timing-only field gated by opt.Timing
		st, decomp, err := eval()
		if err != nil {
			return BenchRecord{}, err
		}
		elapsed := time.Since(start) //determinlint:allow wallclock route_ms is a timing-only field gated by opt.Timing
		tb := core.Tables(tableBits, e.G.N())
		rec := BenchRecord{
			Scheme:        cells[i].name,
			Graph:         e.Name,
			N:             e.G.N(),
			M:             e.G.M(),
			Eps:           opt.Eps,
			Pairs:         len(pairs),
			StretchMean:   st.Mean,
			StretchP50:    st.P50,
			StretchP95:    st.P95,
			StretchP99:    st.P99,
			StretchMax:    st.Max,
			MaxHeaderBits: st.MaxHeader,
			TableMaxBits:  tb.MaxBits,
			TableMeanBits: tb.MeanBits,
			StretchHist:   histBuckets(st.Hist),
			Phases:        decomp,
		}
		if opt.Timing {
			rec.ApspMS = opt.ApspMS
			rec.BuildMS = buildMS
			rec.TotalMS = opt.ApspMS + buildMS
			rec.NsPerQuery = float64(elapsed.Nanoseconds()) / float64(len(pairs))
		}
		return rec, nil
	})
}

// WriteBenchJSON runs Bench and writes the records as an indented JSON
// array.
func WriteBenchJSON(w io.Writer, e *Env, opt BenchOpts) error {
	records, err := Bench(e, opt)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}
