package exp

import (
	"fmt"
	"io"
)

// Fig1 regenerates Figure 1 — the anatomy of a name-independent
// delivery (Algorithm 3) — as a per-found-level table: for routes whose
// destination label surfaced at level j, the average zooming cost
// (Sum d(u(i-1), u(i))), search cost (the 2*2^{i+1}/eps terms), and
// final labeled leg, against the level's ball radius 2^j/eps. It also
// checks Lemma 3.4's per-route inequality: total cost <=
// 2^{j+2}(1/eps+1) + d(u,v), inflated by the underlying scheme's
// (1+O(eps)) routing factor (Eqn 4).
func Fig1(w io.Writer, e *Env, eps float64, pairCount int, seed int64) error {
	s, err := buildNameIndSimple(e, minf(eps, 0.25), seed)
	if err != nil {
		return err
	}
	pairs := e.Pairs(pairCount, seed)
	type agg struct {
		count      int
		zoom       float64
		search     float64
		final      float64
		stretchSum float64
		stretchMax float64
	}
	byLevel := map[int]*agg{}
	eqn4Violations := 0
	underB := 1 + 4*minf(eps, 0.25)/(1-minf(eps, 0.25))
	for _, p := range pairs {
		ex, err := s.Explain(p[0], s.NameOf(p[1]))
		if err != nil {
			return err
		}
		if len(ex.Levels) == 0 {
			continue // self or own-name short-circuit
		}
		last := ex.Levels[len(ex.Levels)-1]
		a := byLevel[last.Level]
		if a == nil {
			a = &agg{}
			byLevel[last.Level] = a
		}
		a.count++
		for _, lt := range ex.Levels {
			a.zoom += lt.ZoomCost
			a.search += lt.SearchCost
		}
		a.final += ex.FinalCost
		st := ex.Stretch()
		a.stretchSum += st
		if st > a.stretchMax {
			a.stretchMax = st
		}
		// Eqn (4): total <= (2^{j+2}(1/eps+1) + d(u,v)) * underlying factor.
		h := s.UnderlyingScheme().Hierarchy()
		bound := (4*h.Radius(last.Level)*(1/eps+1) + ex.Optimal) * underB
		if ex.TotalCost > bound+1e-9 {
			eqn4Violations++
		}
	}
	fmt.Fprintf(w, "Figure 1 — Algorithm 3 anatomy on %s (n=%d, eps=%v, %d pairs)\n",
		e.Name, e.G.N(), eps, len(pairs))
	levels := sortedKeys(byLevel)
	tw := newTab(w)
	fmt.Fprintln(tw, "found at level j\troutes\tavg zoom cost\tavg search cost\tavg final leg\tavg stretch\tmax stretch")
	for _, l := range levels {
		a := byLevel[l]
		c := float64(a.count)
		fmt.Fprintf(tw, "%d\t%d\t%.2f\t%.2f\t%.2f\t%.3f\t%.3f\n",
			l, a.count, a.zoom/c, a.search/c, a.final/c, a.stretchSum/c, a.stretchMax)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "Eqn (4) violations: %d of %d routes\n", eqn4Violations, len(pairs))
	if eqn4Violations > 0 {
		return fmt.Errorf("exp: %d routes violate the Lemma 3.4 decomposition", eqn4Violations)
	}
	return nil
}
