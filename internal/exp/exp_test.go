package exp

import (
	"strings"
	"testing"
)

func smallGeo(t *testing.T) *Env {
	t.Helper()
	e, err := GeometricEnv(90, 3)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestTable1Runs(t *testing.T) {
	var sb strings.Builder
	if err := Table1(&sb, smallGeo(t), 0.25, 100, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table 1", "Thm 1.4", "Thm 1.1", "full-table"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Runs(t *testing.T) {
	var sb strings.Builder
	if err := Table2(&sb, smallGeo(t), 0.25, 100, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table 2", "Thm 1.2", "single-tree", "logD family"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig1Runs(t *testing.T) {
	var sb strings.Builder
	if err := Fig1(&sb, smallGeo(t), 0.25, 150, 1); err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "Eqn (4) violations: 0") {
		t.Fatalf("Eqn 4 violations reported:\n%s", sb.String())
	}
}

func TestFig2Runs(t *testing.T) {
	var sb strings.Builder
	if err := Fig2(&sb, smallGeo(t), 0.25, 150, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Claim 4.6") {
		t.Fatalf("missing Claim 4.6 column:\n%s", sb.String())
	}
}

func TestFig2PhaseBOnExponentialPath(t *testing.T) {
	// Phase B of Algorithm 5 only fires on metrics with empty annuli
	// (levels missing from R(u)); the exponential path is the canonical
	// case. Every handed-off route must satisfy the Claim 4.6 window.
	e, err := ExpPathEnv(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Fig2(&sb, e, 0.25, 2000, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 9 && line[0] >= '0' && line[0] <= '9' {
			rows++
			holds := fields[len(fields)-1] // "k/n"
			parts := strings.Split(holds, "/")
			if len(parts) != 2 || parts[0] != parts[1] {
				t.Fatalf("Claim 4.6 violated in row %q", line)
			}
		}
	}
	if rows == 0 {
		t.Fatalf("no phase-B rows on the exponential path:\n%s", out)
	}
}

func TestFig3Runs(t *testing.T) {
	var sb strings.Builder
	if err := Fig3(&sb, 200, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"minimum at b=2.000: 9.0000", "Thm 1.4 scheme on the tree", "counterexample tree"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestStorageRuns(t *testing.T) {
	var sb strings.Builder
	if err := Storage(&sb, []int{32, 64}, 4, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Storage scaling") {
		t.Fatalf("bad output:\n%s", sb.String())
	}
}

func TestEpsilonRuns(t *testing.T) {
	var sb strings.Builder
	if err := Epsilon(&sb, smallGeo(t), 100, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "nameind scale-free") {
		t.Fatalf("bad output:\n%s", sb.String())
	}
}

func TestAblationRuns(t *testing.T) {
	var sb strings.Builder
	if err := Ablation(&sb, smallGeo(t), 100, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"ring radius factor", "Property 2", "heavy-first", "search-tree eps"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q:\n%s", want, out)
		}
	}
}

func TestOverheadRuns(t *testing.T) {
	var sb strings.Builder
	if err := Overhead(&sb, smallGeo(t), 0.25, 150, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Price of name independence") {
		t.Fatalf("bad output:\n%s", sb.String())
	}
}

func TestDimensionRuns(t *testing.T) {
	var sb strings.Builder
	if err := Dimension(&sb, 0.25, 150, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Doubling-dimension sweep") {
		t.Fatalf("bad output:\n%s", sb.String())
	}
}

func TestOracleSweepRuns(t *testing.T) {
	var sb strings.Builder
	if err := OracleSweep(&sb, smallGeo(t), 200, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "TZ oracle k=3") {
		t.Fatalf("bad output:\n%s", sb.String())
	}
}
