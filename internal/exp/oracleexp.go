package exp

import (
	"fmt"
	"io"

	"compactrouting/internal/core"
	"compactrouting/internal/labeled"
	"compactrouting/internal/oracle"
)

// OracleSweep contrasts the general-graph space-stretch law with the
// doubling escape hatch: Thorup–Zwick distance oracles trade stretch
// 2k-1 against ~n^{1/k} space per node on ANY graph, while the paper's
// labeled scheme estimates distances at stretch (1+eps) with polylog
// space because the metric is doubling. (Routing and distance
// estimation share the same lower-bound landscape — §1.2.)
func OracleSweep(w io.Writer, e *Env, pairCount int, seed int64) error {
	pairs := e.Pairs(pairCount, seed)
	fmt.Fprintf(w, "Space-stretch law on %s (n=%d, %d queried pairs)\n", e.Name, e.G.N(), len(pairs))
	tw := newTab(w)
	fmt.Fprintln(tw, "structure\tstretch bound\tmeas max\tmeas mean\tmax bits/node\tmax bunch")
	for k := 1; k <= 4; k++ {
		o, err := oracle.New(e.A, k, seed)
		if err != nil {
			return err
		}
		worst, sum := 1.0, 0.0
		count := 0
		for _, p := range pairs {
			d := e.A.Dist(p[0], p[1])
			if d == 0 {
				continue
			}
			est, err := o.Query(p[0], p[1])
			if err != nil {
				return err
			}
			r := est / d
			sum += r
			count++
			if r > worst {
				worst = r
			}
		}
		maxBits := 0
		for v := 0; v < e.G.N(); v++ {
			if b := o.TableBits(v); b > maxBits {
				maxBits = b
			}
		}
		fmt.Fprintf(tw, "TZ oracle k=%d\t%d\t%.3f\t%.3f\t%d\t%d\n",
			k, 2*k-1, worst, sum/float64(count), maxBits, o.MaxBunchSize())
	}
	// The doubling-route comparison: the scale-free labeled scheme's
	// route cost is itself a (1+O(eps)) distance estimate.
	s, err := labeled.NewScaleFree(e.G, e.A, 0.25)
	if err != nil {
		return err
	}
	st, err := core.EvaluateLabeled(s, e.A, pairs)
	if err != nil {
		return err
	}
	tb := core.Tables(s.TableBits, e.G.N())
	fmt.Fprintf(tw, "Thm 1.2 route cost (doubling)\t1+eps\t%.3f\t%.3f\t%d\t-\n",
		st.Max, st.Mean, tb.MaxBits)
	return tw.Flush()
}
