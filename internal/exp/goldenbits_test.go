package exp

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"compactrouting/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// TestGoldenBitAccounting pins the exact space accounting of every
// scheme — the largest routing table and the largest in-flight header,
// in bits — on two fixed networks. Any change to label layouts, header
// codecs, or table construction shows up here as a one-line diff
// before it silently shifts the numbers the experiments report.
//
// Regenerate after an intended change with:
//
//	go test ./internal/exp -run TestGoldenBitAccounting -update
func TestGoldenBitAccounting(t *testing.T) {
	var got bytes.Buffer
	for _, n := range []int{64, 256} {
		e, err := GeometricEnv(n, 7)
		if err != nil {
			t.Fatal(err)
		}
		pairs := e.Pairs(120, 7)
		for _, cell := range benchCells(e, 0.25, pairs, 7, true) {
			tableBits, eval, err := cell.build()
			if err != nil {
				t.Fatalf("%s n=%d: %v", cell.name, e.G.N(), err)
			}
			st, _, err := eval()
			if err != nil {
				t.Fatalf("%s n=%d: %v", cell.name, e.G.N(), err)
			}
			tb := core.Tables(tableBits, e.G.N())
			fmt.Fprintf(&got, "n=%d scheme=%s max_table_bits=%d max_header_bits=%d\n",
				e.G.N(), cell.name, tb.MaxBits, st.MaxHeader)
		}
	}

	path := filepath.Join("testdata", "goldenbits.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with: go test ./internal/exp -run TestGoldenBitAccounting -update): %v", err)
	}
	if !bytes.Equal(want, got.Bytes()) {
		t.Fatalf("bit accounting drifted from golden:\n--- want\n%s--- got\n%s"+
			"If the change is intended, regenerate with: go test ./internal/exp -run TestGoldenBitAccounting -update",
			want, got.Bytes())
	}
}
