package exp

import (
	"fmt"
	"io"
	"sort"

	"compactrouting/internal/labeled"
)

// Overhead measures the price of name independence — the paper's
// central trade-off: the same deliveries routed with the labeled
// Theorem 1.2 scheme (source knows the destination's label) versus the
// name-independent Theorem 1.1 scheme (source knows only an arbitrary
// name), bucketed by distance. Labeled routing pays (1+eps); name
// independence pays the doubling search, up to the optimal factor 9.
func Overhead(w io.Writer, e *Env, eps float64, pairCount int, seed int64) error {
	eps = minf(eps, 0.25)
	lab, err := labeled.NewScaleFree(e.G, e.A, eps)
	if err != nil {
		return err
	}
	ni, err := buildNameIndScaleFree(e, eps, seed)
	if err != nil {
		return err
	}
	pairs := e.Pairs(pairCount, seed)
	type obs struct {
		d    float64
		labS float64
		niS  float64
	}
	var all []obs
	for _, p := range pairs {
		d := e.A.Dist(p[0], p[1])
		if d == 0 {
			continue
		}
		rl, err := lab.RouteToLabel(p[0], lab.LabelOf(p[1]))
		if err != nil {
			return err
		}
		rn, err := ni.RouteToName(p[0], ni.NameOf(p[1]))
		if err != nil {
			return err
		}
		all = append(all, obs{d: d, labS: rl.Cost / d, niS: rn.Cost / d})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
	fmt.Fprintf(w, "Price of name independence on %s (n=%d, eps=%v, %d pairs)\n",
		e.Name, e.G.N(), eps, len(all))
	tw := newTab(w)
	fmt.Fprintln(tw, "distance quartile\tpairs\tlabeled mean\tlabeled max\tname-indep mean\tname-indep max\tmean ratio")
	q := len(all) / 4
	for b := 0; b < 4; b++ {
		lo, hi := b*q, (b+1)*q
		if b == 3 {
			hi = len(all)
		}
		var lm, lx, nm, nx float64
		for _, o := range all[lo:hi] {
			lm += o.labS
			nm += o.niS
			if o.labS > lx {
				lx = o.labS
			}
			if o.niS > nx {
				nx = o.niS
			}
		}
		c := float64(hi - lo)
		fmt.Fprintf(tw, "Q%d (d in [%.1f, %.1f])\t%d\t%.3f\t%.3f\t%.3f\t%.3f\t%.2fx\n",
			b+1, all[lo].d, all[hi-1].d, hi-lo, lm/c, lx, nm/c, nx, (nm/c)/(lm/c))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "Theorem 1.3 says the name-independent column cannot be pushed below ~9 worst-case\nby ANY compact scheme; the labeled column shows what knowing the label buys.")
	return nil
}
