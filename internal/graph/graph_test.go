package graph

import (
	"math"
	"testing"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("N=%d M=%d, want 3, 2", g.N(), g.M())
	}
	if w, ok := g.EdgeWeight(1, 0); !ok || w != 2.5 {
		t.Fatalf("EdgeWeight(1,0) = %v,%v want 2.5,true", w, ok)
	}
	if _, ok := g.EdgeWeight(0, 2); ok {
		t.Fatal("EdgeWeight(0,2) should not exist")
	}
	if g.MinEdgeWeight() != 1 {
		t.Fatalf("MinEdgeWeight = %v, want 1", g.MinEdgeWeight())
	}
	if g.Degree(1) != 2 || g.MaxDegree() != 2 {
		t.Fatalf("Degree(1)=%d MaxDegree=%d, want 2,2", g.Degree(1), g.MaxDegree())
	}
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(2)
	cases := []struct {
		u, v int
		w    float64
	}{
		{0, 0, 1},           // self loop
		{-1, 0, 1},          // out of range
		{0, 2, 1},           // out of range
		{0, 1, 0},           // zero weight
		{0, 1, -3},          // negative weight
		{0, 1, math.Inf(1)}, // inf
		{0, 1, math.NaN()},  // nan
	}
	for _, c := range cases {
		if err := b.AddEdge(c.u, c.v, c.w); err == nil {
			t.Errorf("AddEdge(%d,%d,%v) accepted", c.u, c.v, c.w)
		}
	}
}

func TestBuilderParallelEdgeKeepsMin(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 0, 2); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if w, _ := g.EdgeWeight(0, 1); w != 2 {
		t.Fatalf("weight = %v, want 2", w)
	}
}

func TestBuildRejectsDisconnected(t *testing.T) {
	b := NewBuilder(4)
	if err := b.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted a disconnected graph")
	}
}

func TestBuildSingleNode(t *testing.T) {
	g, err := NewBuilder(1).Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 1 || g.M() != 0 {
		t.Fatalf("N=%d M=%d, want 1,0", g.N(), g.M())
	}
}

func TestGridDims(t *testing.T) {
	g, err := Grid(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 {
		t.Fatalf("N = %d, want 20", g.N())
	}
	wantM := 4*4 + 3*5 // horizontal + vertical
	if g.M() != wantM {
		t.Fatalf("M = %d, want %d", g.M(), wantM)
	}
	if g.MaxDegree() != 4 {
		t.Fatalf("MaxDegree = %d, want 4", g.MaxDegree())
	}
}

func TestGridWithHolesConnected(t *testing.T) {
	g, pos, err := GridWithHoles(20, 20, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() < 200 {
		t.Fatalf("component too small: %d", g.N())
	}
	if len(pos) != g.N() {
		t.Fatalf("pos len %d != N %d", len(pos), g.N())
	}
	// Every edge must join grid-adjacent surviving cells.
	for v := 0; v < g.N(); v++ {
		for _, e := range g.Neighbors(v) {
			dr := pos[v][0] - pos[e.To][0]
			dc := pos[v][1] - pos[e.To][1]
			if dr*dr+dc*dc != 1 {
				t.Fatalf("edge %d-%d joins non-adjacent cells %v %v", v, e.To, pos[v], pos[e.To])
			}
		}
	}
}

func TestRandomGeometric(t *testing.T) {
	g, pts, err := RandomGeometric(200, 0.15, 11)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() < 100 {
		t.Fatalf("component too small: %d", g.N())
	}
	if len(pts) != g.N() {
		t.Fatalf("pts len %d != N %d", len(pts), g.N())
	}
	if w := g.MinEdgeWeight(); math.Abs(w-1) > 1e-9 {
		t.Fatalf("MinEdgeWeight = %v, want 1 after scaling", w)
	}
	// Edge weights must equal scaled Euclidean distances.
	for v := 0; v < g.N(); v++ {
		for _, e := range g.Neighbors(v) {
			d := math.Hypot(pts[v][0]-pts[e.To][0], pts[v][1]-pts[e.To][1])
			if math.Abs(d-e.Weight) > 1e-6*d {
				t.Fatalf("edge %d-%d weight %v != distance %v", v, e.To, e.Weight, d)
			}
		}
	}
}

func TestExponentialPath(t *testing.T) {
	g, err := ExponentialPath(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 10 || g.M() != 9 {
		t.Fatalf("N=%d M=%d, want 10,9", g.N(), g.M())
	}
	if w, _ := g.EdgeWeight(8, 9); w != 256 {
		t.Fatalf("last edge = %v, want 256", w)
	}
}

func TestExponentialStar(t *testing.T) {
	g, err := ExponentialStar(31, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 31 {
		t.Fatalf("N = %d, want 31", g.N())
	}
	if g.Degree(0) != 3 {
		t.Fatalf("hub degree = %d, want 3", g.Degree(0))
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	g, err := RandomTree(100, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != g.N()-1 {
		t.Fatalf("M = %d, want %d", g.M(), g.N()-1)
	}
}

func TestCaterpillarTree(t *testing.T) {
	g, err := CaterpillarTree(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 || g.M() != 19 {
		t.Fatalf("N=%d M=%d, want 20,19", g.N(), g.M())
	}
	if g.MaxDegree() != 5 { // interior spine node: 2 spine + 3 legs
		t.Fatalf("MaxDegree = %d, want 5", g.MaxDegree())
	}
}

func TestInducedSubgraph(t *testing.T) {
	g, err := Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	sub, old, err := g.InducedSubgraph([]int{0, 1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 4 || sub.M() != 3 {
		t.Fatalf("sub N=%d M=%d, want 4,3", sub.N(), sub.M())
	}
	if old[3] != 5 {
		t.Fatalf("old[3] = %d, want 5", old[3])
	}
	if _, _, err := g.InducedSubgraph([]int{0, 8}); err == nil {
		t.Fatal("disconnected induced subgraph accepted")
	}
	if _, _, err := g.InducedSubgraph([]int{0, 0}); err == nil {
		t.Fatal("duplicate keep node accepted")
	}
}

func TestFractal(t *testing.T) {
	g, err := Fractal(3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 64 || g.M() != 63 {
		t.Fatalf("N=%d M=%d, want 64,63", g.N(), g.M())
	}
	// Level-1 edges weight 1, level-3 edges weight 4.
	if w, ok := g.EdgeWeight(0, 1); !ok || w != 1 {
		t.Fatalf("level-1 edge = %v,%v", w, ok)
	}
	if w, ok := g.EdgeWeight(0, 16); !ok || w != 4 {
		t.Fatalf("level-3 edge = %v,%v", w, ok)
	}
	if _, err := Fractal(0, 4, 2); err == nil {
		t.Fatal("levels=0 accepted")
	}
	if _, err := Fractal(3, 1, 2); err == nil {
		t.Fatal("branch=1 accepted")
	}
	if _, err := Fractal(3, 4, 1); err == nil {
		t.Fatal("scale=1 accepted")
	}
}
