package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// Path returns the path graph v0-v1-...-v(n-1) with the given uniform
// edge weight.
func Path(n int, weight float64) (*Graph, error) {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		if err := b.AddEdge(i, i+1, weight); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// Ring returns the n-cycle with unit edge weights.
func Ring(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: ring needs n >= 3, got %d", n)
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		if err := b.AddEdge(i, (i+1)%n, 1); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// Grid returns the rows x cols grid graph with unit edge weights. Its
// metric is growth-bounded (hence doubling with alpha ~ 2).
func Grid(rows, cols int) (*Graph, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("graph: grid dims %dx%d invalid", rows, cols)
	}
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := b.AddEdge(id(r, c), id(r, c+1), 1); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				if err := b.AddEdge(id(r, c), id(r+1, c), 1); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build()
}

// GridWithHoles returns the largest connected component of a rows x cols
// grid after deleting each node independently with probability holeProb.
// Deleting nodes breaks growth-boundedness but preserves low doubling
// dimension — the paper's motivating example of a doubling network that
// is not growth-bounded. The second return value maps new ids to (row,
// col) positions in the original grid.
func GridWithHoles(rows, cols int, holeProb float64, seed int64) (*Graph, [][2]int, error) {
	if holeProb < 0 || holeProb >= 1 {
		return nil, nil, fmt.Errorf("graph: holeProb %v out of [0,1)", holeProb)
	}
	rng := rand.New(rand.NewSource(seed))
	n := rows * cols
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = rng.Float64() >= holeProb
	}
	id := func(r, c int) int { return r*cols + c }
	edges := make(map[[2]int]float64)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if !alive[id(r, c)] {
				continue
			}
			if c+1 < cols && alive[id(r, c+1)] {
				edges[[2]int{id(r, c), id(r, c+1)}] = 1
			}
			if r+1 < rows && alive[id(r+1, c)] {
				edges[[2]int{id(r, c), id(r+1, c)}] = 1
			}
		}
	}
	keep := LargestComponent(n, edges)
	if len(keep) < 2 {
		return nil, nil, fmt.Errorf("graph: holes left no usable component (holeProb=%v)", holeProb)
	}
	newID := make(map[int]int, len(keep))
	for i, v := range keep {
		newID[v] = i
	}
	b := NewBuilder(len(keep))
	for key, w := range edges {
		u, ok1 := newID[key[0]]
		v, ok2 := newID[key[1]]
		if ok1 && ok2 {
			if err := b.AddEdge(u, v, w); err != nil {
				return nil, nil, err
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	pos := make([][2]int, len(keep))
	for i, v := range keep {
		pos[i] = [2]int{v / cols, v % cols}
	}
	return g, pos, nil
}

// RandomGeometric returns the largest connected component of a random
// geometric graph: n points uniform in the unit square, an edge between
// points at Euclidean distance <= radius, edge weight equal to that
// distance scaled so the minimum edge weight is 1. Its metric has small
// doubling dimension (points in the plane). The second return value
// holds the scaled point coordinates of each surviving node.
func RandomGeometric(n int, radius float64, seed int64) (*Graph, [][2]float64, error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("graph: random geometric needs n >= 2, got %d", n)
	}
	if radius <= 0 || radius > math.Sqrt2 {
		return nil, nil, fmt.Errorf("graph: radius %v out of (0, sqrt2]", radius)
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{rng.Float64(), rng.Float64()}
	}
	edges := make(map[[2]int]float64)
	minW := math.Inf(1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := pts[i][0] - pts[j][0]
			dy := pts[i][1] - pts[j][1]
			d := math.Hypot(dx, dy)
			if d > radius {
				continue
			}
			if d == 0 {
				d = 1e-9 // coincident points: tiny but positive
			}
			edges[[2]int{i, j}] = d
			if d < minW {
				minW = d
			}
		}
	}
	keep := LargestComponent(n, edges)
	if len(keep) < 2 {
		return nil, nil, fmt.Errorf("graph: geometric graph too sparse (radius=%v)", radius)
	}
	newID := make(map[int]int, len(keep))
	for i, v := range keep {
		newID[v] = i
	}
	scale := 1 / minW
	b := NewBuilder(len(keep))
	for key, w := range edges {
		u, ok1 := newID[key[0]]
		v, ok2 := newID[key[1]]
		if ok1 && ok2 {
			if err := b.AddEdge(u, v, w*scale); err != nil {
				return nil, nil, err
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	out := make([][2]float64, len(keep))
	for i, v := range keep {
		out[i] = [2]float64{pts[v][0] * scale, pts[v][1] * scale}
	}
	return g, out, nil
}

// ExponentialPath returns a path whose i-th edge has weight base^i. Its
// metric is a line metric (doubling dimension 1) with normalized
// diameter exponential in n: the family that separates scale-free from
// non-scale-free schemes.
func ExponentialPath(n int, base float64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: exponential path needs n >= 2, got %d", n)
	}
	if base < 1 {
		return nil, fmt.Errorf("graph: base %v must be >= 1", base)
	}
	b := NewBuilder(n)
	w := 1.0
	for i := 0; i+1 < n; i++ {
		if err := b.AddEdge(i, i+1, w); err != nil {
			return nil, err
		}
		w *= base
	}
	return b.Build()
}

// ExponentialStar returns a star of k paths, each of length n/k hops,
// where the j-th path's edges all have weight base^j. Line-like metric
// with exponential diameter and non-uniform density around the hub.
func ExponentialStar(n, k int, base float64) (*Graph, error) {
	if k < 1 || n < k+1 {
		return nil, fmt.Errorf("graph: exponential star needs n > k >= 1, got n=%d k=%d", n, k)
	}
	b := NewBuilder(n)
	per := (n - 1) / k
	next := 1
	for j := 0; j < k; j++ {
		w := math.Pow(base, float64(j))
		prev := 0
		count := per
		if j == k-1 {
			count = n - 1 - j*per // absorb remainder in the last arm
		}
		for i := 0; i < count; i++ {
			if err := b.AddEdge(prev, next, w); err != nil {
				return nil, err
			}
			prev = next
			next++
		}
	}
	return b.Build()
}

// RandomTree returns a random tree on n nodes: each node i >= 1 attaches
// to a uniform random earlier node with weight drawn uniformly from
// [1, maxW]. Trees have doubling dimension up to Theta(log n) in general;
// this generator is used for tree-routing substrate tests, not as a
// doubling-network workload.
func RandomTree(n int, maxW float64, seed int64) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: random tree needs n >= 1, got %d", n)
	}
	if maxW < 1 {
		return nil, fmt.Errorf("graph: maxW %v must be >= 1", maxW)
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		p := rng.Intn(i)
		w := 1 + rng.Float64()*(maxW-1)
		if err := b.AddEdge(p, i, w); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// PowerLaw returns a preferential-attachment graph on n nodes in the
// style of Internet AS topologies: node i >= 1 attaches m edges (or i,
// if fewer nodes exist yet) to distinct earlier nodes chosen with
// probability proportional to degree, so the degree sequence follows a
// power law. Edge weights are drawn log-uniform from [1, maxW), giving
// the weight spread real inter-AS links have — with unit weights the
// hop diameter is O(log n) and every level-0 routing ball would be the
// whole graph. The graph is connected by construction.
func PowerLaw(n, m int, maxW float64, seed int64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: power law needs n >= 2, got %d", n)
	}
	if m < 1 {
		return nil, fmt.Errorf("graph: power law needs m >= 1, got %d", m)
	}
	if maxW < 1 {
		return nil, fmt.Errorf("graph: maxW %v must be >= 1", maxW)
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	logW := math.Log(maxW)
	// ends lists every edge endpoint; a uniform pick from it is a
	// degree-proportional pick of a node.
	ends := make([]int, 0, 2*m*n)
	picked := make([]int, 0, m)
	for i := 1; i < n; i++ {
		k := m
		if k > i {
			k = i
		}
		picked = picked[:0]
		for len(picked) < k {
			var t int
			if len(ends) == 0 {
				t = 0
			} else {
				t = ends[rng.Intn(len(ends))]
			}
			dup := false
			for _, p := range picked {
				if p == t {
					dup = true
					break
				}
			}
			if dup {
				// Duplicate target: fall back to a uniform pick so the
				// loop terminates even when high-degree hubs dominate.
				t = rng.Intn(i)
				dup = false
				for _, p := range picked {
					if p == t {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
			}
			picked = append(picked, t)
		}
		for _, t := range picked {
			w := math.Exp(rng.Float64() * logW)
			if err := b.AddEdge(t, i, w); err != nil {
				return nil, err
			}
			ends = append(ends, t, i)
		}
	}
	return b.Build()
}

// CaterpillarTree returns a path of length spine with leg leaves hanging
// off every spine node; a high-degree tree useful for stressing
// tree-routing port encodings.
func CaterpillarTree(spine, legs int) (*Graph, error) {
	if spine < 1 || legs < 0 {
		return nil, fmt.Errorf("graph: bad caterpillar dims spine=%d legs=%d", spine, legs)
	}
	n := spine * (legs + 1)
	b := NewBuilder(n)
	for i := 0; i+1 < spine; i++ {
		if err := b.AddEdge(i, i+1, 1); err != nil {
			return nil, err
		}
	}
	next := spine
	for i := 0; i < spine; i++ {
		for j := 0; j < legs; j++ {
			if err := b.AddEdge(i, next, 1); err != nil {
				return nil, err
			}
			next++
		}
	}
	return b.Build()
}

// Fractal returns a recursive star-of-stars graph on branch^levels
// nodes: level-k blocks consist of branch level-(k-1) blocks whose
// representatives hang off the first block's representative with edges
// of weight scale^k. The resulting metric is doubling with dimension
// roughly log2(branch) (for scale 2) — a family with TUNABLE doubling
// dimension for the (1/eps)^O(alpha) storage experiments.
func Fractal(levels, branch int, scale float64) (*Graph, error) {
	if levels < 1 || branch < 2 {
		return nil, fmt.Errorf("graph: fractal needs levels >= 1, branch >= 2, got %d, %d", levels, branch)
	}
	if scale <= 1 {
		return nil, fmt.Errorf("graph: fractal scale %v must exceed 1", scale)
	}
	n := 1
	for k := 0; k < levels; k++ {
		n *= branch
		if n > 1<<22 {
			return nil, fmt.Errorf("graph: fractal too large (branch^levels > 2^22)")
		}
	}
	b := NewBuilder(n)
	blockSize := 1
	w := 1.0
	for k := 1; k <= levels; k++ {
		sub := blockSize
		blockSize *= branch
		for start := 0; start < n; start += blockSize {
			rep := start // representative = first node of the block
			for c := 1; c < branch; c++ {
				if err := b.AddEdge(rep, start+c*sub, w); err != nil {
					return nil, err
				}
			}
		}
		w *= scale
	}
	return b.Build()
}
