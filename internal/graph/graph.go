// Package graph provides the weighted undirected graph type that every
// routing scheme in this repository operates on, together with the
// generator families used by the experiments (grids with holes, random
// geometric graphs, exponential-diameter paths, random trees).
//
// Nodes are dense integer ids 0..N()-1. Edge weights are positive
// float64s; the shortest-path metric they induce is what the paper calls
// the network's metric. Doubling-dimension generators here produce graphs
// whose metrics have small doubling constant, matching the paper's model
// of "networks of low doubling dimension".
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Edge is a half-edge: the neighbor it leads to and its weight.
type Edge struct {
	To     int
	Weight float64
}

// Graph is an immutable connected weighted undirected graph.
// Construct one with a Builder.
type Graph struct {
	adj [][]Edge
	m   int
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Neighbors returns the adjacency list of v. The returned slice must not
// be modified.
func (g *Graph) Neighbors(v int) []Edge { return g.adj[v] }

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns the largest degree in the graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := range g.adj {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// EdgeWeight returns the weight of edge (u,v) and whether it exists.
func (g *Graph) EdgeWeight(u, v int) (float64, bool) {
	for _, e := range g.adj[u] {
		if e.To == v {
			return e.Weight, true
		}
	}
	return 0, false
}

// NeighborWeight is EdgeWeight by binary search: adjacency lists are
// sorted by neighbor id, so per-transmission lookups (the dist engine
// validates and weighs every message against the sender's adjacency)
// cost O(log deg) instead of EdgeWeight's linear scan.
//
//determinlint:hotpath
func (g *Graph) NeighborWeight(u, v int) (float64, bool) {
	adj := g.adj[u]
	//determinlint:allow hotpath the closure does not escape sort.Search and stays on the stack; the server alloc tests pin this path at 0 allocs/op
	i := sort.Search(len(adj), func(k int) bool { return adj[k].To >= v })
	if i < len(adj) && adj[i].To == v {
		return adj[i].Weight, true
	}
	return 0, false
}

// MinEdgeWeight returns the smallest edge weight in the graph.
func (g *Graph) MinEdgeWeight() float64 {
	min := math.Inf(1)
	for v := range g.adj {
		for _, e := range g.adj[v] {
			if e.Weight < min {
				min = e.Weight
			}
		}
	}
	return min
}

// Builder accumulates edges for a Graph. The zero value is not usable;
// call NewBuilder.
type Builder struct {
	n     int
	edges map[[2]int]float64
}

// NewBuilder returns a Builder for a graph on n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, edges: make(map[[2]int]float64)}
}

// AddEdge records the undirected edge (u,v) with weight w. Adding the
// same edge twice keeps the smaller weight. It returns an error for
// out-of-range endpoints, self-loops, or non-positive/non-finite weights.
func (b *Builder) AddEdge(u, v int, w float64) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
		return fmt.Errorf("graph: edge (%d,%d) has invalid weight %v", u, v, w)
	}
	key := [2]int{u, v}
	if u > v {
		key = [2]int{v, u}
	}
	if old, ok := b.edges[key]; !ok || w < old {
		b.edges[key] = w
	}
	return nil
}

// Build validates connectivity and returns the immutable Graph.
func (b *Builder) Build() (*Graph, error) {
	if b.n <= 0 {
		return nil, errors.New("graph: empty graph")
	}
	g := &Graph{adj: make([][]Edge, b.n), m: len(b.edges)}
	for key, w := range b.edges {
		u, v := key[0], key[1]
		g.adj[u] = append(g.adj[u], Edge{To: v, Weight: w})
		g.adj[v] = append(g.adj[v], Edge{To: u, Weight: w})
	}
	for v := range g.adj {
		adj := g.adj[v]
		sort.Slice(adj, func(i, j int) bool { return adj[i].To < adj[j].To })
	}
	if b.n > 1 && !g.connected() {
		return nil, errors.New("graph: not connected")
	}
	return g, nil
}

func (g *Graph) connected() bool {
	seen := make([]bool, g.N())
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[v] {
			if !seen[e.To] {
				seen[e.To] = true
				count++
				stack = append(stack, e.To)
			}
		}
	}
	return count == g.N()
}

// InducedSubgraph returns the subgraph induced by keep (a node subset),
// relabeled to dense ids in the order keep lists them, together with the
// old-id slice indexed by new id. It fails if the induced subgraph is
// disconnected.
func (g *Graph) InducedSubgraph(keep []int) (*Graph, []int, error) {
	newID := make(map[int]int, len(keep))
	for i, v := range keep {
		if v < 0 || v >= g.N() {
			return nil, nil, fmt.Errorf("graph: node %d out of range", v)
		}
		if _, dup := newID[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate node %d in keep set", v)
		}
		newID[v] = i
	}
	b := NewBuilder(len(keep))
	for _, v := range keep {
		for _, e := range g.adj[v] {
			if w, ok := newID[e.To]; ok && newID[v] < w {
				if err := b.AddEdge(newID[v], w, e.Weight); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	old := make([]int, len(keep))
	copy(old, keep)
	return sub, old, nil
}

// LargestComponent returns the node set of the largest connected
// component of the graph described by n and edges (used by generators
// before Build, which requires connectivity).
func LargestComponent(n int, edges map[[2]int]float64) []int {
	adj := make([][]int, n)
	for key := range edges {
		adj[key[0]] = append(adj[key[0]], key[1])
		adj[key[1]] = append(adj[key[1]], key[0])
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var best []int
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		cur := []int{s}
		comp[s] = s
		for i := 0; i < len(cur); i++ {
			for _, w := range adj[cur[i]] {
				if comp[w] < 0 {
					comp[w] = s
					cur = append(cur, w)
				}
			}
		}
		if len(cur) > len(best) {
			best = cur
		}
	}
	sort.Ints(best)
	return best
}
