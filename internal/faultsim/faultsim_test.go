package faultsim

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"compactrouting/internal/baseline"
	"compactrouting/internal/core"
	"compactrouting/internal/graph"
	"compactrouting/internal/labeled"
	"compactrouting/internal/metric"
	"compactrouting/internal/nameind"
	"compactrouting/internal/sim"
)

// erased bundles one scheme's type-erased runners so a single table test
// can drive every adapter through both simulators.
type erased struct {
	name    string
	addr    func(int) int // node id -> scheme address (label or name)
	maxHops int
	simRun  func(d []sim.Delivery, maxHops int) []sim.Result
	fsRun   func(d []sim.Delivery, maxHops int, plan FaultPlan, rel Reliability) []Result
}

func erase[H sim.Header](name string, g *graph.Graph, r sim.Router[H], addr func(int) int, maxHops int) erased {
	return erased{
		name:    name,
		addr:    addr,
		maxHops: maxHops,
		simRun: func(d []sim.Delivery, maxHops int) []sim.Result {
			return sim.Run(g, r, d, maxHops)
		},
		fsRun: func(d []sim.Delivery, maxHops int, plan FaultPlan, rel Reliability) []Result {
			return Run(g, r, d, maxHops, plan, rel)
		},
	}
}

// allSchemes compiles every scheme adapter on one geometric graph.
func allSchemes(t *testing.T, n int, seed int64) (*graph.Graph, []erased) {
	t.Helper()
	g, _, err := graph.RandomGeometric(n, 0.25, seed)
	if err != nil {
		t.Fatal(err)
	}
	a := metric.NewAPSP(g)
	self := func(v int) int { return v }

	ft := baseline.NewFullTable(g, a)
	st, err := baseline.NewSingleTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := labeled.NewSimple(g, a, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := labeled.NewScaleFree(g, a, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	nm := nameind.RandomNaming(g.N(), seed+2)
	ni, err := nameind.NewSimple(g, a, nm, sl, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	sfUnder, err := labeled.NewScaleFree(g, a, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	sfni, err := nameind.NewScaleFree(g, a, nm, sfUnder, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	return g, []erased{
		erase("full-table", g, sim.FullTableRouter{S: ft}, self, 0),
		erase("single-tree", g, sim.SingleTreeRouter{S: st}, self, 0),
		erase("simple-labeled", g, sim.SimpleLabeledRouter{S: sl}, sl.LabelOf, 0),
		erase("scale-free-labeled", g, sim.ScaleFreeLabeledRouter{S: sf}, sf.LabelOf, 64*g.N()),
		erase("name-independent", g, sim.NameIndependentRouter{S: ni}, nm.NameOf, 256*g.N()),
		erase("scale-free-name-independent", g, sim.ScaleFreeNameIndependentRouter{S: sfni}, nm.NameOf, 512*g.N()),
	}
}

// TestZeroPlanMatchesSim is the acceptance gate: under a zero FaultPlan
// and zero Reliability, faultsim.Run's walks are identical — path, cost,
// header accounting, destination — to sim.Run's for every scheme.
func TestZeroPlanMatchesSim(t *testing.T) {
	g, schemes := allSchemes(t, 80, 21)
	pairs := core.SamplePairs(g.N(), 200, 22)
	for _, sc := range schemes {
		t.Run(sc.name, func(t *testing.T) {
			deliveries := make([]sim.Delivery, len(pairs))
			for i, p := range pairs {
				deliveries[i] = sim.Delivery{Src: p[0], Dst: sc.addr(p[1])}
			}
			want := sc.simRun(deliveries, sc.maxHops)
			got := sc.fsRun(deliveries, sc.maxHops, FaultPlan{}, Reliability{})
			if len(got) != len(want) {
				t.Fatalf("result count %d, want %d", len(got), len(want))
			}
			for i := range got {
				if !got[i].Delivered {
					t.Fatalf("delivery %d not delivered under zero plan: %v", i, got[i].Sim.Err)
				}
				if got[i].Attempts != 1 || got[i].Drops != 0 || got[i].Time != 0 {
					t.Fatalf("delivery %d accounting off under zero plan: %+v", i, got[i])
				}
				if !reflect.DeepEqual(got[i].Sim, want[i]) {
					t.Fatalf("delivery %d diverged:\nfaultsim %+v\nsim      %+v", i, got[i].Sim, want[i])
				}
			}
		})
	}
}

// TestRunDeterministic pins the seed guarantee: identical plans yield
// byte-identical result sets.
func TestRunDeterministic(t *testing.T) {
	g, schemes := allSchemes(t, 60, 31)
	pairs := core.SamplePairs(g.N(), 150, 32)
	plan := FaultPlan{Seed: 7, Loss: 0.15, HopLatency: 1, LatencyJitter: 0.5}
	for _, sc := range schemes[:3] {
		deliveries := make([]sim.Delivery, len(pairs))
		for i, p := range pairs {
			deliveries[i] = sim.Delivery{Src: p[0], Dst: sc.addr(p[1])}
		}
		a := sc.fsRun(deliveries, sc.maxHops, plan, DefaultReliability)
		b := sc.fsRun(deliveries, sc.maxHops, plan, DefaultReliability)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: two runs of the same plan diverged", sc.name)
		}
	}
}

// TestRetriesOnlyGrowDeliveredSet proves the structural guarantee the
// resilience acceptance criterion relies on: attempt 0 draws are shared,
// so a delivery that succeeds without retries also succeeds with them.
func TestRetriesOnlyGrowDeliveredSet(t *testing.T) {
	g, schemes := allSchemes(t, 70, 41)
	pairs := core.SamplePairs(g.N(), 250, 42)
	plan := FaultPlan{Seed: 9, Loss: 0.2}
	for _, sc := range schemes {
		deliveries := make([]sim.Delivery, len(pairs))
		for i, p := range pairs {
			deliveries[i] = sim.Delivery{Src: p[0], Dst: sc.addr(p[1])}
		}
		once := sc.fsRun(deliveries, sc.maxHops, plan, Reliability{MaxAttempts: 1})
		retried := sc.fsRun(deliveries, sc.maxHops, plan, DefaultReliability)
		gained := 0
		for i := range once {
			if once[i].Delivered && !retried[i].Delivered {
				t.Fatalf("%s: delivery %d succeeded without retries but failed with them", sc.name, i)
			}
			if !once[i].Delivered && retried[i].Delivered {
				gained++
			}
		}
		if gained == 0 {
			t.Errorf("%s: retries recovered no deliveries at 20%% loss (suspicious)", sc.name)
		}
	}
}

// pathFixture returns a unit path graph and a full-table router on it.
func pathFixture(t *testing.T, n int) (*graph.Graph, sim.FullTableRouter) {
	t.Helper()
	g, err := graph.Path(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g, sim.FullTableRouter{S: baseline.NewFullTable(g, metric.NewAPSP(g))}
}

func TestPermanentEdgeOutageKillsDelivery(t *testing.T) {
	g, r := pathFixture(t, 6)
	plan := FaultPlan{EdgeOutages: []EdgeOutage{{U: 2, V: 3}}} // down from t=0, forever
	in := NewInjector(plan)
	res := Deliver(g, r, 0, 5, 0, in, DefaultReliability, 0)
	if res.Delivered {
		t.Fatal("delivered across a permanently failed edge")
	}
	if res.Attempts != DefaultReliability.MaxAttempts || res.Drops != res.Attempts {
		t.Fatalf("expected %d dropped attempts, got %+v", DefaultReliability.MaxAttempts, res)
	}
	// Routes that never cross the outage are untouched.
	if res := Deliver(g, r, 0, 2, 0, in, Reliability{}, 1); !res.Delivered {
		t.Fatalf("unaffected route failed: %+v", res)
	}
}

func TestChurnRecoversWithinWindow(t *testing.T) {
	g, r := pathFixture(t, 4)
	// Node 2 is down for virtual time [0, 5). With one hop per unit of
	// latency and backoff 4, 8, ... the first attempt dies at node 2 but
	// a retry arrives there after the window closes.
	plan := FaultPlan{
		HopLatency:  1,
		NodeOutages: []NodeOutage{{Node: 2, Window: Window{From: 0, Until: 5}}},
	}
	in := NewInjector(plan)
	rel := Reliability{MaxAttempts: 3, BaseBackoff: 4}
	res := Deliver(g, r, 0, 3, 0, in, rel, 0)
	if !res.Delivered {
		t.Fatalf("churned node never recovered: %+v", res)
	}
	if res.Attempts < 2 {
		t.Fatalf("first attempt should have been dropped at the churned node, got %+v", res)
	}
	// Without retries the same delivery is lost.
	if res := Deliver(g, r, 0, 3, 0, in, Reliability{}, 0); res.Delivered {
		t.Fatal("delivered through a down node without retrying")
	}
}

func TestDeadlineBoundsAttempts(t *testing.T) {
	g, r := pathFixture(t, 5)
	plan := FaultPlan{Seed: 3, EdgeLoss: []EdgeLoss{{U: 1, V: 2, Loss: 1}}}
	in := NewInjector(plan)
	rel := Reliability{MaxAttempts: 100, BaseBackoff: 1, Deadline: 4}
	res := Deliver(g, r, 0, 4, 0, in, rel, 0)
	if res.Delivered {
		t.Fatal("delivered across a loss-1 edge")
	}
	if res.Attempts >= 100 {
		t.Fatalf("deadline did not bound attempts: %d", res.Attempts)
	}
}

func TestEdgeLossOverride(t *testing.T) {
	g, r := pathFixture(t, 3)
	// Plan-wide loss 1 would kill everything; the override rescues one
	// edge, so a route over only that edge still delivers first try.
	plan := FaultPlan{Loss: 1, EdgeLoss: []EdgeLoss{{U: 0, V: 1, Loss: 0}}}
	in := NewInjector(plan)
	if res := Deliver(g, r, 0, 1, 0, in, Reliability{}, 0); !res.Delivered || res.Attempts != 1 {
		t.Fatalf("override edge lossy: %+v", res)
	}
	if res := Deliver(g, r, 0, 2, 0, in, DefaultReliability, 1); res.Delivered {
		t.Fatal("delivered over a loss-1 edge")
	}
}

func TestRoutingErrorsAreNotRetried(t *testing.T) {
	g, r := pathFixture(t, 4)
	in := NewInjector(FaultPlan{})
	// Hop budget 1 is a deterministic routing failure: retries must not
	// burn attempts on it, and the error must match sim's exactly.
	res := Deliver(g, r, 0, 3, 1, in, DefaultReliability, 0)
	if res.Delivered || res.Attempts != 1 {
		t.Fatalf("routing error retried: %+v", res)
	}
	want := sim.HopLimitError(1).Error()
	if res.Sim.Err == nil || res.Sim.Err.Error() != want {
		t.Fatalf("error %v, want %q", res.Sim.Err, want)
	}
	// Prepare errors surface the same way.
	res = Deliver(g, r, 0, -3, 0, in, DefaultReliability, 1)
	if res.Sim.Err == nil || res.Attempts != 1 {
		t.Fatalf("prepare error not surfaced once: %+v", res)
	}
}

func TestLatencyAccountsVirtualTime(t *testing.T) {
	g, r := pathFixture(t, 5)
	in := NewInjector(FaultPlan{HopLatency: 2})
	res := Deliver(g, r, 0, 4, 0, in, Reliability{}, 0)
	if !res.Delivered {
		t.Fatal(res.Sim.Err)
	}
	if want := 8.0; math.Abs(res.Time-want) > 1e-9 {
		t.Fatalf("4 hops at latency 2 took %v, want %v", res.Time, want)
	}
	// Jitter only widens hops.
	in = NewInjector(FaultPlan{Seed: 5, HopLatency: 2, LatencyJitter: 0.5})
	res = Deliver(g, r, 0, 4, 0, in, Reliability{}, 0)
	if res.Time < 8 || res.Time > 12 {
		t.Fatalf("jittered time %v outside [8, 12]", res.Time)
	}
}

func TestWindowSemantics(t *testing.T) {
	cases := []struct {
		w    Window
		t    float64
		want bool
	}{
		{Window{From: 1, Until: 2}, 0.5, false},
		{Window{From: 1, Until: 2}, 1, true},
		{Window{From: 1, Until: 2}, 2, false},
		{Window{From: 1}, 1e9, true}, // Until <= From: permanent
		{Window{From: 3, Until: 3}, 4, true},
		{Window{}, 0, true}, // zero window: down forever from 0
	}
	for i, c := range cases {
		if got := c.w.covers(c.t); got != c.want {
			t.Errorf("case %d: %+v covers(%v) = %v, want %v", i, c.w, c.t, got, c.want)
		}
	}
}

func TestHopLimitErrorMentionsBudget(t *testing.T) {
	if !strings.Contains(sim.HopLimitError(42).Error(), "42") {
		t.Fatal("hop limit error does not name the budget")
	}
}
