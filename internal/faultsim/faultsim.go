// Package faultsim injects faults into routing-scheme executions: lossy
// links, per-hop latency, edge outages and node churn, driven by a
// seeded deterministic FaultPlan, with a source-side reliability layer
// (retries with exponential backoff and jitter, per-delivery deadline).
//
// It executes deliveries through the exact same sim.Router step
// functions as internal/sim — the fault layer sits between hops, never
// inside a forwarding decision, so the local-decision property the
// paper's schemes are analyzed under is preserved: a node's table and
// the packet header alone determine the next hop, and faults only decide
// whether that hop's transmission survives.
//
// Determinism: every random draw is a pure hash of
// (plan seed, delivery id, attempt, hop, draw kind). Two runs of the
// same plan over the same deliveries produce byte-identical results
// regardless of scheduling, and attempt 0 of a retried delivery sees
// exactly the draws an unretried delivery sees — which is why enabling
// retries can only grow the delivered set.
//
// This package is bound by the repo's deterministic ruleset: its
// outputs must be a pure function of explicit seeds (determinlint
// enforces the source-level contract; see DESIGN.md §Static analysis).
//
//determinlint:deterministic
package faultsim

import (
	"fmt"
	"math"

	"compactrouting/internal/graph"
	"compactrouting/internal/sim"
	"compactrouting/internal/trace"
)

// Window is a half-open outage interval [From, Until) in virtual time.
// Until <= From means the outage is permanent from From on.
type Window struct {
	From, Until float64
}

// covers reports whether t falls inside the window.
func (w Window) covers(t float64) bool {
	return t >= w.From && (w.Until <= w.From || t < w.Until)
}

// NodeOutage takes a node down for a window: packets arriving at (or
// originating from) the node while it is down are lost.
type NodeOutage struct {
	Node int
	Window
}

// EdgeOutage takes an undirected edge down for a window: transmissions
// over it while it is down are lost. A permanent outage from time 0
// models edge deletion.
type EdgeOutage struct {
	U, V int
	Window
}

// EdgeLoss overrides the plan-wide loss probability on one undirected
// edge.
type EdgeLoss struct {
	U, V int
	Loss float64
}

// FaultPlan describes what is injected. The zero value injects nothing:
// executions are hop-identical to internal/sim's.
type FaultPlan struct {
	// Seed keys every random draw. Two plans with equal fields produce
	// identical fault sequences.
	Seed int64
	// Loss is the probability that any single edge transmission is
	// dropped (per hop, per attempt).
	Loss float64
	// EdgeLoss overrides Loss on specific edges.
	EdgeLoss []EdgeLoss
	// HopLatency is the virtual time one hop takes.
	HopLatency float64
	// LatencyJitter widens each hop to HopLatency * (1 + u*LatencyJitter)
	// with u uniform in [0,1).
	LatencyJitter float64
	// NodeOutages is the churn schedule: nodes down during windows.
	NodeOutages []NodeOutage
	// EdgeOutages is the link-failure schedule.
	EdgeOutages []EdgeOutage
}

// Reliability is the source-side retry policy. The zero value sends
// exactly once (no retries, no deadline).
type Reliability struct {
	// MaxAttempts bounds total transmissions per delivery; <= 0 means 1.
	MaxAttempts int
	// BaseBackoff is the virtual-time wait before the first retry; each
	// further retry doubles it (exponential backoff).
	BaseBackoff float64
	// MaxBackoff caps the exponential growth (0 = uncapped).
	MaxBackoff float64
	// Jitter randomizes each backoff to backoff * (1 + u*Jitter),
	// u uniform in [0,1), desynchronizing retry storms.
	Jitter float64
	// Deadline abandons the delivery once the next attempt would start
	// after this virtual time (0 = no deadline).
	Deadline float64
}

// DefaultReliability is a sensible retry policy for experiments: four
// attempts, exponential backoff 1, 2, 4 capped at 8, half-width jitter.
var DefaultReliability = Reliability{
	MaxAttempts: 4,
	BaseBackoff: 1,
	MaxBackoff:  8,
	Jitter:      0.5,
}

// Result is the outcome of one delivery under faults.
type Result struct {
	// Sim is the walk of the final attempt (the successful one when
	// Delivered, otherwise the last try). Sim.Err is set only for
	// non-retryable routing errors, never for injected drops.
	Sim sim.Result
	// Delivered reports whether any attempt reached the destination.
	Delivered bool
	// Attempts is the number of transmissions performed (>= 1).
	Attempts int
	// Drops counts packets lost to injected faults across all attempts.
	Drops int
	// Time is the virtual time when the delivery completed (success,
	// final drop, or routing error).
	Time float64
}

// edgeKey normalizes an undirected edge for map lookup.
type edgeKey struct{ u, v int }

func mkEdge(u, v int) edgeKey {
	if u > v {
		u, v = v, u
	}
	return edgeKey{u, v}
}

// Injector is a FaultPlan compiled for O(1) per-hop queries. It is
// immutable and safe for concurrent use.
type Injector struct {
	plan        FaultPlan
	edgeLoss    map[edgeKey]float64
	nodeWindows map[int][]Window
	edgeWindows map[edgeKey][]Window
}

// NewInjector compiles the plan.
func NewInjector(plan FaultPlan) *Injector {
	in := &Injector{plan: plan}
	if len(plan.EdgeLoss) > 0 {
		in.edgeLoss = make(map[edgeKey]float64, len(plan.EdgeLoss))
		for _, el := range plan.EdgeLoss {
			in.edgeLoss[mkEdge(el.U, el.V)] = el.Loss
		}
	}
	if len(plan.NodeOutages) > 0 {
		in.nodeWindows = make(map[int][]Window)
		for _, no := range plan.NodeOutages {
			in.nodeWindows[no.Node] = append(in.nodeWindows[no.Node], no.Window)
		}
	}
	if len(plan.EdgeOutages) > 0 {
		in.edgeWindows = make(map[edgeKey][]Window)
		for _, eo := range plan.EdgeOutages {
			k := mkEdge(eo.U, eo.V)
			in.edgeWindows[k] = append(in.edgeWindows[k], eo.Window)
		}
	}
	return in
}

// Plan returns the compiled plan.
func (in *Injector) Plan() FaultPlan { return in.plan }

// lossOn returns the loss probability of edge (u,v).
func (in *Injector) lossOn(u, v int) float64 {
	if in.edgeLoss != nil {
		if p, ok := in.edgeLoss[mkEdge(u, v)]; ok {
			return p
		}
	}
	return in.plan.Loss
}

// nodeUp reports whether v is up at time t.
func (in *Injector) nodeUp(v int, t float64) bool {
	for _, w := range in.nodeWindows[v] {
		if w.covers(t) {
			return false
		}
	}
	return true
}

// edgeUp reports whether edge (u,v) is up at time t.
func (in *Injector) edgeUp(u, v int, t float64) bool {
	if in.edgeWindows == nil {
		return true
	}
	for _, w := range in.edgeWindows[mkEdge(u, v)] {
		if w.covers(t) {
			return false
		}
	}
	return true
}

// TransmitOK decides the fate of one raw link transmission from u to v
// at virtual time t: sender and edge and receiver must be up, and the
// transmission must survive the edge's loss draw. id and attempt key
// the draw the way delivery id and attempt number key packet-level
// draws, so the outcome is a pure hash of (seed, id, attempt) — the
// contract the dist engine's link layer relies on for byte-identical
// reruns (see internal/dist).
func (in *Injector) TransmitOK(u, v int, t float64, id, attempt uint64) bool {
	if !in.nodeUp(u, t) || !in.edgeUp(u, v, t) {
		return false
	}
	if p := in.lossOn(u, v); p > 0 && in.unit(drawLoss, id, attempt, 0) < p {
		return false
	}
	return in.nodeUp(v, t)
}

// Draw kinds, mixed into the hash so the same (delivery, attempt, hop)
// coordinate yields independent streams per purpose.
const (
	drawLoss uint64 = iota + 1
	drawLatency
	drawBackoff
)

// mix64 is SplitMix64's finalizer: a bijective avalanche over uint64.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// unit returns a deterministic uniform draw in [0,1) keyed by the seed
// and the given coordinates.
func (in *Injector) unit(kind, delivery, attempt, hop uint64) float64 {
	h := mix64(uint64(in.plan.Seed) ^ 0x9e3779b97f4a7c15)
	h = mix64(h ^ kind)
	h = mix64(h ^ delivery)
	h = mix64(h ^ attempt)
	h = mix64(h ^ hop)
	return float64(h>>11) / (1 << 53)
}

// hopLatency returns the (jittered) virtual time of one hop.
func (in *Injector) hopLatency(delivery, attempt, hop uint64) float64 {
	if in.plan.HopLatency == 0 {
		return 0
	}
	d := in.plan.HopLatency
	if in.plan.LatencyJitter > 0 {
		d *= 1 + in.plan.LatencyJitter*in.unit(drawLatency, delivery, attempt, hop)
	}
	return d
}

// backoff returns the jittered wait before attempt number attempt
// (attempt >= 1: the wait after the attempt-1'th transmission failed).
func (in *Injector) backoff(rel Reliability, delivery, attempt uint64) float64 {
	b := rel.BaseBackoff * math.Pow(2, float64(attempt-1))
	if rel.MaxBackoff > 0 && b > rel.MaxBackoff {
		b = rel.MaxBackoff
	}
	if rel.Jitter > 0 {
		b *= 1 + rel.Jitter*in.unit(drawBackoff, delivery, attempt, 0)
	}
	return b
}

// attempt walks one transmission through the router's step functions,
// mirroring sim.RouteOnce hop for hop; faults may drop the packet
// between steps. It returns the partial or complete walk, whether the
// packet was dropped by an injected fault, and the virtual end time.
// res.Err is set only for non-retryable routing errors.
func attempt[H sim.Header](g *graph.Graph, r sim.Router[H], src, dst, maxHops int,
	in *Injector, id, att uint64, start float64, tr *trace.Trace) (res sim.Result, dropped bool, end float64) {
	t := start
	res = sim.Result{Src: src}
	h, err := r.Prepare(dst)
	if err != nil {
		if tr != nil {
			tr.Begin(int32(src), 0)
		}
		res.Err = err
		return res, false, t
	}
	res.Path = []int{src}
	res.MaxHeaderBits = h.Bits()
	// Each attempt restarts the trace: the surviving hop log describes
	// the final attempt's walk, matching Result.Sim.
	if tr != nil {
		tr.Begin(int32(src), int32(res.MaxHeaderBits))
	}
	if !in.nodeUp(src, t) {
		return res, true, t
	}
	at := src
	for {
		next, nh, arrived, err := r.Step(at, h)
		if err != nil {
			res.Err = fmt.Errorf("sim: step at %d: %w", at, err)
			return res, false, t
		}
		if arrived {
			res.Dst = at
			if tr != nil {
				tr.Dst = int32(at)
			}
			return res, false, t
		}
		if len(res.Path) > maxHops {
			res.Err = sim.HopLimitError(maxHops)
			return res, false, t
		}
		w, ok := g.EdgeWeight(at, next)
		if !ok {
			res.Err = fmt.Errorf("sim: step at %d forwarded to non-neighbor %d", at, next)
			return res, false, t
		}
		hop := uint64(len(res.Path) - 1)
		// The transmission leaves at time t over edge (at, next)...
		if !in.edgeUp(at, next, t) {
			return res, true, t
		}
		if p := in.lossOn(at, next); p > 0 && in.unit(drawLoss, id, att, hop) < p {
			return res, true, t
		}
		// ...and arrives after the hop's latency, when the receiving
		// node must be up.
		t += in.hopLatency(id, att, hop)
		if !in.nodeUp(next, t) {
			return res, true, t
		}
		b := nh.Bits()
		if b > res.MaxHeaderBits {
			res.MaxHeaderBits = b
		}
		if tr != nil {
			tr.Hops = append(tr.Hops, trace.Hop{
				From:       int32(at),
				To:         int32(next),
				Phase:      sim.PhaseOf(nh),
				HeaderBits: int32(b),
				Dist:       w,
			})
		}
		h = nh
		res.Path = append(res.Path, next)
		res.Cost += w
		at = next
	}
}

// Deliver executes one delivery under the injector's faults with the
// given retry policy. id must be unique per delivery (the delivery's
// index, or any stable key): it selects the delivery's random stream.
//
// Virtual time is per delivery and starts at 0 at the first
// transmission; the plan's outage windows are interpreted on that
// clock.
func Deliver[H sim.Header](g *graph.Graph, r sim.Router[H], src, dst, maxHops int,
	in *Injector, rel Reliability, id uint64) Result {
	return DeliverTraced(g, r, src, dst, maxHops, in, rel, id, nil)
}

// DeliverTraced is Deliver with an optional trace. Each attempt resets
// the trace, so the surviving hop log matches Result.Sim (the final
// attempt's walk); the trace's Attempts and Drops fields report the
// whole delivery. A nil tr takes the exact Deliver path.
func DeliverTraced[H sim.Header](g *graph.Graph, r sim.Router[H], src, dst, maxHops int,
	in *Injector, rel Reliability, id uint64, tr *trace.Trace) Result {
	if maxHops <= 0 {
		maxHops = 8 * g.N()
	}
	maxAttempts := rel.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 1
	}
	var out Result
	t := 0.0
	for att := 0; ; att++ {
		res, dropped, end := attempt(g, r, src, dst, maxHops, in, id, uint64(att), t, tr)
		out.Attempts++
		out.Sim = res
		out.Time = end
		if res.Err != nil {
			break // routing error: retrying cannot change a pure step function
		}
		if !dropped {
			out.Delivered = true
			break
		}
		out.Drops++
		if out.Attempts >= maxAttempts {
			break
		}
		t = end + in.backoff(rel, id, uint64(att+1))
		if rel.Deadline > 0 && t > rel.Deadline {
			break
		}
	}
	if tr != nil {
		tr.Attempts = int32(out.Attempts)
		tr.Drops = int32(out.Drops)
	}
	return out
}

// Run executes the deliveries under the plan, one result per delivery
// (index-aligned, delivery i using random stream i). With a zero plan
// and zero Reliability every result's Sim field is identical to what
// sim.Run / sim.RouteOnce produce for the same delivery.
func Run[H sim.Header](g *graph.Graph, r sim.Router[H], deliveries []sim.Delivery,
	maxHops int, plan FaultPlan, rel Reliability) []Result {
	in := NewInjector(plan)
	out := make([]Result, len(deliveries))
	for i, d := range deliveries {
		out[i] = Deliver(g, r, d.Src, d.Dst, maxHops, in, rel, uint64(i))
	}
	return out
}
