package faultsim

import (
	"bytes"
	"math"
	"testing"

	"compactrouting/internal/baseline"
	"compactrouting/internal/core"
	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
	"compactrouting/internal/sim"
	"compactrouting/internal/trace"
)

func traceFixture(t *testing.T) (*graph.Graph, *metric.APSP) {
	t.Helper()
	g, _, err := graph.RandomGeometric(64, 0.25, 9)
	if err != nil {
		t.Fatal(err)
	}
	return g, metric.NewAPSP(g)
}

// TestDeliverTracedFinalAttempt pins the trace semantics under faults:
// the surviving hop log describes the FINAL attempt's walk (matching
// Result.Sim), and the trace's Attempts/Drops report the whole
// delivery.
func TestDeliverTracedFinalAttempt(t *testing.T) {
	g, a := traceFixture(t)
	s := baseline.NewFullTable(g, a)
	r := sim.FullTableRouter{S: s}
	in := NewInjector(FaultPlan{Seed: 7, Loss: 0.15})
	rel := DefaultReliability

	pairs := core.SamplePairs(g.N(), 40, 13)
	sawRetry := false
	for i, p := range pairs {
		tr := &trace.Trace{}
		res := DeliverTraced(g, r, p[0], p[1], 0, in, rel, uint64(i), tr)
		if res.Sim.Err != nil {
			t.Fatalf("pair (%d,%d): %v", p[0], p[1], res.Sim.Err)
		}
		if int(tr.Attempts) != res.Attempts || int(tr.Drops) != res.Drops {
			t.Fatalf("pair (%d,%d): trace attempts/drops (%d,%d) != result (%d,%d)",
				p[0], p[1], tr.Attempts, tr.Drops, res.Attempts, res.Drops)
		}
		if res.Attempts > 1 {
			sawRetry = true
		}
		// The hop log is the final attempt's walk, whether it arrived or
		// was dropped mid-way.
		if len(tr.Hops) != len(res.Sim.Path)-1 {
			t.Fatalf("pair (%d,%d): %d hop records for final walk of %d hops",
				p[0], p[1], len(tr.Hops), len(res.Sim.Path)-1)
		}
		for j, h := range tr.Hops {
			if int(h.From) != res.Sim.Path[j] || int(h.To) != res.Sim.Path[j+1] {
				t.Fatalf("pair (%d,%d) hop %d: trace %d->%d vs path %d->%d",
					p[0], p[1], j, h.From, h.To, res.Sim.Path[j], res.Sim.Path[j+1])
			}
		}
		if math.Float64bits(tr.Cost()) != math.Float64bits(res.Sim.Cost) {
			t.Fatalf("pair (%d,%d): trace cost %v != sim cost %v", p[0], p[1], tr.Cost(), res.Sim.Cost)
		}
		if res.Delivered && int(tr.Dst) != res.Sim.Dst {
			t.Fatalf("pair (%d,%d): trace dst %d != sim dst %d", p[0], p[1], tr.Dst, res.Sim.Dst)
		}
	}
	if !sawRetry {
		t.Fatal("fault plan injected no retries; the final-attempt property went unexercised")
	}
}

// TestDeliverTracedDeterministic pins byte-determinism under fault
// injection: the same (plan, delivery id) draws the same faults, so the
// trace replays bit-identically.
func TestDeliverTracedDeterministic(t *testing.T) {
	g, a := traceFixture(t)
	s := baseline.NewFullTable(g, a)
	r := sim.FullTableRouter{S: s}
	rel := DefaultReliability

	for id := uint64(0); id < 20; id++ {
		in1 := NewInjector(FaultPlan{Seed: 3, Loss: 0.2})
		in2 := NewInjector(FaultPlan{Seed: 3, Loss: 0.2})
		tr1, tr2 := &trace.Trace{}, &trace.Trace{}
		DeliverTraced(g, r, 1, 40, 0, in1, rel, id, tr1)
		DeliverTraced(g, r, 1, 40, 0, in2, rel, id, tr2)
		if !bytes.Equal(tr1.Marshal(), tr2.Marshal()) {
			t.Fatalf("delivery %d: traced replay differs under identical fault plans", id)
		}
	}
}

// TestDeliverTracedMatchesUntraced pins that attaching a trace does not
// perturb the delivery: same faults, same walk, same outcome.
func TestDeliverTracedMatchesUntraced(t *testing.T) {
	g, a := traceFixture(t)
	s := baseline.NewFullTable(g, a)
	r := sim.FullTableRouter{S: s}
	rel := DefaultReliability

	for id := uint64(0); id < 20; id++ {
		inU := NewInjector(FaultPlan{Seed: 5, Loss: 0.2})
		inT := NewInjector(FaultPlan{Seed: 5, Loss: 0.2})
		u := Deliver(g, r, 2, 50, 0, inU, rel, id)
		tr := &trace.Trace{}
		tc := DeliverTraced(g, r, 2, 50, 0, inT, rel, id, tr)
		if u.Delivered != tc.Delivered || u.Attempts != tc.Attempts || u.Drops != tc.Drops ||
			math.Float64bits(u.Sim.Cost) != math.Float64bits(tc.Sim.Cost) {
			t.Fatalf("delivery %d: traced outcome %+v != untraced %+v", id, tc, u)
		}
	}
}
