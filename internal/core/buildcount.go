package core

import "sync/atomic"

// schemeBuilds counts top-level scheme constructor invocations across
// the process. The snapshot plane's load-and-serve guarantee is pinned
// against it: restoring tables from a snapshot and serving queries must
// not move this counter (see the cold-start test in internal/server).
var schemeBuilds atomic.Uint64

// NoteSchemeBuild records one scheme constructor invocation. Every
// top-level constructor (labeled.NewSimple*/NewScaleFree,
// nameind.NewSimple/NewScaleFree, baseline.NewFullTable/NewSingleTree)
// calls it on entry.
func NoteSchemeBuild() { schemeBuilds.Add(1) }

// SchemeBuilds returns the process-wide constructor invocation count.
func SchemeBuilds() uint64 { return schemeBuilds.Load() }
