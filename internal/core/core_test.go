package core

import (
	"math"
	"testing"

	"compactrouting/internal/graph"
)

func pathGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := graph.Path(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTraceHopsAndCost(t *testing.T) {
	g := pathGraph(t, 5)
	tr := NewTrace(g, 0)
	if tr.At() != 0 {
		t.Fatalf("At = %d", tr.At())
	}
	if err := tr.Hop(1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Hop(2); err != nil {
		t.Fatal(err)
	}
	if tr.Cost() != 4 || tr.Steps() != 2 {
		t.Fatalf("cost=%v steps=%d", tr.Cost(), tr.Steps())
	}
	if err := tr.Hop(4); err == nil {
		t.Fatal("non-edge hop accepted")
	}
	r, err := tr.Finish(2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Src != 0 || r.Dst != 2 || r.Cost != 4 || len(r.Path) != 3 {
		t.Fatalf("route = %+v", r)
	}
}

func TestTraceWalk(t *testing.T) {
	g := pathGraph(t, 6)
	tr := NewTrace(g, 1)
	if err := tr.Walk([]int{1, 2, 3, 2}); err != nil {
		t.Fatal(err)
	}
	if tr.Cost() != 6 {
		t.Fatalf("cost = %v", tr.Cost())
	}
	if err := tr.Walk([]int{3, 4}); err == nil {
		t.Fatal("walk from wrong node accepted")
	}
	if err := tr.Walk(nil); err == nil {
		t.Fatal("empty walk accepted")
	}
}

func TestTraceFinishWrongNode(t *testing.T) {
	g := pathGraph(t, 3)
	tr := NewTrace(g, 0)
	if _, err := tr.Finish(2); err == nil {
		t.Fatal("finish at wrong node accepted")
	}
}

func TestTraceHeaderMax(t *testing.T) {
	g := pathGraph(t, 3)
	tr := NewTrace(g, 0)
	tr.Header(10)
	tr.Header(5)
	tr.Header(25)
	r, err := tr.Finish(0)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxHeaderBits != 25 {
		t.Fatalf("MaxHeaderBits = %d", r.MaxHeaderBits)
	}
}

func TestRouteStretch(t *testing.T) {
	r := &Route{Cost: 6}
	if r.Stretch(2) != 3 {
		t.Fatalf("stretch = %v", r.Stretch(2))
	}
	if r.Stretch(0) != 1 {
		t.Fatalf("zero-distance stretch = %v", r.Stretch(0))
	}
}

func TestSummaryQuantiles(t *testing.T) {
	stretches := []float64{1, 1, 1, 2, 10}
	st := summarize(stretches, 7, 1)
	if st.Count != 5 || st.Max != 10 || st.MaxHeader != 7 || st.Fallbacks != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.P50 != 1 {
		t.Fatalf("P50 = %v", st.P50)
	}
	if math.Abs(st.Mean-3) > 1e-12 {
		t.Fatalf("Mean = %v", st.Mean)
	}
	if st.P99 != 10 {
		t.Fatalf("P99 = %v", st.P99)
	}
	if empty := summarize(nil, 0, 0); empty.Count != 0 {
		t.Fatalf("empty = %+v", empty)
	}
}

func TestAllPairs(t *testing.T) {
	pairs := AllPairs(4)
	if len(pairs) != 12 {
		t.Fatalf("len = %d", len(pairs))
	}
	seen := map[[2]int]bool{}
	for _, p := range pairs {
		if p[0] == p[1] || seen[p] {
			t.Fatalf("bad pair %v", p)
		}
		seen[p] = true
	}
}

func TestSamplePairsDeterministic(t *testing.T) {
	a := SamplePairs(50, 100, 7)
	b := SamplePairs(50, 100, 7)
	if len(a) != 100 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling not deterministic")
		}
		if a[i][0] == a[i][1] || a[i][0] >= 50 || a[i][1] >= 50 {
			t.Fatalf("bad pair %v", a[i])
		}
	}
	if SamplePairs(1, 10, 1) != nil {
		t.Fatal("n=1 should yield no pairs")
	}
}

func TestTables(t *testing.T) {
	sizes := []int{10, 30, 20}
	st := Tables(func(v int) int { return sizes[v] }, 3)
	if st.MaxBits != 30 || st.TotalBits != 60 || st.MeanBits != 20 {
		t.Fatalf("stats = %+v", st)
	}
}
