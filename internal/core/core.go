// Package core defines the types shared by every routing scheme in this
// repository: route traces with cost and header accounting, the labeled
// and name-independent scheme interfaces, and stretch/storage evaluation
// helpers used by the experiment harness.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"compactrouting/internal/graph"
	"compactrouting/internal/trace"
)

// Route is the trace of one packet delivery.
type Route struct {
	Src, Dst int
	// Path is the physical node walk, Path[0] == Src and the last
	// element == Dst. Consecutive entries are graph edges.
	Path []int
	// Cost is the summed edge weight of Path.
	Cost float64
	// MaxHeaderBits is the largest packet header observed en route.
	MaxHeaderBits int
	// Fallback marks deliveries that used a scheme's safety net rather
	// than its analyzed path (should be zero on doubling workloads).
	Fallback bool
}

// Stretch returns Cost divided by the optimal distance (1 for
// self-routes of zero distance).
func (r *Route) Stretch(optimal float64) float64 {
	if optimal == 0 {
		return 1
	}
	return r.Cost / optimal
}

// Trace incrementally builds a Route's walk, validating that each hop
// is a graph edge and accumulating cost.
type Trace struct {
	g    *graph.Graph
	path []int
	cost float64
	hdr  int
	fall bool
}

// NewTrace starts a trace at src.
func NewTrace(g *graph.Graph, src int) *Trace {
	return &Trace{g: g, path: []int{src}}
}

// At returns the current node.
func (t *Trace) At() int { return t.path[len(t.path)-1] }

// Hop moves to a neighbor of the current node.
func (t *Trace) Hop(to int) error {
	w, ok := t.g.EdgeWeight(t.At(), to)
	if !ok {
		return fmt.Errorf("core: hop %d -> %d is not an edge", t.At(), to)
	}
	t.path = append(t.path, to)
	t.cost += w
	return nil
}

// Walk appends a node path (whose first element must be the current
// node).
func (t *Trace) Walk(path []int) error {
	if len(path) == 0 {
		return errors.New("core: empty walk")
	}
	if path[0] != t.At() {
		return fmt.Errorf("core: walk starts at %d, trace is at %d", path[0], t.At())
	}
	for _, v := range path[1:] {
		if err := t.Hop(v); err != nil {
			return err
		}
	}
	return nil
}

// Header records that the packet carried a header of the given size (in
// bits) during the last step; the maximum is kept.
func (t *Trace) Header(bits int) {
	if bits > t.hdr {
		t.hdr = bits
	}
}

// MarkFallback flags the route as having used a safety net.
func (t *Trace) MarkFallback() { t.fall = true }

// Cost returns the accumulated cost so far.
func (t *Trace) Cost() float64 { return t.cost }

// Steps returns the number of hops taken so far.
func (t *Trace) Steps() int { return len(t.path) - 1 }

// Finish validates the destination and returns the Route.
func (t *Trace) Finish(dst int) (*Route, error) {
	if t.At() != dst {
		return nil, fmt.Errorf("core: route ended at %d, want %d", t.At(), dst)
	}
	return &Route{
		Src:           t.path[0],
		Dst:           dst,
		Path:          t.path,
		Cost:          t.cost,
		MaxHeaderBits: t.hdr,
		Fallback:      t.fall,
	}, nil
}

// LabeledScheme is a compact routing scheme in the labeled model: the
// designer assigns each node a small label and sources must know the
// destination's label.
type LabeledScheme interface {
	// SchemeName identifies the scheme in reports.
	SchemeName() string
	// LabelOf returns v's routing label (an integer in [0, n) for the
	// paper's ceil(log n)-bit labels).
	LabelOf(v int) int
	// RouteToLabel delivers a packet from src to the node labeled
	// label, simulating local decisions hop by hop.
	RouteToLabel(src, label int) (*Route, error)
	// TableBits returns the routing table size of v in bits.
	TableBits(v int) int
}

// NameIndependentScheme is a compact routing scheme that works on top
// of arbitrary original node names.
type NameIndependentScheme interface {
	SchemeName() string
	// NameOf returns v's (adversarial) original name.
	NameOf(v int) int
	// RouteToName delivers a packet from src to the node named name.
	RouteToName(src, name int) (*Route, error)
	TableBits(v int) int
}

// StretchStats summarizes stretch over a set of routed pairs.
type StretchStats struct {
	Count     int
	Max       float64
	Mean      float64
	P50       float64
	P95       float64
	P99       float64
	MaxHeader int
	Fallbacks int
	// Hist counts stretches into the shared trace.StretchBucketEdges
	// buckets (one extra overflow bucket at the end), so experiment
	// reports and the serving layer's /metrics bucket identically.
	Hist []int
}

// SummarizeStretches computes the full stretch summary — order
// statistics plus the shared-bucket histogram — over the given
// stretches. The slice is sorted in place.
func SummarizeStretches(stretches []float64, maxHeader, fallbacks int) StretchStats {
	return summarize(stretches, maxHeader, fallbacks)
}

func summarize(stretches []float64, maxHeader, fallbacks int) StretchStats {
	if len(stretches) == 0 {
		return StretchStats{}
	}
	hist := trace.StretchHistogram(stretches)
	sort.Float64s(stretches)
	sum := 0.0
	for _, s := range stretches {
		sum += s
	}
	q := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(stretches)))) - 1
		if i < 0 {
			i = 0
		}
		return stretches[i]
	}
	return StretchStats{
		Count:     len(stretches),
		Max:       stretches[len(stretches)-1],
		Mean:      sum / float64(len(stretches)),
		P50:       q(0.50),
		P95:       q(0.95),
		P99:       q(0.99),
		MaxHeader: maxHeader,
		Fallbacks: fallbacks,
		Hist:      hist,
	}
}

// DistOracle is the slice of the APSP oracle evaluation needs.
type DistOracle interface {
	Dist(u, v int) float64
}

// EvaluateLabeled routes every pair in pairs and summarizes stretch.
func EvaluateLabeled(s LabeledScheme, d DistOracle, pairs [][2]int) (StretchStats, error) {
	stretches := make([]float64, 0, len(pairs))
	maxHdr, falls := 0, 0
	for _, p := range pairs {
		r, err := s.RouteToLabel(p[0], s.LabelOf(p[1]))
		if err != nil {
			return StretchStats{}, fmt.Errorf("route %d -> %d: %w", p[0], p[1], err)
		}
		stretches = append(stretches, r.Stretch(d.Dist(p[0], p[1])))
		if r.MaxHeaderBits > maxHdr {
			maxHdr = r.MaxHeaderBits
		}
		if r.Fallback {
			falls++
		}
	}
	return summarize(stretches, maxHdr, falls), nil
}

// EvaluateNameIndependent routes every pair in pairs by destination
// name and summarizes stretch.
func EvaluateNameIndependent(s NameIndependentScheme, d DistOracle, pairs [][2]int) (StretchStats, error) {
	stretches := make([]float64, 0, len(pairs))
	maxHdr, falls := 0, 0
	for _, p := range pairs {
		r, err := s.RouteToName(p[0], s.NameOf(p[1]))
		if err != nil {
			return StretchStats{}, fmt.Errorf("route %d -> name of %d: %w", p[0], p[1], err)
		}
		stretches = append(stretches, r.Stretch(d.Dist(p[0], p[1])))
		if r.MaxHeaderBits > maxHdr {
			maxHdr = r.MaxHeaderBits
		}
		if r.Fallback {
			falls++
		}
	}
	return summarize(stretches, maxHdr, falls), nil
}

// TableStats summarizes per-node routing-table sizes in bits.
type TableStats struct {
	MaxBits   int
	MeanBits  float64
	TotalBits int
}

// Tables reports table-size statistics for any scheme exposing
// TableBits over n nodes.
func Tables(tableBits func(v int) int, n int) TableStats {
	var st TableStats
	for v := 0; v < n; v++ {
		b := tableBits(v)
		st.TotalBits += b
		if b > st.MaxBits {
			st.MaxBits = b
		}
	}
	st.MeanBits = float64(st.TotalBits) / float64(n)
	return st
}

// AllPairs enumerates every ordered pair of distinct nodes.
func AllPairs(n int) [][2]int {
	out := make([][2]int, 0, n*(n-1))
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// SamplePairs returns count pseudo-random ordered pairs of distinct
// nodes, deterministically from seed (linear congruential; good enough
// for workload sampling and dependency-free).
func SamplePairs(n, count int, seed int64) [][2]int {
	if n < 2 {
		return nil
	}
	out := make([][2]int, 0, count)
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func() uint64 {
		state = state*2862933555777941757 + 3037000493
		return state >> 16
	}
	for len(out) < count {
		u := int(next() % uint64(n))
		v := int(next() % uint64(n))
		if u != v {
			out = append(out, [2]int{u, v})
		}
	}
	return out
}
