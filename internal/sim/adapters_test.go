package sim

import (
	"math"
	"testing"

	"compactrouting/internal/baseline"
	"compactrouting/internal/core"
	"compactrouting/internal/graph"
	"compactrouting/internal/labeled"
	"compactrouting/internal/metric"
	"compactrouting/internal/nameind"
)

// TestAdaptersMatchSequentialRouters drives every adapter in
// adapters.go through RouteOnce on a small fixed graph and asserts the
// walk is identical to the scheme's own RouteTo* method: the adapters
// must be pure plumbing, never a second routing implementation.
func TestAdaptersMatchSequentialRouters(t *testing.T) {
	g, err := graph.Grid(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	a := metric.NewAPSP(g)
	n := g.N()

	simple, err := labeled.NewSimple(g, a, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	free, err := labeled.NewScaleFree(g, a, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	nm := nameind.RandomNaming(n, 3)
	niUnder, err := labeled.NewSimple(g, a, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	ni, err := nameind.NewSimple(g, a, nm, niUnder, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	sfUnder, err := labeled.NewScaleFree(g, a, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	sfni, err := nameind.NewScaleFree(g, a, nm, sfUnder, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	full := baseline.NewFullTable(g, a)
	tree, err := baseline.NewSingleTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Each case erases the adapter's header type behind a closure so
	// one table drives all six adapters.
	cases := []struct {
		name string
		// addr maps a destination node to the adapter's address space.
		addr func(dst int) int
		// adapter routes src -> addr(dst) through RouteOnce.
		adapter func(src, addr int) Result
		// sequential is the scheme's own driver for the same address.
		sequential func(src, addr int) (*core.Route, error)
	}{
		{
			name: "SimpleLabeledRouter",
			addr: simple.LabelOf,
			adapter: func(src, addr int) Result {
				return RouteOnce[labeled.SimpleHeader](g, SimpleLabeledRouter{S: simple}, src, addr, 0)
			},
			sequential: simple.RouteToLabel,
		},
		{
			name: "ScaleFreeLabeledRouter",
			addr: free.LabelOf,
			adapter: func(src, addr int) Result {
				return RouteOnce[labeled.SFHeader](g, ScaleFreeLabeledRouter{S: free}, src, addr, 64*n)
			},
			sequential: free.RouteToLabel,
		},
		{
			name: "NameIndependentRouter",
			addr: nm.NameOf,
			adapter: func(src, addr int) Result {
				return RouteOnce[nameind.NIHeader](g, NameIndependentRouter{S: ni}, src, addr, 256*n)
			},
			sequential: ni.RouteToName,
		},
		{
			name: "ScaleFreeNameIndependentRouter",
			addr: nm.NameOf,
			adapter: func(src, addr int) Result {
				return RouteOnce[nameind.SFNIHeader](g, ScaleFreeNameIndependentRouter{S: sfni}, src, addr, 512*n)
			},
			sequential: sfni.RouteToName,
		},
		{
			name: "FullTableRouter",
			addr: func(dst int) int { return dst },
			adapter: func(src, addr int) Result {
				return RouteOnce[baseline.Destination](g, FullTableRouter{S: full}, src, addr, 0)
			},
			sequential: full.RouteToLabel,
		},
		{
			name: "SingleTreeRouter",
			addr: func(dst int) int { return dst },
			adapter: func(src, addr int) Result {
				return RouteOnce[baseline.TreeHeader](g, SingleTreeRouter{S: tree}, src, addr, 0)
			},
			sequential: tree.RouteToLabel,
		},
	}

	pairs := core.SamplePairs(n, 120, 9)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, p := range pairs {
				addr := tc.addr(p[1])
				got := tc.adapter(p[0], addr)
				if got.Err != nil {
					t.Fatalf("pair %v: adapter failed: %v", p, got.Err)
				}
				want, err := tc.sequential(p[0], addr)
				if err != nil {
					t.Fatalf("pair %v: sequential failed: %v", p, err)
				}
				if got.Dst != p[1] {
					t.Fatalf("pair %v: arrived at %d", p, got.Dst)
				}
				if len(got.Path) != len(want.Path) {
					t.Fatalf("pair %v: adapter path %v vs sequential %v", p, got.Path, want.Path)
				}
				for k := range got.Path {
					if got.Path[k] != want.Path[k] {
						t.Fatalf("pair %v: paths diverge at hop %d: %v vs %v", p, k, got.Path, want.Path)
					}
				}
				if math.Abs(got.Cost-want.Cost) > 1e-9 {
					t.Fatalf("pair %v: cost %v vs %v", p, got.Cost, want.Cost)
				}
				// Header byte layouts differ between the step-function
				// headers and the sequential traces' accounting, so only
				// require that the adapter accounted something.
				if got.MaxHeaderBits <= 0 {
					t.Fatalf("pair %v: no header accounting", p)
				}
			}
		})
	}
}

// TestRouteOnceHopLimit mirrors Run's hop-limit behavior for the
// sequential driver.
func TestRouteOnceHopLimit(t *testing.T) {
	g, err := graph.Path(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := metric.NewAPSP(g)
	s := baseline.NewFullTable(g, a)
	res := RouteOnce[baseline.Destination](g, FullTableRouter{S: s}, 0, 9, 3)
	if res.Err == nil {
		t.Fatal("hop limit not enforced")
	}
	res = RouteOnce[baseline.Destination](g, FullTableRouter{S: s}, 0, 9, 0)
	if res.Err != nil || res.Dst != 9 || len(res.Path) != 10 {
		t.Fatalf("default hop limit run: %+v", res)
	}
}
