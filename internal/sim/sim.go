// Package sim runs routing schemes under a concurrent message-passing
// model: every node is a goroutine owning only its local state, packets
// are messages between neighbor mailboxes, and a forwarding decision is
// a pure step function of (node table, packet header).
//
// The sequential traces produced by the schemes' RouteTo* methods
// already make only local decisions, but a central loop drives them;
// this simulator removes the loop. Running the same scheme both ways
// and getting identical paths demonstrates that no hidden shared state
// leaks between hops — the distributed-correctness claim behind every
// compact routing result.
//
// This package is bound by the repo's deterministic ruleset: its
// outputs must be a pure function of explicit seeds (determinlint
// enforces the source-level contract; see DESIGN.md §Static analysis).
//
//determinlint:deterministic
package sim

import (
	"fmt"
	"sync"

	"compactrouting/internal/graph"
	"compactrouting/internal/trace"
)

// Header is an opaque packet header with a measurable size.
type Header interface {
	// Bits is called per hop on the serving hot path; implementations
	// must not allocate.
	//
	//determinlint:hotpath
	Bits() int
}

// Router is a routing scheme factored into per-node step functions.
// Prepare and Step sit on RouteLite's zero-allocation serving path, so
// implementations bound to the serving plane must not allocate per
// call (the hotpath lint rule holds RouteLite to that, and the
// server's AllocsPerRun pins hold the implementations to it).
type Router[H Header] interface {
	// Prepare returns the initial header for a delivery addressed by
	// dst (a label or a name, depending on the scheme).
	//
	//determinlint:hotpath
	Prepare(dst int) (H, error)
	// Step performs one local forwarding decision at node: the next
	// hop and updated header, or arrived == true.
	//
	//determinlint:hotpath
	Step(node int, h H) (next int, nh H, arrived bool, err error)
}

// Result is the outcome of one simulated delivery.
type Result struct {
	Src, Dst int
	// Path is the walk taken (Path[0] == Src).
	Path []int
	// Cost is the summed edge weight.
	Cost float64
	// MaxHeaderBits is the largest header en route.
	MaxHeaderBits int
	// Err reports a routing failure (nil on delivery).
	Err error
}

// packet is an in-flight message. tr, when non-nil, is the packet's
// trace; exactly one goroutine holds the packet (and hence the trace)
// at a time, and mailbox sends order the hand-offs, so the trace needs
// no lock.
type packet[H Header] struct {
	id     int
	header H
	path   []int
	cost   float64
	maxHdr int
	tr     *trace.Trace
}

// PhaseOf classifies a header for the trace layer; headers that do not
// implement trace.Phased record as PhaseDirect. The interface
// conversion boxes the header, so callers must only reach this on
// traced paths.
func PhaseOf[H Header](h H) trace.Phase {
	if p, ok := any(h).(trace.Phased); ok {
		return p.TracePhase()
	}
	return trace.PhaseDirect
}

// Delivery is one requested route: from Src to the node addressed by
// Dst (label or name, matching the Router).
type Delivery struct {
	Src, Dst int
}

// HopLimitError is the error a delivery fails with when its walk would
// exceed the hop budget. RouteOnce, Run and internal/faultsim all use
// it, so the budget semantics are pinned in one place: a walk may take
// at most maxHops hops (the arrival step at the final node is free),
// and the packet fails when a further forward would be hop maxHops+1.
func HopLimitError(maxHops int) error {
	return fmt.Errorf("sim: packet exceeded hop budget %d", maxHops)
}

// RouteOnce drives one delivery through the router's step function
// sequentially: Prepare, then Step until arrival, validating every hop
// against the graph. It is the cheap per-query path used by serving
// layers (internal/server), while Run is the goroutine-per-node
// distributed check. Both execute the exact same step functions, so a
// route agreed on by the two is a pure function of (tables, header).
//
// dst is a label or a name, matching the Router. maxHops <= 0 selects
// the same default as Run.
func RouteOnce[H Header](g *graph.Graph, r Router[H], src, dst, maxHops int) Result {
	return RouteOnceTraced(g, r, src, dst, maxHops, nil)
}

// RouteOnceTraced is RouteOnce with an optional trace: when tr is
// non-nil it is reset (Trace.Begin) and filled with one hop record per
// forward, classified via trace.Phased. A nil tr takes the exact
// RouteOnce path — every trace instruction is behind a nil check, so
// disabled tracing adds no work and no allocations to the hot loop
// (pinned by TestRouteOnceTracingDisabledAllocs).
//
// The trace is a pure function of (tables, src, dst): hop distances
// are accumulated in walk order, so trace.Cost() is bit-identical to
// Result.Cost, and re-running the same delivery yields byte-identical
// Marshal output.
func RouteOnceTraced[H Header](g *graph.Graph, r Router[H], src, dst, maxHops int, tr *trace.Trace) Result {
	if maxHops <= 0 {
		maxHops = 8 * g.N()
	}
	res := Result{Src: src}
	h, err := r.Prepare(dst)
	if err != nil {
		if tr != nil {
			tr.Begin(int32(src), 0)
		}
		res.Err = err
		return res
	}
	res.Path = []int{src}
	res.MaxHeaderBits = h.Bits()
	if tr != nil {
		tr.Begin(int32(src), int32(res.MaxHeaderBits))
	}
	at := src
	for {
		next, nh, arrived, err := r.Step(at, h)
		if err != nil {
			res.Err = fmt.Errorf("sim: step at %d: %w", at, err)
			return res
		}
		if arrived {
			res.Dst = at
			if tr != nil {
				tr.Dst = int32(at)
			}
			return res
		}
		if len(res.Path) > maxHops {
			res.Err = HopLimitError(maxHops)
			return res
		}
		w, ok := g.EdgeWeight(at, next)
		if !ok {
			res.Err = fmt.Errorf("sim: step at %d forwarded to non-neighbor %d", at, next)
			return res
		}
		b := nh.Bits()
		if b > res.MaxHeaderBits {
			res.MaxHeaderBits = b
		}
		if tr != nil {
			tr.Hops = append(tr.Hops, trace.Hop{
				From:       int32(at),
				To:         int32(next),
				Phase:      PhaseOf(nh),
				HeaderBits: int32(b),
				Dist:       w,
			})
		}
		h = nh
		res.Path = append(res.Path, next)
		res.Cost += w
		at = next
	}
}

// Run executes the deliveries concurrently over the graph: one
// goroutine per node, one message per packet hop. It blocks until all
// packets arrive or fail, and returns results indexed like deliveries.
//
// Packets that exceed maxHops (pass <= 0 for 4·n·log n-ish default)
// fail rather than loop forever.
func Run[H Header](g *graph.Graph, r Router[H], deliveries []Delivery, maxHops int) []Result {
	return RunTraced(g, r, deliveries, maxHops, nil)
}

// RunTraced is Run with optional per-delivery traces: traces may be
// nil (no tracing) or len(deliveries) long, with nil entries for
// deliveries that should not be traced. A packet's trace travels with
// the packet — exactly one node goroutine holds it at a time, and the
// mailbox sends order the hand-offs — so traced concurrent runs stay
// race-free and produce the same bytes as RouteOnceTraced.
func RunTraced[H Header](g *graph.Graph, r Router[H], deliveries []Delivery, maxHops int, traces []*trace.Trace) []Result {
	n := g.N()
	if maxHops <= 0 {
		maxHops = 8 * n
	}
	results := make([]Result, len(deliveries))
	inbox := make([]chan packet[H], n)
	for i := range inbox {
		inbox[i] = make(chan packet[H], 8)
	}
	var wg sync.WaitGroup // outstanding packets
	var nodeWG sync.WaitGroup
	done := make(chan struct{})

	finish := func(id int, p packet[H], err error) {
		res := &results[id]
		res.Path = p.path
		res.Cost = p.cost
		res.MaxHeaderBits = p.maxHdr
		res.Err = err
		if err == nil {
			res.Dst = p.path[len(p.path)-1]
			if p.tr != nil {
				p.tr.Dst = int32(res.Dst)
			}
		}
		wg.Done()
	}

	// forward delivers a packet to a mailbox without blocking the node
	// goroutine (mailboxes are bounded; a detached send avoids deadlock
	// when many packets converge on one node). The detached send must
	// also select on done: a bare `inbox[to] <- p` blocks forever if the
	// run winds down while the mailbox is full, leaking the goroutine.
	var forward func(to int, p packet[H])
	forward = func(to int, p packet[H]) {
		select {
		case inbox[to] <- p:
		default:
			go func() {
				select {
				case inbox[to] <- p:
				case <-done:
				}
			}()
		}
	}

	node := func(self int) {
		defer nodeWG.Done()
		for {
			select {
			case <-done:
				return
			case p := <-inbox[self]:
				next, nh, arrived, err := r.Step(self, p.header)
				if err != nil {
					finish(p.id, p, fmt.Errorf("sim: step at %d: %w", self, err))
					continue
				}
				if arrived {
					finish(p.id, p, nil)
					continue
				}
				if len(p.path) > maxHops {
					finish(p.id, p, HopLimitError(maxHops))
					continue
				}
				w, ok := g.EdgeWeight(self, next)
				if !ok {
					finish(p.id, p, fmt.Errorf("sim: step at %d forwarded to non-neighbor %d", self, next))
					continue
				}
				b := nh.Bits()
				if b > p.maxHdr {
					p.maxHdr = b
				}
				if p.tr != nil {
					p.tr.Hops = append(p.tr.Hops, trace.Hop{
						From:       int32(self),
						To:         int32(next),
						Phase:      PhaseOf(nh),
						HeaderBits: int32(b),
						Dist:       w,
					})
				}
				p.header = nh
				p.path = append(p.path, next)
				p.cost += w
				forward(next, p)
			}
		}
	}
	nodeWG.Add(n)
	for v := 0; v < n; v++ {
		go node(v)
	}

	wg.Add(len(deliveries))
	for id, d := range deliveries {
		var tr *trace.Trace
		if traces != nil {
			tr = traces[id]
		}
		h, err := r.Prepare(d.Dst)
		if err != nil {
			if tr != nil {
				tr.Begin(int32(d.Src), 0)
			}
			results[id] = Result{Src: d.Src, Err: err}
			wg.Done()
			continue
		}
		results[id].Src = d.Src
		p := packet[H]{id: id, header: h, path: []int{d.Src}, maxHdr: h.Bits(), tr: tr}
		if tr != nil {
			tr.Begin(int32(d.Src), int32(p.maxHdr))
		}
		forward(d.Src, p)
	}
	wg.Wait()
	close(done)
	nodeWG.Wait()
	return results
}
