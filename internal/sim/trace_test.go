package sim

import (
	"testing"

	"compactrouting/internal/baseline"
	"compactrouting/internal/core"
	"compactrouting/internal/graph"
	"compactrouting/internal/labeled"
	"compactrouting/internal/metric"
	"compactrouting/internal/trace"
)

// TestRouteOnceTracingDisabledAllocs pins the zero-overhead-when-
// disabled contract: RouteOnceTraced with a nil trace must allocate
// exactly as much as RouteOnce did before tracing existed — the path
// slice and nothing else. Every trace instruction sits behind a nil
// check, and PhaseOf (whose interface conversion boxes the header) is
// only reached on traced paths.
func TestRouteOnceTracingDisabledAllocs(t *testing.T) {
	g, a := fixtures(t, 80, 1)
	s := baseline.NewFullTable(g, a)
	r := FullTableRouter{S: s}
	pairs := core.SamplePairs(g.N(), 8, 3)

	for _, p := range pairs {
		src, dst := p[0], p[1]
		base := testing.AllocsPerRun(200, func() {
			if res := RouteOnce[baseline.Destination](g, r, src, dst, 0); res.Err != nil {
				t.Fatal(res.Err)
			}
		})
		disabled := testing.AllocsPerRun(200, func() {
			if res := RouteOnceTraced[baseline.Destination](g, r, src, dst, 0, nil); res.Err != nil {
				t.Fatal(res.Err)
			}
		})
		if disabled != base {
			t.Fatalf("pair (%d,%d): disabled tracing allocates %.1f/run, untraced baseline %.1f/run", src, dst, disabled, base)
		}
	}
}

// TestRouteOnceTracedReusesTrace pins the warm-path behavior the
// serving layer relies on: after the first traced route grows the hop
// slice, re-tracing a route of equal or shorter length allocates
// nothing beyond the untraced baseline plus the result path.
func TestRouteOnceTracedReusesTrace(t *testing.T) {
	g, a := fixtures(t, 80, 1)
	s := baseline.NewFullTable(g, a)
	r := FullTableRouter{S: s}
	p := core.SamplePairs(g.N(), 1, 3)[0]
	src, dst := p[0], p[1]

	tr := &trace.Trace{}
	RouteOnceTraced[baseline.Destination](g, r, src, dst, 0, tr) // warm up the hop slice
	base := testing.AllocsPerRun(200, func() {
		RouteOnce[baseline.Destination](g, r, src, dst, 0)
	})
	warm := testing.AllocsPerRun(200, func() {
		RouteOnceTraced[baseline.Destination](g, r, src, dst, 0, tr)
	})
	if warm > base {
		t.Fatalf("warm traced route allocates %.1f/run, untraced %.1f/run", warm, base)
	}
}

func BenchmarkRouteOnce(b *testing.B) {
	g, a := benchFixtures(b)
	s := baseline.NewFullTable(g, a)
	r := FullTableRouter{S: s}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RouteOnce[baseline.Destination](g, r, i%g.N(), (i+7)%g.N(), 0)
	}
}

func BenchmarkRouteOnceTracedNil(b *testing.B) {
	g, a := benchFixtures(b)
	s := baseline.NewFullTable(g, a)
	r := FullTableRouter{S: s}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RouteOnceTraced[baseline.Destination](g, r, i%g.N(), (i+7)%g.N(), 0, nil)
	}
}

func BenchmarkRouteOnceTracedEnabled(b *testing.B) {
	g, a := benchFixtures(b)
	s := baseline.NewFullTable(g, a)
	r := FullTableRouter{S: s}
	tr := &trace.Trace{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RouteOnceTraced[baseline.Destination](g, r, i%g.N(), (i+7)%g.N(), 0, tr)
	}
}

func benchFixtures(b *testing.B) (*graph.Graph, *metric.APSP) {
	b.Helper()
	g, _, err := graph.RandomGeometric(120, 0.2, 1)
	if err != nil {
		b.Fatal(err)
	}
	return g, metric.NewAPSP(g)
}

// TestPhaseOfDefaultsToDirect pins the fallback classification for
// headers that do not implement trace.Phased.
func TestPhaseOfDefaultsToDirect(t *testing.T) {
	if got := PhaseOf(plainHeader{}); got != trace.PhaseDirect {
		t.Fatalf("unclassified header phase = %v, want direct", got)
	}
	// The six adapter headers classify themselves (compile-asserted in
	// adapters.go); spot-check two mappings here.
	if got := PhaseOf(baseline.TreeHeader{}); got != trace.PhaseTree {
		t.Fatalf("TreeHeader phase = %v, want tree", got)
	}
	if got := PhaseOf(labeled.SFHeader{Phase: labeled.SFPhaseFinal}); got != trace.PhaseFinal {
		t.Fatalf("SFHeader final phase = %v, want final", got)
	}
}

type plainHeader struct{}

func (plainHeader) Bits() int { return 1 }
