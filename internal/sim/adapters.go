package sim

import (
	"compactrouting/internal/baseline"
	"compactrouting/internal/labeled"
	"compactrouting/internal/nameind"
	"compactrouting/internal/trace"
)

// All six adapter headers classify their hops for the trace layer;
// these assertions keep a new header from silently tracing as
// PhaseDirect.
var (
	_ trace.Phased = labeled.SimpleHeader{}
	_ trace.Phased = labeled.SFHeader{}
	_ trace.Phased = nameind.NIHeader{}
	_ trace.Phased = nameind.SFNIHeader{}
	_ trace.Phased = baseline.Destination(0)
	_ trace.Phased = baseline.TreeHeader{}
)

// SimpleLabeledRouter adapts the simple labeled scheme's step function
// to the simulator (destinations are labels).
type SimpleLabeledRouter struct {
	S *labeled.Simple
}

var _ Router[labeled.SimpleHeader] = SimpleLabeledRouter{}

// Prepare implements Router.
func (r SimpleLabeledRouter) Prepare(dst int) (labeled.SimpleHeader, error) {
	return r.S.PrepareHeader(dst)
}

// Step implements Router.
func (r SimpleLabeledRouter) Step(node int, h labeled.SimpleHeader) (int, labeled.SimpleHeader, bool, error) {
	return r.S.Step(node, h)
}

// FullTableRouter adapts the full-table baseline (destinations are
// node ids).
type FullTableRouter struct {
	S *baseline.FullTable
}

var _ Router[baseline.Destination] = FullTableRouter{}

// Prepare implements Router.
func (r FullTableRouter) Prepare(dst int) (baseline.Destination, error) {
	return r.S.PrepareHeader(dst)
}

// Step implements Router.
func (r FullTableRouter) Step(node int, h baseline.Destination) (int, baseline.Destination, bool, error) {
	return r.S.Step(node, h)
}

// SingleTreeRouter adapts the single-tree baseline (destinations are
// node ids; the header carries the tree label).
type SingleTreeRouter struct {
	S *baseline.SingleTree
}

var _ Router[baseline.TreeHeader] = SingleTreeRouter{}

// Prepare implements Router.
func (r SingleTreeRouter) Prepare(dst int) (baseline.TreeHeader, error) {
	return r.S.PrepareHeader(dst)
}

// Step implements Router.
func (r SingleTreeRouter) Step(node int, h baseline.TreeHeader) (int, baseline.TreeHeader, bool, error) {
	return r.S.Step(node, h)
}

// ScaleFreeLabeledRouter adapts the Theorem 1.2 scheme's step function
// (destinations are labels).
type ScaleFreeLabeledRouter struct {
	S *labeled.ScaleFree
}

var _ Router[labeled.SFHeader] = ScaleFreeLabeledRouter{}

// Prepare implements Router.
func (r ScaleFreeLabeledRouter) Prepare(dst int) (labeled.SFHeader, error) {
	return r.S.PrepareHeader(dst)
}

// Step implements Router.
func (r ScaleFreeLabeledRouter) Step(node int, h labeled.SFHeader) (int, labeled.SFHeader, bool, error) {
	return r.S.Step(node, h)
}

// NameIndependentRouter adapts the Theorem 1.4 name-independent
// scheme's step function (destinations are ORIGINAL NAMES).
type NameIndependentRouter struct {
	S *nameind.Simple
}

var _ Router[nameind.NIHeader] = NameIndependentRouter{}

// Prepare implements Router; dst is a node name.
func (r NameIndependentRouter) Prepare(dst int) (nameind.NIHeader, error) {
	return r.S.PrepareHeader(dst)
}

// Step implements Router.
func (r NameIndependentRouter) Step(node int, h nameind.NIHeader) (int, nameind.NIHeader, bool, error) {
	return r.S.Step(node, h)
}

// ScaleFreeNameIndependentRouter adapts the Theorem 1.1 scheme's step
// function (destinations are ORIGINAL NAMES).
type ScaleFreeNameIndependentRouter struct {
	S *nameind.ScaleFree
}

var _ Router[nameind.SFNIHeader] = ScaleFreeNameIndependentRouter{}

// Prepare implements Router; dst is a node name.
func (r ScaleFreeNameIndependentRouter) Prepare(dst int) (nameind.SFNIHeader, error) {
	return r.S.PrepareHeader(dst)
}

// Step implements Router.
func (r ScaleFreeNameIndependentRouter) Step(node int, h nameind.SFNIHeader) (int, nameind.SFNIHeader, bool, error) {
	return r.S.Step(node, h)
}
