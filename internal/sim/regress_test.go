package sim

import (
	"runtime"
	"testing"
	"time"

	"compactrouting/internal/baseline"
	"compactrouting/internal/core"
	"compactrouting/internal/graph"
	"compactrouting/internal/labeled"
	"compactrouting/internal/metric"
	"compactrouting/internal/nameind"
)

// TestRunLeaksNoGoroutines regression-tests the detached forward
// sender: under heavy convergence (every delivery addressed to one
// node, mailboxes capacity 8) detached senders pile up, and before the
// done-select fix any sender still blocked at wind-down leaked forever.
func TestRunLeaksNoGoroutines(t *testing.T) {
	g, a := fixtures(t, 60, 19)
	s := baseline.NewFullTable(g, a)
	var deliveries []Delivery
	for src := 0; src < g.N(); src++ {
		for k := 0; k < 12; k++ {
			deliveries = append(deliveries, Delivery{Src: src, Dst: 0})
		}
	}
	before := runtime.NumGoroutine()
	for round := 0; round < 8; round++ {
		results := Run[baseline.Destination](g, FullTableRouter{S: s}, deliveries, 0)
		for i, res := range results {
			if res.Err != nil {
				t.Fatalf("round %d delivery %d: %v", round, i, res.Err)
			}
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after 8 high-convergence runs",
				before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHopBudgetBoundaryAligned pins the shared hop-budget semantics of
// RouteOnce and Run with one table: a walk of exactly maxHops hops
// (plus the free arrival step) delivers; one more hop fails, in both
// drivers, with the identical HopLimitError.
func TestHopBudgetBoundaryAligned(t *testing.T) {
	g, err := graph.Path(9, 1) // 0-1-...-8, route 0->k takes exactly k hops
	if err != nil {
		t.Fatal(err)
	}
	s := baseline.NewFullTable(g, metric.NewAPSP(g))
	r := FullTableRouter{S: s}
	cases := []struct {
		dst, maxHops int
		ok           bool
	}{
		{1, 1, true},
		{4, 4, true},
		{4, 3, false},
		{8, 8, true},
		{8, 7, false},
		{8, 1, false},
	}
	for _, c := range cases {
		once := RouteOnce[baseline.Destination](g, r, 0, c.dst, c.maxHops)
		run := Run[baseline.Destination](g, r, []Delivery{{Src: 0, Dst: c.dst}}, c.maxHops)[0]
		if (once.Err == nil) != c.ok {
			t.Errorf("RouteOnce 0->%d maxHops=%d: err=%v, want ok=%v", c.dst, c.maxHops, once.Err, c.ok)
		}
		if (run.Err == nil) != c.ok {
			t.Errorf("Run 0->%d maxHops=%d: err=%v, want ok=%v", c.dst, c.maxHops, run.Err, c.ok)
		}
		if !c.ok {
			want := HopLimitError(c.maxHops).Error()
			if once.Err.Error() != want || run.Err.Error() != want {
				t.Errorf("0->%d maxHops=%d: errors diverge: RouteOnce %q, Run %q, want %q",
					c.dst, c.maxHops, once.Err, run.Err, want)
			}
		}
		if c.ok {
			if len(once.Path)-1 != c.dst || len(run.Path)-1 != c.dst {
				t.Errorf("0->%d: hop counts %d / %d, want %d", c.dst, len(once.Path)-1, len(run.Path)-1, c.dst)
			}
		}
	}
}

// TestRunPrepareErrorsAllAdapters exercises Prepare-error propagation
// through the concurrent Run for every adapter family (only RouteOnce's
// path was covered before), and checks the failed delivery is reported
// exactly like RouteOnce reports it: Err set, no walk.
func TestRunPrepareErrorsAllAdapters(t *testing.T) {
	g, a := fixtures(t, 50, 23)
	sl, err := labeled.NewSimple(g, a, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := labeled.NewScaleFree(g, a, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	nm := nameind.RandomNaming(g.N(), 24)
	ni, err := nameind.NewSimple(g, a, nm, sl, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	st, err := baseline.NewSingleTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	ft := baseline.NewFullTable(g, a)

	check := func(name string, run func(bad, good int) [2]Result, bad, good int) {
		t.Helper()
		res := run(bad, good)
		if res[0].Err == nil {
			t.Errorf("%s: Prepare(%d) error did not propagate through Run", name, bad)
		}
		if res[0].Path != nil || res[0].Dst != 0 || res[0].Cost != 0 {
			t.Errorf("%s: failed delivery carries a walk: %+v", name, res[0])
		}
		if res[1].Err != nil {
			t.Errorf("%s: good delivery failed: %v", name, res[1].Err)
		}
	}

	check("full-table", func(bad, good int) [2]Result {
		r := Run[baseline.Destination](g, FullTableRouter{S: ft},
			[]Delivery{{Src: 0, Dst: bad}, {Src: 0, Dst: good}}, 0)
		return [2]Result{r[0], r[1]}
	}, -5, 1)
	check("single-tree", func(bad, good int) [2]Result {
		r := Run[baseline.TreeHeader](g, SingleTreeRouter{S: st},
			[]Delivery{{Src: 0, Dst: bad}, {Src: 0, Dst: good}}, 0)
		return [2]Result{r[0], r[1]}
	}, g.N()+3, 1)
	check("simple-labeled", func(bad, good int) [2]Result {
		r := Run[labeled.SimpleHeader](g, SimpleLabeledRouter{S: sl},
			[]Delivery{{Src: 0, Dst: bad}, {Src: 0, Dst: good}}, 0)
		return [2]Result{r[0], r[1]}
	}, -1, sl.LabelOf(1))
	check("scale-free-labeled", func(bad, good int) [2]Result {
		r := Run[labeled.SFHeader](g, ScaleFreeLabeledRouter{S: sf},
			[]Delivery{{Src: 0, Dst: bad}, {Src: 0, Dst: good}}, 64*g.N())
		return [2]Result{r[0], r[1]}
	}, -2, sf.LabelOf(1))
	check("name-independent", func(bad, good int) [2]Result {
		r := Run[nameind.NIHeader](g, NameIndependentRouter{S: ni},
			[]Delivery{{Src: 0, Dst: bad}, {Src: 0, Dst: good}}, 256*g.N())
		return [2]Result{r[0], r[1]}
	}, -7, nm.NameOf(1))
}

// TestMaxHeaderBitsMonotone replays multi-hop deliveries hop by hop and
// checks the recorded MaxHeaderBits is exactly the running maximum of
// every header en route — at least the initial header, never shrunk by
// a later smaller header — and that Run and RouteOnce agree on it.
func TestMaxHeaderBitsMonotone(t *testing.T) {
	g, a := fixtures(t, 70, 27)
	s, err := labeled.NewScaleFree(g, a, 0.25) // headers mutate en route
	if err != nil {
		t.Fatal(err)
	}
	r := ScaleFreeLabeledRouter{S: s}
	pairs := core.SamplePairs(g.N(), 120, 28)
	deliveries := make([]Delivery, len(pairs))
	for i, p := range pairs {
		deliveries[i] = Delivery{Src: p[0], Dst: s.LabelOf(p[1])}
	}
	results := Run[labeled.SFHeader](g, ScaleFreeLabeledRouter{S: s}, deliveries, 64*g.N())
	multiHop := 0
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("delivery %d: %v", i, res.Err)
		}
		if len(res.Path) > 2 {
			multiHop++
		}
		// Manual replay of the same step functions.
		h, err := r.Prepare(deliveries[i].Dst)
		if err != nil {
			t.Fatal(err)
		}
		initial := h.Bits()
		max := initial
		at := deliveries[i].Src
		for {
			next, nh, arrived, err := r.Step(at, h)
			if err != nil {
				t.Fatal(err)
			}
			if arrived {
				break
			}
			if b := nh.Bits(); b > max {
				max = b
			}
			h = nh
			at = next
		}
		if res.MaxHeaderBits != max {
			t.Fatalf("delivery %d: Run recorded %d header bits, replay max is %d", i, res.MaxHeaderBits, max)
		}
		if res.MaxHeaderBits < initial {
			t.Fatalf("delivery %d: recorded max %d below initial header %d", i, res.MaxHeaderBits, initial)
		}
		once := RouteOnce[labeled.SFHeader](g, r, deliveries[i].Src, deliveries[i].Dst, 64*g.N())
		if once.MaxHeaderBits != res.MaxHeaderBits {
			t.Fatalf("delivery %d: RouteOnce max %d != Run max %d", i, once.MaxHeaderBits, res.MaxHeaderBits)
		}
	}
	if multiHop == 0 {
		t.Fatal("no multi-hop deliveries sampled; monotonicity untested")
	}
}
