package sim

import (
	"math"
	"testing"

	"compactrouting/internal/baseline"
	"compactrouting/internal/core"
	"compactrouting/internal/graph"
	"compactrouting/internal/labeled"
	"compactrouting/internal/metric"
	"compactrouting/internal/nameind"
)

func fixtures(t *testing.T, n int, seed int64) (*graph.Graph, *metric.APSP) {
	t.Helper()
	g, _, err := graph.RandomGeometric(n, 0.2, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g, metric.NewAPSP(g)
}

func TestFullTableConcurrentMatchesSequential(t *testing.T) {
	g, a := fixtures(t, 120, 1)
	s := baseline.NewFullTable(g, a)
	pairs := core.SamplePairs(g.N(), 300, 2)
	deliveries := make([]Delivery, len(pairs))
	for i, p := range pairs {
		deliveries[i] = Delivery{Src: p[0], Dst: p[1]}
	}
	results := Run[baseline.Destination](g, FullTableRouter{S: s}, deliveries, 0)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("delivery %d: %v", i, res.Err)
		}
		seq, err := s.RouteToLabel(pairs[i][0], pairs[i][1])
		if err != nil {
			t.Fatal(err)
		}
		if res.Dst != seq.Dst || math.Abs(res.Cost-seq.Cost) > 1e-9 {
			t.Fatalf("delivery %d diverged: sim (%d, %v) vs seq (%d, %v)",
				i, res.Dst, res.Cost, seq.Dst, seq.Cost)
		}
		if len(res.Path) != len(seq.Path) {
			t.Fatalf("delivery %d path lengths differ: %d vs %d", i, len(res.Path), len(seq.Path))
		}
	}
}

func TestSimpleLabeledConcurrentMatchesSequential(t *testing.T) {
	g, a := fixtures(t, 100, 3)
	s, err := labeled.NewSimple(g, a, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	pairs := core.SamplePairs(g.N(), 300, 4)
	deliveries := make([]Delivery, len(pairs))
	for i, p := range pairs {
		deliveries[i] = Delivery{Src: p[0], Dst: s.LabelOf(p[1])}
	}
	results := Run[labeled.SimpleHeader](g, SimpleLabeledRouter{S: s}, deliveries, 0)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("delivery %d: %v", i, res.Err)
		}
		seq, err := s.RouteToLabel(pairs[i][0], s.LabelOf(pairs[i][1]))
		if err != nil {
			t.Fatal(err)
		}
		// Paths must be IDENTICAL: concurrent execution may not change
		// any forwarding decision.
		if len(res.Path) != len(seq.Path) {
			t.Fatalf("delivery %d path lengths differ", i)
		}
		for k := range res.Path {
			if res.Path[k] != seq.Path[k] {
				t.Fatalf("delivery %d paths diverge at hop %d", i, k)
			}
		}
	}
}

func TestSingleTreeConcurrent(t *testing.T) {
	g, a := fixtures(t, 90, 5)
	s, err := baseline.NewSingleTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	pairs := core.SamplePairs(g.N(), 200, 6)
	deliveries := make([]Delivery, len(pairs))
	for i, p := range pairs {
		deliveries[i] = Delivery{Src: p[0], Dst: p[1]}
	}
	results := Run[baseline.TreeHeader](g, SingleTreeRouter{S: s}, deliveries, 0)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("delivery %d: %v", i, res.Err)
		}
		if res.Dst != pairs[i][1] {
			t.Fatalf("delivery %d ended at %d, want %d", i, res.Dst, pairs[i][1])
		}
		if res.Cost < a.Dist(pairs[i][0], pairs[i][1])-1e-9 {
			t.Fatalf("delivery %d cost below metric distance", i)
		}
	}
}

func TestRunReportsPrepareErrors(t *testing.T) {
	g, a := fixtures(t, 30, 7)
	s := baseline.NewFullTable(g, a)
	results := Run[baseline.Destination](g, FullTableRouter{S: s},
		[]Delivery{{Src: 0, Dst: -5}, {Src: 0, Dst: 1}}, 0)
	if results[0].Err == nil {
		t.Fatal("bad destination did not error")
	}
	if results[1].Err != nil {
		t.Fatalf("good delivery failed: %v", results[1].Err)
	}
}

func TestRunHopLimit(t *testing.T) {
	g, a := fixtures(t, 40, 8)
	s := baseline.NewFullTable(g, a)
	// A hop limit of 1 must fail any route longer than one hop.
	var far [2]int
	found := false
	for u := 0; u < g.N() && !found; u++ {
		for v := 0; v < g.N(); v++ {
			if _, direct := g.EdgeWeight(u, v); u != v && !direct {
				far = [2]int{u, v}
				found = true
				break
			}
		}
	}
	if !found {
		t.Skip("graph is complete")
	}
	results := Run[baseline.Destination](g, FullTableRouter{S: s},
		[]Delivery{{Src: far[0], Dst: far[1]}}, 1)
	if results[0].Err == nil {
		t.Fatal("hop limit not enforced")
	}
}

func TestHeaderAccounting(t *testing.T) {
	g, a := fixtures(t, 60, 9)
	s, err := labeled.NewSimple(g, a, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	results := Run[labeled.SimpleHeader](g, SimpleLabeledRouter{S: s},
		[]Delivery{{Src: 0, Dst: s.LabelOf(g.N() - 1)}}, 0)
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	if results[0].MaxHeaderBits <= 0 {
		t.Fatal("no header accounting")
	}
}

func TestScaleFreeLabeledConcurrentMatchesSequential(t *testing.T) {
	// The paper's Theorem 1.2 scheme, running as one goroutine per node:
	// the concurrent walk must match the sequential driver hop for hop.
	g, a := fixtures(t, 90, 11)
	s, err := labeled.NewScaleFree(g, a, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	pairs := core.SamplePairs(g.N(), 250, 12)
	deliveries := make([]Delivery, len(pairs))
	for i, p := range pairs {
		deliveries[i] = Delivery{Src: p[0], Dst: s.LabelOf(p[1])}
	}
	results := Run[labeled.SFHeader](g, ScaleFreeLabeledRouter{S: s}, deliveries, 64*g.N())
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("delivery %d: %v", i, res.Err)
		}
		seq, err := s.RouteToLabel(pairs[i][0], s.LabelOf(pairs[i][1]))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Path) != len(seq.Path) {
			t.Fatalf("delivery %d path lengths differ: %d vs %d", i, len(res.Path), len(seq.Path))
		}
		for k := range res.Path {
			if res.Path[k] != seq.Path[k] {
				t.Fatalf("delivery %d paths diverge at hop %d", i, k)
			}
		}
	}
}

func TestScaleFreeLabeledConcurrentOnExponentialPath(t *testing.T) {
	// Phase B (search trees, Voronoi tails) under concurrency.
	g, err := graph.ExponentialPath(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := metric.NewAPSP(g)
	s, err := labeled.NewScaleFree(g, a, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	pairs := core.SamplePairs(g.N(), 300, 13)
	deliveries := make([]Delivery, len(pairs))
	for i, p := range pairs {
		deliveries[i] = Delivery{Src: p[0], Dst: s.LabelOf(p[1])}
	}
	results := Run[labeled.SFHeader](g, ScaleFreeLabeledRouter{S: s}, deliveries, 64*g.N())
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("delivery %d: %v", i, res.Err)
		}
		if res.Dst != pairs[i][1] {
			t.Fatalf("delivery %d ended at %d, want %d", i, res.Dst, pairs[i][1])
		}
	}
}

func TestNameIndependentConcurrentMatchesSequential(t *testing.T) {
	// The PODC 2006 headline scheme (Theorem 1.4) as goroutine-per-node:
	// name-addressed packets, hop-for-hop equal to the sequential run.
	g, a := fixtures(t, 80, 15)
	under, err := labeled.NewSimple(g, a, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	nm := nameind.RandomNaming(g.N(), 7)
	s, err := nameind.NewSimple(g, a, nm, under, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	pairs := core.SamplePairs(g.N(), 200, 16)
	deliveries := make([]Delivery, len(pairs))
	for i, p := range pairs {
		deliveries[i] = Delivery{Src: p[0], Dst: nm.NameOf(p[1])}
	}
	results := Run[nameind.NIHeader](g, NameIndependentRouter{S: s}, deliveries, 256*g.N())
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("delivery %d: %v", i, res.Err)
		}
		seq, err := s.RouteToName(pairs[i][0], nm.NameOf(pairs[i][1]))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Path) != len(seq.Path) {
			t.Fatalf("delivery %d path lengths differ: %d vs %d", i, len(res.Path), len(seq.Path))
		}
		for k := range res.Path {
			if res.Path[k] != seq.Path[k] {
				t.Fatalf("delivery %d paths diverge at hop %d", i, k)
			}
		}
	}
}

func TestScaleFreeNameIndependentConcurrent(t *testing.T) {
	// Theorem 1.1 — the paper's headline — as goroutine-per-node
	// message passing, hop-identical to the sequential run.
	g, a := fixtures(t, 70, 17)
	under, err := labeled.NewScaleFree(g, a, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	nm := nameind.RandomNaming(g.N(), 8)
	s, err := nameind.NewScaleFree(g, a, nm, under, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	pairs := core.SamplePairs(g.N(), 150, 18)
	deliveries := make([]Delivery, len(pairs))
	for i, p := range pairs {
		deliveries[i] = Delivery{Src: p[0], Dst: nm.NameOf(p[1])}
	}
	results := Run[nameind.SFNIHeader](g, ScaleFreeNameIndependentRouter{S: s}, deliveries, 512*g.N())
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("delivery %d: %v", i, res.Err)
		}
		seq, err := s.RouteToName(pairs[i][0], nm.NameOf(pairs[i][1]))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Path) != len(seq.Path) {
			t.Fatalf("delivery %d path lengths differ: %d vs %d", i, len(res.Path), len(seq.Path))
		}
		for k := range res.Path {
			if res.Path[k] != seq.Path[k] {
				t.Fatalf("delivery %d paths diverge at hop %d", i, k)
			}
		}
	}
}
