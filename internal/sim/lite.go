package sim

import "compactrouting/internal/graph"

// LiteResult is the outcome of one RouteLite delivery: the shape of the
// walk without the walk itself.
type LiteResult struct {
	Dst           int
	Hops          int
	MaxHeaderBits int
	Cost          float64
	Err           error
}

// RouteLite drives one delivery through the router's step function like
// RouteOnce, but records only the walk's shape — hop count, cost, max
// header size — never the path slice or a trace. It is the zero-
// allocation route used by the binary serving plane (internal/frame
// responses carry no paths); the framed batch path pins 0 allocs/op on
// it with testing.AllocsPerRun. Hop validation uses the binary-search
// NeighborWeight so the check allocates nothing either.
//
// Semantics match RouteOnce exactly: dst is a label or a name (per the
// Router), maxHops <= 0 selects the 8n default, and a walk of more than
// maxHops hops fails with HopLimitError.
//
//determinlint:hotpath
func RouteLite[H Header](g *graph.Graph, r Router[H], src, dst, maxHops int) LiteResult {
	if maxHops <= 0 {
		maxHops = 8 * g.N()
	}
	var res LiteResult
	h, err := r.Prepare(dst)
	if err != nil {
		res.Err = err
		return res
	}
	res.MaxHeaderBits = h.Bits()
	at := src
	for {
		next, nh, arrived, err := r.Step(at, h)
		if err != nil {
			res.Err = err
			return res
		}
		if arrived {
			res.Dst = at
			return res
		}
		if res.Hops+1 > maxHops {
			//determinlint:allow hotpath the hop-limit failure path boxes its error once per failed walk, never on delivery
			res.Err = HopLimitError(maxHops)
			return res
		}
		w, ok := g.NeighborWeight(at, next)
		if !ok {
			res.Err = ErrNonNeighbor
			return res
		}
		if b := nh.Bits(); b > res.MaxHeaderBits {
			res.MaxHeaderBits = b
		}
		h = nh
		res.Hops++
		res.Cost += w
		at = next
	}
}

// errNonNeighbor is allocated once: RouteLite's hot path must not
// construct error values per call.
type errNonNeighbor struct{}

func (errNonNeighbor) Error() string { return "sim: step forwarded to non-neighbor" }

// ErrNonNeighbor reports a step function forwarding to a node that is
// not adjacent to the current one.
var ErrNonNeighbor error = errNonNeighbor{}
