// Package oracle implements Thorup–Zwick approximate distance oracles
// (reference [29]'s companion result): for any integer k >= 1, a data
// structure of ~O(k n^{1+1/k}) total size answering distance queries
// within stretch 2k-1. It is the distance-estimation face of the same
// space-stretch law the paper's routing results live on (stretch below
// 2k+1 needs ~n^{1/k} space on general graphs; doubling metrics escape
// it), and the experiments use it as the general-graph reference curve.
package oracle

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"compactrouting/internal/bits"
	"compactrouting/internal/metric"
)

// Oracle is a compiled Thorup–Zwick distance oracle.
type Oracle struct {
	k int
	n int
	// pivots[i][v] = p_i(v), the nearest node of the level-i sample to
	// v; pivotDist[i][v] = d(v, A_i). Level 0 is V itself (p_0(v) = v).
	pivots    [][]int32
	pivotDist [][]float64
	// bunch[v] maps each w in B(v) to d(v, w).
	bunch []map[int32]float64
	// levelSizes records |A_i| for reports.
	levelSizes []int
	idBits     int
}

// New builds the oracle for stretch 2k-1. Levels are sampled with
// probability n^{-1/k} per the classic construction.
func New(a metric.Distancer, k int, seed int64) (*Oracle, error) {
	if k < 1 {
		return nil, fmt.Errorf("oracle: k must be >= 1, got %d", k)
	}
	n := a.N()
	if n < 2 {
		return nil, fmt.Errorf("oracle: need at least 2 nodes")
	}
	rng := rand.New(rand.NewSource(seed))
	p := math.Pow(float64(n), -1.0/float64(k))
	// Samples A_0 = V ⊇ A_1 ⊇ ... ⊇ A_{k-1}; A_k = ∅.
	levels := make([][]int, k)
	levels[0] = make([]int, n)
	for v := range levels[0] {
		levels[0][v] = v
	}
	for i := 1; i < k; i++ {
		for _, v := range levels[i-1] {
			if rng.Float64() < p {
				levels[i] = append(levels[i], v)
			}
		}
		if len(levels[i]) == 0 {
			// Degenerate sample: keep one node so pivots exist (the
			// classic construction resamples; one survivor preserves
			// correctness and only helps stretch).
			levels[i] = append(levels[i], levels[i-1][rng.Intn(len(levels[i-1]))])
		}
	}
	o := &Oracle{
		k: k, n: n,
		pivots:     make([][]int32, k),
		pivotDist:  make([][]float64, k),
		bunch:      make([]map[int32]float64, n),
		levelSizes: make([]int, k),
		idBits:     bits.UintBits(n),
	}
	inLevel := make([][]bool, k+1)
	for i := 0; i < k; i++ {
		o.levelSizes[i] = len(levels[i])
		inLevel[i] = make([]bool, n)
		for _, v := range levels[i] {
			inLevel[i][v] = true
		}
	}
	inLevel[k] = make([]bool, n) // A_k = empty
	for i := 0; i < k; i++ {
		o.pivots[i] = make([]int32, n)
		o.pivotDist[i] = make([]float64, n)
		for v := 0; v < n; v++ {
			best, bd := -1, math.Inf(1)
			for _, w := range levels[i] {
				if d := a.Dist(v, w); d < bd || (d == bd && w < best) {
					best, bd = w, d
				}
			}
			o.pivots[i][v] = int32(best)
			o.pivotDist[i][v] = bd
		}
	}
	// Bunches: B(v) = ∪_i { w ∈ A_i \ A_{i+1} : d(w, v) < d(A_{i+1}, v) }.
	for v := 0; v < n; v++ {
		o.bunch[v] = make(map[int32]float64)
		for i := 0; i < k; i++ {
			next := math.Inf(1)
			if i+1 < k {
				next = o.pivotDist[i+1][v]
			}
			for _, w := range levels[i] {
				if inLevel[i+1][w] {
					continue
				}
				if d := a.Dist(v, w); d < next {
					o.bunch[v][int32(w)] = d
				}
			}
		}
	}
	return o, nil
}

// K returns the oracle's stretch parameter.
func (o *Oracle) K() int { return o.k }

// StretchBound returns 2k-1.
func (o *Oracle) StretchBound() float64 { return float64(2*o.k - 1) }

// LevelSizes returns |A_i| per level.
func (o *Oracle) LevelSizes() []int { return append([]int(nil), o.levelSizes...) }

// Query returns an estimated distance d with
// d(u,v) <= d <= (2k-1) d(u,v), by the classic bunch walk.
func (o *Oracle) Query(u, v int) (float64, error) {
	if u < 0 || u >= o.n || v < 0 || v >= o.n {
		return 0, fmt.Errorf("oracle: query (%d, %d) out of range", u, v)
	}
	if u == v {
		return 0, nil
	}
	w := u
	i := 0
	du := 0.0 // d(u, w)
	for {
		if dv, ok := o.bunch[v][int32(w)]; ok {
			return du + dv, nil
		}
		i++
		if i >= o.k {
			return 0, fmt.Errorf("oracle: bunch walk escaped %d levels (construction bug)", o.k)
		}
		u, v = v, u
		w = int(o.pivots[i][u])
		du = o.pivotDist[i][u]
	}
}

// BunchSize returns |B(v)|.
func (o *Oracle) BunchSize(v int) int { return len(o.bunch[v]) }

// MaxBunchSize returns the largest bunch.
func (o *Oracle) MaxBunchSize() int {
	max := 0
	for v := 0; v < o.n; v++ {
		if s := len(o.bunch[v]); s > max {
			max = s
		}
	}
	return max
}

// TableBits returns the per-node storage: k pivot entries (id +
// distance, charged at 2 ids worth each) plus bunch entries.
func (o *Oracle) TableBits(v int) int {
	b := o.k * 3 * o.idBits
	b += len(o.bunch[v]) * 3 * o.idBits
	return b
}

// SortedBunch returns v's bunch members ascending (for tests).
func (o *Oracle) SortedBunch(v int) []int {
	out := make([]int, 0, len(o.bunch[v]))
	for w := range o.bunch[v] {
		out = append(out, int(w))
	}
	sort.Ints(out)
	return out
}
