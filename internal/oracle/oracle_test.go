package oracle

import (
	"math"
	"testing"
	"testing/quick"

	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
)

func fixtures(t *testing.T, n int, seed int64) (*graph.Graph, *metric.APSP) {
	t.Helper()
	g, _, err := graph.RandomGeometric(n, 0.2, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g, metric.NewAPSP(g)
}

func checkStretch(t *testing.T, o *Oracle, a *metric.APSP) float64 {
	t.Helper()
	worst := 1.0
	for u := 0; u < a.N(); u++ {
		for v := 0; v < a.N(); v++ {
			est, err := o.Query(u, v)
			if err != nil {
				t.Fatalf("Query(%d,%d): %v", u, v, err)
			}
			d := a.Dist(u, v)
			if u == v {
				if est != 0 {
					t.Fatalf("Query(%d,%d) = %v, want 0", u, v, est)
				}
				continue
			}
			if est < d-1e-9 {
				t.Fatalf("Query(%d,%d) = %v below true %v", u, v, est, d)
			}
			if est > o.StretchBound()*d+1e-9 {
				t.Fatalf("Query(%d,%d) = %v exceeds %v * %v", u, v, est, o.StretchBound(), d)
			}
			if r := est / d; r > worst {
				worst = r
			}
		}
	}
	return worst
}

func TestOracleK1IsExact(t *testing.T) {
	_, a := fixtures(t, 80, 1)
	o, err := New(a, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if worst := checkStretch(t, o, a); worst > 1+1e-9 {
		t.Fatalf("k=1 oracle stretch %v != 1", worst)
	}
	// k=1 bunches are all of V.
	if o.BunchSize(0) != a.N() {
		t.Fatalf("k=1 bunch size %d != n", o.BunchSize(0))
	}
}

func TestOracleStretchBounds(t *testing.T) {
	_, a := fixtures(t, 120, 2)
	for k := 1; k <= 4; k++ {
		o, err := New(a, k, 11)
		if err != nil {
			t.Fatal(err)
		}
		worst := checkStretch(t, o, a)
		t.Logf("k=%d: worst stretch %.3f (bound %v), max bunch %d, levels %v",
			k, worst, o.StretchBound(), o.MaxBunchSize(), o.LevelSizes())
	}
}

func TestOracleSpaceShrinksWithK(t *testing.T) {
	_, a := fixtures(t, 250, 3)
	o1, err := New(a, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	o3, err := New(a, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	total1, total3 := 0, 0
	for v := 0; v < a.N(); v++ {
		total1 += o1.TableBits(v)
		total3 += o3.TableBits(v)
	}
	if total3 >= total1 {
		t.Fatalf("k=3 oracle (%d bits) not smaller than k=1 (%d bits)", total3, total1)
	}
}

func TestOracleValidation(t *testing.T) {
	_, a := fixtures(t, 40, 4)
	if _, err := New(a, 0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	o, err := New(a, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Query(-1, 0); err == nil {
		t.Fatal("bad query accepted")
	}
	if _, err := o.Query(0, a.N()); err == nil {
		t.Fatal("bad query accepted")
	}
}

func TestOracleBunchDefinition(t *testing.T) {
	// w ∈ B(v) at level i means d(v,w) < d(v, A_{i+1}); in particular
	// every top-level sample node is in every bunch.
	_, a := fixtures(t, 90, 6)
	o, err := New(a, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < a.N(); v++ {
		b := o.SortedBunch(v)
		if len(b) == 0 {
			t.Fatalf("empty bunch at %d", v)
		}
		// The bunch stores true distances.
		for _, w := range b {
			if math.Abs(o.bunch[v][int32(w)]-a.Dist(v, w)) > 1e-9 {
				t.Fatalf("bunch distance wrong for (%d, %d)", v, w)
			}
		}
	}
}

func TestQuickOracleNeverUnderestimates(t *testing.T) {
	f := func(seed int64, kRaw, aRaw, bRaw uint8) bool {
		g, _, err := graph.RandomGeometric(40+int(uint16(seed)%40), 0.3, seed)
		if err != nil {
			return true
		}
		a := metric.NewAPSP(g)
		k := 1 + int(kRaw)%4
		o, err := New(a, k, seed^7)
		if err != nil {
			return false
		}
		u, v := int(aRaw)%a.N(), int(bRaw)%a.N()
		est, err := o.Query(u, v)
		if err != nil {
			return false
		}
		d := a.Dist(u, v)
		return est >= d-1e-9 && est <= float64(2*k-1)*d+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
