package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotPath enforces the zero-allocation contract on functions annotated
// //determinlint:hotpath: the annotated body, and transitively every
// un-annotated in-module function it calls, must be free of
// allocation-shaped source patterns — make/new, appends that may grow a
// different slice than they reuse, map writes, closures, goroutine
// spawns, fmt-style calls, interface boxing, and string conversions.
//
// Calls are resolved through go/types. A callee is acceptable when it
// is (a) itself annotated hotpath (checked by its own pass), (b) an
// in-module function whose body verifies allocation-free to a bounded
// depth, or (c) on a small stdlib allowlist (sync/atomic, mutex ops,
// time.Now/Since, math, encoding/binary, errors.Is, sort.Search).
// Dynamic calls are trusted only through func-typed struct fields
// annotated //determinlint:hotpath — the runtime AllocsPerRun pins
// cover what the static walk cannot see through the indirection.
//
// Two amortized idioms pass: self-appends (x = append(x, ...) and
// x = append(x[:0], ...)), and make under an if-guard whose condition
// consults cap (grow-once buffers). Error paths are exempt: an if-block
// ending in a return that carries a non-nil error value may allocate
// (errors are off the hot path by construction), and panic arguments
// may format freely.
var HotPath = &Analyzer{
	Name: hotpathRuleName,
	Doc:  "functions annotated //determinlint:hotpath must be transitively allocation-free",
	Run:  runHotPath,
}

const hotpathRuleName = "hotpath"

const hotpathMaxDepth = 10

// hpViolation is one allocation-shaped pattern found in a body.
type hpViolation struct {
	pos token.Pos
	msg string
}

// hpResult is a memoized verdict on an un-annotated function.
type hpResult struct {
	ok  bool
	pos token.Pos
	msg string
}

func runHotPath(p *Pass) {
	x := p.suite.index()
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !commentHasDirective(fd.Doc, hotpathDirective) {
				continue
			}
			pkg := x.packageOf(p.Path)
			if pkg == nil {
				continue
			}
			for _, v := range x.hotpathViolations(pkg, fd.Body, 0, map[string]bool{}) {
				p.Reportf(v.pos, "%s", v.msg)
			}
		}
	}
}

func (x *modIndex) packageOf(path string) *Package {
	for _, pkg := range x.suite.pkgs {
		if pkg.Path == path {
			return pkg
		}
	}
	return nil
}

// probeAllocFree verifies an un-annotated in-module function's body,
// memoizing the verdict. Recursion is treated optimistically (a cycle
// member is judged by its other statements), and chains deeper than
// hotpathMaxDepth fail closed with an annotation hint.
func (x *modIndex) probeAllocFree(key string, depth int, stack map[string]bool) *hpResult {
	if r, ok := x.probes[key]; ok {
		return r
	}
	if stack[key] {
		return &hpResult{ok: true}
	}
	fi := x.funcs[key]
	if fi == nil {
		return &hpResult{ok: false, msg: "body is outside the module"}
	}
	if depth > hotpathMaxDepth {
		return &hpResult{ok: false, msg: fmt.Sprintf("call chain deeper than %d; annotate an intermediate function //determinlint:hotpath", hotpathMaxDepth)}
	}
	stack[key] = true
	violations := x.hotpathViolations(fi.pkg, fi.decl.Body, depth, stack)
	delete(stack, key)
	r := &hpResult{ok: true}
	for _, v := range violations {
		if x.suite.allowed(hotpathRuleName, fi.pkg.Fset.Position(v.pos)) {
			continue
		}
		r = &hpResult{ok: false, pos: v.pos, msg: v.msg}
		break
	}
	x.probes[key] = r
	return r
}

// hotpathViolations walks one function body and returns every
// allocation-shaped pattern in it. Used both directly (annotated
// functions report each violation) and as a probe (un-annotated callees
// fail on the first unsuppressed one).
func (x *modIndex) hotpathViolations(pkg *Package, body *ast.BlockStmt, depth int, stack map[string]bool) []hpViolation {
	info := pkg.Info
	var (
		skip    []posRange // error-return blocks and panic arguments
		capOK   []posRange // if-bodies guarded by a cap() check
		okCalls = map[*ast.CallExpr]bool{}
	)
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IfStmt:
			if isErrorReturnBlock(info, s.Body) {
				skip = append(skip, posRange{s.Body.Pos(), s.Body.End()})
			}
			if condMentionsCap(info, s.Cond) {
				capOK = append(capOK, posRange{s.Body.Pos(), s.Body.End()})
			}
		case *ast.CallExpr:
			if isBuiltinCall(info, s, "panic") {
				skip = append(skip, posRange{s.Lparen, s.Rparen})
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				break
			}
			for i, rhs := range s.Rhs {
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltinCall(info, call, "append") &&
					len(call.Args) > 0 && sameSliceBase(s.Lhs[i], call.Args[0]) {
					okCalls[call] = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && isBuiltinCall(info, call, "append") &&
					len(call.Args) > 0 && isPlainSliceExpr(call.Args[0]) {
					okCalls[call] = true
				}
			}
		}
		return true
	})

	var out []hpViolation
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, hpViolation{pos: pos, msg: fmt.Sprintf(format, args...)})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if within(skip, n.Pos()) {
			return false
		}
		switch e := n.(type) {
		case *ast.FuncLit:
			report(e.Pos(), "closure in hot path: func literals capture and may allocate")
			return false
		case *ast.GoStmt:
			report(e.Pos(), "go statement in hot path: spawning a goroutine allocates")
			return false
		case *ast.AssignStmt:
			x.checkHotAssign(info, e, report)
		case *ast.IncDecStmt:
			if idx, ok := ast.Unparen(e.X).(*ast.IndexExpr); ok && isMapIndex(info, idx) {
				report(e.Pos(), "map write in hot path: map assignment may allocate (rehash)")
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[e]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					report(e.Pos(), "slice literal in hot path allocates")
				case *types.Map:
					report(e.Pos(), "map literal in hot path allocates")
				}
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					report(e.Pos(), "&composite literal in hot path may escape to the heap")
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD {
				if t := info.TypeOf(e.X); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(e.Pos(), "string concatenation in hot path allocates")
					}
				}
			}
		case *ast.CallExpr:
			if okCalls[e] {
				return true // self-append: walk args only
			}
			if v := x.checkHotCall(pkg, e, depth, stack, capOK); v != nil {
				out = append(out, *v)
			}
		}
		return true
	})
	return out
}

// checkHotAssign flags map writes and implicit interface boxing in
// single-value assignments.
func (x *modIndex) checkHotAssign(info *types.Info, a *ast.AssignStmt, report func(token.Pos, string, ...any)) {
	for _, lhs := range a.Lhs {
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isMapIndex(info, idx) {
			report(lhs.Pos(), "map write in hot path: map assignment may allocate (rehash)")
		}
	}
	if a.Tok != token.ASSIGN || len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i, lhs := range a.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		lt, rt := info.TypeOf(lhs), info.TypeOf(a.Rhs[i])
		if lt == nil || rt == nil {
			continue
		}
		if isIfaceType(lt) && !isIfaceType(rt) && !isUntypedNil(rt) {
			report(a.Rhs[i].Pos(), "interface boxing in hot path: assigning %s into %s allocates", rt, lt)
		}
	}
}

// checkHotCall applies the callee policy to one call expression.
func (x *modIndex) checkHotCall(pkg *Package, call *ast.CallExpr, depth int, stack map[string]bool, capOK []posRange) *hpViolation {
	info := pkg.Info
	// Conversions.
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return nil
		}
		at := info.TypeOf(call.Args[0])
		if at == nil {
			return nil
		}
		if isIfaceType(tv.Type) && !isIfaceType(at) && !isUntypedNil(at) {
			return &hpViolation{call.Pos(), fmt.Sprintf("interface boxing in hot path: converting %s to %s allocates", at, tv.Type)}
		}
		if isStringSliceConv(tv.Type, at) {
			return &hpViolation{call.Pos(), "string<->[]byte conversion in hot path copies and allocates"}
		}
		return nil
	}
	fun := ast.Unparen(call.Fun)
	switch e := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(e.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(e.X)
	}
	var obj types.Object
	switch e := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	default:
		// Call of a call result or similar; any allocation inside was
		// already flagged where it appears.
		return nil
	}
	switch fn := obj.(type) {
	case *types.Builtin:
		switch fn.Name() {
		case "make":
			if within(capOK, call.Pos()) {
				return nil // grow-once buffer under a cap() guard
			}
			return &hpViolation{call.Pos(), "make in hot path allocates (grow-once buffers belong under a cap() guard)"}
		case "new":
			return &hpViolation{call.Pos(), "new in hot path allocates"}
		case "append":
			return &hpViolation{call.Pos(), "append in hot path may grow: only self-appends (x = append(x, ...)) are allocation-amortized"}
		case "print", "println":
			return &hpViolation{call.Pos(), fmt.Sprintf("%s in hot path allocates", fn.Name())}
		}
		return nil
	case *types.Func:
		return x.checkHotCallee(pkg, call, fn, depth, stack)
	case *types.Var:
		if x.hotFields[obj] {
			return nil // annotated func-typed field: trusted indirection
		}
		return &hpViolation{call.Pos(), fmt.Sprintf("dynamic call through %s in hot path: annotate the func field //determinlint:hotpath or call directly", obj.Name())}
	case nil:
		return nil
	}
	return nil
}

func (x *modIndex) checkHotCallee(pkg *Package, call *ast.CallExpr, fn *types.Func, depth int, stack map[string]bool) *hpViolation {
	fn = fn.Origin()
	key, hasKey := funcKeyOf(fn)
	if hasKey && x.hotAnn[key] {
		return nil // annotated: its own pass checks the body
	}
	fpkg := fn.Pkg()
	if fpkg == nil {
		// Universe-scope methods (error.Error): allocation-free.
		return nil
	}
	if x.stdlibAllowed(fpkg.Path(), fn.Name()) {
		return nil
	}
	if fpkg.Path() == "fmt" {
		return &hpViolation{call.Pos(), fmt.Sprintf("fmt.%s in hot path allocates (format machinery)", fn.Name())}
	}
	if hasKey {
		if _, inModule := x.funcs[key]; inModule {
			r := x.probeAllocFree(key, depth+1, stack)
			if r.ok {
				return nil
			}
			where := ""
			if r.pos.IsValid() {
				p := pkg.Fset.Position(r.pos)
				where = fmt.Sprintf(" (%s:%d)", p.Filename, p.Line)
			}
			return &hpViolation{call.Pos(), fmt.Sprintf("call to %s is not allocation-free: %s%s", fmtKey(key), r.msg, where)}
		}
	}
	if isIfaceOrTypeParamRecv(fn) {
		return &hpViolation{call.Pos(), fmt.Sprintf("call to un-annotated interface method %s in hot path: annotate it //determinlint:hotpath on the interface", fn.Name())}
	}
	return &hpViolation{call.Pos(), fmt.Sprintf("call to %s.%s in hot path is not on the allocation-free allowlist", fpkg.Path(), fn.Name())}
}

// stdlibAllowed is the closed list of out-of-module calls known not to
// allocate on any path the hot loop takes.
func (x *modIndex) stdlibAllowed(pkgPath, name string) bool {
	switch pkgPath {
	case "sync/atomic", "math", "math/bits", "encoding/binary":
		return true
	case "sync":
		switch name {
		case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
			return true
		}
	case "time":
		switch name {
		case "Now", "Since", "Until", "Microseconds", "Milliseconds", "Nanoseconds", "Seconds":
			return true
		}
	case "errors":
		return name == "Is"
	case "sort":
		return name == "Search" || name == "SearchInts"
	}
	return false
}

// posRange is a half-open source region used to prune exempt subtrees.
type posRange struct{ lo, hi token.Pos }

func within(rs []posRange, pos token.Pos) bool {
	for _, r := range rs {
		if pos >= r.lo && pos <= r.hi {
			return true
		}
	}
	return false
}

var errIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorReturnBlock reports whether block ends in a return carrying a
// non-nil error-typed result — the shape of a cold error path.
func isErrorReturnBlock(info *types.Info, block *ast.BlockStmt) bool {
	if block == nil || len(block.List) == 0 {
		return false
	}
	ret, ok := block.List[len(block.List)-1].(*ast.ReturnStmt)
	if !ok {
		return false
	}
	for _, r := range ret.Results {
		t := info.TypeOf(r)
		if t == nil || isUntypedNil(t) {
			continue
		}
		if types.Implements(t, errIface) || types.Implements(types.NewPointer(t), errIface) {
			return true
		}
	}
	return false
}

func condMentionsCap(info *types.Info, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isBuiltinCall(info, call, "cap") {
			found = true
		}
		return !found
	})
	return found
}

func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// sameSliceBase reports whether the append destination lhs and the
// append's first argument name the same slice (directly or through a
// reslice like x[:0]).
func sameSliceBase(lhs, arg ast.Expr) bool {
	base := ast.Unparen(arg)
	if se, ok := base.(*ast.SliceExpr); ok {
		base = se.X
	}
	return types.ExprString(ast.Unparen(lhs)) == types.ExprString(ast.Unparen(base))
}

// isPlainSliceExpr accepts an identifier or selector (possibly
// resliced) as an append base in return position: the caller passed the
// buffer in, so growth is amortized across reuse.
func isPlainSliceExpr(e ast.Expr) bool {
	e = ast.Unparen(e)
	if se, ok := e.(*ast.SliceExpr); ok {
		e = se.X
	}
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		return true
	}
	return false
}

func isMapIndex(info *types.Info, idx *ast.IndexExpr) bool {
	t := info.TypeOf(idx.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isIfaceType(t types.Type) bool {
	return types.IsInterface(t)
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func isStringSliceConv(dst, src types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteSlice(src)) || (isByteSlice(dst) && isStr(src))
}

func isIfaceOrTypeParamRecv(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch u := t.(type) {
	case *types.Interface, *types.TypeParam:
		_ = u
		return true
	case *types.Named:
		_, isI := u.Underlying().(*types.Interface)
		return isI
	}
	return false
}
