package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ParBody enforces the internal/par determinism contract inside the
// closures handed to par.For, par.Workers, par.Map and par.MapErr:
// iterations may only write state owned by their loop index. Writes to
// variables captured from outside the closure are flagged unless the
// left-hand side indexes the captured value with an expression
// involving the index parameter (a.dist[v*n+t] = …, s.levels[v] =
// append(s.levels[v], …)); serial accumulation belongs in a pass after
// the parallel loop.
//
// The check is syntactic on the assignment chain — writes through a
// locally re-sliced alias of shared memory (perm := a.order[u*n:…];
// perm[i] = …) are deliberately trusted, mirroring how the contract is
// stated in DESIGN.md §Parallel build pipeline.
var ParBody = &Analyzer{
	Name: "parbody",
	Doc:  "flags writes to captured variables not indexed by the loop-index parameter inside par.For/Workers/Map/MapErr bodies",
	Run:  runParBody,
}

// parFuncs maps the pool entry points to the position of the body
// closure in their argument lists (always last, but named for clarity).
var parFuncs = map[string]bool{"For": true, "Workers": true, "Map": true, "MapErr": true}

func runParBody(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := parCallee(p, call)
			if !ok || len(call.Args) == 0 {
				return true
			}
			body, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
			if !ok {
				// The closure came through a variable; nothing to inspect here.
				return true
			}
			idx := indexParam(p, body)
			checkParBody(p, name, body, idx)
			return true
		})
	}
}

// parCallee resolves call to a par pool entry point, looking through
// generic instantiation syntax (par.Map[T]).
func parCallee(p *Pass, call *ast.CallExpr) (string, bool) {
	fun := call.Fun
	switch e := fun.(type) {
	case *ast.IndexExpr:
		fun = e.X
	case *ast.IndexListExpr:
		fun = e.X
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return "", false
	}
	path := obj.Pkg().Path()
	if path != "par" && !strings.HasSuffix(path, "/par") {
		return "", false
	}
	if !parFuncs[obj.Name()] {
		return "", false
	}
	return obj.Name(), true
}

// indexParam returns the object of the closure's loop-index parameter
// (the single int argument every par body receives), or nil when it is
// blank or absent.
func indexParam(p *Pass, lit *ast.FuncLit) types.Object {
	params := lit.Type.Params
	if params == nil || len(params.List) == 0 || len(params.List[0].Names) == 0 {
		return nil
	}
	name := params.List[0].Names[0]
	if name.Name == "_" {
		return nil
	}
	return p.Info.Defs[name]
}

// checkParBody walks the closure flagging disallowed writes. Nested par
// calls are not descended into here — the outer Inspect visits them
// separately with their own index parameter, and each closure's writes
// are judged against the innermost contract that owns them.
func checkParBody(p *Pass, parFn string, body *ast.FuncLit, idx types.Object) {
	ast.Inspect(body.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			if _, ok := parCallee(p, s); ok {
				if _, isLit := s.Args[len(s.Args)-1].(*ast.FuncLit); isLit {
					return false // inner par body has its own index contract
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				checkParWrite(p, parFn, body, idx, lhs)
			}
		case *ast.IncDecStmt:
			checkParWrite(p, parFn, body, idx, s.X)
		case *ast.RangeStmt:
			if s.Tok == token.ASSIGN {
				if s.Key != nil {
					checkParWrite(p, parFn, body, idx, s.Key)
				}
				if s.Value != nil {
					checkParWrite(p, parFn, body, idx, s.Value)
				}
			}
		}
		return true
	})
}

// checkParWrite flags lhs when its base variable is captured from
// outside the closure and no index expression along the chain involves
// the loop-index parameter.
func checkParWrite(p *Pass, parFn string, body *ast.FuncLit, idx types.Object, lhs ast.Expr) {
	base, owned := splitWriteChain(p, idx, lhs)
	if base == nil || owned {
		return
	}
	obj := p.Info.ObjectOf(base)
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	if v.Pos() >= body.Pos() && v.Pos() <= body.End() {
		return // declared inside the closure: iteration-local
	}
	if obj == idx {
		return // rebinding the index itself is iteration-local
	}
	p.Reportf(lhs.Pos(), "write to captured %q inside par.%s body is not indexed by the loop parameter: iterations may only write state owned by their index (accumulate serially after the loop)",
		types.ExprString(lhs), parFn)
}

// splitWriteChain unwinds selectors, stars, parens and indexes on an
// assignment target, returning the base identifier and whether any
// index expression along the chain mentions the loop-index parameter.
func splitWriteChain(p *Pass, idx types.Object, e ast.Expr) (*ast.Ident, bool) {
	owned := false
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, owned
		case *ast.IndexExpr:
			if idx != nil && mentionsObj(p, x.Index, idx) {
				owned = true
			}
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil, owned
		}
	}
}

func mentionsObj(p *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
