package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// modIndex is the lazily built module-wide view the call-graph rules
// (hotpath, lockorder) share: every function declaration keyed for
// cross-package lookup, the set of //determinlint:hotpath annotations,
// and memoized verification results. One index serves one Suite.Run.
type modIndex struct {
	suite *Suite
	// funcs maps funcKey -> declaration for every FuncDecl with a body.
	funcs map[string]*declInfo
	// hotAnn marks funcKeys carrying //determinlint:hotpath: FuncDecls
	// and interface methods. Calls to them are trusted, and their own
	// bodies are checked directly by the hotpath pass.
	hotAnn map[string]bool
	// hotFields marks func-typed struct fields annotated hotpath; a
	// dynamic call through such a field is trusted (the runtime
	// AllocsPerRun pins cover what static analysis cannot see through
	// the indirection).
	hotFields map[types.Object]bool
	// lockClass names every sync.Mutex/RWMutex struct field
	// "pkg.Struct.field" for lock-order tracking.
	lockClass map[types.Object]string

	probes map[string]*hpResult // memoized allocation-free verdicts

	lockOnce  bool
	lockDiags map[string][]posDiag // package path -> pending lockorder reports
	lockSets  map[string]map[string]token.Pos
}

// declInfo is one indexed function declaration.
type declInfo struct {
	decl *ast.FuncDecl
	pkg  *Package
}

// posDiag is a report computed module-wide, held until the owning
// package's pass emits it (so allow directives and sorting work the
// same as for per-package rules).
type posDiag struct {
	pos token.Pos
	msg string
}

// index builds (once per Run) the module-wide declaration index.
func (s *Suite) index() *modIndex {
	if s.idx != nil {
		return s.idx
	}
	x := &modIndex{
		suite:     s,
		funcs:     make(map[string]*declInfo),
		hotAnn:    make(map[string]bool),
		hotFields: make(map[types.Object]bool),
		lockClass: make(map[types.Object]string),
		probes:    make(map[string]*hpResult),
	}
	for _, pkg := range s.pkgs {
		x.indexPackage(pkg)
	}
	s.idx = x
	return x
}

func (x *modIndex) indexPackage(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				key := pkg.Path + "\x00" + astRecvName(d) + "\x00" + d.Name.Name
				x.funcs[key] = &declInfo{decl: d, pkg: pkg}
				if commentHasDirective(d.Doc, hotpathDirective) {
					x.hotAnn[key] = true
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					x.indexTypeSpec(pkg, ts)
				}
			}
		}
	}
}

func (x *modIndex) indexTypeSpec(pkg *Package, ts *ast.TypeSpec) {
	switch t := ts.Type.(type) {
	case *ast.InterfaceType:
		for _, field := range t.Methods.List {
			if len(field.Names) == 0 {
				continue // embedded interface
			}
			if commentHasDirective(field.Doc, hotpathDirective) || commentHasDirective(field.Comment, hotpathDirective) {
				for _, name := range field.Names {
					x.hotAnn[pkg.Path+"\x00"+ts.Name.Name+"\x00"+name.Name] = true
				}
			}
		}
	case *ast.StructType:
		for _, field := range t.Fields.List {
			for _, name := range field.Names {
				obj := pkg.Info.Defs[name]
				if obj == nil {
					continue
				}
				if isSyncMutexType(obj.Type()) {
					x.lockClass[obj] = pkg.Path + "." + ts.Name.Name + "." + name.Name
				}
				if _, isFunc := obj.Type().Underlying().(*types.Signature); isFunc &&
					(commentHasDirective(field.Doc, hotpathDirective) || commentHasDirective(field.Comment, hotpathDirective)) {
					x.hotFields[obj] = true
				}
			}
		}
	}
}

// funcKeyOf derives the cross-package lookup key for a resolved callee.
// Generic instantiations normalize through Origin; methods reached
// through a type parameter key on the parameter's named constraint, so
// a call on `h H` with `H Header` matches an annotation on the Header
// interface method.
func funcKeyOf(fn *types.Func) (string, bool) {
	fn = fn.Origin()
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv = recvTypeName(sig.Recv().Type())
	}
	return pkg.Path() + "\x00" + recv + "\x00" + fn.Name(), true
}

func recvTypeName(t types.Type) string {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u.Obj().Name()
		case *types.Interface:
			return ""
		case *types.TypeParam:
			if n, ok := u.Constraint().(*types.Named); ok {
				return n.Obj().Name()
			}
			return ""
		default:
			return ""
		}
	}
}

// astRecvName extracts the receiver type's bare name from a FuncDecl,
// stripping pointers and type-parameter brackets.
func astRecvName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch u := t.(type) {
		case *ast.StarExpr:
			t = u.X
		case *ast.IndexExpr:
			t = u.X
		case *ast.IndexListExpr:
			t = u.X
		case *ast.Ident:
			return u.Name
		case *ast.ParenExpr:
			t = u.X
		default:
			return ""
		}
	}
}

func commentHasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// isSyncMutexType reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex.
func isSyncMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// calleeFunc resolves a call expression to its *types.Func if the
// callee is statically known, unwrapping generic instantiation syntax.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch e := fun.(type) {
	case *ast.IndexExpr:
		fun = e.X
	case *ast.IndexListExpr:
		fun = e.X
	}
	var obj types.Object
	switch e := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// calleeKeyIn resolves a call to its in-module funcKey, or "" when the
// callee is dynamic, out-of-module, or bodiless.
func (x *modIndex) calleeKeyIn(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil {
		return ""
	}
	key, ok := funcKeyOf(fn)
	if !ok {
		return ""
	}
	if _, in := x.funcs[key]; !in {
		return ""
	}
	return key
}

func fmtKey(key string) string {
	parts := strings.SplitN(key, "\x00", 3)
	if len(parts) != 3 {
		return key
	}
	if parts[1] == "" {
		return parts[0] + "." + parts[2]
	}
	return fmt.Sprintf("%s.%s.%s", parts[0], parts[1], parts[2])
}
