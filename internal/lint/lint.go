// Package lint is a self-contained, stdlib-only static-analysis
// framework enforcing the repository's determinism and concurrency
// contracts at the source level (see DESIGN.md §Static analysis).
//
// The runtime tests catch contract violations probabilistically — a
// racy write inside a par.For body or an unordered map iteration
// feeding JSON output shows up only when a schedule happens to expose
// it. The analyzers here reject the violating *source patterns*
// deterministically at `make check` time instead:
//
//   - maprange:     `for range` over a map in a deterministic package
//   - wallclock:    time.Now/Since/Until or global math/rand in a
//     deterministic package
//   - parbody:      writes to captured state not owned by the loop
//     index inside par.For/par.Workers/par.Map/par.MapErr bodies
//   - guardedfield: struct fields annotated `// guarded by <mu>`
//     accessed without locking that mutex (plus `atomic` and `init`
//     guard modes)
//   - floateq:      ==/!= between floating-point values outside
//     approved helpers and exact-zero sentinels
//   - hotpath:      functions annotated //determinlint:hotpath must be
//     transitively allocation-free (no make/new/map writes/closures/
//     growing appends/interface boxing/fmt, and every callee either
//     annotated, verifiably clean, or allowlisted)
//   - codecpair:    a type with an Encode(*bits.Writer) method must
//     carry a decode counterpart and Bits() int; every exported
//     Encode* in a deterministic package must be reachable from a
//     Test/Fuzz/Benchmark function in the same package
//   - goleak:       go statements in concurrency-bearing packages must
//     show a join or cancel (WaitGroup Add/Done pairing, channel the
//     spawner receives from, body tied to a done channel, or a
//     `// joined by <what>` annotation)
//   - lockorder:    cycles in the mutex-acquisition graph, and
//     lock-held calls into exported functions that themselves lock
//
// Findings are suppressed with a directive on the offending line or
// the line above:
//
//	//determinlint:allow <rule> <reason>
//
// The reason is mandatory, and an allow that suppresses nothing is
// itself reported when the full suite runs, so stale suppressions
// cannot accumulate.
//
// A package opts into the deterministic ruleset either by appearing in
// the runner's Deterministic set (the repo pins its paper-bearing
// packages in DefaultDeterministic) or by carrying the file-level
// directive
//
//	//determinlint:deterministic
//
// in any of its files.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Analyzer is one named source check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the full suite in report order.
func All() []*Analyzer {
	return []*Analyzer{
		MapRange,
		WallClock,
		ParBody,
		GuardedField,
		FloatEq,
		HotPath,
		CodecPair,
		GoLeak,
		LockOrder,
	}
}

// ByName resolves a comma-separated analyzer list against All.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, strings.Join(AnalyzerNames(), ", "))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty analyzer list")
	}
	return out, nil
}

// AnalyzerNames lists every analyzer name, plus the reserved directive
// pseudo-rule.
func AnalyzerNames() []string {
	var out []string
	for _, a := range All() {
		out = append(out, a.Name)
	}
	return out
}

// Diagnostic is one finding, positioned for file:line reporting.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass is the per-(analyzer, package) unit of work handed to
// Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Path     string // import path
	// Det marks packages bound by the deterministic ruleset (maprange,
	// wallclock, floateq, codecpair). parbody and guardedfield apply
	// everywhere.
	Det bool
	// Goleak marks packages bound by the goroutine-join rule.
	Goleak bool

	suite *Suite
}

// Reportf records a finding at pos unless an allow directive for this
// analyzer covers the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suite.allowed(p.Analyzer.Name, position) {
		return
	}
	p.suite.diags = append(p.suite.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// directive names.
const (
	directivePrefix   = "//determinlint:"
	allowDirective    = "//determinlint:allow"
	detPkgDirective   = "//determinlint:deterministic"
	hotpathDirective  = "//determinlint:hotpath"    // on a func decl, interface method, or func-typed field
	goroutinesDir     = "//determinlint:goroutines" // file-level opt-in to the goleak rule
	directiveRuleName = "directive"                 // pseudo-rule for malformed/stale directives
)

// allow is one parsed //determinlint:allow directive.
type allow struct {
	rule   string
	reason string
	pos    token.Position
	used   bool
}

// Suite runs a set of analyzers over loaded packages.
type Suite struct {
	// Analyzers to run; nil means All().
	Analyzers []*Analyzer
	// Deterministic marks additional packages (by import path) as bound
	// by the deterministic ruleset, beyond those carrying the
	// //determinlint:deterministic directive.
	Deterministic func(path string) bool
	// Goroutines marks additional packages (by import path) as bound by
	// the goleak rule, beyond those carrying the
	// //determinlint:goroutines directive (the repo pins its
	// concurrency-bearing packages in GoroutinePaths).
	Goroutines func(path string) bool

	diags   []Diagnostic
	allows  map[string]map[int][]*allow // filename -> line -> directives
	pkgs    []*Package                  // the packages of the current Run, for cross-package passes
	idx     *modIndex                   // lazy module-wide call-graph index
	timings []RuleTiming
}

// RuleTiming is one analyzer's cost and yield over a full Run.
type RuleTiming struct {
	Name     string
	Duration time.Duration
	Findings int
}

// Timings reports per-analyzer wall time and finding counts for the
// most recent Run, in All() order (plus the directive pseudo-rule when
// it fired).
func (s *Suite) Timings() []RuleTiming { return s.timings }

// DeterministicPaths is the repo's pinned set of deterministic
// packages: every package whose output feeds a bit-accounted,
// seed-deterministic result table (see ISSUE/DESIGN). The list is
// belt-and-braces with the //determinlint:deterministic directive each
// of these packages also carries.
var DeterministicPaths = map[string]bool{
	"compactrouting/internal/dist":      true,
	"compactrouting/internal/metric":    true,
	"compactrouting/internal/labeled":   true,
	"compactrouting/internal/nameind":   true,
	"compactrouting/internal/rnet":      true,
	"compactrouting/internal/exp":       true,
	"compactrouting/internal/faultsim":  true,
	"compactrouting/internal/sim":       true,
	"compactrouting/internal/ballpack":  true,
	"compactrouting/internal/treeroute": true,
	"compactrouting/internal/tz":        true,
	"compactrouting/internal/trace":     true,
	"compactrouting/internal/frame":     true,
	"compactrouting/internal/snapshot":  true,
}

// GoroutinePaths is the repo's pinned set of packages bound by the
// goleak rule: everywhere a detached goroutine could outlive the work
// it serves (the serving plane, the CONGEST simulator, fault
// experiments, the worker pool, and the long-running binaries).
var GoroutinePaths = map[string]bool{
	"compactrouting/internal/server":   true,
	"compactrouting/internal/dist":     true,
	"compactrouting/internal/faultsim": true,
	"compactrouting/internal/par":      true,
	"compactrouting/cmd/routed":        true,
	"compactrouting/cmd/routeload":     true,
}

// Run executes the suite and returns the findings sorted by position.
// Malformed directives and — when the full suite is running — stale
// (unused) allow directives are reported under the pseudo-rule
// "directive".
func (s *Suite) Run(pkgs []*Package) []Diagnostic {
	anas := s.Analyzers
	if anas == nil {
		anas = All()
	}
	s.diags = nil
	s.allows = make(map[string]map[int][]*allow)
	s.pkgs = pkgs
	s.idx = nil
	elapsed := make(map[string]time.Duration, len(anas))
	for _, pkg := range pkgs {
		s.collectDirectives(pkg)
	}
	for _, pkg := range pkgs {
		det := hasDetDirective(pkg)
		if !det && s.Deterministic != nil {
			det = s.Deterministic(pkg.Path)
		}
		goleak := hasFileDirective(pkg, goroutinesDir)
		if !goleak && s.Goroutines != nil {
			goleak = s.Goroutines(pkg.Path)
		}
		for _, a := range anas {
			start := time.Now()
			a.Run(&Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Path:     pkg.Path,
				Det:      det,
				Goleak:   goleak,
				suite:    s,
			})
			elapsed[a.Name] += time.Since(start)
		}
	}
	if len(anas) == len(All()) {
		s.reportUnusedAllows()
	}
	s.timings = s.timings[:0]
	counts := make(map[string]int)
	for _, d := range s.diags {
		counts[d.Analyzer]++
	}
	for _, a := range anas {
		s.timings = append(s.timings, RuleTiming{Name: a.Name, Duration: elapsed[a.Name], Findings: counts[a.Name]})
	}
	if counts[directiveRuleName] > 0 {
		s.timings = append(s.timings, RuleTiming{Name: directiveRuleName, Findings: counts[directiveRuleName]})
	}
	sort.Slice(s.diags, func(i, j int) bool {
		a, b := s.diags[i], s.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return s.diags
}

// collectDirectives parses every //determinlint: comment in the
// package, indexing allow directives by file and line and reporting
// malformed ones immediately.
func (s *Suite) collectDirectives(pkg *Package) {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if text == detPkgDirective || text == hotpathDirective || text == goroutinesDir {
					continue
				}
				if !strings.HasPrefix(text, allowDirective) {
					s.diags = append(s.diags, Diagnostic{
						Pos: pos, Analyzer: directiveRuleName,
						Message: fmt.Sprintf("unknown determinlint directive %q (want %s, %s, %s, or %s)", text, allowDirective, detPkgDirective, hotpathDirective, goroutinesDir),
					})
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, allowDirective))
				if len(fields) == 0 {
					s.diags = append(s.diags, Diagnostic{
						Pos: pos, Analyzer: directiveRuleName,
						Message: "allow directive names no rule: want //determinlint:allow <rule> <reason>",
					})
					continue
				}
				rule := fields[0]
				if !known[rule] {
					s.diags = append(s.diags, Diagnostic{
						Pos: pos, Analyzer: directiveRuleName,
						Message: fmt.Sprintf("allow directive names unknown rule %q (have %s)", rule, strings.Join(AnalyzerNames(), ", ")),
					})
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(text, allowDirective), " "+rule))
				if reason == "" {
					s.diags = append(s.diags, Diagnostic{
						Pos: pos, Analyzer: directiveRuleName,
						Message: fmt.Sprintf("allow directive for %q carries no reason: suppressions must say why the pattern is safe", rule),
					})
					continue
				}
				byLine := s.allows[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]*allow)
					s.allows[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], &allow{rule: rule, reason: reason, pos: pos})
			}
		}
	}
}

// allowed reports (and consumes) a matching allow directive on the
// diagnostic's line or the line directly above it.
func (s *Suite) allowed(rule string, pos token.Position) bool {
	byLine := s.allows[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, al := range byLine[line] {
			if al.rule == rule {
				al.used = true
				return true
			}
		}
	}
	return false
}

// reportUnusedAllows flags allow directives that suppressed nothing, so
// fixed code sheds its stale suppressions.
func (s *Suite) reportUnusedAllows() {
	for _, byLine := range s.allows {
		for _, als := range byLine {
			for _, al := range als {
				if !al.used {
					s.diags = append(s.diags, Diagnostic{
						Pos: al.pos, Analyzer: directiveRuleName,
						Message: fmt.Sprintf("unused allow directive: no %s finding on this or the next line", al.rule),
					})
				}
			}
		}
	}
}

// hasDetDirective reports whether any file of the package carries the
// //determinlint:deterministic marker.
func hasDetDirective(pkg *Package) bool {
	return hasFileDirective(pkg, detPkgDirective)
}

// hasFileDirective reports whether any file of the package carries the
// given file-level marker comment.
func hasFileDirective(pkg *Package, directive string) bool {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) == directive {
					return true
				}
			}
		}
	}
	return false
}

// enclosingFunc returns the innermost function declaration or literal
// containing pos, searching the package's files.
func enclosingFunc(files []*ast.File, pos token.Pos) ast.Node {
	var best ast.Node
	for _, f := range files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if pos < n.Pos() || pos > n.End() {
				return false
			}
			switch n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				best = n // innermost wins: Inspect descends
			}
			return true
		})
	}
	return best
}
