package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange flags `for range` over a map type in deterministic
// packages. Go randomizes map iteration order per run, so any map
// range whose effect depends on visit order breaks the repo's
// byte-identical-output contract. Loops whose bodies only accumulate
// order-insensitive state (commutative integer updates, constant
// stores, deletes) pass; anything else needs a sort-the-keys rewrite
// or an allow directive with a reason.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "flags range over a map in deterministic packages unless the body is provably order-insensitive",
	Run:  runMapRange,
}

func runMapRange(p *Pass) {
	if !p.Det {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if benignMapBody(p, rs.Body) {
				return true
			}
			p.Reportf(rs.For, "range over map %s: iteration order is randomized; iterate sorted keys instead (or annotate an order-insensitive loop with //determinlint:allow maprange <reason>)",
				types.ExprString(rs.X))
			return true
		})
	}
}

// benignMapBody reports whether every statement in the loop body is
// order-insensitive: commutative integer accumulation (+= -= |= &= ^=,
// ++ --), stores of constants, map deletes, and if/blocks composed of
// the same (with call-free conditions). Anything else — appends,
// function calls, float math, early exits — is treated as
// order-sensitive.
func benignMapBody(p *Pass, body *ast.BlockStmt) bool {
	for _, st := range body.List {
		if !benignStmt(p, st) {
			return false
		}
	}
	return true
}

func benignStmt(p *Pass, st ast.Stmt) bool {
	switch s := st.(type) {
	case *ast.IncDecStmt:
		return isIntegerExpr(p, s.X)
	case *ast.AssignStmt:
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			return len(s.Lhs) == 1 && isIntegerExpr(p, s.Lhs[0]) && !hasCall(s.Rhs[0])
		case token.ASSIGN:
			// Storing a constant is idempotent across iterations.
			for _, rhs := range s.Rhs {
				tv, ok := p.Info.Types[rhs]
				if !ok || tv.Value == nil {
					return false
				}
			}
			return true
		default:
			return false
		}
	case *ast.ExprStmt:
		// delete(m, k) commutes with itself.
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "delete" {
			return false
		}
		_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
		return isBuiltin
	case *ast.IfStmt:
		if s.Init != nil || hasCall(s.Cond) {
			return false
		}
		if !benignMapBody(p, s.Body) {
			return false
		}
		if s.Else != nil {
			return benignStmt(p, s.Else)
		}
		return true
	case *ast.BlockStmt:
		return benignMapBody(p, s)
	case *ast.BranchStmt:
		// A plain continue skips an iteration without ordering effects;
		// break and goto make the executed set order-dependent.
		return s.Tok == token.CONTINUE && s.Label == nil
	default:
		return false
	}
}

func isIntegerExpr(p *Pass, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func hasCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}
