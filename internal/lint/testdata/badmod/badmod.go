// Package badmod is a tiny standalone module containing one
// determinism violation; the CLI tests point determinlint at this
// directory and expect exit code 1 with a file:line diagnostic.
//
//determinlint:deterministic
package badmod

import "sort"

// Keys appends in map iteration order.
func Keys(m map[int]string) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
