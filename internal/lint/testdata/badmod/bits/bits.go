// Package bits is a minimal bit-writer stub so the parent module can
// exercise the codecpair rule (which matches encoder signatures by the
// package basename "bits").
package bits

// Writer is a stub bit stream.
type Writer struct{ n int }

// WriteBits appends n bits.
func (w *Writer) WriteBits(v uint64, n int) { w.n += n }
