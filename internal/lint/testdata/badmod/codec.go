package badmod

import "badmod/bits"

// Blob has an encoder but no decode counterpart, no Bits method, and
// no test reaching Encode — three codecpair findings.
type Blob struct{ V uint64 }

// Encode writes the blob.
func (b *Blob) Encode(w *bits.Writer) { w.WriteBits(b.V, 64) }
