package badmod

// The goroutines directive opts this file's package into the goleak
// rule; SpawnLeak shows no join, cancel tie, or `// joined by` note.
//
//determinlint:goroutines
var _ = 0

// SpawnLeak fires a goroutine and forgets it.
func SpawnLeak() {
	go func() {}()
}
