package badmod

import "sync"

// locks holds two mutexes acquired in opposite orders below, so the
// lockorder rule sees a cycle in the acquisition graph.
type locks struct {
	a sync.Mutex
	b sync.Mutex
}

func (l *locks) aThenB() {
	l.a.Lock()
	l.b.Lock()
	l.b.Unlock()
	l.a.Unlock()
}

func (l *locks) bThenA() {
	l.b.Lock()
	l.a.Lock()
	l.a.Unlock()
	l.b.Unlock()
}
