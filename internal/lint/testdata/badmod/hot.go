package badmod

// HotAlloc is annotated allocation-free but allocates.
//
//determinlint:hotpath
func HotAlloc(n int) []int {
	return make([]int, n)
}
