// Package det exercises the deterministic-package rules: maprange,
// wallclock and floateq all apply because of the directive below.
//
//determinlint:deterministic
package det

import (
	"math/rand"
	"sort"
	"time"
)

// Sum accumulates into an integer: commutative, so the loop is benign.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Mark stores constants and deletes: idempotent across orders, benign.
func Mark(m map[string]int, dead map[string]bool) {
	for k := range m {
		if m[k] < 0 {
			continue
		}
		dead[k] = true
		delete(m, k)
	}
}

// Keys collects map keys in iteration order — the canonical violation
// (append is order-sensitive even though the caller sorts afterwards).
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want maprange
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Allowed carries a suppression with a reason, so the same pattern as
// Keys produces no finding.
func Allowed(m map[string]int) []string {
	var out []string
	//determinlint:allow maprange keys are sorted before return, so the result is independent of iteration order
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// MaxVal breaks the benign whitelist: comparing and keeping a maximum
// of floats is order-sensitive under NaN and signed zeros.
func MaxVal(m map[string]float64) float64 {
	best := 0.0
	for _, v := range m { // want maprange
		if v > best {
			best = v
		}
	}
	return best
}

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().Unix() // want wallclock
}

// Elapsed reads the wall clock through Since.
func Elapsed(start time.Time) float64 {
	return time.Since(start).Seconds() // want wallclock
}

// Roll draws from the process-global generator.
func Roll() int {
	return rand.Intn(6) // want wallclock
}

// Seeded draws from an explicit source: the approved path.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// Close compares floats exactly outside any approved helper.
func Close(a, b float64) bool {
	return a == b // want floateq
}

// IsOrigin compares against the exact-zero sentinel: legal.
func IsOrigin(d float64) bool {
	return d == 0
}

// approxEqual is an approved helper name: exact comparison inside it
// is the point of the helper.
func approxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	d := a - b
	return d < 1e-9 && d > -1e-9
}
