// Package guarded exercises the guardedfield annotation modes: mutex,
// atomic and init.
package guarded

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu   sync.Mutex
	n    int           // guarded by mu
	hits atomic.Uint64 // guarded by atomic
	name string        // guarded by init
	// guarded by atomic
	bogus int // want guardedfield
}

type lost struct {
	data int // guarded by lock — want guardedfield
}

// newCounter constructs through a composite literal: exempt from every
// mode, including init.
func newCounter(name string) *counter {
	return &counter{name: name}
}

// Add holds the mutex and touches the atomic: both accesses clean.
func (c *counter) Add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
	c.hits.Add(1)
}

// Peek reads a mutex-guarded field without locking.
func (c *counter) Peek() int {
	return c.n // want guardedfield
}

// addLocked is trusted to be called with the lock held: the *Locked
// naming convention.
func (c *counter) addLocked(d int) {
	c.n += d
}

// Rename writes an init-guarded field after construction.
func (c *counter) Rename(s string) {
	c.name = s // want guardedfield
}

type table struct {
	mu sync.RWMutex
	m  map[string]int // guarded by mu
}

// Get reads under RLock: reads accept the shared lock.
func (t *table) Get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

// Put writes under RLock only: writes require the exclusive lock.
func (t *table) Put(k string, v int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.m[k] = v // want guardedfield
}
