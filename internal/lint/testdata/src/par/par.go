// Package par is a serial stand-in for the repo's deterministic worker
// pool, giving the parbody fixtures real par.For/Workers/Map/MapErr
// callees to resolve against. The analyzer matches any package whose
// import path is "par" or ends in "/par".
package par

// For runs body(0..n-1).
func For(n int, body func(i int)) {
	for i := 0; i < n; i++ {
		body(i)
	}
}

// Workers runs body(0..n-1); the worker count is ignored here.
func Workers(workers, n int, body func(i int)) {
	_ = workers
	For(n, body)
}

// Map collects f(0..n-1).
func Map[T any](n int, f func(i int) T) []T {
	out := make([]T, n)
	for i := 0; i < n; i++ {
		out[i] = f(i)
	}
	return out
}

// MapErr collects f(0..n-1), stopping at the first error.
func MapErr[T any](n int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	for i := 0; i < n; i++ {
		v, err := f(i)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
