// Package codecpair exercises the codec-pairing rule: writer-shaped
// encoders must carry a decode counterpart and a Bits() int method,
// and exported Encode* functions must be reachable from a test or fuzz
// target in this package (see codecpair_test.go for the reachable
// set).
//
//determinlint:deterministic
package codecpair

import "bits"

// Good has the full codec contract: encode, decode, and Bits.
type Good struct{ v uint64 }

func (g Good) Encode(w *bits.Writer) { w.WriteBits(g.v, 8) }

func (g Good) Bits() int { return 8 }

func DecodeGood(r *bits.Reader) (Good, error) {
	v, err := r.ReadBits(8)
	return Good{v: v}, err
}

// NoBits has a decoder but no size accountant.
type NoBits struct{ v uint64 }

func (n NoBits) Encode(w *bits.Writer) { w.WriteBits(n.v, 4) } // want codecpair

func DecodeNoBits(r *bits.Reader) (NoBits, error) {
	v, err := r.ReadBits(4)
	return NoBits{v: v}, err
}

// NoDecode can be written but never read back.
type NoDecode struct{ v uint64 }

func (n NoDecode) Encode(w *bits.Writer) { w.WriteBits(n.v, 2) } // want codecpair

func (n NoDecode) Bits() int { return 2 }

// EncodeOrphan is exported but exercised by no test or fuzz target.
func EncodeOrphan(w *bits.Writer, v uint64) { w.WriteBits(v, 16) } // want codecpair

// EncodeUsed is reached through the round-trip test's helper.
func EncodeUsed(w *bits.Writer, g Good) { g.Encode(w) }
