package codecpair

import (
	"testing"

	"bits"
)

func TestRoundTrip(t *testing.T) {
	var w bits.Writer
	g := Good{v: 7}
	g.Encode(&w)
	if w.Len() != g.Bits() {
		t.Fatalf("Len %d != Bits %d", w.Len(), g.Bits())
	}
	var r bits.Reader
	if _, err := DecodeGood(&r); err != nil {
		t.Fatal(err)
	}
	helperEncode(t)
}

func helperEncode(t *testing.T) {
	t.Helper()
	var w bits.Writer
	EncodeUsed(&w, Good{v: 1})
}
