// Package directive exercises the directive pseudo-rule: malformed and
// stale //determinlint: comments are findings themselves. The block
// comments carry the expectations because the line comments are the
// directives under test.
package directive

/* want directive */ //determinlint:allow maprange
var a = 0

/* want directive */ //determinlint:allow frobnicate no such rule exists
var b = 0

/* want directive */ //determinlint:suppress wrong directive name entirely
var c = 0

/* want directive */ //determinlint:allow wallclock nothing on the next line reads the clock, so this is stale
var d = 0

var _ = a + b + c + d
