// Package hotpath exercises the transitive allocation-free rule: every
// marked line must fire exactly the hotpath rule, and the unmarked
// idioms (self-append, cap-guarded make, error paths, annotated
// callees) must stay clean.
package hotpath

import "fmt"

type W struct{ n int }

//determinlint:hotpath
func Make(n int) []int {
	s := make([]int, n) // want hotpath
	return s
}

//determinlint:hotpath
func New() *W {
	return new(W) // want hotpath
}

//determinlint:hotpath
func Grow(dst, src []byte) []byte {
	tmp := append(src, 0) // want hotpath
	_ = tmp
	dst = append(dst, src...) // self-append: amortized, clean
	return dst
}

//determinlint:hotpath
func Reuse(buf []byte, n int) []byte {
	if n > cap(buf) {
		buf = make([]byte, n) // grow-once under a cap() guard: clean
	}
	return buf[:n]
}

//determinlint:hotpath
func MapWrite(m map[int]int, k int) {
	m[k] = 1 // want hotpath
}

//determinlint:hotpath
func Closure(xs []int) {
	f := func() int { return len(xs) } // want hotpath
	_ = f
}

//determinlint:hotpath
func Format(x int) string {
	return fmt.Sprintf("%d", x) // want hotpath
}

var sink any

//determinlint:hotpath
func Box(x int) {
	sink = x // want hotpath
}

type boxer interface{ M() }

type impl struct{}

func (impl) M() {}

//determinlint:hotpath
func Conv(v impl) boxer {
	return boxer(v) // want hotpath
}

//determinlint:hotpath
func Lit() []int {
	return []int{1, 2} // want hotpath
}

//determinlint:hotpath
func Spawn() {
	go leafAdd(1, 2) // want hotpath
}

//determinlint:hotpath
func ErrPath(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("empty") // error path: exempt
	}
	return int(b[0]), nil
}

func leafAdd(a, b int) int { return a + b }

func allocs(n int) []int { return make([]int, n) }

//determinlint:hotpath
func Calls(n int) int {
	x := leafAdd(n, 1) // verified leaf: clean
	_ = allocs(n)      // want hotpath
	return x
}

type Codec interface {
	//determinlint:hotpath
	Size() int
	Grow() []byte
}

//determinlint:hotpath
func UseIface(c Codec) int {
	n := c.Size() // annotated interface method: clean
	_ = c.Grow()  // want hotpath
	return n
}

type runner struct {
	//determinlint:hotpath
	fast func(int) int
	slow func(int) int
}

//determinlint:hotpath
func UseField(r *runner, x int) int {
	a := r.fast(x) // annotated func field: trusted indirection
	b := r.slow(x) // want hotpath
	return a + b
}

//determinlint:hotpath
func WarmUp(n int) []byte {
	//determinlint:allow hotpath one-time warm-up growth is amortized across the connection
	buf := make([]byte, n)
	return buf
}
