// Package nondet carries no deterministic marker: maprange, wallclock
// and floateq stay silent here (parbody and guardedfield still apply
// everywhere, but nothing in this file trips them).
package nondet

import "time"

// Keys ranges a map and reads the clock — both fine outside the
// deterministic set.
func Keys(m map[string]int) ([]string, time.Time) {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out, time.Now()
}

// Eq compares floats exactly — also fine outside the set.
func Eq(a, b float64) bool { return a == b }
