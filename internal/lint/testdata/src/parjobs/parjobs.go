// Package parjobs exercises the parbody index-ownership rule: inside a
// par.For/Workers/Map/MapErr closure, writes must land in state indexed
// by the loop parameter (or closure-local variables).
package parjobs

import "par"

// Fill writes only through the loop index: the contract's good case.
func Fill(n int) []int {
	out := make([]int, n)
	par.For(n, func(i int) {
		out[i] = i * i
	})
	return out
}

// Racy accumulates into a captured scalar from every iteration.
func Racy(n int) int {
	total := 0
	par.For(n, func(i int) {
		total += i // want parbody
	})
	return total
}

// Strided owns a row per index: the index may appear anywhere in the
// index expression, not just alone.
func Strided(n int) []float64 {
	dist := make([]float64, n*n)
	par.Workers(4, n, func(v int) {
		for t := 0; t < n; t++ {
			dist[v*n+t] = float64(v + t)
		}
	})
	return dist
}

// Squares accumulates into a closure-local variable: iteration-local
// state is always fine.
func Squares(n int) []int {
	return par.Map[int](n, func(i int) int {
		acc := 0
		for j := 0; j <= i; j++ {
			acc += j
		}
		return acc
	})
}

// Gather writes a captured map through a key that does not involve the
// loop index.
func Gather(n int) ([]int, error) {
	seen := make(map[int]bool)
	return par.MapErr(n, func(i int) (int, error) {
		seen[0] = true // want parbody
		return i, nil
	})
}

// Nested checks that each closure is judged against its own index:
// the inner write rows[i][j] is owned by j, while the outer counter
// write is not owned by i.
func Nested(n int) [][]int {
	rows := make([][]int, n)
	done := 0
	par.For(n, func(i int) {
		rows[i] = make([]int, n)
		par.For(n, func(j int) {
			rows[i][j] = i + j
		})
		done++ // want parbody
	})
	return rows
}

// Blank has no usable index parameter, so every captured write is
// unowned by construction.
func Blank(n int, out []int) {
	par.For(n, func(_ int) {
		out[0] = 1 // want parbody
	})
}
