// Package lockorder exercises the mutex-acquisition-order rule: the
// ab type's two methods acquire its mutexes in opposite orders (a
// cycle), bad calls an exported locking method while holding its
// mutex (a self-deadlock), and relay calls an exported locking method
// under a different lock (a lock-held call that must go through a
// *Locked helper). Consistent one-way nesting stays clean.
package lockorder

import "sync"

type ab struct {
	a sync.Mutex
	b sync.Mutex
}

func (x *ab) aThenB() {
	x.a.Lock()
	defer x.a.Unlock()
	x.b.Lock() // want lockorder
	x.b.Unlock()
}

func (x *ab) bThenA() {
	x.b.Lock()
	defer x.b.Unlock()
	x.a.Lock() // want lockorder
	x.a.Unlock()
}

type outerInner struct {
	outer sync.Mutex
	inner sync.Mutex
}

func (x *outerInner) both() {
	x.outer.Lock()
	defer x.outer.Unlock()
	x.inner.Lock() // consistent one-way order: clean
	x.inner.Unlock()
}

type box struct {
	mu sync.Mutex
	n  int
}

// Touch is exported and takes the lock itself.
func (b *box) Touch() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

// TouchLocked expects the caller to hold mu.
func (b *box) TouchLocked() { b.n++ }

func (b *box) bad() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.Touch() // want lockorder
}

func (b *box) good() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.TouchLocked() // caller-holds convention: clean
}

type relay struct {
	mu sync.Mutex
	bx box
}

func (r *relay) forward() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bx.Touch() // want lockorder
}
