// Package bits mirrors the repo's internal/bits surface just enough
// for the codecpair fixture: the analyzer matches the writer type by
// package basename and type name, exactly as it does against the real
// module.
package bits

// Writer is the fixture stand-in for the bit-level writer.
type Writer struct{ n int }

// WriteBits appends n bits of v.
func (w *Writer) WriteBits(v uint64, n int) { w.n += n }

// Len reports the bits written.
func (w *Writer) Len() int { return w.n }

// Reader is the fixture stand-in for the bit-level reader.
type Reader struct{ at int }

// ReadBits consumes n bits.
func (r *Reader) ReadBits(n int) (uint64, error) {
	r.at += n
	return 0, nil
}
