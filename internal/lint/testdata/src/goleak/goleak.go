// Package goleak exercises the goroutine-join rule: the package opts
// in via the goroutines directive, and every go statement must show a
// WaitGroup pairing, a channel join, a cancel tie, or a `// joined by`
// note.
//
//determinlint:goroutines
package goleak

import "sync"

func waitGroupJoin(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { defer wg.Done() }() // Add here, Done in body: joined
	}
	wg.Wait()
}

func channelJoin() int {
	done := make(chan int)
	go func() { done <- 1 }() // spawner receives from done: joined
	return <-done
}

func closeJoin() {
	done := make(chan struct{})
	go func() { close(done) }() // spawner receives from done: joined
	<-done
}

func cancelTied(stop chan struct{}) {
	go func() { <-stop }() // body blocks on a cancel channel: tied
}

func annotated() {
	// joined by the listener close in shutdown
	go bgWork()
}

func bgWork() {}

func leak() {
	go func() {}() // want goleak
}

func leakCall() {
	go bgWork() // want goleak
}

type srv struct{ wg sync.WaitGroup }

func (s *srv) spawn() {
	s.wg.Add(1)
	go s.worker() // Add here, Done in the callee: joined
}

func (s *srv) worker() { defer s.wg.Done() }

func (s *srv) spawnNoAdd() {
	go s.worker() // want goleak
}
