package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoLeak requires every go statement in a concurrency-bearing package
// (GoroutinePaths, or any package carrying //determinlint:goroutines)
// to show its join or cancel in the source — the PR 2 detached-forward
// leak class. A goroutine passes when any of these holds:
//
//   - WaitGroup pairing: the spawning function calls WaitGroup.Add and
//     the goroutine body (or, for `go s.method()`, the method's body)
//     contains the matching Done;
//   - channel join: the body sends on or closes a channel that the
//     spawning function receives from (directly, in a select, or by
//     range);
//   - cancel tie: the body itself receives from a channel (a done/stop
//     channel or ctx.Done() select), so shutdown reaches it;
//   - an explicit `// joined by <what>` comment on the go statement or
//     the line above, for lifetimes managed elsewhere.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "go statements must show a join or cancel: WaitGroup pairing, channel join, or a `// joined by` note",
	Run:  runGoLeak,
}

const joinedByMarker = "joined by "

func runGoLeak(p *Pass) {
	if !p.Goleak {
		return
	}
	joined := collectJoinedComments(p)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			line := p.Fset.Position(g.Pos()).Line
			file := p.Fset.Position(g.Pos()).Filename
			if joined[file][line] || joined[file][line-1] {
				return true
			}
			if goStmtJoined(p, g) {
				return true
			}
			p.Reportf(g.Pos(), "fire-and-forget goroutine: pair it with a WaitGroup, join it through a channel, or note its owner with `// joined by <what>`")
			return true
		})
	}
}

// collectJoinedComments indexes `// joined by <what>` comments by file
// and line. A marker anywhere in a comment group also marks the
// group's last line, so a wrapped explanation still ties to the go
// statement directly below the group.
func collectJoinedComments(p *Pass) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	mark := func(file string, line int) {
		if out[file] == nil {
			out[file] = map[int]bool{}
		}
		out[file][line] = true
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c.Text), "//"))
				if !strings.HasPrefix(text, joinedByMarker) || strings.TrimSpace(strings.TrimPrefix(text, joinedByMarker)) == "" {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				mark(pos.Filename, pos.Line)
				mark(pos.Filename, p.Fset.Position(cg.End()).Line)
			}
		}
	}
	return out
}

// goStmtJoined applies the structural join checks.
func goStmtJoined(p *Pass, g *ast.GoStmt) bool {
	encl := enclosingFunc(p.Files, g.Pos())
	var enclBody *ast.BlockStmt
	switch e := encl.(type) {
	case *ast.FuncDecl:
		enclBody = e.Body
	case *ast.FuncLit:
		enclBody = e.Body
	}
	// The goroutine's body: the func literal's body, or the resolved
	// callee's body for `go f(...)` / `go s.method(...)`.
	var body ast.Node
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
	} else if key := p.suite.index().calleeKeyIn(p.Info, g.Call); key != "" {
		if fi := p.suite.index().funcs[key]; fi != nil {
			body = fi.decl.Body
		}
	}
	if body == nil {
		return false
	}
	// WaitGroup pairing: Add in the spawner, Done in the body.
	if enclBody != nil && containsWaitGroupCall(p.Info, enclBody, "Add") {
		info := p.Info
		if fi := calleeDeclInfo(p, g); fi != nil {
			info = fi.pkg.Info
		}
		if containsWaitGroupCall(info, body, "Done") {
			return true
		}
	}
	// Cancel tie: the body receives from some channel (done/stop/ctx).
	if containsReceive(body, "") {
		return true
	}
	// Channel join: the body sends on or closes a channel the spawner
	// receives from outside the go statement.
	if enclBody != nil {
		for _, ch := range channelsWrittenBy(p.Info, body) {
			if receivesFrom(enclBody, g, ch) {
				return true
			}
		}
	}
	return false
}

func calleeDeclInfo(p *Pass, g *ast.GoStmt) *declInfo {
	if key := p.suite.index().calleeKeyIn(p.Info, g.Call); key != "" {
		return p.suite.index().funcs[key]
	}
	return nil
}

// containsWaitGroupCall reports a sync.WaitGroup method call by the
// given name anywhere in the subtree (including nested closures, where
// deferred Done calls usually live).
func containsWaitGroupCall(info *types.Info, n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != name {
			return !found
		}
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				t := sig.Recv().Type()
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
				}
				if named, ok := t.(*types.Named); ok {
					obj := named.Obj()
					if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// containsReceive reports a channel receive in the subtree; when want
// is non-empty only receives from that exact expression (by source
// text) count.
func containsReceive(n ast.Node, want string) bool {
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				if want == "" || types.ExprString(ast.Unparen(e.X)) == want {
					found = true
				}
			}
		case *ast.RangeStmt:
			if want != "" && types.ExprString(ast.Unparen(e.X)) == want {
				found = true
			}
		}
		return !found
	})
	return found
}

// channelsWrittenBy lists (as source text) the channels the goroutine
// body sends on or closes.
func channelsWrittenBy(info *types.Info, body ast.Node) []string {
	var out []string
	seen := map[string]bool{}
	add := func(e ast.Expr) {
		s := types.ExprString(ast.Unparen(e))
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SendStmt:
			add(e.Chan)
		case *ast.CallExpr:
			if isBuiltinCall(info, e, "close") && len(e.Args) == 1 {
				add(e.Args[0])
			}
		}
		return true
	})
	return out
}

// receivesFrom reports whether the enclosing body receives from ch
// somewhere outside the go statement itself.
func receivesFrom(enclBody *ast.BlockStmt, g *ast.GoStmt, ch string) bool {
	found := false
	ast.Inspect(enclBody, func(n ast.Node) bool {
		if n == nil || found {
			return false
		}
		if n == g {
			return false // skip the goroutine's own subtree
		}
		switch e := n.(type) {
		case *ast.UnaryExpr:
			if e.Op == token.ARROW && types.ExprString(ast.Unparen(e.X)) == ch {
				found = true
			}
		case *ast.RangeStmt:
			if types.ExprString(ast.Unparen(e.X)) == ch {
				found = true
			}
		}
		return !found
	})
	return found
}
