package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRe matches the expectation markers the fixture sources carry: a
// comment ending in "want <rule> [<rule>...]". The marker sits on the
// line the diagnostic must land on (for directive-rule fixtures it is a
// block comment, because the line comment is the directive under test).
var wantRe = regexp.MustCompile(`(?:^|\s)want ((?:[a-z]+)(?:[ ,]+[a-z]+)*)$`)

// finding identifies a diagnostic by position and rule; messages are
// free-form and not part of the golden contract.
type finding struct {
	file string
	line int
	rule string
}

func (f finding) String() string { return fmt.Sprintf("%s:%d: [%s]", f.file, f.line, f.rule) }

// TestFixtures compiles the fixture tree under testdata/src and checks
// the suite's findings against the want markers, in both directions:
// every marked line must produce exactly its marked rules, and nothing
// else may fire.
func TestFixtures(t *testing.T) {
	root := filepath.Join("testdata", "src")
	pkgs, err := NewModule(root, "").LoadAll()
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) < 6 {
		t.Fatalf("loaded %d fixture packages, want at least 6", len(pkgs))
	}

	known := map[string]bool{directiveRuleName: true}
	for _, a := range All() {
		known[a.Name] = true
	}
	want := make(map[finding]int)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(strings.TrimPrefix(c.Text, "/*"), "//"), "*/"))
					m := wantRe.FindStringSubmatch(text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, rule := range strings.FieldsFunc(m[1], func(r rune) bool { return r == ' ' || r == ',' }) {
						if !known[rule] {
							t.Fatalf("%s:%d: want marker names unknown rule %q", pos.Filename, pos.Line, rule)
						}
						want[finding{pos.Filename, pos.Line, rule}]++
					}
				}
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("no want markers found in fixtures")
	}

	// No Deterministic func: the det fixture relies solely on the
	// //determinlint:deterministic directive.
	got := make(map[finding]int)
	for _, d := range (&Suite{}).Run(pkgs) {
		got[finding{d.Pos.Filename, d.Pos.Line, d.Analyzer}]++
	}

	var keys []finding
	seen := make(map[finding]bool)
	for k := range want {
		if !seen[k] {
			keys = append(keys, k)
			seen[k] = true
		}
	}
	for k := range got {
		if !seen[k] {
			keys = append(keys, k)
			seen[k] = true
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		return a.rule < b.rule
	})
	for _, k := range keys {
		if want[k] != got[k] {
			t.Errorf("%s: want %d finding(s), got %d", k, want[k], got[k])
		}
	}
}

// TestSingleAnalyzerSkipsStaleCheck runs a one-analyzer subset and
// checks that unused allow directives are NOT reported: the staleness
// sweep is only meaningful when the full suite runs.
func TestSingleAnalyzerSkipsStaleCheck(t *testing.T) {
	root := filepath.Join("testdata", "src")
	pkgs, err := NewModule(root, "").LoadAll()
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	suite := &Suite{Analyzers: []*Analyzer{MapRange}}
	for _, d := range suite.Run(pkgs) {
		if d.Analyzer != MapRange.Name {
			// Malformed directives still surface; stale ones must not.
			if strings.Contains(d.Message, "unused allow") {
				t.Errorf("subset run reported stale directive: %s", d)
			}
		}
	}
}

// TestByName resolves analyzer subsets and rejects unknown names.
func TestByName(t *testing.T) {
	anas, err := ByName("maprange, floateq")
	if err != nil || len(anas) != 2 || anas[0].Name != "maprange" || anas[1].Name != "floateq" {
		t.Fatalf("ByName(maprange, floateq) = %v, %v", anas, err)
	}
	if _, err := ByName("nosuchrule"); err == nil {
		t.Fatal("ByName(nosuchrule) succeeded, want error")
	}
	if _, err := ByName(""); err == nil {
		t.Fatal("ByName(\"\") succeeded, want error")
	}
}
