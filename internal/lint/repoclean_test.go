package lint

import "testing"

// TestRepoClean is the self-check the `make lint` gate depends on: the
// full suite over the real module must produce zero findings. Every
// intentional exception in the tree carries an allow directive with a
// reason, so a finding here is either a new contract violation or a
// suppression gone stale — both are failures.
func TestRepoClean(t *testing.T) {
	root := "../.."
	modPath, err := ReadModulePath(root)
	if err != nil {
		t.Fatalf("reading module path: %v", err)
	}
	pkgs, err := NewModule(root, modPath).LoadAll()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages — the loader is missing most of the tree", len(pkgs))
	}
	suite := &Suite{Deterministic: func(path string) bool { return DeterministicPaths[path] }}
	for _, d := range suite.Run(pkgs) {
		t.Errorf("%s", d)
	}
}
