package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test files, sorted by filename
	// TestFiles are the package's _test.go files, parsed but NOT
	// type-checked (they may belong to the external _test package and
	// pull in test-only dependencies). The codecpair analyzer walks them
	// syntactically to decide whether an encoder is exercised by a test
	// or fuzz target in its own package.
	TestFiles []*ast.File
	Types     *types.Package
	Info      *types.Info
}

// Module loads a tree of packages with go/parser + go/types only — no
// x/tools dependency. Imports inside the tree are type-checked from
// source (recursively, in dependency order); everything else resolves
// through the standard library's gc importer, falling back to the
// source importer when export data is unavailable.
type Module struct {
	RootDir string
	// ModPath is the module path ("compactrouting" for this repo). When
	// empty, import paths are directory paths relative to RootDir — the
	// layout the test fixtures use.
	ModPath string

	fset    *token.FileSet
	pkgs    map[string]*Package
	loading map[string]bool
	std     types.ImporterFrom
	stdSrc  types.Importer
	stdPkgs map[string]*types.Package
}

// NewModule prepares a loader rooted at dir. Reading the module path
// from go.mod is the caller's job (see ReadModulePath) so fixture trees
// without a go.mod stay loadable.
func NewModule(dir, modPath string) *Module {
	fset := token.NewFileSet()
	return &Module{
		RootDir: dir,
		ModPath: modPath,
		fset:    fset,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		std:     importer.Default().(types.ImporterFrom),
		stdSrc:  importer.ForCompiler(fset, "source", nil),
		stdPkgs: make(map[string]*types.Package),
	}
}

// ReadModulePath extracts the module path from dir/go.mod.
func ReadModulePath(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module line in %s/go.mod", dir)
}

// LoadAll discovers every package directory under the root (skipping
// testdata, hidden and underscore-prefixed directories) and loads each,
// returning them sorted by import path.
func (m *Module) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(m.RootDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != m.RootDir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		has, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if has {
			rel, err := filepath.Rel(m.RootDir, path)
			if err != nil {
				return err
			}
			paths = append(paths, m.importPath(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := m.Load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

func (m *Module) importPath(rel string) string {
	rel = filepath.ToSlash(rel)
	if rel == "." {
		if m.ModPath != "" {
			return m.ModPath
		}
		return "."
	}
	if m.ModPath != "" {
		return m.ModPath + "/" + rel
	}
	return rel
}

// dirOf inverts importPath for tree-internal paths; ok is false for
// paths outside the tree.
func (m *Module) dirOf(path string) (string, bool) {
	if m.ModPath != "" {
		if path == m.ModPath {
			return m.RootDir, true
		}
		if rest, found := strings.CutPrefix(path, m.ModPath+"/"); found {
			return filepath.Join(m.RootDir, filepath.FromSlash(rest)), true
		}
		return "", false
	}
	dir := filepath.Join(m.RootDir, filepath.FromSlash(path))
	if has, err := hasGoFiles(dir); err == nil && has {
		return dir, true
	}
	return "", false
}

// Load parses and type-checks one tree-internal package (and,
// recursively, its tree-internal dependencies).
func (m *Module) Load(path string) (*Package, error) {
	if pkg, ok := m.pkgs[path]; ok {
		return pkg, nil
	}
	if m.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	dir, ok := m.dirOf(path)
	if !ok {
		return nil, fmt.Errorf("package %q is outside the module", path)
	}
	m.loading[path] = true
	defer delete(m.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names, testNames []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") {
			continue
		}
		if strings.HasSuffix(n, "_test.go") {
			testNames = append(testNames, n)
		} else {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	sort.Strings(testNames)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, n := range names {
		f, err := parser.ParseFile(m.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := &types.Config{Importer: (*moduleImporter)(m)}
	tpkg, err := cfg.Check(path, m.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", path, err)
	}
	testFiles := make([]*ast.File, 0, len(testNames))
	for _, n := range testNames {
		f, err := parser.ParseFile(m.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		testFiles = append(testFiles, f)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: m.fset, Files: files, TestFiles: testFiles, Types: tpkg, Info: info}
	m.pkgs[path] = pkg
	return pkg, nil
}

// moduleImporter resolves imports during type-checking: tree-internal
// packages load from source, the rest through the gc importer with a
// source-importer fallback.
type moduleImporter Module

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	m := (*Module)(mi)
	if _, ok := m.dirOf(path); ok {
		pkg, err := m.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if p, ok := m.stdPkgs[path]; ok {
		return p, nil
	}
	p, err := m.std.Import(path)
	if err != nil {
		p, err = m.stdSrc.Import(path)
		if err != nil {
			return nil, fmt.Errorf("import %q: %w", path, err)
		}
	}
	m.stdPkgs[path] = p
	return p, nil
}
