package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the module's mutex-acquisition graph from the same
// annotations guardedfield reads plus syntactic Lock/Unlock pairing,
// and flags (1) cycles — mutex A held while B is acquired in one
// function, B held while A is acquired in another; (2) self-deadlocks
// — a call made while holding a mutex into a function that acquires
// the same mutex; and (3) lock-held calls into exported in-module
// functions that themselves acquire locks, unless the callee's name
// ends in "Locked" (the repo's convention for
// caller-holds-the-lock helpers).
//
// Lock classes are (struct type, mutex field) pairs — every shard of a
// sharded map is one class — plus bare mutex variables. Within one
// function the walk is linear and flow-insensitive, the same
// overapproximation guardedfield makes: a Lock is held until its
// syntactic Unlock or to the end of the function when deferred.
// Function literals are analyzed as independent functions (a
// goroutine body's locks order against everyone else's, but not
// against its spawner's call stack). Calls propagate one level of
// acquisition transitively through the in-module call graph.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "mutex-acquisition cycles, self-deadlocks, and lock-held calls into exported locking functions",
	Run:  runLockOrder,
}

const lockSetMaxDepth = 5

func runLockOrder(p *Pass) {
	x := p.suite.index()
	x.computeLockOrder()
	for _, d := range x.lockDiags[p.Path] {
		p.Reportf(d.pos, "%s", d.msg)
	}
}

// lockEvent is one step in a function's linear lock walk.
type lockEvent struct {
	kind  int // 0 lock, 1 unlock, 2 deferred unlock, 3 call
	class string
	key   string // in-module callee (kind 3)
	expr  string // exported callee display name (kind 3)
	pos   token.Pos
}

// lockedFn is one analyzed function body (decl or literal).
type lockedFn struct {
	key    string // "" for literals
	pkg    *Package
	events []lockEvent
}

// lockEdge is one "held a, acquired b" observation.
type lockEdge struct {
	from, to string
	pos      token.Pos
	pkg      string
}

func (x *modIndex) computeLockOrder() {
	if x.lockOnce {
		return
	}
	x.lockOnce = true
	x.lockDiags = map[string][]posDiag{}
	x.lockSets = map[string]map[string]token.Pos{}

	var fns []*lockedFn
	for _, pkg := range x.suite.pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				key := pkg.Path + "\x00" + astRecvName(fd) + "\x00" + fd.Name.Name
				for _, fn := range x.splitLockFns(pkg, key, fd.Body) {
					fns = append(fns, fn)
				}
			}
		}
	}
	// Direct acquisition sets per named function, for transitive
	// propagation through calls.
	direct := map[string]map[string]token.Pos{}
	for _, fn := range fns {
		if fn.key == "" {
			continue
		}
		set := direct[fn.key]
		if set == nil {
			set = map[string]token.Pos{}
			direct[fn.key] = set
		}
		for _, ev := range fn.events {
			if ev.kind == 0 {
				if _, ok := set[ev.class]; !ok {
					set[ev.class] = ev.pos
				}
			}
		}
	}
	var lockSetOf func(key string, depth int, stack map[string]bool) map[string]token.Pos
	memo := map[string]map[string]token.Pos{}
	lockSetOf = func(key string, depth int, stack map[string]bool) map[string]token.Pos {
		if s, ok := memo[key]; ok {
			return s
		}
		if stack[key] || depth > lockSetMaxDepth {
			return direct[key]
		}
		stack[key] = true
		out := map[string]token.Pos{}
		for c, pos := range direct[key] {
			out[c] = pos
		}
		if fi := x.funcs[key]; fi != nil {
			ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if k := x.calleeKeyIn(fi.pkg.Info, call); k != "" && k != key {
					for c, pos := range lockSetOf(k, depth+1, stack) {
						if _, have := out[c]; !have {
							out[c] = pos
						}
					}
				}
				return true
			})
		}
		delete(stack, key)
		memo[key] = out
		return out
	}

	// Simulate every function: collect edges and call-under-lock diags.
	var edges []lockEdge
	edgeSeen := map[string]bool{}
	for _, fn := range fns {
		held := map[string]token.Pos{}
		for _, ev := range fn.events {
			switch ev.kind {
			case 0:
				if len(held) > 0 {
					if _, re := held[ev.class]; re {
						x.addLockDiag(fn.pkg, ev.pos, fmt.Sprintf("%s acquired while already held: self-deadlock", lockClassName(ev.class)))
					} else {
						for from := range held {
							x.addEdge(&edges, edgeSeen, fn.pkg, from, ev.class, ev.pos)
						}
					}
				}
				held[ev.class] = ev.pos
			case 1:
				delete(held, ev.class)
			case 2:
				// Deferred unlock: held to the end; nothing to do now.
			case 3:
				if len(held) == 0 || ev.key == "" {
					break
				}
				calleeName := lockKeyFuncName(ev.key)
				if strings.HasSuffix(calleeName, "Locked") {
					break
				}
				set := lockSetOf(ev.key, 0, map[string]bool{})
				if len(set) == 0 {
					break
				}
				reported := false
				for c := range set {
					if _, re := held[c]; re {
						x.addLockDiag(fn.pkg, ev.pos, fmt.Sprintf("call to %s while holding %s: the callee acquires the same mutex (self-deadlock)", fmtKey(ev.key), lockClassName(c)))
						reported = true
						break
					}
				}
				if !reported && ast.IsExported(calleeName) {
					var heldNames, acq []string
					for c := range held {
						heldNames = append(heldNames, lockClassName(c))
					}
					for c := range set {
						acq = append(acq, lockClassName(c))
					}
					sort.Strings(heldNames)
					sort.Strings(acq)
					x.addLockDiag(fn.pkg, ev.pos, fmt.Sprintf("call to exported %s while holding %s: it acquires %s; use a *Locked helper or move the call outside the critical section", fmtKey(ev.key), strings.Join(heldNames, ", "), strings.Join(acq, ", ")))
				}
				if !reported {
					for from := range held {
						for to := range set {
							if from != to {
								x.addEdge(&edges, edgeSeen, fn.pkg, from, to, ev.pos)
							}
						}
					}
				}
			}
		}
	}

	// Cycle detection: an edge is on a cycle iff its head reaches its
	// tail through the class graph.
	adj := map[string][]string{}
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	for _, e := range edges {
		if reaches(adj, e.to, e.from) {
			x.lockDiags[e.pkg] = append(x.lockDiags[e.pkg], posDiag{
				pos: e.pos,
				msg: fmt.Sprintf("lock-order cycle: %s acquired while holding %s, and the reverse order exists elsewhere in the module", lockClassName(e.to), lockClassName(e.from)),
			})
		}
	}
}

func (x *modIndex) addLockDiag(pkg *Package, pos token.Pos, msg string) {
	x.lockDiags[pkg.Path] = append(x.lockDiags[pkg.Path], posDiag{pos: pos, msg: msg})
}

func (x *modIndex) addEdge(edges *[]lockEdge, seen map[string]bool, pkg *Package, from, to string, pos token.Pos) {
	k := from + "\x01" + to
	if seen[k] {
		return
	}
	seen[k] = true
	*edges = append(*edges, lockEdge{from: from, to: to, pos: pos, pkg: pkg.Path})
}

// splitLockFns extracts the lock-event streams of a body, treating
// each function literal as an independent anonymous function.
func (x *modIndex) splitLockFns(pkg *Package, key string, body *ast.BlockStmt) []*lockedFn {
	var out []*lockedFn
	var walk func(key string, b *ast.BlockStmt)
	walk = func(key string, b *ast.BlockStmt) {
		fn := &lockedFn{key: key, pkg: pkg}
		var lits []*ast.BlockStmt
		ast.Inspect(b, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if lit, ok := n.(*ast.FuncLit); ok && n != b {
				lits = append(lits, lit.Body)
				return false
			}
			switch s := n.(type) {
			case *ast.DeferStmt:
				if class, op, ok := x.mutexOp(pkg.Info, s.Call); ok && (op == "Unlock" || op == "RUnlock") {
					fn.events = append(fn.events, lockEvent{kind: 2, class: class, pos: s.Pos()})
					return false
				}
			case *ast.CallExpr:
				if class, op, ok := x.mutexOp(pkg.Info, s); ok {
					switch op {
					case "Lock", "RLock":
						fn.events = append(fn.events, lockEvent{kind: 0, class: class, pos: s.Pos()})
					case "Unlock", "RUnlock":
						fn.events = append(fn.events, lockEvent{kind: 1, class: class, pos: s.Pos()})
					}
					return true
				}
				if k := x.calleeKeyIn(pkg.Info, s); k != "" {
					fn.events = append(fn.events, lockEvent{kind: 3, key: k, pos: s.Pos()})
				}
			}
			return true
		})
		out = append(out, fn)
		for _, lb := range lits {
			walk("", lb)
		}
	}
	walk(key, body)
	return out
}

// mutexOp recognizes <expr>.Lock()/Unlock()/RLock()/RUnlock() on a
// sync.Mutex or RWMutex (named field, bare variable, or embedded) and
// names its lock class.
func (x *modIndex) mutexOp(info *types.Info, call *ast.CallExpr) (class, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	recv := ast.Unparen(sel.X)
	switch r := recv.(type) {
	case *ast.SelectorExpr:
		if obj := info.Uses[r.Sel]; obj != nil {
			if c, have := x.lockClass[obj]; have {
				return c, op, true
			}
			return objClassName(obj), op, true
		}
	case *ast.Ident:
		if obj := info.Uses[r]; obj != nil {
			return objClassName(obj), op, true
		}
	}
	// Embedded mutex: class by the receiver expression's named type.
	if t := info.TypeOf(recv); t != nil {
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if n, isNamed := t.(*types.Named); isNamed && n.Obj().Pkg() != nil {
			return n.Obj().Pkg().Path() + "." + n.Obj().Name() + ".<embedded>", op, true
		}
	}
	return "", "", false
}

// objClassName names a bare mutex variable's lock class.
func objClassName(obj types.Object) string {
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

func lockClassName(class string) string {
	return class
}

func lockKeyFuncName(key string) string {
	parts := strings.SplitN(key, "\x00", 3)
	if len(parts) == 3 {
		return parts[2]
	}
	return key
}

// reaches reports whether target is reachable from from in adj.
func reaches(adj map[string][]string, from, target string) bool {
	if from == target {
		return true
	}
	seen := map[string]bool{}
	queue := append([]string{}, adj[from]...)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == target {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		queue = append(queue, adj[n]...)
	}
	return false
}
