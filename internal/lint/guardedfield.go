package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GuardedField checks `// guarded by <guard>` annotations on struct
// fields. Three guard modes exist:
//
//   - guarded by <mu>:   every access must sit in a function that locks
//     <mu> on the same receiver expression (x.mu.Lock(); reads also
//     accept RLock). Functions whose names end in "Locked" are trusted
//     to be called with the lock held.
//   - guarded by atomic: the field's type must come from sync/atomic
//     (or be an array/slice of such, or a struct all of whose fields
//     are), so every access is atomic by construction.
//   - guarded by init:   the field is written only by composite-literal
//     construction; any later assignment through a selector is flagged.
//
// The mutex check is lock-set-free and flow-insensitive — it asks "does
// the enclosing function lock the right mutex on the right receiver
// anywhere", which is the vet-style trade: cheap, deterministic, and
// strong enough to catch the real bug class (a new method touching a
// shard's map without taking the shard lock).
var GuardedField = &Analyzer{
	Name: "guardedfield",
	Doc:  "checks that fields annotated `// guarded by <mu>` are only accessed under that mutex (plus atomic/init guard modes)",
	Run:  runGuardedField,
}

const guardMarker = "guarded by "

type guardSpec struct {
	mode  string // "mutex", "atomic" or "init"
	mutex string // field name of the guarding mutex when mode == "mutex"
}

func runGuardedField(p *Pass) {
	guards := collectGuards(p)
	if len(guards) == 0 {
		return
	}
	writes := collectWrites(p)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Info.Uses[sel.Sel]
			spec, guarded := guards[obj]
			if !guarded {
				return true
			}
			switch spec.mode {
			case "atomic":
				// Type validity was checked at the declaration; access is
				// atomic by construction.
			case "init":
				if writes[sel] {
					p.Reportf(sel.Pos(), "write to %s outside initialization: field is annotated `guarded by init` (set it in the constructor's composite literal)",
						types.ExprString(sel))
				}
			case "mutex":
				checkMutexAccess(p, sel, spec, writes[sel])
			}
			return true
		})
	}
}

// collectGuards parses field annotations, validating atomic-mode types
// and mutex-mode guard fields as it goes. Keys are the field objects.
func collectGuards(p *Pass) map[types.Object]guardSpec {
	guards := make(map[types.Object]guardSpec)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard, ok := guardName(field)
				if !ok {
					continue
				}
				for _, name := range field.Names {
					obj := p.Info.Defs[name]
					if obj == nil {
						continue
					}
					switch guard {
					case "atomic":
						if !isAtomicType(obj.Type()) {
							p.Reportf(field.Pos(), "field %s is annotated `guarded by atomic` but its type %s is not from sync/atomic",
								name.Name, obj.Type())
							continue
						}
						guards[obj] = guardSpec{mode: "atomic"}
					case "init":
						guards[obj] = guardSpec{mode: "init"}
					default:
						if !structHasMutex(p, st, guard) {
							p.Reportf(field.Pos(), "field %s is annotated `guarded by %s` but the struct has no sync.Mutex/RWMutex field named %q",
								name.Name, guard, guard)
							continue
						}
						guards[obj] = guardSpec{mode: "mutex", mutex: guard}
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardName extracts the guard token from a field's doc or line
// comment: the word following "guarded by", with trailing punctuation
// trimmed so annotations compose with prose ("guarded by mu; the
// recency list").
func guardName(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := c.Text
			i := strings.Index(text, guardMarker)
			if i < 0 {
				continue
			}
			rest := strings.Fields(text[i+len(guardMarker):])
			if len(rest) == 0 {
				continue
			}
			return strings.TrimRight(rest[0], ".,;:()"), true
		}
	}
	return "", false
}

func isAtomicType(t types.Type) bool {
	switch u := t.(type) {
	case *types.Named:
		if pkg := u.Obj().Pkg(); pkg != nil && pkg.Path() == "sync/atomic" {
			return true
		}
		return isAtomicType(u.Underlying())
	case *types.Array:
		return isAtomicType(u.Elem())
	case *types.Slice:
		return isAtomicType(u.Elem())
	case *types.Struct:
		// A struct whose every field is atomic (e.g. a histogram of
		// counters) is itself safe for lock-free concurrent use.
		if u.NumFields() == 0 {
			return false
		}
		for i := 0; i < u.NumFields(); i++ {
			if !isAtomicType(u.Field(i).Type()) {
				return false
			}
		}
		return true
	}
	return false
}

func structHasMutex(p *Pass, st *ast.StructType, name string) bool {
	for _, field := range st.Fields.List {
		for _, fn := range field.Names {
			if fn.Name != name {
				continue
			}
			obj := p.Info.Defs[fn]
			if obj == nil {
				return false
			}
			if named, ok := obj.Type().(*types.Named); ok {
				pkg := named.Obj().Pkg()
				tn := named.Obj().Name()
				return pkg != nil && pkg.Path() == "sync" && (tn == "Mutex" || tn == "RWMutex")
			}
			return false
		}
	}
	return false
}

// collectWrites marks every selector expression that appears as an
// assignment target, an inc/dec operand, or an address-of operand.
func collectWrites(p *Pass) map[*ast.SelectorExpr]bool {
	writes := make(map[*ast.SelectorExpr]bool)
	mark := func(e ast.Expr) {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.SelectorExpr:
				writes[x] = true
				return
			default:
				return
			}
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					mark(lhs)
				}
			case *ast.IncDecStmt:
				mark(s.X)
			case *ast.UnaryExpr:
				if s.Op == token.AND {
					mark(s.X)
				}
			}
			return true
		})
	}
	return writes
}

// checkMutexAccess verifies one guarded-field access: the enclosing
// function must contain base.<mu>.Lock() (or base.<mu>.RLock() for a
// read) on the same base expression the field is accessed through.
func checkMutexAccess(p *Pass, sel *ast.SelectorExpr, spec guardSpec, isWrite bool) {
	fn := enclosingFunc(p.Files, sel.Pos())
	if fn == nil {
		return // package-level initializer; construction is exempt
	}
	if fd, ok := fn.(*ast.FuncDecl); ok && strings.HasSuffix(fd.Name.Name, "Locked") {
		return
	}
	base := types.ExprString(sel.X)
	var body *ast.BlockStmt
	switch f := fn.(type) {
	case *ast.FuncDecl:
		body = f.Body
	case *ast.FuncLit:
		body = f.Body
	}
	if body == nil {
		return
	}
	locked := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || locked {
			return !locked
		}
		lockSel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		op := lockSel.Sel.Name
		if op != "Lock" && !(op == "RLock" && !isWrite) {
			return true
		}
		muSel, ok := lockSel.X.(*ast.SelectorExpr)
		if !ok || muSel.Sel.Name != spec.mutex {
			return true
		}
		if types.ExprString(muSel.X) == base {
			locked = true
		}
		return true
	})
	if !locked {
		verb := "read"
		if isWrite {
			verb = "write to"
		}
		p.Reportf(sel.Pos(), "%s %s without holding %s.%s: field is annotated `guarded by %s` (or name the helper *Locked if the caller holds it)",
			verb, types.ExprString(sel), base, spec.mutex, spec.mutex)
	}
}
