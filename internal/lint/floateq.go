package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point values in
// deterministic packages. Stretch accounting compares distances that
// went through different arithmetic paths, where exact equality is a
// latent bug; comparisons belong in tolerance helpers. Two patterns
// stay legal: comparison against an exact constant zero (the "same
// node" sentinel — d(u,u) is exactly 0.0, never computed) and
// comparisons inside the approved helper functions below.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flags ==/!= between floats in deterministic packages outside approved helpers and exact-zero sentinels",
	Run:  runFloatEq,
}

// approvedFloatEqHelpers may compare floats exactly: they exist to
// centralize tolerance or tie-break decisions.
var approvedFloatEqHelpers = map[string]bool{
	"approxEqual": true,
	"almostEqual": true,
	"feq":         true,
}

func runFloatEq(p *Pass) {
	if !p.Det {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloatExpr(p, be.X) || !isFloatExpr(p, be.Y) {
				return true
			}
			if isZeroConst(p, be.X) || isZeroConst(p, be.Y) {
				return true
			}
			if fd, ok := enclosingFunc(p.Files, be.Pos()).(*ast.FuncDecl); ok && approvedFloatEqHelpers[fd.Name.Name] {
				return true
			}
			p.Reportf(be.OpPos, "float %s comparison (%s %s %s): use an explicit tolerance, or //determinlint:allow floateq <reason> for a deliberate exact tie-break",
				be.Op, types.ExprString(be.X), be.Op, types.ExprString(be.Y))
			return true
		})
	}
}

func isFloatExpr(p *Pass, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isZeroConst(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	if tv.Value.Kind() != constant.Float && tv.Value.Kind() != constant.Int {
		return false
	}
	v, ok := constant.Float64Val(tv.Value)
	return ok && v == 0
}
