package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CodecPair enforces the wire-codec contract in deterministic packages
// (the PR 5 SFNI desync class, statically): a type with an
// Encode(*bits.Writer)- or EncodeTo(*bits.Writer)-shaped method must
// carry (a) a decode counterpart — a function or method whose name
// starts with Decode/Parse/Read/Restore/Unmarshal and whose signature
// mentions the type — and (b) a Bits() int method, so the
// Writer.Len()==Bits() invariant has something to check against.
//
// Independently, every *exported* Encode-prefixed function or method in
// a deterministic package must be reachable from a Test*/Fuzz*/
// Benchmark* function in the same package, through a syntactic
// name-based call graph over the package's source and test files. An
// encoder no test reaches is an encoder whose decode twin can drift
// silently.
var CodecPair = &Analyzer{
	Name: "codecpair",
	Doc:  "bits.Writer encoders need a decode counterpart, Bits() int, and same-package test reachability",
	Run:  runCodecPair,
}

var decodePrefixes = []string{"Decode", "Parse", "Read", "Restore", "Unmarshal"}

func runCodecPair(p *Pass) {
	if !p.Det {
		return
	}
	// Pairing: writer-shaped encode methods need a decode twin and Bits.
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil {
				continue
			}
			if fd.Name.Name != "Encode" && fd.Name.Name != "EncodeTo" {
				continue
			}
			if !firstParamIsBitsWriter(p.Info, fd) {
				continue
			}
			recv := namedRecvType(p.Info, fd)
			if recv == nil {
				continue
			}
			if !hasDecodeCounterpart(p, recv) {
				p.Reportf(fd.Name.Pos(), "%s.%s has no decode counterpart: add a Decode/Parse/Read/Restore function mentioning %s", recv.Name(), fd.Name.Name, recv.Name())
			}
			if !hasBitsMethod(p.Pkg, recv) {
				p.Reportf(fd.Name.Pos(), "%s.%s has no Bits() int method: the Writer.Len()==Bits() invariant needs a size accountant", recv.Name(), fd.Name.Name)
			}
		}
	}
	// Reachability: exported Encode* must be exercised in-package.
	reached := testReachableNames(p)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if !strings.HasPrefix(name, "Encode") || !ast.IsExported(name) {
				continue
			}
			if !reached[name] {
				p.Reportf(fd.Name.Pos(), "%s is not reached by any Test/Fuzz/Benchmark in this package: pin the codec with a same-package round-trip or fuzz target", name)
			}
		}
	}
}

// firstParamIsBitsWriter matches the Encode(*bits.Writer, ...) shape.
func firstParamIsBitsWriter(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil || len(fd.Type.Params.List) == 0 {
		return false
	}
	t := info.TypeOf(fd.Type.Params.List[0].Type)
	if t == nil {
		return false
	}
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := ptr.Elem().(*types.Named)
	if !ok || n.Obj().Name() != "Writer" || n.Obj().Pkg() == nil {
		return false
	}
	path := n.Obj().Pkg().Path()
	return path == "bits" || strings.HasSuffix(path, "/bits")
}

// namedRecvType resolves the receiver's named type.
func namedRecvType(info *types.Info, fd *ast.FuncDecl) *types.TypeName {
	if len(fd.Recv.List) == 0 {
		return nil
	}
	t := info.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// hasDecodeCounterpart scans the package's declarations for a
// decode-shaped function whose signature mentions the encoded type.
func hasDecodeCounterpart(p *Pass, recv *types.TypeName) bool {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if !hasAnyPrefix(fd.Name.Name, decodePrefixes) {
				continue
			}
			if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				if signatureMentions(obj.Type().(*types.Signature), recv) {
					return true
				}
			}
		}
	}
	return false
}

func hasAnyPrefix(s string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(s, p) {
			return true
		}
	}
	return false
}

// signatureMentions reports whether the type named by recv appears
// anywhere in the signature (receiver, params, or results), behind any
// nesting of pointers, slices, arrays, or maps.
func signatureMentions(sig *types.Signature, recv *types.TypeName) bool {
	if sig.Recv() != nil && typeMentions(sig.Recv().Type(), recv, 0) {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if typeMentions(sig.Params().At(i).Type(), recv, 0) {
			return true
		}
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if typeMentions(sig.Results().At(i).Type(), recv, 0) {
			return true
		}
	}
	return false
}

func typeMentions(t types.Type, recv *types.TypeName, depth int) bool {
	if depth > 4 {
		return false
	}
	switch u := t.(type) {
	case *types.Named:
		return u.Obj() == recv
	case *types.Pointer:
		return typeMentions(u.Elem(), recv, depth+1)
	case *types.Slice:
		return typeMentions(u.Elem(), recv, depth+1)
	case *types.Array:
		return typeMentions(u.Elem(), recv, depth+1)
	case *types.Map:
		return typeMentions(u.Key(), recv, depth+1) || typeMentions(u.Elem(), recv, depth+1)
	}
	return false
}

// hasBitsMethod reports whether T or *T has a Bits() int method.
func hasBitsMethod(pkg *types.Package, recv *types.TypeName) bool {
	t := recv.Type()
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		obj, _, _ := types.LookupFieldOrMethod(typ, true, pkg, "Bits")
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		sig := fn.Type().(*types.Signature)
		if sig.Params().Len() == 0 && sig.Results().Len() == 1 {
			if b, ok := sig.Results().At(0).Type().(*types.Basic); ok && b.Kind() == types.Int {
				return true
			}
		}
	}
	return false
}

// testReachableNames computes the set of declaration names reachable
// from Test*/Fuzz*/Benchmark* roots through a syntactic call graph over
// the package's source and (parsed, un-type-checked) test files.
// Same-named declarations merge into one node — a deliberate
// overapproximation that keeps the walk resolution-free.
func testReachableNames(p *Pass) map[string]bool {
	pkg := p.suite.index().packageOf(p.Path)
	all := p.Files
	if pkg != nil {
		all = append(append([]*ast.File{}, p.Files...), pkg.TestFiles...)
	}
	declared := map[string]bool{}
	mentions := map[string][]string{} // decl name -> names referenced in its body
	var roots []string
	for _, f := range all {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			declared[name] = true
			var refs []string
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.Ident:
					refs = append(refs, e.Name)
				case *ast.SelectorExpr:
					refs = append(refs, e.Sel.Name)
				}
				return true
			})
			mentions[name] = append(mentions[name], refs...)
			if hasAnyPrefix(name, []string{"Test", "Fuzz", "Benchmark"}) {
				roots = append(roots, name)
			}
		}
	}
	reached := map[string]bool{}
	queue := roots
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		if reached[name] {
			continue
		}
		reached[name] = true
		for _, ref := range mentions[name] {
			if declared[ref] && !reached[ref] {
				queue = append(queue, ref)
			}
		}
	}
	return reached
}
