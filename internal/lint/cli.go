package lint

import (
	"flag"
	"fmt"
	"io"
	"path/filepath"
	"time"
)

// Main is the determinlint command driver (cmd/determinlint wraps it in
// os.Exit). It loads every package in the module rooted at the
// positional directory argument (default "."), runs the suite, and
// prints file:line:col diagnostics. Exit codes: 0 clean, 1 findings,
// 2 usage or load failure (including a -maxwall overrun).
func Main(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("determinlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rulesFlag := fs.String("rules", "", "comma-separated analyzer subset to run (default: the full suite)")
	runFlag := fs.String("run", "", "alias for -rules")
	list := fs.Bool("list", false, "list analyzers and exit")
	timing := fs.Bool("timing", false, "print per-analyzer wall time and finding counts to stderr")
	maxWall := fs.Duration("maxwall", 0, "fail (exit 2) when load+analysis exceeds this wall time (0 = no cap)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: determinlint [-rules analyzer[,analyzer]] [-list] [-timing] [-maxwall duration] [module-dir]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *list {
		for _, a := range All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	root := "."
	if fs.NArg() > 0 {
		root = fs.Arg(0)
	}
	if fs.NArg() > 1 {
		fs.Usage()
		return 2
	}

	suite := &Suite{
		Deterministic: func(path string) bool { return DeterministicPaths[path] },
		Goroutines:    func(path string) bool { return GoroutinePaths[path] },
	}
	subset := *rulesFlag
	if subset == "" {
		subset = *runFlag
	} else if *runFlag != "" && *runFlag != subset {
		fmt.Fprintln(stderr, "determinlint: -rules and -run disagree; pass one")
		return 2
	}
	if subset != "" {
		anas, err := ByName(subset)
		if err != nil {
			fmt.Fprintln(stderr, "determinlint:", err)
			return 2
		}
		suite.Analyzers = anas
	}

	start := time.Now()
	modPath, err := ReadModulePath(root)
	if err != nil {
		fmt.Fprintln(stderr, "determinlint:", err)
		return 2
	}
	pkgs, err := NewModule(root, modPath).LoadAll()
	if err != nil {
		fmt.Fprintln(stderr, "determinlint:", err)
		return 2
	}
	loadWall := time.Since(start)
	diags := suite.Run(pkgs)
	wall := time.Since(start)
	if *timing {
		fmt.Fprintf(stderr, "determinlint: load %s (%d packages)\n", loadWall.Round(time.Millisecond), len(pkgs))
		for _, rt := range suite.Timings() {
			fmt.Fprintf(stderr, "determinlint: %-14s %8s  %d finding(s)\n", rt.Name, rt.Duration.Round(time.Millisecond), rt.Findings)
		}
		fmt.Fprintf(stderr, "determinlint: total %s\n", wall.Round(time.Millisecond))
	}
	for _, d := range diags {
		d.Pos.Filename = relIfPossible(root, d.Pos.Filename)
		fmt.Fprintln(stdout, d)
	}
	if *maxWall > 0 && wall > *maxWall {
		fmt.Fprintf(stderr, "determinlint: wall time %s exceeds -maxwall %s\n", wall.Round(time.Millisecond), *maxWall)
		return 2
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "determinlint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

func relIfPossible(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !filepath.IsAbs(rel) && rel != "" && !hasDotDot(rel) {
		return rel
	}
	return path
}

func hasDotDot(rel string) bool {
	return rel == ".." || len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}
