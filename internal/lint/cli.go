package lint

import (
	"flag"
	"fmt"
	"io"
	"path/filepath"
)

// Main is the determinlint command driver (cmd/determinlint wraps it in
// os.Exit). It loads every package in the module rooted at the
// positional directory argument (default "."), runs the suite, and
// prints file:line:col diagnostics. Exit codes: 0 clean, 1 findings,
// 2 usage or load failure.
func Main(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("determinlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runFlag := fs.String("run", "", "comma-separated analyzer subset to run (default: the full suite)")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: determinlint [-run analyzer[,analyzer]] [-list] [module-dir]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *list {
		for _, a := range All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	root := "."
	if fs.NArg() > 0 {
		root = fs.Arg(0)
	}
	if fs.NArg() > 1 {
		fs.Usage()
		return 2
	}

	suite := &Suite{Deterministic: func(path string) bool { return DeterministicPaths[path] }}
	if *runFlag != "" {
		anas, err := ByName(*runFlag)
		if err != nil {
			fmt.Fprintln(stderr, "determinlint:", err)
			return 2
		}
		suite.Analyzers = anas
	}

	modPath, err := ReadModulePath(root)
	if err != nil {
		fmt.Fprintln(stderr, "determinlint:", err)
		return 2
	}
	pkgs, err := NewModule(root, modPath).LoadAll()
	if err != nil {
		fmt.Fprintln(stderr, "determinlint:", err)
		return 2
	}
	diags := suite.Run(pkgs)
	for _, d := range diags {
		d.Pos.Filename = relIfPossible(root, d.Pos.Filename)
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "determinlint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

func relIfPossible(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !filepath.IsAbs(rel) && rel != "" && !hasDotDot(rel) {
		return rel
	}
	return path
}

func hasDotDot(rel string) bool {
	return rel == ".." || len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}
