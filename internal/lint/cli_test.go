package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestMainFindsViolations points the CLI at the self-contained bad
// module and expects exit code 1 with a file:line diagnostic.
func TestMainFindsViolations(t *testing.T) {
	var out, errb strings.Builder
	code := Main([]string{filepath.Join("testdata", "badmod")}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "badmod.go:") || !strings.Contains(out.String(), "[maprange]") {
		t.Fatalf("diagnostic missing file:line or rule tag:\n%s", out.String())
	}
}

// TestMainRepoClean runs the CLI the way `make lint` does and expects a
// clean exit on the real repository.
func TestMainRepoClean(t *testing.T) {
	var out, errb strings.Builder
	if code := Main([]string{"../.."}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

// TestMainSubset runs a single analyzer against the bad module: the
// maprange finding persists under -run maprange and disappears under
// -run floateq.
func TestMainSubset(t *testing.T) {
	dir := filepath.Join("testdata", "badmod")
	var out, errb strings.Builder
	if code := Main([]string{"-run", "maprange", dir}, &out, &errb); code != 1 {
		t.Fatalf("-run maprange: exit code = %d, want 1\n%s%s", code, out.String(), errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := Main([]string{"-run", "floateq", dir}, &out, &errb); code != 0 {
		t.Fatalf("-run floateq: exit code = %d, want 0\n%s%s", code, out.String(), errb.String())
	}
}

// TestMainUsageErrors checks the exit-2 paths: unknown analyzers,
// extra arguments and unreadable module roots.
func TestMainUsageErrors(t *testing.T) {
	for _, argv := range [][]string{
		{"-run", "nosuchrule", "."},
		{"a", "b"},
		{filepath.Join("testdata", "nonexistent")},
	} {
		var out, errb strings.Builder
		if code := Main(argv, &out, &errb); code != 2 {
			t.Errorf("Main(%q) = %d, want 2", argv, code)
		}
	}
}

// TestMainList prints the analyzer catalog.
func TestMainList(t *testing.T) {
	var out, errb strings.Builder
	if code := Main([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list: exit code = %d", code)
	}
	for _, a := range All() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing %q:\n%s", a.Name, out.String())
		}
	}
}

// TestMainPerRuleExitCodes runs each analyzer alone against the bad
// module: every new rule has a dedicated violation there, and the
// rules without one must stay clean.
func TestMainPerRuleExitCodes(t *testing.T) {
	dir := filepath.Join("testdata", "badmod")
	for _, tc := range []struct {
		rule string
		code int
	}{
		{"maprange", 1},
		{"hotpath", 1},
		{"codecpair", 1},
		{"goleak", 1},
		{"lockorder", 1},
		{"wallclock", 0},
		{"parbody", 0},
		{"guardedfield", 0},
		{"floateq", 0},
	} {
		var out, errb strings.Builder
		code := Main([]string{"-rules", tc.rule, dir}, &out, &errb)
		if code != tc.code {
			t.Errorf("-rules %s: exit code = %d, want %d\n%s%s", tc.rule, code, tc.code, out.String(), errb.String())
			continue
		}
		if tc.code == 1 && !strings.Contains(out.String(), "["+tc.rule+"]") {
			t.Errorf("-rules %s: diagnostics carry no [%s] tag:\n%s", tc.rule, tc.rule, out.String())
		}
	}
}

// TestMainRulesRunAlias checks that -run remains an alias for -rules
// and that passing both with different subsets is a usage error.
func TestMainRulesRunAlias(t *testing.T) {
	dir := filepath.Join("testdata", "badmod")
	var out, errb strings.Builder
	if code := Main([]string{"-run", "hotpath", dir}, &out, &errb); code != 1 {
		t.Fatalf("-run hotpath: exit code = %d, want 1\n%s%s", code, out.String(), errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := Main([]string{"-rules", "hotpath", "-run", "goleak", dir}, &out, &errb); code != 2 {
		t.Fatalf("disagreeing -rules/-run: exit code = %d, want 2\n%s%s", code, out.String(), errb.String())
	}
}

// TestMainTiming checks the -timing report: one line per analyzer run
// plus load and total lines, all on stderr.
func TestMainTiming(t *testing.T) {
	dir := filepath.Join("testdata", "badmod")
	var out, errb strings.Builder
	if code := Main([]string{"-timing", dir}, &out, &errb); code != 1 {
		t.Fatalf("-timing: exit code = %d, want 1\n%s%s", code, out.String(), errb.String())
	}
	for _, want := range []string{"load", "total", "maprange", "hotpath", "codecpair", "goleak", "lockorder", "finding(s)"} {
		if !strings.Contains(errb.String(), want) {
			t.Errorf("-timing stderr missing %q:\n%s", want, errb.String())
		}
	}
	if strings.Contains(out.String(), "load ") {
		t.Errorf("timing report leaked onto stdout:\n%s", out.String())
	}
}

// TestMainMaxWall pins the wall-time cap: an impossible budget must
// fail with exit 2 after still printing the diagnostics.
func TestMainMaxWall(t *testing.T) {
	dir := filepath.Join("testdata", "badmod")
	var out, errb strings.Builder
	if code := Main([]string{"-maxwall", "1ns", dir}, &out, &errb); code != 2 {
		t.Fatalf("-maxwall 1ns: exit code = %d, want 2\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "exceeds -maxwall") {
		t.Fatalf("missing overrun message:\n%s", errb.String())
	}
	if !strings.Contains(out.String(), "[maprange]") {
		t.Fatalf("diagnostics suppressed by -maxwall:\n%s", out.String())
	}
}
