package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestMainFindsViolations points the CLI at the self-contained bad
// module and expects exit code 1 with a file:line diagnostic.
func TestMainFindsViolations(t *testing.T) {
	var out, errb strings.Builder
	code := Main([]string{filepath.Join("testdata", "badmod")}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "badmod.go:") || !strings.Contains(out.String(), "[maprange]") {
		t.Fatalf("diagnostic missing file:line or rule tag:\n%s", out.String())
	}
}

// TestMainRepoClean runs the CLI the way `make lint` does and expects a
// clean exit on the real repository.
func TestMainRepoClean(t *testing.T) {
	var out, errb strings.Builder
	if code := Main([]string{"../.."}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

// TestMainSubset runs a single analyzer against the bad module: the
// maprange finding persists under -run maprange and disappears under
// -run floateq.
func TestMainSubset(t *testing.T) {
	dir := filepath.Join("testdata", "badmod")
	var out, errb strings.Builder
	if code := Main([]string{"-run", "maprange", dir}, &out, &errb); code != 1 {
		t.Fatalf("-run maprange: exit code = %d, want 1\n%s%s", code, out.String(), errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := Main([]string{"-run", "floateq", dir}, &out, &errb); code != 0 {
		t.Fatalf("-run floateq: exit code = %d, want 0\n%s%s", code, out.String(), errb.String())
	}
}

// TestMainUsageErrors checks the exit-2 paths: unknown analyzers,
// extra arguments and unreadable module roots.
func TestMainUsageErrors(t *testing.T) {
	for _, argv := range [][]string{
		{"-run", "nosuchrule", "."},
		{"a", "b"},
		{filepath.Join("testdata", "nonexistent")},
	} {
		var out, errb strings.Builder
		if code := Main(argv, &out, &errb); code != 2 {
			t.Errorf("Main(%q) = %d, want 2", argv, code)
		}
	}
}

// TestMainList prints the analyzer catalog.
func TestMainList(t *testing.T) {
	var out, errb strings.Builder
	if code := Main([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list: exit code = %d", code)
	}
	for _, a := range All() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing %q:\n%s", a.Name, out.String())
		}
	}
}
