package lint

import (
	"go/ast"
	"go/types"
)

// WallClock forbids wall-clock reads and the global math/rand source in
// deterministic packages, where every run must be a pure function of
// explicit seeds. rand.New(rand.NewSource(seed)) stays legal — only the
// process-global generator (whose state other code can perturb) and
// time.Now/Since/Until are banned.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbids time.Now/Since/Until and global math/rand in deterministic packages",
	Run:  runWallClock,
}

// bannedTime are the wall-clock reads; timers/sleeps affect pacing, not
// outputs, so they are left to the race detector.
var bannedTime = map[string]bool{"Now": true, "Since": true, "Until": true}

// bannedRand are math/rand (and v2) package-level functions that draw
// from the shared global source. Constructors for explicit sources
// (New, NewSource, NewPCG, NewChaCha8, NewZipf) are the approved path.
var bannedRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint": true, "UintN": true, "Uint32N": true,
	"Uint64N": true, "N": true,
}

func runWallClock(p *Pass) {
	if !p.Det {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if bannedTime[sel.Sel.Name] {
					p.Reportf(sel.Pos(), "time.%s in deterministic package %s: outputs must be a pure function of explicit seeds, not the wall clock",
						sel.Sel.Name, p.Pkg.Name())
				}
			case "math/rand", "math/rand/v2":
				if bannedRand[sel.Sel.Name] {
					p.Reportf(sel.Pos(), "global %s.%s in deterministic package %s: draw from an explicit seeded source (rand.New(rand.NewSource(seed))) instead",
						pn.Imported().Name(), sel.Sel.Name, p.Pkg.Name())
				}
			}
			return true
		})
	}
}
