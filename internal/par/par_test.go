package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 10000} {
		counts := make([]atomic.Int32, n)
		For(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, c)
			}
		}
	}
}

func TestWorkersForcedParallelCoversEveryIndexOnce(t *testing.T) {
	// Force more workers than GOMAXPROCS so the stealing path runs even
	// on a single-CPU machine.
	const n = 5000
	counts := make([]atomic.Int32, n)
	Workers(16, n, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestWorkersSerialFallback(t *testing.T) {
	// workers <= 1 must run in index order (the reference schedule).
	var got []int
	Workers(1, 5, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("serial schedule out of order: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("serial schedule covered %d of 5", len(got))
	}
}

func TestMapPreservesOrder(t *testing.T) {
	out := Map(1000, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	// Indices 100, 3, and 77 fail; index 3's error must win under every
	// schedule.
	for trial := 0; trial < 10; trial++ {
		_, err := MapErr(200, func(i int) (int, error) {
			if i == 100 || i == 3 || i == 77 {
				return 0, fmt.Errorf("fail at %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "fail at 3" {
			t.Fatalf("trial %d: got error %v, want fail at 3", trial, err)
		}
	}
}

func TestMapErrNoError(t *testing.T) {
	out, err := MapErr(50, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestGroupBoundsConcurrency(t *testing.T) {
	const limit = 3
	g := NewGroup(limit)
	var inFlight, peak atomic.Int32
	for i := 0; i < 50; i++ {
		g.Go(func() error {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			runtime.Gosched()
			inFlight.Add(-1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > limit {
		t.Fatalf("peak concurrency %d exceeds limit %d", p, limit)
	}
}

func TestGroupPropagatesError(t *testing.T) {
	g := NewGroup(2)
	want := errors.New("boom")
	for i := 0; i < 10; i++ {
		i := i
		g.Go(func() error {
			if i == 4 {
				return want
			}
			return nil
		})
	}
	if err := g.Wait(); !errors.Is(err, want) {
		t.Fatalf("got %v, want %v", err, want)
	}
}
