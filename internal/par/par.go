// Package par is the repository's single worker-pool implementation:
// every parallel build path (the APSP oracle, the four scheme
// constructors, the net hierarchy, the server's scheme set, the exp
// sweeps) schedules through it.
//
// The package is built for deterministic parallelism. None of the
// primitives impose an iteration order, so callers must keep outputs a
// pure function of the index: For/Map bodies write only state owned by
// their index, accumulation into shared state happens in a serial pass
// afterwards, and MapErr surfaces the lowest-index error regardless of
// which worker hit it first. Under that discipline a build is
// bit-identical at GOMAXPROCS=1 and GOMAXPROCS=64 (see DESIGN.md
// §Parallel build pipeline, and the *_parallel_test.go equivalence
// tests per scheme).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs body(i) for every i in [0, n) across up to GOMAXPROCS
// workers. Workers steal shrinking index blocks from a shared cursor
// (guided self-scheduling), so heterogeneous per-index costs still
// balance. Iterations must only write state owned by their index; the
// call returns after every iteration completed (and establishes a
// happens-before edge with all of them).
func For(n int, body func(i int)) {
	Workers(runtime.GOMAXPROCS(0), n, body)
}

// SuggestedWorkers returns the worker count For would schedule for n
// iterations: min(GOMAXPROCS, n), at least 1. Callers that shard
// worker-local scratch (one buffer per worker rather than per index)
// use it to size their shards.
func SuggestedWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Workers is For with an explicit worker bound. workers <= 1 runs the
// plain serial loop, which is the reference schedule the equivalence
// tests compare against.
func Workers(workers, n int, body func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				// Claim roughly 1/(4*workers) of the remaining range,
				// never less than one index: big blocks early for low
				// contention, single indices near the tail for balance.
				grab := (int64(n) - cursor.Load()) / int64(4*workers)
				if grab < 1 {
					grab = 1
				}
				end := cursor.Add(grab)
				start := end - grab
				if start >= int64(n) {
					return
				}
				if end > int64(n) {
					end = int64(n)
				}
				for i := start; i < end; i++ {
					body(int(i))
				}
			}
		}()
	}
	wg.Wait()
}

// Map runs f(i) for every i in [0, n) in parallel and returns the
// results in index order, regardless of the schedule.
func Map[T any](n int, f func(i int) T) []T {
	out := make([]T, n)
	For(n, func(i int) { out[i] = f(i) })
	return out
}

// MapErr is Map with error propagation. All iterations run to
// completion; if any failed, the error of the lowest failing index is
// returned (a deterministic choice — the same input fails the same way
// under every schedule) and the results are discarded.
func MapErr[T any](n int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	For(n, func(i int) { out[i], errs[i] = f(i) })
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Group runs heterogeneous tasks on at most limit concurrent
// goroutines and reports the first error observed. Unlike MapErr it
// accepts tasks incrementally; Go blocks while limit tasks are already
// in flight, bounding both goroutines and the memory their results
// pin.
type Group struct {
	sem chan struct{}
	wg  sync.WaitGroup
	mu  sync.Mutex
	err error
}

// NewGroup returns a Group bounded to limit concurrent tasks
// (GOMAXPROCS if limit <= 0).
func NewGroup(limit int) *Group {
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	return &Group{sem: make(chan struct{}, limit)}
}

// Go schedules fn, blocking until a worker slot frees up.
func (g *Group) Go(fn func() error) {
	g.sem <- struct{}{}
	g.wg.Add(1)
	go func() {
		defer func() {
			<-g.sem
			g.wg.Done()
		}()
		if err := fn(); err != nil {
			g.mu.Lock()
			if g.err == nil {
				g.err = err
			}
			g.mu.Unlock()
		}
	}()
}

// Wait blocks until every scheduled task finished and returns the
// first error any of them reported.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}
