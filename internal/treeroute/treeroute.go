// Package treeroute implements labeled routing on trees — the substrate
// Lemma 4.1 cites from Fraigniaud–Gavoille and Thorup–Zwick: given any
// weighted tree, a scheme that routes along the unique (hence optimal)
// tree path from any source to any destination given only the
// destination's label and the current node's local table.
//
// The implementation is the heavy-path scheme: nodes carry DFS
// intervals, each node's table records only its parent, its heavy child
// and the heavy child's interval, and a destination label lists the
// light edges on its root path. A root-to-node path crosses at most
// floor(log2 n) light edges, so labels are O(log² n) bits; the cited
// results shave a log log n factor with port bucketing, which does not
// change any of the paper's O(log³ n)-bit table budgets. Label and
// table sizes are measured exactly in the experiments.
//
// This package is bound by the repo's deterministic ruleset: its
// outputs must be a pure function of explicit seeds (determinlint
// enforces the source-level contract; see DESIGN.md §Static analysis).
//
//determinlint:deterministic
package treeroute

import (
	"errors"
	"fmt"

	"compactrouting/internal/bits"
)

// NotInTree marks non-member entries of the parent array passed to New.
const NotInTree = -2

// LightEntry records one light edge on a destination's root path: at
// the node whose DFS-in number is ParentIn, forward to child node Child.
type LightEntry struct {
	ParentIn int32
	Child    int32
}

// Label routes to one destination. In is the destination's DFS-in
// number; Light lists the light edges of its root path in root-to-leaf
// order.
type Label struct {
	In    int32
	Light []LightEntry
}

// Bits returns the exact encoded size of the label: uvarint In,
// uvarint count, then per entry a gamma-coded ParentIn delta and a
// uvarint child id.
func (l Label) Bits() int {
	n := bits.UvarintLen(uint64(l.In)) + bits.UvarintLen(uint64(len(l.Light)))
	prev := int32(0)
	for _, e := range l.Light {
		n += bits.GammaLen(uint64(e.ParentIn-prev) + 1)
		n += bits.UvarintLen(uint64(e.Child))
		prev = e.ParentIn
	}
	return n
}

// Encode serializes the label.
func (l Label) Encode(w *bits.Writer) {
	w.WriteUvarint(uint64(l.In))
	w.WriteUvarint(uint64(len(l.Light)))
	prev := int32(0)
	for _, e := range l.Light {
		w.WriteGamma(uint64(e.ParentIn-prev) + 1)
		w.WriteUvarint(uint64(e.Child))
		prev = e.ParentIn
	}
}

// DecodeLabel reads a label written by Encode.
func DecodeLabel(r *bits.Reader) (Label, error) {
	in, err := r.ReadUvarint()
	if err != nil {
		return Label{}, err
	}
	cnt, err := r.ReadUvarint()
	if err != nil {
		return Label{}, err
	}
	// A light entry costs at least 9 bits (1-bit gamma delta + 1-group
	// uvarint child); bound the count before allocating so corrupt
	// streams cannot force large allocations.
	if cnt*9 > uint64(r.Remaining()) {
		return Label{}, fmt.Errorf("treeroute: light count %d exceeds stream", cnt)
	}
	l := Label{In: int32(in), Light: make([]LightEntry, cnt)}
	prev := int32(0)
	for i := range l.Light {
		d, err := r.ReadGamma()
		if err != nil {
			return Label{}, err
		}
		prev += int32(d - 1)
		c, err := r.ReadUvarint()
		if err != nil {
			return Label{}, err
		}
		l.Light[i] = LightEntry{ParentIn: prev, Child: int32(c)}
	}
	return l, nil
}

// nodeTable is the per-node routing state: the node's own DFS interval,
// its parent and heavy child (graph node ids; tree edges are physical
// edges), and the heavy child's interval.
type nodeTable struct {
	in, out           int32
	parent            int32 // -1 at root
	heavy             int32 // -1 at leaves
	heavyIn, heavyOut int32
}

// Scheme is a compiled tree-routing scheme over a subset of graph
// nodes. Tree edges must be physical graph edges for the routes to be
// realizable hop-by-hop (shortest-path trees satisfy this).
type Scheme struct {
	root   int
	member map[int]*nodeTable
	labels map[int]Label
	size   int
}

// ChildOrder selects which child each node treats as "heavy" (the one
// whose interval lives in the parent's table; all others ride in the
// destination labels as light entries).
type ChildOrder int

const (
	// HeavyFirst picks the largest subtree — the choice that bounds
	// light entries per label by floor(log2 n).
	HeavyFirst ChildOrder = iota
	// IDOrder picks the smallest-id child regardless of size: the
	// ablation baseline, whose labels can grow to Theta(depth) entries.
	IDOrder
)

// New compiles the scheme with the heavy-path child order. parent is
// indexed by graph node id: parent[v] is v's tree parent, -1 for the
// root, NotInTree for nodes outside the tree.
func New(parent []int, root int) (*Scheme, error) {
	return NewOrdered(parent, root, HeavyFirst)
}

// NewOrdered compiles the scheme with an explicit child order (see
// ChildOrder; IDOrder exists for the ablation experiments).
func NewOrdered(parent []int, root int, order ChildOrder) (*Scheme, error) {
	if root < 0 || root >= len(parent) || parent[root] != -1 {
		return nil, fmt.Errorf("treeroute: root %d invalid", root)
	}
	children := make(map[int][]int)
	size := 0
	for v, p := range parent {
		if p == NotInTree {
			continue
		}
		size++
		if p >= 0 {
			children[p] = append(children[p], v)
		} else if v != root {
			return nil, fmt.Errorf("treeroute: second root %d", v)
		}
	}
	// Subtree sizes via reverse topological order (post-order DFS).
	sub := make(map[int]int, size)
	topo := make([]int, 0, size)
	stack := []int{root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		topo = append(topo, v)
		stack = append(stack, children[v]...)
	}
	if len(topo) != size {
		return nil, errors.New("treeroute: parent array contains a cycle or unreachable nodes")
	}
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		s := 1
		for _, c := range children[v] {
			s += sub[c]
		}
		sub[v] = s
	}
	// DFS-in/out with the heavy child visited first; light children in
	// decreasing subtree size (ties by id) for determinism.
	s := &Scheme{
		root:   root,
		member: make(map[int]*nodeTable, size),
		labels: make(map[int]Label, size),
		size:   size,
	}
	before := func(a, b int) bool {
		if order == IDOrder {
			return a < b
		}
		if sub[a] != sub[b] {
			return sub[a] > sub[b]
		}
		return a < b
	}
	// Iterate members in DFS order rather than ranging the children map:
	// topo covers every node with children, and the fixed order keeps the
	// compile deterministic run to run.
	for _, v := range topo {
		cs := children[v]
		for i := 1; i < len(cs); i++ {
			for j := i; j > 0 && before(cs[j], cs[j-1]); j-- {
				cs[j-1], cs[j] = cs[j], cs[j-1]
			}
		}
	}
	next := int32(0)
	var dfs func(v int, light []LightEntry)
	dfs = func(v int, light []LightEntry) {
		tbl := &nodeTable{in: next, parent: int32(parent[v]), heavy: -1}
		if parent[v] == -1 {
			tbl.parent = -1
		}
		next++
		s.member[v] = tbl
		lbl := Label{In: tbl.in, Light: make([]LightEntry, len(light))}
		copy(lbl.Light, light)
		s.labels[v] = lbl
		cs := children[v]
		for i, c := range cs {
			if i == 0 {
				tbl.heavy = int32(c)
				dfs(c, light)
				hc := s.member[c]
				tbl.heavyIn, tbl.heavyOut = hc.in, hc.out
			} else {
				// Copy: siblings must not share the slice's backing array.
				ext := make([]LightEntry, len(light)+1)
				copy(ext, light)
				ext[len(light)] = LightEntry{ParentIn: tbl.in, Child: int32(c)}
				dfs(c, ext)
			}
		}
		tbl.out = next - 1
	}
	dfs(root, nil)
	return s, nil
}

// Size returns the number of tree members.
func (s *Scheme) Size() int { return s.size }

// Root returns the root node id.
func (s *Scheme) Root() int { return s.root }

// Contains reports whether graph node v is in the tree.
func (s *Scheme) Contains(v int) bool {
	_, ok := s.member[v]
	return ok
}

// Label returns v's routing label. v must be a member.
func (s *Scheme) Label(v int) Label { return s.labels[v] }

// LabelBits returns the encoded size of v's label in bits.
func (s *Scheme) LabelBits(v int) int { return s.labels[v].Bits() }

// TableBits returns the encoded size of v's routing table: the DFS
// interval, parent id, heavy child id and interval, all uvarint-coded
// (-1 sentinels shifted by one).
func (s *Scheme) TableBits(v int) int {
	t := s.member[v]
	n := bits.UvarintLen(uint64(t.in)) + bits.UvarintLen(uint64(t.out))
	n += bits.UvarintLen(uint64(t.parent + 1))
	n += bits.UvarintLen(uint64(t.heavy + 1))
	if t.heavy >= 0 {
		n += bits.UvarintLen(uint64(t.heavyIn)) + bits.UvarintLen(uint64(t.heavyOut))
	}
	return n
}

// ErrNotInTree is returned when routing is attempted from a node that
// is not a tree member.
var ErrNotInTree = errors.New("treeroute: node not in tree")

// ErrBadLabel is returned when a label does not lead to a destination,
// e.g. it belongs to a different tree.
var ErrBadLabel = errors.New("treeroute: label does not resolve at this node")

// NextHop performs one local routing step at node u toward the
// destination labeled dst. It returns the neighbor to forward to, or
// arrived == true when u is the destination. The decision reads only
// u's table and the label — the distributed-model contract.
func (s *Scheme) NextHop(u int, dst Label) (next int, arrived bool, err error) {
	t, ok := s.member[u]
	if !ok {
		return 0, false, ErrNotInTree
	}
	switch {
	case dst.In == t.in:
		return 0, true, nil
	case dst.In < t.in || dst.In > t.out:
		// Destination outside u's subtree: climb.
		if t.parent < 0 {
			return 0, false, ErrBadLabel
		}
		return int(t.parent), false, nil
	case t.heavy >= 0 && dst.In >= t.heavyIn && dst.In <= t.heavyOut:
		return int(t.heavy), false, nil
	default:
		// Destination is under a light child: its label records which.
		for _, e := range dst.Light {
			if e.ParentIn == t.in {
				return int(e.Child), false, nil
			}
		}
		return 0, false, ErrBadLabel
	}
}

// Route walks from src to the node labeled dst and returns the full
// node path (src first). It errors if the walk does not terminate
// within Size() steps.
func (s *Scheme) Route(src int, dst Label) ([]int, error) {
	path := []int{src}
	cur := src
	for steps := 0; ; steps++ {
		next, arrived, err := s.NextHop(cur, dst)
		if err != nil {
			return nil, err
		}
		if arrived {
			return path, nil
		}
		if steps > s.size {
			return nil, errors.New("treeroute: routing loop")
		}
		cur = next
		path = append(path, cur)
	}
}
