package treeroute

import "fmt"

// NodeInfo is one node's compiled routing state in exported form: its
// DFS interval, parent and heavy child, the heavy child's interval, and
// its own label. It is exactly what each node ends up knowing after the
// distributed construction protocol in internal/dist (announce
// children, aggregate subtree sizes, push intervals down), so Assemble
// can compile a Scheme from per-node protocol output without any global
// view of the tree.
type NodeInfo struct {
	In, Out  int32
	Parent   int32 // -1 at the root, NotInTree for non-members
	Heavy    int32 // -1 at leaves
	HeavyIn  int32
	HeavyOut int32
	Label    Label
}

// Info exports v's compiled state in NodeInfo form — the oracle-side
// counterpart of the protocol output Assemble consumes, used by the
// equivalence tests to compare distributed and centralized builds field
// by field.
func (s *Scheme) Info(v int) (NodeInfo, bool) {
	t, ok := s.member[v]
	if !ok {
		return NodeInfo{Parent: NotInTree}, false
	}
	return NodeInfo{
		In: t.in, Out: t.out,
		Parent: t.parent, Heavy: t.heavy,
		HeavyIn: t.heavyIn, HeavyOut: t.heavyOut,
		Label: s.labels[v],
	}, true
}

// Assemble compiles a Scheme from per-node state. info is indexed by
// graph node id; entries with Parent == NotInTree are not tree members.
// Consistency across nodes is the protocol's responsibility (the fields
// must have come out of one construction run over one tree); Assemble
// checks only root and interval sanity. Assembled from the output of a
// correct protocol, the scheme is indistinguishable from one compiled
// by New on the same tree.
func Assemble(root int, info []NodeInfo) (*Scheme, error) {
	if root < 0 || root >= len(info) || info[root].Parent != -1 {
		return nil, fmt.Errorf("treeroute: root %d invalid", root)
	}
	s := &Scheme{
		root:   root,
		member: make(map[int]*nodeTable),
		labels: make(map[int]Label),
	}
	for v := range info {
		ni := info[v]
		if ni.Parent == NotInTree {
			continue
		}
		if ni.Parent == -1 && v != root {
			return nil, fmt.Errorf("treeroute: second root %d", v)
		}
		if ni.In < 0 || ni.Out < ni.In {
			return nil, fmt.Errorf("treeroute: node %d has interval [%d,%d]", v, ni.In, ni.Out)
		}
		if ni.Label.In != ni.In {
			return nil, fmt.Errorf("treeroute: node %d label In %d != interval In %d", v, ni.Label.In, ni.In)
		}
		s.member[v] = &nodeTable{
			in: ni.In, out: ni.Out,
			parent: ni.Parent, heavy: ni.Heavy,
			heavyIn: ni.HeavyIn, heavyOut: ni.HeavyOut,
		}
		s.labels[v] = ni.Label
		s.size++
	}
	if rt := s.member[root]; int(rt.out-rt.in)+1 != s.size {
		return nil, fmt.Errorf("treeroute: root interval [%d,%d] does not cover %d members",
			rt.in, rt.out, s.size)
	}
	return s, nil
}
