package treeroute

import (
	"math"
	"math/rand"
	"testing"

	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
)

func portParents(t *testing.T, g *graph.Graph, root int) []int {
	t.Helper()
	spt := metric.Dijkstra(g, root)
	parent := make([]int, g.N())
	copy(parent, spt.Parent)
	parent[root] = -1
	return parent
}

func TestPortSchemeMatchesHeavyScheme(t *testing.T) {
	// Both schemes order children heavy-first, so they must produce
	// IDENTICAL paths for every pair.
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 4; trial++ {
		n := 30 + rng.Intn(70)
		g, err := graph.RandomTree(n, 3, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		root := rng.Intn(n)
		parent := portParents(t, g, root)
		heavy, err := New(parent, root)
		if err != nil {
			t.Fatal(err)
		}
		ports, err := NewPortScheme(parent, root)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				p1, err := heavy.Route(u, heavy.Label(v))
				if err != nil {
					t.Fatal(err)
				}
				p2, err := ports.Route(u, ports.Label(v))
				if err != nil {
					t.Fatalf("port route %d->%d: %v", u, v, err)
				}
				if len(p1) != len(p2) {
					t.Fatalf("%d->%d: paths differ (%v vs %v)", u, v, p1, p2)
				}
				for k := range p1 {
					if p1[k] != p2[k] {
						t.Fatalf("%d->%d: paths diverge at %d", u, v, k)
					}
				}
			}
		}
	}
}

func TestPortLabelsLogarithmic(t *testing.T) {
	// The headline property: port labels are O(log n) bits where the
	// basic scheme's labels are O(log^2 n).
	g, err := graph.RandomTree(2000, 2, 77)
	if err != nil {
		t.Fatal(err)
	}
	parent := portParents(t, g, 0)
	heavy, err := New(parent, 0)
	if err != nil {
		t.Fatal(err)
	}
	ports, err := NewPortScheme(parent, 0)
	if err != nil {
		t.Fatal(err)
	}
	logn := math.Log2(2000)
	maxPort, maxHeavy := 0, 0
	for v := 0; v < g.N(); v++ {
		if b := ports.LabelBits(v); b > maxPort {
			maxPort = b
		}
		if b := heavy.LabelBits(v); b > maxHeavy {
			maxHeavy = b
		}
	}
	// Port sum telescopes: In (~log n) + count + 2 log n of gammas.
	if float64(maxPort) > 6*logn {
		t.Fatalf("port labels %d bits > 6 log n = %.0f", maxPort, 6*logn)
	}
	if maxPort >= maxHeavy {
		t.Fatalf("port labels (%d) not smaller than basic labels (%d)", maxPort, maxHeavy)
	}
	t.Logf("n=2000: port labels max %db vs basic %db", maxPort, maxHeavy)
}

func TestPortSchemeOnCaterpillar(t *testing.T) {
	g, err := graph.CaterpillarTree(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	parent := portParents(t, g, 0)
	s, err := NewPortScheme(parent, 0)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			path, err := s.Route(u, s.Label(v))
			if err != nil {
				t.Fatalf("%d->%d: %v", u, v, err)
			}
			if path[0] != u || path[len(path)-1] != v {
				t.Fatalf("%d->%d: endpoints %v", u, v, path)
			}
		}
	}
}

func TestPortSchemeSubsetAndErrors(t *testing.T) {
	parent := make([]int, 20)
	for i := range parent {
		parent[i] = NotInTree
	}
	parent[5] = -1
	parent[6] = 5
	parent[7] = 5 // two children: 6 is heavy (tie by id), 7 rides port 1
	s, err := NewPortScheme(parent, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 3 || !s.Contains(6) || s.Contains(0) {
		t.Fatal("membership wrong")
	}
	if _, _, err := s.NextHop(0, s.Label(5)); err != ErrNotInTree {
		t.Fatalf("non-member NextHop: %v", err)
	}
	if _, _, err := s.NextHop(5, PortLabel{In: 99}); err != ErrBadLabel {
		t.Fatalf("foreign label: %v", err)
	}
	// Label targeting the light child (In=2) with a port beyond the
	// child list.
	if _, _, err := s.NextHop(5, PortLabel{In: 2, Ports: []int32{7}}); err == nil {
		t.Fatal("bad port accepted")
	}
	// And with an exhausted port list.
	if _, _, err := s.NextHop(5, PortLabel{In: 2}); err == nil {
		t.Fatal("missing port accepted")
	}
	if _, err := NewPortScheme([]int{0, -1}, 0); err == nil {
		t.Fatal("bad root accepted")
	}
}

func TestPortMapBitsReported(t *testing.T) {
	g, err := graph.CaterpillarTree(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	parent := portParents(t, g, 0)
	s, err := NewPortScheme(parent, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.PortMapBits(0, 5) <= 0 {
		t.Fatal("port map bits missing for an internal node")
	}
	if s.TableBits(0) <= 0 {
		t.Fatal("table bits missing")
	}
}
