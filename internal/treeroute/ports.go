package treeroute

import (
	"errors"
	"fmt"
	"sort"

	"compactrouting/internal/bits"
)

// PortScheme is tree routing in the designer-port model, with
// O(log n)-bit labels — the direction of the Fraigniaud–Gavoille /
// Thorup–Zwick refinements Lemma 4.1 cites.
//
// Each node orders its children by decreasing subtree size: child 0 is
// heavy, light children get ports 1, 2, .... A destination's label is
// its DFS-in number plus the sequence of light-edge PORTS on its root
// path, gamma-coded. Because the light child at port p has at most a
// 1/(p+1) fraction of its parent's subtree, the port products telescope
// and the whole port list costs at most ~2 log2 n bits.
//
// The trick that removes the per-entry position fields of the basic
// Scheme: every node stores its light-depth (the number of light edges
// on its own root path). When the packet is descending, the current
// node lies on the destination's root path, so ITS light-depth indexes
// exactly the next port to take.
//
// In the port model a node's mapping from port numbers to link
// endpoints is link-layer state, not routing table content; PortMapBits
// reports what it would cost anyway.
type PortScheme struct {
	root   int
	member map[int]*portTable
	labels map[int]PortLabel
	size   int
}

// portTable is the per-node state: DFS interval, parent, heavy child
// and its interval, the node's light-depth, and the port->child map
// (charged separately).
type portTable struct {
	in, out           int32
	parent            int32
	heavy             int32
	heavyIn, heavyOut int32
	lightDepth        int32
	// children in port order: children[0] == heavy, children[p] is the
	// light child with port p.
	children []int32
}

// PortLabel addresses one destination: its DFS-in number and the light
// ports of its root path in top-down order.
type PortLabel struct {
	In    int32
	Ports []int32
}

// Bits returns the label's encoded size: uvarint In, uvarint port
// count, then gamma-coded ports (whose sum telescopes to O(log n):
// the port-p child holds at most a 1/(p+1) fraction of its parent's
// subtree, so the product of ports is at most n).
func (l PortLabel) Bits() int {
	n := bits.UvarintLen(uint64(l.In)) + bits.UvarintLen(uint64(len(l.Ports)))
	for _, p := range l.Ports {
		n += bits.GammaLen(uint64(p))
	}
	return n
}

// Encode serializes the label: uvarint In, uvarint port count, then
// the gamma-coded ports (ports are >= 1 by construction).
func (l PortLabel) Encode(w *bits.Writer) {
	w.WriteUvarint(uint64(l.In))
	w.WriteUvarint(uint64(len(l.Ports)))
	for _, p := range l.Ports {
		w.WriteGamma(uint64(p))
	}
}

// DecodePortLabel reads a label written by Encode, rejecting port
// values outside [1, MaxInt32] and counts that exceed the stream.
func DecodePortLabel(r *bits.Reader) (PortLabel, error) {
	in, err := r.ReadUvarint()
	if err != nil {
		return PortLabel{}, err
	}
	if in > maxInt32 {
		return PortLabel{}, fmt.Errorf("treeroute: label In %d overflows int32", in)
	}
	cnt, err := r.ReadUvarint()
	if err != nil {
		return PortLabel{}, err
	}
	// A port costs at least 1 bit (gamma of 1); bound the count before
	// allocating so corrupt streams cannot force large allocations.
	if cnt > uint64(r.Remaining()) {
		return PortLabel{}, fmt.Errorf("treeroute: port count %d exceeds stream", cnt)
	}
	l := PortLabel{In: int32(in), Ports: make([]int32, cnt)}
	for i := range l.Ports {
		p, err := r.ReadGamma()
		if err != nil {
			return PortLabel{}, err
		}
		if p > maxInt32 {
			return PortLabel{}, fmt.Errorf("treeroute: port %d overflows int32", p)
		}
		l.Ports[i] = int32(p)
	}
	return l, nil
}

// maxInt32 bounds decoded ids without importing math.
const maxInt32 = 1<<31 - 1

// NewPortScheme compiles the port-model scheme over the same trees New
// accepts.
func NewPortScheme(parent []int, root int) (*PortScheme, error) {
	if root < 0 || root >= len(parent) || parent[root] != -1 {
		return nil, fmt.Errorf("treeroute: root %d invalid", root)
	}
	children := make(map[int][]int)
	size := 0
	for v, p := range parent {
		if p == NotInTree {
			continue
		}
		size++
		if p >= 0 {
			children[p] = append(children[p], v)
		} else if v != root {
			return nil, fmt.Errorf("treeroute: second root %d", v)
		}
	}
	sub := make(map[int]int, size)
	topo := make([]int, 0, size)
	stack := []int{root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		topo = append(topo, v)
		stack = append(stack, children[v]...)
	}
	if len(topo) != size {
		return nil, errors.New("treeroute: parent array contains a cycle or unreachable nodes")
	}
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		s := 1
		for _, c := range children[v] {
			s += sub[c]
		}
		sub[v] = s
	}
	// Iterate members in DFS order rather than ranging the children map:
	// topo covers every node with children, and the fixed order keeps the
	// compile deterministic run to run.
	for _, v := range topo {
		cs := children[v]
		sort.Slice(cs, func(i, j int) bool {
			if sub[cs[i]] != sub[cs[j]] {
				return sub[cs[i]] > sub[cs[j]]
			}
			return cs[i] < cs[j]
		})
	}
	s := &PortScheme{
		root:   root,
		member: make(map[int]*portTable, size),
		labels: make(map[int]PortLabel, size),
		size:   size,
	}
	next := int32(0)
	var dfs func(v int, ports []int32, lightDepth int32)
	dfs = func(v int, ports []int32, lightDepth int32) {
		tbl := &portTable{in: next, parent: int32(parent[v]), heavy: -1, lightDepth: lightDepth}
		next++
		s.member[v] = tbl
		lbl := PortLabel{In: tbl.in, Ports: make([]int32, len(ports))}
		copy(lbl.Ports, ports)
		s.labels[v] = lbl
		cs := children[v]
		tbl.children = make([]int32, len(cs))
		for i, c := range cs {
			tbl.children[i] = int32(c)
			if i == 0 {
				tbl.heavy = int32(c)
				dfs(c, ports, lightDepth)
				hc := s.member[c]
				tbl.heavyIn, tbl.heavyOut = hc.in, hc.out
			} else {
				ext := make([]int32, len(ports)+1)
				copy(ext, ports)
				ext[len(ports)] = int32(i) // port number = rank among children
				dfs(c, ext, lightDepth+1)
			}
		}
		tbl.out = next - 1
	}
	dfs(root, nil, 0)
	return s, nil
}

// Size returns the number of tree members.
func (s *PortScheme) Size() int { return s.size }

// Contains reports membership.
func (s *PortScheme) Contains(v int) bool {
	_, ok := s.member[v]
	return ok
}

// Label returns v's port label.
func (s *PortScheme) Label(v int) PortLabel { return s.labels[v] }

// LabelBits returns the encoded label size of v.
func (s *PortScheme) LabelBits(v int) int { return s.labels[v].Bits() }

// TableBits returns the routing-table size: interval, parent, heavy
// child + interval, light-depth. Port->link resolution is link-layer
// state in this model (see PortMapBits).
func (s *PortScheme) TableBits(v int) int {
	t := s.member[v]
	n := bits.UvarintLen(uint64(t.in)) + bits.UvarintLen(uint64(t.out))
	n += bits.UvarintLen(uint64(t.parent + 1))
	n += bits.UvarintLen(uint64(t.heavy + 1))
	if t.heavy >= 0 {
		n += bits.UvarintLen(uint64(t.heavyIn)) + bits.UvarintLen(uint64(t.heavyOut))
	}
	n += bits.UvarintLen(uint64(t.lightDepth))
	return n
}

// PortMapBits returns what v's port->neighbor map would cost if it
// were charged to the routing table (one id per child).
func (s *PortScheme) PortMapBits(v int, idBits int) int {
	return len(s.member[v].children) * idBits
}

// NextHop performs one local step at u toward the destination labeled
// dst.
func (s *PortScheme) NextHop(u int, dst PortLabel) (next int, arrived bool, err error) {
	t, ok := s.member[u]
	if !ok {
		return 0, false, ErrNotInTree
	}
	switch {
	case dst.In == t.in:
		return 0, true, nil
	case dst.In < t.in || dst.In > t.out:
		if t.parent < 0 {
			return 0, false, ErrBadLabel
		}
		return int(t.parent), false, nil
	case t.heavy >= 0 && dst.In >= t.heavyIn && dst.In <= t.heavyOut:
		return int(t.heavy), false, nil
	default:
		// u is on the destination's root path, so u's light-depth
		// indexes the port to take next.
		k := int(t.lightDepth)
		if k >= len(dst.Ports) {
			return 0, false, ErrBadLabel
		}
		p := int(dst.Ports[k])
		if p < 1 || p >= len(t.children) {
			return 0, false, ErrBadLabel
		}
		return int(t.children[p]), false, nil
	}
}

// Route walks from src to the destination labeled dst.
func (s *PortScheme) Route(src int, dst PortLabel) ([]int, error) {
	path := []int{src}
	cur := src
	for steps := 0; ; steps++ {
		next, arrived, err := s.NextHop(cur, dst)
		if err != nil {
			return nil, err
		}
		if arrived {
			return path, nil
		}
		if steps > s.size {
			return nil, errors.New("treeroute: routing loop")
		}
		cur = next
		path = append(path, cur)
	}
}
