package treeroute

import (
	"math"
	"math/rand"
	"testing"

	"compactrouting/internal/bits"
	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
)

// treeParents roots the tree graph g at root and returns the parent
// array New expects.
func treeParents(t *testing.T, g *graph.Graph, root int) []int {
	t.Helper()
	spt := metric.Dijkstra(g, root)
	parent := make([]int, g.N())
	for v := range parent {
		parent[v] = spt.Parent[v]
	}
	parent[root] = -1
	return parent
}

// treePath returns the unique path between u and v in the tree given by
// parent (toward root).
func treePath(parent []int, u, v int) []int {
	depth := func(x int) int {
		d := 0
		for parent[x] >= 0 {
			x = parent[x]
			d++
		}
		return d
	}
	du, dv := depth(u), depth(v)
	var up, down []int
	for du > dv {
		up = append(up, u)
		u = parent[u]
		du--
	}
	for dv > du {
		down = append(down, v)
		v = parent[v]
		dv--
	}
	for u != v {
		up = append(up, u)
		down = append(down, v)
		u, v = parent[u], parent[v]
	}
	up = append(up, u)
	for i := len(down) - 1; i >= 0; i-- {
		up = append(up, down[i])
	}
	return up
}

func checkAllPairs(t *testing.T, s *Scheme, parent []int, n int) {
	t.Helper()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			got, err := s.Route(u, s.Label(v))
			if err != nil {
				t.Fatalf("Route(%d -> %d): %v", u, v, err)
			}
			want := treePath(parent, u, v)
			if len(got) != len(want) {
				t.Fatalf("Route(%d -> %d) = %v, want %v", u, v, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("Route(%d -> %d) = %v, want %v", u, v, got, want)
				}
			}
		}
	}
}

func TestRouteOnPath(t *testing.T) {
	g, err := graph.Path(17, 1)
	if err != nil {
		t.Fatal(err)
	}
	parent := treeParents(t, g, 8)
	s, err := New(parent, 8)
	if err != nil {
		t.Fatal(err)
	}
	checkAllPairs(t, s, parent, g.N())
}

func TestRouteOnCaterpillar(t *testing.T) {
	g, err := graph.CaterpillarTree(8, 6)
	if err != nil {
		t.Fatal(err)
	}
	parent := treeParents(t, g, 0)
	s, err := New(parent, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkAllPairs(t, s, parent, g.N())
}

func TestRouteOnRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5; trial++ {
		n := 30 + rng.Intn(70)
		g, err := graph.RandomTree(n, 3, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		root := rng.Intn(n)
		parent := treeParents(t, g, root)
		s, err := New(parent, root)
		if err != nil {
			t.Fatal(err)
		}
		checkAllPairs(t, s, parent, n)
	}
}

func TestLightEntriesLogBound(t *testing.T) {
	g, err := graph.RandomTree(1000, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	parent := treeParents(t, g, 0)
	s, err := New(parent, 0)
	if err != nil {
		t.Fatal(err)
	}
	bound := int(math.Floor(math.Log2(1000)))
	for v := 0; v < 1000; v++ {
		if got := len(s.Label(v).Light); got > bound {
			t.Fatalf("node %d has %d light entries > log2 n = %d", v, got, bound)
		}
	}
}

func TestSubsetTree(t *testing.T) {
	// A tree over a strict subset of graph nodes (the Voronoi cell use
	// case): nodes 10..19 of a 30-node id space.
	parent := make([]int, 30)
	for i := range parent {
		parent[i] = NotInTree
	}
	parent[10] = -1
	for v := 11; v < 20; v++ {
		parent[v] = v - 1
	}
	s, err := New(parent, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 10 {
		t.Fatalf("Size = %d, want 10", s.Size())
	}
	if s.Contains(5) || !s.Contains(15) {
		t.Fatal("Contains wrong")
	}
	path, err := s.Route(19, s.Label(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 10 || path[0] != 19 || path[9] != 10 {
		t.Fatalf("path = %v", path)
	}
	if _, _, err := s.NextHop(3, s.Label(10)); err != ErrNotInTree {
		t.Fatalf("NextHop from non-member: %v", err)
	}
}

func TestLabelEncodeDecode(t *testing.T) {
	g, err := graph.RandomTree(200, 4, 17)
	if err != nil {
		t.Fatal(err)
	}
	parent := treeParents(t, g, 3)
	s, err := New(parent, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		l := s.Label(v)
		var w bits.Writer
		l.Encode(&w)
		if w.Len() != l.Bits() {
			t.Fatalf("node %d: encoded %d bits, Bits() says %d", v, w.Len(), l.Bits())
		}
		got, err := DecodeLabel(bits.NewReader(w.Bytes(), w.Len()))
		if err != nil {
			t.Fatal(err)
		}
		if got.In != l.In || len(got.Light) != len(l.Light) {
			t.Fatalf("node %d: decode mismatch %+v vs %+v", v, got, l)
		}
		for i := range got.Light {
			if got.Light[i] != l.Light[i] {
				t.Fatalf("node %d entry %d: %+v vs %+v", v, i, got.Light[i], l.Light[i])
			}
		}
	}
}

func TestLabelBitsBound(t *testing.T) {
	g, err := graph.RandomTree(1024, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	parent := treeParents(t, g, 0)
	s, err := New(parent, 0)
	if err != nil {
		t.Fatal(err)
	}
	// O(log^2 n) with small constants: allow 4 * log^2 n.
	logn := math.Log2(1024)
	bound := int(4 * logn * logn)
	for v := 0; v < g.N(); v++ {
		if b := s.LabelBits(v); b > bound {
			t.Fatalf("label of %d is %d bits > %d", v, b, bound)
		}
		if b := s.TableBits(v); b > bound {
			t.Fatalf("table of %d is %d bits > %d", v, b, bound)
		}
	}
}

func TestBadInputs(t *testing.T) {
	// Root with a parent.
	if _, err := New([]int{0, -1}, 0); err == nil {
		t.Fatal("accepted root with parent")
	}
	// Two roots.
	if _, err := New([]int{-1, -1}, 0); err == nil {
		t.Fatal("accepted two roots")
	}
	// Cycle.
	if _, err := New([]int{-1, 2, 3, 1}, 0); err == nil {
		t.Fatal("accepted a cycle")
	}
	// Root out of range.
	if _, err := New([]int{-1}, 5); err == nil {
		t.Fatal("accepted out-of-range root")
	}
}

func TestForeignLabelErrors(t *testing.T) {
	parent1 := []int{-1, 0, 1}
	s1, err := New(parent1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A label whose In is beyond this tree's range: at the root the
	// destination looks outside the subtree and there is no parent.
	bogus := Label{In: 99}
	if _, _, err := s1.NextHop(0, bogus); err != ErrBadLabel {
		t.Fatalf("foreign label: err = %v, want ErrBadLabel", err)
	}
}

func TestRouteOptimalCost(t *testing.T) {
	// Route cost along the tree equals the tree metric distance
	// (optimal routing, the Lemma 4.1 guarantee).
	g, err := graph.RandomTree(80, 5, 31)
	if err != nil {
		t.Fatal(err)
	}
	a := metric.NewAPSP(g)
	parent := treeParents(t, g, 0)
	s, err := New(parent, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		path, err := s.Route(u, s.Label(v))
		if err != nil {
			t.Fatal(err)
		}
		cost := 0.0
		for i := 0; i+1 < len(path); i++ {
			w, ok := g.EdgeWeight(path[i], path[i+1])
			if !ok {
				t.Fatalf("route uses non-edge %d-%d", path[i], path[i+1])
			}
			cost += w
		}
		if math.Abs(cost-a.Dist(u, v)) > 1e-9 {
			t.Fatalf("route cost %v != tree distance %v for %d->%d", cost, a.Dist(u, v), u, v)
		}
	}
}
