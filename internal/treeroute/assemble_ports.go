package treeroute

import "fmt"

// PortNodeInfo is one node's compiled port-model routing state in
// exported form — the PortScheme counterpart of NodeInfo, consumed by
// AssemblePorts so a scheme can be rebuilt from per-node serialized
// state (snapshots, distributed protocols) without re-running the DFS
// compile.
type PortNodeInfo struct {
	In, Out    int32
	Parent     int32 // -1 at the root, NotInTree for non-members
	Heavy      int32 // -1 at leaves
	HeavyIn    int32
	HeavyOut   int32
	LightDepth int32
	Children   []int32 // port order: Children[0] == Heavy when present
	Label      PortLabel
}

// PortInfo exports v's compiled state in PortNodeInfo form.
func (s *PortScheme) PortInfo(v int) (PortNodeInfo, bool) {
	t, ok := s.member[v]
	if !ok {
		return PortNodeInfo{Parent: NotInTree}, false
	}
	return PortNodeInfo{
		In: t.in, Out: t.out,
		Parent: t.parent, Heavy: t.heavy,
		HeavyIn: t.heavyIn, HeavyOut: t.heavyOut,
		LightDepth: t.lightDepth,
		Children:   t.children,
		Label:      s.labels[v],
	}, true
}

// AssemblePorts compiles a PortScheme from per-node state, mirroring
// Assemble: info is indexed by graph node id, entries with Parent ==
// NotInTree are non-members, and only root and interval sanity are
// checked (cross-node consistency is the producer's responsibility).
func AssemblePorts(root int, info []PortNodeInfo) (*PortScheme, error) {
	if root < 0 || root >= len(info) || info[root].Parent != -1 {
		return nil, fmt.Errorf("treeroute: root %d invalid", root)
	}
	s := &PortScheme{
		root:   root,
		member: make(map[int]*portTable),
		labels: make(map[int]PortLabel),
	}
	for v := range info {
		ni := info[v]
		if ni.Parent == NotInTree {
			continue
		}
		if ni.Parent == -1 && v != root {
			return nil, fmt.Errorf("treeroute: second root %d", v)
		}
		if ni.In < 0 || ni.Out < ni.In {
			return nil, fmt.Errorf("treeroute: node %d has interval [%d,%d]", v, ni.In, ni.Out)
		}
		if ni.Label.In != ni.In {
			return nil, fmt.Errorf("treeroute: node %d label In %d != interval In %d", v, ni.Label.In, ni.In)
		}
		if len(ni.Children) > 0 && ni.Children[0] != ni.Heavy {
			return nil, fmt.Errorf("treeroute: node %d children[0] %d != heavy %d", v, ni.Children[0], ni.Heavy)
		}
		s.member[v] = &portTable{
			in: ni.In, out: ni.Out,
			parent: ni.Parent, heavy: ni.Heavy,
			heavyIn: ni.HeavyIn, heavyOut: ni.HeavyOut,
			lightDepth: ni.LightDepth,
			children:   ni.Children,
		}
		s.labels[v] = ni.Label
		s.size++
	}
	if rt := s.member[root]; int(rt.out-rt.in)+1 != s.size {
		return nil, fmt.Errorf("treeroute: root interval [%d,%d] does not cover %d members",
			rt.in, rt.out, s.size)
	}
	return s, nil
}
