package treeroute

import (
	"testing"
	"testing/quick"

	"compactrouting/internal/bits"
	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
)

// TestQuickRandomTreesRouteOptimally: over random trees, roots and
// pairs, routes follow the unique tree path (checked by cost equality
// with the tree metric, which characterizes the path in a tree).
func TestQuickRandomTreesRouteOptimally(t *testing.T) {
	f := func(seed int64, rootRaw, aRaw, bRaw uint8, order bool) bool {
		n := 20 + int(uint16(seed)%80)
		g, err := graph.RandomTree(n, 3, seed)
		if err != nil {
			return false
		}
		a := metric.NewAPSP(g)
		root := int(rootRaw) % n
		spt := metric.Dijkstra(g, root)
		parent := make([]int, n)
		copy(parent, spt.Parent)
		parent[root] = -1
		ord := HeavyFirst
		if order {
			ord = IDOrder
		}
		s, err := NewOrdered(parent, root, ord)
		if err != nil {
			return false
		}
		u, v := int(aRaw)%n, int(bRaw)%n
		path, err := s.Route(u, s.Label(v))
		if err != nil {
			return false
		}
		cost := 0.0
		for i := 1; i < len(path); i++ {
			w, ok := g.EdgeWeight(path[i-1], path[i])
			if !ok {
				return false
			}
			cost += w
		}
		return path[0] == u && path[len(path)-1] == v &&
			cost <= a.Dist(u, v)+1e-9 && cost >= a.Dist(u, v)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLabelRoundTrip: labels survive encode/decode over random
// trees and both child orders.
func TestQuickLabelRoundTrip(t *testing.T) {
	f := func(seed int64, order bool) bool {
		n := 20 + int(uint16(seed)%60)
		g, err := graph.RandomTree(n, 2, seed)
		if err != nil {
			return false
		}
		spt := metric.Dijkstra(g, 0)
		parent := make([]int, n)
		copy(parent, spt.Parent)
		parent[0] = -1
		ord := HeavyFirst
		if order {
			ord = IDOrder
		}
		s, err := NewOrdered(parent, 0, ord)
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			l := s.Label(v)
			var w bits.Writer
			l.Encode(&w)
			if w.Len() != l.Bits() {
				return false
			}
			got, err := DecodeLabel(bits.NewReader(w.Bytes(), w.Len()))
			if err != nil || got.In != l.In || len(got.Light) != len(l.Light) {
				return false
			}
			for i := range got.Light {
				if got.Light[i] != l.Light[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestIDOrderLabelsLargerOnPaths: on a path rooted at one end, id
// order happens to match heavy order, but on a caterpillar the id
// order can pick a leaf as "heavy", pushing the spine into light
// entries — labels must never be smaller than the heavy-first ones in
// the worst case over nodes.
func TestIDOrderLabelsWorseOnCaterpillar(t *testing.T) {
	g, err := graph.CaterpillarTree(40, 2)
	if err != nil {
		t.Fatal(err)
	}
	spt := metric.Dijkstra(g, 0)
	parent := make([]int, g.N())
	copy(parent, spt.Parent)
	parent[0] = -1
	heavy, err := NewOrdered(parent, 0, HeavyFirst)
	if err != nil {
		t.Fatal(err)
	}
	ido, err := NewOrdered(parent, 0, IDOrder)
	if err != nil {
		t.Fatal(err)
	}
	maxH, maxI := 0, 0
	for v := 0; v < g.N(); v++ {
		if b := len(heavy.Label(v).Light); b > maxH {
			maxH = b
		}
		if b := len(ido.Label(v).Light); b > maxI {
			maxI = b
		}
	}
	if maxI < maxH {
		t.Fatalf("id-order light entries (%d) beat heavy-first (%d)?", maxI, maxH)
	}
}
