package treeroute

import (
	"fmt"

	"compactrouting/internal/bits"
)

// Scheme and PortScheme bit codecs, used by the snapshot plane: encode
// walks graph node ids 0..n-1 in order (never the member maps, keeping
// the stream deterministic), decode rebuilds through Assemble /
// AssemblePorts so restored schemes pass the same sanity checks as
// protocol-built ones.

// EncodeScheme serializes s over an n-node graph.
func EncodeScheme(w *bits.Writer, s *Scheme, n int) {
	w.WriteUvarint(uint64(s.root))
	for v := 0; v < n; v++ {
		ni, ok := s.Info(v)
		w.WriteBit(ok)
		if !ok {
			continue
		}
		w.WriteUvarint(uint64(ni.In))
		w.WriteUvarint(uint64(ni.Out))
		w.WriteUvarint(uint64(ni.Parent + 1))
		w.WriteUvarint(uint64(ni.Heavy + 1))
		if ni.Heavy >= 0 {
			w.WriteUvarint(uint64(ni.HeavyIn))
			w.WriteUvarint(uint64(ni.HeavyOut))
		}
		ni.Label.Encode(w)
	}
}

// DecodeScheme reads a scheme written by EncodeScheme.
func DecodeScheme(r *bits.Reader, n int) (*Scheme, error) {
	root, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if root >= uint64(n) {
		return nil, fmt.Errorf("treeroute: decoded root %d out of range", root)
	}
	info := make([]NodeInfo, n)
	for v := range info {
		info[v].Parent = NotInTree
	}
	for v := 0; v < n; v++ {
		ok, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		ni := &info[v]
		fields := [4]uint64{}
		for i := range fields {
			f, err := r.ReadUvarint()
			if err != nil {
				return nil, err
			}
			if f > maxInt32 {
				return nil, fmt.Errorf("treeroute: node %d field overflows int32", v)
			}
			fields[i] = f
		}
		ni.In, ni.Out = int32(fields[0]), int32(fields[1])
		ni.Parent, ni.Heavy = int32(fields[2])-1, int32(fields[3])-1
		if ni.Heavy >= 0 {
			hi, err := r.ReadUvarint()
			if err != nil {
				return nil, err
			}
			ho, err := r.ReadUvarint()
			if err != nil {
				return nil, err
			}
			if hi > maxInt32 || ho > maxInt32 {
				return nil, fmt.Errorf("treeroute: node %d heavy interval overflows int32", v)
			}
			ni.HeavyIn, ni.HeavyOut = int32(hi), int32(ho)
		}
		lbl, err := DecodeLabel(r)
		if err != nil {
			return nil, err
		}
		ni.Label = lbl
	}
	return Assemble(int(root), info)
}

// EncodePortScheme serializes s over an n-node graph.
func EncodePortScheme(w *bits.Writer, s *PortScheme, n int) {
	w.WriteUvarint(uint64(s.root))
	for v := 0; v < n; v++ {
		ni, ok := s.PortInfo(v)
		w.WriteBit(ok)
		if !ok {
			continue
		}
		w.WriteUvarint(uint64(ni.In))
		w.WriteUvarint(uint64(ni.Out))
		w.WriteUvarint(uint64(ni.Parent + 1))
		w.WriteUvarint(uint64(ni.Heavy + 1))
		if ni.Heavy >= 0 {
			w.WriteUvarint(uint64(ni.HeavyIn))
			w.WriteUvarint(uint64(ni.HeavyOut))
		}
		w.WriteUvarint(uint64(ni.LightDepth))
		w.WriteUvarint(uint64(len(ni.Children)))
		for _, c := range ni.Children {
			w.WriteUvarint(uint64(c))
		}
		ni.Label.Encode(w)
	}
}

// DecodePortScheme reads a scheme written by EncodePortScheme.
func DecodePortScheme(r *bits.Reader, n int) (*PortScheme, error) {
	root, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if root >= uint64(n) {
		return nil, fmt.Errorf("treeroute: decoded root %d out of range", root)
	}
	info := make([]PortNodeInfo, n)
	for v := range info {
		info[v].Parent = NotInTree
	}
	for v := 0; v < n; v++ {
		ok, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		ni := &info[v]
		fields := [4]uint64{}
		for i := range fields {
			f, err := r.ReadUvarint()
			if err != nil {
				return nil, err
			}
			if f > maxInt32 {
				return nil, fmt.Errorf("treeroute: node %d field overflows int32", v)
			}
			fields[i] = f
		}
		ni.In, ni.Out = int32(fields[0]), int32(fields[1])
		ni.Parent, ni.Heavy = int32(fields[2])-1, int32(fields[3])-1
		if ni.Heavy >= 0 {
			hi, err := r.ReadUvarint()
			if err != nil {
				return nil, err
			}
			ho, err := r.ReadUvarint()
			if err != nil {
				return nil, err
			}
			if hi > maxInt32 || ho > maxInt32 {
				return nil, fmt.Errorf("treeroute: node %d heavy interval overflows int32", v)
			}
			ni.HeavyIn, ni.HeavyOut = int32(hi), int32(ho)
		}
		ld, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		cc, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		if ld > maxInt32 || cc > uint64(n) {
			return nil, fmt.Errorf("treeroute: node %d light-depth/children out of range", v)
		}
		ni.LightDepth = int32(ld)
		ni.Children = make([]int32, cc)
		for i := range ni.Children {
			c, err := r.ReadUvarint()
			if err != nil {
				return nil, err
			}
			if c >= uint64(n) {
				return nil, fmt.Errorf("treeroute: node %d child out of range", v)
			}
			ni.Children[i] = int32(c)
		}
		lbl, err := DecodePortLabel(r)
		if err != nil {
			return nil, err
		}
		ni.Label = lbl
	}
	return AssemblePorts(int(root), info)
}
