package treeroute

import (
	"bytes"
	"testing"

	"compactrouting/internal/bits"
	"compactrouting/internal/graph"
)

// TestSchemeCodecRoundTrip pins the Scheme codec: Encode → Decode →
// Encode must reproduce the stream bit for bit, and the restored
// scheme must pass Assemble's sanity checks (Decode routes through it).
func TestSchemeCodecRoundTrip(t *testing.T) {
	g, err := graph.RandomTree(200, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	parent := treeParents(t, g, 0)
	s, err := New(parent, 0)
	if err != nil {
		t.Fatal(err)
	}
	var w bits.Writer
	EncodeScheme(&w, s, g.N())
	r := bits.NewReader(w.Bytes(), w.Len())
	s2, err := DecodeScheme(r, g.N())
	if err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bits left after decode", r.Remaining())
	}
	var w2 bits.Writer
	EncodeScheme(&w2, s2, g.N())
	if w2.Len() != w.Len() || !bytes.Equal(w2.Bytes(), w.Bytes()) {
		t.Fatalf("re-encode differs: %d bits vs %d", w2.Len(), w.Len())
	}
}

// TestPortSchemeCodecRoundTrip is the same pin for the port-routing
// codec, which additionally carries light depths and child port lists.
func TestPortSchemeCodecRoundTrip(t *testing.T) {
	g, err := graph.RandomTree(200, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	parent := treeParents(t, g, 0)
	s, err := NewPortScheme(parent, 0)
	if err != nil {
		t.Fatal(err)
	}
	var w bits.Writer
	EncodePortScheme(&w, s, g.N())
	r := bits.NewReader(w.Bytes(), w.Len())
	s2, err := DecodePortScheme(r, g.N())
	if err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bits left after decode", r.Remaining())
	}
	var w2 bits.Writer
	EncodePortScheme(&w2, s2, g.N())
	if w2.Len() != w.Len() || !bytes.Equal(w2.Bytes(), w.Bytes()) {
		t.Fatalf("re-encode differs: %d bits vs %d", w2.Len(), w.Len())
	}
}
