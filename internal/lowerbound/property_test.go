package lowerbound

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestQuickOptimalDominatesEveryStrategy: the DP's reported optimum
// must be no worse than any randomly sampled strategy, on random
// ascending weight sets.
func TestQuickOptimalDominatesEveryStrategy(t *testing.T) {
	f := func(seed int64, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 3 + int(mRaw)%20
		weights := make([]float64, m)
		w := 1.0
		for i := range weights {
			w += rng.Float64() * w
			weights[i] = w
		}
		sort.Float64s(weights)
		opt, witness, err := OptimalStretch(weights)
		if err != nil {
			return false
		}
		if check, err := StrategyStretch(weights, witness); err != nil || check > opt+1e-9 {
			return false
		}
		// Sample random strategies; none may beat the optimum.
		for trial := 0; trial < 20; trial++ {
			var probes []int
			for i := 0; i < m-1; i++ {
				if rng.Intn(2) == 0 {
					probes = append(probes, i)
				}
			}
			probes = append(probes, m-1)
			got, err := StrategyStretch(weights, probes)
			if err != nil {
				return false
			}
			if got < opt-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOptimalScaleInvariant: scaling every weight by a constant
// leaves the minimax stretch unchanged (the game is about ratios).
func TestQuickOptimalScaleInvariant(t *testing.T) {
	f := func(seed int64, scaleRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 4 + int(uint16(seed)%12)
		weights := make([]float64, m)
		w := 1.0
		for i := range weights {
			w += rng.Float64()*w + 0.01
			weights[i] = w
		}
		scale := 1 + float64(scaleRaw)
		scaled := make([]float64, m)
		for i := range scaled {
			scaled[i] = weights[i] * scale
		}
		a, _, err := OptimalStretch(weights)
		if err != nil {
			return false
		}
		b, _, err := OptimalStretch(scaled)
		if err != nil {
			return false
		}
		return a > b-1e-6 && a < b+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestDoublingStrategyNearOptimalOnGeometricWeights: on near-continuum
// weight grids the base-2 doubling strategy is within a whisker of the
// DP optimum — the structural fact behind "9".
func TestDoublingStrategyNearOptimalOnGeometricWeights(t *testing.T) {
	p := Params{P: 24, Q: 24}
	w := p.Weights()
	opt, _, err := OptimalStretch(w)
	if err != nil {
		t.Fatal(err)
	}
	dbl, err := StrategyStretch(w, DoublingStrategy(w, 2))
	if err != nil {
		t.Fatal(err)
	}
	if dbl > opt*1.1 {
		t.Fatalf("doubling %v vs optimal %v: more than 10%% off", dbl, opt)
	}
}
