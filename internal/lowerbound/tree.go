// Package lowerbound reproduces Section 5 (Theorem 1.3): the stretch
// lower bound for name-independent compact routing.
//
// It provides (i) the exact counterexample tree of Figure 3, with its
// metric properties checkable numerically (node count, normalized
// diameter O(2^{1/eps} n), doubling dimension <= 6 - log eps); (ii) the
// operational search game the information-theoretic proof encodes — a
// searcher at the root must locate a name hidden in one of the weighted
// branches, where probing the branch of weight b (round trip 2b) reveals
// the target's location only among branches of weight <= b (Corollary
// 5.7: tables seen so far cannot resolve names any further out) — with
// exact minimax analysis showing optimal stretch -> 9; and (iii) the
// counting machinery of Lemmas 5.4-5.5 evaluated numerically.
package lowerbound

import (
	"fmt"
	"math"

	"compactrouting/internal/graph"
)

// Params are the branch-grid dimensions of the Figure 3 tree.
type Params struct {
	P int // weight doublings: branches T_{i,j} for i in [p]
	Q int // weights per doubling: j in [q]
}

// PaperParams returns the paper's parameter choice for a target eps in
// (0, 8): p = ceil(72/eps)+6 and q = ceil(48/eps)-4 (Section 5.2).
func PaperParams(eps float64) (Params, error) {
	if eps <= 0 || eps >= 8 {
		return Params{}, fmt.Errorf("lowerbound: eps %v out of (0, 8)", eps)
	}
	return Params{
		P: int(math.Ceil(72/eps)) + 6,
		Q: int(math.Ceil(48/eps)) - 4,
	}, nil
}

// BranchWeight returns w_{i,j} = 2^i (q + j), the length of the edge
// from the root to branch T_{i,j}.
func (p Params) BranchWeight(i, j int) float64 {
	return math.Pow(2, float64(i)) * float64(p.Q+j)
}

// Weights returns all pq branch weights in partition order
// (i ascending, then j), which is also ascending weight order within
// each i and overall interleaved.
func (p Params) Weights() []float64 {
	out := make([]float64, 0, p.P*p.Q)
	for i := 0; i < p.P; i++ {
		for j := 0; j < p.Q; j++ {
			out = append(out, p.BranchWeight(i, j))
		}
	}
	return out
}

// Tree is the constructed Figure 3 graph.
type Tree struct {
	Params Params
	G      *graph.Graph
	Root   int
	// BranchOf[v] = flat branch index iq+j of node v (-1 for the root).
	BranchOf []int
	// Sizes[k] = number of nodes of branch k.
	Sizes []int
	// Mid[k] = the node of branch k attached to the root.
	Mid []int
}

// Build constructs the tree on (approximately) n nodes: branch k =
// iq+j holds round(n^{(k+1)/pq}) - round(n^{k/pq}) nodes (at least 1),
// chained by edges of weight 1/n, with the middle node attached to the
// root by an edge of weight w_{i,j}. n must be at least 2^{pq} so that
// every branch is nonempty with the paper's geometric sizing.
func Build(p Params, n int) (*Tree, error) {
	c := p.P * p.Q
	if c < 1 {
		return nil, fmt.Errorf("lowerbound: empty params %+v", p)
	}
	if n < 1<<uint(c) && c < 62 {
		return nil, fmt.Errorf("lowerbound: n=%d too small for pq=%d branches (need >= 2^%d)", n, c, c)
	}
	// Branch boundaries b_k = round(n^{k/c}), forced strictly
	// increasing so every branch is nonempty.
	bounds := make([]int, c+1)
	for k := 0; k <= c; k++ {
		bounds[k] = int(math.Round(math.Pow(float64(n), float64(k)/float64(c))))
	}
	bounds[0] = 1
	bounds[c] = n
	for k := 1; k < c; k++ {
		if bounds[k] <= bounds[k-1] {
			bounds[k] = bounds[k-1] + 1
		}
	}
	for k := c - 1; k >= 1; k-- {
		if bounds[k] >= bounds[k+1] {
			bounds[k] = bounds[k+1] - 1
		}
	}
	if bounds[1] <= bounds[0] {
		return nil, fmt.Errorf("lowerbound: n=%d cannot fit %d nonempty branches", n, c)
	}
	t := &Tree{
		Params:   p,
		Root:     0,
		BranchOf: make([]int, n),
		Sizes:    make([]int, c),
		Mid:      make([]int, c),
	}
	t.BranchOf[0] = -1
	b := graph.NewBuilder(n)
	inner := 1.0 / float64(n)
	next := 1
	for k := 0; k < c; k++ {
		size := bounds[k+1] - bounds[k]
		t.Sizes[k] = size
		first := next
		for s := 0; s < size; s++ {
			t.BranchOf[next] = k
			if s > 0 {
				if err := b.AddEdge(next-1, next, inner); err != nil {
					return nil, err
				}
			}
			next++
		}
		mid := first + size/2
		t.Mid[k] = mid
		w := p.BranchWeight(k/p.Q, k%p.Q)
		if err := b.AddEdge(0, mid, w); err != nil {
			return nil, err
		}
	}
	if next != n {
		return nil, fmt.Errorf("lowerbound: built %d nodes, want %d", next, n)
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	t.G = g
	return t, nil
}

// DoublingDimensionBound returns the paper's analytic bound on the
// tree's doubling dimension, log2(q+2) (Lemma 5.8 proves this is at
// most 6 - log eps under the paper's parameterization).
func (p Params) DoublingDimensionBound() float64 {
	return math.Log2(float64(p.Q + 2))
}

// NormalizedDiameterBound returns the paper's bound 2*w_{p-1,q-1}*n on
// the normalized diameter (edge weights inside branches are 1/n).
func (p Params) NormalizedDiameterBound(n int) float64 {
	return 2 * p.BranchWeight(p.P-1, p.Q-1) * float64(n)
}
