package lowerbound

import (
	"math"
	"testing"

	"compactrouting/internal/metric"
)

func TestPaperParams(t *testing.T) {
	p, err := PaperParams(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.P != 78 || p.Q != 44 {
		t.Fatalf("params for eps=1: %+v, want {78 44}", p)
	}
	if _, err := PaperParams(0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := PaperParams(8); err == nil {
		t.Fatal("eps=8 accepted")
	}
}

func TestBranchWeights(t *testing.T) {
	p := Params{P: 3, Q: 4}
	if w := p.BranchWeight(0, 0); w != 4 {
		t.Fatalf("w_{0,0} = %v, want 4", w)
	}
	if w := p.BranchWeight(2, 3); w != 28 {
		t.Fatalf("w_{2,3} = %v, want 28", w)
	}
	// w_{i,q} == w_{i+1,0} per the paper's identification.
	if p.BranchWeight(0, p.Q) != p.BranchWeight(1, 0) {
		t.Fatal("weight continuity broken")
	}
	ws := p.Weights()
	if len(ws) != 12 {
		t.Fatalf("got %d weights", len(ws))
	}
	for i := 1; i < len(ws); i++ {
		if ws[i] <= ws[i-1] {
			t.Fatalf("weights not ascending at %d: %v", i, ws)
		}
	}
}

func TestBuildTreeStructure(t *testing.T) {
	p := Params{P: 4, Q: 2}
	n := 512 // 2^{pq} = 256 <= n
	tr, err := Build(p, n)
	if err != nil {
		t.Fatal(err)
	}
	if tr.G.N() != n {
		t.Fatalf("N = %d, want %d", tr.G.N(), n)
	}
	if tr.G.M() != n-1 {
		t.Fatalf("M = %d, want tree with %d edges", tr.G.M(), n-1)
	}
	total := 0
	for k, s := range tr.Sizes {
		if s < 1 {
			t.Fatalf("branch %d empty", k)
		}
		total += s
	}
	if total != n-1 {
		t.Fatalf("branch sizes sum to %d, want %d", total, n-1)
	}
	// Branch sizes grow geometrically (later branches much bigger).
	if tr.Sizes[len(tr.Sizes)-1] <= tr.Sizes[0] {
		t.Fatal("branch sizes not increasing")
	}
	// Root edges carry the branch weights.
	for k := range tr.Sizes {
		w, ok := tr.G.EdgeWeight(tr.Root, tr.Mid[k])
		if !ok {
			t.Fatalf("no root edge to branch %d", k)
		}
		want := p.BranchWeight(k/p.Q, k%p.Q)
		if w != want {
			t.Fatalf("root edge %d = %v, want %v", k, w, want)
		}
	}
}

func TestBuildRejectsSmallN(t *testing.T) {
	if _, err := Build(Params{P: 4, Q: 4}, 100); err == nil {
		t.Fatal("accepted n far below 2^{pq}")
	}
}

func TestTreeMetricProperties(t *testing.T) {
	p := Params{P: 3, Q: 2}
	n := 128
	tr, err := Build(p, n)
	if err != nil {
		t.Fatal(err)
	}
	a := metric.NewAPSP(tr.G)
	// Normalized diameter within the paper's bound.
	if nd := a.NormalizedDiameter(); nd > p.NormalizedDiameterBound(n) {
		t.Fatalf("normalized diameter %v exceeds bound %v", nd, p.NormalizedDiameterBound(n))
	}
	// Doubling dimension: Lemma 5.8 bounds it by log2(q+2); the greedy
	// estimator may overshoot by up to 2x plus discretization slack.
	alpha := EstimateTreeDoubling(a)
	bound := 2*p.DoublingDimensionBound() + 2
	if alpha > bound {
		t.Fatalf("doubling estimate %v exceeds 2*bound+2 = %v", alpha, bound)
	}
}

// EstimateTreeDoubling is a test helper wrapping the metric estimator.
func EstimateTreeDoubling(a *metric.APSP) float64 {
	return metric.EstimateDoublingDimension(a, 300, 1)
}

func TestStrategyStretchValidation(t *testing.T) {
	w := []float64{1, 2, 4}
	if _, err := StrategyStretch(w, nil); err == nil {
		t.Fatal("empty probes accepted")
	}
	if _, err := StrategyStretch(w, []int{1}); err == nil {
		t.Fatal("probes not covering the largest weight accepted")
	}
	if _, err := StrategyStretch(w, []int{2, 1}); err == nil {
		t.Fatal("non-increasing probes accepted")
	}
	if _, err := StrategyStretch([]float64{2, 1}, []int{1}); err == nil {
		t.Fatal("unsorted weights accepted")
	}
}

func TestStrategyStretchKnownValues(t *testing.T) {
	// Single branch: probe it; target there: cost 2w + w = 3w.
	got, err := StrategyStretch([]float64{5}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("single-branch stretch %v, want 3", got)
	}
	// Two branches 1 and 10, probing both in order: worst is target at
	// 1 after probing... probes cover targets as soon as probed:
	// target@1: 2*1+1 = 3; target@10: 2*11+10 = 32 -> 3.2.
	got, err = StrategyStretch([]float64{1, 10}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-3.2) > 1e-12 {
		t.Fatalf("stretch %v, want 3.2", got)
	}
	// Probing only the big branch: target@1 costs 2*10+1 = 21.
	got, err = StrategyStretch([]float64{1, 10}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 21 {
		t.Fatalf("stretch %v, want 21", got)
	}
}

func TestGeometricRatioMinimizedAtTwo(t *testing.T) {
	base, ratio := BestGeometricBase()
	if math.Abs(base-2) > 0.01 {
		t.Fatalf("best base %v, want 2", base)
	}
	if math.Abs(ratio-9) > 0.01 {
		t.Fatalf("best ratio %v, want 9", ratio)
	}
	if GeometricRatio(2) != 9 {
		t.Fatalf("GeometricRatio(2) = %v", GeometricRatio(2))
	}
	if GeometricRatio(1.5) <= 9 || GeometricRatio(3) <= 9 {
		t.Fatal("ratio not minimized at 2")
	}
	if !math.IsInf(GeometricRatio(1), 1) {
		t.Fatal("base 1 should be infeasible")
	}
}

func TestOptimalStretchApproachesNine(t *testing.T) {
	// On the paper's weight family the exact minimax stretch converges,
	// as the number of doublings p grows, to 1 + 8q/(q+1): the discrete
	// weight grid lets the adversary bind only a factor (q+1)/q above
	// the last probe. The paper's q = ceil(48/eps) - 4 drives this to
	// 9 - Theta(eps) — the content of Theorem 1.3.
	for _, q := range []int{4, 12, 44} {
		p := Params{P: 40, Q: q}
		opt, probes, err := OptimalStretch(p.Weights())
		if err != nil {
			t.Fatal(err)
		}
		if len(probes) == 0 {
			t.Fatal("no witness strategy")
		}
		limit := 1 + 8*float64(q)/float64(q+1)
		if math.Abs(opt-limit) > 0.05 {
			t.Fatalf("q=%d: optimal stretch %.4f, want ~%.4f", q, opt, limit)
		}
	}
	// And the limit family approaches 9 from below as q -> infinity.
	if l44 := 1 + 8*44.0/45; l44 < 8.8 || l44 > 9 {
		t.Fatalf("limit at q=44 is %v", l44)
	}
}

func TestOptimalStretchMonotoneInP(t *testing.T) {
	prev := 0.0
	for _, pp := range []int{4, 8, 16, 32} {
		p := Params{P: pp, Q: 4}
		opt, _, err := OptimalStretch(p.Weights())
		if err != nil {
			t.Fatal(err)
		}
		if opt < prev-1e-9 {
			t.Fatalf("optimal stretch decreased at p=%d: %v after %v", pp, opt, prev)
		}
		prev = opt
	}
}

func TestOptimalBeatsOrEqualsDoubling(t *testing.T) {
	p := Params{P: 12, Q: 4}
	w := p.Weights()
	opt, _, err := OptimalStretch(w)
	if err != nil {
		t.Fatal(err)
	}
	dbl, err := StrategyStretch(w, DoublingStrategy(w, 2))
	if err != nil {
		t.Fatal(err)
	}
	if opt > dbl+1e-9 {
		t.Fatalf("optimal %v worse than doubling %v", opt, dbl)
	}
}

func TestOptimalStretchWitnessConsistent(t *testing.T) {
	p := Params{P: 10, Q: 3}
	w := p.Weights()
	opt, probes, err := OptimalStretch(w)
	if err != nil {
		t.Fatal(err)
	}
	check, err := StrategyStretch(w, probes)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(check-opt) > 1e-6 {
		t.Fatalf("witness stretch %v != reported optimum %v", check, opt)
	}
}

func TestLogCongruentFamilySize(t *testing.T) {
	// With beta = n^{0.1} bits and c = 4 partitions, the family after
	// fixing the first n^{3/4} tables is still astronomically large.
	n := 1 << 16
	beta := math.Pow(float64(n), 0.1)
	got := LogCongruentFamilySize(n, beta, 4, 3)
	if got < float64(n) {
		t.Fatalf("family log-size %v unexpectedly small", got)
	}
	// With huge tables (beta = n bits) the bound collapses below zero:
	// no congruence guarantee — matching the full-table baseline which
	// indeed achieves stretch 1.
	if LogCongruentFamilySize(1024, 1024, 4, 3) > 0 {
		t.Fatal("full tables should defeat the counting bound")
	}
}
