package lowerbound

import (
	"testing"
)

// starPartition partitions 1+2+4 nodes like the paper's tree: the root
// alone, then geometrically growing branches.
func starPartition() (int, [][]int) {
	return 7, [][]int{{0}, {1, 2}, {3, 4, 5, 6}}
}

// starCover gives each node a "table" depending on its own branch's
// names plus the root — a radius-limited scheme on the star.
func starCover(n int, partition [][]int) [][]int {
	cover := make([][]int, n)
	for _, class := range partition {
		for _, v := range class {
			cover[v] = append([]int{0}, class...)
		}
	}
	return cover
}

func TestPermutationsCountAndDistinct(t *testing.T) {
	perms := permutations(4)
	if len(perms) != 24 {
		t.Fatalf("got %d permutations", len(perms))
	}
	seen := map[[4]int]bool{}
	for _, p := range perms {
		var k [4]int
		copy(k[:], p)
		if seen[k] {
			t.Fatalf("duplicate permutation %v", p)
		}
		seen[k] = true
	}
}

func TestCongruentFamiliesMeetBound(t *testing.T) {
	n, partition := starPartition()
	cover := starCover(n, partition)
	for _, beta := range []int{1, 2, 3} {
		res := CongruentFamilies(n, beta, partition, NeighborhoodConfig(cover))
		if len(res.FamilySizes) != len(partition) {
			t.Fatalf("beta=%d: %d classes", beta, len(res.FamilySizes))
		}
		prev := int(factorial(n))
		for i, size := range res.FamilySizes {
			// Lemma 5.4: |L_i| >= n! / 2^{beta * prefix}.
			if float64(size) < res.Bound[i] {
				t.Fatalf("beta=%d class %d: family %d below bound %v", beta, i, size, res.Bound[i])
			}
			// Nesting: families shrink.
			if size > prev {
				t.Fatalf("beta=%d class %d: family grew", beta, i)
			}
			prev = size
		}
	}
}

func TestCongruentNamingsShareConfigurations(t *testing.T) {
	// Definitional check: all namings in L_i give identical tables on
	// the prefix V_0..V_i.
	n, partition := starPartition()
	cover := starCover(n, partition)
	cfg := NeighborhoodConfig(cover)
	res := CongruentFamilies(n, 2, partition, cfg)
	mask := uint64(3)
	for i, family := range res.Families {
		var prefix []int
		for _, class := range partition[:i+1] {
			prefix = append(prefix, class...)
		}
		ref := family[0]
		for _, nameOf := range family[1:] {
			for _, v := range prefix {
				if cfg(ref, v)&mask != cfg(nameOf, v)&mask {
					t.Fatalf("class %d: namings disagree on table of %d", i, v)
				}
			}
		}
	}
}

func TestAmbiguousNameExists(t *testing.T) {
	// Lemma 5.5 in action: with small tables there is a name whose
	// branch cannot be determined from the prefix tables — the seed of
	// the lower-bound adversary.
	n, partition := starPartition()
	cover := starCover(n, partition)
	res := CongruentFamilies(n, 1, partition, NeighborhoodConfig(cover))
	name, class, ok := AmbiguousName(res, partition, n)
	if !ok {
		t.Fatal("no ambiguous name found with 1-bit tables")
	}
	if class < 1 || class >= len(partition) {
		t.Fatalf("bad class %d", class)
	}
	if name < 0 || name >= n {
		t.Fatalf("bad name %d", name)
	}
}

func TestFullTablesDefeatAmbiguity(t *testing.T) {
	// With tables that encode every node's location (beta large, cover
	// = everything), the surviving congruent family is ~1 naming and
	// ambiguity disappears — matching the stretch-1 full-table scheme.
	n, partition := starPartition()
	full := make([][]int, n)
	for v := range full {
		for u := 0; u < n; u++ {
			full[v] = append(full[v], u)
		}
	}
	res := CongruentFamilies(n, 60, partition, NeighborhoodConfig(full))
	if size := res.FamilySizes[len(res.FamilySizes)-1]; size != 1 {
		// Hash collisions could merge a couple of namings, but with 60
		// bits that is vanishingly unlikely.
		t.Fatalf("full-table family still has %d namings", size)
	}
	if _, _, ok := AmbiguousName(res, partition, n); ok {
		t.Fatal("ambiguity survived full tables")
	}
}
