package lowerbound

import (
	"fmt"
	"math"
	"sort"
)

// The branch-search game. A target name hides at the far end of one of
// m branches of weights w_1 < w_2 < ... < w_m hanging off a common
// root. The searcher starts at the root knowing nothing (Corollary 5.7:
// with o(n^{1/c})-bit tables, the tables of all nodes within the
// explored region cannot resolve the target's branch). Probing the
// branch of weight b costs a 2b round trip and reveals the target's
// exact location IF it lies in a branch of weight <= b (the probed
// branch's tables belong to a deeper congruence class); otherwise the
// searcher only learns the target is further out. A deterministic
// strategy is therefore an increasing sequence of probe weights ending
// at w_m. When the target sits in a branch of weight w, the searcher
// pays 2*(sum of probes up to the first probe >= w) + w.
//
// This is exactly the escalation that Claims 5.9-5.11 bound: writing
// A_k for the prefix sums of the probe subsequence b_k, some k has
// A_{k+1}/b_k > 4 - eps/4, which forces stretch (2 A_{k+1} + b_k)/b_k
// > 9 - eps. Conversely the doubling strategy b_k = 2^k achieves
// sup ratio 1 + 2b^2/(b-1) |_{b=2} = 9.

// StrategyStretch returns the worst-case stretch of the given probe
// subsequence (indices into the ascending weights slice; the last probe
// must cover the largest weight). The adversary places the target on
// any branch.
func StrategyStretch(weights []float64, probes []int) (float64, error) {
	if !sort.Float64sAreSorted(weights) {
		return 0, fmt.Errorf("lowerbound: weights must be ascending")
	}
	if len(weights) == 0 || len(probes) == 0 {
		return 0, fmt.Errorf("lowerbound: empty game")
	}
	last := -1
	for _, p := range probes {
		if p <= last || p >= len(weights) {
			return 0, fmt.Errorf("lowerbound: probes must be strictly increasing indices, got %v", probes)
		}
		last = p
	}
	if probes[len(probes)-1] != len(weights)-1 {
		return 0, fmt.Errorf("lowerbound: final probe must cover the largest weight")
	}
	worst := 0.0
	prefix := 0.0
	k := 0
	for _, p := range probes {
		prefix += weights[p]
		// Targets first covered by this probe: weights in (prev, w_p].
		for ; k <= p; k++ {
			w := weights[k]
			if r := (2*prefix + w) / w; r > worst {
				worst = r
			}
		}
	}
	return worst, nil
}

// DoublingStrategy returns the probe subsequence that doubles the
// covered weight each step: the first index at or above base^k for
// each k, ending at the largest weight. base must exceed 1.
func DoublingStrategy(weights []float64, base float64) []int {
	var probes []int
	target := weights[0]
	for {
		i := sort.SearchFloat64s(weights, target)
		if i >= len(weights) {
			break
		}
		// Probe the largest weight still <= target*? Use the first
		// weight >= target, the cheapest probe covering it.
		probes = append(probes, i)
		if i == len(weights)-1 {
			break
		}
		target = weights[i] * base
	}
	if len(probes) == 0 || probes[len(probes)-1] != len(weights)-1 {
		probes = append(probes, len(weights)-1)
	}
	return dedupAscending(probes)
}

func dedupAscending(p []int) []int {
	out := p[:0]
	for i, v := range p {
		if i == 0 || v > out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// OptimalStretch computes the exact minimax stretch of the game over
// ALL deterministic strategies, by binary search over the ratio with an
// exact dynamic-programming feasibility check. For a candidate ratio
// rho, minA[p] is the minimal achievable probe prefix sum over
// strategies whose last probe so far is index p and that satisfy every
// constraint so far; a transition l -> p is allowed when
// 2*(minA[l] + w_p) + w_{l+1} <= rho * w_{l+1} (the adversary's best
// placement in the newly covered interval binds at its smallest
// weight). Smaller prefix sums only relax future constraints, so
// propagating the minimum is exact. rho is feasible iff index m-1 is
// reachable.
func OptimalStretch(weights []float64) (float64, []int, error) {
	if !sort.Float64sAreSorted(weights) || len(weights) == 0 {
		return 0, nil, fmt.Errorf("lowerbound: need ascending nonempty weights")
	}
	m := len(weights)
	feasible := func(rho float64) ([]int, bool) {
		minA := make([]float64, m)
		parent := make([]int, m)
		for i := range minA {
			minA[i] = math.Inf(1)
			parent[i] = -2
		}
		for p := 0; p < m; p++ {
			// First probe p: binding target weight is w_0.
			if 2*weights[p]+weights[0] <= rho*weights[0] {
				if weights[p] < minA[p] {
					minA[p] = weights[p]
					parent[p] = -1
				}
			}
		}
		for l := 0; l < m-1; l++ {
			if math.IsInf(minA[l], 1) {
				continue
			}
			bind := weights[l+1]
			for p := l + 1; p < m; p++ {
				a := minA[l] + weights[p]
				if 2*a+bind <= rho*bind && a < minA[p] {
					minA[p] = a
					parent[p] = l
				}
			}
		}
		if math.IsInf(minA[m-1], 1) {
			return nil, false
		}
		var probes []int
		for p := m - 1; p >= 0; p = parent[p] {
			probes = append(probes, p)
			if parent[p] == -1 {
				break
			}
		}
		for i, j := 0, len(probes)-1; i < j; i, j = i+1, j-1 {
			probes[i], probes[j] = probes[j], probes[i]
		}
		return probes, true
	}
	lo, hi := 1.0, 3.0
	for {
		if _, ok := feasible(hi); ok {
			break
		}
		hi *= 2
		if hi > 1e9 {
			return 0, nil, fmt.Errorf("lowerbound: no feasible ratio found")
		}
	}
	for iter := 0; iter < 100; iter++ {
		mid := (lo + hi) / 2
		if _, ok := feasible(mid); ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	probes, _ := feasible(hi)
	// The greedy witness is feasible at ratio hi; report its actual
	// worst-case stretch (<= hi).
	got, err := StrategyStretch(weights, probes)
	if err != nil {
		return 0, nil, err
	}
	return got, probes, nil
}

// GeometricRatio returns the sup stretch of the pure geometric
// strategy b_k = base^k on a continuum of branch weights:
// 1 + 2*base^2/(base-1). Minimizing over base gives base = 2 and ratio
// 9 — the constant of Theorems 1.1 and 1.3.
func GeometricRatio(base float64) float64 {
	if base <= 1 {
		return math.Inf(1)
	}
	return 1 + 2*base*base/(base-1)
}

// BestGeometricBase minimizes GeometricRatio by ternary search and
// returns (base, ratio); analytically (2, 9).
func BestGeometricBase() (float64, float64) {
	lo, hi := 1.0001, 16.0
	for iter := 0; iter < 200; iter++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if GeometricRatio(m1) < GeometricRatio(m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	b := (lo + hi) / 2
	return b, GeometricRatio(b)
}

// LogCongruentFamilySize evaluates Lemma 5.4's counting bound: the
// log2 of the guaranteed size of the congruent-naming family after
// fixing the tables of the first n^{i/c} nodes with beta-bit tables,
// log2(n!) - beta * n^{i/c}. A positive, large value certifies that
// exponentially many namings share those routing tables — the
// pigeonhole fact the adversary exploits.
func LogCongruentFamilySize(n int, beta float64, c, i int) float64 {
	logFact := 0.0
	for k := 2; k <= n; k++ {
		logFact += math.Log2(float64(k))
	}
	return logFact - beta*math.Pow(float64(n), float64(i)/float64(c))
}
