package lowerbound

import (
	"math"
)

// This file makes Section 5.1 operational on brute-forceable
// instances: Lemma 5.4's pigeonhole construction of congruent-naming
// families and Lemma 5.5's existence of an ambiguous target name are
// executed exactly, by enumerating all n! namings of a small node set.

// ConfigFn models a name-independent scheme's preprocessing: given a
// naming (nameOf[v] = name) it returns node v's beta-bit routing-table
// configuration. Lemma 5.4 holds for EVERY such function.
type ConfigFn func(nameOf []int, v int) uint64

// CongruentResult reports the nested family chain of Lemma 5.4.
type CongruentResult struct {
	// FamilySizes[i] = |L_i|, the number of namings congruent on the
	// partition prefix V_0 ∪ ... ∪ V_i.
	FamilySizes []int
	// Bound[i] is Lemma 5.4's guarantee n!/2^{beta * prefixSize_i}.
	Bound []float64
	// Families[i] lists the namings of L_i (as indices into the
	// enumeration order), for downstream checks.
	Families [][][]int
}

// CongruentFamilies enumerates all namings of n nodes, fixes the
// routing configuration greedily on each partition class in turn
// (always keeping the most common configuration vector — the
// pigeonhole step), and returns the chain L_0 ⊇ L_1 ⊇ ... together
// with the lemma's size bounds. beta is the table size in bits
// (configurations are truncated to beta bits). n must be small enough
// to enumerate (n <= 8).
func CongruentFamilies(n, beta int, partition [][]int, cfg ConfigFn) *CongruentResult {
	if n > 8 {
		panic("lowerbound: CongruentFamilies enumerates n! namings; n must be <= 8")
	}
	mask := uint64(1)<<uint(beta) - 1
	all := permutations(n)
	res := &CongruentResult{}
	family := all
	prefix := 0
	for _, class := range partition {
		prefix += len(class)
		// Group the current family by the configuration vector on this
		// class and keep the largest group.
		groups := make(map[string][][]int)
		for _, nameOf := range family {
			key := make([]byte, 0, 8*len(class))
			for _, v := range class {
				c := cfg(nameOf, v) & mask
				for b := 0; b < 8; b++ {
					key = append(key, byte(c>>uint(8*b)))
				}
			}
			groups[string(key)] = append(groups[string(key)], nameOf)
		}
		var best [][]int
		var bestKey string
		for k, g := range groups {
			if len(g) > len(best) || (len(g) == len(best) && k < bestKey) {
				best, bestKey = g, k
			}
		}
		family = best
		res.FamilySizes = append(res.FamilySizes, len(family))
		res.Families = append(res.Families, family)
		res.Bound = append(res.Bound, factorial(n)/math.Pow(2, float64(beta*prefix)))
	}
	return res
}

// AmbiguousName implements Lemma 5.5 for the family chain: it returns
// a name t and a class index i such that within L_{i-1} some naming
// places t in V_i and another does not — so no routing algorithm that
// has only seen the tables of V_0..V_{i-1} can know whether the node
// named t lies in V_i. Returns ok=false if no such name exists (which
// the lemma rules out when the families are large enough).
func AmbiguousName(res *CongruentResult, partition [][]int, n int) (t, class int, ok bool) {
	for i := 1; i < len(partition); i++ {
		family := res.Families[i-1]
		inClass := make(map[int]bool, n)  // names that appear in V_i for some naming
		outClass := make(map[int]bool, n) // names that miss V_i for some naming
		for _, nameOf := range family {
			members := make(map[int]bool, len(partition[i]))
			for _, v := range partition[i] {
				members[nameOf[v]] = true
			}
			for name := 0; name < n; name++ {
				if members[name] {
					inClass[name] = true
				} else {
					outClass[name] = true
				}
			}
		}
		for name := 0; name < n; name++ {
			if inClass[name] && outClass[name] {
				return name, i, true
			}
		}
	}
	return 0, 0, false
}

// permutations enumerates all permutations of [0, n) in lexicographic
// order.
func permutations(n int) [][]int {
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			cp := make([]int, n)
			copy(cp, cur)
			out = append(out, cp)
			return
		}
		for i := k; i < n; i++ {
			cur[k], cur[i] = cur[i], cur[k]
			rec(k + 1)
			cur[k], cur[i] = cur[i], cur[k]
		}
	}
	rec(0)
	return out
}

func factorial(n int) float64 {
	f := 1.0
	for k := 2; k <= n; k++ {
		f *= float64(k)
	}
	return f
}

// NeighborhoodConfig returns a ConfigFn modeling a radius-limited
// compact scheme: node v's table is a hash of the names of the nodes
// in its coverage list cover[v] (e.g. its ball of some radius). Any
// real compact scheme's table is a function of some bounded
// neighborhood's names; this captures exactly that dependence.
func NeighborhoodConfig(cover [][]int) ConfigFn {
	return func(nameOf []int, v int) uint64 {
		h := uint64(1469598103934665603) // FNV offset basis
		for _, u := range cover[v] {
			h ^= uint64(nameOf[u]) + 0x9e3779b97f4a7c15
			h *= 1099511628211
		}
		return h
	}
}
