package frame

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"compactrouting/internal/bits"
)

// corpusFrames builds one whole valid frame (header + payload) per
// frame type, plus a few edge shapes.
func corpusFrames() [][]byte {
	mk := func(t Type, id uint64, enc func(*bits.Writer)) []byte {
		var w bits.Writer
		if enc != nil {
			enc(&w)
		}
		buf, err := AppendFrame(nil, t, id, w.Bytes())
		if err != nil {
			panic(err)
		}
		return buf
	}
	return [][]byte{
		mk(TypeSchemesRequest, 1, nil),
		mk(TypeSchemesResponse, 2, sampleSchemes().Encode),
		mk(TypeRouteRequest, 3, sampleRouteRequest().Encode),
		mk(TypeRouteResponse, 4, sampleRouteResponse().Encode),
		mk(TypeError, 5, func(w *bits.Writer) { EncodeError(w, "boom") }),
		mk(TypeRouteRequest, 6, (&RouteRequest{}).Encode),
		mk(TypeRouteResponse, 7, (&RouteResponse{}).Encode),
	}
}

// TestRegenFuzzCorpus rewrites the checked-in seed corpus. Regenerate:
//
//	REGEN_FUZZ_CORPUS=1 go test ./internal/... -run TestRegenFuzzCorpus
func TestRegenFuzzCorpus(t *testing.T) {
	if os.Getenv("REGEN_FUZZ_CORPUS") == "" {
		t.Skip("set REGEN_FUZZ_CORPUS=1 to rewrite testdata/fuzz seed corpora")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeFrame")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, fr := range corpusFrames() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", fr)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%03d", i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzDecodeFrame: arbitrary bytes either fail header/payload decoding
// with an error (never a panic) or decode to a value whose re-encode is
// byte-identical to the input payload — the fixpoint the zero-padding
// rule exists for.
func FuzzDecodeFrame(f *testing.F) {
	for _, fr := range corpusFrames() {
		f.Add(fr)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ParseHeader(data)
		if err != nil {
			return
		}
		if len(data) < HeaderSize+int(h.PayloadLen) {
			return
		}
		payload := data[HeaderSize : HeaderSize+int(h.PayloadLen)]
		var r bits.Reader
		var w bits.Writer
		switch h.Type {
		case TypeRouteRequest:
			var q RouteRequest
			if err := q.DecodeInto(payload, &r); err != nil {
				return
			}
			q.Encode(&w)
		case TypeRouteResponse:
			var p RouteResponse
			if err := p.DecodeInto(payload, &r); err != nil {
				return
			}
			p.Encode(&w)
		case TypeSchemesResponse:
			var p SchemesResponse
			if err := p.DecodeInto(payload, &r); err != nil {
				return
			}
			p.Encode(&w)
		case TypeError:
			msg, err := DecodeError(payload, &r)
			if err != nil {
				return
			}
			EncodeError(&w, msg)
		default:
			return
		}
		if !bytes.Equal(w.Bytes(), payload) {
			t.Fatalf("decode→encode not a fixpoint:\n in  %x\n out %x", payload, w.Bytes())
		}
	})
}
