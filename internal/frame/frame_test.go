package frame

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"compactrouting/internal/bits"
)

func TestHeaderRoundTrip(t *testing.T) {
	var buf [HeaderSize]byte
	want := Header{Type: TypeRouteRequest, RequestID: 0xdeadbeefcafe, PayloadLen: 12345}
	PutHeader(buf[:], want)
	got, err := ParseHeader(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestHeaderRejections(t *testing.T) {
	mk := func(mut func(b []byte)) []byte {
		var buf [HeaderSize]byte
		PutHeader(buf[:], Header{Type: TypeRouteRequest, RequestID: 1, PayloadLen: 4})
		mut(buf[:])
		return buf[:]
	}
	cases := []struct {
		name string
		buf  []byte
		want string
	}{
		{"short", make([]byte, HeaderSize-1), "short header"},
		{"magic", mk(func(b []byte) { b[0] = 'X' }), "bad magic"},
		{"version skew", mk(func(b []byte) { b[2] = Version + 1 }), "protocol version"},
		{"type zero", mk(func(b []byte) { b[3] = 0 }), "unknown frame type"},
		{"type high", mk(func(b []byte) { b[3] = 99 }), "unknown frame type"},
		{"payload cap", mk(func(b []byte) { b[12] = 0xff; b[13] = 0xff }), "exceeds cap"},
	}
	for _, tc := range cases {
		if _, err := ParseHeader(tc.buf); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func sampleRouteRequest() *RouteRequest {
	return &RouteRequest{Scheme: 3, Pairs: []Pair{{0, 1}, {7, 7}, {255, 12}, {1 << 20, 2}}}
}

func sampleRouteResponse() *RouteResponse {
	return &RouteResponse{Results: []RouteResult{
		{Status: StatusOK, Cached: true, Hops: 4, MaxHeaderBits: 96, Cost: 1.5, Optimal: 1.25},
		{Status: StatusBadPair},
		{Status: StatusRouteFailed, Hops: 0},
		{Status: StatusOK, Hops: 1 << 20, MaxHeaderBits: 1, Cost: math.Inf(1), Optimal: 0},
	}}
}

func sampleSchemes() *SchemesResponse {
	return &SchemesResponse{N: 4096, Generation: 7, Names: []string{"full-table", "simple-labeled", ""}}
}

func TestRouteRequestRoundTrip(t *testing.T) {
	var w bits.Writer
	q := sampleRouteRequest()
	q.Encode(&w)
	if w.Len() != q.Bits() {
		t.Fatalf("encoded %d bits, Bits() says %d", w.Len(), q.Bits())
	}
	var got RouteRequest
	var r bits.Reader
	if err := got.DecodeInto(w.Bytes(), &r); err != nil {
		t.Fatal(err)
	}
	if got.Scheme != q.Scheme || len(got.Pairs) != len(q.Pairs) {
		t.Fatalf("got %+v, want %+v", got, q)
	}
	for i := range q.Pairs {
		if got.Pairs[i] != q.Pairs[i] {
			t.Fatalf("pair %d: got %+v, want %+v", i, got.Pairs[i], q.Pairs[i])
		}
	}
}

func TestRouteResponseRoundTrip(t *testing.T) {
	var w bits.Writer
	p := sampleRouteResponse()
	p.Encode(&w)
	if w.Len() != p.Bits() {
		t.Fatalf("encoded %d bits, Bits() says %d", w.Len(), p.Bits())
	}
	var got RouteResponse
	var r bits.Reader
	if err := got.DecodeInto(w.Bytes(), &r); err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(p.Results) {
		t.Fatalf("got %d results, want %d", len(got.Results), len(p.Results))
	}
	for i := range p.Results {
		if got.Results[i] != p.Results[i] {
			t.Fatalf("result %d: got %+v, want %+v", i, got.Results[i], p.Results[i])
		}
	}
}

func TestSchemesResponseRoundTrip(t *testing.T) {
	var w bits.Writer
	p := sampleSchemes()
	p.Encode(&w)
	if w.Len() != p.Bits() {
		t.Fatalf("encoded %d bits, Bits() says %d", w.Len(), p.Bits())
	}
	var got SchemesResponse
	var r bits.Reader
	if err := got.DecodeInto(w.Bytes(), &r); err != nil {
		t.Fatal(err)
	}
	if got.N != p.N || got.Generation != p.Generation || len(got.Names) != len(p.Names) {
		t.Fatalf("got %+v, want %+v", got, p)
	}
	for i := range p.Names {
		if got.Names[i] != p.Names[i] {
			t.Fatalf("name %d: got %q, want %q", i, got.Names[i], p.Names[i])
		}
	}
}

func TestErrorRoundTrip(t *testing.T) {
	var w bits.Writer
	EncodeError(&w, "scheme index 9 out of range")
	var r bits.Reader
	msg, err := DecodeError(w.Bytes(), &r)
	if err != nil {
		t.Fatal(err)
	}
	if msg != "scheme index 9 out of range" {
		t.Fatalf("got %q", msg)
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	var w bits.Writer
	sampleRouteRequest().Encode(&w)
	payload := append(append([]byte(nil), w.Bytes()...), 0xff)
	var got RouteRequest
	var r bits.Reader
	if err := got.DecodeInto(payload, &r); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	var w bits.Writer
	sampleRouteResponse().Encode(&w)
	full := w.Bytes()
	var got RouteResponse
	var r bits.Reader
	for cut := 0; cut < len(full); cut++ {
		if err := got.DecodeInto(full[:cut], &r); err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", cut, len(full))
		}
	}
}

func TestAppendFrameRoundTrip(t *testing.T) {
	var w bits.Writer
	sampleRouteRequest().Encode(&w)
	buf, err := AppendFrame(nil, TypeRouteRequest, 42, w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	h, err := ParseHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != TypeRouteRequest || h.RequestID != 42 || int(h.PayloadLen) != len(w.Bytes()) {
		t.Fatalf("header %+v", h)
	}
	if !bytes.Equal(buf[HeaderSize:], w.Bytes()) {
		t.Fatal("payload mismatch")
	}
}
