// Package frame is the wire format of the binary serving plane: a
// length-prefixed, versioned TCP framing that batches route queries and
// responses. A connection is a sequence of frames; each frame is a
// fixed 16-byte header followed by a payload encoded with the
// repository's internal/bits codecs:
//
//	offset  size  field
//	0       2     magic "CR"
//	2       1     protocol version (Version)
//	3       1     frame type (Type)
//	4       8     request id, big endian (echoed in the response)
//	12      4     payload length in bytes, big endian (<= MaxPayload)
//
// Responses carry route shapes (hops, cost, optimal, header bits) but
// never paths: the binary plane exists for throughput, and the codecs
// are written so decode→route→encode runs allocation-free against
// reused buffers (pinned by testing.AllocsPerRun in internal/server).
//
// Payload bit streams are byte-padded with zero bits; every decoder
// rejects non-zero padding and trailing bytes, so decode→encode is a
// byte-exact fixpoint (fuzzed by FuzzDecodeFrame).
//
// This package is bound by the repo's deterministic ruleset: its
// outputs must be a pure function of explicit inputs (determinlint
// enforces the source-level contract; see DESIGN.md §Static analysis).
//
//determinlint:deterministic
package frame

import (
	"encoding/binary"
	"fmt"
	"math"

	"compactrouting/internal/bits"
)

// Wire-format constants.
const (
	magic0 = 'C'
	magic1 = 'R'
	// Version is the protocol version this package speaks. A frame with
	// any other version is rejected at the header (version skew must be
	// explicit, never a misparse).
	Version = 1
	// HeaderSize is the fixed frame-header length in bytes.
	HeaderSize = 16
	// MaxPayload bounds a frame's payload so a corrupt or hostile length
	// prefix cannot make a reader allocate unboundedly.
	MaxPayload = 1 << 24
	// MaxPairs bounds the route pairs in one request frame (matches the
	// HTTP batch endpoint's MaxBatchPairs).
	MaxPairs = 100000
	// maxNameLen / maxSchemes / maxErrorLen bound the variable-length
	// fields of control frames.
	maxNameLen  = 256
	maxSchemes  = 1024
	maxErrorLen = 4096
)

// Type identifies a frame's payload.
type Type uint8

// Frame types. Requests flow client→server, responses server→client;
// TypeError answers any request the server could not serve.
const (
	TypeSchemesRequest  Type = 1
	TypeSchemesResponse Type = 2
	TypeRouteRequest    Type = 3
	TypeRouteResponse   Type = 4
	TypeError           Type = 5
)

func (t Type) valid() bool { return t >= TypeSchemesRequest && t <= TypeError }

// Header is a parsed frame header.
type Header struct {
	Type       Type
	RequestID  uint64
	PayloadLen uint32
}

// PutHeader encodes h into buf, which must be at least HeaderSize long.
//
//determinlint:hotpath
func PutHeader(buf []byte, h Header) {
	buf[0], buf[1], buf[2], buf[3] = magic0, magic1, Version, byte(h.Type)
	binary.BigEndian.PutUint64(buf[4:12], h.RequestID)
	binary.BigEndian.PutUint32(buf[12:16], h.PayloadLen)
}

// ParseHeader decodes and validates a frame header.
//
//determinlint:hotpath
func ParseHeader(buf []byte) (Header, error) {
	if len(buf) < HeaderSize {
		return Header{}, fmt.Errorf("frame: short header: %d bytes", len(buf))
	}
	if buf[0] != magic0 || buf[1] != magic1 {
		return Header{}, fmt.Errorf("frame: bad magic %#02x%02x", buf[0], buf[1])
	}
	if buf[2] != Version {
		return Header{}, fmt.Errorf("frame: protocol version %d, this build speaks %d", buf[2], Version)
	}
	h := Header{
		Type:       Type(buf[3]),
		RequestID:  binary.BigEndian.Uint64(buf[4:12]),
		PayloadLen: binary.BigEndian.Uint32(buf[12:16]),
	}
	if !h.Type.valid() {
		return Header{}, fmt.Errorf("frame: unknown frame type %d", h.Type)
	}
	if h.PayloadLen > MaxPayload {
		return Header{}, fmt.Errorf("frame: payload %d exceeds cap %d", h.PayloadLen, MaxPayload)
	}
	return h, nil
}

// AppendFrame appends a complete frame to dst and returns the extended
// slice (append-style, so callers reuse one buffer across frames).
//
//determinlint:hotpath
func AppendFrame(dst []byte, t Type, requestID uint64, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return dst, fmt.Errorf("frame: payload %d exceeds cap %d", len(payload), MaxPayload)
	}
	var hdr [HeaderSize]byte
	PutHeader(hdr[:], Header{Type: t, RequestID: requestID, PayloadLen: uint32(len(payload))})
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// finish rejects anything after the decoded payload: at most 7 bits of
// zero padding may remain, making decode→encode a byte-exact fixpoint.
func finish(r *bits.Reader) error {
	rem := r.Remaining()
	if rem >= 8 {
		return fmt.Errorf("frame: %d trailing payload bits", rem)
	}
	for i := 0; i < rem; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return err
		}
		if b {
			return fmt.Errorf("frame: non-zero padding bit")
		}
	}
	return nil
}

// Pair is one route query endpoint pair.
type Pair struct {
	Src, Dst int32
}

// RouteRequest is the TypeRouteRequest payload: a batch of queries
// against one scheme, addressed by its index in the engine's compile
// order (resolved once via TypeSchemesRequest).
type RouteRequest struct {
	Scheme int
	Pairs  []Pair
}

// Encode appends the request payload to w.
//
//determinlint:hotpath
func (q *RouteRequest) Encode(w *bits.Writer) {
	w.WriteUvarint(uint64(q.Scheme))
	w.WriteUvarint(uint64(len(q.Pairs)))
	for _, p := range q.Pairs {
		w.WriteUvarint(uint64(p.Src))
		w.WriteUvarint(uint64(p.Dst))
	}
}

// Bits returns the exact encoded size of the request payload in bits,
// mirroring Encode term by term.
func (q *RouteRequest) Bits() int {
	n := bits.UvarintLen(uint64(q.Scheme)) + bits.UvarintLen(uint64(len(q.Pairs)))
	for _, p := range q.Pairs {
		n += bits.UvarintLen(uint64(p.Src)) + bits.UvarintLen(uint64(p.Dst))
	}
	return n
}

// DecodeInto parses a request payload, reusing q.Pairs' capacity so a
// serving loop decodes without allocating once warm.
//
//determinlint:hotpath
func (q *RouteRequest) DecodeInto(payload []byte, r *bits.Reader) error {
	r.Reset(payload, 8*len(payload))
	scheme, err := r.ReadUvarint()
	if err != nil {
		return err
	}
	if scheme > maxSchemes {
		return fmt.Errorf("frame: scheme index %d out of range", scheme)
	}
	q.Scheme = int(scheme)
	count, err := r.ReadUvarint()
	if err != nil {
		return err
	}
	if count > MaxPairs {
		return fmt.Errorf("frame: %d pairs exceed cap %d", count, MaxPairs)
	}
	// A pair costs at least two 8-bit uvarints.
	if count*16 > uint64(r.Remaining()) {
		return fmt.Errorf("frame: pair count %d exceeds payload", count)
	}
	q.Pairs = q.Pairs[:0]
	for i := uint64(0); i < count; i++ {
		src, err := r.ReadUvarint()
		if err != nil {
			return err
		}
		dst, err := r.ReadUvarint()
		if err != nil {
			return err
		}
		if src > math.MaxInt32 || dst > math.MaxInt32 {
			return fmt.Errorf("frame: pair %d out of range", i)
		}
		q.Pairs = append(q.Pairs, Pair{Src: int32(src), Dst: int32(dst)})
	}
	return finish(r)
}

// Status classifies one route result on the wire.
type Status uint8

// Route statuses (2-bit field).
const (
	StatusOK          Status = 0
	StatusBadScheme   Status = 1
	StatusBadPair     Status = 2
	StatusRouteFailed Status = 3
)

// RouteResult is one answered query: the route's shape, no path.
type RouteResult struct {
	Status        Status
	Cached        bool
	Hops          int32
	MaxHeaderBits int32
	Cost          float64
	Optimal       float64
}

// RouteResponse is the TypeRouteResponse payload, index-aligned with
// the request's pairs.
type RouteResponse struct {
	Results []RouteResult
}

// Encode appends the response payload to w.
//
//determinlint:hotpath
func (p *RouteResponse) Encode(w *bits.Writer) {
	w.WriteUvarint(uint64(len(p.Results)))
	for i := range p.Results {
		res := &p.Results[i]
		w.WriteBits(uint64(res.Status), 2)
		w.WriteBit(res.Cached)
		w.WriteUvarint(uint64(res.Hops))
		w.WriteUvarint(uint64(res.MaxHeaderBits))
		if res.Status == StatusOK {
			w.WriteBits(math.Float64bits(res.Cost), 64)
			w.WriteBits(math.Float64bits(res.Optimal), 64)
		}
	}
}

// Bits returns the exact encoded size of the response payload in
// bits, mirroring Encode term by term.
func (p *RouteResponse) Bits() int {
	n := bits.UvarintLen(uint64(len(p.Results)))
	for i := range p.Results {
		res := &p.Results[i]
		n += 2 + 1 // status + cached
		n += bits.UvarintLen(uint64(res.Hops)) + bits.UvarintLen(uint64(res.MaxHeaderBits))
		if res.Status == StatusOK {
			n += 64 + 64 // cost + optimal
		}
	}
	return n
}

// DecodeInto parses a response payload, reusing p.Results' capacity.
//
//determinlint:hotpath
func (p *RouteResponse) DecodeInto(payload []byte, r *bits.Reader) error {
	r.Reset(payload, 8*len(payload))
	count, err := r.ReadUvarint()
	if err != nil {
		return err
	}
	if count > MaxPairs {
		return fmt.Errorf("frame: %d results exceed cap %d", count, MaxPairs)
	}
	// A result costs at least status+cached+two 8-bit uvarints = 19 bits.
	if count*19 > uint64(r.Remaining()) {
		return fmt.Errorf("frame: result count %d exceeds payload", count)
	}
	p.Results = p.Results[:0]
	for i := uint64(0); i < count; i++ {
		var res RouteResult
		st, err := r.ReadBits(2)
		if err != nil {
			return err
		}
		res.Status = Status(st)
		res.Cached, err = r.ReadBit()
		if err != nil {
			return err
		}
		hops, err := r.ReadUvarint()
		if err != nil {
			return err
		}
		hdr, err := r.ReadUvarint()
		if err != nil {
			return err
		}
		if hops > math.MaxInt32 || hdr > math.MaxInt32 {
			return fmt.Errorf("frame: result %d out of range", i)
		}
		res.Hops, res.MaxHeaderBits = int32(hops), int32(hdr)
		if res.Status == StatusOK {
			c, err := r.ReadBits(64)
			if err != nil {
				return err
			}
			o, err := r.ReadBits(64)
			if err != nil {
				return err
			}
			res.Cost, res.Optimal = math.Float64frombits(c), math.Float64frombits(o)
		}
		p.Results = append(p.Results, res)
	}
	return finish(r)
}

// SchemesResponse is the TypeSchemesResponse payload: the served
// network's size and generation plus the compiled scheme names in
// compile order — the indices RouteRequest.Scheme addresses.
type SchemesResponse struct {
	N          int
	Generation uint64
	Names      []string
}

// Encode appends the payload to w.
func (p *SchemesResponse) Encode(w *bits.Writer) {
	w.WriteUvarint(uint64(p.N))
	w.WriteUvarint(p.Generation)
	w.WriteUvarint(uint64(len(p.Names)))
	for _, name := range p.Names {
		writeString(w, name)
	}
}

// Bits returns the exact encoded size of the payload in bits,
// mirroring Encode term by term.
func (p *SchemesResponse) Bits() int {
	n := bits.UvarintLen(uint64(p.N)) + bits.UvarintLen(p.Generation) + bits.UvarintLen(uint64(len(p.Names)))
	for _, name := range p.Names {
		n += bits.UvarintLen(uint64(len(name))) + 8*len(name)
	}
	return n
}

// DecodeInto parses the payload.
func (p *SchemesResponse) DecodeInto(payload []byte, r *bits.Reader) error {
	r.Reset(payload, 8*len(payload))
	n, err := r.ReadUvarint()
	if err != nil {
		return err
	}
	if n > math.MaxInt32 {
		return fmt.Errorf("frame: network size %d out of range", n)
	}
	p.N = int(n)
	if p.Generation, err = r.ReadUvarint(); err != nil {
		return err
	}
	count, err := r.ReadUvarint()
	if err != nil {
		return err
	}
	if count > maxSchemes {
		return fmt.Errorf("frame: %d schemes exceed cap %d", count, maxSchemes)
	}
	p.Names = p.Names[:0]
	for i := uint64(0); i < count; i++ {
		name, err := readString(r, maxNameLen)
		if err != nil {
			return err
		}
		p.Names = append(p.Names, name)
	}
	return finish(r)
}

// EncodeError appends a TypeError payload (a bare message) to w.
func EncodeError(w *bits.Writer, msg string) {
	if len(msg) > maxErrorLen {
		msg = msg[:maxErrorLen]
	}
	writeString(w, msg)
}

// DecodeError parses a TypeError payload.
func DecodeError(payload []byte, r *bits.Reader) (string, error) {
	r.Reset(payload, 8*len(payload))
	msg, err := readString(r, maxErrorLen)
	if err != nil {
		return "", err
	}
	return msg, finish(r)
}

func writeString(w *bits.Writer, s string) {
	w.WriteUvarint(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		w.WriteBits(uint64(s[i]), 8)
	}
}

func readString(r *bits.Reader, limit int) (string, error) {
	n, err := r.ReadUvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(limit) {
		return "", fmt.Errorf("frame: string length %d exceeds cap %d", n, limit)
	}
	if n*8 > uint64(r.Remaining()) {
		return "", fmt.Errorf("frame: string length %d exceeds payload", n)
	}
	buf := make([]byte, n)
	for i := range buf {
		b, err := r.ReadBits(8)
		if err != nil {
			return "", err
		}
		buf[i] = byte(b)
	}
	return string(buf), nil
}
