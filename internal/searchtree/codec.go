package searchtree

import (
	"fmt"
	"math"

	"compactrouting/internal/bits"
	"compactrouting/internal/metric"
	"compactrouting/internal/treeroute"
)

// Search-tree bit codecs for the snapshot plane. Encoding walks
// Members (sorted ascending) and each node's Children slice in stored
// order — never a map — so the stream is a deterministic function of
// the tree and save→load→save is byte-identical.

// EncodeTree serializes t into w; encData writes one stored datum.
func EncodeTree[D any](w *bits.Writer, t *Tree[D], encData func(*bits.Writer, D)) {
	w.WriteUvarint(uint64(t.Center))
	w.WriteBits(math.Float64bits(t.Radius), 64)
	w.WriteBits(math.Float64bits(t.Eps), 64)
	w.WriteBits(math.Float64bits(t.TailEdgeW), 64)
	w.WriteUvarint(uint64(len(t.Members)))
	for _, v := range t.Members {
		w.WriteUvarint(uint64(v))
	}
	w.WriteUvarint(uint64(len(t.Levels)))
	for _, lv := range t.Levels {
		w.WriteUvarint(uint64(len(lv)))
		for _, v := range lv {
			w.WriteUvarint(uint64(v))
		}
	}
	w.WriteUvarint(uint64(len(t.TailSites)))
	for _, s := range t.TailSites {
		w.WriteUvarint(uint64(s))
		tail := t.TailOf[s]
		w.WriteUvarint(uint64(len(tail)))
		for _, v := range tail {
			w.WriteUvarint(uint64(v))
		}
	}
	for _, v := range t.Members {
		nd := t.Nodes[v]
		w.WriteUvarint(uint64(nd.Parent + 1))
		w.WriteBits(math.Float64bits(nd.EdgeW), 64)
		w.WriteUvarint(uint64(nd.Level + 1))
		w.WriteUvarint(uint64(len(nd.Children)))
		for _, c := range nd.Children {
			w.WriteUvarint(uint64(c.ID))
			w.WriteBits(math.Float64bits(c.EdgeW), 64)
			w.WriteUvarint(uint64(c.Lo))
			w.WriteUvarint(uint64(c.Hi))
			w.WriteBit(c.Empty)
		}
		w.WriteUvarint(uint64(len(nd.Pairs)))
		for _, p := range nd.Pairs {
			w.WriteUvarint(uint64(p.Key))
			encData(w, p.Data)
		}
		w.WriteUvarint(uint64(nd.Lo))
		w.WriteUvarint(uint64(nd.Hi))
		w.WriteBit(nd.SubEmpty)
	}
}

// DecodeTree reads a tree written by EncodeTree over an n-node graph;
// decData reads one stored datum. Structural sanity (member ids in
// range, every child reference resolving, all members reachable from
// the center) is verified so a corrupt stream yields an error, never a
// panic or a non-terminating Search.
func DecodeTree[D any](r *bits.Reader, n int, decData func(*bits.Reader) (D, error)) (*Tree[D], error) {
	center, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if center >= uint64(n) {
		return nil, fmt.Errorf("searchtree: decoded center %d out of range", center)
	}
	var floats [3]float64
	for i := range floats {
		fb, err := r.ReadBits(64)
		if err != nil {
			return nil, err
		}
		floats[i] = math.Float64frombits(fb)
		if math.IsNaN(floats[i]) || floats[i] < 0 {
			return nil, fmt.Errorf("searchtree: decoded parameter %d invalid", i)
		}
	}
	t := &Tree[D]{
		Center:    int(center),
		Radius:    floats[0],
		Eps:       floats[1],
		TailEdgeW: floats[2],
		TailOf:    map[int][]int{},
	}
	members, err := readIDList(r, n, n)
	if err != nil {
		return nil, err
	}
	if len(members) < 1 {
		return nil, fmt.Errorf("searchtree: decoded tree has no members")
	}
	t.Members = members
	t.Nodes = make(map[int]*Node[D], len(members))
	nl, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if nl > uint64(len(members))+1 {
		return nil, fmt.Errorf("searchtree: decoded %d levels out of range", nl)
	}
	t.Levels = make([][]int, nl)
	for i := range t.Levels {
		lv, err := readIDList(r, n, n)
		if err != nil {
			return nil, err
		}
		t.Levels[i] = lv
	}
	ns, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if ns > uint64(n) {
		return nil, fmt.Errorf("searchtree: decoded %d tail sites out of range", ns)
	}
	for i := 0; i < int(ns); i++ {
		s, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		if s >= uint64(n) {
			return nil, fmt.Errorf("searchtree: tail site %d out of range", s)
		}
		tail, err := readIDList(r, n, n)
		if err != nil {
			return nil, err
		}
		t.TailSites = append(t.TailSites, int(s))
		t.TailOf[int(s)] = tail
	}
	childTotal := 0
	for _, v := range members {
		if _, dup := t.Nodes[v]; dup {
			return nil, fmt.Errorf("searchtree: duplicate member %d", v)
		}
		nd := &Node[D]{}
		p, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		if p > uint64(n) {
			return nil, fmt.Errorf("searchtree: node %d parent out of range", v)
		}
		nd.Parent = int(p) - 1
		ew, err := r.ReadBits(64)
		if err != nil {
			return nil, err
		}
		nd.EdgeW = math.Float64frombits(ew)
		lv, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		if lv > uint64(len(members))+1 {
			return nil, fmt.Errorf("searchtree: node %d level out of range", v)
		}
		nd.Level = int(lv) - 1
		cc, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		if cc > uint64(len(members)) {
			return nil, fmt.Errorf("searchtree: node %d has %d children", v, cc)
		}
		nd.Children = make([]ChildRef, cc)
		for i := range nd.Children {
			c := &nd.Children[i]
			id, err := r.ReadUvarint()
			if err != nil {
				return nil, err
			}
			if id >= uint64(n) {
				return nil, fmt.Errorf("searchtree: node %d child out of range", v)
			}
			c.ID = int(id)
			cw, err := r.ReadBits(64)
			if err != nil {
				return nil, err
			}
			c.EdgeW = math.Float64frombits(cw)
			lo, err := r.ReadUvarint()
			if err != nil {
				return nil, err
			}
			hi, err := r.ReadUvarint()
			if err != nil {
				return nil, err
			}
			c.Lo, c.Hi = int(lo), int(hi)
			c.Empty, err = r.ReadBit()
			if err != nil {
				return nil, err
			}
		}
		pc, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		// A pair costs at least 8 bits (a one-group uvarint key); bound
		// before allocating.
		if pc*8 > uint64(r.Remaining()) {
			return nil, fmt.Errorf("searchtree: node %d pair count %d exceeds stream", v, pc)
		}
		nd.Pairs = make([]Pair[D], pc)
		for i := range nd.Pairs {
			k, err := r.ReadUvarint()
			if err != nil {
				return nil, err
			}
			d, err := decData(r)
			if err != nil {
				return nil, err
			}
			nd.Pairs[i] = Pair[D]{Key: int(k), Data: d}
		}
		lo, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		hi, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		nd.Lo, nd.Hi = int(lo), int(hi)
		nd.SubEmpty, err = r.ReadBit()
		if err != nil {
			return nil, err
		}
		t.Nodes[v] = nd
		childTotal += len(nd.Children)
	}
	// Structural checks: child references resolve, and every member is
	// reachable from the center through the Children slices (so Search
	// terminates on any decoded tree).
	if childTotal != len(members)-1 {
		return nil, fmt.Errorf("searchtree: %d child edges for %d members", childTotal, len(members))
	}
	if _, ok := t.Nodes[t.Center]; !ok {
		return nil, fmt.Errorf("searchtree: center %d not a member", t.Center)
	}
	seen := make(map[int]bool, len(members))
	stack := []int{t.Center}
	seen[t.Center] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range t.Nodes[v].Children {
			if _, ok := t.Nodes[c.ID]; !ok {
				return nil, fmt.Errorf("searchtree: child %d of %d not a member", c.ID, v)
			}
			if seen[c.ID] {
				return nil, fmt.Errorf("searchtree: node %d reached twice", c.ID)
			}
			seen[c.ID] = true
			stack = append(stack, c.ID)
		}
	}
	if len(seen) != len(members) {
		return nil, fmt.Errorf("searchtree: only %d of %d members reachable from center", len(seen), len(members))
	}
	return t, nil
}

// readIDList reads a uvarint count bounded by max, then that many
// node ids each bounded by n.
func readIDList(r *bits.Reader, n, max int) ([]int, error) {
	cnt, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if cnt > uint64(max) {
		return nil, fmt.Errorf("searchtree: list of %d ids exceeds bound %d", cnt, max)
	}
	out := make([]int, cnt)
	for i := range out {
		v, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		if v >= uint64(n) {
			return nil, fmt.Errorf("searchtree: id %d out of range", v)
		}
		out[i] = int(v)
	}
	return out, nil
}

// EncodeRealizer serializes r into w. The companion tree supplies the
// deterministic iteration order (tail sites and tails); the realizer's
// own maps are only probed by key. The oracle is not serialized — the
// decoder rebinds to one.
func EncodeRealizer[D any](w *bits.Writer, r *PathRealizer, t *Tree[D], n int) {
	for _, s := range t.TailSites {
		treeroute.EncodeScheme(w, r.tailScheme[s], n)
	}
	for v := 0; v < n; v++ {
		w.WriteUvarint(uint64(r.storage[v]))
	}
}

// DecodeRealizer reads a realizer written by EncodeRealizer, rebinding
// it to the oracle and re-deriving the tail-site index from the
// companion tree.
func DecodeRealizer[D any](r *bits.Reader, a metric.Distancer, t *Tree[D]) (*PathRealizer, error) {
	n := a.N()
	rz := &PathRealizer{
		a:          a,
		tailScheme: map[int]*treeroute.Scheme{},
		tailSiteOf: map[int]int{},
		storage:    map[int]int{},
	}
	for _, s := range t.TailSites {
		sch, err := treeroute.DecodeScheme(r, n)
		if err != nil {
			return nil, fmt.Errorf("searchtree: tail scheme at site %d: %w", s, err)
		}
		rz.tailScheme[s] = sch
		for _, v := range t.TailOf[s] {
			rz.tailSiteOf[v] = s
		}
	}
	for v := 0; v < n; v++ {
		b, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		if b > 0 {
			rz.storage[v] = int(b)
		}
	}
	return rz, nil
}
