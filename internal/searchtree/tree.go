// Package searchtree implements the paper's search trees: the
// (key, data) dictionaries spread over the nodes of a ball that both
// routing schemes consult.
//
// A search tree on a ball B_c(r) (Definition 3.2) layers the ball into
// nets U_1, U_2, ... of geometrically shrinking radius below the center
// U_0 = {c}, connects every node to its nearest node one level up, and
// distributes the stored pairs evenly over the tree in DFS order
// (Algorithm 1). A lookup descends from the center following subtree key
// ranges (Algorithm 2); the total descent length is at most (1+eps)r, so
// a round trip from the center costs 2(1+eps)r.
//
// Search Tree II (Definition 4.2) caps the number of net levels at
// ceil(log2 n) and hangs the remaining nodes off their nearest net site
// as Voronoi tail paths with tiny virtual edge weights, which removes
// the log(Delta) level dependence — the scale-free variant used by the
// labeled scheme of Theorem 1.2.
package searchtree

import (
	"fmt"
	"math"
	"sort"

	"compactrouting/internal/metric"
)

// Pair is one stored dictionary entry.
type Pair[D any] struct {
	Key  int
	Data D
}

// ChildRef is the per-child information a tree node keeps: the child's
// graph node id, the virtual edge weight, and the key range of the
// pairs stored in the child's subtree (Empty if none).
type ChildRef struct {
	ID    int
	EdgeW float64
	Lo    int
	Hi    int
	Empty bool
}

// Node is one search-tree node, resident at a graph node.
type Node[D any] struct {
	Parent   int     // graph node id of tree parent, -1 at the center
	EdgeW    float64 // virtual edge weight to parent
	Level    int     // net level (0 = center); tail nodes get level -1
	Children []ChildRef
	Pairs    []Pair[D] // pairs stored at this node, sorted by key
	// Lo, Hi bound the keys stored in this node's subtree (meaningless
	// when SubEmpty).
	Lo, Hi   int
	SubEmpty bool
}

// Tree is a compiled search tree on a ball.
type Tree[D any] struct {
	Center  int
	Radius  float64
	Eps     float64
	Nodes   map[int]*Node[D]
	Members []int   // ball nodes, ascending id (== tree nodes)
	Levels  [][]int // Levels[t] = U_t; tail nodes are not in any level
	// TailSites lists the sites whose Voronoi tails absorb the
	// below-cap nodes (empty for type-I trees).
	TailSites []int
	// TailOf[site] lists the tail nodes hanging under site, in path
	// order.
	TailOf map[int][]int
	// TailEdgeW is the virtual weight of every tail edge (2*eps*r/n).
	TailEdgeW float64
}

// Config controls construction.
type Config struct {
	// Eps is the paper's eps in (0,1): level radii start at Eps*Radius/2.
	Eps float64
	// MaxLevels caps the number of net levels (Definition 4.2); 0 means
	// uncapped (Definition 3.2).
	MaxLevels int
	// MinNetRadius stops refining once the net radius drops to or below
	// it (the metric's minimum pairwise distance is the natural choice;
	// at that point a net must absorb every remaining node).
	MinNetRadius float64
}

// New builds the search tree on B_center(radius). The APSP oracle is
// used only at construction time (the preprocessing phase).
func New[D any](a metric.Distancer, center int, radius float64, cfg Config) (*Tree[D], error) {
	if cfg.Eps <= 0 || cfg.Eps >= 1 {
		return nil, fmt.Errorf("searchtree: eps %v out of (0,1)", cfg.Eps)
	}
	if cfg.MinNetRadius <= 0 {
		return nil, fmt.Errorf("searchtree: MinNetRadius %v must be positive", cfg.MinNetRadius)
	}
	members := a.Ball(center, radius)
	sort.Ints(members)
	t := &Tree[D]{
		Center:  center,
		Radius:  radius,
		Eps:     cfg.Eps,
		Nodes:   make(map[int]*Node[D], len(members)),
		Members: members,
		TailOf:  map[int][]int{},
	}
	t.Nodes[center] = &Node[D]{Parent: -1, Level: 0}
	t.Levels = [][]int{{center}}
	remaining := make([]int, 0, len(members)-1)
	for _, v := range members {
		if v != center {
			remaining = append(remaining, v)
		}
	}
	rho := cfg.Eps * radius / 2
	level := 1
	for len(remaining) > 0 {
		if cfg.MaxLevels > 0 && level > cfg.MaxLevels {
			t.buildTails(a, remaining)
			remaining = nil
			break
		}
		// Greedy net of the remaining nodes at radius rho (everything
		// joins once rho is at or below the minimum pairwise distance).
		var net []int
		if rho <= cfg.MinNetRadius {
			net = remaining
			remaining = nil
		} else {
			var rest []int
			for _, v := range remaining {
				ok := true
				for _, y := range net {
					if a.Dist(v, y) < rho {
						ok = false
						break
					}
				}
				if ok {
					net = append(net, v)
				} else {
					rest = append(rest, v)
				}
			}
			remaining = rest
		}
		prev := t.Levels[level-1]
		for _, v := range net {
			p, d := a.Nearest(v, prev)
			t.Nodes[v] = &Node[D]{Parent: p, EdgeW: d, Level: level}
			t.Nodes[p].Children = append(t.Nodes[p].Children,
				ChildRef{ID: v, EdgeW: d, Empty: true})
		}
		t.Levels = append(t.Levels, net)
		rho /= 2
		level++
	}
	return t, nil
}

// buildTails implements Definition 4.2(ii): assign each remaining node
// to the Voronoi region of its nearest top-net site and hang the
// region's nodes as a path under the site with virtual edge weight
// 2*eps*r/n.
func (t *Tree[D]) buildTails(a metric.Distancer, remaining []int) {
	sites := t.Levels[len(t.Levels)-1]
	t.TailEdgeW = 2 * t.Eps * t.Radius / float64(a.N())
	byleSite := make(map[int][]int)
	for _, v := range remaining {
		s, _ := a.Nearest(v, sites)
		byleSite[s] = append(byleSite[s], v)
	}
	for _, s := range sites {
		tail := byleSite[s]
		if len(tail) == 0 {
			continue
		}
		sort.Ints(tail)
		t.TailSites = append(t.TailSites, s)
		t.TailOf[s] = tail
		prev := s
		for _, v := range tail {
			t.Nodes[v] = &Node[D]{Parent: prev, EdgeW: t.TailEdgeW, Level: -1}
			t.Nodes[prev].Children = append(t.Nodes[prev].Children,
				ChildRef{ID: v, EdgeW: t.TailEdgeW, Empty: true})
			prev = v
		}
	}
	sort.Ints(t.TailSites)
}

// Height returns the maximum virtual-edge distance from the center to
// any tree node; Equation (3) bounds it by (1+O(eps)) * Radius.
func (t *Tree[D]) Height() float64 {
	max := 0.0
	for _, v := range t.Members {
		h := 0.0
		for n := t.Nodes[v]; n.Parent != -1; n = t.Nodes[n.Parent] {
			h += n.EdgeW
		}
		if h > max {
			max = h
		}
	}
	return max
}

// Store distributes the pairs over the tree per Algorithm 1: sort by
// key, hand each DFS-visited node an even quota, then record subtree
// ranges bottom-up. It must be called exactly once, and replaces any
// previous contents.
func (t *Tree[D]) Store(pairs []Pair[D]) {
	sorted := make([]Pair[D], len(pairs))
	copy(sorted, pairs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	m := len(t.Members)
	k := len(sorted)
	// DFS assignment: node with DFS index q gets pairs
	// [floor(q*k/m), floor((q+1)*k/m)).
	q := 0
	var assign func(v int)
	assign = func(v int) {
		lo, hi := q*k/m, (q+1)*k/m
		q++
		nd := t.Nodes[v]
		nd.Pairs = sorted[lo:hi:hi]
		for _, c := range nd.Children {
			assign(c.ID)
		}
	}
	assign(t.Center)
	// Subtree ranges bottom-up.
	var ranges func(v int) (lo, hi int, ok bool)
	ranges = func(v int) (int, int, bool) {
		nd := t.Nodes[v]
		lo, hi, ok := 0, 0, false
		if len(nd.Pairs) > 0 {
			lo, hi, ok = nd.Pairs[0].Key, nd.Pairs[len(nd.Pairs)-1].Key, true
		}
		for i := range nd.Children {
			clo, chi, cok := ranges(nd.Children[i].ID)
			nd.Children[i].Lo, nd.Children[i].Hi, nd.Children[i].Empty = clo, chi, !cok
			if cok {
				if !ok || clo < lo {
					lo = clo
				}
				if !ok || chi > hi {
					hi = chi
				}
				ok = true
			}
		}
		nd.Lo, nd.Hi, nd.SubEmpty = lo, hi, !ok
		return lo, hi, ok
	}
	ranges(t.Center)
}

// Search performs Algorithm 2: descend from the center following child
// ranges. It returns the found data (or the zero value), whether the
// key was found, and the descent trail of graph node ids starting at
// the center — the caller realizes the trail physically and doubles it
// for the return leg.
func (t *Tree[D]) Search(key int) (data D, found bool, trail []int) {
	cur := t.Center
	trail = append(trail, cur)
	for {
		nd := t.Nodes[cur]
		descended := false
		for _, c := range nd.Children {
			if !c.Empty && c.Lo <= key && key <= c.Hi {
				cur = c.ID
				trail = append(trail, cur)
				descended = true
				break
			}
		}
		if descended {
			continue
		}
		for _, p := range nd.Pairs {
			if p.Key == key {
				return p.Data, true, trail
			}
		}
		return data, false, trail
	}
}

// VirtualCost returns the sum of virtual edge weights along a trail.
func (t *Tree[D]) VirtualCost(trail []int) float64 {
	c := 0.0
	for i := 1; i < len(trail); i++ {
		c += t.Nodes[trail[i]].EdgeW
	}
	return c
}

// MaxDegree returns the largest number of children of any tree node.
func (t *Tree[D]) MaxDegree() int {
	max := 0
	for _, nd := range t.Nodes {
		if len(nd.Children) > max {
			max = len(nd.Children)
		}
	}
	return max
}

// LevelRadius returns the net radius used for level t >= 1
// (eps*r/2^t); it reports 0 for the tail level -1.
func (t *Tree[D]) LevelRadius(level int) float64 {
	if level < 1 {
		return 0
	}
	return t.Eps * t.Radius / math.Pow(2, float64(level))
}
