package searchtree

import (
	"math"
	"math/rand"
	"testing"

	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
)

func geo(t *testing.T, n int, seed int64) (*graph.Graph, *metric.APSP) {
	t.Helper()
	g, _, err := graph.RandomGeometric(n, 0.2, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g, metric.NewAPSP(g)
}

func buildTree(t *testing.T, a *metric.APSP, center int, radius float64, maxLevels int) *Tree[int] {
	t.Helper()
	tr, err := New[int](a, center, radius, Config{
		Eps:          0.5,
		MaxLevels:    maxLevels,
		MinNetRadius: a.MinPairDistance(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTreeCoversBall(t *testing.T) {
	_, a := geo(t, 150, 1)
	tr := buildTree(t, a, 3, a.Diameter()/3, 0)
	ball := a.Ball(3, a.Diameter()/3)
	if len(tr.Members) != len(ball) {
		t.Fatalf("tree has %d members, ball has %d", len(tr.Members), len(ball))
	}
	for _, v := range ball {
		if _, ok := tr.Nodes[v]; !ok {
			t.Fatalf("ball node %d missing from tree", v)
		}
	}
	// Every non-root node's parent is a tree node one level up.
	for v, nd := range tr.Nodes {
		if v == tr.Center {
			if nd.Parent != -1 {
				t.Fatal("center has a parent")
			}
			continue
		}
		p, ok := tr.Nodes[nd.Parent]
		if !ok {
			t.Fatalf("node %d parent %d not in tree", v, nd.Parent)
		}
		if nd.Level >= 0 && p.Level != nd.Level-1 {
			t.Fatalf("node %d at level %d has parent at level %d", v, nd.Level, p.Level)
		}
		if nd.Level >= 0 && math.Abs(nd.EdgeW-a.Dist(v, nd.Parent)) > 1e-9 {
			t.Fatalf("edge weight %v != distance %v", nd.EdgeW, a.Dist(v, nd.Parent))
		}
	}
}

func TestTreeHeightBound(t *testing.T) {
	_, a := geo(t, 150, 2)
	for _, radius := range []float64{a.Diameter() / 4, a.Diameter() / 2, a.Diameter()} {
		tr := buildTree(t, a, 0, radius, 0)
		// Equation (3): height <= (1+eps)r; tails (none here) add O(eps r).
		if h := tr.Height(); h > (1+tr.Eps)*radius+1e-9 {
			t.Fatalf("height %v > (1+eps)r = %v", h, (1+tr.Eps)*radius)
		}
	}
}

func TestNetLevelsAreNets(t *testing.T) {
	_, a := geo(t, 120, 3)
	tr := buildTree(t, a, 5, a.Diameter()/2, 0)
	for lvl := 1; lvl < len(tr.Levels); lvl++ {
		rho := tr.LevelRadius(lvl)
		net := tr.Levels[lvl]
		for i := 0; i < len(net); i++ {
			for j := i + 1; j < len(net); j++ {
				if d := a.Dist(net[i], net[j]); d < rho && rho > a.MinPairDistance() {
					t.Fatalf("level %d: nodes %d,%d at distance %v < rho=%v",
						lvl, net[i], net[j], d, rho)
				}
			}
		}
	}
}

func TestStoreAndSearchAll(t *testing.T) {
	_, a := geo(t, 150, 4)
	tr := buildTree(t, a, 7, a.Diameter(), 0)
	// Store one pair per member: key = 1000 + node id, data = node id.
	pairs := make([]Pair[int], len(tr.Members))
	for i, v := range tr.Members {
		pairs[i] = Pair[int]{Key: 1000 + v, Data: v}
	}
	tr.Store(pairs)
	for _, v := range tr.Members {
		data, found, trail := tr.Search(1000 + v)
		if !found || data != v {
			t.Fatalf("Search(%d) = %d,%v", 1000+v, data, found)
		}
		if trail[0] != tr.Center {
			t.Fatalf("trail starts at %d, not center", trail[0])
		}
		// Trail must follow parent-child virtual edges.
		for i := 1; i < len(trail); i++ {
			if tr.Nodes[trail[i]].Parent != trail[i-1] {
				t.Fatalf("trail hop %d -> %d is not a tree edge", trail[i-1], trail[i])
			}
		}
	}
}

func TestSearchAbsentKey(t *testing.T) {
	_, a := geo(t, 100, 5)
	tr := buildTree(t, a, 0, a.Diameter(), 0)
	pairs := []Pair[int]{{Key: 10, Data: 1}, {Key: 20, Data: 2}, {Key: 30, Data: 3}}
	tr.Store(pairs)
	for _, key := range []int{5, 15, 25, 999} {
		if _, found, _ := tr.Search(key); found {
			t.Fatalf("Search(%d) found a pair", key)
		}
	}
	for _, p := range pairs {
		if d, found, _ := tr.Search(p.Key); !found || d != p.Data {
			t.Fatalf("Search(%d) = %d,%v", p.Key, d, found)
		}
	}
}

func TestStoreQuotaEven(t *testing.T) {
	_, a := geo(t, 120, 6)
	tr := buildTree(t, a, 0, a.Diameter(), 0)
	m := len(tr.Members)
	// k = 4m pairs: every node must hold exactly 4.
	pairs := make([]Pair[int], 4*m)
	for i := range pairs {
		pairs[i] = Pair[int]{Key: i, Data: i}
	}
	tr.Store(pairs)
	for v, nd := range tr.Nodes {
		if len(nd.Pairs) != 4 {
			t.Fatalf("node %d holds %d pairs, want 4", v, len(nd.Pairs))
		}
	}
	// And every key must be retrievable.
	for i := range pairs {
		if d, found, _ := tr.Search(i); !found || d != i {
			t.Fatalf("Search(%d) = %d,%v", i, d, found)
		}
	}
}

func TestSearchCostBound(t *testing.T) {
	// Virtual descent cost <= height <= (1+eps)r, so the round trip is
	// <= 2(1+eps)r — the cost bound Lemma 3.4 charges per level.
	_, a := geo(t, 150, 7)
	radius := a.Diameter() / 2
	tr := buildTree(t, a, 0, radius, 0)
	pairs := make([]Pair[int], len(tr.Members))
	for i, v := range tr.Members {
		pairs[i] = Pair[int]{Key: v, Data: v}
	}
	tr.Store(pairs)
	for _, v := range tr.Members {
		_, found, trail := tr.Search(v)
		if !found {
			t.Fatalf("key %d not found", v)
		}
		if c := tr.VirtualCost(trail); c > (1+tr.Eps)*radius+1e-9 {
			t.Fatalf("descent cost %v > (1+eps)r = %v", c, (1+tr.Eps)*radius)
		}
	}
}

func TestSingletonTree(t *testing.T) {
	_, a := geo(t, 50, 8)
	tr := buildTree(t, a, 9, 0, 0)
	if len(tr.Members) != 1 {
		t.Fatalf("radius-0 tree has %d members", len(tr.Members))
	}
	tr.Store([]Pair[int]{{Key: 42, Data: 7}})
	d, found, trail := tr.Search(42)
	if !found || d != 7 || len(trail) != 1 {
		t.Fatalf("singleton search = %d,%v,%v", d, found, trail)
	}
}

func TestCappedLevelsBuildTails(t *testing.T) {
	_, a := geo(t, 200, 9)
	tr := buildTree(t, a, 0, a.Diameter(), 2)
	if len(tr.Levels) > 3 { // levels 0,1,2
		t.Fatalf("levels = %d, want <= 3", len(tr.Levels))
	}
	// All ball members must still be in the tree.
	ball := a.Ball(0, a.Diameter())
	if len(tr.Members) != len(ball) {
		t.Fatalf("capped tree lost members: %d vs %d", len(tr.Members), len(ball))
	}
	tails := 0
	for _, s := range tr.TailSites {
		tails += len(tr.TailOf[s])
		// Tail nodes must be assigned to their nearest site.
		for _, v := range tr.TailOf[s] {
			got, _ := a.Nearest(v, tr.Levels[len(tr.Levels)-1])
			if got != s {
				t.Fatalf("tail node %d under site %d, nearest is %d", v, s, got)
			}
		}
	}
	if tails == 0 {
		t.Fatal("capping at 2 levels should have produced tails")
	}
	// Tail paths use the fixed virtual weight.
	if tr.TailEdgeW != 2*tr.Eps*tr.Radius/float64(a.N()) {
		t.Fatalf("tail edge weight %v", tr.TailEdgeW)
	}
	// Height stays (1+O(eps))r: tails add at most 2*eps*r in total.
	if h := tr.Height(); h > (1+3*tr.Eps)*tr.Radius {
		t.Fatalf("capped height %v > (1+3eps)r", h)
	}
	// Search still finds everything.
	pairs := make([]Pair[int], len(tr.Members))
	for i, v := range tr.Members {
		pairs[i] = Pair[int]{Key: v, Data: v}
	}
	tr.Store(pairs)
	for _, v := range tr.Members {
		if d, found, _ := tr.Search(v); !found || d != v {
			t.Fatalf("capped Search(%d) = %d,%v", v, d, found)
		}
	}
}

func TestRealizerWalksAndStorage(t *testing.T) {
	g, a := geo(t, 150, 10)
	tr := buildTree(t, a, 0, a.Diameter(), 3)
	pairs := make([]Pair[int], len(tr.Members))
	for i, v := range tr.Members {
		pairs[i] = Pair[int]{Key: v, Data: v}
	}
	tr.Store(pairs)
	rz, err := NewRealizer(a, tr, func(sites []int) ([]int, []int) {
		owner, _, parent := metric.Voronoi(g, sites)
		return owner, parent
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		v := tr.Members[rng.Intn(len(tr.Members))]
		_, found, trail := tr.Search(v)
		if !found {
			t.Fatalf("key %d missing", v)
		}
		// Realize the whole descent; each hop must be a graph edge.
		cur := trail[0]
		for i := 1; i < len(trail); i++ {
			phys, err := rz.Walk(cur, trail[i])
			if err != nil {
				t.Fatalf("Walk(%d,%d): %v", cur, trail[i], err)
			}
			if phys[0] != cur || phys[len(phys)-1] != trail[i] {
				t.Fatalf("Walk endpoints wrong: %v", phys)
			}
			for j := 1; j < len(phys); j++ {
				if _, ok := g.EdgeWeight(phys[j-1], phys[j]); !ok {
					t.Fatalf("Walk uses non-edge %d-%d", phys[j-1], phys[j])
				}
			}
			cur = trail[i]
		}
	}
	// Storage must be accounted somewhere.
	total := 0
	for v := 0; v < a.N(); v++ {
		total += rz.StorageBits(v)
	}
	if total == 0 {
		t.Fatal("realizer reports zero storage")
	}
}

func TestConfigValidation(t *testing.T) {
	_, a := geo(t, 50, 12)
	if _, err := New[int](a, 0, 1, Config{Eps: 0, MinNetRadius: 1}); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := New[int](a, 0, 1, Config{Eps: 1.5, MinNetRadius: 1}); err == nil {
		t.Fatal("eps=1.5 accepted")
	}
	if _, err := New[int](a, 0, 1, Config{Eps: 0.5, MinNetRadius: 0}); err == nil {
		t.Fatal("MinNetRadius=0 accepted")
	}
}

func TestMaxDegreeBounded(t *testing.T) {
	// Degree is bounded by the doubling constant to the O(log 1/eps):
	// assert a loose numeric cap on a planar metric to catch blowups.
	_, a := geo(t, 250, 13)
	tr := buildTree(t, a, 0, a.Diameter()/2, 0)
	if d := tr.MaxDegree(); d > 150 {
		t.Fatalf("search tree degree %d", d)
	}
}
