package searchtree

import (
	"fmt"

	"compactrouting/internal/bits"
	"compactrouting/internal/metric"
	"compactrouting/internal/treeroute"
)

// PathRealizer realizes the virtual edges of a Search Tree II
// (Definition 4.2) physically, per Lemma 4.3:
//
//   - net-level edges (u ∈ U_{t-1}, v ∈ U_t) are walked along the
//     canonical shortest path between the endpoints; every interior
//     node conceptually stores a next hop up (toward its nearest
//     U_{t-1} node, shared across edges of the level) and a next hop
//     down per descending edge through it;
//   - tail edges within a site's Voronoi region are walked with a local
//     labeled tree-routing scheme on the region's shortest-path tree.
//
// The walk itself consults the APSP oracle (equivalent hop-for-hop to
// following the stored entries); StorageBits reports what the stored
// entries would cost per node.
type PathRealizer struct {
	a metric.Distancer
	// tailScheme[s] is the tree-routing scheme on site s's Voronoi
	// region (nil when the tree has no tails).
	tailScheme map[int]*treeroute.Scheme
	// tailSiteOf[v] = s when v is a tail node under site s.
	tailSiteOf map[int]int
	// storage[x] = bits of realization state held at graph node x.
	storage map[int]int
}

// NewRealizer builds the physical realizer for a search tree. The
// voronoiParent callback computes, for the given tail sites, each graph
// node's owning site index and its parent edge in the per-site
// shortest-path forest (metric.Voronoi has exactly this shape); it is
// only invoked when the tree has tails.
func NewRealizer[D any](a metric.Distancer, t *Tree[D], voronoiParent func(sites []int) ([]int, []int)) (*PathRealizer, error) {
	r := &PathRealizer{
		a:          a,
		tailScheme: map[int]*treeroute.Scheme{},
		tailSiteOf: map[int]int{},
		storage:    map[int]int{},
	}
	idBits := bits.UintBits(a.N())
	// Net edges: charge interior nodes one shared up-entry per level
	// plus one down-entry per descending edge (Lemma 4.3's layout).
	type upKey struct{ node, level int }
	upSeen := map[upKey]bool{}
	for _, v := range t.Members {
		nd := t.Nodes[v]
		if nd.Parent < 0 || nd.Level < 0 {
			continue // root or tail edge
		}
		path := pathBetween(a, nd.Parent, v)
		for _, x := range path[1 : len(path)-1] {
			// Down entry: target v -> next hop (2 ids).
			r.storage[x] += 2 * idBits
			// Up entry: one per (node, level).
			k := upKey{x, nd.Level}
			if !upSeen[k] {
				upSeen[k] = true
				r.storage[x] += 2 * idBits
			}
		}
	}
	// Tail edges: per-site local tree routing over the site's Voronoi
	// region.
	if len(t.TailSites) > 0 {
		owner, parent := voronoiParent(t.TailSites)
		for _, s := range t.TailSites {
			// Extract the parent forest restricted to s's region.
			pa := make([]int, a.N())
			for i := range pa {
				pa[i] = treeroute.NotInTree
			}
			for v := 0; v < a.N(); v++ {
				if t.TailSites[owner[v]] == s {
					pa[v] = parent[v]
				}
			}
			pa[s] = -1
			sch, err := treeroute.New(pa, s)
			if err != nil {
				return nil, fmt.Errorf("searchtree: tail scheme at site %d: %w", s, err)
			}
			r.tailScheme[s] = sch
			for v := 0; v < a.N(); v++ {
				if pa[v] != treeroute.NotInTree {
					r.storage[v] += sch.TableBits(v)
				}
			}
			// Endpoints of tail virtual edges keep each other's local
			// labels.
			prev := s
			for _, v := range t.TailOf[s] {
				r.tailSiteOf[v] = s
				r.storage[prev] += sch.LabelBits(v)
				r.storage[v] += sch.LabelBits(prev)
				prev = v
			}
		}
	}
	return r, nil
}

// Walk returns the physical node path realizing the virtual edge
// between adjacent tree nodes from and to (either direction).
func (r *PathRealizer) Walk(from, to int) ([]int, error) {
	if s, ok := r.tailSiteOf[from]; ok {
		return r.tailScheme[s].Route(from, r.tailScheme[s].Label(to))
	}
	if s, ok := r.tailSiteOf[to]; ok {
		return r.tailScheme[s].Route(from, r.tailScheme[s].Label(to))
	}
	return pathBetween(r.a, from, to), nil
}

// StorageBits returns the realization storage at graph node x.
func (r *PathRealizer) StorageBits(x int) int { return r.storage[x] }

// pathBetween returns the canonical shortest path from u to v using
// APSP next hops.
func pathBetween(a metric.Distancer, u, v int) []int {
	path := []int{u}
	for u != v {
		u = a.NextHop(u, v)
		path = append(path, u)
	}
	return path
}

// NextHopToward returns the next physical hop from node at toward the
// search-tree node target, using the same dispatch as Walk: the local
// tail tree-routing scheme when the walk belongs to a Voronoi tail,
// and the canonical shortest path (the stored Lemma 4.3 entries)
// otherwise. at must differ from target.
func (r *PathRealizer) NextHopToward(at, target int) (int, error) {
	if at == target {
		return 0, fmt.Errorf("searchtree: NextHopToward(%d, %d): already there", at, target)
	}
	site, ok := r.tailSiteOf[target]
	if !ok {
		site, ok = r.tailSiteOf[at]
	}
	if ok {
		sch := r.tailScheme[site]
		next, arrived, err := sch.NextHop(at, sch.Label(target))
		if err != nil {
			return 0, err
		}
		if arrived {
			return 0, fmt.Errorf("searchtree: NextHopToward arrived unexpectedly")
		}
		return next, nil
	}
	return r.a.NextHop(at, target), nil
}
