package searchtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
)

// TestQuickStoreRetrieveArbitraryKeySets: for random graphs, random
// ball centers/radii and random sparse key sets, every stored pair is
// retrievable and every absent key reports not-found — over both
// uncapped (Def. 3.2) and capped (Def. 4.2) trees.
func TestQuickStoreRetrieveArbitraryKeySets(t *testing.T) {
	f := func(seed int64, centerRaw, radiusPct uint8, capLevels uint8) bool {
		g, _, err := graph.RandomGeometric(50+int(uint16(seed)%50), 0.3, seed)
		if err != nil {
			return true // skip degenerate generator outcomes
		}
		a := metric.NewAPSP(g)
		center := int(centerRaw) % g.N()
		radius := a.Diameter() * float64(radiusPct%100+1) / 100
		cfg := Config{Eps: 0.4, MinNetRadius: a.MinPairDistance()}
		if capLevels%2 == 0 {
			cfg.MaxLevels = 1 + int(capLevels%8)
		}
		tr, err := New[int](a, center, radius, cfg)
		if err != nil {
			return false
		}
		// Sparse random keys: one pair for a random subset of members.
		rng := rand.New(rand.NewSource(seed ^ 0x5ee))
		keys := map[int]int{} // key -> data
		var pairs []Pair[int]
		for _, v := range tr.Members {
			if rng.Intn(3) == 0 {
				key := rng.Intn(1 << 20)
				if _, dup := keys[key]; dup {
					continue
				}
				keys[key] = v
				pairs = append(pairs, Pair[int]{Key: key, Data: v})
			}
		}
		tr.Store(pairs)
		for key, want := range keys {
			got, found, trail := tr.Search(key)
			if !found || got != want {
				return false
			}
			if trail[0] != tr.Center {
				return false
			}
		}
		for probe := 0; probe < 20; probe++ {
			key := rng.Intn(1 << 20)
			if _, present := keys[key]; present {
				continue
			}
			if _, found, _ := tr.Search(key); found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickQuotaBalance: Algorithm 1 hands every node either
// floor(k/m) or ceil(k/m) pairs.
func TestQuickQuotaBalance(t *testing.T) {
	f := func(seed int64, kRaw uint16) bool {
		g, _, err := graph.RandomGeometric(60, 0.3, seed)
		if err != nil {
			return true
		}
		a := metric.NewAPSP(g)
		tr, err := New[int](a, 0, a.Diameter(), Config{Eps: 0.5, MinNetRadius: a.MinPairDistance()})
		if err != nil {
			return false
		}
		m := len(tr.Members)
		k := int(kRaw) % (4 * m)
		pairs := make([]Pair[int], k)
		for i := range pairs {
			pairs[i] = Pair[int]{Key: i, Data: i}
		}
		tr.Store(pairs)
		lo, hi := k/m, (k+m-1)/m
		for _, nd := range tr.Nodes {
			if len(nd.Pairs) < lo || len(nd.Pairs) > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreReplacesContents(t *testing.T) {
	g, _, err := graph.RandomGeometric(60, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	a := metric.NewAPSP(g)
	tr, err := New[int](a, 0, a.Diameter(), Config{Eps: 0.5, MinNetRadius: a.MinPairDistance()})
	if err != nil {
		t.Fatal(err)
	}
	tr.Store([]Pair[int]{{Key: 1, Data: 10}, {Key: 2, Data: 20}})
	tr.Store([]Pair[int]{{Key: 3, Data: 30}})
	if _, found, _ := tr.Search(1); found {
		t.Fatal("stale pair survived re-Store")
	}
	if d, found, _ := tr.Search(3); !found || d != 30 {
		t.Fatal("new pair missing after re-Store")
	}
}
