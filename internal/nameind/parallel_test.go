package nameind

import (
	"reflect"
	"runtime"
	"testing"

	"compactrouting/internal/labeled"
)

// withGOMAXPROCS runs f under the given GOMAXPROCS (1 = the serial
// reference schedule of internal/par) and restores the old value.
func withGOMAXPROCS(n int, f func()) {
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	f()
}

// TestSimpleParallelEquivalence: a parallel nameind.Simple build must
// be bit-identical to a GOMAXPROCS=1 serial build — search trees,
// stored pairs, and the per-node storage accounting.
func TestSimpleParallelEquivalence(t *testing.T) {
	f := geoFixture(t, 96, 7)
	build := func() *Simple {
		under, err := labeled.NewSimple(f.g, f.a, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSimple(f.g, f.a, RandomNaming(f.g.N(), 3), under, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	var serial, parallel *Simple
	withGOMAXPROCS(1, func() { serial = build() })
	withGOMAXPROCS(8, func() { parallel = build() })
	if !reflect.DeepEqual(serial.tblBits, parallel.tblBits) {
		t.Fatal("parallel build produced different storage accounting than serial build")
	}
	if !reflect.DeepEqual(serial.trees, parallel.trees) {
		t.Fatal("parallel build produced different search trees than serial build")
	}
}

// TestScaleFreeParallelEquivalence: same bit-identity constraint for
// the Theorem 1.1 scheme's ball trees, zoom trees and H-links.
func TestScaleFreeParallelEquivalence(t *testing.T) {
	f := geoFixture(t, 96, 7)
	build := func() *ScaleFree {
		under, err := labeled.NewScaleFree(f.g, f.a, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewScaleFree(f.g, f.a, RandomNaming(f.g.N(), 3), under, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	var serial, parallel *ScaleFree
	withGOMAXPROCS(1, func() { serial = build() })
	withGOMAXPROCS(8, func() { parallel = build() })
	if serial.ownCount != parallel.ownCount || serial.delegatedCount != parallel.delegatedCount {
		t.Fatalf("own/delegated counts differ: serial %d/%d, parallel %d/%d",
			serial.ownCount, serial.delegatedCount, parallel.ownCount, parallel.delegatedCount)
	}
	if !reflect.DeepEqual(serial.hLinks, parallel.hLinks) {
		t.Fatal("parallel build produced different H-links than serial build")
	}
	if !reflect.DeepEqual(serial.tblBits, parallel.tblBits) {
		t.Fatal("parallel build produced different storage accounting than serial build")
	}
	if !reflect.DeepEqual(serial.ballTrees, parallel.ballTrees) {
		t.Fatal("parallel build produced different ball trees than serial build")
	}
	if !reflect.DeepEqual(serial.ownTrees, parallel.ownTrees) {
		t.Fatal("parallel build produced different zoom trees than serial build")
	}
}
