// Package nameind implements the paper's name-independent compact
// routing schemes: routing on top of arbitrary original node names that
// carry no topological information.
//
//   - Simple (Theorem 1.4, PODC 2006): (9+O(eps)) stretch. Every net
//     point y ∈ Y_i keeps a search tree over the ball B_y(2^i/eps)
//     holding (name, label) pairs; a source climbs its zooming sequence,
//     searching ever larger balls until the destination's label is
//     found, then routes with the underlying labeled scheme
//     (Algorithm 3). Storage carries a log(Delta) factor.
//
//   - ScaleFree (Theorem 1.1, SODA 2007): same stretch, storage
//     independent of Delta. Search trees live on packing balls (one per
//     ball of every ℬ_j, indexing the 4x-larger ball around the same
//     center); a zooming ball B_u(2^i/eps) keeps its own tree only when
//     no packing ball subsumes it, and otherwise delegates through an
//     H(u,i) link (Algorithm 4).
//
// Search-tree virtual edges are realized by the underlying labeled
// scheme: the two endpoints store each other's labels (Section 3.1.1).
//
// This package is bound by the repo's deterministic ruleset: its
// outputs must be a pure function of explicit seeds (determinlint
// enforces the source-level contract; see DESIGN.md §Static analysis).
//
//determinlint:deterministic
package nameind

import (
	"fmt"
	"math/rand"
)

// Naming is an injection from nodes to their original names. Names are
// arbitrary distinct non-negative integers — the name-independent
// model lets an adversary (or an application such as a DHT hashing
// peers into a large identifier space) pick them. Experiments use
// random permutations; tests also exercise adversarial and sparse
// namings.
type Naming struct {
	nameOf []int       // nameOf[v] = name of node v
	nodeOf map[int]int // nodeOf[name] = v
}

// NewNaming builds a naming from an explicit name array. Names must be
// distinct and non-negative; they need not be contiguous (sparse
// identifier spaces are allowed).
func NewNaming(nameOf []int) (*Naming, error) {
	nodeOf := make(map[int]int, len(nameOf))
	for v, name := range nameOf {
		if name < 0 {
			return nil, fmt.Errorf("nameind: negative name %d for node %d", name, v)
		}
		if prev, dup := nodeOf[name]; dup {
			return nil, fmt.Errorf("nameind: name %d assigned to both %d and %d", name, prev, v)
		}
		nodeOf[name] = v
	}
	out := &Naming{nameOf: make([]int, len(nameOf)), nodeOf: nodeOf}
	copy(out.nameOf, nameOf)
	return out, nil
}

// IdentityNaming names every node by its id.
func IdentityNaming(n int) *Naming {
	names := make([]int, n)
	for i := range names {
		names[i] = i
	}
	nm, _ := NewNaming(names)
	return nm
}

// RandomNaming names nodes by a seeded random permutation of [0, n).
func RandomNaming(n int, seed int64) *Naming {
	nm, _ := NewNaming(rand.New(rand.NewSource(seed)).Perm(n))
	return nm
}

// SparseRandomNaming draws distinct names uniformly from [0, space) —
// the DHT-style setting where identifiers are hashes much larger than
// n. space must be at least n.
func SparseRandomNaming(n int, space int64, seed int64) (*Naming, error) {
	if space < int64(n) {
		return nil, fmt.Errorf("nameind: name space %d smaller than n=%d", space, n)
	}
	rng := rand.New(rand.NewSource(seed))
	used := make(map[int]bool, n)
	names := make([]int, n)
	for i := range names {
		for {
			name := int(rng.Int63n(space))
			if !used[name] {
				used[name] = true
				names[i] = name
				break
			}
		}
	}
	return NewNaming(names)
}

// N returns the number of nodes.
func (nm *Naming) N() int { return len(nm.nameOf) }

// NameOf returns node v's name.
func (nm *Naming) NameOf(v int) int { return nm.nameOf[v] }

// NodeOf returns the node bearing the given name, or -1 if no node has
// it.
func (nm *Naming) NodeOf(name int) int {
	if v, ok := nm.nodeOf[name]; ok {
		return v
	}
	return -1
}

// MaxName returns the largest assigned name (0 for an empty naming).
func (nm *Naming) MaxName() int {
	max := 0
	for _, name := range nm.nameOf {
		if name > max {
			max = name
		}
	}
	return max
}
