package nameind

import (
	"testing"

	"compactrouting/internal/core"
	"compactrouting/internal/graph"
	"compactrouting/internal/labeled"
	"compactrouting/internal/metric"
)

type fixture struct {
	g *graph.Graph
	a *metric.APSP
}

func geoFixture(t *testing.T, n int, seed int64) fixture {
	t.Helper()
	g, _, err := graph.RandomGeometric(n, 0.2, seed)
	if err != nil {
		t.Fatal(err)
	}
	return fixture{g: g, a: metric.NewAPSP(g)}
}

func newSimpleScheme(t *testing.T, f fixture, nm *Naming, eps float64) *Simple {
	t.Helper()
	under, err := labeled.NewSimple(f.g, f.a, eps)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSimple(f.g, f.a, nm, under, eps)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newScaleFreeScheme(t *testing.T, f fixture, nm *Naming, eps float64) *ScaleFree {
	t.Helper()
	under, err := labeled.NewScaleFree(f.g, f.a, eps)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScaleFree(f.g, f.a, nm, under, eps)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func checkAllPairs(t *testing.T, s core.NameIndependentScheme, f fixture, bound float64) core.StretchStats {
	t.Helper()
	stats, err := core.EvaluateNameIndependent(s, f.a, core.AllPairs(f.g.N()))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Max > bound {
		t.Fatalf("%s: max stretch %.3f exceeds bound %.3f", s.SchemeName(), stats.Max, bound)
	}
	return stats
}

func TestNamingValidation(t *testing.T) {
	if _, err := NewNaming([]int{0, 0, 2}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := NewNaming([]int{0, -3}); err == nil {
		t.Fatal("negative name accepted")
	}
	// Sparse names (beyond [0, n)) are legal: the model allows any
	// distinct identifiers.
	nm, err := NewNaming([]int{2, 1 << 40, 1})
	if err != nil {
		t.Fatal(err)
	}
	if nm.NameOf(0) != 2 || nm.NodeOf(2) != 0 {
		t.Fatal("naming lookup broken")
	}
	if nm.NodeOf(1<<40) != 1 {
		t.Fatal("sparse name lookup broken")
	}
	if nm.NodeOf(99) != -1 || nm.NodeOf(-1) != -1 {
		t.Fatal("bad name lookup should return -1")
	}
	if nm.MaxName() != 1<<40 {
		t.Fatalf("MaxName = %d", nm.MaxName())
	}
}

func TestSparseRandomNaming(t *testing.T) {
	nm, err := SparseRandomNaming(50, 1<<30, 9)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for v := 0; v < 50; v++ {
		name := nm.NameOf(v)
		if name < 0 || name >= 1<<30 || seen[name] {
			t.Fatalf("bad sparse name %d", name)
		}
		seen[name] = true
		if nm.NodeOf(name) != v {
			t.Fatalf("inverse broken at %d", v)
		}
	}
	if _, err := SparseRandomNaming(50, 10, 1); err == nil {
		t.Fatal("space smaller than n accepted")
	}
}

func TestSchemesWithSparseNames(t *testing.T) {
	// DHT-style 2^40 identifier space: routing by name must still work
	// and headers must account for the wider name fields.
	f := geoFixture(t, 60, 12)
	nm, err := SparseRandomNaming(f.g.N(), 1<<40, 5)
	if err != nil {
		t.Fatal(err)
	}
	under, err := labeled.NewSimple(f.g, f.a, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSimple(f.g, f.a, nm, under, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range core.SamplePairs(f.g.N(), 80, 2) {
		r, err := s.RouteToName(p[0], nm.NameOf(p[1]))
		if err != nil {
			t.Fatal(err)
		}
		if r.Dst != p[1] {
			t.Fatalf("sparse route ended at %d, want %d", r.Dst, p[1])
		}
		if r.MaxHeaderBits < 40 && r.Cost > 0 {
			t.Fatalf("header %d bits does not carry a 40-bit name", r.MaxHeaderBits)
		}
	}
}

func TestRandomNamingIsPermutation(t *testing.T) {
	nm := RandomNaming(100, 7)
	seen := make([]bool, 100)
	for v := 0; v < 100; v++ {
		name := nm.NameOf(v)
		if seen[name] {
			t.Fatalf("name %d repeated", name)
		}
		seen[name] = true
		if nm.NodeOf(name) != v {
			t.Fatalf("inverse broken at %d", v)
		}
	}
}

func TestSimpleDeliversAllPairs(t *testing.T) {
	f := geoFixture(t, 80, 1)
	nm := RandomNaming(f.g.N(), 42)
	s := newSimpleScheme(t, f, nm, 0.25)
	stats := checkAllPairs(t, s, f, s.StretchBound())
	t.Logf("nameind/simple eps=0.25: max=%.3f mean=%.3f p99=%.3f hdr=%db (bound %.1f)",
		stats.Max, stats.Mean, stats.P99, stats.MaxHeader, s.StretchBound())
}

func TestSimpleOnGridWithHoles(t *testing.T) {
	g, _, err := graph.GridWithHoles(10, 10, 0.25, 5)
	if err != nil {
		t.Fatal(err)
	}
	f := fixture{g: g, a: metric.NewAPSP(g)}
	nm := RandomNaming(f.g.N(), 3)
	s := newSimpleScheme(t, f, nm, 1.0/3)
	checkAllPairs(t, s, f, s.StretchBound())
}

func TestSimpleAdversarialNaming(t *testing.T) {
	// Reverse naming (correlated with ids) must work identically: the
	// scheme may not assume anything about names.
	f := geoFixture(t, 60, 2)
	rev := make([]int, f.g.N())
	for i := range rev {
		rev[i] = f.g.N() - 1 - i
	}
	nm, err := NewNaming(rev)
	if err != nil {
		t.Fatal(err)
	}
	s := newSimpleScheme(t, f, nm, 0.25)
	checkAllPairs(t, s, f, s.StretchBound())
}

func TestSimpleRejectsBadInputs(t *testing.T) {
	f := geoFixture(t, 30, 3)
	nm := IdentityNaming(f.g.N())
	under, err := labeled.NewSimple(f.g, f.a, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSimple(f.g, f.a, nm, under, 0.5); err == nil {
		t.Fatal("eps=0.5 accepted")
	}
	if _, err := NewSimple(f.g, f.a, IdentityNaming(5), under, 0.25); err == nil {
		t.Fatal("mismatched naming accepted")
	}
	s, err := NewSimple(f.g, f.a, nm, under, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RouteToName(0, -1); err == nil {
		t.Fatal("negative name accepted")
	}
	if _, err := s.RouteToName(0, f.g.N()); err == nil {
		t.Fatal("oversized name accepted")
	}
}

func TestSimpleSelfRoute(t *testing.T) {
	f := geoFixture(t, 40, 4)
	nm := RandomNaming(f.g.N(), 1)
	s := newSimpleScheme(t, f, nm, 0.25)
	r, err := s.RouteToName(5, nm.NameOf(5))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 0 {
		t.Fatalf("self route cost %v (search at level 0 should find self immediately)", r.Cost)
	}
}

func TestScaleFreeDeliversAllPairs(t *testing.T) {
	f := geoFixture(t, 80, 5)
	nm := RandomNaming(f.g.N(), 9)
	s := newScaleFreeScheme(t, f, nm, 0.25)
	stats := checkAllPairs(t, s, f, s.StretchBound())
	if stats.Fallbacks != 0 {
		t.Fatalf("fallbacks: %d", stats.Fallbacks)
	}
	t.Logf("nameind/scale-free eps=0.25: max=%.3f mean=%.3f p99=%.3f hdr=%db own=%d delegated=%d",
		stats.Max, stats.Mean, stats.P99, stats.MaxHeader, s.OwnTreeCount(), s.DelegatedCount())
}

func TestScaleFreeDelegates(t *testing.T) {
	// The point of Theorem 1.1: most zooming balls must delegate to
	// packing balls rather than keep their own tree.
	f := geoFixture(t, 120, 6)
	nm := RandomNaming(f.g.N(), 2)
	s := newScaleFreeScheme(t, f, nm, 0.25)
	if s.DelegatedCount() == 0 {
		t.Fatal("no zooming ball delegated")
	}
	t.Logf("own=%d delegated=%d", s.OwnTreeCount(), s.DelegatedCount())
}

func TestScaleFreeOnExponentialStar(t *testing.T) {
	g, err := graph.ExponentialStar(50, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := fixture{g: g, a: metric.NewAPSP(g)}
	nm := RandomNaming(f.g.N(), 8)
	s := newScaleFreeScheme(t, f, nm, 0.25)
	checkAllPairs(t, s, f, s.StretchBound())
}

func TestScaleFreeScaleFreedom(t *testing.T) {
	// Storage must not scale with Delta: compare a unit path to an
	// exponential path of equal size.
	unit, err := graph.Path(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	expo, err := graph.ExponentialPath(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	fu := fixture{g: unit, a: metric.NewAPSP(unit)}
	fe := fixture{g: expo, a: metric.NewAPSP(expo)}
	su := newScaleFreeScheme(t, fu, IdentityNaming(64), 0.25)
	se := newScaleFreeScheme(t, fe, IdentityNaming(64), 0.25)
	tu := core.Tables(su.TableBits, 64)
	te := core.Tables(se.TableBits, 64)
	if ratio := float64(te.MaxBits) / float64(tu.MaxBits); ratio > 4 {
		t.Fatalf("scale-free nameind tables grew %.1fx with Delta (unit=%d expo=%d)",
			ratio, tu.MaxBits, te.MaxBits)
	}
	// The simple scheme, by contrast, must grow markedly.
	ssu := newSimpleScheme(t, fu, IdentityNaming(64), 0.25)
	sse := newSimpleScheme(t, fe, IdentityNaming(64), 0.25)
	tsu := core.Tables(ssu.TableBits, 64)
	tse := core.Tables(sse.TableBits, 64)
	if tse.MaxBits <= tsu.MaxBits {
		t.Fatalf("simple nameind tables did not grow with Delta (%d vs %d)",
			tse.MaxBits, tsu.MaxBits)
	}
}

func TestScaleFreeRequiresPackingProvider(t *testing.T) {
	f := geoFixture(t, 30, 7)
	under, err := labeled.NewSimple(f.g, f.a, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewScaleFree(f.g, f.a, IdentityNaming(f.g.N()), under, 0.25); err == nil {
		t.Fatal("accepted an underlying scheme without a packing")
	}
}

func TestBothSchemesAgreeOnDelivery(t *testing.T) {
	f := geoFixture(t, 70, 8)
	nm := RandomNaming(f.g.N(), 4)
	simple := newSimpleScheme(t, f, nm, 0.25)
	free := newScaleFreeScheme(t, f, nm, 0.25)
	for _, p := range core.SamplePairs(f.g.N(), 100, 3) {
		name := nm.NameOf(p[1])
		r1, err := simple.RouteToName(p[0], name)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := free.RouteToName(p[0], name)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Dst != p[1] || r2.Dst != p[1] {
			t.Fatalf("schemes disagree on destination for %v", p)
		}
	}
}
