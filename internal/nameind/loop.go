package nameind

import (
	"fmt"

	"compactrouting/internal/core"
)

// LevelTrace records what happened at one level of Algorithm 3.
type LevelTrace struct {
	// Level is the hierarchy level i.
	Level int
	// SearchCost is the physical cost of the Search()/SearchTree()
	// round trip at this level.
	SearchCost float64
	// Found reports whether the destination's label surfaced here.
	Found bool
	// ZoomCost is the cost of moving u(i) -> u(i+1) after a failed
	// search (0 at the final level or when u(i) = u(i+1)).
	ZoomCost float64
}

// Explanation decomposes one name-independent delivery into the pieces
// Lemma 3.4's stretch argument charges: per-level searches, zooming
// moves, and the final labeled route (Figure 1's anatomy).
type Explanation struct {
	Src, Dst int
	Levels   []LevelTrace
	// FinalCost is the labeled route after the label was found.
	FinalCost float64
	// TotalCost is the full delivery cost.
	TotalCost float64
	// Optimal is d(src, dst).
	Optimal float64
}

// Stretch returns the explained route's stretch.
func (e *Explanation) Stretch() float64 {
	if e.Optimal == 0 {
		return 1
	}
	return e.TotalCost / e.Optimal
}

// searchFn is one level's Search procedure: trace positioned at u(i),
// returns (label, found) and leaves the trace back at u(i).
type searchFn func(tr *core.Trace, i, pos, name int) (int, bool, error)

// routeLoop is Algorithm 3, shared by both schemes and by their
// Explain variants (rec != nil collects the per-level anatomy).
func (b *base) routeLoop(src, name int, search searchFn, rec *Explanation) (*core.Route, error) {
	if src < 0 || src >= b.g.N() {
		return nil, fmt.Errorf("nameind: source %d out of range", src)
	}
	dst := b.nm.NodeOf(name)
	if dst < 0 {
		return nil, fmt.Errorf("nameind: unknown name %d", name)
	}
	tr := core.NewTrace(b.g, src)
	finish := func(label int, have bool) (*core.Route, error) {
		if have {
			before := tr.Cost()
			if err := b.routeToLabel(tr, label); err != nil {
				return nil, err
			}
			if rec != nil {
				rec.FinalCost = tr.Cost() - before
			}
		}
		r, err := tr.Finish(dst)
		if err != nil {
			return nil, err
		}
		if rec != nil {
			rec.Src, rec.Dst = src, dst
			rec.TotalCost = r.Cost
			rec.Optimal = b.a.Dist(src, dst)
		}
		return r, nil
	}
	for i := 0; i <= b.h.TopLevel(); i++ {
		ui := tr.At() // u(i)
		if b.nm.NameOf(ui) == name {
			return finish(0, false) // every node knows its own name
		}
		tr.Header(b.wrapBits())
		pos := b.h.PosInLevel(ui, i)
		if pos < 0 {
			return nil, fmt.Errorf("nameind: zooming reached %d which is not in Y_%d", ui, i)
		}
		before := tr.Cost()
		label, found, err := search(tr, i, pos, name)
		if err != nil {
			return nil, err
		}
		lt := LevelTrace{Level: i, SearchCost: tr.Cost() - before, Found: found}
		if found {
			if rec != nil {
				rec.Levels = append(rec.Levels, lt)
			}
			return finish(label, true)
		}
		if i < b.h.TopLevel() {
			if next := b.h.ZoomStep(ui, i); next != ui {
				before = tr.Cost()
				if err := b.routeToLabel(tr, b.under.LabelOf(next)); err != nil {
					return nil, err
				}
				lt.ZoomCost = tr.Cost() - before
			}
		}
		if rec != nil {
			rec.Levels = append(rec.Levels, lt)
		}
	}
	// The top-level search covers the whole graph; reaching here means
	// a construction bug, not bad input.
	return nil, fmt.Errorf("nameind: name %d not found at the top level", name)
}
