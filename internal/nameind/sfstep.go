package nameind

import (
	"fmt"

	"compactrouting/internal/bits"
	"compactrouting/internal/labeled"
	"compactrouting/internal/searchtree"
)

// SFNIPhase tags the routing state of a scale-free name-independent
// packet (Theorem 1.1, Algorithms 3 + 4).
type SFNIPhase uint8

// The phases of the stepped Theorem 1.1 delivery.
const (
	// SFNIStart: freshly injected.
	SFNIStart SFNIPhase = iota
	// SFNIToBall: walking to a delegated packing ball's center
	// (Algorithm 4 line 5).
	SFNIToBall
	// SFNISearchDown / SFNISearchUp: search-tree round trip.
	SFNISearchDown
	SFNISearchUp
	// SFNIReturn: walking back from the ball center to the zooming
	// anchor (Algorithm 4 line 7).
	SFNIReturn
	// SFNIZoom: moving to the next zooming ancestor.
	SFNIZoom
	// SFNIFinal: labeled route to the found destination.
	SFNIFinal
)

// SFNIHeader is the Theorem 1.1 packet header factored for per-node
// stepping. Sub carries the underlying Theorem 1.2 walk.
type SFNIHeader struct {
	Name    int32
	Phase   SFNIPhase
	Level   int32
	Center  int32 // the zooming anchor u(Level)
	VTarget int32
	// UseBall selects the active search tree: the anchor's own tree or
	// the delegated packing ball (J, Idx).
	UseBall    bool
	J, Idx     int32
	Sub        labeled.SFHeader
	SubActive  bool
	Found      bool
	FoundLabel int32
}

// Bits returns the header's encoded size.
func (h SFNIHeader) Bits() int {
	n := 3 + bits.UvarintLen(uint64(h.Name)) + bits.UvarintLen(uint64(h.Level)) + 3
	n += bits.UvarintLen(uint64(h.Center+1)) + bits.UvarintLen(uint64(h.VTarget+1))
	if h.UseBall {
		n += bits.UvarintLen(uint64(h.J)) + bits.UvarintLen(uint64(h.Idx))
	}
	if h.SubActive {
		n += h.Sub.Bits()
	}
	if h.Found {
		n += bits.UvarintLen(uint64(h.FoundLabel))
	}
	return n
}

// PrepareHeader returns the initial header for a delivery to name.
func (s *ScaleFree) PrepareHeader(name int) (SFNIHeader, error) {
	if s.nm.NodeOf(name) < 0 {
		return SFNIHeader{}, fmt.Errorf("nameind: unknown name %d", name)
	}
	return SFNIHeader{Name: int32(name), Phase: SFNIStart}, nil
}

func (s *ScaleFree) underlyingSF() (*labeled.ScaleFree, error) {
	u, ok := s.under.(*labeled.ScaleFree)
	if !ok {
		return nil, fmt.Errorf("nameind: stepping requires a labeled.ScaleFree underlying scheme, have %T", s.under)
	}
	return u, nil
}

// sfBeginWalk arms an underlying walk toward graph node target.
func (s *ScaleFree) sfBeginWalk(h SFNIHeader, target int) (SFNIHeader, error) {
	u, err := s.underlyingSF()
	if err != nil {
		return h, err
	}
	sub, err := u.PrepareHeader(s.under.LabelOf(target))
	if err != nil {
		return h, err
	}
	h.Sub = sub
	h.SubActive = true
	h.VTarget = int32(target)
	return h, nil
}

// activeTree resolves the search tree the header points at.
func (s *ScaleFree) activeTree(h SFNIHeader) (*searchtree.Tree[int], error) {
	if h.UseBall {
		if h.J < 0 || int(h.J) >= len(s.ballTrees) || int(h.Idx) >= len(s.ballTrees[h.J]) {
			return nil, fmt.Errorf("nameind: bad ball tree (%d, %d)", h.J, h.Idx)
		}
		return s.ballTrees[h.J][h.Idx], nil
	}
	pos := s.h.PosInLevel(int(h.Center), int(h.Level))
	if pos < 0 || s.ownTrees[h.Level][pos] == nil {
		return nil, fmt.Errorf("nameind: no own tree at (%d, %d)", h.Level, h.Center)
	}
	return s.ownTrees[h.Level][pos], nil
}

// enterLevel decides how the anchor w searches its level: its own tree
// (start descending in place) or a delegated ball (walk to its center
// first). The anchor's self-name check happens here, matching the
// sequential loop.
func (s *ScaleFree) enterLevel(w int, h SFNIHeader) (SFNIHeader, bool, error) {
	if s.nm.NameOf(w) == int(h.Name) {
		return h, true, nil
	}
	pos := s.h.PosInLevel(w, int(h.Level))
	if pos < 0 {
		return h, false, fmt.Errorf("nameind: anchor %d not in Y_%d", w, h.Level)
	}
	if s.ownTrees[h.Level][pos] != nil {
		// J/Idx are only meaningful under UseBall; clear them so the
		// header matches its wire form (the codec omits them here).
		h.UseBall = false
		h.J, h.Idx = 0, 0
		h.Phase = SFNISearchDown
		h.VTarget = int32(w)
		return h, false, nil
	}
	hl := s.hLinks[h.Level][pos]
	h.UseBall = true
	h.J, h.Idx = int32(hl.j), int32(hl.idx)
	h.Phase = SFNIToBall
	var err error
	h, err = s.sfBeginWalk(h, s.ballTrees[hl.j][hl.idx].Center)
	return h, false, err
}

// Step performs one forwarding decision of the Theorem 1.1 scheme at
// node w.
func (s *ScaleFree) Step(w int, h SFNIHeader) (next int, nh SFNIHeader, arrived bool, err error) {
	und, err := s.underlyingSF()
	if err != nil {
		return 0, h, false, err
	}
	name := int(h.Name)
	for guard := 0; guard < 8+5*(s.h.TopLevel()+1); guard++ {
		if h.SubActive {
			hop, sub, done, err := und.Step(w, h.Sub)
			if err != nil {
				return 0, h, false, err
			}
			if !done {
				h.Sub = sub
				return hop, h, false, nil
			}
			h.SubActive = false
			if w != int(h.VTarget) {
				return 0, h, false, fmt.Errorf("nameind: sub-walk landed at %d, target %d", w, h.VTarget)
			}
			if h.Phase == SFNIFinal {
				if s.nm.NameOf(w) != name {
					return 0, h, false, fmt.Errorf("nameind: final leg ended at %d, wrong node", w)
				}
				return 0, h, true, nil
			}
		}
		switch h.Phase {
		case SFNIStart:
			h.Level = 0
			h.Center = int32(w)
			var done bool
			if h, done, err = s.enterLevel(w, h); err != nil || done {
				return 0, h, done, err
			}
		case SFNIToBall:
			// Landed at the delegated ball's center: search it.
			h.Phase = SFNISearchDown
			h.VTarget = int32(w)
		case SFNISearchDown:
			t, err := s.activeTree(h)
			if err != nil {
				return 0, h, false, err
			}
			nd := t.Nodes[w]
			if nd == nil {
				return 0, h, false, fmt.Errorf("nameind: node %d outside active search tree", w)
			}
			descended := false
			for _, c := range nd.Children {
				if !c.Empty && c.Lo <= name && name <= c.Hi {
					descended = true
					if h, err = s.sfBeginWalk(h, c.ID); err != nil {
						return 0, h, false, err
					}
					break
				}
			}
			if descended {
				continue
			}
			for _, p := range nd.Pairs {
				if p.Key == name {
					h.Found = true
					h.FoundLabel = int32(p.Data)
					break
				}
			}
			h.Phase = SFNISearchUp
			if w == t.Center {
				continue
			}
			if h, err = s.sfBeginWalk(h, nd.Parent); err != nil {
				return 0, h, false, err
			}
		case SFNISearchUp:
			t, err := s.activeTree(h)
			if err != nil {
				return 0, h, false, err
			}
			if w != t.Center {
				if h, err = s.sfBeginWalk(h, t.Nodes[w].Parent); err != nil {
					return 0, h, false, err
				}
				continue
			}
			if h.UseBall && w != int(h.Center) {
				// Back from the delegated ball to the anchor
				// (Algorithm 4 line 7).
				h.Phase = SFNIReturn
				if h, err = s.sfBeginWalk(h, int(h.Center)); err != nil {
					return 0, h, false, err
				}
				continue
			}
			if !h.Found && int(h.Level) >= s.h.TopLevel() {
				return 0, h, false, fmt.Errorf("nameind: name %d not found at the top level", name)
			}
			h = s.resolveLevel(h)
			target := int(h.VTarget)
			if h.Phase == SFNIZoom && target == w {
				// Anchor unchanged: search the next level in place.
				var done bool
				if h, done, err = s.enterLevel(w, h); err != nil || done {
					return 0, h, done, err
				}
				continue
			}
			if h, err = s.sfBeginWalk(h, target); err != nil {
				return 0, h, false, err
			}
		case SFNIReturn:
			// Landed back at the anchor.
			if !h.Found && int(h.Level) >= s.h.TopLevel() {
				return 0, h, false, fmt.Errorf("nameind: name %d not found at the top level", name)
			}
			h = s.resolveLevel(h)
			target := int(h.VTarget)
			if h.Phase == SFNIZoom && target == w {
				var done bool
				if h, done, err = s.enterLevel(w, h); err != nil || done {
					return 0, h, done, err
				}
				continue
			}
			if h, err = s.sfBeginWalk(h, target); err != nil {
				return 0, h, false, err
			}
		case SFNIZoom:
			// Landed on the next anchor u(Level): search its level.
			var done bool
			if h, done, err = s.enterLevel(w, h); err != nil || done {
				return 0, h, done, err
			}
		case SFNIFinal:
			return 0, h, false, fmt.Errorf("nameind: final phase without active walk at %d", w)
		}
	}
	return 0, h, false, fmt.Errorf("nameind: step at %d did not converge", w)
}

// resolveLevel decides, at the anchor after a completed search round
// trip, whether to finish (found) or climb (not found). The returned
// header's Phase is SFNIFinal or SFNIZoom with VTarget set; the caller
// arms the walk.
func (s *ScaleFree) resolveLevel(h SFNIHeader) SFNIHeader {
	if h.Found {
		h.Phase = SFNIFinal
		h.VTarget = int32(s.nm.NodeOf(int(h.Name)))
		return h
	}
	nextAnchor := s.h.ZoomStep(int(h.Center), int(h.Level))
	h.Level++
	h.Center = int32(nextAnchor)
	h.Phase = SFNIZoom
	h.VTarget = int32(nextAnchor)
	return h
}
