package nameind

import (
	"fmt"
	"math"

	"compactrouting/internal/bits"
	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
	"compactrouting/internal/searchtree"
)

// Snapshot codecs for the name-independent schemes. The serialized
// state is the naming plus every search tree and the per-node storage
// accounting; the underlying labeled scheme is restored separately and
// passed in, so a restore never re-elects hierarchies or re-runs a
// counted constructor.

// EncodeNaming serializes the node→name injection.
func EncodeNaming(w *bits.Writer, nm *Naming) {
	w.WriteUvarint(uint64(nm.N()))
	for v := 0; v < nm.N(); v++ {
		w.WriteUvarint(uint64(nm.NameOf(v)))
	}
}

// DecodeNaming reads a naming for exactly n nodes, re-validating the
// injection through NewNaming.
func DecodeNaming(r *bits.Reader, n int) (*Naming, error) {
	cnt, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if cnt != uint64(n) {
		return nil, fmt.Errorf("nameind: naming covers %d nodes, graph has %d", cnt, n)
	}
	names := make([]int, n)
	for v := range names {
		name, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		if name > math.MaxInt32 {
			return nil, fmt.Errorf("nameind: name %d for node %d too large", name, v)
		}
		names[v] = int(name)
	}
	return NewNaming(names)
}

// encodeLabel / decodeLabel are the search-tree data codec: the stored
// data is an underlying-scheme label (a non-negative int).
func encodeLabel(w *bits.Writer, label int) { w.WriteUvarint(uint64(label)) }

func decodeLabel(r *bits.Reader) (int, error) {
	x, err := r.ReadUvarint()
	if err != nil {
		return 0, err
	}
	if x > math.MaxInt32 {
		return 0, fmt.Errorf("nameind: stored label %d too large", x)
	}
	return int(x), nil
}

// EncodeSnapshot serializes the Simple scheme: eps, the naming, every
// level's search trees, and the storage accounting verbatim.
func (s *Simple) EncodeSnapshot(w *bits.Writer) {
	w.WriteBits(math.Float64bits(s.eps), 64)
	EncodeNaming(w, s.nm)
	for i := range s.trees {
		for _, t := range s.trees[i] {
			searchtree.EncodeTree(w, t, encodeLabel)
		}
	}
	for v := 0; v < s.g.N(); v++ {
		w.WriteUvarint(uint64(s.tblBits[v]))
	}
}

// RestoreSimple rebuilds a Simple scheme from an EncodeSnapshot stream
// on top of an already-restored underlying labeled scheme. The tree
// grid shape comes from the shared hierarchy; each decoded tree must be
// centered on its net point.
func RestoreSimple(r *bits.Reader, g *graph.Graph, a metric.Distancer, under Underlying) (*Simple, error) {
	eb, err := r.ReadBits(64)
	if err != nil {
		return nil, err
	}
	eps := math.Float64frombits(eb)
	if eps <= 0 || eps > 1.0/3 {
		return nil, fmt.Errorf("nameind: restored eps %v out of (0, 1/3]", eps)
	}
	nm, err := DecodeNaming(r, g.N())
	if err != nil {
		return nil, err
	}
	b, err := newBase(g, a, nm, under, eps)
	if err != nil {
		return nil, err
	}
	s := &Simple{base: b}
	h := b.h
	s.trees = make([][]*searchtree.Tree[int], h.TopLevel()+1)
	for i := 0; i <= h.TopLevel(); i++ {
		s.trees[i] = make([]*searchtree.Tree[int], len(h.Levels[i]))
		for k, y := range h.Levels[i] {
			t, err := searchtree.DecodeTree(r, g.N(), decodeLabel)
			if err != nil {
				return nil, fmt.Errorf("nameind: search tree (%d, %d): %w", i, k, err)
			}
			if t.Center != y {
				return nil, fmt.Errorf("nameind: search tree (%d, %d) centered at %d, net point is %d", i, k, t.Center, y)
			}
			s.trees[i][k] = t
		}
	}
	if err := restoreTblBits(r, b.tblBits); err != nil {
		return nil, err
	}
	return s, nil
}

// EncodeSnapshot serializes the ScaleFree scheme: eps, the naming, the
// packing-ball search trees, the per-net-point own-tree-or-delegation
// decisions, and the storage accounting verbatim. The shared packing is
// serialized with the underlying labeled scheme, not here.
func (s *ScaleFree) EncodeSnapshot(w *bits.Writer) {
	w.WriteBits(math.Float64bits(s.eps), 64)
	EncodeNaming(w, s.nm)
	for j := range s.ballTrees {
		for _, t := range s.ballTrees[j] {
			searchtree.EncodeTree(w, t, encodeLabel)
		}
	}
	for i := range s.ownTrees {
		for k := range s.ownTrees[i] {
			if t := s.ownTrees[i][k]; t != nil {
				w.WriteBit(true)
				searchtree.EncodeTree(w, t, encodeLabel)
			} else {
				w.WriteBit(false)
				hl := s.hLinks[i][k]
				w.WriteUvarint(uint64(hl.j))
				w.WriteUvarint(uint64(hl.idx))
			}
		}
	}
	for v := 0; v < s.g.N(); v++ {
		w.WriteUvarint(uint64(s.tblBits[v]))
	}
}

// RestoreScaleFree rebuilds a ScaleFree scheme from an EncodeSnapshot
// stream on top of an already-restored underlying scheme (which must
// share its ball packing, exactly as NewScaleFree requires).
func RestoreScaleFree(r *bits.Reader, g *graph.Graph, a metric.Distancer, under Underlying) (*ScaleFree, error) {
	eb, err := r.ReadBits(64)
	if err != nil {
		return nil, err
	}
	eps := math.Float64frombits(eb)
	if eps <= 0 || eps > 0.25 {
		return nil, fmt.Errorf("nameind: restored eps %v out of (0, 0.25]", eps)
	}
	pp, ok := under.(PackingProvider)
	if !ok {
		return nil, fmt.Errorf("nameind: underlying scheme %T does not share a ball packing", under)
	}
	nm, err := DecodeNaming(r, g.N())
	if err != nil {
		return nil, err
	}
	b, err := newBase(g, a, nm, under, eps)
	if err != nil {
		return nil, err
	}
	s := &ScaleFree{base: b, pk: pp.Packing()}
	s.ballTrees = make([][]*searchtree.Tree[int], s.pk.MaxJ()+1)
	for j := 0; j <= s.pk.MaxJ(); j++ {
		s.ballTrees[j] = make([]*searchtree.Tree[int], len(s.pk.Balls[j]))
		for k := range s.ballTrees[j] {
			t, err := searchtree.DecodeTree(r, g.N(), decodeLabel)
			if err != nil {
				return nil, fmt.Errorf("nameind: ball tree (j=%d, k=%d): %w", j, k, err)
			}
			if t.Center != s.pk.Balls[j][k].Center {
				return nil, fmt.Errorf("nameind: ball tree (j=%d, k=%d) centered at %d, ball center is %d", j, k, t.Center, s.pk.Balls[j][k].Center)
			}
			s.ballTrees[j][k] = t
		}
	}
	h := b.h
	s.ownTrees = make([][]*searchtree.Tree[int], h.TopLevel()+1)
	s.hLinks = make([][]hlink, h.TopLevel()+1)
	for i := 0; i <= h.TopLevel(); i++ {
		s.ownTrees[i] = make([]*searchtree.Tree[int], len(h.Levels[i]))
		s.hLinks[i] = make([]hlink, len(h.Levels[i]))
		for k, y := range h.Levels[i] {
			own, err := r.ReadBit()
			if err != nil {
				return nil, err
			}
			if own {
				t, err := searchtree.DecodeTree(r, g.N(), decodeLabel)
				if err != nil {
					return nil, fmt.Errorf("nameind: zoom tree (%d, %d): %w", i, k, err)
				}
				if t.Center != y {
					return nil, fmt.Errorf("nameind: zoom tree (%d, %d) centered at %d, net point is %d", i, k, t.Center, y)
				}
				s.ownTrees[i][k] = t
				s.ownCount++
				continue
			}
			jv, err := r.ReadUvarint()
			if err != nil {
				return nil, err
			}
			idx, err := r.ReadUvarint()
			if err != nil {
				return nil, err
			}
			if jv > uint64(s.pk.MaxJ()) || idx >= uint64(len(s.ballTrees[jv])) {
				return nil, fmt.Errorf("nameind: delegation (%d, %d) -> (j=%d, idx=%d) out of range", i, k, jv, idx)
			}
			s.hLinks[i][k] = hlink{j: int(jv), idx: int(idx)}
			s.delegatedCount++
		}
	}
	if err := restoreTblBits(r, b.tblBits); err != nil {
		return nil, err
	}
	return s, nil
}

// restoreTblBits overwrites the freshly seeded accounting with the
// snapshot's verbatim per-node totals (so TableBits survives the round
// trip bit-for-bit without re-walking every tree).
func restoreTblBits(r *bits.Reader, tblBits []int) error {
	for v := range tblBits {
		x, err := r.ReadUvarint()
		if err != nil {
			return err
		}
		if x > math.MaxInt32 {
			return fmt.Errorf("nameind: node %d table bits %d too large", v, x)
		}
		tblBits[v] = int(x)
	}
	return nil
}
