package nameind

// Tests for the sharp combinatorial claims behind Lemma 3.8 (the
// scale-free storage bound), checked against the actual compiled
// structures rather than re-proved: Claim 3.7 (zooming balls that keep
// their own search tree only exist at density-jump levels), Claim 3.9
// (at most four H(u,i) delegations per packing level), and the
// per-level disjointness that caps packing-tree residency.

import (
	"testing"

	"compactrouting/internal/labeled"
)

func buildClaimsFixture(t *testing.T, n int, seed int64) (*ScaleFree, fixture) {
	t.Helper()
	f := geoFixture(t, n, seed)
	s := newScaleFreeScheme(t, f, RandomNaming(f.g.N(), seed), 0.25)
	return s, f
}

func TestClaim37OwnTreesOnlyAtDensityJumps(t *testing.T) {
	// Claim 3.7: if the zooming ball B_u(2^i/eps) keeps its own search
	// tree (is in the family A) and contains v, then i ∈ R(v) where
	// R(v) = { i : |B_v(2^{i+2}/eps)| >= 2 |B_v(2^{i-2})| }.
	s, f := buildClaimsFixture(t, 120, 21)
	eps := 0.25
	h := s.h
	for i := range s.ownTrees {
		for _, tree := range s.ownTrees[i] {
			if tree == nil {
				continue
			}
			for _, v := range tree.Members {
				outer := f.a.BallSize(v, h.Radius(i)*4/eps) // 2^{i+2}/eps
				if outer == f.g.N() {
					// Top-of-hierarchy boundary: the outer ball is the
					// whole graph, where the claim's counting stops
					// (only O(log 1/eps) such levels exist and they are
					// absorbed in the storage bound's constants).
					continue
				}
				var innerSize int
				if i >= 2 {
					innerSize = f.a.BallSize(v, h.Radius(i-2))
				} else {
					innerSize = f.a.BallSize(v, h.Radius(i)/4)
				}
				if outer < 2*innerSize {
					t.Fatalf("own tree (i=%d, y=%d) contains %d but |B_v(2^{i+2}/eps)|=%d < 2*%d",
						i, tree.Center, v, outer, innerSize)
				}
			}
		}
	}
}

func TestClaim39AtMostFourDelegationsPerLevel(t *testing.T) {
	// Claim 3.9: for any node u and any packing level j, the number of
	// DISTINCT balls H(u, i) ∈ B_j over the levels i where u delegates
	// is at most 4. (Exact on metrics without distance ties; geometric
	// graphs qualify.)
	s, _ := buildClaimsFixture(t, 150, 22)
	h := s.h
	// Collect per net point u the delegations over all its levels.
	perNode := map[int]map[int]map[int]bool{} // u -> j -> ball idx set
	for i := range s.hLinks {
		for k, y := range h.Levels[i] {
			if s.ownTrees[i][k] != nil {
				continue // not delegated
			}
			hl := s.hLinks[i][k]
			if perNode[y] == nil {
				perNode[y] = map[int]map[int]bool{}
			}
			if perNode[y][hl.j] == nil {
				perNode[y][hl.j] = map[int]bool{}
			}
			perNode[y][hl.j][hl.idx] = true
		}
	}
	for u, byJ := range perNode {
		for j, balls := range byJ {
			if len(balls) > 4 {
				t.Fatalf("node %d delegates to %d distinct balls at level j=%d (Claim 3.9 allows 4)",
					u, len(balls), j)
			}
		}
	}
}

func TestPackingTreeResidencyPerLevel(t *testing.T) {
	// Search trees of the packing family are built on disjoint balls,
	// so a node hosts at most ONE such tree per level j — the first
	// half of Lemma 3.5's storage argument, exactly.
	s, f := buildClaimsFixture(t, 120, 23)
	for j := range s.ballTrees {
		seen := make(map[int]int)
		for k, tree := range s.ballTrees[j] {
			for _, v := range tree.Members {
				if prev, dup := seen[v]; dup {
					t.Fatalf("node %d hosts trees %d and %d at level j=%d", v, prev, k, j)
				}
				seen[v] = k
			}
		}
	}
	_ = f
}

func TestOwnTreeResidencyBounded(t *testing.T) {
	// The second half of Lemma 3.5: per level i, the number of A-family
	// trees containing a fixed node v is at most |B_v(2^i/eps) ∩ Y_i|'s
	// packing bound (Lemma 2.2). Assert the sharp per-level statement:
	// every A-tree at level i containing v has its center within
	// 2^i/eps of v, and centers are pairwise >= 2^i apart — so the
	// count is a ball-packing number, not O(n).
	s, f := buildClaimsFixture(t, 120, 24)
	eps := 0.25
	h := s.h
	for i := range s.ownTrees {
		// Residency per node at this level.
		trees := map[int][]int{} // v -> centers
		for _, tree := range s.ownTrees[i] {
			if tree == nil {
				continue
			}
			for _, v := range tree.Members {
				trees[v] = append(trees[v], tree.Center)
			}
		}
		for v, centers := range trees {
			for _, c := range centers {
				if f.a.Dist(v, c) > h.Radius(i)/eps+1e-9 {
					t.Fatalf("level %d: tree center %d too far from member %d", i, c, v)
				}
			}
			for x := 0; x < len(centers); x++ {
				for y := x + 1; y < len(centers); y++ {
					if f.a.Dist(centers[x], centers[y]) < h.Radius(i)-1e-9 {
						t.Fatalf("level %d: centers %d,%d closer than the net radius",
							i, centers[x], centers[y])
					}
				}
			}
		}
	}
}

func TestDelegationCoversZoomingBall(t *testing.T) {
	// The correctness side of Algorithm 4: whenever (i, u) delegates to
	// H(u, i) = B with center c at level j, the indexed set
	// B_c(r_c(j+2)) must contain every node of B_u(2^i/eps) — otherwise
	// a search could miss a name it was responsible for.
	s, f := buildClaimsFixture(t, 120, 25)
	eps := 0.25
	h := s.h
	for i := range s.hLinks {
		for k, y := range h.Levels[i] {
			if s.ownTrees[i][k] != nil {
				continue
			}
			hl := s.hLinks[i][k]
			c := s.pk.Balls[hl.j][hl.idx].Center
			indexRadius := f.a.RadiusOfSize(c, s.pk.Size(hl.j+2))
			for _, v := range f.a.Ball(y, h.Radius(i)/eps) {
				if f.a.Dist(c, v) > indexRadius+1e-9 {
					t.Fatalf("delegation (i=%d, u=%d) -> (j=%d, c=%d) misses node %d",
						i, y, hl.j, c, v)
				}
			}
		}
	}
}

func TestScaleFreeStorageDecomposition(t *testing.T) {
	// TableBits must dominate the underlying labeled scheme's bits (the
	// name-independent layer only adds storage).
	f := geoFixture(t, 90, 26)
	under, err := labeled.NewScaleFree(f.g, f.a, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScaleFree(f.g, f.a, RandomNaming(f.g.N(), 4), under, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < f.g.N(); v++ {
		if s.TableBits(v) < under.TableBits(v) {
			t.Fatalf("node %d: nameind bits %d below underlying %d",
				v, s.TableBits(v), under.TableBits(v))
		}
	}
}
