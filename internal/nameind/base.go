package nameind

import (
	"fmt"

	"compactrouting/internal/bits"
	"compactrouting/internal/core"
	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
	"compactrouting/internal/rnet"
	"compactrouting/internal/searchtree"
)

// Underlying is what the name-independent schemes need from their
// labeled substrate: routing to labels plus the shared net hierarchy
// and netting tree they were built from.
type Underlying interface {
	core.LabeledScheme
	Hierarchy() *rnet.Hierarchy
	NettingTree() *rnet.NettingTree
}

// base carries the machinery shared by Simple and ScaleFree: the graph,
// metric oracle, naming, underlying labeled scheme, and the virtual-
// edge/search plumbing over it.
type base struct {
	g      *graph.Graph
	a      metric.Distancer
	nm     *Naming
	under  Underlying
	h      *rnet.Hierarchy
	eps    float64
	idBits int
	// nameBits is the fixed width of a name field (names may come from
	// a sparse identifier space larger than n).
	nameBits int
	// tblBits[v] accumulates v's total storage (underlying scheme
	// included).
	tblBits []int
}

func newBase(g *graph.Graph, a metric.Distancer, nm *Naming, under Underlying, eps float64) (*base, error) {
	if nm.N() != g.N() {
		return nil, fmt.Errorf("nameind: naming covers %d nodes, graph has %d", nm.N(), g.N())
	}
	b := &base{
		g: g, a: a, nm: nm, under: under,
		h:        under.Hierarchy(),
		eps:      eps,
		idBits:   bits.UintBits(g.N()),
		nameBits: bits.UintBits(nm.MaxName() + 1),
		tblBits:  make([]int, g.N()),
	}
	if b.nameBits < b.idBits {
		b.nameBits = b.idBits
	}
	for v := 0; v < g.N(); v++ {
		// Underlying labeled tables, plus the zooming-sequence parent
		// label (Section 3.1.2: one label per node).
		b.tblBits[v] = under.TableBits(v) + b.idBits
	}
	return b, nil
}

// wrapBits is the name-independent header overhead on top of the
// underlying scheme's header: the destination name, the current level,
// search-state ids (tree center + return label), and a phase tag.
func (b *base) wrapBits() int {
	return b.nameBits + 2*b.idBits + bits.UvarintLen(uint64(b.h.TopLevel())) + 3
}

// walkVirtual traverses one search-tree virtual edge by routing with
// the underlying labeled scheme (the endpoints hold each other's
// labels).
func (b *base) walkVirtual(tr *core.Trace, to int) error {
	r, err := b.under.RouteToLabel(tr.At(), b.under.LabelOf(to))
	if err != nil {
		return fmt.Errorf("nameind: virtual edge to %d: %w", to, err)
	}
	tr.Header(r.MaxHeaderBits + b.wrapBits())
	return tr.Walk(r.Path)
}

// searchRoundTrip runs Algorithm 2 on t starting and ending at the tree
// center (which must be the trace's current node): it physically walks
// the descent and the way back, and returns the label found, if any.
func (b *base) searchRoundTrip(tr *core.Trace, t *searchtree.Tree[int], name int) (int, bool, error) {
	if tr.At() != t.Center {
		return 0, false, fmt.Errorf("nameind: search must start at center %d, at %d", t.Center, tr.At())
	}
	data, found, trail := t.Search(name)
	for k := 1; k < len(trail); k++ {
		if err := b.walkVirtual(tr, trail[k]); err != nil {
			return 0, false, err
		}
	}
	for k := len(trail) - 2; k >= 0; k-- {
		if err := b.walkVirtual(tr, trail[k]); err != nil {
			return 0, false, err
		}
	}
	return data, found, nil
}

// routeToLabel finishes a delivery with the underlying scheme.
func (b *base) routeToLabel(tr *core.Trace, label int) error {
	r, err := b.under.RouteToLabel(tr.At(), label)
	if err != nil {
		return err
	}
	tr.Header(r.MaxHeaderBits + b.wrapBits())
	return tr.Walk(r.Path)
}

// treeStorageBits charges each hosting node of a search tree: its
// parent link (id + label for the virtual-edge endpoints), child
// references (id + range + label), its subtree range, and its stored
// pairs (name + label).
func (b *base) treeStorageBits(t *searchtree.Tree[int]) {
	for _, v := range t.Members {
		nd := t.Nodes[v]
		cost := 2*b.idBits + 2*b.nameBits // parent id+label, own key range
		cost += len(nd.Children) * (2*b.idBits + 2*b.nameBits)
		cost += len(nd.Pairs) * (b.nameBits + b.idBits)
		b.tblBits[v] += cost
	}
}

// pairsFor builds the (name, label) pairs of a node set.
func (b *base) pairsFor(members []int) []searchtree.Pair[int] {
	pairs := make([]searchtree.Pair[int], len(members))
	for i, v := range members {
		pairs[i] = searchtree.Pair[int]{Key: b.nm.NameOf(v), Data: b.under.LabelOf(v)}
	}
	return pairs
}

// buildSearchTree builds a Definition 3.2 (uncapped) search tree on
// B_center(radius) holding the (name, label) pairs of its members. It
// only reads shared state, so tree constructions run in parallel; the
// caller charges storage afterwards with treeStorageBits in a serial,
// deterministically ordered pass (tblBits is shared across nodes).
func (b *base) buildSearchTree(center int, radius float64) (*searchtree.Tree[int], error) {
	t, err := searchtree.New[int](b.a, center, radius, searchtree.Config{
		Eps:          b.eps,
		MinNetRadius: b.h.Base(),
	})
	if err != nil {
		return nil, err
	}
	t.Store(b.pairsFor(t.Members))
	return t, nil
}

// NameOf implements core.NameIndependentScheme for both schemes.
func (b *base) NameOf(v int) int { return b.nm.NameOf(v) }

// TableBits implements core.NameIndependentScheme.
func (b *base) TableBits(v int) int { return b.tblBits[v] }

// Naming exposes the naming (for tests and experiments).
func (b *base) Naming() *Naming { return b.nm }

// UnderlyingScheme exposes the labeled substrate.
func (b *base) UnderlyingScheme() Underlying { return b.under }
