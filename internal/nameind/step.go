package nameind

import (
	"fmt"

	"compactrouting/internal/bits"
	"compactrouting/internal/labeled"
	"compactrouting/internal/searchtree"
)

// NIPhase tags the routing state of a simple name-independent packet.
type NIPhase uint8

// Algorithm 3's phases as carried in the packet header.
const (
	// NIPhaseStart: freshly injected; the first node starts level 0.
	NIPhaseStart NIPhase = iota
	// NIPhaseSearchDown: descending the current level's search tree.
	NIPhaseSearchDown
	// NIPhaseSearchUp: returning to the tree center.
	NIPhaseSearchUp
	// NIPhaseZoom: moving to the next zooming ancestor u(i+1).
	NIPhaseZoom
	// NIPhaseFinal: labeled route to the found destination.
	NIPhaseFinal
)

// NIHeader is the packet header of the Theorem 1.4 scheme factored for
// per-node stepping. Walks between search-tree nodes, zoom moves and
// the final leg are themselves steps of the underlying labeled
// scheme, whose header rides along in Sub — the composition Section
// 3.1.1 describes ("the endpoints keep each other's routing label").
type NIHeader struct {
	Name    int32
	Phase   NIPhase
	Level   int32
	Center  int32 // u(Level), the current search tree's center
	VTarget int32 // the tree node (or zoom/final target) being walked toward
	// Sub is the underlying labeled walk toward VTarget (or the found
	// label in the final phase); SubActive marks a walk in progress.
	Sub        labeled.SimpleHeader
	SubActive  bool
	Found      bool
	FoundLabel int32
}

// Bits returns the header's encoded size: the name and per-phase state
// plus the underlying header when a sub-walk is active.
func (h NIHeader) Bits() int {
	n := 3 + bits.UvarintLen(uint64(h.Name)) + bits.UvarintLen(uint64(h.Level)) + 2
	n += bits.UvarintLen(uint64(h.Center+1)) + bits.UvarintLen(uint64(h.VTarget+1))
	if h.SubActive {
		n += h.Sub.Bits()
	}
	if h.Found {
		n += bits.UvarintLen(uint64(h.FoundLabel))
	}
	return n
}

// PrepareHeader returns the initial header for a delivery to name.
func (s *Simple) PrepareHeader(name int) (NIHeader, error) {
	if s.nm.NodeOf(name) < 0 {
		return NIHeader{}, fmt.Errorf("nameind: unknown name %d", name)
	}
	return NIHeader{Name: int32(name), Phase: NIPhaseStart}, nil
}

// underlying returns the concrete simple labeled scheme (the Step
// composition needs its header type).
func (s *Simple) underlying() (*labeled.Simple, error) {
	u, ok := s.under.(*labeled.Simple)
	if !ok {
		return nil, fmt.Errorf("nameind: stepping requires a labeled.Simple underlying scheme, have %T", s.under)
	}
	return u, nil
}

// beginWalk arms a sub-walk toward the label of graph node target.
func (s *Simple) beginWalk(h NIHeader, target int) (NIHeader, error) {
	u, err := s.underlying()
	if err != nil {
		return h, err
	}
	sub, err := u.PrepareHeader(s.under.LabelOf(target))
	if err != nil {
		return h, err
	}
	h.Sub = sub
	h.SubActive = true
	h.VTarget = int32(target)
	return h, nil
}

// Step performs one forwarding decision of Algorithm 3 at node w,
// reading only w's compiled state and the header. Multiple local phase
// transitions may resolve before a hop is emitted.
func (s *Simple) Step(w int, h NIHeader) (next int, nh NIHeader, arrived bool, err error) {
	und, err := s.underlying()
	if err != nil {
		return 0, h, false, err
	}
	name := int(h.Name)
	for guard := 0; guard < 8+4*(s.h.TopLevel()+1); guard++ {
		// An active sub-walk is stepped first; tree/zoom/final logic
		// resumes when it lands on its target.
		if h.SubActive {
			hop, sub, done, err := und.Step(w, h.Sub)
			if err != nil {
				return 0, h, false, err
			}
			if !done {
				h.Sub = sub
				return hop, h, false, nil
			}
			h.SubActive = false
			if w != int(h.VTarget) {
				return 0, h, false, fmt.Errorf("nameind: sub-walk landed at %d, target %d", w, h.VTarget)
			}
			if h.Phase == NIPhaseFinal {
				if s.nm.NameOf(w) != name {
					return 0, h, false, fmt.Errorf("nameind: final leg ended at %d, wrong node", w)
				}
				return 0, h, true, nil
			}
		}
		switch h.Phase {
		case NIPhaseStart:
			h.Phase = NIPhaseSearchDown
			h.Level = 0
			h.Center = int32(w)
			h.VTarget = int32(w)
		case NIPhaseSearchDown:
			if w == int(h.Center) && s.nm.NameOf(w) == name {
				return 0, h, true, nil // every node knows its own name
			}
			t := s.treeAt(int(h.Level), int(h.Center))
			if t == nil {
				return 0, h, false, fmt.Errorf("nameind: no search tree at (%d, %d)", h.Level, h.Center)
			}
			nd := t.Nodes[w]
			if nd == nil {
				return 0, h, false, fmt.Errorf("nameind: node %d outside search tree (%d, %d)", w, h.Level, h.Center)
			}
			descended := false
			for _, c := range nd.Children {
				if !c.Empty && c.Lo <= name && name <= c.Hi {
					descended = true
					if h, err = s.beginWalk(h, c.ID); err != nil {
						return 0, h, false, err
					}
					break
				}
			}
			if descended {
				continue
			}
			for _, p := range nd.Pairs {
				if p.Key == name {
					h.Found = true
					h.FoundLabel = int32(p.Data)
					break
				}
			}
			h.Phase = NIPhaseSearchUp
			if w == int(h.Center) {
				continue
			}
			if h, err = s.beginWalk(h, nd.Parent); err != nil {
				return 0, h, false, err
			}
		case NIPhaseSearchUp:
			if w != int(h.Center) {
				t := s.treeAt(int(h.Level), int(h.Center))
				if t == nil {
					return 0, h, false, fmt.Errorf("nameind: no search tree at (%d, %d)", h.Level, h.Center)
				}
				if h, err = s.beginWalk(h, t.Nodes[w].Parent); err != nil {
					return 0, h, false, err
				}
				continue
			}
			if h.Found {
				h.Phase = NIPhaseFinal
				dst := s.nm.NodeOf(name)
				if h, err = s.beginWalk(h, dst); err != nil {
					return 0, h, false, err
				}
				continue
			}
			// Not found: climb the zooming sequence (Algorithm 3 line 5).
			if int(h.Level) >= s.h.TopLevel() {
				return 0, h, false, fmt.Errorf("nameind: name %d not found at the top level", name)
			}
			nextAnchor := s.h.ZoomStep(w, int(h.Level))
			h.Level++
			if nextAnchor == w {
				h.Phase = NIPhaseSearchDown
				h.Center = int32(w)
				h.VTarget = int32(w)
				continue
			}
			h.Phase = NIPhaseZoom
			if h, err = s.beginWalk(h, nextAnchor); err != nil {
				return 0, h, false, err
			}
		case NIPhaseZoom:
			// Sub-walk landed on u(Level): start its search.
			h.Phase = NIPhaseSearchDown
			h.Center = int32(w)
			h.VTarget = int32(w)
		case NIPhaseFinal:
			// Only reachable with an exhausted sub-walk, handled above.
			return 0, h, false, fmt.Errorf("nameind: final phase without active walk at %d", w)
		}
	}
	return 0, h, false, fmt.Errorf("nameind: step at %d did not converge", w)
}

// treeAt returns the search tree of center y at level i (nil when y is
// not a level-i net point).
func (s *Simple) treeAt(i, y int) *searchtree.Tree[int] {
	if i < 0 || i > s.h.TopLevel() {
		return nil
	}
	pos := s.h.PosInLevel(y, i)
	if pos < 0 {
		return nil
	}
	return s.trees[i][pos]
}
