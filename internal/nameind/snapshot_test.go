package nameind

import (
	"bytes"
	"testing"

	"compactrouting/internal/bits"
	"compactrouting/internal/labeled"
)

// TestNamingCodecRoundTrip pins the naming codec: every node's name
// must survive EncodeNaming → DecodeNaming unchanged.
func TestNamingCodecRoundTrip(t *testing.T) {
	nm := RandomNaming(60, 7)
	var w bits.Writer
	EncodeNaming(&w, nm)
	r := bits.NewReader(w.Bytes(), w.Len())
	nm2, err := DecodeNaming(r, nm.N())
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < nm.N(); v++ {
		if nm2.NameOf(v) != nm.NameOf(v) {
			t.Fatalf("node %d restored as name %d, want %d", v, nm2.NameOf(v), nm.NameOf(v))
		}
	}
}

// TestSnapshotRoundTripSimple pins the Simple snapshot codec:
// EncodeSnapshot → RestoreSimple (over the same underlying labeled
// scheme) → EncodeSnapshot must reproduce the stream bit for bit.
func TestSnapshotRoundTripSimple(t *testing.T) {
	f := geoFixture(t, 70, 43)
	nm := RandomNaming(f.g.N(), 9)
	under, err := labeled.NewSimple(f.g, f.a, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSimple(f.g, f.a, nm, under, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	var w bits.Writer
	s.EncodeSnapshot(&w)
	r := bits.NewReader(w.Bytes(), w.Len())
	s2, err := RestoreSimple(r, f.g, f.a, under)
	if err != nil {
		t.Fatal(err)
	}
	var w2 bits.Writer
	s2.EncodeSnapshot(&w2)
	if w2.Len() != w.Len() || !bytes.Equal(w2.Bytes(), w.Bytes()) {
		t.Fatalf("re-encode differs: %d bits vs %d", w2.Len(), w.Len())
	}
}

// TestSnapshotRoundTripScaleFree is the same pin for the scale-free
// scheme's snapshot codec.
func TestSnapshotRoundTripScaleFree(t *testing.T) {
	f := geoFixture(t, 70, 44)
	nm := RandomNaming(f.g.N(), 10)
	under, err := labeled.NewScaleFree(f.g, f.a, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScaleFree(f.g, f.a, nm, under, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	var w bits.Writer
	s.EncodeSnapshot(&w)
	r := bits.NewReader(w.Bytes(), w.Len())
	s2, err := RestoreScaleFree(r, f.g, f.a, under)
	if err != nil {
		t.Fatal(err)
	}
	var w2 bits.Writer
	s2.EncodeSnapshot(&w2)
	if w2.Len() != w.Len() || !bytes.Equal(w2.Bytes(), w.Bytes()) {
		t.Fatalf("re-encode differs: %d bits vs %d", w2.Len(), w.Len())
	}
}
