package nameind

import (
	"fmt"
	"math"

	"compactrouting/internal/ballpack"
	"compactrouting/internal/bits"
	"compactrouting/internal/core"
	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
	"compactrouting/internal/par"
	"compactrouting/internal/searchtree"
)

// PackingProvider is the extra capability the scale-free scheme needs
// from its underlying labeled scheme: the shared ball packing (the
// labeled.ScaleFree scheme provides it).
type PackingProvider interface {
	Packing() *ballpack.Packing
}

// hlink is a stored H(u, i) delegation: the packing level and ball
// whose search tree indexes B_u(2^i/eps).
type hlink struct {
	j   int
	idx int
}

// ScaleFree is the Theorem 1.1 scheme (SODA 2007): (9+O(eps))-stretch
// name-independent routing with storage independent of the normalized
// diameter.
type ScaleFree struct {
	*base
	pk *ballpack.Packing
	// ballTrees[j][k] is the search tree of packing ball k at level j:
	// built on B_c(r_c(j)), indexing the names of B_c(r_c(j+2))
	// (Section 3.3, first family).
	ballTrees [][]*searchtree.Tree[int]
	// For y = Levels[i][k]: either ownTrees[i][k] != nil (the ball is
	// in the family 𝒜 and keeps its own tree), or hLinks[i][k] points
	// at the packing ball that subsumes it.
	ownTrees [][]*searchtree.Tree[int]
	hLinks   [][]hlink
	// ownCount / delegated for reports.
	ownCount, delegatedCount int
}

var _ core.NameIndependentScheme = (*ScaleFree)(nil)

// NewScaleFree compiles the Theorem 1.1 scheme. The underlying labeled
// scheme must also provide the shared ball packing (labeled.ScaleFree
// does). eps must be in (0, 1/4] (the underlying scheme's constraint).
func NewScaleFree(g *graph.Graph, a metric.Distancer, nm *Naming, under Underlying, eps float64) (*ScaleFree, error) {
	core.NoteSchemeBuild()
	if eps <= 0 || eps > 0.25 {
		return nil, fmt.Errorf("nameind: eps %v out of (0, 0.25]", eps)
	}
	pp, ok := under.(PackingProvider)
	if !ok {
		return nil, fmt.Errorf("nameind: underlying scheme %T does not share a ball packing", under)
	}
	b, err := newBase(g, a, nm, under, eps)
	if err != nil {
		return nil, err
	}
	s := &ScaleFree{base: b, pk: pp.Packing()}
	if err := s.buildBallTrees(); err != nil {
		return nil, err
	}
	if err := s.buildZoomTrees(); err != nil {
		return nil, err
	}
	return s, nil
}

// buildBallTrees constructs the first search-tree family: one tree per
// packing ball B ∈ ℬ_j, built on B and indexing the (name, label)
// pairs of the size-2^{j+2} ball around its center, so each tree node
// stores about four pairs.
func (s *ScaleFree) buildBallTrees() error {
	s.ballTrees = make([][]*searchtree.Tree[int], s.pk.MaxJ()+1)
	type job struct{ j, k int }
	var jobs []job
	for j := 0; j <= s.pk.MaxJ(); j++ {
		s.ballTrees[j] = make([]*searchtree.Tree[int], len(s.pk.Balls[j]))
		for k := range s.pk.Balls[j] {
			jobs = append(jobs, job{j, k})
		}
	}
	// Construct every ball's tree in parallel (pure reads of the shared
	// oracle/packing), then charge storage serially in job order so the
	// shared tblBits accumulation is schedule-independent.
	trees, err := par.MapErr(len(jobs), func(t int) (*searchtree.Tree[int], error) {
		j, k := jobs[t].j, jobs[t].k
		ball := &s.pk.Balls[j][k]
		c := ball.Center
		tr, err := searchtree.New[int](s.a, c, ball.Radius, searchtree.Config{
			Eps:          s.eps,
			MinNetRadius: s.h.Base(),
		})
		if err != nil {
			return nil, fmt.Errorf("nameind: ball tree (j=%d, k=%d): %w", j, k, err)
		}
		indexed := s.a.Ball(c, s.a.RadiusOfSize(c, s.pk.Size(j+2)))
		tr.Store(s.pairsFor(indexed))
		return tr, nil
	})
	if err != nil {
		return err
	}
	for t, tr := range trees {
		s.ballTrees[jobs[t].j][jobs[t].k] = tr
		s.treeStorageBits(tr)
	}
	return nil
}

// buildZoomTrees decides, for every net point y ∈ Y_i, whether the
// zooming ball B_y(2^i/eps) keeps its own search tree (family 𝒜) or
// delegates through H(y, i) to a packing ball B with center c
// satisfying B ⊆ B_y(2^i(1/eps+1)) and B_y(2^i/eps) ⊆ B_c(r_c(j+2))
// (checked by the triangle-inequality conditions the paper's claims
// use), picking the minimal j, then the closest center.
func (s *ScaleFree) buildZoomTrees() error {
	h := s.h
	s.ownTrees = make([][]*searchtree.Tree[int], h.TopLevel()+1)
	s.hLinks = make([][]hlink, h.TopLevel()+1)
	type job struct{ i, k, y int }
	var jobs []job
	for i := 0; i <= h.TopLevel(); i++ {
		s.ownTrees[i] = make([]*searchtree.Tree[int], len(h.Levels[i]))
		s.hLinks[i] = make([]hlink, len(h.Levels[i]))
		for k, y := range h.Levels[i] {
			jobs = append(jobs, job{i, k, y})
		}
	}
	// The delegate-or-own decision (findH) and an own tree's
	// construction read only shared immutable state; resolve every
	// (level, net point) in parallel, then apply counters and storage
	// charges serially in job order.
	type zoom struct {
		hl   hlink
		tree *searchtree.Tree[int] // nil when delegated via hl
	}
	resolved, err := par.MapErr(len(jobs), func(t int) (zoom, error) {
		jb := jobs[t]
		outer := h.Radius(jb.i) * (1/s.eps + 1)
		inner := h.Radius(jb.i) / s.eps
		if j, idx, found := s.findH(jb.y, outer, inner); found {
			return zoom{hl: hlink{j: j, idx: idx}}, nil
		}
		tr, err := s.buildSearchTree(jb.y, inner)
		if err != nil {
			return zoom{}, fmt.Errorf("nameind: zoom tree (%d, %d): %w", jb.i, jb.y, err)
		}
		return zoom{tree: tr}, nil
	})
	if err != nil {
		return err
	}
	for t, z := range resolved {
		jb := jobs[t]
		if z.tree == nil {
			s.hLinks[jb.i][jb.k] = z.hl
			s.delegatedCount++
			// y stores the center's id and label plus the level j.
			s.tblBits[jb.y] += 2*s.idBits + bits.UvarintLen(uint64(z.hl.j))
			continue
		}
		s.ownTrees[jb.i][jb.k] = z.tree
		s.treeStorageBits(z.tree)
		s.ownCount++
	}
	return nil
}

// findH scans the packing for the minimal-level ball subsuming the
// zooming ball of radius inner around y, where the ball itself must fit
// in radius outer around y.
func (s *ScaleFree) findH(y int, outer, inner float64) (j, idx int, found bool) {
	for j = 0; j <= s.pk.MaxJ(); j++ {
		best, bestD := -1, math.Inf(1)
		for k := range s.pk.Balls[j] {
			bl := &s.pk.Balls[j][k]
			if bl.Radius > outer {
				break // balls are sorted by radius; none further fits
			}
			d := s.a.Dist(y, bl.Center)
			if d+bl.Radius > outer {
				continue // B ⊄ B_y(outer)
			}
			rNext2 := s.a.RadiusOfSize(bl.Center, s.pk.Size(j+2))
			if d+inner > rNext2 {
				continue // B_y(inner) ⊄ B_c(r_c(j+2))
			}
			//determinlint:allow floateq deliberate exact tie-break: equal distances come bit-identical from the same oracle matrix, and ties resolve by least center id
			if d < bestD || (d == bestD && bl.Center < s.pk.Balls[j][best].Center) {
				best, bestD = k, d
			}
		}
		if best >= 0 {
			return j, best, true
		}
	}
	return 0, 0, false
}

// SchemeName implements core.NameIndependentScheme.
func (s *ScaleFree) SchemeName() string { return "nameind/scale-free" }

// OwnTreeCount returns how many zooming balls kept their own search
// tree (the family 𝒜).
func (s *ScaleFree) OwnTreeCount() int { return s.ownCount }

// DelegatedCount returns how many zooming balls delegate via H(u, i).
func (s *ScaleFree) DelegatedCount() int { return s.delegatedCount }

// StretchBound returns the analytical worst-case stretch guarantee,
// like Simple's but with the search leg inflated by the (1/eps+1)
// delegation radius.
func (s *ScaleFree) StretchBound() float64 {
	e := s.eps
	underB := 1 + 25*e // Lemma 4.7's 1+O(eps) with its working constant
	return underB * (1 + 16*(1+e)*(1/e+1)/(1/e-2))
}

// search implements Algorithm 4: retrieve the label of name from the
// index covering B_{u}(2^i/eps), either locally or through H(u, i).
// The trace must be at y; it is returned there.
func (s *ScaleFree) search(tr *core.Trace, i, pos, name int) (int, bool, error) {
	if t := s.ownTrees[i][pos]; t != nil {
		return s.searchRoundTrip(tr, t, name)
	}
	y := tr.At()
	hl := s.hLinks[i][pos]
	t := s.ballTrees[hl.j][hl.idx]
	if err := s.routeToLabel(tr, s.under.LabelOf(t.Center)); err != nil {
		return 0, false, err
	}
	label, found, err := s.searchRoundTrip(tr, t, name)
	if err != nil {
		return 0, false, err
	}
	if err := s.routeToLabel(tr, s.under.LabelOf(y)); err != nil {
		return 0, false, err
	}
	return label, found, nil
}

// RouteToName implements Algorithm 3 with the Search() of Algorithm 4.
func (s *ScaleFree) RouteToName(src, name int) (*core.Route, error) {
	return s.routeLoop(src, name, s.search, nil)
}

// Explain routes like RouteToName while recording the per-level cost
// anatomy (Figure 1's decomposition, with Algorithm 4's delegated
// searches folded into the level search costs).
func (s *ScaleFree) Explain(src, name int) (*Explanation, error) {
	rec := &Explanation{}
	if _, err := s.routeLoop(src, name, s.search, rec); err != nil {
		return nil, err
	}
	return rec, nil
}
