package nameind

import (
	"fmt"

	"compactrouting/internal/core"
	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
	"compactrouting/internal/par"
	"compactrouting/internal/searchtree"
)

// Simple is the Theorem 1.4 scheme (PODC 2006): (9+O(eps))-stretch
// name-independent routing whose storage carries a log(Delta) factor.
type Simple struct {
	*base
	// trees[i][k] is the search tree T(y, 2^i/eps) of y = Levels[i][k].
	trees [][]*searchtree.Tree[int]
}

var _ core.NameIndependentScheme = (*Simple)(nil)

// NewSimple compiles the scheme on top of the given underlying labeled
// scheme (which must have been built on the same graph; its hierarchy
// is shared). eps must be in (0, 1/3]: Lemma 3.4's stretch bound needs
// 1/eps > 2 with slack.
func NewSimple(g *graph.Graph, a metric.Distancer, nm *Naming, under Underlying, eps float64) (*Simple, error) {
	core.NoteSchemeBuild()
	if eps <= 0 || eps > 1.0/3 {
		return nil, fmt.Errorf("nameind: eps %v out of (0, 1/3]", eps)
	}
	b, err := newBase(g, a, nm, under, eps)
	if err != nil {
		return nil, err
	}
	s := &Simple{base: b}
	h := b.h
	s.trees = make([][]*searchtree.Tree[int], h.TopLevel()+1)
	type job struct{ i, k, y int }
	var jobs []job
	for i := 0; i <= h.TopLevel(); i++ {
		s.trees[i] = make([]*searchtree.Tree[int], len(h.Levels[i]))
		for k, y := range h.Levels[i] {
			jobs = append(jobs, job{i, k, y})
		}
	}
	// Tree construction only reads the oracle and hierarchy; build all
	// (level, net point) trees in parallel, then charge storage in the
	// serial job order so tblBits accumulates deterministically.
	trees, err := par.MapErr(len(jobs), func(t int) (*searchtree.Tree[int], error) {
		j := jobs[t]
		tr, err := b.buildSearchTree(j.y, h.Radius(j.i)/eps)
		if err != nil {
			return nil, fmt.Errorf("nameind: search tree (%d, %d): %w", j.i, j.y, err)
		}
		return tr, nil
	})
	if err != nil {
		return nil, err
	}
	for t, tr := range trees {
		s.trees[jobs[t].i][jobs[t].k] = tr
		b.treeStorageBits(tr)
	}
	return s, nil
}

// SchemeName implements core.NameIndependentScheme.
func (s *Simple) SchemeName() string { return "nameind/simple" }

// StretchBound returns the analytical worst-case stretch guarantee:
// Lemma 3.4's 1 + 8(1/eps+1)/(1/eps-2), inflated by the underlying
// labeled scheme's stretch on every physical leg.
func (s *Simple) StretchBound() float64 {
	e := s.eps
	underB := 1 + 4*e/(1-e)
	return underB * (1 + 8*(1+e)*(1/e+1)/(1/e-2))
}

// searchLevel is the SearchTree() call of Algorithm 3's line 4.
func (s *Simple) searchLevel(tr *core.Trace, i, pos, name int) (int, bool, error) {
	return s.searchRoundTrip(tr, s.trees[i][pos], name)
}

// RouteToName implements Algorithm 3: climb the zooming sequence,
// searching the ball of each net ancestor until the destination's
// label is found, then route with the labeled scheme.
func (s *Simple) RouteToName(src, name int) (*core.Route, error) {
	return s.routeLoop(src, name, s.searchLevel, nil)
}

// Explain routes like RouteToName while recording the per-level cost
// anatomy of Lemma 3.4 (the Figure 1 decomposition).
func (s *Simple) Explain(src, name int) (*Explanation, error) {
	rec := &Explanation{}
	if _, err := s.routeLoop(src, name, s.searchLevel, rec); err != nil {
		return nil, err
	}
	return rec, nil
}
