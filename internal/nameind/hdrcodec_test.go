package nameind_test

import (
	"reflect"
	"testing"

	"compactrouting/internal/bits"
	"compactrouting/internal/core"
	"compactrouting/internal/graph"
	"compactrouting/internal/labeled"
	"compactrouting/internal/metric"
	"compactrouting/internal/nameind"
	"compactrouting/internal/sim"
)

// harvest collects every header that appears on real walks — the
// Prepare output and each Step rewrite — so the codec invariants are
// checked against the field combinations the schemes actually emit.
func harvest[H sim.Header](t testing.TB, r sim.Router[H], addr func(int) int, pairs [][2]int, maxHops int) []H {
	t.Helper()
	var out []H
	for _, p := range pairs {
		h, err := r.Prepare(addr(p[1]))
		if err != nil {
			t.Fatalf("Prepare(%d): %v", p[1], err)
		}
		out = append(out, h)
		at := p[0]
		for hops := 0; ; hops++ {
			if hops > maxHops {
				t.Fatalf("pair (%d,%d) exceeded %d hops", p[0], p[1], maxHops)
			}
			next, nh, arrived, err := r.Step(at, h)
			if err != nil {
				t.Fatalf("Step at %d: %v", at, err)
			}
			if arrived {
				break
			}
			out = append(out, nh)
			at, h = next, nh
		}
	}
	return out
}

// checkCodec pins Writer.Len() == Bits() and a clean decode round trip
// for each harvested header.
func checkCodec[H sim.Header](t testing.TB, hs []H, decode func(*bits.Reader) (H, error)) {
	t.Helper()
	if len(hs) == 0 {
		t.Fatal("no headers harvested")
	}
	for _, h := range hs {
		var w bits.Writer
		any(h).(interface{ Encode(*bits.Writer) }).Encode(&w)
		if w.Len() != h.Bits() {
			t.Fatalf("header %+v: encoded to %d bits, Bits() promises %d", h, w.Len(), h.Bits())
		}
		r := bits.NewReader(w.Bytes(), w.Len())
		got, err := decode(r)
		if err != nil {
			t.Fatalf("decode %+v: %v", h, err)
		}
		if !reflect.DeepEqual(got, h) {
			t.Fatalf("round trip: got %+v, want %+v", got, h)
		}
		if r.Remaining() != 0 {
			t.Fatalf("decode of %+v left %d bits unread", h, r.Remaining())
		}
	}
}

func codecFixture(t testing.TB) (*graph.Graph, *metric.APSP, *nameind.Naming, [][2]int) {
	t.Helper()
	g, _, err := graph.RandomGeometric(72, 0.25, 4)
	if err != nil {
		t.Fatal(err)
	}
	return g, metric.NewAPSP(g), nameind.RandomNaming(72, 6), core.SamplePairs(72, 48, 5)
}

func TestNIHeaderCodecMatchesBits(t *testing.T) {
	g, a, nm, pairs := codecFixture(t)
	under, err := labeled.NewSimple(g, a, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	s, err := nameind.NewSimple(g, a, nm, under, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	hs := harvest(t, sim.NameIndependentRouter{S: s}, nm.NameOf, pairs, 256*g.N())
	checkCodec(t, hs, nameind.DecodeNIHeader)
}

func TestSFNIHeaderCodecMatchesBits(t *testing.T) {
	g, a, nm, pairs := codecFixture(t)
	under, err := labeled.NewScaleFree(g, a, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	s, err := nameind.NewScaleFree(g, a, nm, under, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	hs := harvest(t, sim.ScaleFreeNameIndependentRouter{S: s}, nm.NameOf, pairs, 512*g.N())
	checkCodec(t, hs, nameind.DecodeSFNIHeader)
}
