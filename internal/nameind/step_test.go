package nameind

import (
	"testing"

	"compactrouting/internal/core"
	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
)

// driveSteps runs the step function sequentially and returns the walk.
func driveSteps(t *testing.T, s *Simple, src, name int) []int {
	t.Helper()
	h, err := s.PrepareHeader(name)
	if err != nil {
		t.Fatal(err)
	}
	path := []int{src}
	w := src
	for steps := 0; ; steps++ {
		if steps > 64*s.g.N()*(s.h.TopLevel()+2) {
			t.Fatalf("step driver looping for %d -> name %d", src, name)
		}
		next, nh, arrived, err := s.Step(w, h)
		if err != nil {
			t.Fatalf("Step at %d: %v", w, err)
		}
		if arrived {
			return path
		}
		w = next
		path = append(path, w)
		h = nh
	}
}

func TestStepMatchesRouteToName(t *testing.T) {
	f := geoFixture(t, 90, 41)
	nm := RandomNaming(f.g.N(), 17)
	s := newSimpleScheme(t, f, nm, 0.25)
	for _, p := range core.SamplePairs(f.g.N(), 250, 3) {
		name := nm.NameOf(p[1])
		seq, err := s.RouteToName(p[0], name)
		if err != nil {
			t.Fatal(err)
		}
		got := driveSteps(t, s, p[0], name)
		if len(got) != len(seq.Path) {
			t.Fatalf("%d -> name %d: step path len %d, sequential %d",
				p[0], name, len(got), len(seq.Path))
		}
		for k := range got {
			if got[k] != seq.Path[k] {
				t.Fatalf("%d -> name %d: paths diverge at hop %d", p[0], name, k)
			}
		}
	}
}

func TestStepSelfDelivery(t *testing.T) {
	f := geoFixture(t, 50, 42)
	nm := RandomNaming(f.g.N(), 18)
	s := newSimpleScheme(t, f, nm, 0.25)
	for v := 0; v < f.g.N(); v += 7 {
		path := driveSteps(t, s, v, nm.NameOf(v))
		if len(path) != 1 {
			t.Fatalf("self delivery of %d walked %v", v, path)
		}
	}
}

func TestStepUnknownName(t *testing.T) {
	f := geoFixture(t, 40, 43)
	nm := RandomNaming(f.g.N(), 19)
	s := newSimpleScheme(t, f, nm, 0.25)
	if _, err := s.PrepareHeader(1 << 30); err == nil {
		t.Fatal("unknown name accepted")
	}
}

// driveSFSteps runs the scale-free step function sequentially.
func driveSFSteps(t *testing.T, s *ScaleFree, src, name int) []int {
	t.Helper()
	h, err := s.PrepareHeader(name)
	if err != nil {
		t.Fatal(err)
	}
	path := []int{src}
	w := src
	for steps := 0; ; steps++ {
		if steps > 256*s.g.N()*(s.h.TopLevel()+2) {
			t.Fatalf("sf step driver looping for %d -> name %d", src, name)
		}
		next, nh, arrived, err := s.Step(w, h)
		if err != nil {
			t.Fatalf("Step at %d: %v", w, err)
		}
		if arrived {
			return path
		}
		w = next
		path = append(path, w)
		h = nh
	}
}

func TestSFStepMatchesRouteToName(t *testing.T) {
	f := geoFixture(t, 80, 44)
	nm := RandomNaming(f.g.N(), 20)
	s := newScaleFreeScheme(t, f, nm, 0.25)
	for _, p := range core.SamplePairs(f.g.N(), 200, 4) {
		name := nm.NameOf(p[1])
		seq, err := s.RouteToName(p[0], name)
		if err != nil {
			t.Fatal(err)
		}
		got := driveSFSteps(t, s, p[0], name)
		if len(got) != len(seq.Path) {
			t.Fatalf("%d -> name %d: step path len %d, sequential %d",
				p[0], name, len(got), len(seq.Path))
		}
		for k := range got {
			if got[k] != seq.Path[k] {
				t.Fatalf("%d -> name %d: paths diverge at hop %d (%d vs %d)",
					p[0], name, k, got[k], seq.Path[k])
			}
		}
	}
}

func TestSFStepOnExponentialStar(t *testing.T) {
	g, err := graph.ExponentialStar(50, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := fixture{g: g, a: metric.NewAPSP(g)}
	nm := RandomNaming(f.g.N(), 21)
	s := newScaleFreeScheme(t, f, nm, 0.25)
	for _, p := range core.SamplePairs(f.g.N(), 150, 5) {
		got := driveSFSteps(t, s, p[0], nm.NameOf(p[1]))
		if got[len(got)-1] != p[1] {
			t.Fatalf("delivery ended at %d, want %d", got[len(got)-1], p[1])
		}
	}
}

func TestStepOnExponentialPathStationaryZoom(t *testing.T) {
	// Exponential paths have deep hierarchies (L ~ 2n) with long
	// stationary zoom runs where many levels resolve without emitting
	// a hop: the stress case for the step function's internal
	// transition budget.
	g, err := graph.ExponentialPath(48, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := fixture{g: g, a: metric.NewAPSP(g)}
	nm := RandomNaming(f.g.N(), 22)
	s := newSimpleScheme(t, f, nm, 0.25)
	sf := newScaleFreeScheme(t, f, nm, 0.25)
	for _, p := range core.SamplePairs(f.g.N(), 150, 6) {
		name := nm.NameOf(p[1])
		seq, err := s.RouteToName(p[0], name)
		if err != nil {
			t.Fatal(err)
		}
		got := driveSteps(t, s, p[0], name)
		if len(got) != len(seq.Path) {
			t.Fatalf("simple: %d -> name %d: step path len %d, sequential %d",
				p[0], name, len(got), len(seq.Path))
		}
		sfseq, err := sf.RouteToName(p[0], name)
		if err != nil {
			t.Fatal(err)
		}
		sfgot := driveSFSteps(t, sf, p[0], name)
		if len(sfgot) != len(sfseq.Path) {
			t.Fatalf("scale-free: %d -> name %d: step path len %d, sequential %d",
				p[0], name, len(sfgot), len(sfseq.Path))
		}
	}
}
