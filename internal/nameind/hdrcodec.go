package nameind

import (
	"fmt"

	"compactrouting/internal/bits"
	"compactrouting/internal/labeled"
	"compactrouting/internal/trace"
)

// Wire codecs and trace-phase classification for the name-independent
// packet headers, mirroring internal/labeled/hdrcodec.go: Encode emits
// exactly Bits() bits (pinned by the codec tests and fuzz targets), so
// the header-size accounting in the experiments is the size of a real
// serialization, not an estimate.

// TracePhase maps Algorithm 3's phases onto the trace vocabulary:
// search-tree round trips are searches, moves along the zooming
// sequence are zooms, and the labeled leg to the resolved destination
// is final.
func (h NIHeader) TracePhase() trace.Phase {
	switch h.Phase {
	case NIPhaseZoom:
		return trace.PhaseZoom
	case NIPhaseFinal:
		return trace.PhaseFinal
	default:
		return trace.PhaseSearch
	}
}

// TracePhase maps the Theorem 1.1 phases: walks to a delegated ball
// center and back are tree climbs, round trips are searches, zoom
// moves are zooms, the resolved leg is final.
func (h SFNIHeader) TracePhase() trace.Phase {
	switch h.Phase {
	case SFNIToBall, SFNIReturn:
		return trace.PhaseTree
	case SFNIZoom:
		return trace.PhaseZoom
	case SFNIFinal:
		return trace.PhaseFinal
	default:
		return trace.PhaseSearch
	}
}

// niPhaseBits is the phase tag width Bits() charges for both headers.
const niPhaseBits = 3

// Encode serializes the header; the emitted size equals Bits().
func (h NIHeader) Encode(w *bits.Writer) {
	w.WriteBits(uint64(h.Phase), niPhaseBits)
	w.WriteUvarint(uint64(h.Name))
	w.WriteUvarint(uint64(h.Level))
	w.WriteBit(h.SubActive)
	w.WriteBit(h.Found)
	w.WriteUvarint(uint64(h.Center + 1))
	w.WriteUvarint(uint64(h.VTarget + 1))
	if h.SubActive {
		h.Sub.Encode(w)
	}
	if h.Found {
		w.WriteUvarint(uint64(h.FoundLabel))
	}
}

// DecodeNIHeader reads a header written by NIHeader.Encode.
func DecodeNIHeader(r *bits.Reader) (NIHeader, error) {
	tag, err := r.ReadBits(niPhaseBits)
	if err != nil {
		return NIHeader{}, err
	}
	if tag > uint64(NIPhaseFinal) {
		return NIHeader{}, fmt.Errorf("nameind: bad NI phase %d", tag)
	}
	h := NIHeader{Phase: NIPhase(tag)}
	if h.Name, err = readID(r, "name", 0); err != nil {
		return NIHeader{}, err
	}
	if h.Level, err = readID(r, "level", 0); err != nil {
		return NIHeader{}, err
	}
	if h.SubActive, err = r.ReadBit(); err != nil {
		return NIHeader{}, err
	}
	if h.Found, err = r.ReadBit(); err != nil {
		return NIHeader{}, err
	}
	if h.Center, err = readShiftedID(r, "center"); err != nil {
		return NIHeader{}, err
	}
	if h.VTarget, err = readShiftedID(r, "vtarget"); err != nil {
		return NIHeader{}, err
	}
	if h.SubActive {
		if h.Sub, err = labeled.DecodeSimpleHeader(r); err != nil {
			return NIHeader{}, err
		}
	}
	if h.Found {
		if h.FoundLabel, err = readID(r, "found_label", 0); err != nil {
			return NIHeader{}, err
		}
	}
	return h, nil
}

// Encode serializes the header; the emitted size equals Bits().
func (h SFNIHeader) Encode(w *bits.Writer) {
	w.WriteBits(uint64(h.Phase), niPhaseBits)
	w.WriteUvarint(uint64(h.Name))
	w.WriteUvarint(uint64(h.Level))
	w.WriteBit(h.UseBall)
	w.WriteBit(h.SubActive)
	w.WriteBit(h.Found)
	w.WriteUvarint(uint64(h.Center + 1))
	w.WriteUvarint(uint64(h.VTarget + 1))
	if h.UseBall {
		w.WriteUvarint(uint64(h.J))
		w.WriteUvarint(uint64(h.Idx))
	}
	if h.SubActive {
		h.Sub.Encode(w)
	}
	if h.Found {
		w.WriteUvarint(uint64(h.FoundLabel))
	}
}

// DecodeSFNIHeader reads a header written by SFNIHeader.Encode.
func DecodeSFNIHeader(r *bits.Reader) (SFNIHeader, error) {
	tag, err := r.ReadBits(niPhaseBits)
	if err != nil {
		return SFNIHeader{}, err
	}
	if tag > uint64(SFNIFinal) {
		return SFNIHeader{}, fmt.Errorf("nameind: bad SFNI phase %d", tag)
	}
	h := SFNIHeader{Phase: SFNIPhase(tag)}
	if h.Name, err = readID(r, "name", 0); err != nil {
		return SFNIHeader{}, err
	}
	if h.Level, err = readID(r, "level", 0); err != nil {
		return SFNIHeader{}, err
	}
	if h.UseBall, err = r.ReadBit(); err != nil {
		return SFNIHeader{}, err
	}
	if h.SubActive, err = r.ReadBit(); err != nil {
		return SFNIHeader{}, err
	}
	if h.Found, err = r.ReadBit(); err != nil {
		return SFNIHeader{}, err
	}
	if h.Center, err = readShiftedID(r, "center"); err != nil {
		return SFNIHeader{}, err
	}
	if h.VTarget, err = readShiftedID(r, "vtarget"); err != nil {
		return SFNIHeader{}, err
	}
	if h.UseBall {
		if h.J, err = readID(r, "j", 0); err != nil {
			return SFNIHeader{}, err
		}
		if h.Idx, err = readID(r, "idx", 0); err != nil {
			return SFNIHeader{}, err
		}
	}
	if h.SubActive {
		if h.Sub, err = labeled.DecodeSFHeader(r); err != nil {
			return SFNIHeader{}, err
		}
	}
	if h.Found {
		if h.FoundLabel, err = readID(r, "found_label", 0); err != nil {
			return SFNIHeader{}, err
		}
	}
	return h, nil
}

// readID reads a uvarint field that must fit int32 and be >= min.
func readID(r *bits.Reader, field string, min int32) (int32, error) {
	v, err := r.ReadUvarint()
	if err != nil {
		return 0, err
	}
	if v > 1<<31-1 {
		return 0, fmt.Errorf("nameind: %s %d overflows int32", field, v)
	}
	if int32(v) < min {
		return 0, fmt.Errorf("nameind: %s %d below %d", field, int32(v), min)
	}
	return int32(v), nil
}

// readShiftedID reads a field encoded as value+1 so -1 round-trips.
func readShiftedID(r *bits.Reader, field string) (int32, error) {
	v, err := readID(r, field, 0)
	if err != nil {
		return 0, err
	}
	return v - 1, nil
}
